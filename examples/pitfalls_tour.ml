(** A guided tour of the paper's ten pitfalls (Sections 3.1–3.10), running
    the paper's own queries against a live database and showing the
    result-count and index-usage differences side by side.

    Run with: [dune exec examples/pitfalls_tour.exe] *)

let section title = Printf.printf "\n=== %s ===\n" title

let db = Engine.create ()

let show_sql caption src =
  (try
     let o = Engine.exec db src in
     Printf.printf "%-52s -> %4d rows  [indexes: %s]\n" caption
       (List.length (Engine.outcome_rows o))
       (String.concat "," o.Engine.indexes_used)
   with Xdm.Xerror.Error e ->
     Printf.printf "%-52s -> runtime error: %s\n" caption e.msg);
  ()

let show_xq caption src =
  try
    let o = Engine.exec db src in
    Printf.printf "%-52s -> %4d items [indexes: %s]\n" caption
      (List.length (Engine.outcome_items o))
      (String.concat "," o.Engine.indexes_used)
  with Xdm.Xerror.Error e ->
    Printf.printf "%-52s -> error [%s] %s\n" caption e.code e.msg

let () =
  ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
  ignore (Engine.exec db "CREATE TABLE customer (cid INTEGER, cdoc XML)");
  ignore (Engine.exec db "CREATE TABLE products (id VARCHAR(13), name VARCHAR(32))");
  let p =
    { Workload.Orders_gen.default with n_customers = 40; n_products = 60 }
  in
  Engine.load_documents db ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders p 1000);
  Engine.load_documents db ~table:"customer" ~column:"cdoc"
    (Workload.Orders_gen.customers p);
  List.iter
    (fun (id, name) ->
      ignore
        (Engine.exec db
           (Printf.sprintf "INSERT INTO products VALUES ('%s', '%s')" id name)))
    (Workload.Orders_gen.products p);
  ignore
    (Engine.exec db
       "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/@price' AS DOUBLE");
  ignore
    (Engine.exec db
       "CREATE INDEX c_custid ON customer(cdoc) USING XMLPATTERN \
        '/customer/id' AS DOUBLE");
  ignore
    (Engine.exec db
       "CREATE INDEX li_pid ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/product/id' AS VARCHAR(20)");
  ignore
    (Engine.exec db
       "CREATE INDEX price_el ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/price' AS DOUBLE");

  section "3.1 Matching index and predicate data types";
  show_xq "Query 1:  @price > 100 (numeric)"
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>900]";
  show_xq "Query 3:  @price > \"100\" (string!)"
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"900\"]";

  section "3.2 SQL/XML query functions";
  show_sql "Query 5:  XMLQuery in select list"
    "SELECT XMLQuery('$o//lineitem[@price > 900]' passing orddoc as \"o\") \
     FROM orders";
  show_sql "Query 8:  XMLExists in WHERE"
    "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem[@price \
     > 900]' passing orddoc as \"o\")";
  show_sql "Query 9:  boolean inside XMLExists (trap!)"
    "SELECT ordid, orddoc FROM orders WHERE XMLExists('$o//lineitem/@price \
     > 900' passing orddoc as \"o\")";
  show_sql "Query 11: XMLTable row-producer"
    "SELECT o.ordid, t.li FROM orders o, XMLTable('$o//lineitem[@price > \
     900]' passing o.orddoc as \"o\" COLUMNS \"li\" XML BY REF PATH '.') \
     as t(li)";

  section "3.3 Joining XML values";
  show_sql "Query 13: join in XQuery (XML index)"
    "SELECT p.name FROM products p, orders o WHERE XMLExists('$o \
     //lineitem/product[id eq $pid]' passing o.orddoc as \"o\", p.id as \
     \"pid\")";
  show_sql "Query 16: XML-XML join with casts"
    "SELECT c.cid FROM orders o, customer c WHERE \
     XMLExists('$o/order[custid/xs:double(.) = \
     $c/customer/id/xs:double(.)]' passing o.orddoc as \"o\", c.cdoc as \
     \"c\")";

  section "3.4 let vs for";
  show_xq "Query 17: for (indexable)"
    "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') for $i in \
     $d//lineitem[@price > 900] return <result>{$i}</result>";
  show_xq "Query 18: let (not indexable, different result!)"
    "for $d in db2-fn:xmlcolumn('ORDERS.ORDDOC') let $i := \
     $d//lineitem[@price > 900] return <result>{$i}</result>";
  show_xq "Query 21: let rescued by where"
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $p := \
     $o/lineitem/@price where $p > 900 return <result>{$o/lineitem}</result>";

  section "3.5/3.6 Construction";
  show_xq "Query 19: predicate inside constructor"
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
     <result>{$o/lineitem[@price > 900]}</result>";
  show_xq "Query 22: bare path in return"
    "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
     $o/lineitem[@price > 900]";
  show_xq "Query 25: absolute path under constructed element"
    "let $o := <neworder>{db2-fn:xmlcolumn('ORDERS.ORDDOC')/order}</neworder> \
     return $o[//customer/name]";

  section "3.10 Between";
  show_xq "Query 30: attribute between (1 range scan)"
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem[@price>400 and \
     @price<500]]";
  show_xq "element between (2 scans + IXAND)"
    "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price > 400 and \
     lineitem/price < 500]";

  print_endline "\ndone.";
  ()
