let $hits := db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[lineitem/@price > 400]
return fn:count($hits)
