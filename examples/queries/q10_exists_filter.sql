SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as "order")
FROM orders
WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as "order")
