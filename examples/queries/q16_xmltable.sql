SELECT o.ordid, t.price
FROM orders o,
     XMLTable('$order//lineitem' passing o.orddoc as "order"
              COLUMNS "price" DOUBLE PATH '@price') as t(price)
