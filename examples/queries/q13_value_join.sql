SELECT p.name, XMLQuery('$order//lineitem' passing orddoc as "order")
FROM products p, orders o
WHERE XMLExists('$order//lineitem/product[id eq $pid]'
                passing o.orddoc as "order", p.id as "pid")
