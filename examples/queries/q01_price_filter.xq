db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[lineitem/@price > 100]
