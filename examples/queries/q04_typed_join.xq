for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order
for $j in db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer
where $i/custid/xs:double(.) = $j/id/xs:double(.)
return $i
