(** The codified guidelines: feed the paper's "bad" queries to the Tips
    1–12 advisor and print its diagnoses.

    Run with: [dune exec examples/advisor_demo.exe] *)

let bad_queries =
  [
    ( "Query 4 without casts (Tip 1)",
      "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order for $j in \
       db2-fn:xmlcolumn('CUSTOMER.CDOC')/customer where $i/custid = $j/id \
       return $i" );
    ( "Query 5 (Tip 2)",
      "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \
       \"order\") FROM orders" );
    ( "Query 9 (Tip 3)",
      "SELECT ordid, orddoc FROM orders WHERE XMLExists('$order \
       //lineitem/@price > 100' passing orddoc as \"order\")" );
    ( "Query 12 (Tip 4)",
      "SELECT o.ordid, t.price FROM orders o, XMLTable('$order//lineitem' \
       passing o.orddoc as \"order\" COLUMNS \"price\" DECIMAL(6,3) PATH \
       '@price[. > 100]') as t(price)" );
    ( "Query 14 (Tip 5)",
      "SELECT p.name FROM products p, orders o WHERE p.id = \
       XMLCast(XMLQuery('$order//lineitem/product/id' passing o.orddoc as \
       \"order\") as VARCHAR(13))" );
    ( "Query 15 (Tip 6)",
      "SELECT c.cid FROM orders o, customer c WHERE \
       XMLCast(XMLQuery('$order/order/custid' passing o.orddoc as \
       \"order\") as DOUBLE) = XMLCast(XMLQuery('$cust/customer/id' \
       passing c.cdoc as \"cust\") as DOUBLE)" );
    ( "Query 19 (Tip 7)",
      "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
       <result>{$ord/lineitem[@price > 100]}</result>" );
    ( "Query 25 (Tip 8)",
      "let $order := <neworder>{db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       /order[custid > 1001]}</neworder> return $order[//customer/name]" );
    ( "Query 26 (Tip 9)",
      "let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       /order/lineitem return <item><pid>{$i/product/id/data(.)}</pid>\
       </item> for $j in $view where $j/pid = '17' return $j" );
    ( "Query 28's c_nation mismatch (Tip 10)",
      "declare namespace c=\"http://ournamespaces.com/customer\"; \
       db2-fn:xmlcolumn('CUSTOMER.CDOC')/c:customer[c:nation = 1]" );
    ( "Query 29 (Tip 11)",
      "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
       /order[lineitem/price/text() = \"99.50\"] return $ord" );
    ( "attribute predicate with only a //* index (Tip 12)",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"100\"]" );
    ( "element between (Section 3.10)",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/price > 100 and \
       lineitem/price < 200]" );
    ( "the good Query 1 (no advice expected)",
      "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 100]" );
  ]

let () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");
  ignore (Engine.exec db "CREATE TABLE customer (cid INTEGER, cdoc XML)");
  ignore
    (Engine.exec db "CREATE TABLE products (id VARCHAR(13), name VARCHAR(32))");
  ignore
    (Engine.exec db
       "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/@price' AS DOUBLE");
  ignore
    (Engine.exec db
       "CREATE INDEX price_el ON orders(orddoc) USING XMLPATTERN '//price' \
        AS VARCHAR(30)");
  ignore
    (Engine.exec db
       "CREATE INDEX broad ON orders(orddoc) USING XMLPATTERN '//*' AS \
        VARCHAR(50)");
  ignore
    (Engine.exec db
       "CREATE INDEX c_nation ON customer(cdoc) USING XMLPATTERN \
        '//nation' AS DOUBLE");
  List.iter
    (fun (caption, src) ->
      Printf.printf "\n--- %s\n    %s\n" caption
        (if String.length src > 100 then String.sub src 0 100 ^ "..." else src);
      match Engine.advise db src with
      | [] -> print_endline "    ✓ no advice: follows the guidelines"
      | advs ->
          List.iter
            (fun a -> Printf.printf "    ⚠ %s\n" (Engine.Advisor.to_string a))
            advs)
    bad_queries
