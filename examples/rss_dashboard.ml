(** Querying extensible feeds — the paper's introduction names RSS as the
    killer case for schema flexibility: "elements of any namespace
    anywhere in the document".

    This example stores namespaced feeds, indexes across namespaces with
    wildcard patterns (Tip 10), uses xsi:type dynamic typing for date
    predicates, and joins feeds with a relational author table.

    Run with: [dune exec examples/rss_dashboard.exe] *)

let () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE feeds (fid INTEGER, feed XML)");
  ignore
    (Engine.exec db "CREATE TABLE authors (handle VARCHAR(20), karma INTEGER)");
  Engine.load_documents db ~table:"feeds" ~column:"feed"
    (Workload.Feeds_gen.feeds Workload.Feeds_gen.default 400);
  for i = 0 to 49 do
    ignore
      (Engine.exec db
         (Printf.sprintf "INSERT INTO authors VALUES ('author%d', %d)" i
            (i * 7 mod 100)))
  done;

  (* Namespace-wildcard index: one index covers dc:creator no matter which
     prefix a document used (Tip 10). *)
  ignore
    (Engine.exec db
       "CREATE INDEX creators ON feeds(feed) USING XMLPATTERN \
        '//*:creator' AS VARCHAR(30)");
  (* Broad numeric attribute index (//@* AS DOUBLE, Section 2.1's
     "unpredictable query workloads"). *)
  ignore
    (Engine.exec db
       "CREATE INDEX nums ON feeds(feed) USING XMLPATTERN '//@*' AS DOUBLE");
  (* xsi:type made pubDate a typed date: a date index applies. *)
  ignore
    (Engine.exec db
       "CREATE INDEX pubdates ON feeds(feed) USING XMLPATTERN '//pubDate' \
        AS DATE");

  (* 1. Which channels have stories by a given author? Namespaced query,
        wildcard index. *)
  let q =
    "declare namespace dc = \"http://purl.org/dc/elements/1.1/\"; \
     db2-fn:xmlcolumn('FEEDS.FEED')//item[dc:creator = \
     \"author7\"]/title/text()"
  in
  let o1 = Engine.exec db q in
  Printf.printf "stories by author7: %d [indexes: %s]\n"
    (List.length (Engine.outcome_items o1))
    (String.concat "," o1.Engine.indexes_used);

  (* 2. Big attachments via the broad numeric attribute index. *)
  let q2 =
    "declare namespace media = \"http://search.yahoo.com/mrss/\"; \
     db2-fn:xmlcolumn('FEEDS.FEED')//item[media:content/@fileSize > 90000]"
  in
  let o2 = Engine.exec db q2 in
  Printf.printf "items with >90KB media: %d [indexes: %s]\n"
    (List.length (Engine.outcome_items o2))
    (String.concat "," o2.Engine.indexes_used);

  (* 3. Date-typed predicate (value comparison works because xsi:type made
        pubDate an xs:date). *)
  let q3 =
    "db2-fn:xmlcolumn('FEEDS.FEED')//item[pubDate/xs:date(.) >= \
     xs:date(\"2006-06-01\")]"
  in
  let o3 = Engine.exec db q3 in
  Printf.printf "stories since 2006-06-01: %d [indexes: %s]\n"
    (List.length (Engine.outcome_items o3))
    (String.concat "," o3.Engine.indexes_used);

  (* 4. SQL/XML join of feeds against the relational author table:
        XMLTable extracts, SQL aggregatively joins. *)
  let r =
    Engine.exec db
      "SELECT a.handle, a.karma FROM authors a, feeds f WHERE \
       XMLExists('declare namespace dc = \
       \"http://purl.org/dc/elements/1.1/\"; $feed//item[dc:creator eq \
       $h]' passing f.feed as \"feed\", a.handle as \"h\") AND a.karma > 90"
  in
  Printf.printf "author rows with karma > 90 and ≥1 story: %d [indexes: %s]\n"
    (List.length (Engine.outcome_rows r))
    (String.concat "," r.Engine.indexes_used);

  (* 5. Publish a summary document with XMLELEMENT + XMLQuery. *)
  let r2 =
    Engine.exec db
      "SELECT XMLELEMENT(NAME summary, fid, XMLQuery('count($f//item)' \
       passing feed as \"f\")) FROM feeds WHERE XMLExists('declare \
       namespace geo = \"http://www.w3.org/2003/01/geo/wgs84_pos#\"; \
       $f//item[geo:lat/xs:double(.) > 60]' passing feed as \"f\")"
  in
  Printf.printf "published %d arctic-channel summaries, e.g. %s\n"
    (List.length (Engine.outcome_rows r2))
    (match Engine.outcome_rows r2 with
    | row :: _ -> Storage.Sql_value.to_display (List.hd row)
    | [] -> "(none)");

  (* 6. An undeclared prefix is a *static* error with a W3C code — the
        engine does not silently return empty results. *)
  (try ignore (Engine.exec db "db2-fn:xmlcolumn('FEEDS.FEED')//geo:lat")
   with Xdm.Xerror.Error e ->
     Printf.printf "undeclared prefix correctly rejected: [%s] %s\n" e.code
       e.msg);
  print_endline "done."
