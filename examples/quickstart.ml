(** Quickstart: create a table with an XML column, load documents, create
    an XML index, and watch the same query run as a collection scan vs an
    index probe.

    Run with: [dune exec examples/quickstart.exe] *)

let () =
  let db = Engine.create () in

  (* 1. DDL: a table with a native XML column. *)
  ignore (Engine.exec db "CREATE TABLE orders (ordid INTEGER, orddoc XML)");

  (* 2. Load a synthetic order collection: many small documents, the
        workload shape the paper says XML indexes exist for. *)
  let params = { Workload.Orders_gen.default with n_customers = 50 } in
  Engine.load_documents db ~table:"orders" ~column:"orddoc"
    (Workload.Orders_gen.orders params 2000);
  Printf.printf "loaded %d order documents\n"
    (Storage.Table.row_count
       (Storage.Database.table_exn (Engine.database db) "orders"));

  (* 3. A value query before any index exists: full collection scan. *)
  let query = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 995]" in
  Engine.set_use_indexes db false;
  let t0 = Unix.gettimeofday () in
  let baseline = Engine.outcome_items (Engine.exec db query) in
  Engine.set_use_indexes db true;
  let t_scan = Unix.gettimeofday () -. t0 in
  Printf.printf "collection scan: %d orders in %.2f ms\n"
    (List.length baseline) (1000. *. t_scan);

  (* 4. CREATE INDEX ... USING XMLPATTERN (the paper's li_price). *)
  ignore
    (Engine.exec db
       "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN \
        '//lineitem/@price' AS DOUBLE");

  (* 5. The same query now pre-filters documents through the index. *)
  let t0 = Unix.gettimeofday () in
  let o = Engine.exec db query in
  let indexed = Engine.outcome_items o in
  let t_idx = Unix.gettimeofday () -. t0 in
  Printf.printf "index probe:     %d orders in %.2f ms (%.0fx faster)\n"
    (List.length indexed) (1000. *. t_idx)
    (t_scan /. t_idx);
  assert (
    Xmlparse.Xml_writer.seq_to_string baseline
    = Xmlparse.Xml_writer.seq_to_string indexed);

  print_endline "\nEXPLAIN:";
  List.iter (fun n -> Printf.printf "  %s\n" n) o.Engine.notes;

  (* 6. The SQL/XML face of the same database. *)
  let r =
    Engine.exec db
      "SELECT ordid FROM orders WHERE XMLExists('$o//lineitem[@price > \
       995]' passing orddoc as \"o\")"
  in
  Printf.printf "\nSQL/XML XMLEXISTS: %d rows (indexes used: %s)\n"
    (List.length (Engine.outcome_rows r))
    (String.concat ", " r.Engine.indexes_used)
