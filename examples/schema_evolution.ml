(** The paper's schema-evolution story (Section 2.1): postal codes start
    numeric, then "the company begins shipping to Canada".

    - Validation against the old numeric schema rejects Canadian codes.
    - The *tolerant* XML index does not: Canadian codes are simply absent
      from the double index, while a varchar index holds everything, so
      both old (numeric) and new (string) queries keep working — exactly
      the coexistence the paper argues for.

    Run with: [dune exec examples/schema_evolution.exe] *)

let () =
  let db = Engine.create () in
  ignore (Engine.exec db "CREATE TABLE addresses (aid INTEGER, adoc XML)");

  (* Era 1: US-only postal codes, numeric schema. *)
  let us_docs = Workload.Feeds_gen.addresses ~canadian_frac:0.0 500 in
  Engine.load_documents db ~table:"addresses" ~column:"adoc" us_docs;
  let v1 = Xschema.make "v1-numeric" [ ("//postalcode", Xdm.Atomic.TDouble) ] in
  let annotated = Engine.validate_column db ~table:"addresses" ~column:"adoc" v1 in
  Printf.printf "era 1: validated %d postal codes against the numeric schema\n"
    annotated;

  (* Both a numeric and a string index on the same data (the paper's
     coexistence requirement). *)
  ignore
    (Engine.exec db
       "CREATE INDEX pc_num ON addresses(adoc) USING XMLPATTERN \
        '//postalcode' AS DOUBLE");
  ignore
    (Engine.exec db
       "CREATE INDEX pc_str ON addresses(adoc) USING XMLPATTERN \
        '//postalcode' AS VARCHAR(12)");

  (* Era 2: Canadian codes arrive. Validation against v1 fails... *)
  let ca_doc =
    "<address><name>New customer</name><street>1 Rideau St</street>\
     <postalcode>K1A 0B1</postalcode></address>"
  in
  (match
     Xschema.validate_opt v1 (Xmlparse.Xml_parser.parse_document ca_doc)
   with
  | Error m -> Printf.printf "era 2: old schema rejects the document: %s\n" m
  | Ok _ -> assert false);

  (* ...but inserting is fine: the indexes are tolerant. *)
  let mixed = Workload.Feeds_gen.addresses ~seed:99 ~canadian_frac:0.3 500 in
  Engine.load_documents db ~table:"addresses" ~column:"adoc" mixed;
  let count name =
    let idx =
      List.find
        (fun (i : Xmlindex.Xindex.t) ->
          i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname = name)
        (Engine.xml_indexes db)
    in
    Xmlindex.Xindex.entry_count idx
  in
  Printf.printf
    "era 2: loaded 500 mixed documents; double index holds %d entries, \
     varchar index holds %d (the gap is the Canadian codes the double \
     index tolerantly skipped)\n"
    (count "pc_num") (count "pc_str");

  (* Old numeric queries still run (and still use the double index). *)
  let numeric_q =
    "db2-fn:xmlcolumn('ADDRESSES.ADOC')//address[postalcode > 99000]"
  in
  let o = Engine.exec db numeric_q in
  Printf.printf "numeric query: %d addresses [indexes: %s]\n"
    (List.length (Engine.outcome_items o))
    (String.concat "," o.Engine.indexes_used);

  (* New string queries use the varchar index. *)
  let string_q =
    "db2-fn:xmlcolumn('ADDRESSES.ADOC')//address[postalcode > \"K\"]"
  in
  let o2 = Engine.exec db string_q in
  Printf.printf "string query:  %d addresses [indexes: %s]\n"
    (List.length (Engine.outcome_items o2))
    (String.concat "," o2.Engine.indexes_used);

  (* Per-document schemas: validate only the numeric-code documents
     against v1, the rest against a v2 string schema — in one column. *)
  let v2 = Xschema.make "v2-string" [ ("//postalcode", Xdm.Atomic.TString) ] in
  let tbl = Storage.Database.table_exn (Engine.database db) "addresses" in
  let v1_ok, v2_used =
    List.fold_left
      (fun (a, b) (_, doc) ->
        match Xschema.validate_opt v1 doc with
        | Ok _ -> (a + 1, b)
        | Error _ ->
            ignore (Xschema.validate v2 doc);
            (a, b + 1))
      (0, 0)
      (Storage.Table.xml_docs tbl "adoc")
  in
  Printf.printf
    "per-document schemas in one column: %d documents carry v1 (numeric), \
     %d carry v2 (string)\n"
    v1_ok v2_used
