(** Mid-level property: an index probe returns exactly the rows that a
    naive scan-and-filter over the same pattern/type/range would — for
    random documents, random patterns and random ranges. This pins the
    composite-key B+Tree layout, the tolerant cast, and the path-table
    restriction independently of the query engine. *)

module X = Xmlindex.Xindex
module Pat = Xmlindex.Pattern

let patterns =
  [|
    "//lineitem/@price";
    "//@price";
    "//price";
    "/order/lineitem/price";
    "//@*";
    "//*";
    "//lineitem/price/text()";
  |]

let gen_doc =
  let open QCheck.Gen in
  let* items = int_range 0 3 in
  let* parts =
    list_repeat items
      (let* p = int_bound 500 in
       let* style = oneofl [ `Num; `Str; `None ] in
       return (p, style))
  in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "<order>";
  List.iter
    (fun (p, style) ->
      match style with
      | `Num ->
          Buffer.add_string buf
            (Printf.sprintf
               "<lineitem price=\"%d\"><price>%d</price></lineitem>" p p)
      | `Str ->
          Buffer.add_string buf
            (Printf.sprintf
               "<lineitem price=\"%dUSD\"><price>%dUSD</price></lineitem>" p p)
      | `None -> Buffer.add_string buf "<lineitem><quantity>2</quantity></lineitem>")
    parts;
  Buffer.add_string buf "</order>";
  return (Buffer.contents buf)

let gen_case =
  QCheck.Gen.(
    let* docs = list_size (int_range 1 15) gen_doc in
    let* ipat = int_bound (Array.length patterns - 1) in
    let* qpat = int_bound (Array.length patterns - 1) in
    let* lo = int_bound 500 in
    let* width = int_bound 200 in
    let* vtype = oneofl [ X.VDouble; X.VVarchar ] in
    return (docs, ipat, qpat, lo, lo + width, vtype))

let arb_case =
  QCheck.make gen_case ~print:(fun (docs, i, q, lo, hi, vt) ->
      Printf.sprintf "index=%s query=%s range=[%d,%d] type=%s docs=%d"
        patterns.(i) patterns.(q) lo hi
        (X.vtype_to_string vt)
        (List.length docs))

(** Reference implementation: scan every node of every document. *)
let naive ~(ipat : Pat.t) ~(qpat : Pat.t) ~vtype ~lo ~hi docs =
  let target = X.vtype_to_atomic vtype in
  List.filteri (fun _ _ -> true) docs
  |> List.mapi (fun row (doc : Xdm.Node.t) -> (row, doc))
  |> List.filter_map (fun (row, doc) ->
         let nodes =
           Xdm.Node.descendants_or_self doc
           |> List.concat_map (fun (n : Xdm.Node.t) ->
                  match n.Xdm.Node.kind with
                  | Xdm.Node.Document -> []
                  | Xdm.Node.Element -> n :: n.Xdm.Node.attrs
                  | _ -> [ n ])
         in
         let hit =
           List.exists
             (fun n ->
               (* indexed under ipat, selected under qpat, value in range *)
               Pat.matches_node ipat n
               && Pat.matches_node qpat n
               &&
               match
                 Xdm.Atomic.cast_opt
                   (Xdm.Atomic.Untyped (Xdm.Node.string_value n))
                   target
               with
               | Some v -> (
                   (not
                      (match v with
                      | Xdm.Atomic.Double f -> Float.is_nan f
                      | _ -> false))
                   &&
                   match
                     ( Xdm.Atomic.compare_values v lo,
                       Xdm.Atomic.compare_values v hi )
                   with
                   | (Xdm.Atomic.Gt | Xdm.Atomic.Eq), (Xdm.Atomic.Lt | Xdm.Atomic.Eq)
                     ->
                       true
                   | _ -> false)
               | None -> false)
             nodes
         in
         if hit then Some row else None)

let run_case (docs, ipi, qpi, lo, hi, vtype) =
  let ipat = Pat.of_string patterns.(ipi) in
  let qpat = Pat.of_string patterns.(qpi) in
  (* The probe model assumes eligibility: only meaningful when the index
     pattern contains the query pattern. *)
  if not (Xmlindex.Containment.contains ipat qpat) then true
  else begin
    let parsed = List.map Xmlparse.Xml_parser.parse_document docs in
    let pt = Storage.Path_table.create () in
    let idx =
      X.create { X.iname = "p"; table = "t"; column = "c"; pattern = ipat; vtype }
    in
    List.iteri (fun row doc -> X.insert_doc idx pt ~row doc) parsed;
    let lo_v, hi_v =
      match vtype with
      | X.VDouble ->
          (Xdm.Atomic.Double (float_of_int lo), Xdm.Atomic.Double (float_of_int hi))
      | _ -> (Xdm.Atomic.Str (string_of_int lo), Xdm.Atomic.Str (string_of_int hi))
    in
    let rows =
      X.probe_range idx
        ~paths:(X.matching_paths pt qpat)
        { X.lo = Some (lo_v, true); hi = Some (hi_v, true) }
    in
    let expected = naive ~ipat ~qpat ~vtype ~lo:lo_v ~hi:hi_v parsed in
    Xdm.Int_set.elements rows = List.sort compare expected
  end

let prop_probe =
  QCheck.Test.make
    ~name:"index probe = naive scan-and-filter (random patterns/ranges)"
    ~count:400 arb_case run_case

let suite =
  [ ("probe:props", [ QCheck_alcotest.to_alcotest prop_probe ]) ]
