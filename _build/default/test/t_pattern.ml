(** XMLPATTERN parsing, node matching, and containment — including a
    property test checking containment against brute-force matching. *)

open Helpers
module Pat = Xmlindex.Pattern
module C = Xmlindex.Containment

let pat = Pat.of_string

(** All nodes of a document (elements, attributes, text, comments, PIs). *)
let all_nodes doc =
  Xdm.Node.descendants_or_self doc
  |> List.concat_map (fun (n : Xdm.Node.t) ->
         match n.Xdm.Node.kind with
         | Xdm.Node.Document -> []
         | Xdm.Node.Element -> n :: n.Xdm.Node.attrs
         | _ -> [ n ])

let match_count p xml =
  List.length (List.filter (Pat.matches_node (pat p)) (all_nodes (parse_doc xml)))

let parse_tests =
  [
    tc "simple pattern parses" (fun () ->
        check Alcotest.string "canon" "/order/lineitem/@price"
          (Pat.canonical_string (pat "/order/lineitem/@price")));
    tc "descendant pattern" (fun () ->
        check Alcotest.string "canon" "//lineitem/@price"
          (Pat.canonical_string (pat "//lineitem/@price")));
    tc "wildcards" (fun () ->
        check Alcotest.string "canon" "//@*" (Pat.canonical_string (pat "//@*")));
    tc "namespace declaration in pattern" (fun () ->
        let p =
          pat
            "declare default element namespace \"urn:o\"; //nation"
        in
        check Alcotest.string "canon" "//{urn:o}nation" (Pat.canonical_string p));
    tc "*:local wildcard" (fun () ->
        check Alcotest.string "canon" "//*:nation"
          (Pat.canonical_string (pat "//*:nation")));
    tc "explicit axes" (fun () ->
        check Alcotest.string "canon" "/a//b"
          (Pat.canonical_string (pat "/child::a/descendant::b")));
    tc "kind tests" (fun () ->
        check Alcotest.string "canon" "//price/text()"
          (Pat.canonical_string (pat "//price/text()")));
    tc "predicates rejected" (fun () ->
        match pat "//a[b]" with
        | _ -> Alcotest.fail "should reject"
        | exception Pat.Invalid _ -> ());
    tc "relative pattern rejected" (fun () ->
        match pat "a/b" with
        | _ -> Alcotest.fail "should reject"
        | exception Pat.Invalid _ -> ());
    tc "trailing // rejected" (fun () ->
        match pat "/a//" with
        | _ -> Alcotest.fail "should reject"
        | exception Pat.Invalid _ -> ());
  ]

let match_tests =
  [
    tc "exact path match" (fun () ->
        check Alcotest.int "n" 1
          (match_count "/order/lineitem/@price"
             "<order><lineitem price=\"1\"/></order>"));
    tc "descendant matches at any depth" (fun () ->
        check Alcotest.int "n" 2
          (match_count "//price"
             "<o><price>1</price><deep><price>2</price></deep></o>"));
    tc "// matches at depth zero below root" (fun () ->
        check Alcotest.int "n" 1 (match_count "//o" "<o/>"));
    tc "attribute pattern does not match elements" (fun () ->
        check Alcotest.int "n" 0
          (match_count "//@price" "<o><price>1</price></o>"));
    tc "//* matches no attributes (paper 3.9)" (fun () ->
        check Alcotest.int "n" 2 (match_count "//*" "<o p=\"1\"><q r=\"2\"/></o>"));
    tc "//@* matches all attributes (Tip 12)" (fun () ->
        check Alcotest.int "n" 2 (match_count "//@*" "<o p=\"1\"><q r=\"2\"/></o>"));
    tc "//node() matches elements, text, comments, PIs, not attributes"
      (fun () ->
        check Alcotest.int "n" 4
          (match_count "//node()" "<o p=\"1\">t<!--c--><?pi d?></o>"));
    tc "text() pattern matches only text nodes" (fun () ->
        check Alcotest.int "n" 1 (match_count "//price/text()"
          "<o><price>99.50USD</price><price/></o>"));
    tc "namespace-exact matching" (fun () ->
        check Alcotest.int "no ns: 0" 0
          (match_count "//nation" "<c xmlns=\"urn:c\"><nation>1</nation></c>");
        check Alcotest.int "*: wildcard: 1" 1
          (match_count "//*:nation" "<c xmlns=\"urn:c\"><nation>1</nation></c>"));
    tc "attributes keep empty namespace under default ns (paper 3.7)"
      (fun () ->
        check Alcotest.int "n" 1
          (match_count "//@price"
             "<o xmlns=\"urn:o\"><li price=\"9\"/></o>"));
    tc "self axis conjoined" (fun () ->
        check Alcotest.int "n" 1
          (match_count "/a/self::a" "<a><b/></a>");
        check Alcotest.int "n0" 0 (match_count "/a/self::b" "<a><b/></a>"));
    tc "gap backtracking" (fun () ->
        (* //a/b where an intermediate a has no b but a deeper one does *)
        check Alcotest.int "n" 1
          (match_count "//a/b" "<a><c><a><b/></a></c></a>"));
  ]

let containment_tests =
  let contains a b = C.contains (pat a) (pat b) in
  [
    tc "paper 2.2: //lineitem/@price contains //order/lineitem/@price"
      (fun () ->
        check Alcotest.bool "contains" true
          (contains "//lineitem/@price" "//order/lineitem/@price"));
    tc "paper 2.2: //lineitem/@price does not contain //lineitem/@*"
      (fun () ->
        check Alcotest.bool "not" false
          (contains "//lineitem/@price" "//lineitem/@*"));
    tc "reflexive" (fun () ->
        check Alcotest.bool "refl" true (contains "//a/b" "//a/b"));
    tc "exact path contained in descendant" (fun () ->
        check Alcotest.bool "c" true (contains "//b" "/a/b");
        check Alcotest.bool "not conversely" false (contains "/a/b" "//b"));
    tc "wildcard contains names" (fun () ->
        check Alcotest.bool "c" true (contains "//*" "/a/b");
        check Alcotest.bool "not" false (contains "/a/*" "//b"));
    tc "//a//b contains //a/x/b" (fun () ->
        check Alcotest.bool "c" true (contains "//a//b" "//a/x/b"));
    tc "//a/b does not contain //a//b" (fun () ->
        check Alcotest.bool "not" false (contains "//a/b" "//a//b"));
    tc "namespace mismatch blocks containment (paper 3.7)" (fun () ->
        check Alcotest.bool "not" false
          (contains "//nation"
             "declare default element namespace \"urn:c\"; //nation");
        check Alcotest.bool "wildcard ok" true
          (contains "//*:nation"
             "declare default element namespace \"urn:c\"; //nation"));
    tc "text() alignment blocks containment (paper 3.8)" (fun () ->
        check Alcotest.bool "not" false (contains "//price" "//price/text()");
        check Alcotest.bool "not conversely" false
          (contains "//price/text()" "//price");
        check Alcotest.bool "aligned" true
          (contains "//price/text()" "//lineitem/price/text()"));
    tc "attribute reachability (paper 3.9)" (fun () ->
        check Alcotest.bool "not" false (contains "//*" "//@price");
        check Alcotest.bool "not node()" false (contains "//node()" "//@price");
        check Alcotest.bool "broad attr" true (contains "//@*" "//a/@price"));
    tc "ns-star vs local-star interplay" (fun () ->
        check Alcotest.bool "nsstar contains exact" true
          (contains
             "declare namespace c = \"urn:c\"; //c:*"
             "declare namespace d = \"urn:c\"; //d:nation");
        check Alcotest.bool "localstar vs nsstar" false
          (contains "//*:nation" "declare namespace c = \"urn:c\"; //c:*"));
    tc "longer chains" (fun () ->
        check Alcotest.bool "c" true
          (contains "//b//d" "/a/b/c/d" = false
          || contains "//b//d" "/a/b/c/d");
        check Alcotest.bool "deep" true (contains "//b//d" "/a/b/c/d"));
  ]

(* --------------- containment soundness property ----------------- *)

(* Random linear patterns over a small name alphabet; random documents;
   check: contains p q → every node matched by q is matched by p.
   Completeness is also checked on the sampled documents: if the checker
   says NOT contained, some random doc should eventually witness it — we
   only assert soundness (exactness is covered by unit cases). *)

let gen_pattern =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  let test = oneof [ map (fun n -> `Name n) name; return `Star ] in
  let* n = int_range 1 4 in
  let* steps =
    list_repeat n
      (pair (oneofl [ "/"; "//" ])
         (oneof [ map (fun t -> `Elem t) test; map (fun t -> `Attr t) test ]))
  in
  (* attributes only valid at the end; force non-final steps to elements *)
  let fixed =
    List.mapi
      (fun i (sep, s) ->
        if i < n - 1 then
          match s with `Attr t -> (sep, `Elem t) | ok -> (sep, ok)
        else (sep, s))
      steps
  in
  let render (sep, s) =
    sep
    ^
    match s with
    | `Elem (`Name x) -> x
    | `Elem `Star -> "*"
    | `Attr (`Name x) -> "@" ^ x
    | `Attr `Star -> "@*"
  in
  return (String.concat "" (List.map render fixed))

let gen_doc =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c" ] in
  fix
    (fun self depth ->
      let* n = name in
      let* attrs = list_size (int_bound 2) name in
      let* kids =
        if depth = 0 then return [] else list_size (int_bound 2) (self (depth - 1))
      in
      let el = Xdm.Node.element (Xdm.Qname.make n) in
      List.iteri
        (fun i a ->
          if not (List.exists (fun (x : Xdm.Node.t) ->
                      Xdm.Qname.equal (Option.get x.Xdm.Node.name) (Xdm.Qname.make a))
                    el.Xdm.Node.attrs)
          then Xdm.Node.add_attr el (Xdm.Node.attribute (Xdm.Qname.make a) (string_of_int i)))
        attrs;
      List.iter (Xdm.Node.append_child el) kids;
      return el)
    3

let prop_containment_sound =
  QCheck.Test.make ~name:"containment is sound w.r.t. matching" ~count:500
    QCheck.(
      make
        Gen.(triple gen_pattern gen_pattern gen_doc)
        ~print:(fun (p, q, d) ->
          Printf.sprintf "p=%s q=%s doc=%s" p q
            (Xmlparse.Xml_writer.to_string d)))
    (fun (pstr, qstr, el) ->
      let p = pat pstr and q = pat qstr in
      if not (C.contains p q) then true
      else begin
        let doc = Xdm.Node.document () in
        Xdm.Node.append_child doc el;
        List.for_all
          (fun n -> (not (Pat.matches_node q n)) || Pat.matches_node p n)
          (all_nodes doc)
      end)

let suite =
  [
    ("pattern:parse", parse_tests);
    ("pattern:match", match_tests);
    ("pattern:containment", containment_tests);
    ( "pattern:props",
      [ QCheck_alcotest.to_alcotest prop_containment_sound ] );
  ]
