(** Unit tests for the XDM layer: dates, atomics, nodes, items. *)

open Xdm
open Helpers

(* ------------------------------------------------------------------ *)
(* Dates                                                               *)
(* ------------------------------------------------------------------ *)

let date_tests =
  [
    tc "parse simple date" (fun () ->
        match Xdate.date_of_string_opt "2001-01-01" with
        | Some d ->
            check Alcotest.int "year" 2001 d.Xdate.year;
            check Alcotest.int "month" 1 d.Xdate.month;
            check Alcotest.int "day" 1 d.Xdate.day
        | None -> Alcotest.fail "should parse");
    tc "parse date with Z" (fun () ->
        match Xdate.date_of_string_opt "2006-09-15Z" with
        | Some d -> check Alcotest.(option int) "tz" (Some 0) d.Xdate.tz
        | None -> Alcotest.fail "should parse");
    tc "parse date with offset" (fun () ->
        match Xdate.date_of_string_opt "2006-09-15-05:00" with
        | Some d -> check Alcotest.(option int) "tz" (Some (-300)) d.Xdate.tz
        | None -> Alcotest.fail "should parse");
    tc "reject US-style date (paper's 'January 1, 2001')" (fun () ->
        check Alcotest.bool "no parse" true
          (Xdate.date_of_string_opt "January 1, 2001" = None));
    tc "reject month 13" (fun () ->
        check Alcotest.bool "no parse" true
          (Xdate.date_of_string_opt "2001-13-01" = None));
    tc "reject Feb 30" (fun () ->
        check Alcotest.bool "no parse" true
          (Xdate.date_of_string_opt "2001-02-30" = None));
    tc "accept Feb 29 in leap year" (fun () ->
        check Alcotest.bool "parses" true
          (Xdate.date_of_string_opt "2004-02-29" <> None));
    tc "reject Feb 29 in non-leap year" (fun () ->
        check Alcotest.bool "no parse" true
          (Xdate.date_of_string_opt "2003-02-29" = None));
    tc "date ordering" (fun () ->
        let d s = Option.get (Xdate.date_of_string_opt s) in
        check Alcotest.bool "lt" true
          (Xdate.compare_date (d "2001-01-31") (d "2001-02-01") < 0));
    tc "timezone-normalized comparison" (fun () ->
        let d s = Option.get (Xdate.date_of_string_opt s) in
        (* 2001-01-01 at +14:00 begins before 2001-01-01Z *)
        check Alcotest.bool "tz order" true
          (Xdate.compare_date (d "2001-01-01+14:00") (d "2001-01-01Z") < 0));
    tc "roundtrip date" (fun () ->
        let d = Option.get (Xdate.date_of_string_opt "2006-09-15-05:00") in
        check Alcotest.string "print" "2006-09-15-05:00" (Xdate.date_to_string d));
    tc "parse dateTime" (fun () ->
        match Xdate.datetime_of_string_opt "2006-09-15T13:45:30.25Z" with
        | Some t ->
            check Alcotest.int "hour" 13 t.Xdate.hour;
            check (Alcotest.float 1e-9) "second" 30.25 t.Xdate.second
        | None -> Alcotest.fail "should parse");
    tc "dateTime ordering across timezones" (fun () ->
        let t s = Option.get (Xdate.datetime_of_string_opt s) in
        check Alcotest.int "equal instants" 0
          (Xdate.compare_datetime
             (t "2006-09-15T12:00:00+02:00")
             (t "2006-09-15T10:00:00Z")));
    tc "roundtrip dateTime" (fun () ->
        let t = Option.get (Xdate.datetime_of_string_opt "2006-09-15T13:45:30Z") in
        check Alcotest.string "print" "2006-09-15T13:45:30Z"
          (Xdate.datetime_to_string t));
    tc "reject bare time" (fun () ->
        check Alcotest.bool "no parse" true
          (Xdate.datetime_of_string_opt "13:45:30" = None));
  ]

(* ------------------------------------------------------------------ *)
(* Atomic values                                                       *)
(* ------------------------------------------------------------------ *)

let atomic_tests =
  [
    tc "double canonical form drops .0" (fun () ->
        check Alcotest.string "100" "100"
          (Atomic.string_value (Atomic.Double 100.)));
    tc "double specials" (fun () ->
        check Alcotest.string "INF" "INF" (Atomic.string_value (Atomic.Double infinity));
        check Alcotest.string "NaN" "NaN" (Atomic.string_value (Atomic.Double nan)));
    tc "cast untyped to double" (fun () ->
        match Atomic.cast_opt (Atomic.Untyped " 99.50 ") Atomic.TDouble with
        | Some (Atomic.Double f) -> check (Alcotest.float 1e-9) "v" 99.5 f
        | _ -> Alcotest.fail "cast failed");
    tc "tolerant: '99.50USD' does not cast to double" (fun () ->
        check Alcotest.bool "None" true
          (Atomic.cast_opt (Atomic.Untyped "99.50USD") Atomic.TDouble = None));
    tc "'20 USD' does not cast to double (paper 3.1)" (fun () ->
        check Alcotest.bool "None" true
          (Atomic.cast_opt (Atomic.Untyped "20 USD") Atomic.TDouble = None));
    tc "everything casts to string" (fun () ->
        check Alcotest.bool "Some" true
          (Atomic.cast_opt (Atomic.Untyped "99.50USD") Atomic.TString <> None));
    tc "cast string to integer rejects decimals" (fun () ->
        check Alcotest.bool "None" true
          (Atomic.cast_opt (Atomic.Str "1.5") Atomic.TInteger = None));
    tc "cast accepts leading +" (fun () ->
        check Alcotest.bool "Some" true
          (Atomic.cast_opt (Atomic.Str "+42") Atomic.TInteger
          = Some (Atomic.Integer 42L)));
    tc "hex floats are not valid XML doubles" (fun () ->
        check Alcotest.bool "None" true
          (Atomic.cast_opt (Atomic.Str "0x1p4") Atomic.TDouble = None));
    tc "decimal rejects exponent" (fun () ->
        check Alcotest.bool "None" true
          (Atomic.cast_opt (Atomic.Str "1e3") Atomic.TDecimal = None));
    tc "1E3 = 1000 as doubles but not as strings (paper 3.1)" (fun () ->
        let d1 = Atomic.cast (Atomic.Str "1E3") Atomic.TDouble in
        let d2 = Atomic.cast (Atomic.Str "1000") Atomic.TDouble in
        check Alcotest.bool "numeric eq" true (Atomic.compare_values d1 d2 = Atomic.Eq);
        check Alcotest.bool "string neq" true
          (Atomic.compare_values (Atomic.Str "1E3") (Atomic.Str "1000") <> Atomic.Eq));
    tc "integer compares exactly, double rounds (paper 3.6 case 2)" (fun () ->
        let big = 9007199254740993L (* 2^53 + 1 *) in
        let near = 9007199254740992L in
        check Alcotest.bool "int64 neq" true
          (Atomic.compare_values (Atomic.Integer big) (Atomic.Integer near)
          <> Atomic.Eq);
        let as_dbl i = Atomic.cast (Atomic.Integer i) Atomic.TDouble in
        check Alcotest.bool "double collision" true
          (Atomic.compare_values (as_dbl big) (as_dbl near) = Atomic.Eq));
    tc "numeric promotion integer vs double" (fun () ->
        check Alcotest.bool "1 < 1.5" true
          (Atomic.compare_values (Atomic.Integer 1L) (Atomic.Double 1.5) = Atomic.Lt));
    tc "string vs integer is uncomparable" (fun () ->
        check Alcotest.bool "uncomparable" true
          (Atomic.compare_values (Atomic.Str "1") (Atomic.Integer 1L)
          = Atomic.Uncomparable));
    tc "date cast from string" (fun () ->
        check Alcotest.bool "Some" true
          (Atomic.cast_opt (Atomic.Untyped "2001-01-01") Atomic.TDate <> None));
    tc "date to dateTime cast" (fun () ->
        match Atomic.cast_opt (Atomic.Untyped "2001-01-01") Atomic.TDate with
        | Some d -> (
            match Atomic.cast_opt d Atomic.TDateTime with
            | Some (Atomic.DateTime t) ->
                check Alcotest.int "hour" 0 t.Xdate.hour
            | _ -> Alcotest.fail "cast failed")
        | None -> Alcotest.fail "date parse failed");
    tc "boolean lexical space" (fun () ->
        check Alcotest.bool "1 is true" true
          (Atomic.cast_opt (Atomic.Str "1") Atomic.TBoolean
          = Some (Atomic.Boolean true));
        check Alcotest.bool "'yes' invalid" true
          (Atomic.cast_opt (Atomic.Str "yes") Atomic.TBoolean = None));
  ]

(* ------------------------------------------------------------------ *)
(* Nodes                                                               *)
(* ------------------------------------------------------------------ *)

let node_tests =
  [
    tc "node identity distinct on copy" (fun () ->
        let d = parse_doc "<a><b/></a>" in
        let c = Node.copy d in
        check Alcotest.bool "not identical" false (Node.identical d c));
    tc "document order: attributes before children" (fun () ->
        let d = parse_doc "<a x=\"1\"><b/></a>" in
        let a = List.hd d.Node.children in
        let attr = List.hd a.Node.attrs in
        let b = List.hd a.Node.children in
        check Alcotest.bool "attr < child" true (Node.doc_compare attr b < 0));
    tc "document order stable after mutation" (fun () ->
        let d = parse_doc "<a><b/><c/></a>" in
        let a = List.hd d.Node.children in
        let b = List.hd a.Node.children in
        Node.append_child a (Node.element (Qname.make "z"));
        let z = List.nth a.Node.children 2 in
        check Alcotest.bool "b < z" true (Node.doc_compare b z < 0));
    tc "string value concatenates descendant text" (fun () ->
        let d = parse_doc "<a>x<b>y</b>z</a>" in
        check Alcotest.string "sv" "xyz" (Node.string_value d));
    tc "typed value of untyped element is untypedAtomic" (fun () ->
        let d = parse_doc "<a>42</a>" in
        match Node.typed_value (List.hd d.Node.children) with
        | [ Atomic.Untyped "42" ] -> ()
        | _ -> Alcotest.fail "expected untypedAtomic 42");
    tc "typed value of annotated element" (fun () ->
        let d = parse_doc "<a>42</a>" in
        let a = List.hd d.Node.children in
        a.Node.ann <- Node.SimpleType Atomic.TDouble;
        match Node.typed_value a with
        | [ Atomic.Double 42. ] -> ()
        | _ -> Alcotest.fail "expected double 42");
    tc "copy strips type annotations (construction mode strip)" (fun () ->
        let d = parse_doc "<a>42</a>" in
        let a = List.hd d.Node.children in
        a.Node.ann <- Node.SimpleType Atomic.TDouble;
        let c = Node.copy a in
        check Alcotest.bool "untyped" true (c.Node.ann = Node.Untyped));
    tc "rooted path includes attribute marker" (fun () ->
        let d = parse_doc "<order><lineitem price=\"9\"/></order>" in
        let li = List.hd (List.hd d.Node.children).Node.children in
        let price = List.hd li.Node.attrs in
        check Alcotest.string "path" "/order/lineitem/@price"
          (Node.path_key price));
    tc "rooted path with namespaces uses Clark names" (fun () ->
        let d = parse_doc "<o xmlns=\"urn:x\"><p/></o>" in
        let p = List.hd (List.hd d.Node.children).Node.children in
        check Alcotest.string "path" "/{urn:x}o/{urn:x}p" (Node.path_key p));
    tc "descendants order" (fun () ->
        let d = parse_doc "<a><b><c/></b><e/></a>" in
        let names =
          List.filter_map
            (fun (n : Node.t) -> Option.map Qname.to_string n.Node.name)
            (Node.descendants d)
        in
        check Alcotest.(list string) "preorder" [ "a"; "b"; "c"; "e" ] names);
  ]

(* ------------------------------------------------------------------ *)
(* Items                                                               *)
(* ------------------------------------------------------------------ *)

let item_tests =
  [
    tc "ebv of empty is false" (fun () ->
        check Alcotest.bool "ebv" false (Item.ebv []));
    tc "ebv of any node is true" (fun () ->
        check Alcotest.bool "ebv" true (Item.ebv [ Item.N (parse_doc "<a/>") ]));
    tc "ebv of false boolean" (fun () ->
        check Alcotest.bool "ebv" false (Item.ebv [ Item.A (Atomic.Boolean false) ]));
    tc "ebv of empty string is false, non-empty true" (fun () ->
        check Alcotest.bool "empty" false (Item.ebv [ Item.A (Atomic.Str "") ]);
        check Alcotest.bool "nonempty" true (Item.ebv [ Item.A (Atomic.Str "x") ]));
    tc "ebv of zero and NaN" (fun () ->
        check Alcotest.bool "0" false (Item.ebv [ Item.A (Atomic.Integer 0L) ]);
        check Alcotest.bool "NaN" false (Item.ebv [ Item.A (Atomic.Double nan) ]));
    tc "ebv of multi-atomic errors" (fun () ->
        expect_error "FORG0006" (fun () ->
            Item.ebv [ Item.A (Atomic.Integer 1L); Item.A (Atomic.Integer 2L) ]));
    tc "atomize mixes nodes and atomics" (fun () ->
        let d = parse_doc "<a>7</a>" in
        let got =
          Item.atomize [ Item.N (List.hd d.Node.children); Item.A (Atomic.Integer 1L) ]
        in
        check Alcotest.int "len" 2 (List.length got));
    tc "doc_order_dedup removes duplicate identities" (fun () ->
        let d = parse_doc "<a><b/></a>" in
        let b = List.hd (List.hd d.Node.children).Node.children in
        check Alcotest.int "dedup" 1
          (List.length (Item.doc_order_dedup [ b; b; b ])));
  ]

let suite =
  [
    ("xdm:dates", date_tests);
    ("xdm:atomics", atomic_tests);
    ("xdm:nodes", node_tests);
    ("xdm:items", item_tests);
  ]
