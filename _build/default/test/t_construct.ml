(** Element construction semantics — the paper's Section 3.6 rules and its
    five rewrite-blocking divergences between Query 26 (view) and
    Query 27 (base collection). *)

open Helpers

let eval_str ?collections src expected =
  check Alcotest.string src expected (xq_str ?collections src)

let basic_tests =
  [
    tc "construction is nondeterministic: <a>5</a> is <a>5</a> = false"
      (fun () -> eval_str "<a>5</a> is <a>5</a>" "false");
    tc "atomics joined with a single space" (fun () ->
        eval_str "<a>{1, 2, 3}</a>" "<a>1 2 3</a>");
    tc "adjacent enclosed expressions do not get a space" (fun () ->
        eval_str "<a>{1}{2}</a>" "<a>12</a>");
    tc "literal text breaks atomic adjacency" (fun () ->
        eval_str "<a>x{1,2}y</a>" "<a>x1 2y</a>");
    tc "attribute from enclosed expression" (fun () ->
        eval_str "<a b=\"{1+1}\"/>" "<a b=\"2\"/>");
    tc "attribute value with multiple atomics" (fun () ->
        eval_str "<a b=\"{(1,2)}\"/>" "<a b=\"1 2\"/>");
    tc "copied content gets fresh identities" (fun () ->
        eval_str
          "let $x := <inner/> let $w := <w>{$x}</w> return $w/inner is $x"
          "false");
    tc "constructed element is untyped even when source was typed" (fun () ->
        (* data() of copy is untypedAtomic: compares as string *)
        eval_str "<c>{data(<a>10</a>)}</c> = \"10\"" "true");
    tc "duplicate literal attributes raise XQDY0025" (fun () ->
        (* two attribute nodes with the same name via content *)
        expect_error "XQDY0025" (fun () ->
            xq
              "let $a := <x p=\"1\"/> return <y>{$a/@p, $a/@p}</y>"));
    tc "attribute nodes in content become attributes" (fun () ->
        eval_str "let $a := <x p=\"7\"/> return <y>{$a/@p}</y>"
          "<y p=\"7\"/>");
    tc "attribute after content raises XQTY0024" (fun () ->
        expect_error "XQTY0024" (fun () ->
            xq "let $a := <x p=\"1\"/> return <y>text{$a/@p}</y>"));
    tc "document node content copies children" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<r>t</r>" ]) ]
          "<w>{db2-fn:xmlcolumn('C.D')}</w>" "<w><r>t</r></w>");
    tc "boundary whitespace is stripped" (fun () ->
        eval_str "<a>  {1}  </a>" "<a>1</a>");
    tc "escaped braces" (fun () -> eval_str "<a>{{x}}</a>" "<a>{x}</a>");
    tc "nested constructors" (fun () ->
        eval_str "<a><b>{1+1}</b></a>" "<a><b>2</b></a>");
    tc "constructor with namespace declaration" (fun () ->
        eval_str "<a xmlns=\"urn:n\"><b/></a>"
          "<a xmlns=\"urn:n\"><b/></a>");
  ]

(* The view of the paper's Query 26. *)
let view_prefix =
  {|let $view :=
      for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem
      return <item quantity="{$i/@quantity}" price="{$i/product/@price}">
               <pid>{ $i/product/id/data(.) }</pid>
             </item>
    |}

let q26_collections ~ids ~price =
  let id_elems = String.concat "" (List.map (fun i -> "<id>" ^ i ^ "</id>") ids) in
  [
    ( "ORDERS.ORDDOC",
      [
        Printf.sprintf
          {|<order><lineitem quantity="2"><product price="%s">%s</product></lineitem></order>|}
          price id_elems;
      ] );
  ]

let divergence_tests =
  [
    tc "3.6(1): untypedAtomic pid compares as string where typed id errors"
      (fun () ->
        (* the view's <pid> is untyped: = '17' works *)
        eval_str
          ~collections:(q26_collections ~ids:[ "17" ] ~price:"5")
          (view_prefix
         ^ "for $j in $view where $j/pid = '17' return $j/@price/data(.)")
          "5";
        (* on the base collection with a *numeric* type annotation the same
           string comparison is a type error; emulate with xs:integer cast *)
        expect_error "XPTY0004" (fun () ->
            xq
              ~collections:(q26_collections ~ids:[ "17" ] ~price:"5")
              "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem \
               where $i/product/id/xs:integer(.) = '17' return $i"));
    tc "3.6(3): multiple ids concatenate in the view" (fun () ->
        (* view matches 'p1 p2'; base query does not *)
        eval_str
          ~collections:(q26_collections ~ids:[ "p1"; "p2" ] ~price:"9")
          (view_prefix
         ^ "return count(for $j in $view where $j/pid = 'p1 p2' return $j)")
          "1";
        eval_str
          ~collections:(q26_collections ~ids:[ "p1"; "p2" ] ~price:"9")
          "count(for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem \
           where $i/product/id/data(.) = 'p1 p2' return $i)"
          "0");
    tc "3.6(3) converse: base matches 'p2', view does not" (fun () ->
        eval_str
          ~collections:(q26_collections ~ids:[ "p1"; "p2" ] ~price:"9")
          "count(for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem \
           where $i/product/id/data(.) = 'p2' return $i)"
          "1";
        eval_str
          ~collections:(q26_collections ~ids:[ "p1"; "p2" ] ~price:"9")
          (view_prefix
         ^ "return count(for $j in $view where $j/pid = 'p2' return $j)")
          "0");
    tc "3.6(5): node identity — view attrs 'except' base attrs keeps all"
      (fun () ->
        eval_str
          ~collections:(q26_collections ~ids:[ "17" ] ~price:"5")
          (view_prefix
         ^ "return count($view/@price except \
            db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem/product/@price)")
          "1");
    tc "Query 24: constructed element has no extra document level" (fun () ->
        eval_str
          ~collections:(q26_collections ~ids:[ "17" ] ~price:"5")
          "count(for $ord in (for $o in \
           db2-fn:xmlcolumn('ORDERS.ORDDOC')/order return \
           <my_order>{$o/*}</my_order>) return $ord/my_order)"
          "0");
    tc "Query 25: absolute path under constructed element is a type error"
      (fun () ->
        expect_error "XPTY0004" (fun () ->
            xq
              ~collections:(q26_collections ~ids:[ "17" ] ~price:"5")
              "let $order := <neworder>{db2-fn:xmlcolumn('ORDERS.ORDDOC')/order}</neworder> \
               return $order[//customer/name]"));
    tc "Query 23: leading step from document node matches root element"
      (fun () ->
        eval_str
          ~collections:(q26_collections ~ids:[ "17" ] ~price:"5")
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem)" "1");
  ]

let suite =
  [
    ("construct:basics", basic_tests);
    ("construct:divergences", divergence_tests);
  ]
