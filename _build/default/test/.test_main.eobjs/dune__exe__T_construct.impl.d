test/t_construct.ml: Alcotest Helpers List Printf String
