test/t_xdm.ml: Alcotest Atomic Helpers Item List Node Option Qname Xdate Xdm
