test/t_btree.ml: Alcotest Btree Hashtbl Helpers Int List Printf QCheck QCheck_alcotest
