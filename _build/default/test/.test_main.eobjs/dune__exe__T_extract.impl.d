test/t_extract.ml: Alcotest Eligibility Engine Helpers List Planner Printf Workload Xmlindex Xquery
