test/helpers.ml: Alcotest Engine Item List Planner Printf Sqlxml String Workload Xdm Xerror Xmlparse Xquery
