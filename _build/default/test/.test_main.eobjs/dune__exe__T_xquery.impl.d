test/t_xquery.ml: Alcotest Helpers
