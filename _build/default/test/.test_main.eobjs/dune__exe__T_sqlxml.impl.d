test/t_sqlxml.ml: Alcotest Engine Helpers List Printf Sqlxml Storage Xdm Xmlparse
