test/t_xmlparse.ml: Alcotest Buffer Helpers List Node Option QCheck QCheck_alcotest Qname Xdm Xmlparse
