test/t_xindex.ml: Alcotest Helpers Int64 List Option Printf Storage Xdm Xmlindex
