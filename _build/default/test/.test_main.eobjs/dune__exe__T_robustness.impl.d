test/t_robustness.ml: Alcotest Engine Helpers List Planner Printf Sqlxml Xmlparse
