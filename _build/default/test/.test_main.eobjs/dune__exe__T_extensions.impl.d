test/t_extensions.ml: Alcotest Engine Helpers List Planner Printf Sqlxml Storage Xdm Xmlindex Xmlparse Xquery Xschema
