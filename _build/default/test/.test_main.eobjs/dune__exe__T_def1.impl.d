test/t_def1.ml: Array Buffer Engine List Printf QCheck QCheck_alcotest Scanf Sqlxml Storage String Xdm Xmlparse
