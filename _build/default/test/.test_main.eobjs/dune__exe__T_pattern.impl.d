test/t_pattern.ml: Alcotest Gen Helpers List Option Printf QCheck QCheck_alcotest String Xdm Xmlindex Xmlparse
