test/t_storage.ml: Alcotest Helpers List Result Storage Xdm Xmlparse Xquery Xschema
