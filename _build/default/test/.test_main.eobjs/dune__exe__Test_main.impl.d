test/test_main.ml: Alcotest T_advisor T_btree T_construct T_def1 T_extensions T_extract T_misc T_paper T_pattern T_probe_prop T_robustness T_sqlxml T_storage T_xdm T_xindex T_xmlparse T_xquery
