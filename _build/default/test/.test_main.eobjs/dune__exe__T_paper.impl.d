test/t_paper.ml: Alcotest Engine Helpers Lazy List Planner Sqlxml Storage Workload Xmlparse
