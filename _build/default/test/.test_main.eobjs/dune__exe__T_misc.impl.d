test/t_misc.ml: Alcotest Btree Engine Helpers List Planner Printf String Xdm Xmlparse
