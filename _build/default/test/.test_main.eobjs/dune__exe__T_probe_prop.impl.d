test/t_probe_prop.ml: Array Buffer Float List Printf QCheck QCheck_alcotest Storage Xdm Xmlindex Xmlparse
