test/t_advisor.ml: Alcotest Engine Helpers Lazy List Printf
