(** XQuery parser and evaluator tests. *)

open Helpers

let eval_str ?collections src expected =
  check Alcotest.string src expected (xq_str ?collections src)

let orders_coll =
  [
    ( "ORDERS.ORDDOC",
      [
        {|<order id="o1"><custid>1001</custid>
           <lineitem price="99.50"><price>99.50</price><product><id>p17</id></product></lineitem>
           <lineitem price="120"><price>120</price><product><id>p42</id></product></lineitem>
         </order>|};
        {|<order id="o2"><custid>1002</custid>
           <lineitem price="30"><price>30</price><product><id>p17</id></product></lineitem>
         </order>|};
      ] );
  ]

let parser_tests =
  [
    tc "arithmetic precedence" (fun () -> eval_str "1 + 2 * 3" "7");
    tc "unary minus" (fun () -> eval_str "-3 + 10" "7");
    tc "div/idiv/mod keywords" (fun () ->
        eval_str "7 idiv 2" "3";
        eval_str "7 mod 2" "1";
        eval_str "1 div 2" "0.5");
    tc "comma sequences" (fun () -> eval_str "(1, 2, (3, 4))" "1 2 3 4");
    tc "range to" (fun () -> eval_str "1 to 5" "1 2 3 4 5");
    tc "empty range" (fun () -> eval_str "5 to 1" "");
    tc "string literals with doubled quotes" (fun () ->
        eval_str {|"he said ""hi"""|} {|he said "hi"|});
    tc "comments are skipped" (fun () ->
        eval_str "1 (: comment (: nested :) :) + 1" "2");
    tc "if then else" (fun () ->
        eval_str "if (1 < 2) then 'a' else 'b'" "a");
    tc "quantified some/every" (fun () ->
        eval_str "some $x in (1,2,3) satisfies $x > 2" "true";
        eval_str "every $x in (1,2,3) satisfies $x > 2" "false");
    tc "cast as syntax" (fun () -> eval_str "'42' cast as xs:integer" "42");
    tc "castable as" (fun () ->
        eval_str "'abc' castable as xs:double" "false";
        eval_str "'1.5' castable as xs:double" "true");
    tc "constructor function style cast" (fun () ->
        eval_str "xs:double('2.5') + 0.5" "3");
    tc "prolog namespace declaration" (fun () ->
        eval_str
          "declare namespace z = \"urn:z\"; 1"
          "1");
    tc "undefined variable is a static error" (fun () ->
        expect_error "XPST0008" (fun () -> xq "$nosuch + 1"));
    tc "undeclared prefix is a static error" (fun () ->
        expect_error "XPST0081" (fun () -> xq "count(/z:a)" ~collections:[]));
    tc "syntax error has code XPST0003" (fun () ->
        expect_error "XPST0003" (fun () -> xq "for $x in"));
    tc "unknown function" (fun () ->
        expect_error "XPST0017" (fun () -> xq "fn:frobnicate(1)"));
    tc "parser handles name-vs-operator ambiguity (div as element)" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<div>7</div>" ]) ]
          "db2-fn:xmlcolumn('C.D')/div/xs:double(.)" "7");
  ]

let path_tests =
  [
    tc "child and attribute axes" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem/@price)" "3");
    tc "descendant //" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//id)" "3");
    tc "wildcard *" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/*)" "5");
    tc "parent axis" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//id/../..)" "3");
    tc "self axis" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/self::lineitem)"
          "3");
    tc "text() kind test" (fun () ->
        eval_str ~collections:orders_coll
          "(db2-fn:xmlcolumn('ORDERS.ORDDOC')/order)[1]/custid/text()" "1001");
    tc "positional predicates apply per context item" (fun () ->
        (* order[1] selects the first order of EACH document *)
        eval_str ~collections:orders_coll
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[1]/custid/text()"
          "1001 1002");
    tc "node() excludes attributes (paper 3.9)" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a x=\"1\"><b/>t</a>" ]) ]
          "count(db2-fn:xmlcolumn('C.D')//node())" "3"
        (* a, b, text — never the attribute *));
    tc "@* finds attributes" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a x=\"1\" y=\"2\"><b z=\"3\"/></a>" ]) ]
          "count(db2-fn:xmlcolumn('C.D')//@*)" "3");
    tc "positional predicate" (fun () ->
        eval_str ~collections:orders_coll
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[2]/product/id/data(.)"
          "p42");
    tc "last()" (fun () ->
        eval_str ~collections:orders_coll
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/lineitem[last()]/@price/data(.)"
          "120 30");
    tc "path results in document order, deduplicated" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a><b><c/></b><b><c/></b></a>" ]) ]
          "count(db2-fn:xmlcolumn('C.D')//c/.. | db2-fn:xmlcolumn('C.D')//b)"
          "2");
    tc "comma concatenation keeps duplicates (unlike |)" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a><b><c/></b><b><c/></b></a>" ]) ]
          "count((db2-fn:xmlcolumn('C.D')//c/.., db2-fn:xmlcolumn('C.D')//b))"
          "4");
    tc "predicates with and/or" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 50 and @price < 130])"
          "2");
    tc "step expression with cast (Query 4 style)" (fun () ->
        eval_str ~collections:orders_coll
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/custid/xs:double(.)"
          "1001 1002");
    tc "axis step on atomic value errors" (fun () ->
        expect_error "XPTY0018" (fun () -> xq "(1,2)/child::a"));
    tc "mixed nodes and atomics in last step errors" (fun () ->
        expect_error "XPTY0018" (fun () ->
            xq ~collections:orders_coll
              "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order/(custid, 1)"));
  ]

let comparison_tests =
  [
    tc "general comparison is existential" (fun () ->
        eval_str ~collections:orders_coll
          "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 100])"
          "1");
    tc "untyped vs number compares numerically" (fun () ->
        eval_str ~collections:orders_coll
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[custid = 1002]/@id/data(.)"
          "o2");
    tc "untyped vs string compares as string (paper 3.1)" (fun () ->
        (* "99.50" > "100" is TRUE as strings *)
        eval_str "let $x := <p>99.50</p> return $x > \"100\"" "true";
        eval_str "let $x := <p>99.50</p> return $x > 100" "false");
    tc "untyped vs untyped compares as strings" (fun () ->
        eval_str "<a>10</a> = <b>10.0</b>" "false");
    tc "value comparison requires singleton (paper 3.10)" (fun () ->
        expect_error "XPTY0004" (fun () ->
            xq ~collections:orders_coll
              "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[1]/lineitem/@price gt 10"));
    tc "value comparison untyped → string" (fun () ->
        expect_error "XPTY0004" (fun () ->
            xq "<p>50</p> gt 10" (* untyped→string vs integer *)));
    tc "value comparison on empty gives empty" (fun () ->
        eval_str "count(() gt 1)" "0");
    tc "general comparison cast failure is an error" (fun () ->
        expect_error "FORG0001" (fun () -> xq "<p>abc</p> > 10"));
    tc "NaN comparisons" (fun () ->
        eval_str "xs:double('NaN') = xs:double('NaN')" "false";
        eval_str "xs:double('NaN') != 1" "true");
    tc "node comparison is" (fun () ->
        eval_str "let $a := <x/> return $a is $a" "true";
        eval_str "<x/> is <x/>" "false");
    tc "node order << >>" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a><b/><c/></a>" ]) ]
          "db2-fn:xmlcolumn('C.D')//b << db2-fn:xmlcolumn('C.D')//c" "true");
  ]

let flwor_tests =
  [
    tc "for iterates, let binds sequence (Section 3.4)" (fun () ->
        eval_str "for $x in (1,2,3) return $x * 10" "10 20 30";
        eval_str "let $x := (1,2,3) return count($x)" "3");
    tc "for over empty produces nothing" (fun () ->
        eval_str "for $x in () return 'never'" "");
    tc "let of empty still produces one tuple" (fun () ->
        eval_str "let $x := () return 'once'" "once");
    tc "where filters tuples" (fun () ->
        eval_str "for $x in (1,2,3,4) where $x mod 2 = 0 return $x" "2 4");
    tc "where with empty sequence eliminates (Query 20/21)" (fun () ->
        eval_str
          ~collections:orders_coll
          "for $o in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order let $p := $o/lineitem[@price > 100] where $p return $o/@id/data(.)"
          "o1");
    tc "multiple for clauses make a product" (fun () ->
        eval_str "for $x in (1,2), $y in (10,20) return $x + $y"
          "11 21 12 22");
    tc "order by ascending/descending" (fun () ->
        eval_str "for $x in (3,1,2) order by $x return $x" "1 2 3";
        eval_str "for $x in (3,1,2) order by $x descending return $x" "3 2 1");
    tc "order by untyped key" (fun () ->
        eval_str ~collections:orders_coll
          "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem order by $i/@price/xs:double(.) return $i/product/id/data(.)"
          "p17 p17 p42");
    tc "nested flwor" (fun () ->
        eval_str
          "for $x in (for $y in (1,2) return $y * 10) return $x + 1" "11 21");
  ]

let function_tests =
  [
    tc "count/exists/empty" (fun () ->
        eval_str "count((1,2,3))" "3";
        eval_str "exists(())" "false";
        eval_str "empty(())" "true");
    tc "string functions" (fun () ->
        eval_str "concat('a', 'b', 'c')" "abc";
        eval_str "string-join(('a','b'), '-')" "a-b";
        eval_str "contains('hello', 'ell')" "true";
        eval_str "starts-with('hello', 'he')" "true";
        eval_str "upper-case('abc')" "ABC";
        eval_str "substring('hello', 3)" "llo";
        eval_str "normalize-space('  a   b ')" "a b";
        eval_str "string-length('abcd')" "4");
    tc "numeric functions" (fun () ->
        eval_str "sum((1,2,3))" "6";
        eval_str "avg((1,2,3))" "2";
        eval_str "min((3,1,2))" "1";
        eval_str "max((3,1,2))" "3";
        eval_str "abs(-3)" "3";
        eval_str "floor(1.7)" "1";
        eval_str "ceiling(1.2)" "2");
    tc "number() returns NaN on garbage" (fun () ->
        eval_str "number('abc')" "NaN");
    tc "sum of untyped atomizes to double" (fun () ->
        eval_str "sum((<a>1</a>, <a>2.5</a>))" "3.5");
    tc "distinct-values" (fun () ->
        (* '1' is xs:string: distinct from the number 1; 1 and 1.0 collapse *)
        eval_str "count(distinct-values((1, 1.0, '1', 2)))" "3");
    tc "data() atomizes" (fun () ->
        eval_str "data(<a>42</a>) + 1" "43");
    tc "string() on node" (fun () ->
        eval_str "string(<a>x<b>y</b></a>)" "xy");
    tc "root()" (fun () ->
        eval_str ~collections:orders_coll
          "count(root((db2-fn:xmlcolumn('ORDERS.ORDDOC')//id)[1]))" "1");
    tc "name/local-name/namespace-uri" (fun () ->
        eval_str "local-name(<a:x xmlns:a=\"urn:a\"/>)" "x";
        eval_str "namespace-uri(<a:x xmlns:a=\"urn:a\"/>)" "urn:a");
    tc "not()" (fun () -> eval_str "not(())" "true");
    tc "reverse and subsequence" (fun () ->
        eval_str "reverse((1,2,3))" "3 2 1";
        eval_str "subsequence((1,2,3,4), 3)" "3 4");
  ]

let set_op_tests =
  [
    tc "union dedups by identity" (fun () ->
        eval_str "let $a := <x/> return count(($a, $a) | $a)" "1");
    tc "union keyword" (fun () ->
        eval_str "let $a := <x/> let $b := <y/> return count($a union $b)" "2");
    tc "intersect" (fun () ->
        eval_str
          "let $a := <x/> let $b := <y/> return count(($a, $b) intersect $a)"
          "1");
    tc "except respects node identity (paper 3.6 case 5)" (fun () ->
        (* copies have fresh identities: except removes nothing *)
        eval_str
          ~collections:orders_coll
          "let $view := <v>{db2-fn:xmlcolumn('ORDERS.ORDDOC')//product}</v> \
           return count($view/product except \
           db2-fn:xmlcolumn('ORDERS.ORDDOC')//product)"
          "3");
    tc "union of atomics is a type error" (fun () ->
        expect_error "XPTY0004" (fun () -> xq "(1,2) | (3)"));
  ]

let ns_tests =
  [
    tc "default element namespace applies to name tests" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<o xmlns=\"urn:x\"><p>5</p></o>" ]) ]
          "declare default element namespace \"urn:x\"; \
           db2-fn:xmlcolumn('C.D')/o/p/data(.)"
          "5");
    tc "without declaration, names do not match namespaced elements" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<o xmlns=\"urn:x\"><p>5</p></o>" ]) ]
          "count(db2-fn:xmlcolumn('C.D')/o)" "0");
    tc "prefixed name test" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<c:o xmlns:c=\"urn:c\">7</c:o>" ]) ]
          "declare namespace k = \"urn:c\"; db2-fn:xmlcolumn('C.D')/k:o/data(.)"
          "7");
    tc "*:local wildcard" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<o xmlns=\"urn:x\">1</o>" ]) ]
          "count(db2-fn:xmlcolumn('C.D')/*:o)" "1");
    tc "prefix:* wildcard" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<c:o xmlns:c=\"urn:c\"><c:p/></c:o>" ]) ]
          "declare namespace k = \"urn:c\"; count(db2-fn:xmlcolumn('C.D')//k:*)"
          "2");
    tc "default element ns does not apply to attributes (paper 3.7)" (fun () ->
        eval_str
          ~collections:
            [ ("C.D", [ "<o xmlns=\"urn:x\" price=\"9\"><p price=\"3\"/></o>" ]) ]
          "declare default element namespace \"urn:x\"; \
           count(db2-fn:xmlcolumn('C.D')//@price)"
          "2");
  ]

let suite =
  [
    ("xquery:parser", parser_tests);
    ("xquery:paths", path_tests);
    ("xquery:comparisons", comparison_tests);
    ("xquery:flwor", flwor_tests);
    ("xquery:functions", function_tests);
    ("xquery:setops", set_op_tests);
    ("xquery:namespaces", ns_tests);
  ]
