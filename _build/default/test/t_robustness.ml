(** Lexer edge cases and error-surface robustness for both front ends. *)

open Helpers

let eval_str ?collections src expected =
  check Alcotest.string src expected (xq_str ?collections src)

let xq_lexer_tests =
  [
    tc "name with dots and dashes" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<my-el.x>5</my-el.x>" ]) ]
          "db2-fn:xmlcolumn('C.D')/my-el.x/data(.)" "5");
    tc "subtraction vs name-with-dash needs spaces" (fun () ->
        (* "a -1" is subtraction; "a-1" would be a name *)
        eval_str "let $a := 5 return $a -1" "4");
    tc "decimal starting with a dot" (fun () -> eval_str ".5 + .5" "1");
    tc "exponent literals" (fun () -> eval_str "1e2 + 1E-2" "100.01");
    tc "doubled quotes in both quote styles" (fun () ->
        eval_str "'it''s'" "it's";
        eval_str "\"say \"\"hi\"\"\"" "say \"hi\"");
    tc "operators without spaces" (fun () ->
        eval_str "(1<2)and(3>=3)" "true");
    tc ":= vs :: vs : disambiguation" (fun () ->
        eval_str
          ~collections:[ ("C.D", [ "<a><b>1</b></a>" ]) ]
          "let $x := db2-fn:xmlcolumn('C.D')/child::a/child::b return \
           $x/data(.)"
          "1");
    tc "unterminated string is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "'never closed"));
    tc "unterminated comment is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "1 (: open"));
    tc "stray ']' is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "1 ]"));
    tc "empty query is a syntax error" (fun () ->
        expect_error "XPST0003" (fun () -> xq "   "));
    tc "constructor with mismatched close tag" (fun () ->
        expect_error "XPST0003" (fun () -> xq "<a></b>"));
    tc "unescaped '}' in constructor content" (fun () ->
        expect_error "XPST0003" (fun () -> xq "<a>}</a>"));
  ]

let sql_robustness_tests =
  let db () =
    let db = Engine.create () in
    ignore (Engine.sql db "CREATE TABLE t (a integer, d XML)");
    db
  in
  [
    tc "SQL comments are skipped" (fun () ->
        let db = db () in
        check Alcotest.int "rows" 0
          (sql_count db "SELECT a FROM t -- trailing comment"));
    tc "case-insensitive keywords and identifiers" (fun () ->
        let db = db () in
        ignore (Engine.sql db "insert into T values (1, null)");
        check Alcotest.int "rows" 1 (sql_count db "select A from T where A = 1"));
    tc "quoted identifiers preserve case" (fun () ->
        let db = db () in
        ignore (Engine.sql db "INSERT INTO t VALUES (1, '<x><Y>2</Y></x>')");
        let r =
          Engine.sql db
            "SELECT q.\"MixedCase\" FROM t, XMLTable('$d/x/Y' passing d as \
             \"d\" COLUMNS \"MixedCase\" INTEGER PATH '.') AS q(\"MixedCase\")"
        in
        check Alcotest.int "rows" 1 (List.length r.Sqlxml.Sql_exec.rrows));
    tc "bad XMLPATTERN in DDL is rejected" (fun () ->
        let db = db () in
        match
          Engine.sql db
            "CREATE INDEX bad ON t(d) USING XMLPATTERN 'a[b]' AS DOUBLE"
        with
        | _ -> Alcotest.fail "should fail"
        | exception Sqlxml.Sql_exec.Sql_runtime_error _ -> ());
    tc "bad embedded XQuery fails at SQL parse time" (fun () ->
        let db = db () in
        match
          Engine.sql db
            "SELECT a FROM t WHERE XMLExists('for $x in' passing d as \"d\")"
        with
        | _ -> Alcotest.fail "should fail"
        | exception Sqlxml.Sql_lexer.Sql_syntax_error _ -> ());
    tc "insert arity mismatch" (fun () ->
        let db = db () in
        match Engine.sql db "INSERT INTO t VALUES (1)" with
        | _ -> Alcotest.fail "should fail"
        | exception Failure _ -> ());
    tc "unknown table" (fun () ->
        let db = db () in
        match Engine.sql db "SELECT x FROM nosuch" with
        | _ -> Alcotest.fail "should fail"
        | exception Failure _ -> ());
    tc "malformed XML document rejected on insert" (fun () ->
        let db = db () in
        match Engine.sql db "INSERT INTO t VALUES (1, '<a><b></a>')" with
        | _ -> Alcotest.fail "should fail"
        | exception Xmlparse.Xml_parser.Xml_error _ -> ());
    tc "string literal escaping ('' inside SQL strings)" (fun () ->
        let db = db () in
        ignore (Engine.sql db "CREATE TABLE s (v varchar(20))");
        ignore (Engine.sql db "INSERT INTO s VALUES ('it''s')");
        check Alcotest.int "found" 1
          (sql_count db "SELECT v FROM s WHERE v = 'it''s'"));
    tc "date column coercion from literal" (fun () ->
        let db = db () in
        ignore (Engine.sql db "CREATE TABLE dts (w date)");
        ignore (Engine.sql db "INSERT INTO dts VALUES ('2006-09-15')");
        check Alcotest.int "range" 1
          (sql_count db "SELECT w FROM dts WHERE w > '2006-01-01'"));
    tc "timestamp column" (fun () ->
        let db = db () in
        ignore (Engine.sql db "CREATE TABLE ts (w timestamp)");
        ignore (Engine.sql db "INSERT INTO ts VALUES ('2006-09-15T13:00:00')");
        check Alcotest.int "eq" 1
          (sql_count db
             "SELECT w FROM ts WHERE w = '2006-09-15T13:00:00'"));
  ]

let date_between_tests =
  [
    tc "xqdb:between over dates with a DATE index" (fun () ->
        let db = Engine.create () in
        ignore (Engine.sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 50 (fun i ->
               Printf.sprintf "<e><when>200%d-0%d-01</when></e>" (i mod 7)
                 (1 + (i mod 9))));
        ignore
          (Engine.sql db
             "CREATE INDEX dw ON t(d) USING XMLPATTERN '//when' AS DATE");
        let q =
          "db2-fn:xmlcolumn('T.D')//e[when/xs:date(.) >= \
           xs:date(\"2003-01-01\") and when/xs:date(.) <= \
           xs:date(\"2004-12-31\")]"
        in
        let plan = assert_def1 db q in
        check Alcotest.bool "dw used" true
          (List.mem "dw" plan.Planner.indexes_used));
  ]

let suite =
  [
    ("robust:xq_lexer", xq_lexer_tests);
    ("robust:sql", sql_robustness_tests);
    ("robust:dates", date_between_tests);
  ]
