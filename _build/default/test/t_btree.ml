(** B+Tree unit tests and model-based property tests. *)

open Helpers

module IB = Btree.Make (Int)

let unit_tests =
  [
    tc "insert and find" (fun () ->
        let t = IB.create () in
        IB.insert t 5 "five";
        IB.insert t 3 "three";
        check Alcotest.(option string) "find 3" (Some "three") (IB.find_opt t 3);
        check Alcotest.(option string) "find 9" None (IB.find_opt t 9));
    tc "replace on duplicate key" (fun () ->
        let t = IB.create () in
        IB.insert t 1 "a";
        IB.insert t 1 "b";
        check Alcotest.int "size" 1 (IB.size t);
        check Alcotest.(option string) "v" (Some "b") (IB.find_opt t 1));
    tc "many inserts stay sorted" (fun () ->
        let t = IB.create ~order:4 () in
        List.iter (fun k -> IB.insert t k k) [ 9; 1; 8; 2; 7; 3; 6; 4; 5; 0 ];
        check
          Alcotest.(list int)
          "keys" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
          (List.map fst (IB.to_list t)));
    tc "range scan inclusive/exclusive bounds" (fun () ->
        let t = IB.create ~order:4 () in
        for k = 0 to 20 do IB.insert t k () done;
        let keys lo hi = List.map fst (IB.range t ~lo ~hi) in
        check Alcotest.(list int) "incl" [ 5; 6; 7 ]
          (keys (IB.Incl 5) (IB.Incl 7));
        check Alcotest.(list int) "excl" [ 6 ] (keys (IB.Excl 5) (IB.Excl 7));
        check Alcotest.(list int) "open hi" [ 19; 20 ]
          (keys (IB.Incl 19) IB.Unbounded));
    tc "delete leaf entries" (fun () ->
        let t = IB.create ~order:4 () in
        for k = 0 to 50 do IB.insert t k () done;
        for k = 10 to 40 do
          check Alcotest.bool "deleted" true (IB.delete t k)
        done;
        check Alcotest.bool "gone" false (IB.delete t 20);
        check Alcotest.int "size" 20 (IB.size t);
        ignore (IB.check t));
    tc "delete everything" (fun () ->
        let t = IB.create ~order:4 () in
        for k = 0 to 100 do IB.insert t k () done;
        for k = 0 to 100 do ignore (IB.delete t k) done;
        check Alcotest.int "size" 0 (IB.size t);
        ignore (IB.check t));
    tc "sequential and reverse insertion keep invariants" (fun () ->
        let t = IB.create ~order:4 () in
        for k = 0 to 500 do IB.insert t k () done;
        ignore (IB.check t);
        let t2 = IB.create ~order:4 () in
        for k = 500 downto 0 do IB.insert t2 k () done;
        ignore (IB.check t2));
    tc "order below 4 rejected" (fun () ->
        match IB.create ~order:2 () with
        | _ -> Alcotest.fail "should reject"
        | exception Invalid_argument _ -> ());
    tc "iteration visits in order" (fun () ->
        let t = IB.create ~order:4 () in
        List.iter (fun k -> IB.insert t k ()) [ 5; 1; 4; 2; 3 ];
        let acc = ref [] in
        IB.iter t (fun k () -> acc := k :: !acc);
        check Alcotest.(list int) "order" [ 1; 2; 3; 4; 5 ] (List.rev !acc));
    tc "fold_range over empty tree" (fun () ->
        let t = IB.create () in
        check Alcotest.int "0" 0
          (IB.fold_range t ~lo:IB.Unbounded ~hi:IB.Unbounded
             (fun acc _ _ -> acc + 1)
             0));
  ]

(* ---------------- model-based property tests ---------------- *)

type op = Ins of int | Del of int

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 400)
      (frequency
         [
           (3, map (fun k -> Ins k) (int_bound 100));
           (2, map (fun k -> Del k) (int_bound 100));
         ]))

let arb_ops =
  QCheck.make gen_ops
    ~print:
      (QCheck.Print.list (function
        | Ins k -> Printf.sprintf "Ins %d" k
        | Del k -> Printf.sprintf "Del %d" k))

let run_model ops =
  let t = IB.create ~order:4 () in
  let model = Hashtbl.create 16 in
  List.iter
    (fun op ->
      match op with
      | Ins k ->
          IB.insert t k k;
          Hashtbl.replace model k k
      | Del k ->
          let in_model = Hashtbl.mem model k in
          let deleted = IB.delete t k in
          if deleted <> in_model then failwith "delete result mismatch";
          Hashtbl.remove model k)
    ops;
  (t, model)

let prop_model =
  QCheck.Test.make ~name:"btree contents match a map model" ~count:300 arb_ops
    (fun ops ->
      let t, model = run_model ops in
      let expected =
        Hashtbl.fold (fun k _ acc -> k :: acc) model [] |> List.sort compare
      in
      List.map fst (IB.to_list t) = expected)

let prop_invariants =
  QCheck.Test.make ~name:"btree invariants hold under random ops" ~count:300
    arb_ops (fun ops ->
      let t, model = run_model ops in
      IB.check t = Hashtbl.length model)

let prop_range =
  QCheck.Test.make ~name:"range scans agree with model filtering" ~count:300
    QCheck.(pair arb_ops (pair (int_bound 100) (int_bound 100)))
    (fun (ops, (a, b)) ->
      let lo = min a b and hi = max a b in
      let t, model = run_model ops in
      let expected =
        Hashtbl.fold (fun k _ acc -> if k >= lo && k <= hi then k :: acc else acc) model []
        |> List.sort compare
      in
      List.map fst (IB.range t ~lo:(IB.Incl lo) ~hi:(IB.Incl hi)) = expected)

let suite =
  [
    ("btree:unit", unit_tests);
    ( "btree:props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_model; prop_invariants; prop_range ] );
  ]
