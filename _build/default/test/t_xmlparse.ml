(** XML parser and serializer tests. *)

open Xdm
open Helpers

let el_of doc = List.hd doc.Node.children

let parse_tests =
  [
    tc "simple element" (fun () ->
        let d = parse_doc "<a/>" in
        check Alcotest.string "name" "a"
          (Qname.to_string (Option.get (el_of d).Node.name)));
    tc "attributes" (fun () ->
        let d = parse_doc "<a x=\"1\" y='2'/>" in
        check Alcotest.int "n" 2 (List.length (el_of d).Node.attrs));
    tc "duplicate attribute rejected" (fun () ->
        match parse_doc "<a x=\"1\" x=\"2\"/>" with
        | _ -> Alcotest.fail "should fail"
        | exception Xmlparse.Xml_parser.Xml_error _ -> ());
    tc "text content" (fun () ->
        let d = parse_doc "<a>hello</a>" in
        check Alcotest.string "sv" "hello" (Node.string_value d));
    tc "entities" (fun () ->
        let d = parse_doc "<a>&lt;&amp;&gt;&quot;&apos;</a>" in
        check Alcotest.string "sv" "<&>\"'" (Node.string_value d));
    tc "character references" (fun () ->
        let d = parse_doc "<a>&#65;&#x42;</a>" in
        check Alcotest.string "sv" "AB" (Node.string_value d));
    tc "UTF-8 char reference" (fun () ->
        let d = parse_doc "<a>&#233;</a>" in
        check Alcotest.string "sv" "\xc3\xa9" (Node.string_value d));
    tc "CDATA" (fun () ->
        let d = parse_doc "<a><![CDATA[<not> &markup;]]></a>" in
        check Alcotest.string "sv" "<not> &markup;" (Node.string_value d));
    tc "comments and PIs preserved as nodes" (fun () ->
        let d = parse_doc "<a><!--c--><?target data?></a>" in
        let kinds = List.map (fun (n : Node.t) -> n.Node.kind) (el_of d).Node.children in
        check Alcotest.bool "kinds" true (kinds = [ Node.Comment; Node.Pi ]));
    tc "xml declaration skipped" (fun () ->
        let d = parse_doc "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>" in
        check Alcotest.int "one child" 1 (List.length d.Node.children));
    tc "DOCTYPE skipped" (fun () ->
        let d = parse_doc "<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>" in
        check Alcotest.int "one child" 1 (List.length d.Node.children));
    tc "default namespace" (fun () ->
        let d = parse_doc "<a xmlns=\"urn:x\"><b/></a>" in
        let b = List.hd (el_of d).Node.children in
        check Alcotest.string "uri" "urn:x" (Option.get b.Node.name).Qname.uri);
    tc "prefixed namespace" (fun () ->
        let d = parse_doc "<c:a xmlns:c=\"urn:c\"/>" in
        check Alcotest.string "uri" "urn:c" (Option.get (el_of d).Node.name).Qname.uri);
    tc "namespace scoping and shadowing" (fun () ->
        let d = parse_doc "<a xmlns=\"urn:1\"><b xmlns=\"urn:2\"/><c/></a>" in
        let kids = (el_of d).Node.children in
        check Alcotest.string "b" "urn:2"
          (Option.get (List.nth kids 0).Node.name).Qname.uri;
        check Alcotest.string "c" "urn:1"
          (Option.get (List.nth kids 1).Node.name).Qname.uri);
    tc "attributes do not take the default namespace (paper 3.7)" (fun () ->
        let d = parse_doc "<a xmlns=\"urn:x\" p=\"1\"/>" in
        let attr = List.hd (el_of d).Node.attrs in
        check Alcotest.string "uri" "" (Option.get attr.Node.name).Qname.uri);
    tc "undeclared prefix rejected" (fun () ->
        match parse_doc "<u:a/>" with
        | _ -> Alcotest.fail "should fail"
        | exception Xmlparse.Xml_parser.Xml_error _ -> ());
    tc "mismatched end tag rejected" (fun () ->
        match parse_doc "<a></b>" with
        | _ -> Alcotest.fail "should fail"
        | exception Xmlparse.Xml_parser.Xml_error _ -> ());
    tc "content after root rejected" (fun () ->
        match parse_doc "<a/><b/>" with
        | _ -> Alcotest.fail "should fail"
        | exception Xmlparse.Xml_parser.Xml_error _ -> ());
    tc "attribute value normalization" (fun () ->
        let d = parse_doc "<a x=\"1\n2\t3\"/>" in
        let attr = List.hd (el_of d).Node.attrs in
        check Alcotest.string "normalized" "1 2 3" attr.Node.content);
    tc "deeply nested" (fun () ->
        let buf = Buffer.create 256 in
        for _ = 1 to 50 do Buffer.add_string buf "<d>" done;
        Buffer.add_string buf "x";
        for _ = 1 to 50 do Buffer.add_string buf "</d>" done;
        let d = parse_doc (Buffer.contents buf) in
        check Alcotest.string "sv" "x" (Node.string_value d));
  ]

let writer_tests =
  [
    tc "roundtrip simple" (fun () ->
        let src = "<a x=\"1\"><b>t</b><c/></a>" in
        check Alcotest.string "rt" src
          (Xmlparse.Xml_writer.to_string (parse_doc src)));
    tc "escapes in text and attributes" (fun () ->
        let d = parse_doc "<a x=\"&quot;&lt;\">&amp;&lt;</a>" in
        let s = Xmlparse.Xml_writer.to_string d in
        check Alcotest.string "rt" "<a x=\"&quot;&lt;\">&amp;&lt;</a>" s);
    tc "namespace declarations re-emitted" (fun () ->
        let src = "<c:a xmlns:c=\"urn:c\"><c:b/></c:a>" in
        let d = parse_doc src in
        let s = Xmlparse.Xml_writer.to_string d in
        (* reparse and compare structure *)
        let d2 = parse_doc s in
        let b2 = List.hd (el_of d2).Node.children in
        check Alcotest.string "uri" "urn:c" (Option.get b2.Node.name).Qname.uri);
    tc "default namespace re-emitted" (fun () ->
        let d = parse_doc "<a xmlns=\"urn:x\"><b/></a>" in
        let d2 = parse_doc (Xmlparse.Xml_writer.to_string d) in
        let b2 = List.hd (el_of d2).Node.children in
        check Alcotest.string "uri" "urn:x" (Option.get b2.Node.name).Qname.uri);
  ]

(* Property: parse ∘ serialize ∘ parse is stable (fixpoint after one
   round). Random trees are generated directly as nodes. *)
let gen_tree =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "c"; "item"; "price" ] in
  let text = oneofl [ "x"; "hello"; "1 2"; "<&>"; "" ] in
  fix
    (fun self depth ->
      if depth = 0 then map (fun t -> Node.text t) text
      else
        frequency
          [
            (3, map (fun t -> Node.text t) text);
            ( 2,
              map2
                (fun n kids ->
                  let el = Node.element (Qname.make n) in
                  List.iter (Node.append_child el) kids;
                  el)
                name
                (list_size (int_bound 3) (self (depth - 1))) );
          ])
    3

let prop_roundtrip =
  QCheck.Test.make ~name:"xml parse/serialize roundtrip is stable" ~count:200
    (QCheck.make gen_tree)
    (fun tree ->
      let el =
        match tree.Node.kind with
        | Node.Element -> tree
        | _ ->
            let e = Node.element (Qname.make "root") in
            Node.append_child e tree;
            e
      in
      (* One parse normalizes (merges adjacent text, drops empty text);
         after that, parse ∘ serialize must be the identity. *)
      let s1 = Xmlparse.Xml_writer.to_string el in
      let d1 = Xmlparse.Xml_parser.parse_fragment s1 in
      let s2 = Xmlparse.Xml_writer.to_string d1 in
      let d2 = Xmlparse.Xml_parser.parse_fragment s2 in
      let s3 = Xmlparse.Xml_writer.to_string d2 in
      s2 = s3)

let suite =
  [
    ("xmlparse:parser", parse_tests);
    ("xmlparse:writer", writer_tests);
    ("xmlparse:props", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
  ]
