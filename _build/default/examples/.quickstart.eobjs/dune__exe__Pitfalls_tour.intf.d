examples/pitfalls_tour.mli:
