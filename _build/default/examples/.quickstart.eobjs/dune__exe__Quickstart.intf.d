examples/quickstart.mli:
