examples/advisor_demo.ml: Engine List Printf String
