examples/quickstart.ml: Engine List Planner Printf Sqlxml Storage String Unix Workload Xmlparse
