examples/rss_dashboard.mli:
