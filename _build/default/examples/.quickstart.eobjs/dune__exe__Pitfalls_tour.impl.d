examples/pitfalls_tour.ml: Engine List Planner Printf Sqlxml String Workload Xdm
