examples/rss_dashboard.ml: Engine List Planner Printf Sqlxml Storage String Workload Xdm
