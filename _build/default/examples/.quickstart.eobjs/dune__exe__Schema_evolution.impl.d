examples/schema_evolution.ml: Engine List Planner Printf Storage String Workload Xdm Xmlindex Xmlparse Xschema
