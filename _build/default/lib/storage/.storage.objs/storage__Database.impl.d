lib/storage/database.ml: Hashtbl List Printf String Table Xdm
