lib/storage/path_table.ml: Hashtbl List Node Xdm
