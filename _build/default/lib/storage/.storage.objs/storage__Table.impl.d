lib/storage/table.ml: Array Hashtbl List Path_table Printf Sql_value String Xdm
