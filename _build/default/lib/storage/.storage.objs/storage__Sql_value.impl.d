lib/storage/sql_value.ml: Float Int64 Printf String Xdm Xmlparse
