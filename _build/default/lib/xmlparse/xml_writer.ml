(** XDM tree → XML text serializer (used by examples, tests and the CLI to
    display query results). *)

open Xdm

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Serialize, emitting namespace declarations where a node's URI differs
    from what its display prefix would resolve to in the parent scope. The
    scheme is simple: we re-declare [xmlns] / [xmlns:p] on each element
    whose (prefix, uri) pair is not already in scope. *)
let to_buffer buf (n : Node.t) =
  let rec node in_scope (n : Node.t) =
    match n.Node.kind with
    | Node.Document -> List.iter (node in_scope) n.Node.children
    | Node.Text -> Buffer.add_string buf (escape_text n.Node.content)
    | Node.Comment ->
        Buffer.add_string buf "<!--";
        Buffer.add_string buf n.Node.content;
        Buffer.add_string buf "-->"
    | Node.Pi ->
        Buffer.add_string buf "<?";
        Buffer.add_string buf (Option.get n.Node.name).Qname.local;
        if n.Node.content <> "" then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf n.Node.content
        end;
        Buffer.add_string buf "?>"
    | Node.Attribute ->
        let q = Option.get n.Node.name in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Qname.to_string q);
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr n.Node.content);
        Buffer.add_char buf '"'
    | Node.Element ->
        let q = Option.get n.Node.name in
        let decls = ref [] in
        let scope = ref in_scope in
        let declare prefix uri =
          match List.assoc_opt prefix !scope with
          | Some u when u = uri -> ()
          | _ ->
              scope := (prefix, uri) :: !scope;
              decls := (prefix, uri) :: !decls
        in
        declare q.Qname.prefix q.Qname.uri;
        List.iter
          (fun (a : Node.t) ->
            let aq = Option.get a.Node.name in
            if aq.Qname.uri <> "" then declare aq.Qname.prefix aq.Qname.uri)
          n.Node.attrs;
        Buffer.add_char buf '<';
        Buffer.add_string buf (Qname.to_string q);
        List.iter
          (fun (prefix, uri) ->
            if prefix = "" then begin
              if uri <> "" then begin
                Buffer.add_string buf " xmlns=\"";
                Buffer.add_string buf (escape_attr uri);
                Buffer.add_char buf '"'
              end
            end
            else begin
              Buffer.add_string buf (" xmlns:" ^ prefix ^ "=\"");
              Buffer.add_string buf (escape_attr uri);
              Buffer.add_char buf '"'
            end)
          (List.rev !decls);
        List.iter (node !scope) n.Node.attrs;
        if n.Node.children = [] then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          List.iter (node !scope) n.Node.children;
          Buffer.add_string buf "</";
          Buffer.add_string buf (Qname.to_string q);
          Buffer.add_char buf '>'
        end
  in
  node [ ("", "") ] n

let to_string n =
  let buf = Buffer.create 256 in
  to_buffer buf n;
  Buffer.contents buf

(** Serialize an item sequence the way a query shell prints results: nodes
    as XML, atomic values as strings, space-separated. *)
let seq_to_string (s : Item.seq) =
  String.concat " "
    (List.map
       (function
         | Item.N n -> to_string n
         | Item.A a -> Atomic.string_value a)
       s)
