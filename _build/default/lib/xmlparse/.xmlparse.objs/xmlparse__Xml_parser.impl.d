lib/xmlparse/xml_parser.ml: Buffer Char Format List Node Option Qname String Xdm
