lib/xmlparse/xml_writer.ml: Atomic Buffer Item List Node Option Qname String Xdm
