(** XML 1.0 + Namespaces parser producing XDM trees.

    Hand-written single-pass parser. Supports: the XML declaration,
    elements, attributes, namespace declarations ([xmlns], [xmlns:p]) with
    proper scoping, character data, CDATA sections, comments, processing
    instructions, the five predefined entities and numeric character
    references. DTDs are not supported (none of the paper's documents use
    them); an encountered DOCTYPE is skipped without being interpreted. *)

open Xdm

exception Xml_error of { pos : int; msg : string }

let fail pos fmt =
  Format.kasprintf (fun msg -> raise (Xml_error { pos; msg })) fmt

type state = {
  src : string;
  mutable pos : int;
  (* Namespace environment: innermost scope first. [default] is the
     default element namespace URI. *)
  mutable scopes : (string * string) list list;
  mutable defaults : string list;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let advance st n = st.pos <- st.pos + n

let expect st s =
  if looking_at st s then advance st (String.length s)
  else fail st.pos "expected %S" s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st =
  while
    st.pos < String.length st.src && is_space st.src.[st.pos]
  do
    advance st 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(** Raw (possibly prefixed) name. *)
let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st 1
  | _ -> fail st.pos "expected a name");
  let continue = ref true in
  while !continue do
    match peek st with
    | Some c when is_name_char c || c = ':' -> advance st 1
    | _ -> continue := false
  done;
  String.sub st.src start (st.pos - start)

let split_prefix name =
  match String.index_opt name ':' with
  | None -> ("", name)
  | Some i ->
      (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let lookup_prefix st pos prefix =
  if prefix = "xml" then "http://www.w3.org/XML/1998/namespace"
  else
    let rec find = function
      | [] -> fail pos "undeclared namespace prefix %S" prefix
      | scope :: rest -> (
          match List.assoc_opt prefix scope with
          | Some uri -> uri
          | None -> find rest)
    in
    find st.scopes

let current_default st =
  match st.defaults with [] -> "" | d :: _ -> d

(* ------------------------------------------------------------------ *)
(* References                                                          *)
(* ------------------------------------------------------------------ *)

(** Encode a Unicode code point as UTF-8. *)
let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

(** Parse an entity or character reference after the '&'. *)
let parse_reference st buf =
  expect st "&";
  if looking_at st "#x" || looking_at st "#X" then begin
    advance st 2;
    let start = st.pos in
    while
      match peek st with
      | Some c ->
          (c >= '0' && c <= '9')
          || (c >= 'a' && c <= 'f')
          || (c >= 'A' && c <= 'F')
      | None -> false
    do
      advance st 1
    done;
    if st.pos = start then fail st.pos "empty character reference";
    let code = int_of_string ("0x" ^ String.sub st.src start (st.pos - start)) in
    expect st ";";
    utf8_of_code buf code
  end
  else if looking_at st "#" then begin
    advance st 1;
    let start = st.pos in
    while match peek st with Some c -> c >= '0' && c <= '9' | None -> false do
      advance st 1
    done;
    if st.pos = start then fail st.pos "empty character reference";
    let code = int_of_string (String.sub st.src start (st.pos - start)) in
    expect st ";";
    utf8_of_code buf code
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | other -> fail st.pos "unknown entity &%s;" other
  end

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
        advance st 1;
        q
    | _ -> fail st.pos "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated attribute value"
    | Some c when c = quote -> advance st 1
    | Some '&' ->
        parse_reference st buf;
        go ()
    | Some '<' -> fail st.pos "'<' in attribute value"
    | Some c ->
        (* Attribute-value normalization: whitespace becomes a space. *)
        Buffer.add_char buf (if is_space c then ' ' else c);
        advance st 1;
        go ()
  in
  go ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Misc constructs                                                     *)
(* ------------------------------------------------------------------ *)

let parse_comment st =
  expect st "<!--";
  let start = st.pos in
  let rec find () =
    if st.pos + 3 > String.length st.src then fail start "unterminated comment"
    else if looking_at st "-->" then begin
      let data = String.sub st.src start (st.pos - start) in
      advance st 3;
      data
    end
    else begin
      advance st 1;
      find ()
    end
  in
  find ()

let parse_pi st =
  expect st "<?";
  let target = parse_name st in
  skip_space st;
  let start = st.pos in
  let rec find () =
    if st.pos + 2 > String.length st.src then fail start "unterminated PI"
    else if looking_at st "?>" then begin
      let data = String.sub st.src start (st.pos - start) in
      advance st 2;
      (target, data)
    end
    else begin
      advance st 1;
      find ()
    end
  in
  find ()

let parse_cdata st =
  expect st "<![CDATA[";
  let start = st.pos in
  let rec find () =
    if st.pos + 3 > String.length st.src then fail start "unterminated CDATA"
    else if looking_at st "]]>" then begin
      let data = String.sub st.src start (st.pos - start) in
      advance st 3;
      data
    end
    else begin
      advance st 1;
      find ()
    end
  in
  find ()

let skip_doctype st =
  expect st "<!DOCTYPE";
  let depth = ref 1 in
  while !depth > 0 do
    match peek st with
    | None -> fail st.pos "unterminated DOCTYPE"
    | Some '<' ->
        incr depth;
        advance st 1
    | Some '>' ->
        decr depth;
        advance st 1
    | Some '[' ->
        (* internal subset: skip to closing ']' *)
        advance st 1;
        while (match peek st with Some ']' -> false | None -> fail st.pos "unterminated DOCTYPE subset" | _ -> true) do
          advance st 1
        done;
        advance st 1
    | Some _ -> advance st 1
  done

(* ------------------------------------------------------------------ *)
(* Elements                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_element st : Node.t =
  expect st "<";
  let name_pos = st.pos in
  let raw = parse_name st in
  (* Collect raw attributes first: namespace declarations in the same tag
     apply to the tag's own name. *)
  let raw_attrs = ref [] in
  let self_closing = ref false in
  let rec attrs () =
    skip_space st;
    match peek st with
    | Some '>' -> advance st 1
    | Some '/' ->
        expect st "/>";
        self_closing := true
    | Some c when is_name_start c ->
        let apos = st.pos in
        let aname = parse_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let v = parse_attr_value st in
        raw_attrs := (aname, v, apos) :: !raw_attrs;
        attrs ()
    | _ -> fail st.pos "malformed start tag"
  in
  attrs ();
  let raw_attrs = List.rev !raw_attrs in
  (* Push namespace scope from xmlns declarations. *)
  let decls =
    List.filter_map
      (fun (n, v, _) ->
        match split_prefix n with
        | "xmlns", local -> Some (local, v)
        | _ -> None)
      raw_attrs
  in
  let default =
    List.fold_left
      (fun acc (n, v, _) -> if n = "xmlns" then Some v else acc)
      None raw_attrs
  in
  st.scopes <- decls :: st.scopes;
  st.defaults <-
    (match default with Some d -> d | None -> current_default st)
    :: st.defaults;
  (* Resolve element name. *)
  let prefix, local = split_prefix raw in
  let uri =
    if prefix = "" then current_default st else lookup_prefix st name_pos prefix
  in
  let el = Node.element (Qname.make ~prefix ~uri local) in
  (* Resolve attributes (skipping xmlns declarations; attributes never take
     the default namespace — the paper leans on this in Section 3.7). *)
  List.iter
    (fun (n, v, apos) ->
      let p, l = split_prefix n in
      if not (n = "xmlns" || p = "xmlns") then begin
        let auri = if p = "" then "" else lookup_prefix st apos p in
        let q = Qname.make ~prefix:p ~uri:auri l in
        if
          List.exists
            (fun (a : Node.t) -> Qname.equal (Option.get a.Node.name) q)
            el.Node.attrs
        then fail apos "duplicate attribute %s" n;
        Node.add_attr el (Node.attribute q v)
      end)
    raw_attrs;
  (if not !self_closing then begin
     parse_content st el;
     expect st "</";
     let close = parse_name st in
     if close <> raw then
       fail st.pos "mismatched end tag </%s> for <%s>" close raw;
     skip_space st;
     expect st ">"
   end);
  (* Pop namespace scope. *)
  st.scopes <- List.tl st.scopes;
  st.defaults <- List.tl st.defaults;
  el

and parse_content st el =
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      Node.append_child el (Node.text (Buffer.contents buf));
      Buffer.clear buf
    end
  in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated element content"
    | Some '<' ->
        if looking_at st "</" then flush_text ()
        else if looking_at st "<!--" then begin
          flush_text ();
          Node.append_child el (Node.comment (parse_comment st));
          go ()
        end
        else if looking_at st "<![CDATA[" then begin
          Buffer.add_string buf (parse_cdata st);
          go ()
        end
        else if looking_at st "<?" then begin
          flush_text ();
          let t, d = parse_pi st in
          Node.append_child el (Node.pi t d);
          go ()
        end
        else begin
          flush_text ();
          Node.append_child el (parse_element st);
          go ()
        end
    | Some '&' ->
        parse_reference st buf;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st 1;
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Documents                                                           *)
(* ------------------------------------------------------------------ *)

(** Parse a complete document; returns the document node. *)
let parse_document (src : string) : Node.t =
  let st = { src; pos = 0; scopes = [ [] ]; defaults = [ "" ] } in
  let doc = Node.document () in
  let rec prolog () =
    skip_space st;
    if looking_at st "<?xml" then begin
      let _ = parse_pi st in
      prolog ()
    end
    else if looking_at st "<!--" then begin
      Node.append_child doc (Node.comment (parse_comment st));
      prolog ()
    end
    else if looking_at st "<?" then begin
      let t, d = parse_pi st in
      Node.append_child doc (Node.pi t d);
      prolog ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      prolog ()
    end
  in
  prolog ();
  if not (looking_at st "<") then fail st.pos "expected root element";
  Node.append_child doc (parse_element st);
  (* trailing misc *)
  let rec epilog () =
    skip_space st;
    if looking_at st "<!--" then begin
      Node.append_child doc (Node.comment (parse_comment st));
      epilog ()
    end
    else if looking_at st "<?" then begin
      let t, d = parse_pi st in
      Node.append_child doc (Node.pi t d);
      epilog ()
    end
    else if st.pos < String.length st.src then
      fail st.pos "content after root element"
  in
  epilog ();
  doc

(** Parse a string that contains a single element (no document node). *)
let parse_fragment (src : string) : Node.t =
  let st = { src; pos = 0; scopes = [ [] ]; defaults = [ "" ] } in
  skip_space st;
  let el = parse_element st in
  skip_space st;
  if st.pos < String.length st.src then fail st.pos "trailing content";
  el
