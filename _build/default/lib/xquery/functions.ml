(** Built-in function library ([fn:], [db2-fn:]).

    Arguments arrive already evaluated; only the dynamic context is needed
    (for [position()], [last()], 0-argument [string()], ...). *)

open Xdm

let seq_bool b : Item.seq = [ Item.A (Atomic.Boolean b) ]
let seq_int i : Item.seq = [ Item.A (Atomic.Integer (Int64.of_int i)) ]
let seq_str s : Item.seq = [ Item.A (Atomic.Str s) ]
let seq_dbl f : Item.seq = [ Item.A (Atomic.Double f) ]

let arity_error name n =
  Xerror.raise_err "XPST0017" "wrong number of arguments for fn:%s (%d)" name n

let one_string name = function
  | [ arg ] -> (
      match Item.atomize arg with
      | [] -> ""
      | [ a ] -> Atomic.string_value a
      | _ -> Xerror.type_error "fn:%s expects a singleton string" name)
  | args -> arity_error name (List.length args)

let string_value_of_seq name = function
  | [] -> ""
  | [ it ] -> Item.string_of_item it
  | _ -> Xerror.type_error "fn:%s: sequence of more than one item" name

(** Numeric aggregation helper: atomize, untypedAtomic → double. *)
let numeric_list name (s : Item.seq) : Atomic.t list =
  List.map
    (fun a ->
      match a with
      | Atomic.Untyped _ -> Atomic.cast a Atomic.TDouble
      | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _ -> a
      | _ ->
          Xerror.type_error "fn:%s on non-numeric %s" name
            (Atomic.type_name (Atomic.type_of a)))
    (Item.atomize s)

let fold_numeric _name op (vals : Atomic.t list) : Atomic.t =
  match vals with
  | [] -> assert false
  | first :: rest ->
      List.fold_left (fun acc v -> Compare.arith op acc v) first rest

let call (ctx : Ctx.t) ~prefix ~local (args : Item.seq list) : Item.seq =
  match (prefix, local, args) with
  (* ---------------- context ---------------- *)
  | ("" | "fn"), "position", [] -> seq_int ctx.Ctx.pos
  | ("" | "fn"), "last", [] -> seq_int ctx.Ctx.size
  (* ---------------- cardinality ---------------- *)
  | ("" | "fn"), "count", [ s ] -> seq_int (List.length s)
  | ("" | "fn"), "exists", [ s ] -> seq_bool (s <> [])
  | ("" | "fn"), "empty", [ s ] -> seq_bool (s = [])
  | ("" | "fn"), "not", [ s ] -> seq_bool (not (Item.ebv s))
  | ("" | "fn"), "boolean", [ s ] -> seq_bool (Item.ebv s)
  | ("" | "fn"), "zero-or-one", [ s ] ->
      if List.length s <= 1 then s
      else Xerror.type_error "fn:zero-or-one: more than one item"
  | ("" | "fn"), "exactly-one", [ s ] ->
      if List.length s = 1 then s
      else Xerror.type_error "fn:exactly-one: not exactly one item"
  | ("" | "fn"), "one-or-more", [ s ] ->
      if s <> [] then s
      else Xerror.type_error "fn:one-or-more: empty sequence"
  (* ---------------- atomization / strings ---------------- *)
  | ("" | "fn"), "data", [ s ] -> List.map Item.of_atomic (Item.atomize s)
  | ("" | "fn"), "data", [] ->
      List.map Item.of_atomic (Item.atomize [ Ctx.context_item ctx ])
  | ("" | "fn"), "string", [] -> seq_str (Item.string_of_item (Ctx.context_item ctx))
  | ("" | "fn"), "string", [ s ] -> seq_str (string_value_of_seq "string" s)
  | ("" | "fn"), "string-length", [] ->
      seq_int (String.length (Item.string_of_item (Ctx.context_item ctx)))
  | ("" | "fn"), "string-length", [ _ ] ->
      seq_int (String.length (one_string "string-length" args))
  | ("" | "fn"), "normalize-space", [ _ ] ->
      let s = one_string "normalize-space" args in
      let words =
        String.split_on_char ' '
          (String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s)
        |> List.filter (fun w -> w <> "")
      in
      seq_str (String.concat " " words)
  | ("" | "fn"), "concat", args when List.length args >= 2 ->
      seq_str
        (String.concat ""
           (List.map (fun a -> string_value_of_seq "concat" a) args))
  | ("" | "fn"), "string-join", [ s; sep ] ->
      let sep = one_string "string-join" [ sep ] in
      seq_str
        (String.concat sep (List.map Atomic.string_value (Item.atomize s)))
  | ("" | "fn"), "contains", [ a; b ] ->
      let h = one_string "contains" [ a ] and n = one_string "contains" [ b ] in
      let contains hay needle =
        let hl = String.length hay and nl = String.length needle in
        if nl = 0 then true
        else
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
      in
      seq_bool (contains h n)
  | ("" | "fn"), "starts-with", [ a; b ] ->
      let h = one_string "starts-with" [ a ] and n = one_string "starts-with" [ b ] in
      seq_bool
        (String.length n <= String.length h
        && String.sub h 0 (String.length n) = n)
  | ("" | "fn"), "ends-with", [ a; b ] ->
      let h = one_string "ends-with" [ a ] and n = one_string "ends-with" [ b ] in
      seq_bool
        (String.length n <= String.length h
        && String.sub h (String.length h - String.length n) (String.length n) = n)
  | ("" | "fn"), "substring", [ s; start ] ->
      let str = one_string "substring" [ s ] in
      let st =
        match numeric_list "substring" start with
        | [ v ] -> int_of_float (Option.get (Atomic.to_float_opt v))
        | _ -> Xerror.type_error "fn:substring: bad start"
      in
      let from = max 0 (st - 1) in
      if from >= String.length str then seq_str ""
      else seq_str (String.sub str from (String.length str - from))
  | ("" | "fn"), "substring", [ s; start; len ] ->
      let str = one_string "substring" [ s ] in
      let num e name =
        match numeric_list name e with
        | [ v ] -> int_of_float (Option.get (Atomic.to_float_opt v))
        | _ -> Xerror.type_error "fn:substring: bad %s" name
      in
      let st = num start "start" and ln = num len "length" in
      let from = max 0 (st - 1) in
      let upto = min (String.length str) (st - 1 + ln) in
      if from >= upto then seq_str ""
      else seq_str (String.sub str from (upto - from))
  | ("" | "fn"), "translate", [ s; from; to_ ] ->
      let str = one_string "translate" [ s ]
      and f = one_string "translate" [ from ]
      and t = one_string "translate" [ to_ ] in
      let buf = Buffer.create (String.length str) in
      String.iter
        (fun c ->
          match String.index_opt f c with
          | None -> Buffer.add_char buf c
          | Some i -> if i < String.length t then Buffer.add_char buf t.[i])
        str;
      seq_str (Buffer.contents buf)
  | ("" | "fn"), "deep-equal", [ a; b ] ->
      (* structural equality ignoring node identity: serialize-and-compare
         on the string/typed shape of the trees *)
      let rec node_eq (x : Node.t) (y : Node.t) =
        x.Node.kind = y.Node.kind
        && (match (x.Node.name, y.Node.name) with
           | Some qx, Some qy -> Qname.equal qx qy
           | None, None -> true
           | _ -> false)
        && (match x.Node.kind with
           | Node.Text | Node.Comment | Node.Pi | Node.Attribute ->
               x.Node.content = y.Node.content
           | _ -> true)
        && List.length x.Node.attrs = List.length y.Node.attrs
        && List.for_all
             (fun (ax : Node.t) ->
               List.exists
                 (fun (ay : Node.t) ->
                   Qname.equal (Option.get ax.Node.name) (Option.get ay.Node.name)
                   && ax.Node.content = ay.Node.content)
                 y.Node.attrs)
             x.Node.attrs
        &&
        let xc =
          List.filter (fun (n : Node.t) -> n.Node.kind <> Node.Comment) x.Node.children
        and yc =
          List.filter (fun (n : Node.t) -> n.Node.kind <> Node.Comment) y.Node.children
        in
        List.length xc = List.length yc && List.for_all2 node_eq xc yc
      in
      let item_eq x y =
        match (x, y) with
        | Item.A va, Item.A vb -> (
            match Compare.general_convert va vb with
            | va, vb -> Compare.apply_op Compare.Eq va vb
            | exception Xerror.Error _ -> false)
        | Item.N nx, Item.N ny -> node_eq nx ny
        | _ -> false
      in
      seq_bool (List.length a = List.length b && List.for_all2 item_eq a b)
  | ("" | "fn"), "round-half-to-even", [ s ] -> (
      match numeric_list "round-half-to-even" s with
      | [] -> []
      | [ Atomic.Integer i ] -> [ Item.A (Atomic.Integer i) ]
      | [ (Atomic.Decimal x | Atomic.Double x) as v ] ->
          (* banker's rounding: exactly-halfway values round to even *)
          let r =
            if Float.abs (Float.rem x 1.) = 0.5 then
              2. *. Float.round (x /. 2.)
            else Float.round x
          in
          [
            Item.A
              (match v with
              | Atomic.Decimal _ -> Atomic.Decimal r
              | _ -> Atomic.Double r);
          ]
      | _ -> Xerror.type_error "fn:round-half-to-even: non-singleton")
  | ("" | "fn"), "upper-case", [ _ ] ->
      seq_str (String.uppercase_ascii (one_string "upper-case" args))
  | ("" | "fn"), "lower-case", [ _ ] ->
      seq_str (String.lowercase_ascii (one_string "lower-case" args))
  (* ---------------- numerics ---------------- *)
  | ("" | "fn"), "number", [] -> (
      match Atomic.cast_opt (Atomic.Untyped (Item.string_of_item (Ctx.context_item ctx))) Atomic.TDouble with
      | Some (Atomic.Double f) -> seq_dbl f
      | _ -> seq_dbl Float.nan)
  | ("" | "fn"), "number", [ s ] -> (
      match Item.atomize s with
      | [] -> seq_dbl Float.nan
      | [ a ] -> (
          match Atomic.cast_opt a Atomic.TDouble with
          | Some (Atomic.Double f) -> seq_dbl f
          | _ -> seq_dbl Float.nan)
      | _ -> Xerror.type_error "fn:number: non-singleton")
  | ("" | "fn"), "sum", [ s ] -> (
      match numeric_list "sum" s with
      | [] -> seq_int 0
      | vals -> [ Item.A (fold_numeric "sum" Ast.Add vals) ])
  | ("" | "fn"), "avg", [ s ] -> (
      match numeric_list "avg" s with
      | [] -> []
      | vals ->
          let total = fold_numeric "avg" Ast.Add vals in
          [
            Item.A
              (Compare.arith Ast.Div total
                 (Atomic.Integer (Int64.of_int (List.length vals))));
          ])
  | ("" | "fn"), ("min" | "max"), [ s ] -> (
      let keep_left = if local = "min" then Compare.Lt else Compare.Gt in
      match Item.atomize s with
      | [] -> []
      | first :: rest ->
          let conv = function
            | Atomic.Untyped u -> Atomic.cast (Atomic.Untyped u) Atomic.TDouble
            | v -> v
          in
          [
            Item.A
              (List.fold_left
                 (fun acc v ->
                   let v = conv v in
                   if Compare.apply_op keep_left v acc then v else acc)
                 (conv first) rest);
          ])
  | ("" | "fn"), "abs", [ s ] -> (
      match numeric_list "abs" s with
      | [] -> []
      | [ Atomic.Integer i ] -> [ Item.A (Atomic.Integer (Int64.abs i)) ]
      | [ Atomic.Decimal f ] -> [ Item.A (Atomic.Decimal (Float.abs f)) ]
      | [ Atomic.Double f ] -> [ Item.A (Atomic.Double (Float.abs f)) ]
      | _ -> Xerror.type_error "fn:abs: non-singleton")
  | ("" | "fn"), ("floor" | "ceiling" | "round"), [ s ] -> (
      let f =
        match local with
        | "floor" -> Float.floor
        | "ceiling" -> Float.ceil
        | _ -> Float.round
      in
      match numeric_list local s with
      | [] -> []
      | [ Atomic.Integer i ] -> [ Item.A (Atomic.Integer i) ]
      | [ Atomic.Decimal x ] -> [ Item.A (Atomic.Decimal (f x)) ]
      | [ Atomic.Double x ] -> [ Item.A (Atomic.Double (f x)) ]
      | _ -> Xerror.type_error "fn:%s: non-singleton" local)
  (* ---------------- sequences ---------------- *)
  | ("" | "fn"), "distinct-values", [ s ] ->
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun a ->
          let key =
            Atomic.type_name (Atomic.type_of a) ^ "\x00" ^ Atomic.string_value a
          in
          (* untyped compares as string for distinctness *)
          let key =
            match a with
            | Atomic.Untyped s -> "xs:string\x00" ^ s
            | Atomic.Integer i -> "num\x00" ^ Atomic.string_of_double (Int64.to_float i)
            | Atomic.Decimal f | Atomic.Double f -> "num\x00" ^ Atomic.string_of_double f
            | _ -> key
          in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some (Item.A a)
          end)
        (Item.atomize s)
  | ("" | "fn"), "reverse", [ s ] -> List.rev s
  | ("" | "fn"), "subsequence", [ s; start ] -> (
      match numeric_list "subsequence" start with
      | [ v ] ->
          let st = int_of_float (Option.get (Atomic.to_float_opt v)) in
          List.filteri (fun i _ -> i + 1 >= st) s
      | _ -> Xerror.type_error "fn:subsequence: bad start")
  (* ---------------- nodes ---------------- *)
  | ("" | "fn"), "root", [] -> [ Item.N (Node.root (Ctx.context_node ctx)) ]
  | ("" | "fn"), "root", [ s ] -> (
      match s with
      | [] -> []
      | [ Item.N n ] -> [ Item.N (Node.root n) ]
      | _ -> Xerror.type_error "fn:root expects a single node")
  | ("" | "fn"), "name", s_opt -> (
      let node =
        match s_opt with
        | [] -> Ctx.context_node ctx
        | [ [ Item.N n ] ] -> n
        | [ [] ] -> Node.text ""
        | _ -> Xerror.type_error "fn:name expects a single node"
      in
      match node.Node.name with
      | Some q -> seq_str (Qname.to_string q)
      | None -> seq_str "")
  | ("" | "fn"), "local-name", s_opt -> (
      let node =
        match s_opt with
        | [] -> Ctx.context_node ctx
        | [ [ Item.N n ] ] -> n
        | [ [] ] -> Node.text ""
        | _ -> Xerror.type_error "fn:local-name expects a single node"
      in
      match node.Node.name with
      | Some q -> seq_str q.Qname.local
      | None -> seq_str "")
  | ("" | "fn"), "namespace-uri", s_opt -> (
      let node =
        match s_opt with
        | [] -> Ctx.context_node ctx
        | [ [ Item.N n ] ] -> n
        | [ [] ] -> Node.text ""
        | _ -> Xerror.type_error "fn:namespace-uri expects a single node"
      in
      match node.Node.name with
      | Some q -> seq_str q.Qname.uri
      | None -> seq_str "")
  (* ---------------- logic constants ---------------- *)
  | ("" | "fn"), "true", [] -> seq_bool true
  | ("" | "fn"), "false", [] -> seq_bool false
  (* ---------------- collections ---------------- *)
  | "db2-fn", "xmlcolumn", [ s ] -> (
      match s with
      | [ Item.A a ] -> ctx.Ctx.resolver (Atomic.string_value a)
      | _ -> Xerror.type_error "db2-fn:xmlcolumn expects a string literal")
  | ("" | "fn"), "collection", [ s ] -> (
      match s with
      | [ Item.A a ] -> ctx.Ctx.resolver (Atomic.string_value a)
      | _ -> Xerror.type_error "fn:collection expects a string")
  (* ---------------- extensions ---------------- *)
  | "xqdb", "between", [ vs; lo; hi ] ->
      (* The explicit "between" the paper's conclusion asks the standards
         bodies for (Section 4): true iff SOME value of the first argument
         lies within [lo, hi]. Because the semantics is existential over a
         closed range, a single index range scan answers it exactly —
         no singleton proof needed (contrast Section 3.10). *)
      let nums s ctxname =
        List.map
          (fun a ->
            match a with
            | Atomic.Untyped _ -> Atomic.cast a Atomic.TDouble
            | a -> a)
          (Item.atomize s)
        |> fun l -> ignore ctxname; l
      in
      let single name s =
        match nums s name with
        | [ v ] -> v
        | _ -> Xerror.type_error "xqdb:between: %s bound must be a singleton" name
      in
      let lo = single "lower" lo and hi = single "upper" hi in
      seq_bool
        (List.exists
           (fun v ->
             Compare.apply_op Compare.Ge v lo
             && Compare.apply_op Compare.Le v hi)
           (nums vs "values"))
  | _ ->
      Xerror.raise_err "XPST0017" "unknown function %s:%s/%d"
        (if prefix = "" then "fn" else prefix)
        local (List.length args)
