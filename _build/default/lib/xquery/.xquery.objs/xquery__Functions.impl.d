lib/xquery/functions.ml: Ast Atomic Buffer Compare Ctx Float Hashtbl Int64 Item List Node Option Qname String Xdm Xerror
