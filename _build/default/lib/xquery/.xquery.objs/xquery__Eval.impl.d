lib/xquery/eval.ml: Ast Atomic Buffer Compare Construct Ctx Functions Int64 Item List Node Option Parser Qname Static String Xdm Xerror
