lib/xquery/ctx.ml: List Map String Xdm
