lib/xquery/parser.ml: Ast Buffer Char Lexer List Option Printf String Xdm
