lib/xquery/lexer.ml: Buffer Char Format Int64 Printf String Xdm
