lib/xquery/construct.ml: Atomic Buffer Item List Node Option Qname Xdm Xerror
