lib/xquery/ast.ml: List String Xdm
