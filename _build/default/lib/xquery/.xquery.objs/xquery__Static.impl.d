lib/xquery/static.ml: Ast List Map Option Set String Xdm
