lib/xquery/compare.ml: Ast Atomic Float Int64 List Option String Xdm Xerror
