(** Element construction semantics (paper Section 3.6).

    Construction is deliberately implemented exactly by the book, because
    the paper's point is that these semantics block query rewrites:

    - constructed nodes get *fresh node identities* (copying content nodes),
    - atomic values are converted to [xdt:untypedAtomic] text, adjacent
      atomics joined by a single space,
    - type annotations of copied nodes are erased ("strip" construction
      mode): the constructed element is [xs:untyped],
    - duplicate attribute names raise [XQDY0025],
    - attribute content items must precede other content ([XQTY0024]). *)

open Xdm

(** One evaluated piece of constructor content. *)
type piece = PText of string | PSeq of Item.seq

let element ?(preserve = false) (name : Qname.t)
    ~(attrs : (Qname.t * string) list) ~(content : piece list) : Node.t =
  let el = Node.element name in
  let add_attr q v =
    if
      List.exists
        (fun (a : Node.t) -> Qname.equal (Option.get a.Node.name) q)
        el.Node.attrs
    then Xerror.dup_attribute "duplicate attribute %s" (Qname.to_string q);
    Node.add_attr el (Node.attribute q v)
  in
  List.iter (fun (q, v) -> add_attr q v) attrs;
  let buf = Buffer.create 16 in
  let last_was_atomic = ref false in
  let seen_non_attr = ref false in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      Node.append_child el (Node.text (Buffer.contents buf));
      Buffer.clear buf
    end;
    last_was_atomic := false
  in
  let add_item (it : Item.t) =
    match it with
    | Item.A a ->
        if !last_was_atomic then Buffer.add_char buf ' ';
        Buffer.add_string buf (Atomic.string_value a);
        last_was_atomic := true;
        seen_non_attr := true
    | Item.N n -> (
        match n.Node.kind with
        | Node.Attribute ->
            if !seen_non_attr || Buffer.length buf > 0 then
              Xerror.raise_err "XQTY0024"
                "attribute node after non-attribute content in constructor";
            add_attr (Option.get n.Node.name) n.Node.content
        | Node.Document ->
            flush_text ();
            List.iter
              (fun c ->
                Node.append_child el (Node.copy ~strip_types:(not preserve) c))
              n.Node.children;
            seen_non_attr := true
        | _ ->
            flush_text ();
            Node.append_child el (Node.copy ~strip_types:(not preserve) n);
            seen_non_attr := true)
  in
  List.iter
    (function
      | PText s ->
          (* literal text breaks atomic adjacency *)
          if s <> "" then begin
            Buffer.add_string buf s;
            last_was_atomic := false;
            seen_non_attr := true
          end
      | PSeq items ->
          List.iter add_item items;
          (* a sequence boundary also breaks atomic adjacency with the
             next enclosed expression *)
          last_was_atomic := false)
    content;
  flush_text ();
  el.Node.ann <- Node.Untyped;
  el
