(** XQuery comparison and arithmetic semantics.

    The distinction between *general* ([=], [>], ...) and *value* ([eq],
    [gt], ...) comparisons carries several of the paper's pitfalls:

    - general comparisons are existential (Section 3.10: a lineitem with
      prices 250 and 50 satisfies [price > 100 and price < 200]);
    - value comparisons require singleton operands (Section 3.3: Query 14's
      XMLCast raises a type error where Query 13's [eq] inside a predicate
      succeeds per-node; Section 3.10: [price gt 100] fails at runtime on a
      multi-price lineitem);
    - untypedAtomic converts to *double* against a numeric operand but to
      *string* against a string operand — the root of Section 3.1 (a
      predicate [@price > "100"] is a string predicate and matches string
      values like "20 USD"). *)

open Xdm

type op = Eq | Ne | Lt | Le | Gt | Ge

let op_of_gcmp : Ast.gcmp -> op = function
  | Ast.GEq -> Eq
  | Ast.GNe -> Ne
  | Ast.GLt -> Lt
  | Ast.GLe -> Le
  | Ast.GGt -> Gt
  | Ast.GGe -> Ge

let op_of_vcmp : Ast.vcmp -> op = function
  | Ast.VEq -> Eq
  | Ast.VNe -> Ne
  | Ast.VLt -> Lt
  | Ast.VLe -> Le
  | Ast.VGt -> Gt
  | Ast.VGe -> Ge

let is_numeric a = Atomic.is_numeric_type (Atomic.type_of a)

let is_nan = function
  | Atomic.Double f | Atomic.Decimal f -> Float.is_nan f
  | _ -> false

(** Apply [op] to two atomics of *already-converted*, compatible types. *)
let apply_op op a b : bool =
  if is_nan a || is_nan b then (* NaN: only [ne] is true *) op = Ne
  else
    match Atomic.compare_values a b with
    | Atomic.Eq -> ( match op with Eq | Le | Ge -> true | _ -> false)
    | Atomic.Lt -> ( match op with Lt | Le | Ne -> true | _ -> false)
    | Atomic.Gt -> ( match op with Gt | Ge | Ne -> true | _ -> false)
    | Atomic.Uncomparable ->
        Xerror.type_error "cannot compare %s with %s"
          (Atomic.type_name (Atomic.type_of a))
          (Atomic.type_name (Atomic.type_of b))

(** untypedAtomic conversion for a *general* comparison pair. *)
let general_convert a b =
  match (a, b) with
  | Atomic.Untyped x, Atomic.Untyped y -> (Atomic.Str x, Atomic.Str y)
  | Atomic.Untyped x, other when is_numeric other ->
      (Atomic.cast (Atomic.Untyped x) Atomic.TDouble, other)
  | other, Atomic.Untyped y when is_numeric other ->
      (other, Atomic.cast (Atomic.Untyped y) Atomic.TDouble)
  | Atomic.Untyped x, other ->
      (Atomic.cast (Atomic.Untyped x) (Atomic.type_of other), other)
  | other, Atomic.Untyped y ->
      (other, Atomic.cast (Atomic.Untyped y) (Atomic.type_of other))
  | a, b -> (a, b)

(** General (existential) comparison over two atomized sequences. *)
let general op (xs : Atomic.t list) (ys : Atomic.t list) : bool =
  List.exists
    (fun x ->
      List.exists
        (fun y ->
          let x', y' = general_convert x y in
          apply_op op x' y')
        ys)
    xs

(** Value comparison: operands must be empty or singleton after
    atomization; untypedAtomic converts to string. Returns [None] when
    either operand is empty (the comparison result is the empty
    sequence). *)
let value op (xs : Atomic.t list) (ys : Atomic.t list) : bool option =
  let single side = function
    | [] -> None
    | [ v ] -> Some v
    | vs ->
        Xerror.type_error
          "value comparison requires a singleton %s operand, got %d items"
          side (List.length vs)
  in
  match (single "left" xs, single "right" ys) with
  | None, _ | _, None -> None
  | Some x, Some y ->
      let conv = function
        | Atomic.Untyped s -> Atomic.Str s
        | v -> v
      in
      Some (apply_op op (conv x) (conv y))

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let numeric_of_atomic a =
  match a with
  | Atomic.Untyped _ -> Atomic.cast a Atomic.TDouble
  | Atomic.Integer _ | Atomic.Decimal _ | Atomic.Double _ -> a
  | _ ->
      Xerror.type_error "arithmetic on non-numeric %s"
        (Atomic.type_name (Atomic.type_of a))

let arith (op : Ast.arith) (a : Atomic.t) (b : Atomic.t) : Atomic.t =
  let a = numeric_of_atomic a and b = numeric_of_atomic b in
  match (op, a, b) with
  | Ast.IDiv, _, _ -> (
      match (a, b) with
      | Atomic.Integer _, Atomic.Integer 0L ->
          Xerror.raise_err "FOAR0001" "integer division by zero"
      | Atomic.Integer x, Atomic.Integer y -> Atomic.Integer (Int64.div x y)
      | _ ->
          let x = Option.get (Atomic.to_float_opt a)
          and y = Option.get (Atomic.to_float_opt b) in
          if y = 0. then Xerror.raise_err "FOAR0001" "division by zero"
          else Atomic.Integer (Int64.of_float (x /. y)))
  | Ast.Mod, Atomic.Integer x, Atomic.Integer y ->
      if y = 0L then Xerror.raise_err "FOAR0001" "integer mod by zero"
      else Atomic.Integer (Int64.rem x y)
  | Ast.Div, Atomic.Integer x, Atomic.Integer y ->
      (* integer div yields a decimal *)
      if y = 0L then Xerror.raise_err "FOAR0001" "integer division by zero"
      else Atomic.Decimal (Int64.to_float x /. Int64.to_float y)
  | _, Atomic.Integer x, Atomic.Integer y -> (
      match op with
      | Ast.Add -> Atomic.Integer (Int64.add x y)
      | Ast.Sub -> Atomic.Integer (Int64.sub x y)
      | Ast.Mul -> Atomic.Integer (Int64.mul x y)
      | _ -> assert false)
  | _ ->
      let x = Option.get (Atomic.to_float_opt a)
      and y = Option.get (Atomic.to_float_opt b) in
      let as_double = match (a, b) with
        | Atomic.Double _, _ | _, Atomic.Double _ -> true
        | _ -> false
      in
      let wrap f = if as_double then Atomic.Double f else Atomic.Decimal f in
      (match op with
      | Ast.Add -> wrap (x +. y)
      | Ast.Sub -> wrap (x -. y)
      | Ast.Mul -> wrap (x *. y)
      | Ast.Div ->
          if y = 0. && not as_double then
            Xerror.raise_err "FOAR0001" "decimal division by zero"
          else wrap (x /. y)
      | Ast.Mod -> wrap (Float.rem x y)
      | Ast.IDiv -> assert false)

let negate (a : Atomic.t) : Atomic.t =
  match numeric_of_atomic a with
  | Atomic.Integer x -> Atomic.Integer (Int64.neg x)
  | Atomic.Decimal f -> Atomic.Decimal (-.f)
  | Atomic.Double f -> Atomic.Double (-.f)
  | _ -> assert false

(** Comparison used by [order by]: empty-least, untyped-as-string. *)
let order_key_compare (a : Atomic.t option) (b : Atomic.t option) : int =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> (
      let conv = function Atomic.Untyped s -> Atomic.Str s | v -> v in
      match Atomic.compare_values (conv x) (conv y) with
      | Atomic.Lt -> -1
      | Atomic.Eq -> 0
      | Atomic.Gt -> 1
      | Atomic.Uncomparable ->
          (* fall back to string comparison for heterogeneous keys *)
          String.compare (Atomic.string_value x) (Atomic.string_value y))
