(** The codified advisor: the paper's Tips 1–12 (plus the Section 3.10
    "between" guidance) as mechanical checks over a statement.

    This is the reproduction of the paper's actual contribution — its
    guidelines — as executable analysis: given a query and the index
    catalog, report which pitfalls the query falls into, quoting the
    paper's tip, and what to do instead. *)

open Xquery.Ast
module P = Eligibility.Predicate
module M = Eligibility.Match_index
module X = Xmlindex.Xindex

type advice = {
  tip : int;  (** 1–12 = the paper's Tips; 13 = Section 3.10 (between) *)
  title : string;
  detail : string;
}

let tip_title = function
  | 1 -> "Tip 1: use type-cast expressions in XQuery join predicates"
  | 2 ->
      "Tip 2: to retrieve XML fragments, use the stand-alone XQuery \
       interface"
  | 3 ->
      "Tip 3: make sure the XQuery inside XMLEXISTS returns nodes, not a \
       boolean"
  | 4 -> "Tip 4: express predicates in the XMLTABLE row-producer"
  | 5 ->
      "Tip 5: express the join condition on the side that has the index"
  | 6 -> "Tip 6: always express XML joins on the XQuery side"
  | 7 ->
      "Tip 7: do not put predicates inside element constructors in return \
       clauses"
  | 8 ->
      "Tip 8: do not use absolute paths when the context is a constructed \
       element"
  | 9 -> "Tip 9: write predicates on the data before any construction"
  | 10 ->
      "Tip 10: keep namespace declarations consistent between data, \
       queries and indexes"
  | 11 -> "Tip 11: align /text() steps between queries and indexes"
  | 12 -> "Tip 12: to index all attributes use //@*, not //* or //node()"
  | 13 ->
      "Section 3.10: make 'between' predicates singleton-safe (value \
       comparisons, self axis, or attributes)"
  | _ -> "?"

let mk tip fmt =
  Format.kasprintf (fun detail -> { tip; title = tip_title tip; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Generic expression walk                                             *)
(* ------------------------------------------------------------------ *)

let rec iter_expr (f : expr -> unit) (e : expr) : unit =
  f e;
  let r = iter_expr f in
  match e with
  | ELit _ | EVar _ | EContext -> ()
  | ESeq es -> List.iter r es
  | EPath (_, steps) -> List.iter (iter_step f) steps
  | EFlwor (clauses, ret) ->
      List.iter
        (function
          | CFor binds | CLet binds -> List.iter (fun (_, e) -> r e) binds
          | CWhere e -> r e
          | COrder keys -> List.iter (fun (e, _) -> r e) keys)
        clauses;
      r ret
  | EQuant (_, binds, sat) ->
      List.iter (fun (_, e) -> r e) binds;
      r sat
  | EIf (a, b, c) -> r a; r b; r c
  | EAnd (a, b) | EOr (a, b) | EGCmp (_, a, b) | EVCmp (_, a, b)
  | ENCmp (_, a, b) | EArith (_, a, b) | ERange (a, b) | EUnion (a, b)
  | EIntersect (a, b) | EExcept (a, b) ->
      r a; r b
  | ENeg a | ECast (a, _) | ECastable (a, _) | EInstanceOf (a, _) -> r a
  | ECall { args; _ } -> List.iter r args
  | EElem c -> iter_ctor f c
  | EElemComp { cn_expr; cbody; _ } ->
      Option.iter r cn_expr;
      r cbody
  | EAttrComp { an_expr; abody; _ } ->
      Option.iter r an_expr;
      r abody
  | ETextComp e -> r e

and iter_step f = function
  | SAxis { preds; _ } -> List.iter (iter_expr f) preds
  | SExpr { expr; preds } ->
      iter_expr f expr;
      List.iter (iter_expr f) preds

and iter_ctor f (c : ctor) =
  List.iter
    (fun (_, pieces) ->
      List.iter (function APExpr e -> iter_expr f e | APText _ -> ()) pieces)
    c.cattrs;
  List.iter
    (function CPExpr e -> iter_expr f e | CPText _ -> ())
    c.ccontent

let has_nonpositional_pred steps =
  List.exists
    (function
      | SAxis { preds; _ } | SExpr { preds; _ } ->
          List.exists
            (fun p -> not (Eligibility.Extract.is_positional p))
            preds)
    steps

let is_boolean_valued = function
  | EGCmp _ | EVCmp _ | EAnd _ | EOr _ | EQuant _ | ECastable _ -> true
  | ECall { prefix = "" | "fn"; local; _ } ->
      List.mem local
        [ "exists"; "empty"; "not"; "boolean"; "contains"; "starts-with"; "ends-with"; "true"; "false" ]
  | _ -> false

(* ------------------------------------------------------------------ *)
(* XQuery-level checks                                                 *)
(* ------------------------------------------------------------------ *)

(** Tips checked directly on an XQuery AST + its predicate tree. *)
let xquery_advice ?(catalog : Planner.catalog option)
    ?(xml_params : (string * string) list = [])
    ?(scalar_params : (string * Xdm.Atomic.atomic_type option) list = [])
    (q : query) : advice list =
  let advice = ref [] in
  let add a = advice := a :: !advice in
  let tree =
    Eligibility.Extract.analyze ~xml_params ~scalar_params q
  in
  let leaves = P.leaves tree in
  (* ---- Tip 1: cast-less joins ---- *)
  List.iter
    (fun (l : P.leaf) ->
      match l.P.operand with
      | P.OJoin { jcast = None; _ } ->
          add
            (mk 1
               "the comparison '%s' has no provable data type; no index \
                can serve it. Wrap both sides in casts like \
                $x/path/xs:double(.)"
               l.P.source)
      | _ -> ())
    leaves;
  (* ---- Tip 7: predicates under constructors in return clauses ---- *)
  iter_expr
    (function
      | EFlwor (_, EElem c) ->
          List.iter
            (function
              | CPExpr (EPath (_, steps)) when has_nonpositional_pred steps ->
                  add
                    (mk 7
                       "a predicate inside the constructor <%s> cannot \
                        eliminate documents: an empty element is returned \
                        for non-qualifying nodes, so no index applies \
                        (Query 19 vs Query 22)"
                       (Xdm.Qname.to_string c.cname))
              | _ -> ())
            c.ccontent
      | _ -> ())
    q.body;
  (* ---- Tips 8/9: constructed contexts ---- *)
  let ctor_vars = Hashtbl.create 4 in
  let rec returns_ctor = function
    | EElem _ | EElemComp _ -> true
    | EVar v -> Hashtbl.mem ctor_vars v
    | EFlwor (_, ret) -> returns_ctor ret
    | EIf (_, a, b) -> returns_ctor a || returns_ctor b
    | ESeq es -> List.exists returns_ctor es
    | EPath (Relative, [ SExpr { expr; _ } ]) -> returns_ctor expr
    | _ -> false
  in
  iter_expr
    (function
      | EFlwor (clauses, _) ->
          List.iter
            (function
              | CFor binds | CLet binds ->
                  List.iter
                    (fun (v, e) ->
                      if returns_ctor e then Hashtbl.replace ctor_vars v ())
                    binds
              | _ -> ())
            clauses
      | _ -> ())
    q.body;
  iter_expr
    (function
      | EPath (Relative, SExpr { expr = EVar v; preds } :: rest)
        when Hashtbl.mem ctor_vars v ->
          let uses_absolute = ref false in
          List.iter
            (iter_expr (function
              | EPath ((Absolute | AbsDesc), _) -> uses_absolute := true
              | _ -> ()))
            preds;
          List.iter
            (iter_step (fun e ->
                 match e with
                 | EPath ((Absolute | AbsDesc), _) -> uses_absolute := true
                 | _ -> ()))
            rest;
          if !uses_absolute then
            add
              (mk 8
                 "$%s is bound to a constructed element; an absolute path \
                  (leading '/') over it raises a type error at runtime \
                  (Query 25)"
                 v)
          else if
            has_nonpositional_pred rest
            || List.exists
                 (fun p -> not (Eligibility.Extract.is_positional p))
                 preds
          then
            add
              (mk 9
                 "predicates over $%s apply to *constructed* nodes \
                  (fresh identities, untyped values); they cannot be \
                  pushed to the base collection, so no index applies \
                  (Query 26 vs Query 27)"
                 v)
      | EGCmp (_, a, b) | EVCmp (_, a, b) ->
          (* a comparison over a path rooted at a constructed value *)
          let ctor_path = function
            | EPath (Relative, SExpr { expr = EVar v; _ } :: _)
            | EVar v ->
                if Hashtbl.mem ctor_vars v then Some v else None
            | _ -> None
          in
          (match (ctor_path a, ctor_path b) with
          | Some v, _ | _, Some v ->
              add
                (mk 9
                   "the comparison tests *constructed* nodes bound to $%s \
                    (untypedAtomic values, concatenated multi-values, \
                    fresh identities); rewrite the predicate against the \
                    base collection before construction (Query 26 vs \
                    Query 27)"
                   v)
          | None, None -> ())
      | _ -> ())
    q.body;
  (* ---- Tips 10/11/12 + between need the index catalog ---- *)
  (match catalog with
  | None -> ()
  | Some cat ->
      let indexes = cat.Planner.indexes in
      let module Pat = Xmlindex.Pattern in
      (* erase namespace constraints from a pattern *)
      let strip_ns_pattern (p : Pat.t) =
        Pat.of_steps
          (List.map
             (fun (st : Pat.pstep) ->
               {
                 st with
                 Pat.tests =
                   List.map
                     (function
                       | Pat.TestName q ->
                           Pat.TestName { q with Xdm.Qname.uri = "" }
                       | Pat.TestNsStar _ -> Pat.TestStar
                       | t -> t)
                     st.Pat.tests;
               })
             p.Pat.steps)
      in
      let has_ns (p : Pat.t) =
        List.exists
          (fun (st : Pat.pstep) ->
            List.exists
              (function
                | Pat.TestName q -> q.Xdm.Qname.uri <> ""
                | Pat.TestNsStar _ -> true
                | _ -> false)
              st.Pat.tests)
          p.Pat.steps
      in
      (* drop a trailing text() step *)
      let strip_text_pattern (p : Pat.t) =
        match List.rev p.Pat.steps with
        | last :: rest when last.Pat.tests = [ Pat.TestKindText ] ->
            Some (Pat.of_steps (List.rev rest))
        | _ -> None
      in
      List.iter
        (fun (l : P.leaf) ->
          List.iter
            (fun (idx : X.t) ->
              match M.check_leaf idx.X.def l with
              | Error M.RNotContained ->
                  let qp = Xmlindex.Pattern.canonical_string l.P.path in
                  let ip =
                    Xmlindex.Pattern.canonical_string idx.X.def.X.pattern
                  in
                  (* Tip 10: the mismatch disappears when namespaces are
                     erased from both sides *)
                  if
                    (has_ns l.P.path || has_ns idx.X.def.X.pattern)
                    && Xmlindex.Containment.contains
                         (strip_ns_pattern idx.X.def.X.pattern)
                         (strip_ns_pattern l.P.path)
                  then
                    add
                      (mk 10
                         "index %s differs from the query path only in \
                          namespaces (index: %s, query: %s); declare the \
                          same namespaces or use *:name wildcards in the \
                          index"
                         idx.X.def.X.iname ip qp);
                  (* Tip 11: the mismatch is a trailing /text() step *)
                  (let q_stripped = strip_text_pattern l.P.path in
                   let i_stripped =
                     strip_text_pattern idx.X.def.X.pattern
                   in
                   let realigned =
                     match (q_stripped, i_stripped) with
                     | Some q', None ->
                         Xmlindex.Containment.contains idx.X.def.X.pattern q'
                     | None, Some i' ->
                         Xmlindex.Containment.contains i' l.P.path
                     | _ -> false
                   in
                   if realigned then
                     add
                       (mk 11
                          "index %s and the query disagree on a trailing \
                           /text() step (index: %s, query: %s); they index \
                           different nodes (Query 29)"
                          idx.X.def.X.iname ip qp));
                  (* attribute reachability: query wants attributes, index
                     pattern ends in a child-axis step *)
                  let q_last_attr =
                    match List.rev l.P.path.Xmlindex.Pattern.steps with
                    | s :: _ -> s.Xmlindex.Pattern.attr
                    | [] -> false
                  in
                  let i_last_attr =
                    match List.rev idx.X.def.X.pattern.Xmlindex.Pattern.steps with
                    | s :: _ -> s.Xmlindex.Pattern.attr
                    | [] -> false
                  in
                  if q_last_attr && not i_last_attr then
                    add
                      (mk 12
                         "index %s (%s) can never contain attribute nodes: \
                          child-axis steps (including //* and //node()) do \
                          not reach attributes; use //@* (Section 3.9)"
                         idx.X.def.X.iname ip)
              | _ -> ())
            indexes)
        leaves);
  (* ---- Section 3.10: unmergeable between pairs ---- *)
  let rec scan_between = function
    | P.PAnd children ->
        let consts =
          List.filter_map
            (function
              | P.PLeaf l when (match l.P.operand with P.OConst _ -> true | _ -> false)
                -> Some l
              | _ -> None)
            children
        in
        List.iter
          (fun (l : P.leaf) ->
            if l.P.op = P.CGt || l.P.op = P.CGe then
              List.iter
                (fun (u : P.leaf) ->
                  if
                    (u.P.op = P.CLt || u.P.op = P.CLe)
                    && Xmlindex.Pattern.canonical_string u.P.path
                       = Xmlindex.Pattern.canonical_string l.P.path
                    && not
                         ((l.P.value_cmp && u.P.value_cmp)
                         || (l.P.anchor = u.P.anchor && l.P.singleton_path
                            && u.P.singleton_path))
                  then
                    add
                      (mk 13
                         "'%s' and '%s' look like a between, but the \
                          compared item is not provably a singleton: a \
                          multi-valued node could satisfy each bound with \
                          a different value, so two index scans must be \
                          ANDed. Use value comparisons (gt/lt), the self \
                          axis (price/data()[. > X and . < Y]) or an \
                          attribute"
                         l.P.source u.P.source))
                consts)
          consts;
        List.iter scan_between children
    | P.POr children -> List.iter scan_between children
    | _ -> ()
  in
  scan_between tree;
  List.rev !advice

(* ------------------------------------------------------------------ *)
(* SQL-level checks                                                    *)
(* ------------------------------------------------------------------ *)


(** Checks that need SQL structure (Tips 2–6). *)
let sql_advice ?(catalog : Planner.catalog option) (stmt : Sqlxml.Sql_ast.stmt) :
    advice list =
  let module A = Sqlxml.Sql_ast in
  let advice = ref [] in
  let add a = advice := a :: !advice in
  let embedded_queries = ref [] in
  let check_embed (e : A.xq_embed) =
    embedded_queries := e :: !embedded_queries
  in
  (match stmt with
  | A.Select s ->
      (* collect embedded queries everywhere *)
      let rec walk_sexpr = function
        | A.SXmlQuery e -> check_embed e
        | A.SXmlCast (e, _) -> walk_sexpr e
        | A.SXmlElement (_, args) -> List.iter walk_sexpr args
        | _ -> ()
      in
      let rec walk_cond = function
        | A.CAnd (a, b) | A.COr (a, b) -> walk_cond a; walk_cond b
        | A.CNot a -> walk_cond a
        | A.CCmp (_, a, b) -> walk_sexpr a; walk_sexpr b
        | A.CXmlExists e -> check_embed e
        | A.CIsNull (e, _) -> walk_sexpr e
      in
      List.iter
        (function A.SelExpr (e, _) -> walk_sexpr e | A.SelStar -> ())
        s.A.sel_list;
      Option.iter walk_cond s.A.where;
      (* ---- Tip 2: XMLQuery-with-predicates in the select list ---- *)
      let has_exists_filter =
        match s.A.where with
        | Some w ->
            List.exists
              (function A.CXmlExists _ -> true | _ -> false)
              (A.conjuncts w)
        | None -> false
      in
      List.iter
        (function
          | A.SelExpr (A.SXmlQuery e, _) ->
              let has_preds = ref false in
              iter_expr
                (function
                  | EPath (_, steps) when has_nonpositional_pred steps ->
                      has_preds := true
                  | _ -> ())
                e.A.xq_query.body;
              if !has_preds && not has_exists_filter then
                add
                  (mk 2
                     "XMLQuery in the select list returns a (possibly \
                      empty) value for *every* row — its predicates \
                      eliminate nothing and no index applies (Query 5). \
                      Add an XMLEXISTS to the WHERE clause, or use the \
                      stand-alone XQuery interface (Query 7)")
          | _ -> ())
        s.A.sel_list;
      (* ---- Tip 3: boolean result inside XMLEXISTS ---- *)
      (match s.A.where with
      | Some w ->
          List.iter
            (function
              | A.CXmlExists e when is_boolean_valued e.A.xq_query.body ->
                  add
                    (mk 3
                       "the XQuery inside XMLEXISTS ('%s') returns a \
                        boolean: XMLEXISTS tests for *non-emptiness*, and \
                        a false value is still one item, so every row \
                        qualifies (Query 9). Move the condition into a \
                        predicate: [...]"
                       e.A.xq_src)
              | _ -> ())
            (A.conjuncts w)
      | None -> ());
      (* ---- Tip 4: predicates in XMLTABLE COLUMNS ---- *)
      List.iter
        (function
          | A.TRXmlTable xt ->
              List.iter
                (fun (c : A.xt_col) ->
                  let has_preds = ref false in
                  iter_expr
                    (function
                      | EPath (_, steps) when has_nonpositional_pred steps ->
                          has_preds := true
                      | _ -> ())
                    c.A.xc_query.body;
                  if !has_preds then
                    add
                      (mk 4
                         "the predicate in COLUMNS %s PATH '%s' only NULLs \
                          the cell — it never drops rows and is not index \
                          eligible (Query 12). Move it to the row-producer \
                          expression"
                         c.A.xc_name c.A.xc_path_src))
                xt.A.xt_cols
          | A.TRTable _ -> ())
        s.A.from;
      (* ---- Tips 5/6: joins expressed on the SQL side ---- *)
      (match s.A.where with
      | Some w ->
          List.iter
            (function
              | A.CCmp (_, a, b) -> (
                  let is_xmlcast_q = function
                    | A.SXmlCast (A.SXmlQuery _, _) -> true
                    | _ -> false
                  in
                  match (is_xmlcast_q a, is_xmlcast_q b) with
                  | true, true ->
                      add
                        (mk 6
                           "this join compares two XMLCAST(XMLQUERY(...)) \
                            values with SQL semantics: no XML index (and \
                            no relational index) is eligible, and XMLCAST \
                            raises errors on multi-valued or over-long \
                            items (Query 15). Pass both XML values into \
                            one XMLEXISTS and join in XQuery with \
                            explicit casts (Query 16)")
                  | true, false | false, true ->
                      add
                        (mk 5
                           "this join condition mixes SQL and XML values \
                            via XMLCAST: only a relational index on the \
                            SQL side is eligible, and XMLCAST enforces \
                            singleton/length rules the XQuery comparison \
                            does not (Query 14 vs Query 13). Put the \
                            condition on the side that has the index")
                  | false, false -> ())
              | _ -> ())
            (A.conjuncts w)
      | None -> ());
      ()
  | _ -> ());
  (* run the XQuery-level checks on each embedded query *)
  let xq_advice =
    List.concat_map
      (fun (e : A.xq_embed) ->
        let q =
          try
            Xquery.Static.resolve
              ~external_vars:(List.map fst e.A.xq_passing)
              e.A.xq_query
          with _ -> e.A.xq_query
        in
        try xquery_advice ?catalog q with _ -> [])
      !embedded_queries
  in
  List.rev !advice @ xq_advice

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Advise on a statement: SQL/XML if it parses as SQL, else stand-alone
    XQuery. *)
let advise ?(catalog : Planner.catalog option) (src : string) : advice list
    =
  match Sqlxml.Sql_parser.parse src with
  | stmt -> sql_advice ?catalog stmt
  | exception Sqlxml.Sql_lexer.Sql_syntax_error _ ->
      let q = Xquery.Parser.parse_query src in
      let q = try Xquery.Static.resolve q with _ -> q in
      xquery_advice ?catalog q

let to_string (a : advice) = Printf.sprintf "[%s] %s" a.title a.detail
