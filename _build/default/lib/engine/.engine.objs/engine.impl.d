lib/engine/engine.ml: Advisor Int64 List Planner Sqlxml Storage Xdm Xmlparse Xschema
