lib/engine/advisor.ml: Eligibility Format Hashtbl List Option Planner Printf Sqlxml Xdm Xmlindex Xquery
