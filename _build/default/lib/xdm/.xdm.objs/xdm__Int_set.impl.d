lib/xdm/int_set.ml: Int Set
