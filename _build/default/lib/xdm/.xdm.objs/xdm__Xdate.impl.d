lib/xdm/xdate.ml: Buffer Float Printf String
