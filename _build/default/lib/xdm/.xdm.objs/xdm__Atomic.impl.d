lib/xdm/atomic.ml: Float Format Int64 Option Printf Stdlib String Xdate Xerror
