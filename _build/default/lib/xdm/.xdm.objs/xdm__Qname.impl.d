lib/xdm/qname.ml: Format Hashtbl Map String
