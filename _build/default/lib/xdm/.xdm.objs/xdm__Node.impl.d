lib/xdm/node.ml: Atomic Buffer List Option Qname String
