(** Items and sequences — the universal value type of XQuery evaluation.

    Sequences are flat lists of items (XQuery has no nested sequences; the
    paper relies on this in Section 3.4: "sequence concatenation also
    discards empty sequences"). *)

type t = N of Node.t | A of Atomic.t

type seq = t list

let of_node n = N n
let of_atomic a = A a
let singleton_atomic a = [ A a ]

let is_node = function N _ -> true | A _ -> false

let node_exn = function
  | N n -> n
  | A a -> Xerror.type_error "expected a node, got %s" (Atomic.string_value a)

(** [fn:data()] over a sequence. *)
let atomize (s : seq) : Atomic.t list =
  List.concat_map
    (function A a -> [ a ] | N n -> Node.typed_value n)
    s

(** Effective boolean value (used by predicates, [where], logicals,
    quantifiers, [XMLExists]-style tests). *)
let ebv (s : seq) : bool =
  match s with
  | [] -> false
  | N _ :: _ -> true
  | [ A a ] -> (
      match a with
      | Atomic.Boolean b -> b
      | Atomic.Str s | Atomic.Untyped s -> String.length s > 0
      | Atomic.Integer i -> i <> 0L
      | Atomic.Decimal f | Atomic.Double f -> not (f = 0. || Float.is_nan f)
      | Atomic.Date _ | Atomic.DateTime _ ->
          Xerror.ebv_error "no effective boolean value for %s"
            (Atomic.type_name (Atomic.type_of a)))
  | _ ->
      Xerror.ebv_error
        "effective boolean value of a multi-item atomic sequence"

let string_of_item = function
  | A a -> Atomic.string_value a
  | N n -> Node.string_value n

(** Sort a node sequence into document order and remove duplicate
    identities — the implicit behaviour of every path step. *)
let doc_order_dedup (nodes : Node.t list) : Node.t list =
  let sorted = List.stable_sort Node.doc_compare nodes in
  let rec dedup = function
    | a :: b :: rest when Node.identical a b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(** Split a step result: all-nodes / all-atomic / mixed (error). *)
let nodes_of_seq (s : seq) : Node.t list option =
  if List.for_all is_node s then
    Some (List.map (function N n -> n | A _ -> assert false) s)
  else None

let count = List.length

let pp_item ppf = function
  | A a -> Atomic.pp ppf a
  | N n ->
      Format.fprintf ppf "%s-node(%s)"
        (Node.kind_to_string n.Node.kind)
        (match n.Node.name with
        | Some q -> Qname.to_string q
        | None ->
            let s = Node.string_value n in
            if String.length s > 20 then String.sub s 0 20 ^ "..." else s)

let pp_seq ppf s =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_item)
    s
