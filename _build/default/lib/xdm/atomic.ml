(** Atomic values of the XQuery data model (XDM).

    The subset implemented is the one the paper exercises:
    [xdt:untypedAtomic], [xs:string], [xs:boolean], [xs:integer] (64-bit, so
    that the Section 3.6 long-integer/double rounding divergence is
    reproducible), [xs:decimal], [xs:double], [xs:date] and [xs:dateTime]
    (the paper's [timestamp]). *)

type t =
  | Untyped of string  (** xdt:untypedAtomic *)
  | Str of string
  | Boolean of bool
  | Integer of int64
  | Decimal of float  (** simplified: IEEE double with decimal semantics *)
  | Double of float
  | Date of Xdate.date
  | DateTime of Xdate.datetime

type atomic_type =
  | TUntyped
  | TString
  | TBoolean
  | TInteger
  | TDecimal
  | TDouble
  | TDate
  | TDateTime

let type_of = function
  | Untyped _ -> TUntyped
  | Str _ -> TString
  | Boolean _ -> TBoolean
  | Integer _ -> TInteger
  | Decimal _ -> TDecimal
  | Double _ -> TDouble
  | Date _ -> TDate
  | DateTime _ -> TDateTime

let type_name = function
  | TUntyped -> "xdt:untypedAtomic"
  | TString -> "xs:string"
  | TBoolean -> "xs:boolean"
  | TInteger -> "xs:integer"
  | TDecimal -> "xs:decimal"
  | TDouble -> "xs:double"
  | TDate -> "xs:date"
  | TDateTime -> "xs:dateTime"

let is_numeric_type = function
  | TInteger | TDecimal | TDouble -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lexical forms                                                       *)
(* ------------------------------------------------------------------ *)

(** Canonical-ish string form of a double: integral values print without a
    decimal point ([fn:string(100E0) = "100"]), specials print as XQuery
    requires. *)
let string_of_double f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "INF"
  else if f = Float.neg_infinity then "-INF"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    s

let string_of_decimal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let string_value = function
  | Untyped s | Str s -> s
  | Boolean b -> if b then "true" else "false"
  | Integer i -> Int64.to_string i
  | Decimal f -> string_of_decimal f
  | Double f -> string_of_double f
  | Date d -> Xdate.date_to_string d
  | DateTime t -> Xdate.datetime_to_string t

(* ------------------------------------------------------------------ *)
(* Casting                                                             *)
(* ------------------------------------------------------------------ *)

let is_digit c = c >= '0' && c <= '9'

let double_of_string_opt s =
  let s = String.trim s in
  match s with
  | "INF" -> Some Float.infinity
  | "-INF" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | "" -> None
  | _ -> (
      (* OCaml's float_of_string accepts hex floats, underscores and
         "infinity", none of which are valid XML Schema doubles. *)
      let valid =
        String.for_all
          (fun c ->
            is_digit c || c = '.' || c = '+' || c = '-' || c = 'e' || c = 'E')
          s
      in
      if not valid then None else float_of_string_opt s)

let integer_of_string_opt s =
  let s = String.trim s in
  if s = "" then None
  else
    let body, neg =
      match s.[0] with
      | '-' -> (String.sub s 1 (String.length s - 1), true)
      | '+' -> (String.sub s 1 (String.length s - 1), false)
      | _ -> (s, false)
    in
    if body = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') body)
    then None
    else
      match Int64.of_string_opt (if neg then "-" ^ body else body) with
      | Some i -> Some i
      | None -> None

let boolean_of_string_opt s =
  match String.trim s with
  | "true" | "1" -> Some true
  | "false" | "0" -> Some false
  | _ -> None

(** [cast_opt v target]: the XML Schema cast, or [None] when the value is
    not castable. This drives the *tolerant* index insertion of Section 2.1
    (uncastable nodes are silently skipped). *)
let cast_opt v target =
  let from_string s =
    match target with
    | TUntyped -> Some (Untyped s)
    | TString -> Some (Str s)
    | TBoolean -> Option.map (fun b -> Boolean b) (boolean_of_string_opt s)
    | TInteger -> Option.map (fun i -> Integer i) (integer_of_string_opt s)
    | TDecimal ->
        (* Decimals have no exponent and no specials (NaN/INF). *)
        Option.bind (double_of_string_opt s) (fun f ->
            if
              String.contains s 'e' || String.contains s 'E'
              || Float.is_nan f
              || Float.abs f = Float.infinity
            then None
            else Some (Decimal f))
    | TDouble -> Option.map (fun f -> Double f) (double_of_string_opt s)
    | TDate -> Option.map (fun d -> Date d) (Xdate.date_of_string_opt s)
    | TDateTime ->
        Option.map (fun d -> DateTime d) (Xdate.datetime_of_string_opt s)
  in
  match (v, target) with
  | v, t when type_of v = t -> Some v
  | (Untyped s | Str s), _ -> from_string s
  | Boolean b, TString -> Some (Str (if b then "true" else "false"))
  | Boolean b, TUntyped -> Some (Untyped (if b then "true" else "false"))
  | Boolean b, TInteger -> Some (Integer (if b then 1L else 0L))
  | Boolean b, TDecimal -> Some (Decimal (if b then 1. else 0.))
  | Boolean b, TDouble -> Some (Double (if b then 1. else 0.))
  | Integer i, TString -> Some (Str (Int64.to_string i))
  | Integer i, TUntyped -> Some (Untyped (Int64.to_string i))
  | Integer i, TDecimal -> Some (Decimal (Int64.to_float i))
  | Integer i, TDouble -> Some (Double (Int64.to_float i))
  | Integer i, TBoolean -> Some (Boolean (i <> 0L))
  | Decimal f, TString -> Some (Str (string_of_decimal f))
  | Decimal f, TUntyped -> Some (Untyped (string_of_decimal f))
  | Decimal f, TInteger -> Some (Integer (Int64.of_float f))
  | Decimal f, TDouble -> Some (Double f)
  | Decimal f, TBoolean -> Some (Boolean (f <> 0.))
  | Double f, TString -> Some (Str (string_of_double f))
  | Double f, TUntyped -> Some (Untyped (string_of_double f))
  | Double f, TInteger ->
      if Float.is_nan f || Float.abs f = Float.infinity then None
      else Some (Integer (Int64.of_float f))
  | Double f, TDecimal ->
      if Float.is_nan f || Float.abs f = Float.infinity then None
      else Some (Decimal f)
  | Double f, TBoolean -> Some (Boolean (not (Float.is_nan f || f = 0.)))
  | Date d, TString -> Some (Str (Xdate.date_to_string d))
  | Date d, TUntyped -> Some (Untyped (Xdate.date_to_string d))
  | Date d, TDateTime ->
      Some
        (DateTime
           {
             Xdate.date = { d with tz = None };
             hour = 0;
             minute = 0;
             second = 0.;
             dtz = d.Xdate.tz;
           })
  | DateTime t, TString -> Some (Str (Xdate.datetime_to_string t))
  | DateTime t, TUntyped -> Some (Untyped (Xdate.datetime_to_string t))
  | DateTime t, TDate -> Some (Date { t.Xdate.date with tz = t.Xdate.dtz })
  | _ -> None

(** Raising cast, error code [FORG0001]. *)
let cast v target =
  match cast_opt v target with
  | Some v -> v
  | None ->
      Xerror.cast_error "cannot cast %s \"%s\" to %s"
        (type_name (type_of v))
        (string_value v) (type_name target)

(** Numeric value as a float, when the value is numeric. *)
let to_float_opt = function
  | Integer i -> Some (Int64.to_float i)
  | Decimal f | Double f -> Some f
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type cmp = Lt | Eq | Gt | Uncomparable

(** Compare two atomics of *compatible* dynamic types (numeric with
    numeric, string with string, ...), with numeric type promotion:
    integer × integer compares exactly; anything involving a double or a
    decimal compares as floats. Callers (the general/value comparison
    operators) are responsible for untypedAtomic conversion *before*
    calling this. *)
let compare_values a b : cmp =
  let of_int c = if c < 0 then Lt else if c > 0 then Gt else Eq in
  let float_cmp x y =
    if Float.is_nan x || Float.is_nan y then Uncomparable
    else of_int (Float.compare x y)
  in
  match (a, b) with
  | Integer x, Integer y -> of_int (Int64.compare x y)
  | (Integer _ | Decimal _ | Double _), (Integer _ | Decimal _ | Double _) ->
      let fx = Option.get (to_float_opt a) and fy = Option.get (to_float_opt b) in
      float_cmp fx fy
  | (Str x | Untyped x), (Str y | Untyped y) -> of_int (String.compare x y)
  | Boolean x, Boolean y -> of_int (Stdlib.compare x y)
  | Date x, Date y -> of_int (Xdate.compare_date x y)
  | DateTime x, DateTime y -> of_int (Xdate.compare_datetime x y)
  | _ -> Uncomparable

let pp ppf v =
  Format.fprintf ppf "%s(\"%s\")" (type_name (type_of v)) (string_value v)
