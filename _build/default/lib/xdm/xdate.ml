(** ISO-8601 dates and dateTimes, the value space behind the [date] and
    [timestamp] XML index types of the paper's Section 2.1.

    Values carry an optional timezone offset (minutes east of UTC).
    Comparison normalizes to UTC; values without a timezone compare as if
    they were UTC, which is a simplification of the XML Schema "implicit
    timezone" rule that is adequate for a single-node database. *)

type date = { year : int; month : int; day : int; tz : int option }

type datetime = {
  date : date;
  hour : int;
  minute : int;
  second : float;
  dtz : int option;
}

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> 0

let valid_date y m d = m >= 1 && m <= 12 && d >= 1 && d <= days_in_month y m

(** Days since the (proleptic Gregorian) epoch 1970-01-01; standard civil
    calendar algorithm. *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = ((153 * mp) + 2) / 5 + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

(** Absolute timeline position of a date in minutes (UTC). *)
let date_minutes (dt : date) =
  let base = days_from_civil dt.year dt.month dt.day * 24 * 60 in
  match dt.tz with None -> base | Some off -> base - off

(** Absolute timeline position of a dateTime in seconds (UTC). *)
let datetime_seconds (t : datetime) =
  let days = days_from_civil t.date.year t.date.month t.date.day in
  let secs =
    (float_of_int days *. 86400.)
    +. (float_of_int t.hour *. 3600.)
    +. (float_of_int t.minute *. 60.)
    +. t.second
  in
  match t.dtz with
  | None -> secs
  | Some off -> secs -. (float_of_int off *. 60.)

let compare_date a b = compare (date_minutes a) (date_minutes b)
let compare_datetime a b = compare (datetime_seconds a) (datetime_seconds b)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let is_digit c = c >= '0' && c <= '9'

let parse_fixed_int s pos len =
  if pos + len > String.length s then None
  else
    let ok = ref true in
    for i = pos to pos + len - 1 do
      if not (is_digit s.[i]) then ok := false
    done;
    if !ok then Some (int_of_string (String.sub s pos len)) else None

(** Parse a trailing timezone designator starting at [pos]:
    ["Z"], ["+hh:mm"] or ["-hh:mm"]. Returns [(tz, next_pos)]. *)
let parse_tz s pos =
  let n = String.length s in
  if pos >= n then Some (None, pos)
  else
    match s.[pos] with
    | 'Z' -> Some (Some 0, pos + 1)
    | ('+' | '-') as sign -> (
        match (parse_fixed_int s (pos + 1) 2, parse_fixed_int s (pos + 4) 2) with
        | Some h, Some m when pos + 3 < n && s.[pos + 3] = ':' && h <= 14 && m <= 59
          ->
            let off = (h * 60) + m in
            Some (Some (if sign = '-' then -off else off), pos + 6)
        | _ -> None)
    | _ -> Some (None, pos)

let date_of_string_opt s =
  let s = String.trim s in
  let neg = String.length s > 0 && s.[0] = '-' in
  let body = if neg then String.sub s 1 (String.length s - 1) else s in
  match
    ( parse_fixed_int body 0 4,
      parse_fixed_int body 5 2,
      parse_fixed_int body 8 2 )
  with
  | Some y, Some m, Some d
    when String.length body >= 10 && body.[4] = '-' && body.[7] = '-' -> (
      let y = if neg then -y else y in
      if not (valid_date y m d) then None
      else
        match parse_tz body 10 with
        | Some (tz, p) when p = String.length body -> Some { year = y; month = m; day = d; tz }
        | _ -> None)
  | _ -> None

let datetime_of_string_opt s =
  let s = String.trim s in
  match String.index_opt s 'T' with
  | None -> None
  | Some ti -> (
      let dpart = String.sub s 0 ti in
      let tpart = String.sub s (ti + 1) (String.length s - ti - 1) in
      match date_of_string_opt dpart with
      | None -> None
      | Some d -> (
          match
            (parse_fixed_int tpart 0 2, parse_fixed_int tpart 3 2, parse_fixed_int tpart 6 2)
          with
          | Some hh, Some mi, Some ss
            when String.length tpart >= 8 && tpart.[2] = ':' && tpart.[5] = ':'
                 && hh <= 24 && mi <= 59 && ss <= 60 -> (
              (* Optional fractional seconds. *)
              let pos = ref 8 in
              let frac = Buffer.create 4 in
              let n = String.length tpart in
              if !pos < n && tpart.[!pos] = '.' then begin
                incr pos;
                while !pos < n && is_digit tpart.[!pos] do
                  Buffer.add_char frac tpart.[!pos];
                  incr pos
                done
              end;
              let second =
                float_of_int ss
                +.
                if Buffer.length frac = 0 then 0.
                else float_of_string ("0." ^ Buffer.contents frac)
              in
              match parse_tz tpart !pos with
              | Some (tz, p) when p = n ->
                  Some { date = { d with tz = None }; hour = hh; minute = mi; second; dtz = tz }
              | _ -> None)
          | _ -> None))

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let tz_to_string = function
  | None -> ""
  | Some 0 -> "Z"
  | Some off ->
      let sign = if off < 0 then '-' else '+' in
      let off = abs off in
      Printf.sprintf "%c%02d:%02d" sign (off / 60) (off mod 60)

let date_to_string d =
  Printf.sprintf "%04d-%02d-%02d%s" d.year d.month d.day (tz_to_string d.tz)

let datetime_to_string t =
  let sec =
    if Float.is_integer t.second then Printf.sprintf "%02.0f" t.second
    else
      (* Trim trailing zeros of the fractional part. *)
      let s = Printf.sprintf "%09.6f" t.second in
      let rec trim i = if s.[i] = '0' then trim (i - 1) else i in
      String.sub s 0 (trim (String.length s - 1) + 1)
  in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%s%s" t.date.year t.date.month
    t.date.day t.hour t.minute sec (tz_to_string t.dtz)

(** Dates in the US style the paper's sample documents use
    ("January 1, 2001") are *not* valid xs:date lexical forms; the tolerant
    index relies on [date_of_string_opt] returning [None] for them. *)
let mk_date ?tz year month day = { year; month; day; tz }

let mk_datetime ?tz ?(second = 0.) ~hour ~minute year month day =
  { date = { year; month; day; tz = None }; hour; minute; second; dtz = tz }
