(** Integer sets, used for row-id sets returned by index probes. *)
include Set.Make (Int)
