(** Expanded qualified names.

    A QName is identified by its namespace URI and local part; the prefix is
    retained only for display (serialization, error messages). Equality and
    comparison deliberately ignore the prefix, per the XQuery data model. *)

type t = { uri : string; local : string; prefix : string }

let make ?(prefix = "") ?(uri = "") local = { uri; local; prefix }

let equal a b = String.equal a.uri b.uri && String.equal a.local b.local

let compare a b =
  match String.compare a.uri b.uri with
  | 0 -> String.compare a.local b.local
  | c -> c

let hash t = Hashtbl.hash (t.uri, t.local)

(** Display form: [prefix:local] when a prefix is known, else [local]. *)
let to_string t =
  if t.prefix = "" then t.local else t.prefix ^ ":" ^ t.local

(** Unambiguous form: [{uri}local] (Clark notation), used by the path
    table so that paths are namespace-exact. *)
let to_clark t = if t.uri = "" then t.local else "{" ^ t.uri ^ "}" ^ t.local

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
