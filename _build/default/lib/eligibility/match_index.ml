(** Index eligibility decision (paper Definition 1 + Section 3.1).

    Given an index definition and an extracted predicate leaf, decide
    whether the index is eligible and, if so, how to probe it. Rejections
    carry the paper's reason so EXPLAIN and the advisor can say *why* an
    index was not used. *)

module P = Predicate

type reject =
  | RWrongColumn
  | RNotContained
      (** the index pattern is more restrictive than the query path
          (Section 2.2, Query 2; namespaces, Section 3.7; text() steps,
          Section 3.8; attributes, Section 3.9) *)
  | RTypeMismatch of P.cmp_class * Xmlindex.Xindex.vtype
      (** comparison type vs index type (Section 3.1) *)
  | RUnknownType
      (** comparison type unprovable — e.g. a cast-less join (Tip 1) *)
  | ROpNotIndexable  (** [!=] cannot be answered by a range scan *)
  | RStructuralNeedsVarchar
      (** only a VARCHAR index contains *all* matching nodes
          (Section 2.2) *)

let reject_to_string = function
  | RWrongColumn -> "index is on a different table/column"
  | RNotContained ->
      "index pattern does not contain the query path (index more \
       restrictive than query)"
  | RTypeMismatch (c, v) ->
      Printf.sprintf
        "comparison type %s incompatible with index type %s"
        (P.cmp_class_to_string c)
        (Xmlindex.Xindex.vtype_to_string v)
  | RUnknownType ->
      "comparison data type cannot be proven (add explicit casts — Tip 1)"
  | ROpNotIndexable -> "operator not answerable by an index range scan"
  | RStructuralNeedsVarchar ->
      "structural predicates need a VARCHAR index (contains all values)"

(** How to probe an eligible index. *)
type probe_spec =
  | SpecRange of Xmlindex.Xindex.range  (** constant operand *)
  | SpecParam of string * P.cmp_op
      (** externally bound parameter: value known per evaluation *)
  | SpecJoin of P.cmp_op  (** per-outer-row join probe *)
  | SpecStructural

let class_compatible (c : P.cmp_class) (v : Xmlindex.Xindex.vtype) =
  match (c, v) with
  | P.CNumeric, Xmlindex.Xindex.VDouble -> true
  | P.CString, Xmlindex.Xindex.VVarchar -> true
  | P.CDate, Xmlindex.Xindex.VDate -> true
  | P.CDateTime, Xmlindex.Xindex.VTimestamp -> true
  | _ -> false

let norm = String.lowercase_ascii

let column_of_def (def : Xmlindex.Xindex.def) =
  norm (def.Xmlindex.Xindex.table ^ "." ^ def.Xmlindex.Xindex.column)

(** Constant-operand range for an index of type [vt]. *)
let range_of (op : P.cmp_op) (c : Xdm.Atomic.t) (vt : Xmlindex.Xindex.vtype)
    : (Xmlindex.Xindex.range, reject) result =
  match Xdm.Atomic.cast_opt c (Xmlindex.Xindex.vtype_to_atomic vt) with
  | None ->
      (* the constant is not even representable in the index's value
         space; a conservative full-range scan would still be sound for
         VARCHAR, but for simplicity reject *)
      Error (RTypeMismatch (P.class_of_atomic_type (Xdm.Atomic.type_of c), vt))
  | Some v -> (
      match op with
      | P.CEq -> Ok (Xmlindex.Xindex.eq_range v)
      | P.CLt -> Ok { Xmlindex.Xindex.lo = None; hi = Some (v, false) }
      | P.CLe -> Ok { Xmlindex.Xindex.lo = None; hi = Some (v, true) }
      | P.CGt -> Ok { Xmlindex.Xindex.lo = Some (v, false); hi = None }
      | P.CGe -> Ok { Xmlindex.Xindex.lo = Some (v, true); hi = None }
      | P.CNe -> Error ROpNotIndexable)

(** Decide eligibility of [def] for a value-predicate leaf. *)
let check_leaf (def : Xmlindex.Xindex.def) (leaf : P.leaf) :
    (probe_spec, reject) result =
  if column_of_def def <> norm leaf.P.collection then Error RWrongColumn
  else if leaf.P.op = P.CNe then Error ROpNotIndexable
  else
    let cls = P.leaf_class leaf in
    if cls = P.CUnknown then Error RUnknownType
    else if not (class_compatible cls def.Xmlindex.Xindex.vtype) then
      Error (RTypeMismatch (cls, def.Xmlindex.Xindex.vtype))
    else if not (Xmlindex.Containment.contains def.Xmlindex.Xindex.pattern leaf.P.path)
    then Error RNotContained
    else
      match leaf.P.operand with
      | P.OConst c -> (
          match range_of leaf.P.op c def.Xmlindex.Xindex.vtype with
          | Ok r -> Ok (SpecRange r)
          | Error e -> Error e)
      | P.OParam (v, _) -> Ok (SpecParam (v, leaf.P.op))
      | P.OJoin _ -> Ok (SpecJoin leaf.P.op)

(** Decide eligibility for a structural (existence) leaf: only VARCHAR
    indexes, which by definition contain every matching node. *)
let check_structural (def : Xmlindex.Xindex.def) (s : P.struct_leaf) :
    (probe_spec, reject) result =
  if column_of_def def <> norm s.P.s_collection then Error RWrongColumn
  else if def.Xmlindex.Xindex.vtype <> Xmlindex.Xindex.VVarchar then
    Error RStructuralNeedsVarchar
  else if not (Xmlindex.Containment.contains def.Xmlindex.Xindex.pattern s.P.s_path)
  then Error RNotContained
  else Ok SpecStructural
