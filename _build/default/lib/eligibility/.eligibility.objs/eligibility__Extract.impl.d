lib/eligibility/extract.ml: Int64 List Map Option Predicate Printf String Xdm Xmlindex Xquery
