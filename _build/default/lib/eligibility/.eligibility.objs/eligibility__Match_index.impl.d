lib/eligibility/match_index.ml: Predicate Printf String Xdm Xmlindex
