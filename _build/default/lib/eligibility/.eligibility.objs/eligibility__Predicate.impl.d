lib/eligibility/predicate.ml: Hashtbl List Marshal Printf String Xdm Xmlindex Xquery
