(** Normal form for *filtering predicates* extracted from queries.

    A predicate tree describes, for each document of a collection, a
    condition that is **necessary** for the document to contribute to the
    query result. Definition 1 of the paper: an index [I] is eligible for
    predicate [P] of query [Q] iff [Q(D) = Q(I(P, D))] — so every leaf we
    emit must be implied by "this document affects the result". The
    extractor is deliberately conservative: when in doubt it emits [PTrue]
    ("cannot eliminate documents through this expression"). *)

type cmp_op = CEq | CNe | CLt | CLe | CGt | CGe

let cmp_op_to_string = function
  | CEq -> "="
  | CNe -> "!="
  | CLt -> "<"
  | CLe -> "<="
  | CGt -> ">"
  | CGe -> ">="

let flip = function
  | CEq -> CEq
  | CNe -> CNe
  | CLt -> CGt
  | CLe -> CGe
  | CGt -> CLt
  | CGe -> CLe

(** The non-path side of a comparison. *)
type operand =
  | OConst of Xdm.Atomic.t
      (** literal or constant-folded value; its dynamic type decides the
          comparison type (paper Section 3.1) *)
  | OParam of string * Xdm.Atomic.atomic_type option
      (** an externally bound variable (SQL/XML [PASSING]); the type, when
          known, is inherited from the SQL side — the paper's Query 13 *)
  | OJoin of {
      jexpr : Xquery.Ast.expr;
          (** the other side of the comparison — evaluable at probe time
              when its free variables are bound (index nested-loop join) *)
      jcast : Xdm.Atomic.atomic_type option;
          (** type proven by a cast; without one the comparison type is
              unknown and no index is eligible (Tip 1) *)
    }

let operand_to_string = function
  | OConst a -> Printf.sprintf "%s" (Xdm.Atomic.string_value a)
  | OParam (v, Some t) -> Printf.sprintf "$%s:%s" v (Xdm.Atomic.type_name t)
  | OParam (v, None) -> Printf.sprintf "$%s:?" v
  | OJoin { jexpr; jcast = Some t } ->
      Printf.sprintf "join(%s):%s"
        (Xquery.Ast.expr_to_string jexpr)
        (Xdm.Atomic.type_name t)
  | OJoin { jexpr; jcast = None } ->
      Printf.sprintf "join(%s):?" (Xquery.Ast.expr_to_string jexpr)

(** Comparison type classes, deciding which index data types can serve
    the predicate (paper Section 3.1). *)
type cmp_class = CNumeric | CString | CDate | CDateTime | CUnknown

let cmp_class_to_string = function
  | CNumeric -> "numeric"
  | CString -> "string"
  | CDate -> "date"
  | CDateTime -> "dateTime"
  | CUnknown -> "unknown"

let class_of_atomic_type : Xdm.Atomic.atomic_type -> cmp_class = function
  | Xdm.Atomic.TInteger | Xdm.Atomic.TDecimal | Xdm.Atomic.TDouble -> CNumeric
  | Xdm.Atomic.TString -> CString
  | Xdm.Atomic.TDate -> CDate
  | Xdm.Atomic.TDateTime -> CDateTime
  | Xdm.Atomic.TBoolean | Xdm.Atomic.TUntyped -> CUnknown

type leaf = {
  collection : string;  (** "TABLE.COLUMN" *)
  path : Xmlindex.Pattern.t;  (** derived absolute path of the compared node *)
  op : cmp_op;
  operand : operand;
  path_cast : Xdm.Atomic.atomic_type option;
      (** cast applied on the path side, e.g. [custid/xs:double(.)] *)
  value_cmp : bool;  (** value comparison ([eq], [gt], ...) *)
  anchor : int;
      (** identity of the navigation anchor (variable binding or predicate
          focus) this comparison hangs from; two comparisons with the same
          anchor test the same context node *)
  singleton_path : bool;
      (** the compared value is provably at most one per anchor node:
          a single attribute step, or a self-axis ([.]) comparison from
          the anchor — Section 3.10's "between" preconditions *)
  source : string;  (** printable origin, for EXPLAIN *)
}

(** A structural (existence) predicate: the document must contain at least
    one node on this path. Answerable by a full-range scan of a VARCHAR
    index (paper Section 2.2). *)
type struct_leaf = {
  s_collection : string;
  s_path : Xmlindex.Pattern.t;
  s_source : string;
}

type t =
  | PAnd of t list
  | POr of t list
  | PLeaf of leaf
  | PStructural of struct_leaf
  | PTrue  (** no document can be eliminated through this branch *)

(** Effective comparison class of a leaf: a cast on the path side wins;
    otherwise the operand's type decides. *)
let leaf_class (l : leaf) : cmp_class =
  match l.path_cast with
  | Some t -> class_of_atomic_type t
  | None -> (
      match l.operand with
      | OConst a -> class_of_atomic_type (Xdm.Atomic.type_of a)
      | OParam (_, Some t) | OJoin { jcast = Some t; _ } ->
          class_of_atomic_type t
      | OParam (_, None) | OJoin { jcast = None; _ } -> CUnknown)

let mk_and = function [] -> PTrue | [ t ] -> t | ts -> PAnd ts
let mk_or = function [] -> PTrue | [ t ] -> t | ts -> POr ts

(** Drop [PTrue] children of conjunctions (and duplicate conjuncts); a
    [PTrue] branch poisons a disjunction entirely. *)
let rec simplify = function
  | PAnd ts -> (
      let ts = List.map simplify ts in
      let ts =
        List.concat_map (function PAnd inner -> inner | t -> [ t ]) ts
      in
      let ts = List.filter (fun t -> t <> PTrue) ts in
      let ts =
        let seen = Hashtbl.create 8 in
        List.filter
          (fun t ->
            let k = Marshal.to_string t [] in
            if Hashtbl.mem seen k then false
            else begin
              Hashtbl.add seen k ();
              true
            end)
          ts
      in
      match ts with [] -> PTrue | [ t ] -> t | ts -> PAnd ts)
  | POr ts -> (
      let ts = List.map simplify ts in
      if List.exists (fun t -> t = PTrue) ts then PTrue
      else match ts with [] -> PTrue | [ t ] -> t | ts -> POr ts)
  | t -> t

(** Restrict a tree to the leaves of one collection; leaves of other
    collections become [PTrue] (they cannot restrict this collection). *)
let rec for_collection coll = function
  | PAnd ts -> mk_and (List.map (for_collection coll) ts)
  | POr ts -> POr (List.map (for_collection coll) ts)
  | PLeaf l when String.lowercase_ascii l.collection = String.lowercase_ascii coll -> PLeaf l
  | PStructural s
    when String.lowercase_ascii s.s_collection = String.lowercase_ascii coll
    ->
      PStructural s
  | PLeaf _ | PStructural _ -> PTrue
  | PTrue -> PTrue

let rec collections = function
  | PAnd ts | POr ts -> List.concat_map collections ts
  | PLeaf l -> [ l.collection ]
  | PStructural s -> [ s.s_collection ]
  | PTrue -> []

let rec leaves = function
  | PAnd ts | POr ts -> List.concat_map leaves ts
  | PLeaf l -> [ l ]
  | PStructural _ | PTrue -> []

let rec to_string = function
  | PAnd ts -> "(" ^ String.concat " AND " (List.map to_string ts) ^ ")"
  | POr ts -> "(" ^ String.concat " OR " (List.map to_string ts) ^ ")"
  | PLeaf l ->
      Printf.sprintf "%s:%s %s %s [%s%s%s]" l.collection
        (Xmlindex.Pattern.canonical_string l.path)
        (cmp_op_to_string l.op)
        (operand_to_string l.operand)
        (cmp_class_to_string (leaf_class l))
        (if l.value_cmp then ",value-cmp" else "")
        (if l.singleton_path then ",singleton" else "")
  | PStructural s ->
      Printf.sprintf "%s:exists(%s)" s.s_collection
        (Xmlindex.Pattern.canonical_string s.s_path)
  | PTrue -> "TRUE"
