lib/sqlxml/sql_lexer.ml: Buffer Format Int64 String
