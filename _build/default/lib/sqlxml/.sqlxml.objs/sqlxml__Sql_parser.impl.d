lib/sqlxml/sql_parser.ml: Format Int64 List Printf Sql_ast Sql_lexer Storage String Xdm Xmlindex Xquery
