lib/sqlxml/sql_exec.ml: Array Eligibility Format Hashtbl Int64 List Option Planner Printf Sql_ast Sql_parser Storage String Xdm Xmlindex Xquery
