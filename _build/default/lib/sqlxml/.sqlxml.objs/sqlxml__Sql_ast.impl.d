lib/sqlxml/sql_ast.ml: List Storage Xmlindex Xquery
