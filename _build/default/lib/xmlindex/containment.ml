(** Pattern containment — the heart of index eligibility (Definition 1).

    [contains p q] decides whether every rooted node path matched by the
    *query* pattern [q] is also matched by the *index* pattern [p], i.e.
    whether the index is guaranteed to contain every node the query
    predicate could select. Per the paper: "an index cannot be used to
    answer a predicate in the query expression if the index expression is
    more restrictive than the query expression" — e.g. an index on
    [//lineitem/@price] contains (⊇) the query path
    [//order/lineitem/@price], but not [//lineitem/@*].

    Patterns here are linear (no branching predicates), so containment is
    decidable in polynomial time. We decide it exactly by:

    1. building the finite *sample alphabet* that distinguishes every
       equivalence class of path components mentioned by either pattern
       (cross product of mentioned URIs × mentioned locals × node kinds,
       each extended with a fresh "other" value);
    2. viewing each pattern as an NFA over that alphabet ([//] gaps are
       self-loops over element letters);
    3. checking language inclusion by the usual product/subset search. *)

open Pattern

type letter =
  | LElem of string * string  (** uri, local *)
  | LAttr of string * string
  | LText
  | LComment
  | LPi of string

let fresh_uri = "\x00other-uri"
let fresh_local = "\x00other-local"
let fresh_pi = "\x00other-pi"

let test_accepts ~attr_step (t : test) (l : letter) : bool =
  match (t, l, attr_step) with
  | TestKindAny, LAttr _, true -> true
  | TestKindAny, LAttr _, false -> false
  | TestKindAny, _, false -> true
  | TestKindAny, _, true -> false
  | TestKindText, LText, false -> true
  | TestKindText, _, _ -> false
  | TestKindComment, LComment, false -> true
  | TestKindComment, _, _ -> false
  | TestKindPi None, LPi _, false -> true
  | TestKindPi (Some t), LPi target, false -> String.equal t target
  | TestKindPi _, _, _ -> false
  | TestName q, LElem (u, l), false ->
      String.equal q.Xdm.Qname.uri u && String.equal q.Xdm.Qname.local l
  | TestName q, LAttr (u, l), true ->
      String.equal q.Xdm.Qname.uri u && String.equal q.Xdm.Qname.local l
  | TestName _, _, _ -> false
  | TestNsStar uri, LElem (u, _), false -> String.equal uri u
  | TestNsStar uri, LAttr (u, _), true -> String.equal uri u
  | TestNsStar _, _, _ -> false
  | TestLocalStar loc, LElem (_, l), false -> String.equal loc l
  | TestLocalStar loc, LAttr (_, l), true -> String.equal loc l
  | TestLocalStar _, _, _ -> false
  | TestStar, LElem _, false -> true
  | TestStar, LAttr _, true -> true
  | TestStar, _, _ -> false

let step_accepts (s : pstep) (l : letter) : bool =
  List.for_all (fun t -> test_accepts ~attr_step:s.attr t l) s.tests

let is_elem_letter = function LElem _ -> true | _ -> false

(** Sample alphabet covering every distinguishable component class. *)
let sample_alphabet (pats : t list) : letter list =
  let uris = ref [ fresh_uri ] and locals = ref [ fresh_local ] in
  let pis = ref [ fresh_pi ] in
  let add r v = if not (List.mem v !r) then r := v :: !r in
  List.iter
    (fun p ->
      List.iter
        (fun (s : pstep) ->
          List.iter
            (function
              | TestName q ->
                  add uris q.Xdm.Qname.uri;
                  add locals q.Xdm.Qname.local
              | TestNsStar u -> add uris u
              | TestLocalStar l -> add locals l
              | TestKindPi (Some t) -> add pis t
              | _ -> ())
            s.tests)
        p.steps)
    pats;
  let names =
    List.concat_map (fun u -> List.map (fun l -> (u, l)) !locals) !uris
  in
  List.concat_map (fun (u, l) -> [ LElem (u, l); LAttr (u, l) ]) names
  @ [ LText; LComment ]
  @ List.map (fun t -> LPi t) !pis

(** NFA view of a pattern: states [0..m]; a gap on step [k] is a self-loop
    on state [k] over element letters; state [m] accepts. *)
let nfa_next (steps : pstep array) (state : int) (l : letter) : int list =
  let m = Array.length steps in
  let moves = ref [] in
  if state < m then begin
    if step_accepts steps.(state) l then moves := (state + 1) :: !moves;
    if steps.(state).gap && is_elem_letter l then moves := state :: !moves
  end;
  !moves

module IS = Set.Make (Int)

(** [contains p q]: is every rooted path matched by [q] also matched by
    [p]? Exact for the XMLPATTERN fragment. *)
let contains (p : t) (q : t) : bool =
  let alphabet = sample_alphabet [ p; q ] in
  let psteps = Array.of_list p.steps and qsteps = Array.of_list q.steps in
  let pm = Array.length psteps and qm = Array.length qsteps in
  (* search over (q state, set of p states) *)
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  let rec visit (qs : int) (ps : IS.t) =
    if !ok then begin
      let key = (qs, IS.elements ps) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        (* If q accepts here, p must accept too. *)
        if qs = qm && not (IS.mem pm ps) then ok := false
        else
          List.iter
            (fun l ->
              let qnexts = nfa_next qsteps qs l in
              if qnexts <> [] then begin
                let pnext =
                  IS.fold
                    (fun s acc ->
                      List.fold_left
                        (fun acc s' -> IS.add s' acc)
                        acc (nfa_next psteps s l))
                    ps IS.empty
                in
                List.iter (fun qn -> visit qn pnext) qnexts
              end)
            alphabet
      end
    end
  in
  visit 0 (IS.singleton 0);
  !ok
