lib/xmlindex/pattern.ml: Array Format List Option String Xdm Xquery
