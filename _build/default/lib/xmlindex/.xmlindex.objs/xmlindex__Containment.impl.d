lib/xmlindex/containment.ml: Array Hashtbl Int List Pattern Set String Xdm
