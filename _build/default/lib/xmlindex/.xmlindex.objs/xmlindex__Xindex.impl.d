lib/xmlindex/xindex.ml: Atomic Btree Float Int_set List Node Pattern Stdlib Storage Xdm Xerror
