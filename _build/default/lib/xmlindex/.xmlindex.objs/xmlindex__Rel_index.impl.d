lib/xmlindex/rel_index.ml: Btree Sql_value Stdlib Storage Xdm
