(** Lightweight per-document XML schemas.

    The paper's schema story (Sections 1, 2.1, 3.1): schemas attach to
    *documents*, not columns; different documents in one column may be
    validated against different (even conflicting) schema versions, or not
    validated at all. Validation annotates element/attribute nodes with
    simple types, which changes comparison semantics (typed values) and
    makes value comparisons like [price gt 100] legal where untyped data
    would compare as strings.

    A schema here is a list of (path pattern → simple type) annotation
    rules — the part of XML Schema that matters for typing and indexing.
    [xsi:type] on an element overrides the rule-derived type, implementing
    the paper's "documents can use the xsi:type mechanism to dynamically
    define the data type of the nodes". *)

open Xdm

type rule = { rpattern : Xmlindex.Pattern.t; rtype : Atomic.atomic_type }

type t = { name : string; rules : rule list }

exception Validation_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Validation_error m)) fmt

let make name rules =
  {
    name;
    rules =
      List.map
        (fun (pat, ty) -> { rpattern = Xmlindex.Pattern.of_string pat; rtype = ty })
        rules;
  }

let xsi_ns = "http://www.w3.org/2001/XMLSchema-instance"

let type_of_xsi_name s : Atomic.atomic_type option =
  match String.trim s with
  | "xs:string" | "xsd:string" -> Some Atomic.TString
  | "xs:boolean" | "xsd:boolean" -> Some Atomic.TBoolean
  | "xs:integer" | "xsd:integer" | "xs:int" | "xs:long" -> Some Atomic.TInteger
  | "xs:decimal" | "xsd:decimal" -> Some Atomic.TDecimal
  | "xs:double" | "xsd:double" | "xs:float" -> Some Atomic.TDouble
  | "xs:date" | "xsd:date" -> Some Atomic.TDate
  | "xs:dateTime" | "xsd:dateTime" -> Some Atomic.TDateTime
  | _ -> None

let xsi_type (n : Node.t) : Atomic.atomic_type option =
  List.find_map
    (fun (a : Node.t) ->
      let q = Option.get a.Node.name in
      if q.Qname.uri = xsi_ns && q.Qname.local = "type" then
        type_of_xsi_name a.Node.content
      else None)
    n.Node.attrs

(** Validate a document *in place*: annotate matching nodes, memoize their
    typed values, raise [Validation_error] when a value does not conform.
    Returns the number of nodes annotated. *)
let validate (schema : t) (doc : Node.t) : int =
  let count = ref 0 in
  let annotate (n : Node.t) (ty : Atomic.atomic_type) =
    let sv =
      match n.Node.kind with
      | Node.Attribute -> n.Node.content
      | _ -> Node.string_value n
    in
    match Atomic.cast_opt (Atomic.Untyped sv) ty with
    | Some v ->
        n.Node.ann <- Node.SimpleType ty;
        n.Node.typed <- Some [ v ];
        incr count
    | None ->
        fail "schema %s: value %S of %s does not conform to %s" schema.name
          sv
          (match n.Node.name with
          | Some q -> Qname.to_string q
          | None -> Node.kind_to_string n.Node.kind)
          (Atomic.type_name ty)
  in
  let visit (n : Node.t) =
    match n.Node.kind with
    | Node.Element | Node.Attribute -> (
        match xsi_type n with
        | Some ty -> annotate n ty
        | None -> (
            match
              List.find_opt
                (fun r -> Xmlindex.Pattern.matches_node r.rpattern n)
                schema.rules
            with
            | Some r -> annotate n r.rtype
            | None -> ()))
    | _ -> ()
  in
  List.iter
    (fun (n : Node.t) ->
      visit n;
      List.iter visit n.Node.attrs)
    (Node.descendants_or_self doc);
  !count

(** Validation that reports instead of raising — for the schema-evolution
    experiments where old schemas reject new documents. *)
let validate_opt schema doc : (int, string) result =
  match validate schema doc with
  | n -> Ok n
  | exception Validation_error m -> Error m
