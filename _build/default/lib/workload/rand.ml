(** Deterministic PRNG (SplitMix64) and samplers, so every experiment and
    test is reproducible without touching the global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rand.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) /. 9007199254740992.

let bool t p = float t < p

let pick t arr = arr.(int t (Array.length arr))

(** Zipf-distributed rank in [1, n] with exponent [s] (inverse-CDF over a
    precomputed table would be faster; rejection is fine at bench scale). *)
let zipf t ~n ~s =
  (* normalization *)
  let h = ref 0. in
  for k = 1 to n do
    h := !h +. (1. /. Float.pow (float_of_int k) s)
  done;
  let u = float t *. !h in
  let acc = ref 0. and result = ref n in
  (try
     for k = 1 to n do
       acc := !acc +. (1. /. Float.pow (float_of_int k) s);
       if !acc >= u then begin
         result := k;
         raise Exit
       end
     done
   with Exit -> ());
  !result
