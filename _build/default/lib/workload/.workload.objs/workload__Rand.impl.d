lib/workload/rand.ml: Array Float Int64
