lib/workload/orders_gen.ml: Buffer List Printf Rand
