lib/workload/feeds_gen.ml: Buffer Char List Printf Rand
