(** RSS/Atom-style feed documents with extensibility points.

    The paper's introduction names RSS as the prime example of extensible
    schemas: "elements of any namespace anywhere in the document". Feed
    items here carry a random mix of extension elements from foreign
    namespaces plus [xsi:type]-annotated fields, driving the namespace
    (Section 3.7) and dynamic-typing experiments. *)

let dc_ns = "http://purl.org/dc/elements/1.1/"
let geo_ns = "http://www.w3.org/2003/01/geo/wgs84_pos#"
let media_ns = "http://search.yahoo.com/mrss/"
let xsi_ns = "http://www.w3.org/2001/XMLSchema-instance"
let xs_ns = "http://www.w3.org/2001/XMLSchema"

type params = { seed : int; items_mean : int; extension_frac : float }

let default = { seed = 7; items_mean = 5; extension_frac = 0.4 }

let item (p : params) (rng : Rand.t) (feed : int) (i : int) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<item>";
  Buffer.add_string buf
    (Printf.sprintf "<title>Feed %d story %d</title>" feed i);
  Buffer.add_string buf
    (Printf.sprintf "<link>http://example.com/%d/%d</link>" feed i);
  Buffer.add_string buf
    (Printf.sprintf
       "<pubDate xsi:type=\"xs:date\">%04d-%02d-%02d</pubDate>"
       (2005 + Rand.int rng 2)
       (1 + Rand.int rng 12)
       (1 + Rand.int rng 28));
  if Rand.bool rng p.extension_frac then
    Buffer.add_string buf
      (Printf.sprintf "<dc:creator>author%d</dc:creator>" (Rand.int rng 50));
  if Rand.bool rng p.extension_frac then
    Buffer.add_string buf
      (Printf.sprintf "<geo:lat>%.4f</geo:lat><geo:long>%.4f</geo:long>"
         (Rand.float rng *. 180. -. 90.)
         (Rand.float rng *. 360. -. 180.));
  if Rand.bool rng p.extension_frac then
    Buffer.add_string buf
      (Printf.sprintf
         "<media:content url=\"http://cdn.example.com/%d.jpg\" \
          fileSize=\"%d\"/>"
         i
         (1000 + Rand.int rng 100000));
  Buffer.add_string buf "</item>";
  Buffer.contents buf

let feed_doc (p : params) (rng : Rand.t) (i : int) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<rss version=\"2.0\" xmlns:dc=\"%s\" xmlns:geo=\"%s\" \
        xmlns:media=\"%s\" xmlns:xsi=\"%s\" xmlns:xs=\"%s\"><channel>"
       dc_ns geo_ns media_ns xsi_ns xs_ns);
  Buffer.add_string buf (Printf.sprintf "<title>Channel %d</title>" i);
  let n = 1 + Rand.int rng (max 1 ((2 * p.items_mean) - 1)) in
  for j = 1 to n do
    Buffer.add_string buf (item p rng i j)
  done;
  Buffer.add_string buf "</channel></rss>";
  Buffer.contents buf

let feeds (p : params) (n : int) : string list =
  let rng = Rand.create p.seed in
  List.init n (fun i -> feed_doc p rng (i + 1))

(* ------------------------------------------------------------------ *)
(* Schema-evolution postal codes (paper Section 2.1)                    *)
(* ------------------------------------------------------------------ *)

(** Address documents whose postal codes start numeric (US) and, after
    "the company begins shipping to Canada", include Canadian codes like
    "K1A 0B1" — the paper's motivating case for tolerant indexes. *)
let address_doc (rng : Rand.t) ~(canadian_frac : float) (i : int) : string =
  let postal =
    if Rand.bool rng canadian_frac then
      Printf.sprintf "%c%d%c %d%c%d"
        (Char.chr (65 + Rand.int rng 26))
        (Rand.int rng 10)
        (Char.chr (65 + Rand.int rng 26))
        (Rand.int rng 10)
        (Char.chr (65 + Rand.int rng 26))
        (Rand.int rng 10)
    else Printf.sprintf "%05d" (Rand.int rng 100000)
  in
  Printf.sprintf
    "<address><name>Resident %d</name><street>%d Main St</street>\
     <postalcode>%s</postalcode></address>"
    i (1 + Rand.int rng 9999) postal

let addresses ?(seed = 13) ~canadian_frac n : string list =
  let rng = Rand.create seed in
  List.init n (fun i -> address_doc rng ~canadian_frac (i + 1))
