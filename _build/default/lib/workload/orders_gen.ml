(** Synthetic order/customer/product documents.

    These generators bake in the data anomalies that drive the paper's
    examples, each individually dialable:

    - multi-lineitem orders and *multi-price* lineitems (the Section 3.10
      false-positive "between" example: prices 250 and 50);
    - string prices like "99.50USD" (the Section 3.8 text-node example and
      the Section 3.1 string-vs-number pitfall);
    - missing price attributes (Section 2.2's Query 2 document);
    - optional namespaces on elements (Section 3.7);
    - multiple product ids per product (the Section 3.6 concatenation
      divergence). *)

type params = {
  seed : int;
  n_customers : int;
  n_products : int;
  lineitems_mean : int;  (** mean lineitems per order (≥1) *)
  multi_price_frac : float;  (** lineitems with a second price child *)
  string_price_frac : float;  (** prices rendered as "NN.NNUSD" *)
  missing_price_frac : float;  (** lineitems with no price at all *)
  multi_id_frac : float;  (** products with two id children *)
  price_max : float;
  namespace : string option;  (** default element namespace for the doc *)
}

let default =
  {
    seed = 42;
    n_customers = 100;
    n_products = 200;
    lineitems_mean = 3;
    multi_price_frac = 0.0;
    string_price_frac = 0.0;
    missing_price_frac = 0.0;
    multi_id_frac = 0.0;
    price_max = 1000.;
    namespace = None;
  }

(** One order document as XML text; [i] is the order number. *)
let order_doc (p : params) (rng : Rand.t) (i : int) : string =
  let buf = Buffer.create 512 in
  let xmlns =
    match p.namespace with
    | Some ns -> Printf.sprintf " xmlns=\"%s\"" ns
    | None -> ""
  in
  Buffer.add_string buf (Printf.sprintf "<order%s id=\"o%d\">" xmlns i);
  Buffer.add_string buf
    (Printf.sprintf "<date>%04d-%02d-%02d</date>"
       (2000 + Rand.int rng 7)
       (1 + Rand.int rng 12)
       (1 + Rand.int rng 28));
  Buffer.add_string buf
    (Printf.sprintf "<custid>%d</custid>" (1000 + Rand.int rng p.n_customers));
  let n_items = 1 + Rand.int rng (max 1 ((2 * p.lineitems_mean) - 1)) in
  for _ = 1 to n_items do
    let price = Rand.float rng *. p.price_max in
    let pid = Rand.zipf rng ~n:p.n_products ~s:1.1 in
    if Rand.bool rng p.missing_price_frac then
      Buffer.add_string buf "<lineitem>"
    else if Rand.bool rng p.string_price_frac then
      Buffer.add_string buf
        (Printf.sprintf "<lineitem price=\"%.2fUSD\">" price)
    else
      Buffer.add_string buf (Printf.sprintf "<lineitem price=\"%.2f\">" price);
    (* price also as a child element, for element-path experiments *)
    if Rand.bool rng p.multi_price_frac then
      (* two price children straddling typical range predicates *)
      Buffer.add_string buf
        (Printf.sprintf "<price>%.2f</price><price>%.2f</price>"
           (price +. p.price_max)
           (price /. 10.))
    else if Rand.bool rng p.string_price_frac then
      Buffer.add_string buf (Printf.sprintf "<price>%.2fUSD</price>" price)
    else
      Buffer.add_string buf (Printf.sprintf "<price>%.2f</price>" price);
    Buffer.add_string buf
      (Printf.sprintf "<quantity>%d</quantity>" (1 + Rand.int rng 20));
    if Rand.bool rng p.multi_id_frac then
      Buffer.add_string buf
        (Printf.sprintf "<product><id>p%d</id><id>alt%d</id></product>" pid pid)
    else
      Buffer.add_string buf (Printf.sprintf "<product><id>p%d</id></product>" pid);
    Buffer.add_string buf "</lineitem>"
  done;
  Buffer.add_string buf "</order>";
  Buffer.contents buf

(** The paper's Section 2.2 counterexample document: an order whose
    lineitem has no price attribute at all (but does have a quantity
    attribute that satisfies [@* > 100]). *)
let no_price_doc =
  "<order><date>January 1, 2001</date><lineitem quantity=\"150\">\
   <quantity>150</quantity></lineitem></order>"

(** The paper's Section 3.8 document: a price whose text is "99.50USD". *)
let usd_price_doc =
  "<order><date>January 1, 2003</date><lineitem><price>99.50USD</price>\
   </lineitem></order>"

let orders (p : params) (n : int) : string list =
  let rng = Rand.create p.seed in
  List.init n (fun i -> order_doc p rng (i + 1))

let customer_doc (p : params) (rng : Rand.t) (i : int) : string =
  let xmlns =
    match p.namespace with
    | Some ns -> Printf.sprintf " xmlns=\"%s\"" ns
    | None -> ""
  in
  Printf.sprintf
    "<customer%s><id>%d</id><name>Customer %d</name><nation>%d</nation>\
     <status>%s</status></customer>"
    xmlns (1000 + i) i (Rand.int rng 25)
    (Rand.pick rng [| "gold"; "silver"; "bronze" |])

let customers (p : params) : string list =
  let rng = Rand.create (p.seed + 1) in
  List.init p.n_customers (fun i -> customer_doc p rng i)

let products (p : params) : (string * string) list =
  List.init p.n_products (fun i ->
      (Printf.sprintf "p%d" (i + 1), Printf.sprintf "Product %d" (i + 1)))
