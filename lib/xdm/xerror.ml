(** Errors raised by the XQuery / SQL-XML engine.

    Error codes follow the W3C XQuery error-code convention (e.g.
    [XPTY0004] for type errors, [FORG0001] for cast failures) so that tests
    can assert the exact failure class the paper predicts (e.g. Query 14 of
    the paper fails with a type error while Query 13 succeeds). *)

exception Error of { code : string; msg : string }

let raise_err code fmt =
  Format.kasprintf (fun msg -> raise (Error { code; msg })) fmt

(** [XPTY0004]: static/dynamic type mismatch (wrong operand types,
    non-singleton where a singleton is required, ...). *)
let type_error fmt = raise_err "XPTY0004" fmt

(** [FORG0001]: cast failure (invalid value for target type). *)
let cast_error fmt = raise_err "FORG0001" fmt

(** [FORG0006]: invalid argument type, notably effective boolean value on a
    sequence that has no EBV. *)
let ebv_error fmt = raise_err "FORG0006" fmt

(** [XPDY0002]: dynamic context component (e.g. context item) absent. *)
let no_context fmt = raise_err "XPDY0002" fmt

(** [XQDY0025]: duplicate attribute name in element construction. *)
let dup_attribute fmt = raise_err "XQDY0025" fmt

(** [XPTY0018]: path step mixes nodes and atomic values. *)
let mixed_path fmt = raise_err "XPTY0018" fmt

(** [XPST0008]: undefined name (variable or function). *)
let undefined fmt = raise_err "XPST0008" fmt

(** [XPST0081]: unresolvable namespace prefix. *)
let bad_prefix fmt = raise_err "XPST0081" fmt

(** [XPST0003]: grammar / syntax error. *)
let syntax_error fmt = raise_err "XPST0003" fmt

(** [XQDB0001] (engine-specific): resource budget exceeded — evaluation
    steps, node allocations, recursion depth or wall-clock timeout. *)
let resource_error fmt = raise_err "XQDB0001" fmt

(** [XQDB0002] (engine-specific): catalog error — unknown/duplicate table,
    column or index. *)
let catalog_error fmt = raise_err "XQDB0002" fmt

(** [XQDB0003] (engine-specific): DML / value error — wrong arity,
    value does not fit the column type. *)
let dml_error fmt = raise_err "XQDB0003" fmt

let pp ppf = function
  | Error { code; msg } -> Format.fprintf ppf "[%s] %s" code msg
  | e -> Format.fprintf ppf "%s" (Printexc.to_string e)

let to_string e = Format.asprintf "%a" pp e
