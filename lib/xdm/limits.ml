(** Resource governor.

    A {!t} record declares the budget a statement may consume; a {!meter}
    is the mutable counter set charged against that budget while a single
    statement (SQL or XQuery) runs. The evaluator calls {!step} once per
    expression-node evaluation, {!enter}/{!leave} around path-expression
    recursion, and {!add_nodes} when constructors allocate new XML nodes;
    the SQL executor calls {!tick} once per row scanned. Exceeding any
    budget raises a typed [XQDB0001] error (see {!Xerror.resource_error})
    instead of hanging or blowing the stack.

    Cost discipline: a meter made from {!unlimited} has [armed = false]
    and every charge function is a single branch, so the governor is
    effectively free unless the user sets a limit. The wall-clock deadline
    is only polled every 4096 steps to keep [Unix.gettimeofday] off the
    hot path. *)

type t = {
  max_steps : int option;  (** evaluation steps per statement *)
  max_nodes : int option;  (** constructed-node allocations per statement *)
  max_depth : int option;  (** path-expression / eval recursion depth *)
  timeout : float option;  (** wall-clock seconds per statement *)
}

let unlimited =
  { max_steps = None; max_nodes = None; max_depth = None; timeout = None }

let is_unlimited l = l = unlimited

let pp ppf l =
  let f name = function
    | None -> Format.fprintf ppf "%s=off " name
    | Some v -> Format.fprintf ppf "%s=%d " name v
  in
  f "steps" l.max_steps;
  f "nodes" l.max_nodes;
  f "depth" l.max_depth;
  match l.timeout with
  | None -> Format.fprintf ppf "timeout=off"
  | Some s -> Format.fprintf ppf "timeout=%gs" s

let to_string l = Format.asprintf "%a" pp l

type meter = {
  armed : bool;  (** false ⇒ every charge function is a no-op branch *)
  steps_cap : int;
  nodes_cap : int;
  depth_cap : int;
  deadline : float;  (** absolute [Unix.gettimeofday] cutoff *)
  steps : int Stdlib.Atomic.t;  (** shared across {!fork}s of the meter *)
  nodes : int Stdlib.Atomic.t;  (** shared across {!fork}s of the meter *)
  mutable depth : int;  (** per-fork: each domain has its own recursion *)
}

let meter ?(limits = unlimited) () =
  let cap = function None -> max_int | Some v -> v in
  {
    armed = not (is_unlimited limits);
    steps_cap = cap limits.max_steps;
    nodes_cap = cap limits.max_nodes;
    depth_cap = cap limits.max_depth;
    deadline =
      (match limits.timeout with
      | None -> infinity
      | Some s -> Unix.gettimeofday () +. s);
    steps = Stdlib.Atomic.make 0;
    nodes = Stdlib.Atomic.make 0;
    depth = 0;
  }

(** A per-domain view of [m] for a parallel chunk: the step and node
    counters stay shared ([Atomic.t] cells, so the statement budget is
    charged atomically across domains and [XQDB0001] fires exactly as
    for a sequential run), while the recursion depth is private to the
    fork — each domain tracks its own call stack. *)
let fork m = { m with depth = m.depth }

let exceeded what used cap =
  Xerror.resource_error "resource exceeded: %s (%d > %d)" what used cap

(* Deadline poll cadence: every 4096 steps. *)
let deadline_mask = 4095

let step m =
  let s = Stdlib.Atomic.fetch_and_add m.steps 1 + 1 in
  if s > m.steps_cap then exceeded "evaluation steps" s m.steps_cap;
  if s land deadline_mask = 0 && Unix.gettimeofday () > m.deadline then
    Xerror.resource_error "resource exceeded: wall-clock timeout"

(** Per-row charge for SQL scans: a step, but guarded so an unarmed meter
    costs one branch. *)
let tick m = if m.armed then step m

let add_nodes m n =
  if m.armed then begin
    let c = Stdlib.Atomic.fetch_and_add m.nodes n + n in
    if c > m.nodes_cap then exceeded "constructed nodes" c m.nodes_cap
  end

let enter m =
  let d = m.depth + 1 in
  m.depth <- d;
  if d > m.depth_cap then exceeded "recursion depth" d m.depth_cap

let leave m = m.depth <- m.depth - 1

(** Governor headroom snapshot: [(resource, used, cap)] for every capped
    resource. Empty when the meter is unarmed (no limits in force), so
    the profiler can distinguish "unlimited" from "0% used". *)
let usage m : (string * int * int) list =
  if not m.armed then []
  else begin
    let cap name used cap acc =
      if cap = max_int then acc else (name, used, cap) :: acc
    in
    []
    |> cap "depth" m.depth m.depth_cap
    |> cap "nodes" (Stdlib.Atomic.get m.nodes) m.nodes_cap
    |> cap "steps" (Stdlib.Atomic.get m.steps) m.steps_cap
  end
