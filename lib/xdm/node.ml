(** XDM nodes: mutable trees with *node identity* and *document order*.

    Node identity is central to the paper's Section 3.6: element
    construction creates nodes with fresh identities, so rewrites that
    eliminate construction can change the meaning of [is] / [except] /
    [union]. Every node carries a globally unique [id]; identity is [id]
    equality, never structural equality. *)

type kind = Document | Element | Attribute | Text | Comment | Pi

(** Type annotation of an element or attribute node. Non-validated
    elements are [xs:untyped]; non-validated attributes are
    [xdt:untypedAtomic] (Section 3.1 of the paper). Validation (see
    [Xschema]) replaces the annotation with a simple type. *)
type annotation = Untyped | SimpleType of Atomic.atomic_type

type t = {
  id : int;
  kind : kind;
  name : Qname.t option;  (** element/attribute name, PI target *)
  mutable parent : t option;
  mutable children : t list;  (** document & element content, in order *)
  mutable attrs : t list;  (** element attributes *)
  mutable content : string;  (** text / comment / PI / attribute value *)
  mutable ann : annotation;
  mutable typed : Atomic.t list option;
      (** typed value memoized by validation *)
  mutable ord : int;  (** document-order position, valid when the root's
                          [ord_valid] is set *)
  mutable ord_valid : bool;  (** meaningful on root nodes only *)
  mutable tree_ord : int;
      (** cross-tree rank of a root node, defaulting to its [id]; bulk
          load overrides it (see {!set_tree_order}) so collection order
          follows row order even when documents were parsed in parallel
          and their ids interleave across chunks *)
}

(* Atomic so parallel chunks (constructors, parsing) can mint ids
   concurrently without duplicates. *)
let counter = Stdlib.Atomic.make 0
let fresh_id () = Stdlib.Atomic.fetch_and_add counter 1 + 1

let mk kind name =
  let id = fresh_id () in
  {
    id;
    kind;
    name;
    parent = None;
    children = [];
    attrs = [];
    content = "";
    ann = Untyped;
    typed = None;
    ord = 0;
    ord_valid = false;
    tree_ord = id;
  }

let document () = mk Document None
let element name = mk Element (Some name)

let attribute name value =
  let n = mk Attribute (Some name) in
  n.content <- value;
  n

let text s =
  let n = mk Text None in
  n.content <- s;
  n

let comment s =
  let n = mk Comment None in
  n.content <- s;
  n

let pi target data =
  let n = mk Pi (Some (Qname.make target)) in
  n.content <- data;
  n

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let rec root n = match n.parent with None -> n | Some p -> root p

let invalidate_order n = (root n).ord_valid <- false

let append_child parent child =
  child.parent <- Some parent;
  parent.children <- parent.children @ [ child ];
  invalidate_order parent

let set_children parent children =
  List.iter (fun c -> c.parent <- Some parent) children;
  parent.children <- children;
  invalidate_order parent

let add_attr el attr =
  attr.parent <- Some el;
  el.attrs <- el.attrs @ [ attr ];
  invalidate_order el

let identical a b = a.id = b.id

(** Renumber the tree below [r] in document order. Attributes follow their
    element and precede its children, per the data model. *)
let renumber r =
  let i = ref 0 in
  let rec go n =
    n.ord <- !i;
    incr i;
    List.iter go n.attrs;
    List.iter go n.children
  in
  go r;
  r.ord_valid <- true

(** Total order consistent with document order within a tree; across trees
    the order is stable but implementation-defined (by root id), as the
    XQuery spec permits. *)
let doc_compare a b =
  if a.id = b.id then 0
  else
    let ra = root a and rb = root b in
    if ra.id <> rb.id then
      compare (ra.tree_ord, ra.id) (rb.tree_ord, rb.id)
    else begin
      if not ra.ord_valid then renumber ra;
      compare a.ord b.ord
    end

(** Override the cross-tree rank of [root]. {!fresh_rank} draws from the
    same counter as node ids, so default-ranked trees (rank = id) and
    explicitly ranked ones stay totally ordered. *)
let set_tree_order root rank = root.tree_ord <- rank

let fresh_rank () = fresh_id ()

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

(** String value: for documents and elements, the concatenation of all
    descendant text nodes (the paper: an interior node is indexed "as the
    concatenation of all text nodes below it"). *)
let string_value n =
  match n.kind with
  | Text | Comment | Pi | Attribute -> n.content
  | Document | Element ->
      let buf = Buffer.create 16 in
      let rec go n =
        match n.kind with
        | Text -> Buffer.add_string buf n.content
        | Element | Document -> List.iter go n.children
        | _ -> ()
      in
      go n;
      Buffer.contents buf

(** Typed value, as used by [fn:data()]. Untyped elements and attributes
    atomize to [xdt:untypedAtomic]; validated nodes atomize to their
    annotated simple type (memoized in [typed]). *)
let typed_value n : Atomic.t list =
  match n.typed with
  | Some v -> v
  | None -> (
      match (n.kind, n.ann) with
      | (Element | Document), Untyped -> [ Atomic.Untyped (string_value n) ]
      | Attribute, Untyped -> [ Atomic.Untyped n.content ]
      | (Element | Attribute | Document), SimpleType t ->
          let v = [ Atomic.cast (Atomic.Untyped (string_value n)) t ] in
          n.typed <- Some v;
          v
      | Text, _ -> [ Atomic.Untyped n.content ]
      | (Comment | Pi), _ -> [ Atomic.Str n.content ])

(* ------------------------------------------------------------------ *)
(* Copying (construction semantics)                                    *)
(* ------------------------------------------------------------------ *)

(** Deep copy with fresh node identities. With [strip_types] (the default,
    matching construction in "strip" mode), element annotations revert to
    [xs:untyped] and attributes to [xdt:untypedAtomic] — one of the
    Section 3.6 rewrite obstacles. *)
let rec copy ?(strip_types = true) n =
  let id = fresh_id () in
  let c =
    {
      id;
      kind = n.kind;
      name = n.name;
      parent = None;
      children = [];
      attrs = [];
      content = n.content;
      ann = (if strip_types then Untyped else n.ann);
      typed = (if strip_types then None else n.typed);
      ord = 0;
      ord_valid = false;
      tree_ord = id;
    }
  in
  let kids = List.map (fun k -> copy ~strip_types k) n.children in
  List.iter (fun k -> k.parent <- Some c) kids;
  c.children <- kids;
  let ats = List.map (fun a -> copy ~strip_types a) n.attrs in
  List.iter (fun a -> a.parent <- Some c) ats;
  c.attrs <- ats;
  c

(* ------------------------------------------------------------------ *)
(* Axes helpers                                                        *)
(* ------------------------------------------------------------------ *)

let rec descendants n =
  List.concat_map (fun c -> c :: descendants c) n.children

let descendants_or_self n = n :: descendants n

let ancestors n =
  let rec go acc n =
    match n.parent with None -> acc | Some p -> go (p :: acc) p
  in
  go [] n
(* returned root-first *)

(** Rooted path of a node as a list of steps root-first, used by the path
    table. Each step is [`Elem qname], [`Attr qname], [`Text], [`Comment]
    or [`Pi target]. The document node itself contributes no step. *)
type path_step =
  [ `Elem of Qname.t | `Attr of Qname.t | `Text | `Comment | `Pi of string ]

let step_of_node n : path_step option =
  match n.kind with
  | Document -> None
  | Element -> Some (`Elem (Option.get n.name))
  | Attribute -> Some (`Attr (Option.get n.name))
  | Text -> Some `Text
  | Comment -> Some `Comment
  | Pi -> Some (`Pi (Option.get n.name).Qname.local)

let rooted_path n : path_step list =
  let steps = List.filter_map step_of_node (ancestors n @ [ n ]) in
  steps

let step_to_string : path_step -> string = function
  | `Elem q -> Qname.to_clark q
  | `Attr q -> "@" ^ Qname.to_clark q
  | `Text -> "text()"
  | `Comment -> "comment()"
  | `Pi t -> "processing-instruction(" ^ t ^ ")"

let path_key n =
  "/" ^ String.concat "/" (List.map step_to_string (rooted_path n))

let kind_to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "processing-instruction"
