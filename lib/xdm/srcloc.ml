(** Source positions for diagnostics.

    Both front ends (the XQuery lexer and the SQL/XML lexer) track byte
    offsets only; this module converts an offset into a 1-based
    line/column pair against the original source text and renders the
    caret snippets used by syntax errors and lint diagnostics. *)

type pos = { line : int; col : int; offset : int }

(** Column counting is byte-based (the engine's strings are raw bytes);
    tabs count as one column. *)
let of_offset (src : string) (offset : int) : pos =
  let offset = max 0 (min offset (String.length src)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = offset - !bol + 1; offset }

let to_string (p : pos) = Printf.sprintf "line %d, column %d" p.line p.col

(** The full source line containing [p] (without its newline). *)
let line_text (src : string) (p : pos) : string =
  let n = String.length src in
  let bol = p.offset - (p.col - 1) in
  let rec eol i = if i >= n || src.[i] = '\n' then i else eol (i + 1) in
  let bol = max 0 (min bol n) in
  String.sub src bol (eol bol - bol)

(** Two-line caret snippet:
    {v
    for $i in //order[@x = "a" + 1] return $i
                           ^
    v} *)
let caret_snippet (src : string) (p : pos) : string =
  let line = line_text src p in
  (* trim very long lines around the caret *)
  let max_width = 120 in
  let line, col =
    if String.length line <= max_width then (line, p.col)
    else begin
      let start = max 0 (p.col - 1 - (max_width / 2)) in
      let len = min max_width (String.length line - start) in
      ("..." ^ String.sub line start len, p.col - start + 3)
    end
  in
  let pad = String.make (max 0 (col - 1)) ' ' in
  Printf.sprintf "%s\n%s^" line pad
