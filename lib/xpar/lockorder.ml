(** Runtime lock-order tracking and deadlock detection (the dynamic half
    of Xsan; the static half is the [lib/xsan] source lint).

    Every lock created through {!Xpar.Lock.create} registers here under a
    name. Each acquisition pushes the lock onto the acquiring domain's
    held-lock stack (domain-local, no contention) and, when other locks
    are already held, records a directed *order edge* [held -> acquired]
    with the call stacks of both acquisitions — the first witness of that
    ordering. A cycle in the edge graph means two code paths take the
    same locks in opposite orders: a potential deadlock even if no run
    has hung yet, which is exactly the class of bug that only bites under
    production interleavings.

    Cost model: the common case (acquiring with no lock held, or an
    already-known edge) touches one atomic counter, one domain-local
    read/write and one [Printexc.get_callstack]. The shared edge table is
    only locked when a *new* ordering is first observed — a handful of
    times per process lifetime.

    Surfacing: [Engine.refresh_lock_metrics] mirrors {!stats} into the
    Xprof registry (gauges [lock_acquisitions], [lock_order_edges],
    [lock_order_cycles]) and the shell's [\xsan] command prints
    {!report}. *)

module B = Xpar_backend

type lock_id = int

(* The tracker's own lock is a raw backend lock, not an [Xpar.Lock]: it
   must not observe itself. It is a leaf — nothing is acquired under it
   — so it can introduce no ordering of its own. *)
let glock = B.Lock.create ()
let names : (lock_id, string) Hashtbl.t = Hashtbl.create 16
let next_id = Atomic.make 0
let acquisitions = Atomic.make 0
let tracking_on = Atomic.make true

let set_tracking b = Atomic.set tracking_on b
let tracking () = Atomic.get tracking_on

type edge = {
  e_from : lock_id;
  e_to : lock_id;
  from_stack : string;  (** where [e_from] was acquired (first witness) *)
  to_stack : string;  (** where [e_to] was acquired while holding [e_from] *)
}

let edges : (lock_id * lock_id, edge) Hashtbl.t = Hashtbl.create 32

let register name =
  let id = Atomic.fetch_and_add next_id 1 in
  B.Lock.with_lock glock (fun () -> Hashtbl.replace names id name);
  id

let name_of id =
  match B.Lock.with_lock glock (fun () -> Hashtbl.find_opt names id) with
  | Some n -> n
  | None -> Printf.sprintf "lock#%d" id

(* Per-domain stack of held locks, innermost first, each with the raw
   call stack captured at its acquisition (stringified only if it ever
   becomes an edge witness). *)
let held : (lock_id * Printexc.raw_backtrace) list B.Tls.key =
  B.Tls.make (fun () -> [])

(* Systhreads share their domain's DLS, so a thread-per-connection
   server (lib/xnet) would interleave every session's acquisitions in
   one stack and report phantom order edges between locks never held
   together. Such servers install a thread-id provider
   (Thread.id (Thread.self ())) and each thread's held stack moves to
   [tl_held] under [glock] — still a leaf lock, so the tracker cannot
   observe itself. *)
let tid_provider : (unit -> int) option Atomic.t = Atomic.make None
let set_thread_id_provider p = Atomic.set tid_provider p

let tl_held : (int, (lock_id * Printexc.raw_backtrace) list) Hashtbl.t =
  Hashtbl.create 64

let get_held () =
  match Atomic.get tid_provider with
  | None -> B.Tls.get held
  | Some tid ->
      let k = tid () in
      B.Lock.with_lock glock (fun () ->
          Option.value ~default:[] (Hashtbl.find_opt tl_held k))

let set_held hs =
  match Atomic.get tid_provider with
  | None -> B.Tls.set held hs
  | Some tid -> (
      let k = tid () in
      B.Lock.with_lock glock (fun () ->
          match hs with
          | [] -> Hashtbl.remove tl_held k
          | _ -> Hashtbl.replace tl_held k hs))

let stack_depth = 16

let record_edge ~from_id ~from_raw ~to_id ~to_raw =
  if not (B.Lock.with_lock glock (fun () -> Hashtbl.mem edges (from_id, to_id)))
  then begin
    let e =
      {
        e_from = from_id;
        e_to = to_id;
        from_stack = Printexc.raw_backtrace_to_string from_raw;
        to_stack = Printexc.raw_backtrace_to_string to_raw;
      }
    in
    B.Lock.with_lock glock (fun () ->
        if not (Hashtbl.mem edges (from_id, to_id)) then
          Hashtbl.replace edges (from_id, to_id) e)
  end

(** Note intent to take [id] (called before blocking on the mutex, so an
    actual deadlock still leaves its edges behind for post-mortems). *)
let acquiring id =
  if Atomic.get tracking_on then begin
    Atomic.incr acquisitions;
    let raw = Printexc.get_callstack stack_depth in
    let hs = get_held () in
    List.iter
      (fun (h, hraw) ->
        if h <> id then
          record_edge ~from_id:h ~from_raw:hraw ~to_id:id ~to_raw:raw)
      hs;
    set_held ((id, raw) :: hs)
  end

(** Pop the topmost occurrence of [id] from the held stack (tolerates a
    tracking toggle between acquire and release). *)
let released id =
  let rec drop = function
    | [] -> []
    | (h, _) :: rest when h = id -> rest
    | x :: rest -> x :: drop rest
  in
  set_held (drop (get_held ()))

(* --- analysis ------------------------------------------------------ *)

let edge_list () =
  B.Lock.with_lock glock (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) edges [])
  |> List.sort (fun a b -> compare (a.e_from, a.e_to) (b.e_from, b.e_to))

(* Elementary cycles: DFS from each node [r] restricted to nodes > r, so
   every cycle is enumerated exactly once, rooted at its minimum id. The
   graph has one node per *lock*, so it is tiny. *)
let cycles_ids es =
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.e_from; e.e_to ]) es)
  in
  let succs u =
    List.filter_map (fun e -> if e.e_from = u then Some e.e_to else None) es
  in
  let out = ref [] in
  List.iter
    (fun r ->
      let rec dfs path u =
        List.iter
          (fun v ->
            if v = r then out := List.rev path :: !out
            else if v > r && not (List.mem v path) then dfs (v :: path) v)
          (succs u)
      in
      dfs [ r ] r)
    nodes;
  List.rev !out

(** Potential-deadlock cycles, each as a list of lock names in
    acquisition order. *)
let cycles () = List.map (List.map name_of) (cycles_ids (edge_list ()))

type stats = {
  locks : int;
  acquisitions : int;
  edges : int;
  cycles : int;
}

let stats () =
  let es = edge_list () in
  {
    locks = B.Lock.with_lock glock (fun () -> Hashtbl.length names);
    acquisitions = Atomic.get acquisitions;
    edges = List.length es;
    cycles = List.length (cycles_ids es);
  }

(** Forget all recorded edges and the acquisition count (lock names
    persist with their locks). Used by tests between scenarios. *)
let reset () =
  B.Lock.with_lock glock (fun () -> Hashtbl.reset edges);
  Atomic.set acquisitions 0

let indent s =
  String.concat "\n"
    (List.map (fun l -> "      " ^ l) (String.split_on_char '\n' (String.trim s)))

(** Human-readable report: registered locks, observed order edges, and
    each potential-deadlock cycle with the first-witness stacks of every
    edge on it. *)
let report () =
  let buf = Buffer.create 512 in
  let es = edge_list () in
  let cyc = cycles_ids es in
  Printf.bprintf buf
    "lock-order: %d locks, %d acquisitions, %d order edges, %d cycles\n"
    (B.Lock.with_lock glock (fun () -> Hashtbl.length names))
    (Atomic.get acquisitions) (List.length es) (List.length cyc);
  if es <> [] then begin
    Buffer.add_string buf "observed acquisition order:\n";
    List.iter
      (fun e ->
        Printf.bprintf buf "  %s -> %s\n" (name_of e.e_from) (name_of e.e_to))
      es
  end;
  List.iter
    (fun ids ->
      let ring = ids @ [ List.hd ids ] in
      Printf.bprintf buf "POTENTIAL DEADLOCK: %s\n"
        (String.concat " -> " (List.map name_of ring));
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            (match
               B.Lock.with_lock glock (fun () ->
                   Hashtbl.find_opt edges (a, b))
             with
            | Some e ->
                Printf.bprintf buf "  edge %s -> %s (first witness):\n"
                  (name_of a) (name_of b);
                Printf.bprintf buf "    holding %s, acquired at:\n%s\n"
                  (name_of a) (indent e.from_stack);
                Printf.bprintf buf "    then took %s at:\n%s\n" (name_of b)
                  (indent e.to_stack)
            | None -> ());
            pairs rest
        | _ -> ()
      in
      pairs ring)
    cyc;
  if es = [] && cyc = [] then
    Buffer.add_string buf "no lock orderings observed yet\n";
  Buffer.contents buf
