(** Xpar: chunked parallel execution over immutable snapshots.

    On OCaml 5 this is a fixed pool of worker domains fed by a
    work-stealing-free chunk queue; on OCaml 4.x a build-time-selected
    sequential fallback with the same API (every chunk runs on the
    calling thread). Either way the determinism contract holds: chunks
    are contiguous, items within a chunk run in order, results merge in
    chunk order, and the first error in chunk order is the first error a
    sequential run would hit. See docs/PARALLELISM.md. *)

(** Backend name: ["domains"] or ["sequential"]. *)
val backend : string

(** Whether real parallelism is compiled in (OCaml >= 5). *)
val available : bool

(** Upper clamp on parallelism (coordinator + 15 pool workers). *)
val max_parallelism : int

(** The runtime's recommended parallelism (1 on the fallback). *)
val default_parallelism : unit -> int

(** Set the process-wide parallelism level, clamped to
    [1 .. max_parallelism]. [n - 1] resident worker domains are kept
    (the calling domain is the n-th); shrinking retires workers. On the
    sequential backend this records the setting but execution stays
    sequential. *)
val set_parallelism : int -> unit

val parallelism : unit -> int

(** No parallel region in flight and no pool worker running a job —
    used by tests to prove early cursor close leaks no domain work. *)
val idle : unit -> bool

(** Resident worker domains (0 on the fallback). *)
val pool_size : unit -> int

(** [map_chunks f items] splits [items] into contiguous chunks and
    applies [f chunk_index chunk] to each, in parallel when the
    effective parallelism and chunk count allow it. The result array is
    in chunk order; a chunk that raises yields [Error] in its slot
    (never tearing the other chunks). [?parallelism] overrides the
    process-wide setting for this call; [?chunk_size] pins the chunk
    size (defaults to ~4 chunks per worker). *)
val map_chunks :
  ?parallelism:int ->
  ?chunk_size:int ->
  (int -> 'a array -> 'b) ->
  'a array ->
  ('b, exn) result array

(** Re-raise the first chunk error in chunk order, or return all chunk
    values. *)
val join : ('b, exn) result array -> 'b array

(** Chunked map + sequential fold over chunk results in chunk order. *)
val map_reduce :
  ?parallelism:int ->
  ?chunk_size:int ->
  map:(int -> 'a array -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** Order-preserving parallel [List.map]. *)
val map_list : ?parallelism:int -> ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_for lo hi body] runs [body i] for [lo <= i < hi] with
    chunked parallelism; [body] must tolerate any inter-chunk order. *)
val parallel_for :
  ?parallelism:int -> ?chunk_size:int -> int -> int -> (int -> unit) -> unit

(** {1 Schedule-perturbing stress mode}

    With a seed set, every parallel region dispatches its chunks in a
    seeded pseudo-random order instead of ascending index order. Results
    still merge by chunk index (the determinism contract is untouched);
    only the set of interleavings actually exercised changes, so the
    differential suite and the TSan CI leg explore schedules a quiet
    machine would never produce. A failing schedule is reproducible from
    the seed. Also settable process-wide via the [XPAR_STRESS=<seed>]
    environment variable, read once at startup. *)

val set_stress : int option -> unit
(** [set_stress (Some seed)] enables stress dispatch; [None] disables. *)

val stress : unit -> int option

(** {1 Locks and lock-order tracking} *)

(** Runtime lock-order tracker (the dynamic half of Xsan): records the
    acquisition-order graph of every {!Lock} and detects cycles —
    potential deadlocks — with the first-witness call stacks of both
    acquisitions on each edge. See docs/CONCURRENCY.md. *)
module Lockorder : sig
  type lock_id

  (** Register a lock under [name]; done by {!Lock.create}. *)
  val register : string -> lock_id

  (** Record intent to acquire / completion of release. Called by
      {!Lock.with_lock}; exposed for locks not built on {!Lock}. *)
  val acquiring : lock_id -> unit

  val released : lock_id -> unit

  (** Held-lock stacks are per-domain by default (Domain.DLS), which is
      wrong once systhreads are in play: every thread of a domain shares
      the DLS, so one thread's held locks contaminate another's
      acquisitions and the tracker reports phantom edges (and phantom
      deadlock cycles) between locks never actually nested. A
      thread-per-connection server installs
      [set_thread_id_provider (Some (fun () -> Thread.id (Thread.self ())))]
      once at startup and each thread gets its own stack; [None]
      restores the per-domain default. The [lib/xnet] server does this
      in [Server.start]. *)
  val set_thread_id_provider : (unit -> int) option -> unit

  (** Tracking is on by default; turn it off to shed the (small)
      per-acquisition cost in benchmarks. *)
  val set_tracking : bool -> unit

  val tracking : unit -> bool

  type stats = {
    locks : int;  (** locks registered *)
    acquisitions : int;  (** tracked acquisitions since start/reset *)
    edges : int;  (** distinct observed orderings a -> b *)
    cycles : int;  (** potential deadlocks *)
  }

  val stats : unit -> stats

  (** Every potential-deadlock cycle, as lock names in acquisition
      order. *)
  val cycles : unit -> string list list

  (** Human-readable report: locks, edges, and each cycle with both
      first-witness stacks ([\xsan] in the shell). *)
  val report : unit -> string

  (** Forget recorded edges and the acquisition count (for tests). *)
  val reset : unit -> unit
end

(** A named mutual-exclusion lock: a real [Mutex] on the domain backend,
    a no-op on the sequential one (where nothing is concurrent). Every
    acquisition is recorded by {!Lockorder}, so give locks stable names
    ([Lock.create ~name:"engine.plan_cache" ()]) — anonymous locks get a
    generated one. Used to guard shared memo tables on hot paths. *)
module Lock : sig
  type t

  val create : ?name:string -> unit -> t
  val with_lock : t -> (unit -> 'a) -> 'a
end
