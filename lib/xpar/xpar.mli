(** Xpar: chunked parallel execution over immutable snapshots.

    On OCaml 5 this is a fixed pool of worker domains fed by a
    work-stealing-free chunk queue; on OCaml 4.x a build-time-selected
    sequential fallback with the same API (every chunk runs on the
    calling thread). Either way the determinism contract holds: chunks
    are contiguous, items within a chunk run in order, results merge in
    chunk order, and the first error in chunk order is the first error a
    sequential run would hit. See docs/PARALLELISM.md. *)

(** Backend name: ["domains"] or ["sequential"]. *)
val backend : string

(** Whether real parallelism is compiled in (OCaml >= 5). *)
val available : bool

(** Upper clamp on parallelism (coordinator + 15 pool workers). *)
val max_parallelism : int

(** The runtime's recommended parallelism (1 on the fallback). *)
val default_parallelism : unit -> int

(** Set the process-wide parallelism level, clamped to
    [1 .. max_parallelism]. [n - 1] resident worker domains are kept
    (the calling domain is the n-th); shrinking retires workers. On the
    sequential backend this records the setting but execution stays
    sequential. *)
val set_parallelism : int -> unit

val parallelism : unit -> int

(** No parallel region in flight and no pool worker running a job —
    used by tests to prove early cursor close leaks no domain work. *)
val idle : unit -> bool

(** Resident worker domains (0 on the fallback). *)
val pool_size : unit -> int

(** [map_chunks f items] splits [items] into contiguous chunks and
    applies [f chunk_index chunk] to each, in parallel when the
    effective parallelism and chunk count allow it. The result array is
    in chunk order; a chunk that raises yields [Error] in its slot
    (never tearing the other chunks). [?parallelism] overrides the
    process-wide setting for this call; [?chunk_size] pins the chunk
    size (defaults to ~4 chunks per worker). *)
val map_chunks :
  ?parallelism:int ->
  ?chunk_size:int ->
  (int -> 'a array -> 'b) ->
  'a array ->
  ('b, exn) result array

(** Re-raise the first chunk error in chunk order, or return all chunk
    values. *)
val join : ('b, exn) result array -> 'b array

(** Chunked map + sequential fold over chunk results in chunk order. *)
val map_reduce :
  ?parallelism:int ->
  ?chunk_size:int ->
  map:(int -> 'a array -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc

(** Order-preserving parallel [List.map]. *)
val map_list : ?parallelism:int -> ?chunk_size:int -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_for lo hi body] runs [body i] for [lo <= i < hi] with
    chunked parallelism; [body] must tolerate any inter-chunk order. *)
val parallel_for :
  ?parallelism:int -> ?chunk_size:int -> int -> int -> (int -> unit) -> unit

(** A mutual-exclusion lock: a real [Mutex] on the domain backend, a
    no-op on the sequential one (where nothing is concurrent). Used to
    guard shared memo tables on hot paths. *)
module Lock : sig
  type t

  val create : unit -> t
  val with_lock : t -> (unit -> 'a) -> 'a
end
