(** Domain-pool backend, selected at build time on OCaml >= 5 (see
    lib/xpar/dune; OCaml 4.x builds compile [backend_seq.ml] instead).

    The pool is a fixed set of resident worker domains fed through a
    single job slot guarded by one mutex. Posting a job bumps an epoch
    counter and broadcasts; every worker that observes a new epoch runs
    the job closure. Jobs are chunk-queue drains (see xpar.ml): a worker
    that wakes up late — or re-runs a stale job after the coordinator
    already finished it — finds the chunk cursor exhausted and returns
    immediately, so over-delivery is harmless and the pool needs no
    per-job acknowledgement protocol. *)

let name = "domains"
let available = true
let default_parallelism () = Domain.recommended_domain_count ()

module Lock = struct
  type t = Mutex.t

  let create () = Mutex.create ()

  let with_lock m f =
    Mutex.lock m;
    match f () with
    | v ->
        Mutex.unlock m;
        v
    | exception e ->
        Mutex.unlock m;
        raise e
end

(** Domain-local storage, used by the lock-order tracker for the
    per-domain held-lock stack. *)
module Tls = struct
  type 'a key = 'a Domain.DLS.key

  let make init = Domain.DLS.new_key init
  let get k = Domain.DLS.get k
  let set k v = Domain.DLS.set k v
end

module Waiter = struct
  type t = { m : Mutex.t; c : Condition.t }

  let create () = { m = Mutex.create (); c = Condition.create () }

  (* [pred] reads atomics published by workers; taking the mutex in
     [wake] after the atomic write orders the write before the
     broadcast, so a waiter inside [Condition.wait] cannot miss it. *)
  let wait_until w pred =
    Mutex.lock w.m;
    while not (pred ()) do
      Condition.wait w.c w.m
    done;
    Mutex.unlock w.m

  let wake w =
    Mutex.lock w.m;
    Condition.broadcast w.c;
    Mutex.unlock w.m
end

type pool = {
  m : Mutex.t;
  work : Condition.t;
  mutable target : int;  (** desired resident worker count *)
  mutable alive : int;
  mutable epoch : int;
  mutable job : unit -> unit;
  mutable handles : unit Domain.t list;
}

let pool =
  {
    m = Mutex.create ();
    work = Condition.create ();
    target = 0;
    alive = 0;
    epoch = 0;
    job = ignore;
    handles = [];
  }

(* Workers executing a job, for [Xpar.idle]. *)
let busy = Atomic.make 0

(* One coordinator + at most this many pool workers. *)
let max_workers = 15

let rec worker_loop seen =
  Mutex.lock pool.m;
  let rec await () =
    if pool.alive > pool.target then `Exit
    else if pool.epoch <> seen then `Run (pool.epoch, pool.job)
    else begin
      Condition.wait pool.work pool.m;
      await ()
    end
  in
  match await () with
  | `Exit ->
      pool.alive <- pool.alive - 1;
      Mutex.unlock pool.m
  | `Run (epoch, job) ->
      Mutex.unlock pool.m;
      Atomic.incr busy;
      (try job () with _ -> ());
      Atomic.decr busy;
      worker_loop epoch

let spawn_locked () =
  pool.alive <- pool.alive + 1;
  let seen = pool.epoch in
  pool.handles <- Domain.spawn (fun () -> worker_loop seen) :: pool.handles

let resize n =
  let n = max 0 (min n max_workers) in
  Mutex.lock pool.m;
  pool.target <- n;
  while pool.alive < pool.target do
    spawn_locked ()
  done;
  (* shrinking: excess workers observe alive > target and exit *)
  Condition.broadcast pool.work;
  Mutex.unlock pool.m

let kick ~workers job =
  Mutex.lock pool.m;
  if pool.target < workers then pool.target <- min workers max_workers;
  while pool.alive < pool.target do
    spawn_locked ()
  done;
  pool.epoch <- pool.epoch + 1;
  pool.job <- job;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m

let workers_busy () = Atomic.get busy

let pool_size () =
  Mutex.lock pool.m;
  let n = pool.alive in
  Mutex.unlock pool.m;
  n

(* Drain and join the pool so the process never exits with live
   domains (OCaml aborts on exit with unjoined domains). *)
let () =
  at_exit (fun () ->
      Mutex.lock pool.m;
      pool.target <- 0;
      Condition.broadcast pool.work;
      let handles = pool.handles in
      pool.handles <- [];
      Mutex.unlock pool.m;
      List.iter (fun d -> try Domain.join d with _ -> ()) handles)
