(** Sequential fallback backend, selected at build time on OCaml 4.x
    (see lib/xpar/dune). No domains, no mutexes — [Xpar.map_chunks]
    detects [available = false] and runs every chunk on the calling
    thread in chunk order, so results, charges and surfaced errors are
    identical to the domain backend by construction (that is the
    determinism contract the differential tests check). *)

let name = "sequential"
let available = false
let default_parallelism () = 1

module Lock = struct
  type t = unit

  let create () = ()
  let with_lock () f = f ()
end

(** "Thread-local" storage on a backend with exactly one thread: a
    lazily initialized cell. *)
module Tls = struct
  type 'a key = { init : unit -> 'a; mutable v : 'a option }

  let make init = { init; v = None }

  let get k =
    match k.v with
    | Some v -> v
    | None ->
        let v = k.init () in
        k.v <- Some v;
        v

  let set k v = k.v <- Some v
end

module Waiter = struct
  type t = unit

  let create () = ()

  (* Never reached: without workers there is nothing to wait on. *)
  let wait_until () pred =
    if not (pred ()) then invalid_arg "Xpar: wait in sequential backend"

  let wake () = ()
end

let resize _ = ()
let kick ~workers:_ _ = invalid_arg "Xpar: kick in sequential backend"
let workers_busy () = 0
let pool_size () = 0
