(** Xpar: the parallel-execution layer (ROADMAP "multicore" item).

    One process-wide fixed domain pool (OCaml 5) or a sequential
    fallback (OCaml 4.x), selected at build time — see lib/xpar/dune and
    the two backends. Work is distributed work-stealing-free: the input
    array is split into contiguous chunks and a single atomic cursor
    hands chunks to whoever is free (the calling domain always
    participates, which also makes nested parallel regions deadlock-free
    — a coordinator stuck inside a chunk still drains its own queue).

    Determinism contract: chunk results are merged in chunk order, and
    within a chunk items run sequentially, so the concatenated output —
    and the first surfaced error — are identical to a sequential run of
    the same function over the same items. docs/PARALLELISM.md has the
    full argument. *)

module B = Xpar_backend
module Lock = B.Lock

let backend = B.name
let available = B.available

(* One coordinator + up to 15 pool workers. *)
let max_parallelism = 16

let default_parallelism () =
  if available then max 1 (min (B.default_parallelism ()) max_parallelism)
  else 1

let requested = Atomic.make 1

(* Parallel regions with the calling domain inside them, for [idle]. *)
let in_flight = Atomic.make 0

let set_parallelism n =
  let n = max 1 (min n max_parallelism) in
  Atomic.set requested n;
  if available then B.resize (n - 1)

let parallelism () = Atomic.get requested
let idle () = Atomic.get in_flight = 0 && B.workers_busy () = 0
let pool_size () = B.pool_size ()

let effective ?parallelism () =
  let p =
    match parallelism with Some p -> p | None -> Atomic.get requested
  in
  if available then max 1 (min p max_parallelism) else 1

(* Several chunks per worker, so one slow chunk doesn't serialize the
   tail; chunks stay big enough that per-chunk bookkeeping is noise. *)
let chunks_per_worker = 4

let chunk_size_for ~n ~par = function
  | Some c -> max 1 c
  | None -> max 1 ((n + (par * chunks_per_worker) - 1) / (par * chunks_per_worker))

let map_chunks ?parallelism ?chunk_size f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let par = min (effective ?parallelism ()) n in
    let cs = chunk_size_for ~n ~par chunk_size in
    let nchunks = (n + cs - 1) / cs in
    let slots = Array.make nchunks (Error Not_found) in
    let do_chunk c =
      let lo = c * cs in
      let chunk = Array.sub items lo (min cs (n - lo)) in
      slots.(c) <- (try Ok (f c chunk) with e -> Error e)
    in
    if par <= 1 || nchunks <= 1 then
      for c = 0 to nchunks - 1 do
        do_chunk c
      done
    else begin
      Atomic.incr in_flight;
      let cursor = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let waiter = B.Waiter.create () in
      let drain () =
        let rec claim () =
          let c = Atomic.fetch_and_add cursor 1 in
          if c < nchunks then begin
            do_chunk c;
            if Atomic.fetch_and_add completed 1 = nchunks - 1 then
              B.Waiter.wake waiter;
            claim ()
          end
        in
        claim ()
      in
      B.kick ~workers:(par - 1) drain;
      drain ();
      B.Waiter.wait_until waiter (fun () -> Atomic.get completed = nchunks);
      Atomic.decr in_flight
    end;
    slots
  end

let join slots =
  Array.iter (function Error e -> raise e | Ok _ -> ()) slots;
  Array.map (function Ok v -> v | Error _ -> assert false) slots

let map_reduce ?parallelism ?chunk_size ~map ~reduce ~init items =
  Array.fold_left reduce init
    (join (map_chunks ?parallelism ?chunk_size map items))

let map_list ?parallelism ?chunk_size f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let chunks =
        join
          (map_chunks ?parallelism ?chunk_size
             (fun _ chunk -> Array.map f chunk)
             (Array.of_list l))
      in
      List.concat_map Array.to_list (Array.to_list chunks)

let parallel_for ?parallelism ?chunk_size lo hi body =
  if hi > lo then
    ignore
      (join
         (map_chunks ?parallelism ?chunk_size
            (fun _ chunk -> Array.iter body chunk)
            (Array.init (hi - lo) (fun i -> lo + i))))
