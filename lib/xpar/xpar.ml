(** Xpar: the parallel-execution layer (ROADMAP "multicore" item).

    One process-wide fixed domain pool (OCaml 5) or a sequential
    fallback (OCaml 4.x), selected at build time — see lib/xpar/dune and
    the two backends. Work is distributed work-stealing-free: the input
    array is split into contiguous chunks and a single atomic cursor
    hands chunks to whoever is free (the calling domain always
    participates, which also makes nested parallel regions deadlock-free
    — a coordinator stuck inside a chunk still drains its own queue).

    Determinism contract: chunk results are merged in chunk order, and
    within a chunk items run sequentially, so the concatenated output —
    and the first surfaced error — are identical to a sequential run of
    the same function over the same items. docs/PARALLELISM.md has the
    full argument. *)

module B = Xpar_backend
module Lockorder = Lockorder

(** A named mutual-exclusion lock, instrumented for lock-order tracking:
    every [with_lock] records the acquisition in {!Lockorder} so opposite
    acquisition orders (potential deadlocks) are caught even on runs that
    never actually hang. On the sequential backend the underlying lock is
    a no-op but the ordering is still recorded, so the 4.14 leg exercises
    the same detector. *)
module Lock = struct
  type t = { l : B.Lock.t; id : Lockorder.lock_id }

  let anon = Atomic.make 0

  let create ?name () =
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "anonymous#%d" (Atomic.fetch_and_add anon 1)
    in
    { l = B.Lock.create (); id = Lockorder.register name }

  let with_lock t f =
    Lockorder.acquiring t.id;
    Fun.protect
      ~finally:(fun () -> Lockorder.released t.id)
      (fun () -> B.Lock.with_lock t.l f)
end

let backend = B.name
let available = B.available

(* One coordinator + up to 15 pool workers. *)
let max_parallelism = 16

let default_parallelism () =
  if available then max 1 (min (B.default_parallelism ()) max_parallelism)
  else 1

let requested = Atomic.make 1

(* Parallel regions with the calling domain inside them, for [idle]. *)
let in_flight = Atomic.make 0

let set_parallelism n =
  let n = max 1 (min n max_parallelism) in
  Atomic.set requested n;
  if available then B.resize (n - 1)

let parallelism () = Atomic.get requested
let idle () = Atomic.get in_flight = 0 && B.workers_busy () = 0
let pool_size () = B.pool_size ()

let effective ?parallelism () =
  let p =
    match parallelism with Some p -> p | None -> Atomic.get requested
  in
  if available then max 1 (min p max_parallelism) else 1

(* Several chunks per worker, so one slow chunk doesn't serialize the
   tail; chunks stay big enough that per-chunk bookkeeping is noise. *)
let chunks_per_worker = 4

(* --- schedule-perturbing stress mode ------------------------------- *)

(* 0 = off; any other value seeds a per-region permutation of chunk
   dispatch order. Results still merge by chunk index, so the
   determinism contract holds — stress only changes *which interleavings
   happen*, widening what the differential suite (and the TSan CI leg)
   actually explores. *)
let stress_seed = Atomic.make 0
let stress_regions = Atomic.make 0

let set_stress = function
  | None -> Atomic.set stress_seed 0
  | Some s -> Atomic.set stress_seed (if s = 0 then 1 else s)

let stress () =
  match Atomic.get stress_seed with 0 -> None | s -> Some s

(* CI hook: XPAR_STRESS=<seed> turns stress on for whole test binaries
   (the tsan job sets it) without touching every call site. *)
let () =
  match Sys.getenv_opt "XPAR_STRESS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some s -> set_stress (Some s)
      | None -> ())
  | None -> ()

(* Fisher–Yates over [0..n-1], seeded deterministically per region so a
   failing schedule is reproducible from (seed, region index). *)
let stress_order ~nchunks =
  match Atomic.get stress_seed with
  | 0 -> None
  | seed ->
      let region = Atomic.fetch_and_add stress_regions 1 in
      let st = Random.State.make [| seed; region; nchunks |] in
      let perm = Array.init nchunks Fun.id in
      for i = nchunks - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      Some perm

let chunk_size_for ~n ~par = function
  | Some c -> max 1 c
  | None -> max 1 ((n + (par * chunks_per_worker) - 1) / (par * chunks_per_worker))

let map_chunks ?parallelism ?chunk_size f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let par = min (effective ?parallelism ()) n in
    let cs = chunk_size_for ~n ~par chunk_size in
    let nchunks = (n + cs - 1) / cs in
    let slots = Array.make nchunks (Error Not_found) in
    let do_chunk c =
      let lo = c * cs in
      let chunk = Array.sub items lo (min cs (n - lo)) in
      slots.(c) <- (try Ok (f c chunk) with e -> Error e)
    in
    if par <= 1 || nchunks <= 1 then
      for c = 0 to nchunks - 1 do
        do_chunk c
      done
    else begin
      Atomic.incr in_flight;
      let cursor = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let waiter = B.Waiter.create () in
      let order = stress_order ~nchunks in
      let drain () =
        let rec claim () =
          let c = Atomic.fetch_and_add cursor 1 in
          if c < nchunks then begin
            (match order with
            | None -> do_chunk c
            | Some perm -> do_chunk perm.(c));
            if Atomic.fetch_and_add completed 1 = nchunks - 1 then
              B.Waiter.wake waiter;
            claim ()
          end
        in
        claim ()
      in
      B.kick ~workers:(par - 1) drain;
      drain ();
      B.Waiter.wait_until waiter (fun () -> Atomic.get completed = nchunks);
      Atomic.decr in_flight
    end;
    slots
  end

let join slots =
  Array.iter (function Error e -> raise e | Ok _ -> ()) slots;
  Array.map (function Ok v -> v | Error _ -> assert false) slots

let map_reduce ?parallelism ?chunk_size ~map ~reduce ~init items =
  Array.fold_left reduce init
    (join (map_chunks ?parallelism ?chunk_size map items))

let map_list ?parallelism ?chunk_size f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let chunks =
        join
          (map_chunks ?parallelism ?chunk_size
             (fun _ chunk -> Array.map f chunk)
             (Array.of_list l))
      in
      List.concat_map Array.to_list (Array.to_list chunks)

let parallel_for ?parallelism ?chunk_size lo hi body =
  if hi > lo then
    ignore
      (join
         (map_chunks ?parallelism ?chunk_size
            (fun _ chunk -> Array.iter body chunk)
            (Array.init (hi - lo) (fun i -> lo + i))))
