(** SQL values and SQL comparison semantics.

    The paper's Section 3.3/3.6 point out divergences between SQL and
    XQuery comparison: SQL ignores trailing blanks in strings, XQuery does
    not; SQL is strongly typed, XQuery has untypedAtomic. Keeping the two
    value systems separate in the code makes those divergences real. *)

type sqltype =
  | TInt
  | TDouble
  | TDecimal of int * int  (** DECIMAL(p, s); stored as a float *)
  | TVarchar of int
  | TDate
  | TTimestamp
  | TXml

type t =
  | Null
  | Int of int64
  | Double of float
  | Varchar of string
  | Date of Xdm.Xdate.date
  | Timestamp of Xdm.Xdate.datetime
  | Xml of Xdm.Item.seq

let type_name = function
  | TInt -> "INTEGER"
  | TDouble -> "DOUBLE"
  | TDecimal (p, s) -> Printf.sprintf "DECIMAL(%d,%d)" p s
  | TVarchar n -> Printf.sprintf "VARCHAR(%d)" n
  | TDate -> "DATE"
  | TTimestamp -> "TIMESTAMP"
  | TXml -> "XML"

(** SQL VARCHAR comparison ignores trailing spaces. *)
let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

exception Incomparable of string

let describe = function
  | Null -> "NULL"
  | Int _ -> "INTEGER"
  | Double _ -> "DOUBLE"
  | Varchar _ -> "VARCHAR"
  | Date _ -> "DATE"
  | Timestamp _ -> "TIMESTAMP"
  | Xml _ -> "XML"

(** Three-valued SQL comparison: [None] = UNKNOWN (a NULL operand).
    Raises [Incomparable] on a type mismatch (SQL is strongly typed; there
    is no untyped-to-number magic here — that is the paper's point). *)
let compare_sql (a : t) (b : t) : int option =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (Int64.compare x y)
  | Int x, Double y -> Some (Float.compare (Int64.to_float x) y)
  | Double x, Int y -> Some (Float.compare x (Int64.to_float y))
  | Double x, Double y -> Some (Float.compare x y)
  | Varchar x, Varchar y -> Some (String.compare (rtrim x) (rtrim y))
  | Date x, Date y -> Some (Xdm.Xdate.compare_date x y)
  | Timestamp x, Timestamp y -> Some (Xdm.Xdate.compare_datetime x y)
  (* SQL coerces string literals against date/timestamp columns *)
  | Date x, Varchar s -> (
      match Xdm.Xdate.date_of_string_opt s with
      | Some y -> Some (Xdm.Xdate.compare_date x y)
      | None ->
          raise (Incomparable (Printf.sprintf "invalid DATE literal %S" s)))
  | Varchar s, Date y -> (
      match Xdm.Xdate.date_of_string_opt s with
      | Some x -> Some (Xdm.Xdate.compare_date x y)
      | None ->
          raise (Incomparable (Printf.sprintf "invalid DATE literal %S" s)))
  | Timestamp x, Varchar s -> (
      match Xdm.Xdate.datetime_of_string_opt s with
      | Some y -> Some (Xdm.Xdate.compare_datetime x y)
      | None ->
          raise
            (Incomparable (Printf.sprintf "invalid TIMESTAMP literal %S" s)))
  | Varchar s, Timestamp y -> (
      match Xdm.Xdate.datetime_of_string_opt s with
      | Some x -> Some (Xdm.Xdate.compare_datetime x y)
      | None ->
          raise
            (Incomparable (Printf.sprintf "invalid TIMESTAMP literal %S" s)))
  | _ ->
      raise
        (Incomparable
           (Printf.sprintf "cannot compare %s with %s" (describe a) (describe b)))

let to_display = function
  | Null -> "NULL"
  | Int i -> Int64.to_string i
  | Double f -> Xdm.Atomic.string_of_double f
  | Varchar s -> s
  | Date d -> Xdm.Xdate.date_to_string d
  | Timestamp t -> Xdm.Xdate.datetime_to_string t
  | Xml seq -> Xmlparse.Xml_writer.seq_to_string seq

(** Check (and lightly coerce) a value against a column type. Raises a
    typed {!Xdm.Xerror.Error} on incompatibility — [FORG0001] for
    malformed DATE/TIMESTAMP literals (a cast failure), [XQDB0003] for
    values that do not fit the column; VARCHAR(n) truncation is an error
    like in a strict SQL implementation. *)
let coerce (ty : sqltype) (v : t) : t =
  match (ty, v) with
  | _, Null -> Null
  | TInt, Int _ -> v
  | TInt, Double f -> Int (Int64.of_float f)
  | (TDouble | TDecimal _), Double _ -> v
  | (TDouble | TDecimal _), Int i -> Double (Int64.to_float i)
  | TVarchar n, Varchar s ->
      if String.length s > n then
        Xdm.Xerror.dml_error "value too long for VARCHAR(%d): %S" n s
      else v
  | TDate, Date _ -> v
  | TDate, Varchar s -> (
      match Xdm.Xdate.date_of_string_opt s with
      | Some d -> Date d
      | None -> Xdm.Xerror.cast_error "invalid DATE literal %S" s)
  | TTimestamp, Timestamp _ -> v
  | TTimestamp, Varchar s -> (
      match Xdm.Xdate.datetime_of_string_opt s with
      | Some d -> Timestamp d
      | None -> Xdm.Xerror.cast_error "invalid TIMESTAMP literal %S" s)
  | TXml, Xml _ -> v
  | TXml, Varchar s -> Xml [ Xdm.Item.N (Xmlparse.Xml_parser.parse_document s) ]
  | ty, v ->
      Xdm.Xerror.dml_error "cannot store %s in a %s column" (describe v)
        (type_name ty)

(** Convert a SQL value into the XQuery data model (for PASSING clauses).
    The XQuery variable inherits a precise XML schema subtype — the paper
    notes the [$pid] variable in Query 13 inherits [xs:string] from the
    SQL side. *)
let to_xdm (v : t) : Xdm.Item.seq =
  match v with
  | Null -> []
  | Int i -> [ Xdm.Item.A (Xdm.Atomic.Integer i) ]
  | Double f -> [ Xdm.Item.A (Xdm.Atomic.Double f) ]
  | Varchar s -> [ Xdm.Item.A (Xdm.Atomic.Str s) ]
  | Date d -> [ Xdm.Item.A (Xdm.Atomic.Date d) ]
  | Timestamp t -> [ Xdm.Item.A (Xdm.Atomic.DateTime t) ]
  | Xml seq -> seq
