(** The database catalog: named tables plus the collection resolver that
    backs [db2-fn:xmlcolumn('TABLE.COLUMN')]. *)

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable on_new_table : (Table.t -> unit) option;
      (** durable mode: wires a WAL journal into every table as it is
          created (including tables re-created during recovery replay) *)
}

let create () = { tables = Hashtbl.create 8; on_new_table = None }

(** Install [f] on future tables and retrofit it to existing ones. *)
let set_table_hook db f =
  db.on_new_table <- Some f;
  Hashtbl.iter (fun _ t -> f t) db.tables

let norm = String.lowercase_ascii

let create_table db name cols =
  let key = norm name in
  if Hashtbl.mem db.tables key then
    Xdm.Xerror.catalog_error "table %S already exists" name;
  let t = Table.create name cols in
  Hashtbl.add db.tables key t;
  (match db.on_new_table with None -> () | Some f -> f t);
  t

let drop_table db name = Hashtbl.remove db.tables (norm name)

let find_table db name = Hashtbl.find_opt db.tables (norm name)

let table_exn db name =
  match find_table db name with
  | Some t -> t
  | None -> Xdm.Xerror.catalog_error "unknown table %S" name

let tables db =
  Hashtbl.fold (fun _ t acc -> t :: acc) db.tables []
  |> List.sort (fun (a : Table.t) b -> compare a.Table.name b.Table.name)

(** A read-only catalog snapshot: every table is snapshotted (see
    {!Table.snapshot}); no durable journal hook is wired in, so nothing
    a reader evaluates can write. Caller must hold the writer slot. *)
let snapshot db =
  let s = { tables = Hashtbl.create (Hashtbl.length db.tables); on_new_table = None } in
  Hashtbl.iter
    (fun key t -> Hashtbl.replace s.tables key (Table.snapshot t))
    db.tables;
  s

(** Parse a ['TABLE.COLUMN'] reference (as used by db2-fn:xmlcolumn). *)
let split_colref (s : string) : (string * string) option =
  match String.index_opt s '.' with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(** Collection resolver for the XQuery engine: returns the document nodes
    of an XML column as a sequence. An optional [restrict_to] set of row
    ids implements Definition 1's [I(P, D)] pre-filtering. When profiled,
    every document the resolver hands to the evaluator is charged as one
    [docs_scanned] — so an index-restricted collection charges only the
    surviving documents, and the profiled probes-vs-scans contrast is the
    paper's eligible/ineligible contrast. *)
let resolver ?(prof = Xprof.disabled)
    ?(restrict_to : (string * Xdm.Int_set.t) list = []) db :
    string -> Xdm.Item.seq =
 fun name ->
  match split_colref name with
  | None ->
      Xdm.Xerror.raise_err "FODC0002"
        "db2-fn:xmlcolumn expects 'TABLE.COLUMN', got %S" name
  | Some (tname, cname) ->
      let t =
        match find_table db tname with
        | Some t -> t
        | None ->
            Xdm.Xerror.raise_err "FODC0002" "unknown XML column %S" name
      in
      let docs = Table.xml_docs t cname in
      let docs =
        match List.assoc_opt (norm name) (List.map (fun (k, v) -> (norm k, v)) restrict_to) with
        | None -> docs
        | Some keep ->
            List.filter (fun (rid, _) -> Xdm.Int_set.mem rid keep) docs
      in
      Xprof.docs prof (List.length docs);
      List.map (fun (_, d) -> Xdm.Item.N d) docs
