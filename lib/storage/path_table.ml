(** The path table: distinct rooted paths of an XML column, interned to
    small integer ids.

    This mirrors the DB2 design the paper builds on: index entries carry a
    path id rather than the path itself, and an index probe first computes
    the set of path ids that satisfy the query's path expression, then
    scans the B+Tree filtering on (value, path id). *)

open Xdm

type t = {
  by_key : (string, int) Hashtbl.t;
  steps_of : (int, Node.path_step list) Hashtbl.t;
  mutable next : int;
}

let create () = { by_key = Hashtbl.create 64; steps_of = Hashtbl.create 64; next = 0 }

(** Intern the rooted path of [node]; returns its path id. *)
let intern t (node : Node.t) : int =
  let key = Node.path_key node in
  match Hashtbl.find_opt t.by_key key with
  | Some id -> id
  | None ->
      let id = t.next in
      t.next <- id + 1;
      Hashtbl.add t.by_key key id;
      Hashtbl.add t.steps_of id (Node.rooted_path node);
      id

(** An independent copy sharing no mutable state: snapshot readers
    resolve path ids against the copy while the writer keeps interning
    into the original. *)
let copy t =
  {
    by_key = Hashtbl.copy t.by_key;
    steps_of = Hashtbl.copy t.steps_of;
    next = t.next;
  }

let find t (node : Node.t) : int option =
  Hashtbl.find_opt t.by_key (Node.path_key node)

(** Re-install an interned path from a snapshot under its original [id].
    The intern key is re-derived from the steps (it is the printable
    rooted path). Ids must be restored explicitly rather than re-interned
    from surviving rows: interning never forgets, so after deletes the
    live documents alone no longer determine the id assignment. *)
let define t ~id (steps : Node.path_step list) =
  let key = "/" ^ String.concat "/" (List.map Node.step_to_string steps) in
  Hashtbl.replace t.by_key key id;
  Hashtbl.replace t.steps_of id steps

let next t = t.next
let set_next t n = t.next <- n

let steps t id = Hashtbl.find t.steps_of id

let cardinality t = t.next

(** All path ids whose step list satisfies [pred]. *)
let matching t (pred : Node.path_step list -> bool) : int list =
  Hashtbl.fold
    (fun id steps acc -> if pred steps then id :: acc else acc)
    t.steps_of []
  |> List.sort compare

let fold t f init =
  Hashtbl.fold (fun id steps acc -> f acc id steps) t.steps_of init
