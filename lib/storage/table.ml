(** Tables: relational rows with native XML-type columns.

    Every row gets a stable integer [row id]; XML index entries reference
    (row id, node id) pairs, so an index probe yields a set of row ids —
    the "set of documents pre-filtered by the index" of the paper's
    Definition 1. Deleting marks the row slot absent and fires hooks so
    indexes stay transactionally consistent. *)

type col_def = { col_name : string; col_type : Sql_value.sqltype }

type row = { row_id : int; values : Sql_value.t array }

type hook = {
  on_insert : row -> unit;
  on_delete : row -> unit;
}

(** Row-level journal records, emitted after a mutation (and its index
    hooks) completed successfully — the WAL's redo records. Rollback
    closures bypass the mutators, so an undone statement journals
    nothing. *)
type jop =
  | Jinsert of row
  | Jdelete of row
  | Jupdate of row * row  (** old image, new image *)

type t = {
  name : string;
  cols : col_def list;
  mutable rows : (int, row) Hashtbl.t;  (** row_id → row *)
  mutable next_row_id : int;
  mutable hooks : hook list;
  mutable journal : (jop -> unit) option;
      (** WAL redo-record sink (durable mode only) *)
  path_tables : (string, Path_table.t) Hashtbl.t;
      (** per XML column: its path table *)
  mutable version : int;
      (** bumped by every row mutation (including rollback closures);
          lets {!snapshot} reuse a cached copy of an unchanged table *)
  mutable frozen : (int * t) option;
      (** memoized [(version, snapshot)] of the last {!snapshot} call *)
}

(* The shrink epoch: a process-wide counter bumped *before* any
   operation that removes a row (delete, the delete half of update, or
   a rollback closure undoing an insert/update). MVCC snapshot readers
   probing the shared live index trees use it seqlock-style: capture
   the epoch when the snapshot is taken, and accept a probe result only
   if the epoch is unchanged when the probe returns. Probes are
   Definition-1 pre-filters (supersets are always sound, missing row
   ids are not), and entries only *leave* an index when a row leaves a
   table — so an unchanged epoch proves no entry the snapshot needs
   could have vanished mid-probe. Insert-only traffic (bulk loads)
   never bumps it. *)
let shrink_epoch_ctr = Atomic.make 0
let shrink_epoch () = Atomic.get shrink_epoch_ctr
let bump_shrink_epoch () = Atomic.incr shrink_epoch_ctr

let bump t = t.version <- t.version + 1

let create name cols =
  let t =
    {
      name;
      cols;
      rows = Hashtbl.create 256;
      next_row_id = 0;
      hooks = [];
      journal = None;
      path_tables = Hashtbl.create 4;
      version = 0;
      frozen = None;
    }
  in
  List.iter
    (fun c ->
      if c.col_type = Sql_value.TXml then
        Hashtbl.add t.path_tables c.col_name (Path_table.create ()))
    cols;
  t

let col_index t name =
  let rec go i = function
    | [] -> None
    | c :: _ when String.lowercase_ascii c.col_name = String.lowercase_ascii name ->
        Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.cols

let col_index_exn t name =
  match col_index t name with
  | Some i -> i
  | None -> Xdm.Xerror.catalog_error "no column %S in table %S" name t.name

let col_type t name = (List.nth t.cols (col_index_exn t name)).col_type

let path_table t col =
  match Hashtbl.find_opt t.path_tables (String.lowercase_ascii col) with
  | Some pt -> Some pt
  | None ->
      (* column names are stored as written in CREATE TABLE; try exact *)
      Hashtbl.find_opt t.path_tables col

let path_table_exn t col =
  match path_table t col with
  | Some pt -> pt
  | None ->
      (* fall back to locating by column definition *)
      let def = List.nth t.cols (col_index_exn t col) in
      Hashtbl.find t.path_tables def.col_name

let add_hook t h = t.hooks <- h :: t.hooks

let set_journal t j = t.journal <- j

let journalize t op =
  match t.journal with None -> () | Some j -> j op

(** Register all rooted paths of an inserted document's nodes in the
    owning column's path table. *)
let intern_row_paths t (r : row) =
  List.iteri
    (fun i c ->
      if c.col_type = Sql_value.TXml then
        let pt = Hashtbl.find t.path_tables c.col_name in
        match r.values.(i) with
        | Sql_value.Xml seq ->
            List.iter
              (function
                | Xdm.Item.N doc ->
                    List.iter
                      (fun (n : Xdm.Node.t) ->
                        (* document nodes have no rooted path *)
                        if n.Xdm.Node.kind <> Xdm.Node.Document then begin
                          ignore (Path_table.intern pt n);
                          List.iter
                            (fun a -> ignore (Path_table.intern pt a))
                            n.Xdm.Node.attrs
                        end)
                      (Xdm.Node.descendants_or_self doc)
                | Xdm.Item.A _ -> ())
              seq
        | _ -> ())
    t.cols

(* Inverse hook replay for rollback: a hook may have fired partially (or
   not at all) when the statement died, so each inverse call is tolerant. *)
let quiet f x = try f x with _ -> ()

let record_undo_insert t log row =
  match log with
  | None -> ()
  | Some log ->
      Undo.record log (fun () ->
          bump_shrink_epoch ();
          bump t;
          List.iter (fun h -> quiet h.on_delete row) t.hooks;
          Hashtbl.remove t.rows row.row_id;
          (* reclaim the id if nothing was allocated after it, so a rolled-
             back bulk insert leaves next_row_id unchanged too *)
          if t.next_row_id = row.row_id + 1 then t.next_row_id <- row.row_id)

let record_undo_delete t log row =
  match log with
  | None -> ()
  | Some log ->
      Undo.record log (fun () ->
          bump t;
          Hashtbl.replace t.rows row.row_id row;
          List.iter (fun h -> quiet h.on_insert row) t.hooks)

let record_undo_update t log old_row new_row =
  match log with
  | None -> ()
  | Some log ->
      Undo.record log (fun () ->
          bump_shrink_epoch ();
          bump t;
          List.iter (fun h -> quiet h.on_delete new_row) t.hooks;
          Hashtbl.replace t.rows old_row.row_id old_row;
          List.iter (fun h -> quiet h.on_insert old_row) t.hooks)

(** Insert a row (values in column order); returns the new row id. When a
    [log] is supplied, a compensating action that removes the row and
    unwinds the index hooks is recorded before any side effect fires. *)
let insert ?log t (values : Sql_value.t list) : int =
  Faultinject.hit "storage.insert";
  if List.length values <> List.length t.cols then
    Xdm.Xerror.dml_error "table %s: expected %d values, got %d" t.name
      (List.length t.cols) (List.length values);
  let values =
    List.map2 (fun c v -> Sql_value.coerce c.col_type v) t.cols values
  in
  let id = t.next_row_id in
  t.next_row_id <- id + 1;
  let row = { row_id = id; values = Array.of_list values } in
  bump t;
  Hashtbl.replace t.rows id row;
  record_undo_insert t log row;
  intern_row_paths t row;
  List.iter (fun h -> h.on_insert row) t.hooks;
  journalize t (Jinsert row);
  id

let delete ?log t row_id =
  match Hashtbl.find_opt t.rows row_id with
  | None -> false
  | Some row ->
      bump_shrink_epoch ();
      bump t;
      Hashtbl.remove t.rows row_id;
      record_undo_delete t log row;
      List.iter (fun h -> h.on_delete row) t.hooks;
      journalize t (Jdelete row);
      true

(** Replace the values of row [row_id] (values in column order); returns
    [false] if the row does not exist. Fires [on_delete] for the old image
    and [on_insert] for the new one so indexes track the change. *)
let update ?log t row_id (values : Sql_value.t list) : bool =
  Faultinject.hit "storage.update";
  match Hashtbl.find_opt t.rows row_id with
  | None -> false
  | Some old_row ->
      if List.length values <> List.length t.cols then
        Xdm.Xerror.dml_error "table %s: expected %d values, got %d" t.name
          (List.length t.cols) (List.length values);
      let values =
        List.map2 (fun c v -> Sql_value.coerce c.col_type v) t.cols values
      in
      let new_row = { row_id; values = Array.of_list values } in
      record_undo_update t log old_row new_row;
      bump_shrink_epoch ();
      bump t;
      List.iter (fun h -> h.on_delete old_row) t.hooks;
      Hashtbl.replace t.rows row_id new_row;
      intern_row_paths t new_row;
      List.iter (fun h -> h.on_insert new_row) t.hooks;
      journalize t (Jupdate (old_row, new_row));
      true

(** Redo-side application of a journal record (WAL recovery): preserves
    the logged row ids, fires index hooks, and re-interns paths, but does
    not coerce (values were coerced before they were logged), journal
    (recovery must not re-log) or undo-log (committed records are never
    rolled back). *)
let apply_jop t (op : jop) =
  let put (row : row) =
    bump t;
    Hashtbl.replace t.rows row.row_id row;
    if row.row_id >= t.next_row_id then t.next_row_id <- row.row_id + 1;
    intern_row_paths t row;
    List.iter (fun h -> h.on_insert row) t.hooks
  in
  let drop (row : row) =
    match Hashtbl.find_opt t.rows row.row_id with
    | None -> ()
    | Some live ->
        bump_shrink_epoch ();
        bump t;
        Hashtbl.remove t.rows row.row_id;
        List.iter (fun h -> h.on_delete live) t.hooks
  in
  match op with
  | Jinsert row -> put row
  | Jdelete row -> drop row
  | Jupdate (old_row, new_row) ->
      drop old_row;
      put new_row

let row_count t = Hashtbl.length t.rows

let find_row t row_id = Hashtbl.find_opt t.rows row_id

(** Rows in stable (insertion) order. *)
let rows t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.rows []
  |> List.sort (fun a b -> compare a.row_id b.row_id)

let value_of t (r : row) col = r.values.(col_index_exn t col)

(** A read-only copy-on-write snapshot of the table: the row map and
    path tables are copied (rows themselves are immutable records and
    are shared), hooks and the journal sink are dropped so nothing a
    reader does can reach the live indexes or the WAL. Consecutive
    snapshots of an unchanged table return the same copy — during a
    read-mostly workload each commit re-copies only the tables the
    writer actually touched, which is the copy-on-write version chain
    the MVCC layer builds on. Must be called with writers quiesced (the
    engine holds its writer slot while publishing). *)
let snapshot t =
  match t.frozen with
  | Some (v, s) when v = t.version -> s
  | _ ->
      let pts = Hashtbl.create (Hashtbl.length t.path_tables) in
      Hashtbl.iter
        (fun col pt -> Hashtbl.replace pts col (Path_table.copy pt))
        t.path_tables;
      let s =
        {
          name = t.name;
          cols = t.cols;
          rows = Hashtbl.copy t.rows;
          next_row_id = t.next_row_id;
          hooks = [];
          journal = None;
          path_tables = pts;
          version = 0;
          frozen = None;
        }
      in
      t.frozen <- Some (t.version, s);
      s

(** All (row id, document node) pairs of an XML column, insertion order. *)
let xml_docs t col : (int * Xdm.Node.t) list =
  let i = col_index_exn t col in
  rows t
  |> List.concat_map (fun r ->
         match r.values.(i) with
         | Sql_value.Xml seq ->
             List.filter_map
               (function Xdm.Item.N n -> Some (r.row_id, n) | _ -> None)
               seq
         | _ -> [])
