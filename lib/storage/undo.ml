(** Per-statement undo log.

    Statement-level atomicity: every mutation of a table (and, through the
    [on_insert]/[on_delete] hooks, of the indexes built over it) records a
    compensating closure here *before* the mutation's side effects fire.
    If the statement fails mid-way — cast error, XML parse error, injected
    fault — the executor calls {!rollback}, which replays the closures in
    LIFO order and leaves the catalog exactly as it was before the
    statement started.

    Undo actions must be tolerant: rollback can run after a *partial*
    mutation (e.g. some hooks fired and some did not), so each action
    swallows its own exceptions rather than aborting the rest of the
    unwinding. The B+Tree's tolerant delete (absent key ⇒ [false]) and
    replace-on-insert semantics make replaying an inverse hook against a
    half-applied mutation idempotent. *)

type t = { mutable actions : (unit -> unit) list; prof : Xprof.t }

let create ?(prof = Xprof.disabled) () = { actions = []; prof }

(** Number of undo actions recorded so far. *)
let length log = List.length log.actions

(** Record a compensating action. Call *before* performing the mutation it
    compensates, so a crash inside the mutation still unwinds. *)
let record log f =
  Xprof.undo log.prof;
  log.actions <- f :: log.actions

(** Run all recorded actions, most recent first, then clear the log.
    Individual action failures are swallowed: unwinding must not abort. *)
let rollback log =
  let acts = log.actions in
  log.actions <- [];
  List.iter (fun f -> try f () with _ -> ()) acts

(** Forget all recorded actions (statement committed). *)
let commit log = log.actions <- []

(** Move every action of [src] onto the front of [into], emptying [src].
    The transaction layer uses this to absorb each statement's undo log
    into a transaction-level log: on rollback the most recent
    statement's compensations replay first, preserving global LIFO
    order across the whole transaction. *)
let absorb ~into src =
  into.actions <- src.actions @ into.actions;
  src.actions <- []
