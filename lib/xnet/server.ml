(** Xnet server: a thread-per-connection accept loop serving the wire
    protocol of {!Proto} over one shared sealed {!Engine.t}.

    Concurrency model. [start] switches the engine into concurrent mode
    ({!Engine.enable_concurrent}), so the server holds no engine-wide
    lock of its own: sessions call the engine directly and the engine's
    MVCC discipline does the serialization — reads (and read cursors)
    run on pinned immutable snapshots, writes fold into the engine's
    single-writer slot. A reader session therefore never blocks behind
    another session's bulk load; the PR-8 "xnet.engine" lock that
    serialized every statement is gone. The engine's plan cache is
    still shared across sessions (session B's compile of a text session
    A already ran is a cache hit — the server-smoke CI job asserts the
    hit counter rises across connections). The one server lock left,
    "xnet.sessions", guards the session table and is registered with
    {!Xpar.Lockorder}.

    Sessions run on systhreads, not domains: connection handling is
    I/O-bound and must work on the 4.14 leg, while the parallel work
    inside a statement (scans, index intersection, bulk loads) still
    fans out to the Xpar domain pool. Because systhreads share their
    domain's DLS, [start] installs a [Thread.id]-based held-stack
    provider into {!Xpar.Lockorder} — without it the tracker would
    report phantom lock-order edges between per-session acquisitions
    (see docs/CONCURRENCY.md).

    Per-session state: a prepared-statement namespace (names resolve
    only within the session that prepared them), open cursors, the
    governor budget ([Set_limits], passed as [?limits] to every engine
    call of this session), the negotiated protocol version, and — new
    in wire v2 — at most one open {!Engine.Txn.txn}: [Begin] binds a
    transaction to the session, every later statement runs inside it
    until [Commit]/[Rollback], and a disconnect rolls it back.
    Admission control is the [max_sessions] cap: an accept past the cap
    is answered with an [XQDB0001] error frame — the same code the
    governor uses for in-statement budgets — and closed. *)

(* A real mutex even where Xpar.Lock is the sequential no-op backend
   (OCaml 4.x): systhreads are preemptive there too. Instrumented by
   hand with the same Lockorder protocol Xpar.Lock.with_lock follows. *)
module Nlock = struct
  type t = { mu : Mutex.t; id : Xpar.Lockorder.lock_id }

  let create ~name () =
    { mu = Mutex.create (); id = Xpar.Lockorder.register name }

  let with_lock t f =
    Xpar.Lockorder.acquiring t.id;
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock t.mu;
        Xpar.Lockorder.released t.id)
      f
end

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests) *)
  metrics_port : int option;  (** [Some 0] again picks ephemeral *)
  max_sessions : int;
  drain_timeout : float;
      (** seconds [stop] waits for live sessions to finish before
          forcing their sockets shut *)
  log : string -> unit;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 5499;
    metrics_port = None;
    max_sessions = 64;
    drain_timeout = 5.0;
    log = ignore;
  }

(* Every cursor streams lazily off the engine: in concurrent mode a
   read cursor owns a private context over a pinned snapshot, so its
   parameter bindings and its view of the data are immune to whatever
   other sessions run between two Fetch frames. The PR-8 server had to
   materialize parameterized cursors at open; that path is gone.
   [in_txn] marks cursors opened inside the session's explicit
   transaction: they are closed when it ends, since a write-transaction
   cursor must not be pulled after the writer slot is released. *)
type cursor_state = { cur : Engine.Cursor.t; in_txn : bool }

type session = {
  sid : int;
  fd : Unix.file_descr;
  mutable proto_version : int;  (** negotiated in Hello; 1 or 2 *)
  mutable limits : Xdm.Limits.t;
  mutable txn : Engine.Txn.txn option;  (** wire v2 explicit transaction *)
  stmts : (string, Engine.stmt) Hashtbl.t;  (** per-session namespace *)
  cursors : (int, cursor_state) Hashtbl.t;
  mutable next_cursor : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  metrics_fd : Unix.file_descr option;
  metrics_port : int option;
  slock : Nlock.t;
  sessions : (int, session) Hashtbl.t;  (* guarded by slock *)
  mutable next_sid : int;  (* guarded by slock *)
  mutable session_threads : Thread.t list;  (* guarded by slock *)
  stopping : bool Atomic.t;
  stop_r : Unix.file_descr;  (* self-pipe waking the accept selects *)
  stop_w : Unix.file_descr;
  started_at : float;
  mutable accept_thread : Thread.t option;
  mutable metrics_thread : Thread.t option;
}

let port t = t.port
let metrics_port t = t.metrics_port

let active_sessions t =
  Nlock.with_lock t.slock (fun () -> Hashtbl.length t.sessions)

(* ------------------------------------------------------------------ *)
(* Outcome / binding conversion                                        *)
(* ------------------------------------------------------------------ *)

let params_of (b : Proto.bindings) =
  List.map Engine.sql_value_of_string b.Proto.params

let vars_of (b : Proto.bindings) =
  List.map
    (fun (k, v) -> (k, [ Xdm.Item.A (Engine.atomic_of_string v) ]))
    b.Proto.vars

let render_payload : Engine.payload -> Proto.result_payload = function
  | Engine.Rows { cols; rows } ->
      Proto.Wrows
        { cols; rows = List.map (List.map Storage.Sql_value.to_display) rows }
  | Engine.Items items ->
      Proto.Witems (List.map (fun it -> Engine.to_xml [ it ]) items)

let okay_of_outcome (o : Engine.outcome) : Proto.server_msg =
  Proto.Okay
    {
      payload = render_payload o.Engine.payload;
      notes = o.Engine.notes;
      indexes_used = o.Engine.indexes_used;
      diagnostics = o.Engine.diagnostics;
    }

let elem_of_cursor_elem : Engine.Cursor.elem -> Proto.elem = function
  | Engine.Cursor.Row cells ->
      Proto.Brow (List.map Storage.Sql_value.to_display cells)
  | Engine.Cursor.Item it -> Proto.Bitem (Engine.to_xml [ it ])

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* Xprof.Registry serializes its own access (PR 9), and
   [Engine.plan_cache_stats] reads under the engine's compile lock, so
   stats need no server-wide lock. *)
let stats_text t =
  let live = active_sessions t in
  let reg = Engine.registry t.engine in
  Engine.refresh_lock_metrics t.engine;
  let uptime = Unix.gettimeofday () -. t.started_at in
  let requests = !(Xprof.Registry.counter reg "xnet_requests_total") in
  Xprof.Registry.set_gauge reg "xnet_uptime_seconds" uptime;
  Xprof.Registry.set_gauge reg "xnet_sessions_active" (float_of_int live);
  Xprof.Registry.set_gauge reg "xnet_qps"
    (if uptime > 0. then float_of_int requests /. uptime else 0.);
  let pc = Engine.plan_cache_stats t.engine in
  Xprof.Registry.to_string reg
  ^ Printf.sprintf
      "plan_cache size=%d capacity=%d hits=%d misses=%d invalidations=%d\n"
      pc.Engine.Plan_cache.size pc.Engine.Plan_cache.capacity
      pc.Engine.Plan_cache.hits pc.Engine.Plan_cache.misses
      pc.Engine.Plan_cache.invalidations

(* ------------------------------------------------------------------ *)
(* Session request handling                                            *)
(* ------------------------------------------------------------------ *)

(* Count and time one engine request. No lock: the concurrent-mode
   engine synchronizes itself, and the session's governor budget rides
   along as the [?limits] argument of each call instead of being
   installed into shared engine state. *)
let instrument t f =
  let reg = Engine.registry t.engine in
  Xprof.Registry.incr reg "xnet_requests_total";
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Xprof.Registry.observe reg "xnet_request_ms"
        ((Unix.gettimeofday () -. t0) *. 1000.))
    f

let close_cursor_state (st : cursor_state) = Engine.Cursor.close st.cur

(* End the session's explicit transaction. The engine finishes the
   handle even when commit itself fails, so the session slot is cleared
   unconditionally; cursors opened inside the transaction die with it. *)
let end_txn (sess : session) ~commit tx =
  let in_txn =
    Hashtbl.fold
      (fun cid st acc -> if st.in_txn then (cid, st) :: acc else acc)
      sess.cursors []
  in
  List.iter
    (fun (cid, st) ->
      close_cursor_state st;
      Hashtbl.remove sess.cursors cid)
    in_txn;
  sess.txn <- None;
  if commit then Engine.Txn.commit tx else Engine.Txn.rollback tx

(* Answer one decoded request. Returns [false] when the session should
   end (Quit). Xdm errors are caught by the caller and become Err
   frames; the session survives them. *)
let handle_request t (sess : session) oc (m : Proto.client_msg) : bool =
  let reply msg = Proto.write_frame oc (Proto.encode_server msg) in
  (match m with
  | Proto.Hello _ ->
      reply (Proto.Err { code = "XQDB0006"; msg = "duplicate Hello" })
  | Proto.Exec { src; b } ->
      let out =
        instrument t (fun () ->
            Engine.exec ?txn:sess.txn ~limits:sess.limits
              ~params:(params_of b) ~vars:(vars_of b) t.engine src)
      in
      reply (okay_of_outcome out)
  | Proto.Prepare { name; src } ->
      let st = instrument t (fun () -> Engine.prepare t.engine src) in
      Hashtbl.replace sess.stmts name st;
      reply (Proto.Prepared { name; params = Engine.stmt_params st })
  | Proto.Execute { name; b } -> (
      match Hashtbl.find_opt sess.stmts name with
      | None ->
          reply
            (Proto.Err
               {
                 code = "XPST0008";
                 msg = Printf.sprintf "unknown prepared statement: %s" name;
               })
      | Some st ->
          let out =
            instrument t (fun () ->
                Engine.execute ?txn:sess.txn ~limits:sess.limits
                  ~params:(params_of b) ~vars:(vars_of b) st)
          in
          reply (okay_of_outcome out))
  | Proto.Open_cursor { src; b } ->
      (* always live: the cursor's private snapshot context keeps its
         bindings pinned without touching shared engine state, so
         nothing is materialized before the first Fetch *)
      let c =
        instrument t (fun () ->
            Engine.open_cursor ?txn:sess.txn ~limits:sess.limits
              ~params:(params_of b) ~vars:(vars_of b) t.engine src)
      in
      let cid = sess.next_cursor in
      sess.next_cursor <- cid + 1;
      Hashtbl.replace sess.cursors cid { cur = c; in_txn = sess.txn <> None };
      reply
        (Proto.Cursor_opened { cursor = cid; cols = Engine.Cursor.columns c })
  | Proto.Fetch { cursor; max } -> (
      match Hashtbl.find_opt sess.cursors cursor with
      | None ->
          reply
            (Proto.Err
               {
                 code = "XQDB0006";
                 msg = Printf.sprintf "unknown cursor %d" cursor;
               })
      | Some { cur = c; _ } ->
          let max = if max <= 0 then 1 else max in
          let rec pull k acc =
            if k = 0 then (List.rev acc, false)
            else
              match Engine.Cursor.next c with
              | None -> (List.rev acc, true)
              | Some el -> pull (k - 1) (elem_of_cursor_elem el :: acc)
          in
          let elems, finished = pull max [] in
          if finished then begin
            Engine.Cursor.close c;
            Hashtbl.remove sess.cursors cursor
          end;
          reply (Proto.Batch { elems; finished }))
  | Proto.Close_cursor { cursor } ->
      (match Hashtbl.find_opt sess.cursors cursor with
      | None -> ()
      | Some state ->
          close_cursor_state state;
          Hashtbl.remove sess.cursors cursor);
      reply (Proto.Cursor_closed { cursor })
  | Proto.Set_limits l ->
      sess.limits <- l;
      reply
        (Proto.Okay
           {
             payload = Proto.Witems [];
             notes = [ "limits: " ^ Xdm.Limits.to_string l ];
             indexes_used = [];
             diagnostics = [];
           })
  | Proto.Checkpoint ->
      instrument t (fun () -> Engine.checkpoint t.engine);
      reply
        (Proto.Okay
           {
             payload = Proto.Witems [];
             notes = [ "checkpoint complete" ];
             indexes_used = [];
             diagnostics = [];
           })
  | Proto.Stats -> reply (Proto.Stats_text (stats_text t))
  | Proto.Quit -> reply Proto.Bye
  | Proto.Begin { mode } ->
      if sess.proto_version < 2 then
        reply
          (Proto.Err
             {
               code = "XQDB0006";
               msg = "Begin requires protocol v2 (session negotiated v1)";
             })
      else if sess.txn <> None then
        reply
          (Proto.Err
             {
               code = "XQDB0007";
               msg = "a transaction is already open in this session";
             })
      else begin
        let mode, label =
          match mode with
          | Proto.Read_only -> (Engine.Txn.Read_only, "read-only")
          | Proto.Read_write -> (Engine.Txn.Read_write, "read-write")
        in
        let tx = instrument t (fun () -> Engine.Txn.begin_ ~mode t.engine) in
        sess.txn <- Some tx;
        reply
          (Proto.Okay
             {
               payload = Proto.Witems [];
               notes = [ "begin (" ^ label ^ ")" ];
               indexes_used = [];
               diagnostics = [];
             })
      end
  | Proto.Commit | Proto.Rollback -> (
      let commit = m = Proto.Commit in
      let word = if commit then "commit" else "rollback" in
      match sess.txn with
      | None ->
          reply
            (Proto.Err
               {
                 code = "XQDB0007";
                 msg = "no transaction is open in this session";
               })
      | Some tx ->
          instrument t (fun () -> end_txn sess ~commit tx);
          reply
            (Proto.Okay
               {
                 payload = Proto.Witems [];
                 notes = [ word ];
                 indexes_used = [];
                 diagnostics = [];
               })));
  m <> Proto.Quit

(* ------------------------------------------------------------------ *)
(* Session lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Tear down a session: close its cursors (releasing any governor
   budget a live cursor was still charging), roll back an open
   transaction — a disconnect mid-transaction must release the writer
   slot and undo its statements — drop the session from the table,
   close the socket. Runs exactly once per session (the session
   thread's finally). *)
let cleanup_session t (sess : session) =
  Hashtbl.iter (fun _ st -> close_cursor_state st) sess.cursors;
  Hashtbl.reset sess.cursors;
  (match sess.txn with
  | Some tx -> (
      sess.txn <- None;
      try Engine.Txn.rollback tx
      with e ->
        t.cfg.log
          (Printf.sprintf "session %d: rollback on disconnect failed: %s"
             sess.sid (Printexc.to_string e)))
  | None -> ());
  Hashtbl.reset sess.stmts;
  Nlock.with_lock t.slock (fun () -> Hashtbl.remove t.sessions sess.sid);
  close_fd sess.fd

let server_name = "xqdbd"

(* The per-connection thread body: Hello handshake, then a decode →
   handle → reply loop. Engine errors turn into Err frames on a live
   session; protocol errors and disconnects end it. *)
let session_loop t (sess : session) =
  let ic = Unix.in_channel_of_descr sess.fd in
  let oc = Unix.out_channel_of_descr sess.fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let reply msg = Proto.write_frame oc (Proto.encode_server msg) in
  (try
     (match Proto.decode_client (Proto.read_frame ic) with
     | Proto.Hello { version; user; client = _ } ->
         (* negotiate down to the older peer's version; a v1 client gets
            a v1 session (no transaction frames), a v3+ client gets v2 *)
         sess.proto_version <- min version Proto.version;
         t.cfg.log
           (Printf.sprintf "session %d: hello from %S (protocol v%d)"
              sess.sid user sess.proto_version);
         (* auth stub: any user is accepted *)
         reply
           (Proto.Ready
              {
                session = sess.sid;
                server = server_name;
                version = sess.proto_version;
              })
     | _ -> raise (Proto.Bad_frame "expected Hello"));
     let continue = ref true in
     while !continue && not (Atomic.get t.stopping) do
       match Proto.decode_client (Proto.read_frame ic) with
       | m -> (
           try continue := handle_request t sess oc m
           with Xdm.Xerror.Error { code; msg } ->
             reply (Proto.Err { code; msg }))
     done;
     if Atomic.get t.stopping && !continue then reply Proto.Bye
   with
  | End_of_file | Sys_error _ -> () (* disconnect, possibly mid-frame *)
  | Proto.Bad_frame msg ->
      (try reply (Proto.Err { code = "XQDB0006"; msg }) with _ -> ())
  | Xdm.Xerror.Error { code; msg } ->
      (try reply (Proto.Err { code; msg }) with _ -> ()));
  cleanup_session t sess;
  t.cfg.log (Printf.sprintf "session %d: closed" sess.sid)

(* Over-capacity connections still get a proper protocol goodbye: read
   their Hello (briefly), answer XQDB0001, close. Writing before the
   client's first read could otherwise turn into a RST that eats the
   error frame. *)
let reject_session t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
     let ic = Unix.in_channel_of_descr fd in
     set_binary_mode_in ic true;
     (try ignore (Proto.read_frame ic) with _ -> ());
     let oc = Unix.out_channel_of_descr fd in
     set_binary_mode_out oc true;
     Proto.write_frame oc
       (Proto.encode_server
          (Proto.Err
             {
               code = "XQDB0001";
               msg =
                 Printf.sprintf "server at capacity (%d sessions)"
                   t.cfg.max_sessions;
             }))
   with _ -> ());
  close_fd fd;
  Xprof.Registry.incr (Engine.registry t.engine)
    "xnet_admission_rejections_total"

let spawn_session t fd =
  let admitted =
    Nlock.with_lock t.slock (fun () ->
        if Hashtbl.length t.sessions >= t.cfg.max_sessions then None
        else begin
          let sid = t.next_sid in
          t.next_sid <- sid + 1;
          let sess =
            {
              sid;
              fd;
              proto_version = 1;
              limits = Xdm.Limits.unlimited;
              txn = None;
              stmts = Hashtbl.create 8;
              cursors = Hashtbl.create 4;
              next_cursor = 1;
            }
          in
          Hashtbl.replace t.sessions sid sess;
          Some sess
        end)
  in
  match admitted with
  | None ->
      let th = Thread.create (fun () -> reject_session t fd) () in
      Nlock.with_lock t.slock (fun () ->
          t.session_threads <- th :: t.session_threads)
  | Some sess ->
      Xprof.Registry.incr (Engine.registry t.engine) "xnet_sessions_total";
      let th = Thread.create (fun () -> session_loop t sess) () in
      Nlock.with_lock t.slock (fun () ->
          t.session_threads <- th :: t.session_threads)

(* ------------------------------------------------------------------ *)
(* Accept loops                                                        *)
(* ------------------------------------------------------------------ *)

(* Block until [fd] is readable or the stop pipe fires; the self-pipe is
   what makes SIGTERM-driven drain prompt instead of waiting out a
   blocking accept. *)
let wait_readable t fd =
  match Unix.select [ fd; t.stop_r ] [] [] (-1.) with
  | rs, _, _ -> List.mem fd rs && not (List.mem t.stop_r rs)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> not (Atomic.get t.stopping)

let accept_loop t =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopping) do
    if wait_readable t t.listen_fd then (
      match Unix.accept t.listen_fd with
      | fd, _ -> spawn_session t fd
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ()
      | exception Unix.Unix_error _ -> continue := false)
    else continue := false
  done;
  close_fd t.listen_fd

(* One-shot plaintext metrics endpoint: reply-and-close, no request
   parsing (an HTTP/1.0-shaped response keeps curl happy; nc sees the
   same body after two header lines). *)
let metrics_loop t fd =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopping) do
    if wait_readable t fd then (
      match Unix.accept fd with
      | cfd, _ ->
          (try
             let body = stats_text t in
             let resp =
               Printf.sprintf
                 "HTTP/1.0 200 OK\r\n\
                  Content-Type: text/plain; version=0.0.4\r\n\
                  Content-Length: %d\r\n\
                  \r\n\
                  %s"
                 (String.length body) body
             in
             ignore
               (Unix.write_substring cfd resp 0 (String.length resp));
             (try Unix.shutdown cfd Unix.SHUTDOWN_SEND
              with Unix.Unix_error _ -> ())
           with _ -> ());
          close_fd cfd
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ()
      | exception Unix.Unix_error _ -> continue := false)
    else continue := false
  done;
  close_fd fd

(* ------------------------------------------------------------------ *)
(* Start / stop                                                        *)
(* ------------------------------------------------------------------ *)

let listen_on ~host ~port =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (addr, port))
   with e ->
     close_fd fd;
     raise e);
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

let start ~engine cfg =
  (* writes to a dead client must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* per-systhread held-lock stacks for the lock-order tracker; see the
     module comment *)
  Xpar.Lockorder.set_thread_id_provider
    (Some (fun () -> Thread.id (Thread.self ())));
  (* MVCC snapshots on: sessions call the engine without a server lock *)
  Engine.enable_concurrent engine;
  let listen_fd, port = listen_on ~host:cfg.host ~port:cfg.port in
  let metrics =
    match cfg.metrics_port with
    | None -> None
    | Some p -> Some (listen_on ~host:cfg.host ~port:p)
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      engine;
      cfg;
      listen_fd;
      port;
      metrics_fd = Option.map fst metrics;
      metrics_port = Option.map snd metrics;
      slock = Nlock.create ~name:"xnet.sessions" ();
      sessions = Hashtbl.create 16;
      next_sid = 1;
      session_threads = [];
      stopping = Atomic.make false;
      stop_r;
      stop_w;
      started_at = Unix.gettimeofday ();
      accept_thread = None;
      metrics_thread = None;
    }
  in
  (* pre-create the server metrics so /metrics shows zeros before the
     first request *)
  let reg = Engine.registry engine in
  ignore (Xprof.Registry.counter reg "xnet_requests_total");
  ignore (Xprof.Registry.counter reg "xnet_sessions_total");
  ignore (Xprof.Registry.counter reg "xnet_admission_rejections_total");
  ignore (Xprof.Registry.hist reg "xnet_request_ms");
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match t.metrics_fd with
  | Some fd -> t.metrics_thread <- Some (Thread.create (fun () -> metrics_loop t fd) ())
  | None -> ());
  cfg.log
    (Printf.sprintf "listening on %s:%d%s" cfg.host port
       (match t.metrics_port with
       | Some mp -> Printf.sprintf " (metrics on %d)" mp
       | None -> ""));
  t

(* Graceful drain: stop accepting, give live sessions [drain_timeout]
   seconds to finish on their own, then force the stragglers' sockets
   shut and join every thread. After [stop] returns, zero session
   threads are running and [active_sessions] is 0. *)
let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout in
    while active_sessions t > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    let stragglers =
      Nlock.with_lock t.slock (fun () ->
          Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
    in
    List.iter
      (fun s ->
        try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      stragglers;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.metrics_thread with Some th -> Thread.join th | None -> ());
    let threads =
      Nlock.with_lock t.slock (fun () -> t.session_threads)
    in
    List.iter Thread.join threads;
    close_fd t.stop_r;
    close_fd t.stop_w;
    let leaked = active_sessions t in
    t.cfg.log
      (Printf.sprintf "drained: %d forced, %d leaked sessions"
         (List.length stragglers) leaked)
  end
