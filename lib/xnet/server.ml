(** Xnet server: a thread-per-connection accept loop serving the wire
    protocol of {!Proto} over one shared sealed {!Engine.t}.

    Concurrency model. The engine itself is not thread-safe, so every
    engine call — statement execution, cursor pulls, registry access,
    metrics rendering — happens under one server-wide engine lock
    ("xnet.engine"); sessions therefore interleave at statement/batch
    granularity, and the PR-4 plan cache inside the engine is shared
    across sessions for free (session B's compile of a text session A
    already ran is a cache hit — the server-smoke CI job asserts the hit
    counter rises across connections). A second lock ("xnet.sessions")
    guards the session table; the two are never nested, which the
    lock-order tracker verifies at runtime since both are registered
    with {!Xpar.Lockorder}.

    Sessions run on systhreads, not domains: connection handling is
    I/O-bound and must work on the 4.14 leg, while the parallel work
    inside a statement (scans, index intersection, bulk loads) still
    fans out to the Xpar domain pool under the engine lock. Because
    systhreads share their domain's DLS, [start] installs a
    [Thread.id]-based held-stack provider into {!Xpar.Lockorder} —
    without it the tracker would report phantom lock-order edges between
    per-session acquisitions (see docs/CONCURRENCY.md).

    Per-session state: a prepared-statement namespace (names resolve
    only within the session that prepared them), open cursors, and a
    governor budget ([Set_limits]) applied to the engine before each of
    the session's statements. Admission control is the [max_sessions]
    cap: an accept past the cap is answered with an [XQDB0001] error
    frame — the same code the governor uses for in-statement budgets —
    and closed. *)

(* A real mutex even where Xpar.Lock is the sequential no-op backend
   (OCaml 4.x): systhreads are preemptive there too. Instrumented by
   hand with the same Lockorder protocol Xpar.Lock.with_lock follows. *)
module Nlock = struct
  type t = { mu : Mutex.t; id : Xpar.Lockorder.lock_id }

  let create ~name () =
    { mu = Mutex.create (); id = Xpar.Lockorder.register name }

  let with_lock t f =
    Xpar.Lockorder.acquiring t.id;
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () ->
        Mutex.unlock t.mu;
        Xpar.Lockorder.released t.id)
      f
end

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests) *)
  metrics_port : int option;  (** [Some 0] again picks ephemeral *)
  max_sessions : int;
  drain_timeout : float;
      (** seconds [stop] waits for live sessions to finish before
          forcing their sockets shut *)
  log : string -> unit;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 5499;
    metrics_port = None;
    max_sessions = 64;
    drain_timeout = 5.0;
    log = ignore;
  }

type cursor_state =
  | Live of Engine.Cursor.t
      (** streams lazily; pulls happen under the engine lock *)
  | Materialized of { cols : string list; mutable rest : Proto.elem list }
      (** parameterized cursors are drained at open: a live one keeps
          its bindings installed on the engine, which is unsound once
          other sessions interleave statements *)

type session = {
  sid : int;
  fd : Unix.file_descr;
  mutable limits : Xdm.Limits.t;
  stmts : (string, Engine.stmt) Hashtbl.t;  (** per-session namespace *)
  cursors : (int, cursor_state) Hashtbl.t;
  mutable next_cursor : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  metrics_fd : Unix.file_descr option;
  metrics_port : int option;
  elock : Nlock.t;
  slock : Nlock.t;
  sessions : (int, session) Hashtbl.t;  (* guarded by slock *)
  mutable next_sid : int;  (* guarded by slock *)
  mutable session_threads : Thread.t list;  (* guarded by slock *)
  stopping : bool Atomic.t;
  stop_r : Unix.file_descr;  (* self-pipe waking the accept selects *)
  stop_w : Unix.file_descr;
  started_at : float;
  mutable accept_thread : Thread.t option;
  mutable metrics_thread : Thread.t option;
}

let port t = t.port
let metrics_port t = t.metrics_port

let active_sessions t =
  Nlock.with_lock t.slock (fun () -> Hashtbl.length t.sessions)

(* ------------------------------------------------------------------ *)
(* Outcome / binding conversion                                        *)
(* ------------------------------------------------------------------ *)

let params_of (b : Proto.bindings) =
  List.map Engine.sql_value_of_string b.Proto.params

let vars_of (b : Proto.bindings) =
  List.map
    (fun (k, v) -> (k, [ Xdm.Item.A (Engine.atomic_of_string v) ]))
    b.Proto.vars

let render_payload : Engine.payload -> Proto.result_payload = function
  | Engine.Rows { cols; rows } ->
      Proto.Wrows
        { cols; rows = List.map (List.map Storage.Sql_value.to_display) rows }
  | Engine.Items items ->
      Proto.Witems (List.map (fun it -> Engine.to_xml [ it ]) items)

let okay_of_outcome (o : Engine.outcome) : Proto.server_msg =
  Proto.Okay
    {
      payload = render_payload o.Engine.payload;
      notes = o.Engine.notes;
      indexes_used = o.Engine.indexes_used;
      diagnostics = o.Engine.diagnostics;
    }

let elem_of_cursor_elem : Engine.Cursor.elem -> Proto.elem = function
  | Engine.Cursor.Row cells ->
      Proto.Brow (List.map Storage.Sql_value.to_display cells)
  | Engine.Cursor.Item it -> Proto.Bitem (Engine.to_xml [ it ])

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* All registry access goes under the engine lock: Xprof.Registry is a
   plain Hashtbl with no locking of its own. Session counts are computed
   under slock *before* elock is taken — the two locks are never held
   together, by design. *)
let stats_text t =
  let live = active_sessions t in
  Nlock.with_lock t.elock (fun () ->
      let reg = Engine.registry t.engine in
      Engine.refresh_lock_metrics t.engine;
      let uptime = Unix.gettimeofday () -. t.started_at in
      let requests = !(Xprof.Registry.counter reg "xnet_requests_total") in
      Xprof.Registry.set_gauge reg "xnet_uptime_seconds" uptime;
      Xprof.Registry.set_gauge reg "xnet_sessions_active" (float_of_int live);
      Xprof.Registry.set_gauge reg "xnet_qps"
        (if uptime > 0. then float_of_int requests /. uptime else 0.);
      let pc = Engine.plan_cache_stats t.engine in
      Xprof.Registry.to_string reg
      ^ Printf.sprintf
          "plan_cache size=%d capacity=%d hits=%d misses=%d invalidations=%d\n"
          pc.Engine.Plan_cache.size pc.Engine.Plan_cache.capacity
          pc.Engine.Plan_cache.hits pc.Engine.Plan_cache.misses
          pc.Engine.Plan_cache.invalidations)

(* ------------------------------------------------------------------ *)
(* Session request handling                                            *)
(* ------------------------------------------------------------------ *)

(* Run one engine call under the engine lock with this session's
   governor budget installed. The engine keeps the last set limits, so
   installing before every statement makes budgets per-session even
   though the engine is shared. *)
let with_engine t (sess : session) f =
  Nlock.with_lock t.elock (fun () ->
      Engine.set_limits t.engine sess.limits;
      Xprof.Registry.incr (Engine.registry t.engine) "xnet_requests_total";
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          Xprof.Registry.observe
            (Engine.registry t.engine)
            "xnet_request_ms"
            ((Unix.gettimeofday () -. t0) *. 1000.))
        (fun () -> f t.engine))

let close_cursor_state t = function
  | Live c -> Nlock.with_lock t.elock (fun () -> Engine.Cursor.close c)
  | Materialized m -> m.rest <- []

(* Answer one decoded request. Returns [false] when the session should
   end (Quit). Xdm errors are caught by the caller and become Err
   frames; the session survives them. *)
let handle_request t (sess : session) oc (m : Proto.client_msg) : bool =
  let reply msg = Proto.write_frame oc (Proto.encode_server msg) in
  (match m with
  | Proto.Hello _ ->
      reply (Proto.Err { code = "XQDB0006"; msg = "duplicate Hello" })
  | Proto.Exec { src; b } ->
      let out =
        with_engine t sess (fun e ->
            Engine.exec ~params:(params_of b) ~vars:(vars_of b) e src)
      in
      reply (okay_of_outcome out)
  | Proto.Prepare { name; src } ->
      let st = with_engine t sess (fun e -> Engine.prepare e src) in
      Hashtbl.replace sess.stmts name st;
      reply (Proto.Prepared { name; params = Engine.stmt_params st })
  | Proto.Execute { name; b } -> (
      match Hashtbl.find_opt sess.stmts name with
      | None ->
          reply
            (Proto.Err
               {
                 code = "XPST0008";
                 msg = Printf.sprintf "unknown prepared statement: %s" name;
               })
      | Some st ->
          let out =
            with_engine t sess (fun _ ->
                Engine.execute ~params:(params_of b) ~vars:(vars_of b) st)
          in
          reply (okay_of_outcome out))
  | Proto.Open_cursor { src; b } ->
      let params = params_of b and vars = vars_of b in
      let state, cols =
        if params = [] && vars = [] then
          with_engine t sess (fun e ->
              let c = Engine.open_cursor e src in
              (Live c, Engine.Cursor.columns c))
        else
          (* materialize now: a parameterized cursor left live would pin
             its bindings on the shared engine across other sessions'
             statements *)
          with_engine t sess (fun e ->
              let c = Engine.open_cursor ~params ~vars e src in
              let cols = Engine.Cursor.columns c in
              let elems = ref [] in
              (try
                 let rec drain () =
                   match Engine.Cursor.next c with
                   | None -> ()
                   | Some el ->
                       elems := elem_of_cursor_elem el :: !elems;
                       drain ()
                 in
                 drain ()
               with e ->
                 Engine.Cursor.close c;
                 raise e);
              Engine.Cursor.close c;
              (Materialized { cols; rest = List.rev !elems }, cols))
      in
      let cid = sess.next_cursor in
      sess.next_cursor <- cid + 1;
      Hashtbl.replace sess.cursors cid state;
      reply (Proto.Cursor_opened { cursor = cid; cols })
  | Proto.Fetch { cursor; max } -> (
      match Hashtbl.find_opt sess.cursors cursor with
      | None ->
          reply
            (Proto.Err
               {
                 code = "XQDB0006";
                 msg = Printf.sprintf "unknown cursor %d" cursor;
               })
      | Some state ->
          let max = if max <= 0 then 1 else max in
          let elems, finished =
            match state with
            | Live c ->
                with_engine t sess (fun _ ->
                    let rec pull k acc =
                      if k = 0 then (List.rev acc, false)
                      else
                        match Engine.Cursor.next c with
                        | None -> (List.rev acc, true)
                        | Some el -> pull (k - 1) (elem_of_cursor_elem el :: acc)
                    in
                    let elems, fin = pull max [] in
                    if fin then Engine.Cursor.close c;
                    (elems, fin))
            | Materialized m ->
                let rec take k = function
                  | rest when k = 0 -> ([], rest)
                  | [] -> ([], [])
                  | x :: rest ->
                      let taken, left = take (k - 1) rest in
                      (x :: taken, left)
                in
                let taken, left = take max m.rest in
                m.rest <- left;
                (taken, left = [])
          in
          if finished then Hashtbl.remove sess.cursors cursor;
          reply (Proto.Batch { elems; finished }))
  | Proto.Close_cursor { cursor } ->
      (match Hashtbl.find_opt sess.cursors cursor with
      | None -> ()
      | Some state ->
          close_cursor_state t state;
          Hashtbl.remove sess.cursors cursor);
      reply (Proto.Cursor_closed { cursor })
  | Proto.Set_limits l ->
      sess.limits <- l;
      reply
        (Proto.Okay
           {
             payload = Proto.Witems [];
             notes = [ "limits: " ^ Xdm.Limits.to_string l ];
             indexes_used = [];
             diagnostics = [];
           })
  | Proto.Checkpoint ->
      with_engine t sess (fun e -> Engine.checkpoint e);
      reply
        (Proto.Okay
           {
             payload = Proto.Witems [];
             notes = [ "checkpoint complete" ];
             indexes_used = [];
             diagnostics = [];
           })
  | Proto.Stats -> reply (Proto.Stats_text (stats_text t))
  | Proto.Quit -> reply Proto.Bye);
  m <> Proto.Quit

(* ------------------------------------------------------------------ *)
(* Session lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Tear down a session: close its cursors (releasing any governor
   budget a live cursor was still charging), drop it from the table,
   close the socket. Runs exactly once per session (the session thread's
   finally). *)
let cleanup_session t (sess : session) =
  Hashtbl.iter (fun _ st -> close_cursor_state t st) sess.cursors;
  Hashtbl.reset sess.cursors;
  Hashtbl.reset sess.stmts;
  Nlock.with_lock t.slock (fun () -> Hashtbl.remove t.sessions sess.sid);
  close_fd sess.fd

let server_name = "xqdbd"

(* The per-connection thread body: Hello handshake, then a decode →
   handle → reply loop. Engine errors turn into Err frames on a live
   session; protocol errors and disconnects end it. *)
let session_loop t (sess : session) =
  let ic = Unix.in_channel_of_descr sess.fd in
  let oc = Unix.out_channel_of_descr sess.fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let reply msg = Proto.write_frame oc (Proto.encode_server msg) in
  (try
     (match Proto.decode_client (Proto.read_frame ic) with
     | Proto.Hello { user; client = _ } ->
         t.cfg.log
           (Printf.sprintf "session %d: hello from %S" sess.sid user);
         (* auth stub: any user is accepted *)
         reply
           (Proto.Ready
              {
                session = sess.sid;
                server = server_name;
                version = Proto.version;
              })
     | _ -> raise (Proto.Bad_frame "expected Hello"));
     let continue = ref true in
     while !continue && not (Atomic.get t.stopping) do
       match Proto.decode_client (Proto.read_frame ic) with
       | m -> (
           try continue := handle_request t sess oc m
           with Xdm.Xerror.Error { code; msg } ->
             reply (Proto.Err { code; msg }))
     done;
     if Atomic.get t.stopping && !continue then reply Proto.Bye
   with
  | End_of_file | Sys_error _ -> () (* disconnect, possibly mid-frame *)
  | Proto.Bad_frame msg ->
      (try reply (Proto.Err { code = "XQDB0006"; msg }) with _ -> ())
  | Xdm.Xerror.Error { code; msg } ->
      (try reply (Proto.Err { code; msg }) with _ -> ()));
  cleanup_session t sess;
  t.cfg.log (Printf.sprintf "session %d: closed" sess.sid)

(* Over-capacity connections still get a proper protocol goodbye: read
   their Hello (briefly), answer XQDB0001, close. Writing before the
   client's first read could otherwise turn into a RST that eats the
   error frame. *)
let reject_session t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
     let ic = Unix.in_channel_of_descr fd in
     set_binary_mode_in ic true;
     (try ignore (Proto.read_frame ic) with _ -> ());
     let oc = Unix.out_channel_of_descr fd in
     set_binary_mode_out oc true;
     Proto.write_frame oc
       (Proto.encode_server
          (Proto.Err
             {
               code = "XQDB0001";
               msg =
                 Printf.sprintf "server at capacity (%d sessions)"
                   t.cfg.max_sessions;
             }))
   with _ -> ());
  close_fd fd;
  Nlock.with_lock t.elock (fun () ->
      Xprof.Registry.incr (Engine.registry t.engine)
        "xnet_admission_rejections_total")

let spawn_session t fd =
  let admitted =
    Nlock.with_lock t.slock (fun () ->
        if Hashtbl.length t.sessions >= t.cfg.max_sessions then None
        else begin
          let sid = t.next_sid in
          t.next_sid <- sid + 1;
          let sess =
            {
              sid;
              fd;
              limits = Xdm.Limits.unlimited;
              stmts = Hashtbl.create 8;
              cursors = Hashtbl.create 4;
              next_cursor = 1;
            }
          in
          Hashtbl.replace t.sessions sid sess;
          Some sess
        end)
  in
  match admitted with
  | None ->
      let th = Thread.create (fun () -> reject_session t fd) () in
      Nlock.with_lock t.slock (fun () ->
          t.session_threads <- th :: t.session_threads)
  | Some sess ->
      Nlock.with_lock t.elock (fun () ->
          Xprof.Registry.incr (Engine.registry t.engine) "xnet_sessions_total");
      let th = Thread.create (fun () -> session_loop t sess) () in
      Nlock.with_lock t.slock (fun () ->
          t.session_threads <- th :: t.session_threads)

(* ------------------------------------------------------------------ *)
(* Accept loops                                                        *)
(* ------------------------------------------------------------------ *)

(* Block until [fd] is readable or the stop pipe fires; the self-pipe is
   what makes SIGTERM-driven drain prompt instead of waiting out a
   blocking accept. *)
let wait_readable t fd =
  match Unix.select [ fd; t.stop_r ] [] [] (-1.) with
  | rs, _, _ -> List.mem fd rs && not (List.mem t.stop_r rs)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> not (Atomic.get t.stopping)

let accept_loop t =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopping) do
    if wait_readable t t.listen_fd then (
      match Unix.accept t.listen_fd with
      | fd, _ -> spawn_session t fd
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ()
      | exception Unix.Unix_error _ -> continue := false)
    else continue := false
  done;
  close_fd t.listen_fd

(* One-shot plaintext metrics endpoint: reply-and-close, no request
   parsing (an HTTP/1.0-shaped response keeps curl happy; nc sees the
   same body after two header lines). *)
let metrics_loop t fd =
  let continue = ref true in
  while !continue && not (Atomic.get t.stopping) do
    if wait_readable t fd then (
      match Unix.accept fd with
      | cfd, _ ->
          (try
             let body = stats_text t in
             let resp =
               Printf.sprintf
                 "HTTP/1.0 200 OK\r\n\
                  Content-Type: text/plain; version=0.0.4\r\n\
                  Content-Length: %d\r\n\
                  \r\n\
                  %s"
                 (String.length body) body
             in
             ignore
               (Unix.write_substring cfd resp 0 (String.length resp));
             (try Unix.shutdown cfd Unix.SHUTDOWN_SEND
              with Unix.Unix_error _ -> ())
           with _ -> ());
          close_fd cfd
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          ()
      | exception Unix.Unix_error _ -> continue := false)
    else continue := false
  done;
  close_fd fd

(* ------------------------------------------------------------------ *)
(* Start / stop                                                        *)
(* ------------------------------------------------------------------ *)

let listen_on ~host ~port =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (addr, port))
   with e ->
     close_fd fd;
     raise e);
  Unix.listen fd 64;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

let start ~engine cfg =
  (* writes to a dead client must surface as EPIPE, not kill the
     process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* per-systhread held-lock stacks for the lock-order tracker; see the
     module comment *)
  Xpar.Lockorder.set_thread_id_provider
    (Some (fun () -> Thread.id (Thread.self ())));
  let listen_fd, port = listen_on ~host:cfg.host ~port:cfg.port in
  let metrics =
    match cfg.metrics_port with
    | None -> None
    | Some p -> Some (listen_on ~host:cfg.host ~port:p)
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      engine;
      cfg;
      listen_fd;
      port;
      metrics_fd = Option.map fst metrics;
      metrics_port = Option.map snd metrics;
      elock = Nlock.create ~name:"xnet.engine" ();
      slock = Nlock.create ~name:"xnet.sessions" ();
      sessions = Hashtbl.create 16;
      next_sid = 1;
      session_threads = [];
      stopping = Atomic.make false;
      stop_r;
      stop_w;
      started_at = Unix.gettimeofday ();
      accept_thread = None;
      metrics_thread = None;
    }
  in
  (* pre-create the server metrics so /metrics shows zeros before the
     first request *)
  Nlock.with_lock t.elock (fun () ->
      let reg = Engine.registry engine in
      ignore (Xprof.Registry.counter reg "xnet_requests_total");
      ignore (Xprof.Registry.counter reg "xnet_sessions_total");
      ignore (Xprof.Registry.counter reg "xnet_admission_rejections_total");
      ignore (Xprof.Registry.hist reg "xnet_request_ms"));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match t.metrics_fd with
  | Some fd -> t.metrics_thread <- Some (Thread.create (fun () -> metrics_loop t fd) ())
  | None -> ());
  cfg.log
    (Printf.sprintf "listening on %s:%d%s" cfg.host port
       (match t.metrics_port with
       | Some mp -> Printf.sprintf " (metrics on %d)" mp
       | None -> ""));
  t

(* Graceful drain: stop accepting, give live sessions [drain_timeout]
   seconds to finish on their own, then force the stragglers' sockets
   shut and join every thread. After [stop] returns, zero session
   threads are running and [active_sessions] is 0. *)
let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (try ignore (Unix.write_substring t.stop_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout in
    while active_sessions t > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    let stragglers =
      Nlock.with_lock t.slock (fun () ->
          Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
    in
    List.iter
      (fun s ->
        try Unix.shutdown s.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      stragglers;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.metrics_thread with Some th -> Thread.join th | None -> ());
    let threads =
      Nlock.with_lock t.slock (fun () -> t.session_threads)
    in
    List.iter Thread.join threads;
    close_fd t.stop_r;
    close_fd t.stop_w;
    let leaked = active_sessions t in
    t.cfg.log
      (Printf.sprintf "drained: %d forced, %d leaked sessions"
         (List.length stragglers) leaked)
  end
