(** Xnet server: thread-per-connection accept loop serving {!Proto}
    over one shared sealed [Engine.t].

    [start] switches the engine into concurrent mode
    ([Engine.enable_concurrent]): sessions call the engine directly —
    reads run on pinned MVCC snapshots, writes serialize on the
    engine's single-writer slot — so a reader session never blocks
    behind another session's bulk load, and the plan cache is shared
    across sessions. The one server lock, "xnet.sessions", guards the
    session table and is registered with {!Xpar.Lockorder}; [start]
    installs a per-systhread held-stack provider so the tracker
    distinguishes connection threads (see docs/CONCURRENCY.md).
    Parallel work *inside* a statement still fans out to the Xpar
    domain pool.

    Wire v2 sessions may hold one explicit transaction ([Begin] /
    [Commit] / [Rollback] frames, mapped onto [Engine.Txn]); a
    disconnect rolls it back. Session lifecycle, admission control and
    the drain algorithm are specified in docs/SERVER.md. *)

(** A real mutex (even on the OCaml 4.x sequential Xpar backend, where
    [Xpar.Lock] is a no-op) instrumented with {!Xpar.Lockorder}.
    Exposed for tests that exercise the lock-order tracker under
    systhreads. *)
module Nlock : sig
  type t

  val create : name:string -> unit -> t
  val with_lock : t -> (unit -> 'a) -> 'a
end

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests) *)
  metrics_port : int option;
      (** plaintext metrics endpoint; [Some 0] again picks ephemeral *)
  max_sessions : int;
      (** admission cap; connections past it get an [XQDB0001] error
          frame and are closed *)
  drain_timeout : float;
      (** seconds {!stop} waits for live sessions before forcing their
          sockets shut *)
  log : string -> unit;
}

(** 127.0.0.1:5499, no metrics listener, 64 sessions, 5 s drain,
    silent log. *)
val default_config : config

type t

(** Bind, listen and spawn the accept (and metrics) threads. Switches
    [engine] into concurrent (MVCC snapshot) mode, ignores SIGPIPE
    process-wide and installs the Lockorder thread-id provider. Raises
    [Unix.Unix_error] if a port cannot be bound. *)
val start : engine:Engine.t -> config -> t

(** The bound port (useful with [port = 0]). *)
val port : t -> int

val metrics_port : t -> int option

(** Live (admitted, not yet closed) sessions. *)
val active_sessions : t -> int

(** The [\metrics]-style exposition: Xprof registry plaintext plus
    server gauges ([xnet_sessions_active], [xnet_qps],
    [xnet_uptime_seconds], [xnet_requests_total], …) and a plan-cache
    summary line. Thread-safe. *)
val stats_text : t -> string

(** Graceful drain: stop accepting, wait up to [drain_timeout] for live
    sessions to finish, force-shut stragglers, join every thread. After
    [stop] returns no server thread is running and {!active_sessions}
    is 0. Idempotent. *)
val stop : t -> unit
