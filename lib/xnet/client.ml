(** Xnet blocking client: one TCP connection = one server session.

    Every call writes one request frame and reads frames until the
    request's answer arrives. Server [Err] frames re-raise as
    [Xdm.Xerror.Error] with the server's code — remote error handling is
    the same [try Engine.* with Xerror.Error] shape callers already
    have; transport problems (refused, disconnected, protocol garbage)
    raise {!Net_error} instead. Not thread-safe: one connection per
    thread. *)

exception Net_error of string

let neterr fmt = Printf.ksprintf (fun m -> raise (Net_error m)) fmt

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  session : int;
  server : string;
  version : int;  (** negotiated protocol version *)
  mutable closed : bool;
}

let session t = t.session
let server t = t.server
let protocol_version t = t.version

let recv t =
  try Proto.decode_server (Proto.read_frame t.ic) with
  | End_of_file -> neterr "server closed the connection"
  | Sys_error m -> neterr "connection lost: %s" m
  | Proto.Bad_frame m -> neterr "protocol error: %s" m

let send t m =
  try Proto.write_frame t.oc (Proto.encode_client m)
  with Sys_error m -> neterr "connection lost: %s" m

(* One request, one reply; Err frames become engine-shaped errors. *)
let rpc t m =
  send t m;
  match recv t with
  | Proto.Err { code; msg } -> raise (Xdm.Xerror.Error { code; msg })
  | reply -> reply

let connect ?(user = "anon") ?(client = "xqdb") ~host ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> neterr "cannot resolve %s" host
      | h -> h.Unix.h_addr_list.(0)
      | exception Not_found -> neterr "cannot resolve %s" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     neterr "cannot connect to %s:%d: %s" host port (Unix.error_message e));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let t =
    { fd; ic; oc; session = 0; server = ""; version = 1; closed = false }
  in
  try
    match rpc t (Proto.Hello { version = Proto.version; user; client }) with
    | Proto.Ready { session; server; version } ->
        (* the server negotiated [min client server]; anything above our
           own version (or below 1) is a broken peer *)
        if version < 1 || version > Proto.version then
          neterr "server negotiated unsupported protocol v%d (client v%d)"
            version Proto.version;
        { t with session; server; version }
    | _ -> neterr "expected Ready after Hello"
  with e ->
    (* an admission reject (XQDB0001 Err) or protocol failure must not
       leak the socket *)
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

type okay = {
  payload : Proto.result_payload;
  notes : string list;
  indexes_used : string list;
  diagnostics : string list;
}

let okay_of = function
  | Proto.Okay { payload; notes; indexes_used; diagnostics } ->
      { payload; notes; indexes_used; diagnostics }
  | _ -> neterr "expected Okay"

let exec ?(b = Proto.no_bindings) t src = okay_of (rpc t (Proto.Exec { src; b }))

let prepare t ~name src =
  match rpc t (Proto.Prepare { name; src }) with
  | Proto.Prepared { params; _ } -> params
  | _ -> neterr "expected Prepared"

let execute ?(b = Proto.no_bindings) t name =
  okay_of (rpc t (Proto.Execute { name; b }))

let open_cursor ?(b = Proto.no_bindings) t src =
  match rpc t (Proto.Open_cursor { src; b }) with
  | Proto.Cursor_opened { cursor; cols } -> (cursor, cols)
  | _ -> neterr "expected Cursor_opened"

let fetch t ~cursor ~max =
  match rpc t (Proto.Fetch { cursor; max }) with
  | Proto.Batch { elems; finished } -> (elems, finished)
  | _ -> neterr "expected Batch"

let close_cursor t cursor =
  match rpc t (Proto.Close_cursor { cursor }) with
  | Proto.Cursor_closed _ -> ()
  | _ -> neterr "expected Cursor_closed"

let set_limits t l = ignore (okay_of (rpc t (Proto.Set_limits l)))
let checkpoint t = ignore (okay_of (rpc t Proto.Checkpoint))

(* Transactions are a v2 frame set; fail locally on a v1-negotiated
   session rather than ship a frame the server will kill us over. *)
let need_v2 t what =
  if t.version < 2 then
    neterr "%s requires protocol v2 (negotiated v%d)" what t.version

let txn_begin ?(mode = Proto.Read_write) t =
  need_v2 t "Begin";
  ignore (okay_of (rpc t (Proto.Begin { mode })))

let txn_commit t =
  need_v2 t "Commit";
  ignore (okay_of (rpc t Proto.Commit))

let txn_rollback t =
  need_v2 t "Rollback";
  ignore (okay_of (rpc t Proto.Rollback))

let stats t =
  match rpc t Proto.Stats with
  | Proto.Stats_text s -> s
  | _ -> neterr "expected Stats_text"

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try
       send t Proto.Quit;
       match recv t with Proto.Bye -> () | _ -> ()
     with Net_error _ | Xdm.Xerror.Error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
