(** Xnet blocking client: one TCP connection = one server session.

    Server [Err] frames re-raise as [Xdm.Xerror.Error] with the
    server-side code, so remote error handling matches local [Engine]
    calls; transport problems raise {!Net_error}. Not thread-safe — use
    one connection per thread. *)

exception Net_error of string

type t

(** Connect and run the [Hello]/[Ready] handshake. The auth stub
    accepts any [user] (default ["anon"]). Raises {!Net_error} on
    refusal/transport failure and [Xdm.Xerror.Error] [XQDB0001] when
    the server rejects the session for capacity. *)
val connect :
  ?user:string -> ?client:string -> host:string -> port:int -> unit -> t

(** Server-assigned session id. *)
val session : t -> int

(** Server software name from [Ready]. *)
val server : t -> string

(** Negotiated protocol version ([min] of client and server, from the
    [Ready] frame): 2 against a current server, 1 against a PR-8 one. *)
val protocol_version : t -> int

type okay = {
  payload : Proto.result_payload;
  notes : string list;
  indexes_used : string list;
  diagnostics : string list;
}

(** Execute one statement (SQL/XML or XQuery) with optional bindings. *)
val exec : ?b:Proto.bindings -> t -> string -> okay

(** Prepare [src] under [name] in this session's namespace; returns the
    parameter slots in binding order. *)
val prepare : t -> name:string -> string -> string list

val execute : ?b:Proto.bindings -> t -> string -> okay

(** Open a server-side cursor; returns (cursor id, column names). *)
val open_cursor : ?b:Proto.bindings -> t -> string -> int * string list

(** Pull up to [max] elements; [(elems, finished)] — once [finished]
    the server has already closed the cursor. *)
val fetch : t -> cursor:int -> max:int -> Proto.elem list * bool

val close_cursor : t -> int -> unit

(** Set this session's governor budgets for all later statements. *)
val set_limits : t -> Xdm.Limits.t -> unit

(** Open an explicit transaction in this session (default
    [Read_write]); every later statement of the session runs inside it
    until {!txn_commit}/{!txn_rollback}. Raises [Xdm.Xerror.Error]
    [XQDB0007] if one is already open (or, for [Read_write], if another
    session holds the writer), and {!Net_error} locally when the
    negotiated protocol is v1. *)
val txn_begin : ?mode:Proto.txn_mode -> t -> unit

val txn_commit : t -> unit
val txn_rollback : t -> unit

val checkpoint : t -> unit

(** The server's [\metrics]-style plaintext stats. *)
val stats : t -> string

(** Send [Quit], wait for [Bye] (best-effort) and close the socket.
    Idempotent. *)
val close : t -> unit
