(** Xnet wire protocol: length-prefixed binary frames over TCP.

    Frame layout: [[u32 length][u8 tag][payload]] where [length] counts
    the tag byte plus the payload, bounded by {!max_frame}. Integers are
    big-endian; strings are [u32] length + bytes; lists are [u32] count +
    elements; options a [u8] presence byte. Client tags occupy
    [0x01..0x7f], server tags [0x81..0xff], so a frame fed to the wrong
    decoder fails loudly instead of mis-parsing.

    docs/SERVER.md is the normative spec; [test/t_xnet.ml] holds the
    qcheck roundtrip property (client-encode ≡ server-decode) and the
    malformed-frame torture tests. *)

(** Raised by decoders on truncated payloads, trailing garbage, unknown
    tags, or out-of-range lengths. The server answers it with an
    [XQDB0006] error frame and closes the connection; the client raises
    it through [Client.Net_error]. *)
exception Bad_frame of string

(** Hard ceiling on a frame's [length] field: 16 MiB. A peer announcing
    more is protocol-broken (or hostile) and gets disconnected without
    the allocation. *)
val max_frame : int

(** Highest protocol version this build speaks (2). [Hello] carries
    the client's version; the server never rejects a newer client but
    answers [Ready] with the negotiated version, [min client server].
    Version 1 (PR 8) lacks the transaction frames; a [Begin]/[Commit]/
    [Rollback] on a v1-negotiated session is a protocol error
    ([XQDB0006]). *)
val version : int

(** Parameter bindings of one statement: positional SQL [?] values and
    named XQuery [$var] values, both as literal strings parsed
    server-side with the shell's [\exec] rules. *)
type bindings = { params : string list; vars : (string * string) list }

val no_bindings : bindings

(** Transaction mode requested by a v2 [Begin] frame. *)
type txn_mode = Read_only | Read_write

type client_msg =
  | Hello of { version : int; user : string; client : string }
      (** must be the session's first frame; the auth stub accepts any
          user and answers [Ready] with the negotiated version *)
  | Exec of { src : string; b : bindings }
  | Prepare of { name : string; src : string }
  | Execute of { name : string; b : bindings }
      (** [name] resolves in this session's namespace only *)
  | Open_cursor of { src : string; b : bindings }
  | Fetch of { cursor : int; max : int }
  | Close_cursor of { cursor : int }
  | Set_limits of Xdm.Limits.t
      (** per-session resource budgets for every later statement *)
  | Checkpoint
  | Stats  (** the [\metrics]-equivalent stats frame *)
  | Quit
  | Begin of { mode : txn_mode }
      (** v2: open an explicit transaction ({!Engine.Txn.begin_}) bound
          to this session; refused with [XQDB0007] if one is already
          open *)
  | Commit  (** v2: commit the session's open transaction *)
  | Rollback  (** v2: roll back the session's open transaction *)

(** One cursor batch element: a rendered relational row or one
    serialized XDM item. *)
type elem = Brow of string list | Bitem of string

(** A full (non-cursor) result: a relational row set with column names,
    or a sequence of serialized XDM items. *)
type result_payload =
  | Wrows of { cols : string list; rows : string list list }
  | Witems of string list

type server_msg =
  | Ready of { session : int; server : string; version : int }
  | Okay of {
      payload : result_payload;
      notes : string list;
      indexes_used : string list;
      diagnostics : string list;
    }  (** mirrors [Engine.outcome] minus the profile *)
  | Err of { code : string; msg : string }
      (** [code] is an Xdm error code ([XQDB0001] admission/budget, …)
          or [XQDB0006] for protocol errors *)
  | Prepared of { name : string; params : string list }
  | Cursor_opened of { cursor : int; cols : string list }
  | Cursor_closed of { cursor : int }
  | Batch of { elems : elem list; finished : bool }
      (** [finished] means the cursor is exhausted and already closed
          server-side *)
  | Stats_text of string  (** Xprof plaintext exposition *)
  | Bye

(** Encode to [tag ^ payload]; the length prefix is added by
    {!write_frame}. *)
val encode_client : client_msg -> string

val encode_server : server_msg -> string

(** Decode a frame payload as returned by {!read_frame}. Raise
    {!Bad_frame} on anything malformed, including trailing bytes. *)
val decode_client : string -> client_msg

val decode_server : string -> server_msg

(** Write one frame (length prefix + payload) and flush. Raises
    {!Bad_frame} if the payload is empty or exceeds {!max_frame}. *)
val write_frame : out_channel -> string -> unit

(** Read one frame's payload. Raises [End_of_file] on a clean or
    mid-frame disconnect and {!Bad_frame} on an out-of-range length;
    neither is resynchronizable, so the connection must be dropped. *)
val read_frame : in_channel -> string
