(** Xnet wire protocol: length-prefixed binary frames over TCP.

    Every frame is [[u32 length][u8 tag][payload]]; [length] counts the
    tag byte plus the payload and is bounded by {!max_frame}, so a
    malformed or hostile peer can neither make the server allocate
    unbounded memory nor desynchronize the stream silently — an
    oversized length or a short read kills exactly one connection.
    Integers are big-endian; strings are [u32] length + bytes; lists are
    [u32] count + elements; options are a [u8] presence byte.

    Parameter values travel as literal strings and are parsed server-side
    with the same rules as the shell's [\exec] ([Engine.sql_value_of_string]
    / [Engine.atomic_of_string]: single quotes force a string, otherwise
    integers then doubles are recognized). Results travel pre-rendered —
    rows as display strings, XDM items as serialized XML — so the client
    needs no XDM of its own.

    docs/SERVER.md is the normative description of the format and the
    session lifecycle; [test/t_xnet.ml] holds the encode ≡ decode
    roundtrip property and the malformed-frame torture tests. *)

(** Raised by decoders on truncated payloads, unknown tags, or
    out-of-range lengths. The server answers it with an [XQDB0006] error
    frame and closes the connection. *)
exception Bad_frame of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_frame m)) fmt

(** Hard ceiling on a frame's [length] field (16 MiB). *)
let max_frame = 16 * 1024 * 1024

(** Highest protocol version this build speaks. [Hello] carries the
    client's version; the server answers [Ready] with the negotiated
    version, [min client server]. Version 1 is the PR-8 frame set;
    version 2 adds the transaction frames ([Begin]/[Commit]/
    [Rollback]). *)
let version = 2

(** Parameter bindings of one statement: positional SQL [?] values and
    named XQuery [$var] values, both as literal strings. *)
type bindings = { params : string list; vars : (string * string) list }

let no_bindings = { params = []; vars = [] }

(** Transaction mode requested by a v2 [Begin] frame. *)
type txn_mode = Read_only | Read_write

type client_msg =
  | Hello of { version : int; user : string; client : string }
      (** must be the session's first frame; the auth stub accepts any
          user name and echoes a session id back in [Ready], whose
          [version] field is the negotiated protocol version *)
  | Exec of { src : string; b : bindings }
  | Prepare of { name : string; src : string }
  | Execute of { name : string; b : bindings }
  | Open_cursor of { src : string; b : bindings }
  | Fetch of { cursor : int; max : int }
  | Close_cursor of { cursor : int }
  | Set_limits of Xdm.Limits.t
      (** per-session resource budgets, applied to every subsequent
          statement of this session only *)
  | Checkpoint
  | Stats  (** the [\metrics]-equivalent stats frame *)
  | Quit
  | Begin of { mode : txn_mode }
      (** v2: open an explicit transaction in this session *)
  | Commit  (** v2: commit the session's open transaction *)
  | Rollback  (** v2: roll back the session's open transaction *)

(** One cursor batch element: a rendered relational row or one
    serialized XDM item. *)
type elem = Brow of string list | Bitem of string

type result_payload =
  | Wrows of { cols : string list; rows : string list list }
  | Witems of string list

type server_msg =
  | Ready of { session : int; server : string; version : int }
  | Okay of {
      payload : result_payload;
      notes : string list;
      indexes_used : string list;
      diagnostics : string list;
    }
  | Err of { code : string; msg : string }
      (** [code] is an Xdm error code ([XQDB0001] admission/budget,
          [XPST0003] syntax, …) or [XQDB0006] for protocol errors *)
  | Prepared of { name : string; params : string list }
  | Cursor_opened of { cursor : int; cols : string list }
  | Cursor_closed of { cursor : int }
  | Batch of { elems : elem list; finished : bool }
  | Stats_text of string
  | Bye

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u32 buf v =
  if v < 0 then bad "u32 out of range: %d" v;
  Buffer.add_int32_be buf (Int32.of_int v)

let put_i64 buf v = Buffer.add_int64_be buf v

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf f xs =
  put_u32 buf (List.length xs);
  List.iter (f buf) xs

let put_opt_int buf = function
  | None -> put_u8 buf 0
  | Some v ->
      put_u8 buf 1;
      put_i64 buf (Int64.of_int v)

let put_opt_float buf = function
  | None -> put_u8 buf 0
  | Some v ->
      put_u8 buf 1;
      put_i64 buf (Int64.bits_of_float v)

let put_bindings buf b =
  put_list buf put_str b.params;
  put_list buf
    (fun buf (k, v) ->
      put_str buf k;
      put_str buf v)
    b.vars

let put_limits buf (l : Xdm.Limits.t) =
  put_opt_int buf l.Xdm.Limits.max_steps;
  put_opt_int buf l.Xdm.Limits.max_nodes;
  put_opt_int buf l.Xdm.Limits.max_depth;
  put_opt_float buf l.Xdm.Limits.timeout

(** Encode a client message as [tag ^ payload] (the length prefix is
    added by {!write_frame}). *)
let encode_client (m : client_msg) : string =
  let buf = Buffer.create 64 in
  (match m with
  | Hello { version = v; user; client } ->
      put_u8 buf 0x01;
      put_u32 buf v;
      put_str buf user;
      put_str buf client
  | Exec { src; b } ->
      put_u8 buf 0x02;
      put_str buf src;
      put_bindings buf b
  | Prepare { name; src } ->
      put_u8 buf 0x03;
      put_str buf name;
      put_str buf src
  | Execute { name; b } ->
      put_u8 buf 0x04;
      put_str buf name;
      put_bindings buf b
  | Open_cursor { src; b } ->
      put_u8 buf 0x05;
      put_str buf src;
      put_bindings buf b
  | Fetch { cursor; max } ->
      put_u8 buf 0x06;
      put_u32 buf cursor;
      put_u32 buf max
  | Close_cursor { cursor } ->
      put_u8 buf 0x07;
      put_u32 buf cursor
  | Set_limits l ->
      put_u8 buf 0x08;
      put_limits buf l
  | Checkpoint -> put_u8 buf 0x09
  | Stats -> put_u8 buf 0x0a
  | Quit -> put_u8 buf 0x0b
  | Begin { mode } ->
      put_u8 buf 0x0c;
      put_u8 buf (match mode with Read_only -> 0 | Read_write -> 1)
  | Commit -> put_u8 buf 0x0d
  | Rollback -> put_u8 buf 0x0e);
  Buffer.contents buf

let put_elem buf = function
  | Brow cells ->
      put_u8 buf 0;
      put_list buf put_str cells
  | Bitem xml ->
      put_u8 buf 1;
      put_str buf xml

let put_payload buf = function
  | Wrows { cols; rows } ->
      put_u8 buf 0;
      put_list buf put_str cols;
      put_list buf (fun buf row -> put_list buf put_str row) rows
  | Witems items ->
      put_u8 buf 1;
      put_list buf put_str items

let encode_server (m : server_msg) : string =
  let buf = Buffer.create 128 in
  (match m with
  | Ready { session; server; version } ->
      put_u8 buf 0x81;
      put_u32 buf session;
      put_str buf server;
      put_u32 buf version
  | Okay { payload; notes; indexes_used; diagnostics } ->
      put_u8 buf 0x82;
      put_payload buf payload;
      put_list buf put_str notes;
      put_list buf put_str indexes_used;
      put_list buf put_str diagnostics
  | Err { code; msg } ->
      put_u8 buf 0x83;
      put_str buf code;
      put_str buf msg
  | Prepared { name; params } ->
      put_u8 buf 0x84;
      put_str buf name;
      put_list buf put_str params
  | Cursor_opened { cursor; cols } ->
      put_u8 buf 0x85;
      put_u32 buf cursor;
      put_list buf put_str cols
  | Cursor_closed { cursor } ->
      put_u8 buf 0x86;
      put_u32 buf cursor
  | Batch { elems; finished } ->
      put_u8 buf 0x87;
      put_list buf put_elem elems;
      put_u8 buf (if finished then 1 else 0)
  | Stats_text text ->
      put_u8 buf 0x88;
      put_str buf text
  | Bye -> put_u8 buf 0x89);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type rd = { s : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.s then bad "truncated payload"

let get_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_be r.s r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then bad "negative u32";
  v

let get_i64 r =
  need r 8;
  let v = String.get_int64_be r.s r.pos in
  r.pos <- r.pos + 8;
  v

let get_str r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let get_list r f =
  let n = get_u32 r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f r :: acc) in
  go n []

let get_opt_int r =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (Int64.to_int (get_i64 r))
  | b -> bad "bad option byte %d" b

let get_opt_float r =
  match get_u8 r with
  | 0 -> None
  | 1 -> Some (Int64.float_of_bits (get_i64 r))
  | b -> bad "bad option byte %d" b

let get_bindings r =
  let params = get_list r get_str in
  let vars =
    get_list r (fun r ->
        let k = get_str r in
        let v = get_str r in
        (k, v))
  in
  { params; vars }

let get_limits r : Xdm.Limits.t =
  let max_steps = get_opt_int r in
  let max_nodes = get_opt_int r in
  let max_depth = get_opt_int r in
  let timeout = get_opt_float r in
  { Xdm.Limits.max_steps; max_nodes; max_depth; timeout }

let drained r k = if r.pos <> String.length r.s then bad "trailing bytes" else k

(** Decode one client frame payload (tag + body, as returned by
    {!read_frame}). Raises {!Bad_frame} on anything malformed, including
    trailing garbage. *)
let decode_client (payload : string) : client_msg =
  let r = { s = payload; pos = 0 } in
  let m =
    match get_u8 r with
    | 0x01 ->
        let v = get_u32 r in
        if v < 1 then bad "unsupported protocol version %d" v;
        let user = get_str r in
        let client = get_str r in
        Hello { version = v; user; client }
    | 0x02 ->
        let src = get_str r in
        let b = get_bindings r in
        Exec { src; b }
    | 0x03 ->
        let name = get_str r in
        let src = get_str r in
        Prepare { name; src }
    | 0x04 ->
        let name = get_str r in
        let b = get_bindings r in
        Execute { name; b }
    | 0x05 ->
        let src = get_str r in
        let b = get_bindings r in
        Open_cursor { src; b }
    | 0x06 ->
        let cursor = get_u32 r in
        let max = get_u32 r in
        Fetch { cursor; max }
    | 0x07 -> Close_cursor { cursor = get_u32 r }
    | 0x08 -> Set_limits (get_limits r)
    | 0x09 -> Checkpoint
    | 0x0a -> Stats
    | 0x0b -> Quit
    | 0x0c ->
        Begin
          {
            mode =
              (match get_u8 r with
              | 0 -> Read_only
              | 1 -> Read_write
              | b -> bad "bad transaction mode byte %d" b);
          }
    | 0x0d -> Commit
    | 0x0e -> Rollback
    | t -> bad "unknown client frame tag 0x%02x" t
  in
  drained r m

let get_elem r =
  match get_u8 r with
  | 0 -> Brow (get_list r get_str)
  | 1 -> Bitem (get_str r)
  | b -> bad "bad batch element kind %d" b

let get_payload r =
  match get_u8 r with
  | 0 ->
      let cols = get_list r get_str in
      let rows = get_list r (fun r -> get_list r get_str) in
      Wrows { cols; rows }
  | 1 -> Witems (get_list r get_str)
  | b -> bad "bad payload kind %d" b

let decode_server (payload : string) : server_msg =
  let r = { s = payload; pos = 0 } in
  let m =
    match get_u8 r with
    | 0x81 ->
        let session = get_u32 r in
        let server = get_str r in
        let version = get_u32 r in
        Ready { session; server; version }
    | 0x82 ->
        let payload = get_payload r in
        let notes = get_list r get_str in
        let indexes_used = get_list r get_str in
        let diagnostics = get_list r get_str in
        Okay { payload; notes; indexes_used; diagnostics }
    | 0x83 ->
        let code = get_str r in
        let msg = get_str r in
        Err { code; msg }
    | 0x84 ->
        let name = get_str r in
        let params = get_list r get_str in
        Prepared { name; params }
    | 0x85 ->
        let cursor = get_u32 r in
        let cols = get_list r get_str in
        Cursor_opened { cursor; cols }
    | 0x86 -> Cursor_closed { cursor = get_u32 r }
    | 0x87 ->
        let elems = get_list r get_elem in
        let finished = get_u8 r <> 0 in
        Batch { elems; finished }
    | 0x88 -> Stats_text (get_str r)
    | 0x89 -> Bye
    | t -> bad "unknown server frame tag 0x%02x" t
  in
  drained r m

(* ------------------------------------------------------------------ *)
(* Frame I/O                                                           *)
(* ------------------------------------------------------------------ *)

(** Write one frame (length prefix + payload) and flush. *)
let write_frame (oc : out_channel) (payload : string) : unit =
  let n = String.length payload in
  if n = 0 || n > max_frame then bad "frame payload length %d out of range" n;
  output_binary_int oc n;
  output_string oc payload;
  flush oc

(** Read one frame's payload. Raises [End_of_file] on a clean or
    mid-frame disconnect and {!Bad_frame} on an out-of-range length —
    the reader cannot resynchronize after either, so the connection must
    be dropped. *)
let read_frame (ic : in_channel) : string =
  let n = input_binary_int ic in
  if n <= 0 || n > max_frame then bad "frame length %d out of range" n;
  really_input_string ic n
