(** In-memory B+Tree.

    The physical structure beneath every index in the system (XML
    path-value indexes and relational column indexes), mirroring the
    paper's note that "under the covers, XML indexes are implemented using
    B+Trees". Unique keys with replace-on-insert semantics (composite index
    keys embed the node id, so index entries are naturally unique), linked
    leaves for range scans, and full delete rebalancing (borrow / merge).

    Functorized over the key ordering so the same code serves
    [(double, path, doc, node)] XML index keys, [(varchar, ...)] keys and
    relational keys. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) = struct
  type 'v leaf = {
    mutable keys : K.t array;
    mutable vals : 'v array;
    mutable next : 'v leaf option;
  }

  and 'v internal = {
    mutable seps : K.t array;  (** [children.(i)] holds keys [< seps.(i)];
                                   the last child holds the rest *)
    mutable children : 'v node array;
  }

  and 'v node = Leaf of 'v leaf | Node of 'v internal

  type 'v t = {
    mutable root : 'v node;
    mutable size : int;
    max_keys : int;  (** max keys per leaf; max children per internal is
                         [max_keys + 1] *)
    prof : Xprof.t;  (** charged one page read per node visited and one
                         split per node split; {!Xprof.disabled} by
                         default, so unprofiled trees pay one branch *)
  }

  let create ?(order = 32) ?(prof = Xprof.disabled) () =
    if order < 4 then invalid_arg "Btree.create: order must be >= 4";
    { root = Leaf { keys = [||]; vals = [||]; next = None }; size = 0;
      max_keys = order; prof }

  let size t = t.size

  (* -------------------------------------------------------------- *)
  (* Array helpers (copy-based; nodes are small)                     *)
  (* -------------------------------------------------------------- *)

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j ->
        if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  (** Index of the first key [>= k] in sorted array [a]. *)
  let lower_bound a k =
    let lo = ref 0 and hi = ref (Array.length a) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare a.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (** Child slot for key [k]: the first separator strictly greater than [k]
      (keys equal to a separator live in the right subtree). *)
  let child_slot seps k =
    let lo = ref 0 and hi = ref (Array.length seps) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* -------------------------------------------------------------- *)
  (* Lookup                                                          *)
  (* -------------------------------------------------------------- *)

  let rec find_leaf t node k =
    Xprof.page_read t.prof;
    match node with
    | Leaf l -> l
    | Node n -> find_leaf t n.children.(child_slot n.seps k) k

  let find_opt t k =
    let l = find_leaf t t.root k in
    let i = lower_bound l.keys k in
    if i < Array.length l.keys && K.compare l.keys.(i) k = 0 then
      Some l.vals.(i)
    else None

  let mem t k = Option.is_some (find_opt t k)

  (* -------------------------------------------------------------- *)
  (* Insert                                                          *)
  (* -------------------------------------------------------------- *)

  type 'v split = NoSplit | Split of K.t * 'v node

  let rec insert_into t node k v : 'v split =
    Xprof.page_read t.prof;
    match node with
    | Leaf l -> (
        let i = lower_bound l.keys k in
        if i < Array.length l.keys && K.compare l.keys.(i) k = 0 then begin
          l.vals.(i) <- v;
          NoSplit
        end
        else begin
          l.keys <- array_insert l.keys i k;
          l.vals <- array_insert l.vals i v;
          t.size <- t.size + 1;
          if Array.length l.keys <= t.max_keys then NoSplit
          else begin
            (* Split the leaf in half; right half becomes a new leaf.
               The fault point fires after the key landed in the (now
               overfull) leaf: an overfull leaf is still scannable and
               deletable, so rollback after an injected split failure is
               safe. *)
            Faultinject.hit "btree.split";
            Xprof.split t.prof;
            let n = Array.length l.keys in
            let mid = n / 2 in
            let right =
              {
                keys = Array.sub l.keys mid (n - mid);
                vals = Array.sub l.vals mid (n - mid);
                next = l.next;
              }
            in
            l.keys <- Array.sub l.keys 0 mid;
            l.vals <- Array.sub l.vals 0 mid;
            l.next <- Some right;
            Split (right.keys.(0), Leaf right)
          end
        end)
    | Node n -> (
        let slot = child_slot n.seps k in
        match insert_into t n.children.(slot) k v with
        | NoSplit -> NoSplit
        | Split (sep, right) ->
            n.seps <- array_insert n.seps slot sep;
            n.children <- array_insert n.children (slot + 1) right;
            if Array.length n.children <= t.max_keys + 1 then NoSplit
            else begin
              Xprof.split t.prof;
              let nc = Array.length n.children in
              let midc = nc / 2 in
              (* children [0, midc) stay; separator seps.(midc - 1) is
                 promoted; children [midc, nc) move right. *)
              let promoted = n.seps.(midc - 1) in
              let right_node =
                {
                  seps = Array.sub n.seps midc (Array.length n.seps - midc);
                  children = Array.sub n.children midc (nc - midc);
                }
              in
              n.seps <- Array.sub n.seps 0 (midc - 1);
              n.children <- Array.sub n.children 0 midc;
              Split (promoted, Node right_node)
            end)

  let insert t k v =
    match insert_into t t.root k v with
    | NoSplit -> ()
    | Split (sep, right) ->
        t.root <- Node { seps = [| sep |]; children = [| t.root; right |] }

  (* -------------------------------------------------------------- *)
  (* Delete                                                          *)
  (* -------------------------------------------------------------- *)

  let min_leaf_keys t = t.max_keys / 2
  let min_children t = (t.max_keys + 1) / 2

  let node_underflows t = function
    | Leaf l -> Array.length l.keys < min_leaf_keys t
    | Node n -> Array.length n.children < min_children t

  (** Rebalance child [i] of internal node [n] (it may underflow):
      borrow from a sibling if the sibling can spare, else merge. *)
  let rebalance_child t (n : 'v internal) i =
    let child = n.children.(i) in
    if not (node_underflows t child) then ()
    else
      let left = if i > 0 then Some (i - 1) else None in
      let right = if i < Array.length n.children - 1 then Some (i + 1) else None in
      match (child, left, right) with
      | Leaf l, _, Some r
        when (match n.children.(r) with
             | Leaf rl -> Array.length rl.keys > min_leaf_keys t
             | Node _ -> false) -> (
          (* borrow first key from right sibling *)
          match n.children.(r) with
          | Leaf rl ->
              l.keys <- Array.append l.keys [| rl.keys.(0) |];
              l.vals <- Array.append l.vals [| rl.vals.(0) |];
              rl.keys <- array_remove rl.keys 0;
              rl.vals <- array_remove rl.vals 0;
              n.seps.(i) <- rl.keys.(0)
          | Node _ -> assert false)
      | Leaf l, Some lft, _
        when (match n.children.(lft) with
             | Leaf ll -> Array.length ll.keys > min_leaf_keys t
             | Node _ -> false) -> (
          (* borrow last key from left sibling *)
          match n.children.(lft) with
          | Leaf ll ->
              let j = Array.length ll.keys - 1 in
              l.keys <- array_insert l.keys 0 ll.keys.(j);
              l.vals <- array_insert l.vals 0 ll.vals.(j);
              ll.keys <- array_remove ll.keys j;
              ll.vals <- array_remove ll.vals j;
              n.seps.(lft) <- l.keys.(0)
          | Node _ -> assert false)
      | Leaf _, _, Some r -> (
          (* merge child with right sibling *)
          match (n.children.(i), n.children.(r)) with
          | Leaf l, Leaf rl ->
              l.keys <- Array.append l.keys rl.keys;
              l.vals <- Array.append l.vals rl.vals;
              l.next <- rl.next;
              n.seps <- array_remove n.seps i;
              n.children <- array_remove n.children r
          | _ -> assert false)
      | Leaf _, Some lft, None -> (
          (* merge into left sibling *)
          match (n.children.(lft), n.children.(i)) with
          | Leaf ll, Leaf l ->
              ll.keys <- Array.append ll.keys l.keys;
              ll.vals <- Array.append ll.vals l.vals;
              ll.next <- l.next;
              n.seps <- array_remove n.seps lft;
              n.children <- array_remove n.children i
          | _ -> assert false)
      | Node c, _, Some r
        when (match n.children.(r) with
             | Node rn -> Array.length rn.children > min_children t
             | Leaf _ -> false) -> (
          match n.children.(r) with
          | Node rn ->
              (* rotate left through separator *)
              c.seps <- Array.append c.seps [| n.seps.(i) |];
              c.children <- Array.append c.children [| rn.children.(0) |];
              n.seps.(i) <- rn.seps.(0);
              rn.seps <- array_remove rn.seps 0;
              rn.children <- array_remove rn.children 0
          | Leaf _ -> assert false)
      | Node c, Some lft, _
        when (match n.children.(lft) with
             | Node ln -> Array.length ln.children > min_children t
             | Leaf _ -> false) -> (
          match n.children.(lft) with
          | Node ln ->
              let j = Array.length ln.children - 1 in
              c.seps <- array_insert c.seps 0 n.seps.(lft);
              c.children <- array_insert c.children 0 ln.children.(j);
              n.seps.(lft) <- ln.seps.(j - 1);
              ln.seps <- array_remove ln.seps (j - 1);
              ln.children <- array_remove ln.children j
          | Leaf _ -> assert false)
      | Node _, _, Some r -> (
          match (n.children.(i), n.children.(r)) with
          | Node c, Node rn ->
              c.seps <- Array.concat [ c.seps; [| n.seps.(i) |]; rn.seps ];
              c.children <- Array.append c.children rn.children;
              n.seps <- array_remove n.seps i;
              n.children <- array_remove n.children r
          | _ -> assert false)
      | Node _, Some lft, None -> (
          match (n.children.(lft), n.children.(i)) with
          | Node ln, Node c ->
              ln.seps <- Array.concat [ ln.seps; [| n.seps.(lft) |]; c.seps ];
              ln.children <- Array.append ln.children c.children;
              n.seps <- array_remove n.seps lft;
              n.children <- array_remove n.children i
          | _ -> assert false)
      | _, None, None -> ()

  let rec delete_from t node k : bool =
    Xprof.page_read t.prof;
    match node with
    | Leaf l ->
        let i = lower_bound l.keys k in
        if i < Array.length l.keys && K.compare l.keys.(i) k = 0 then begin
          l.keys <- array_remove l.keys i;
          l.vals <- array_remove l.vals i;
          t.size <- t.size - 1;
          true
        end
        else false
    | Node n ->
        let slot = child_slot n.seps k in
        let removed = delete_from t n.children.(slot) k in
        if removed then rebalance_child t n slot;
        removed

  let delete t k =
    let removed = delete_from t t.root k in
    (match t.root with
    | Node n when Array.length n.children = 1 -> t.root <- n.children.(0)
    | _ -> ());
    removed

  (* -------------------------------------------------------------- *)
  (* Scans                                                           *)
  (* -------------------------------------------------------------- *)

  type bound = Unbounded | Incl of K.t | Excl of K.t

  let above bound k =
    match bound with
    | Unbounded -> true
    | Incl b -> K.compare k b >= 0
    | Excl b -> K.compare k b > 0

  let below bound k =
    match bound with
    | Unbounded -> true
    | Incl b -> K.compare k b <= 0
    | Excl b -> K.compare k b < 0

  (** Fold over entries with [lo <= key <= hi] (per the bound kinds), in
      key order — one contiguous leaf walk, exactly the physical "single
      range scan" whose cost Section 3.10 of the paper contrasts with
      index ANDing. *)
  let fold_range t ~lo ~hi f init =
    let start_key = match lo with Unbounded -> None | Incl k | Excl k -> Some k in
    let leaf =
      match start_key with
      | None ->
          let rec leftmost node =
            Xprof.page_read t.prof;
            match node with
            | Leaf l -> l
            | Node n -> leftmost n.children.(0)
          in
          leftmost t.root
      | Some k -> find_leaf t t.root k
    in
    let acc = ref init in
    let continue = ref true in
    let first = ref true in
    let current = ref (Some leaf) in
    while !continue do
      match !current with
      | None -> continue := false
      | Some l ->
          (* the first leaf was already charged by the descent *)
          if !first then first := false else Xprof.page_read t.prof;
          let n = Array.length l.keys in
          let i = ref 0 in
          while !continue && !i < n do
            let k = l.keys.(!i) in
            if not (below hi k) then continue := false
            else begin
              if above lo k then acc := f !acc k l.vals.(!i);
              incr i
            end
          done;
          if !continue then current := l.next
    done;
    !acc

  let range t ~lo ~hi =
    List.rev (fold_range t ~lo ~hi (fun acc k v -> (k, v) :: acc) [])

  let iter t f =
    ignore (fold_range t ~lo:Unbounded ~hi:Unbounded (fun () k v -> f k v) ())

  let to_list t = range t ~lo:Unbounded ~hi:Unbounded

  (* -------------------------------------------------------------- *)
  (* Bulk load (snapshot restore)                                    *)
  (* -------------------------------------------------------------- *)

  (** Walk the leaf level left-to-right; [f keys vals] once per leaf.
      Used by the snapshot writer to dump a tree leaf-by-leaf. *)
  let iter_leaves t f =
    let rec leftmost = function
      | Leaf l -> l
      | Node n -> leftmost n.children.(0)
    in
    let rec go l =
      f l.keys l.vals;
      match l.next with None -> () | Some l' -> go l'
    in
    go (leftmost t.root)

  (** Split [total] items into groups of at most [max] with near-even
      sizes, so no group underflows: with g = ceil(total/max) groups the
      smallest group holds floor(total/g) >= max/2 items whenever g > 1. *)
  let group_sizes total max =
    let g = (total + max - 1) / max in
    let base = total / g and extra = total mod g in
    Array.init g (fun i -> base + if i < extra then 1 else 0)

  (** Bulk-build a tree from strictly-sorted distinct entries in O(n):
      pack the leaf level, then build each internal level bottom-up. The
      result satisfies {!check}. *)
  let of_sorted ?(order = 32) ?(prof = Xprof.disabled) (entries : (K.t * 'v) array) : 'v t =
    if order < 4 then invalid_arg "Btree.of_sorted: order must be >= 4";
    let n = Array.length entries in
    if n = 0 then create ~order ~prof ()
    else begin
      for i = 1 to n - 1 do
        if K.compare (fst entries.(i - 1)) (fst entries.(i)) >= 0 then
          invalid_arg "Btree.of_sorted: entries not strictly sorted"
      done;
      let off = ref 0 in
      let leaves =
        group_sizes n order |> Array.to_list
        |> List.map (fun sz ->
               let base = !off in
               off := base + sz;
               {
                 keys = Array.init sz (fun j -> fst entries.(base + j));
                 vals = Array.init sz (fun j -> snd entries.(base + j));
                 next = None;
               })
      in
      let rec link = function
        | a :: (b :: _ as rest) ->
            a.next <- Some b;
            link rest
        | _ -> ()
      in
      link leaves;
      (* Levels are lists of (min key of subtree, node). *)
      let rec build = function
        | [ (_, node) ] -> node
        | level ->
            let arr = Array.of_list level in
            let off = ref 0 in
            group_sizes (Array.length arr) (order + 1) |> Array.to_list
            |> List.map (fun sz ->
                   let base = !off in
                   off := base + sz;
                   ( fst arr.(base),
                     Node
                       {
                         seps = Array.init (sz - 1) (fun j -> fst arr.(base + j + 1));
                         children = Array.init sz (fun j -> snd arr.(base + j));
                       } ))
            |> build
      in
      {
        root = build (List.map (fun l -> (l.keys.(0), Leaf l)) leaves);
        size = n;
        max_keys = order;
        prof;
      }
    end

  (* -------------------------------------------------------------- *)
  (* Invariant checking (for property tests)                         *)
  (* -------------------------------------------------------------- *)

  exception Violation of string

  (** Check structural invariants; raises [Violation] on failure. Returns
      the number of entries found. *)
  let check t =
    let rec depth = function
      | Leaf _ -> 0
      | Node n -> 1 + depth n.children.(0)
    in
    let d = depth t.root in
    let count = ref 0 in
    let rec go node level ~is_root ~lo ~hi =
      (match node with
      | Leaf l ->
          if level <> d then raise (Violation "leaves at different depths");
          if (not is_root) && Array.length l.keys < min_leaf_keys t then
            raise (Violation "leaf underflow");
          if Array.length l.keys > t.max_keys then
            raise (Violation "leaf overflow");
          Array.iter
            (fun k ->
              if not (above lo k && below hi k) then
                raise (Violation "leaf key outside separator range"))
            l.keys;
          for i = 1 to Array.length l.keys - 1 do
            if K.compare l.keys.(i - 1) l.keys.(i) >= 0 then
              raise (Violation "leaf keys not strictly sorted")
          done;
          count := !count + Array.length l.keys
      | Node n ->
          let nc = Array.length n.children in
          if Array.length n.seps <> nc - 1 then
            raise (Violation "separator/child count mismatch");
          if (not is_root) && nc < min_children t then
            raise (Violation "internal underflow");
          if nc > t.max_keys + 1 then raise (Violation "internal overflow");
          for i = 1 to Array.length n.seps - 1 do
            if K.compare n.seps.(i - 1) n.seps.(i) >= 0 then
              raise (Violation "separators not sorted")
          done;
          Array.iteri
            (fun i c ->
              let clo = if i = 0 then lo else Incl n.seps.(i - 1) in
              let chi =
                if i = nc - 1 then hi else Excl n.seps.(i)
              in
              go c (level + 1) ~is_root:false ~lo:clo ~hi:chi)
            n.children);
    in
    go t.root 0 ~is_root:true ~lo:Unbounded ~hi:Unbounded;
    if !count <> t.size then raise (Violation "size counter mismatch");
    (* Leaf chain must visit all keys in order. *)
    let chained = List.length (to_list t) in
    if chained <> t.size then raise (Violation "leaf chain misses entries");
    !count
end
