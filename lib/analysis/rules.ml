(** The lint-rule registry.

    Every pitfall the analyzer can report as a *lint* finding (as opposed
    to a hard W3C type error) has a stable [XQLINT0xx] code here.
    Codes 001–012 are the paper's Tips 1–12 verbatim; 013 is the
    Section 3.10 "between" guidance; codes from 014 up are additional
    rules the analyzer derives from the same semantics. [docs/LINTING.md]
    catalogues all of them.

    The registry is data, not behavior: the checks live in {!Lint},
    {!Typecheck} and {!Pathcheck} and tag their diagnostics with these
    codes; the advisor renders the tip-numbered subset. *)

type rule = {
  code : string;  (** stable diagnostic code, [XQLINT0xx] *)
  tip : int option;  (** paper tip number, when the rule is a tip *)
  severity : Diag.severity;  (** default severity *)
  title : string;  (** one-line summary (the advisor's tip title) *)
  paper : string;  (** where in the paper the rule comes from *)
}

let tip_title = function
  | 1 -> "Tip 1: use type-cast expressions in XQuery join predicates"
  | 2 ->
      "Tip 2: to retrieve XML fragments, use the stand-alone XQuery \
       interface"
  | 3 ->
      "Tip 3: make sure the XQuery inside XMLEXISTS returns nodes, not a \
       boolean"
  | 4 -> "Tip 4: express predicates in the XMLTABLE row-producer"
  | 5 ->
      "Tip 5: express the join condition on the side that has the index"
  | 6 -> "Tip 6: always express XML joins on the XQuery side"
  | 7 ->
      "Tip 7: do not put predicates inside element constructors in return \
       clauses"
  | 8 ->
      "Tip 8: do not use absolute paths when the context is a constructed \
       element"
  | 9 -> "Tip 9: write predicates on the data before any construction"
  | 10 ->
      "Tip 10: keep namespace declarations consistent between data, \
       queries and indexes"
  | 11 -> "Tip 11: align /text() steps between queries and indexes"
  | 12 -> "Tip 12: to index all attributes use //@*, not //* or //node()"
  | 13 ->
      "Section 3.10: make 'between' predicates singleton-safe (value \
       comparisons, self axis, or attributes)"
  | 14 ->
      "Structural indexing: reverse and sibling axes become index-served \
       structural joins under CREATE STRUCTURAL INDEX"
  | _ -> "?"

let code_of_tip (n : int) : string = Printf.sprintf "XQLINT%03d" n

let tip_rule ?(severity = Diag.Warning) n paper =
  { code = code_of_tip n; tip = Some n; severity; title = tip_title n; paper }

let all : rule list =
  [
    tip_rule 1 "Section 3.2, Queries 10-11";
    tip_rule 2 "Section 3.2, Queries 5-7";
    tip_rule 3 "Section 3.2, Queries 8-9";
    tip_rule 4 "Section 3.2, Query 12";
    tip_rule 5 "Section 3.3, Queries 13-14";
    tip_rule 6 "Section 3.3, Queries 15-16";
    tip_rule 7 "Section 3.5, Queries 19-22";
    tip_rule 8 "Section 3.6, Query 25";
    tip_rule 9 "Section 3.6, Queries 26-27";
    tip_rule 10 "Section 3.7, Query 28";
    tip_rule 11 "Section 3.8, Query 29";
    tip_rule 12 "Section 3.9, Query 30";
    tip_rule 13 "Section 3.10";
    {
      code = "XQLINT014";
      tip = None;
      severity = Diag.Warning;
      title = "absolute path inside an embedded XQuery has no context item";
      paper = "Section 3.2 (XMLEXISTS/XMLQUERY evaluate without a context \
               item; root paths at a PASSING variable)";
    };
    {
      code = "XQLINT015";
      tip = None;
      severity = Diag.Warning;
      title = "positional predicate is never index-eligible";
      paper = "Section 2.2 (positional predicates cannot eliminate \
               documents)";
    };
    {
      code = "XQLINT016";
      tip = None;
      severity = Diag.Warning;
      title = "string literal compared against a numeric-indexed path";
      paper = "Section 3.1 (untyped data compares as string against a \
               string literal, so a DOUBLE index cannot serve the \
               predicate)";
    };
    {
      code = "XQLINT020";
      tip = None;
      severity = Diag.Warning;
      title = "contradictory predicates on a singleton path";
      paper = "derived: [@x = a][@x = b] with a <> b selects nothing";
    };
    {
      code = "XQLINT021";
      tip = None;
      severity = Diag.Warning;
      title = "predicate is constant (always true or always false)";
      paper = "derived: constant-foldable predicate";
    };
    {
      code = "XQLINT022";
      tip = None;
      severity = Diag.Warning;
      title = "step name does not occur in the registered schema";
      paper = "Sections 2.1/3.1 (schema-impossible steps select nothing)";
    };
    {
      code = "XQLINT023";
      tip = None;
      severity = Diag.Warning;
      title = "step after an attribute or text() step never selects \
               anything";
      paper = "Section 3.9 (attributes and text nodes have no children or \
               attributes)";
    };
    {
      code = "XQLINT024";
      tip = Some 14;
      severity = Diag.Hint;
      title = tip_title 14;
      paper = "derived: pre/post structural joins (docs/STRUCTURAL.md) \
               serve parent/ancestor/sibling steps that navigation must \
               walk";
    };
  ]

let find (code : string) : rule option =
  List.find_opt (fun r -> r.code = code) all

(** Default severity for a code; unknown codes default to Warning. *)
let severity_of (code : string) : Diag.severity =
  match find code with Some r -> r.severity | None -> Diag.Warning
