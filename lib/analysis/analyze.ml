(** Analyzer entry points: run every pass over a statement and collect
    the diagnostics.

    A statement is analyzed as SQL/XML if it parses as SQL, else as
    stand-alone XQuery (same auto-detection as execution). For SQL, each
    embedded XQuery (XMLQUERY / XMLEXISTS / XMLTABLE) is analyzed in full
    with its positions mapped back into the SQL text, and [XMLCAST] over
    a possibly-many XMLQUERY result is reported as the paper's Query 14
    static type error. *)

open Xquery.Ast
module A = Xdm.Atomic
module SA = Sqlxml.Sql_ast

(* ------------------------------------------------------------------ *)
(* Stand-alone XQuery                                                  *)
(* ------------------------------------------------------------------ *)

(** Analyze a parsed query. [vars] types any externally bound variables
    (PASSING clause entries); resolution errors (bad prefixes, undefined
    variables) become diagnostics rather than exceptions. *)
let analyze_query ?catalog ?schema ?(vars : (string * seqtype) list = [])
    ~(locs : Locs.t) (q : query) : Diag.t list =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let q =
    try
      Xquery.Static.resolve
        ~external_vars:(List.map fst vars)
        ~locs q
    with Xdm.Xerror.Error { code; msg } ->
      emit (Diag.make ~code ~severity:Diag.Error "%s" msg);
      q
  in
  ignore (Typecheck.infer_query ~vars ~locs ~emit q);
  (try Pathcheck.check ?schema ~locs ~emit q
   with _ -> ());
  let lint = try Lint.xquery_lint ?catalog ~locs q with _ -> [] in
  List.rev !diags @ lint

(* ------------------------------------------------------------------ *)
(* SQL/XML                                                             *)
(* ------------------------------------------------------------------ *)

(** Static type of a PASSING clause value, as seen by the embedded
    query. Column values are unknown statically (XML columns pass
    document nodes, scalar columns pass atomics), so only literals get a
    definite type; everything passes a single item. *)
let passing_ty : SA.sexpr -> seqtype = function
  | SA.SLitInt _ -> STItems (ITAtomic A.TInteger, OccOne)
  | SA.SLitDouble _ -> STItems (ITAtomic A.TDouble, OccOne)
  | SA.SLitString _ -> STItems (ITAtomic A.TString, OccOne)
  | _ -> STItems (ITItem, OccOne)

(** Walk every embedded query / XMLTABLE column of a statement. *)
let iter_embeds (stmt : SA.stmt)
    ~(embed : SA.xq_embed -> unit)
    ~(col : SA.xt_col -> unit)
    ~(cast_of_query : SA.xq_embed -> Storage.Sql_value.sqltype -> unit) :
    unit =
  let rec walk_sexpr = function
    | SA.SXmlQuery e -> embed e
    | SA.SXmlCast (SA.SXmlQuery e, ty) ->
        embed e;
        cast_of_query e ty
    | SA.SXmlCast (e, _) -> walk_sexpr e
    | SA.SXmlElement (_, args) -> List.iter walk_sexpr args
    | SA.SAgg (_, arg) -> Option.iter walk_sexpr arg
    | SA.SNull | SA.SLitInt _ | SA.SLitDouble _ | SA.SLitString _
    | SA.SCol _ | SA.SParam _ ->
        ()
  in
  let rec walk_cond = function
    | SA.CAnd (a, b) | SA.COr (a, b) ->
        walk_cond a;
        walk_cond b
    | SA.CNot a -> walk_cond a
    | SA.CCmp (_, a, b) ->
        walk_sexpr a;
        walk_sexpr b
    | SA.CXmlExists e -> embed e
    | SA.CIsNull (e, _) -> walk_sexpr e
  in
  let rec walk_stmt = function
    | SA.Select s ->
        List.iter
          (function SA.SelExpr (e, _) -> walk_sexpr e | SA.SelStar -> ())
          s.SA.sel_list;
        List.iter
          (function
            | SA.TRXmlTable xt ->
                embed xt.SA.xt_embed;
                List.iter col xt.SA.xt_cols
            | SA.TRTable _ -> ())
          s.SA.from;
        Option.iter walk_cond s.SA.where;
        List.iter walk_sexpr s.SA.group_by;
        List.iter (fun (e, _) -> walk_sexpr e) s.SA.order_by
    | SA.Values row -> List.iter walk_sexpr row
    | SA.Insert (_, rows) -> List.iter (List.iter walk_sexpr) rows
    | SA.Update { upd_set; upd_where; _ } ->
        List.iter (fun (_, e) -> walk_sexpr e) upd_set;
        Option.iter walk_cond upd_where
    | SA.Delete { del_where; _ } -> Option.iter walk_cond del_where
    | SA.Explain inner -> walk_stmt inner
    | SA.CreateTable _ | SA.CreateXmlIndex _ | SA.CreateRelIndex _
    | SA.CreateStructIndex _ | SA.DropIndex _ ->
        ()
  in
  walk_stmt stmt

(** Analyze a parsed SQL/XML statement against the original source text
    (positions inside embedded queries are mapped into [src]). *)
let analyze_sql ?catalog ?schema ~(src : string) (stmt : SA.stmt) :
    Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let resolve_embed (e : SA.xq_embed) =
    try
      Xquery.Static.resolve
        ~external_vars:(List.map fst e.SA.xq_passing)
        ~locs:e.SA.xq_locs e.SA.xq_query
    with _ -> e.SA.xq_query
  in
  let deep_embed (e : SA.xq_embed) =
    let map_pos (d : Diag.t) =
      {
        d with
        Diag.pos =
          Some
            (match d.Diag.pos with
            | Some p ->
                Lint.map_embed_pos ~src ~offset:e.SA.xq_offset p
            | None -> Xdm.Srcloc.of_offset src e.SA.xq_offset);
      }
    in
    let q = resolve_embed e in
    let vars = List.map (fun (v, sx) -> (v, passing_ty sx)) e.SA.xq_passing in
    let emit d = add (map_pos d) in
    (try ignore (Typecheck.infer_query ~vars ~locs:e.SA.xq_locs ~emit q)
     with _ -> ());
    try Pathcheck.check ?schema ~locs:e.SA.xq_locs ~emit q with _ -> ()
  in
  let deep_col (c : SA.xt_col) =
    let map_pos (d : Diag.t) =
      {
        d with
        Diag.pos =
          Some
            (match d.Diag.pos with
            | Some p ->
                Lint.map_embed_pos ~src ~offset:c.SA.xc_offset p
            | None -> Xdm.Srcloc.of_offset src c.SA.xc_offset);
      }
    in
    let q =
      try Xquery.Static.resolve ~locs:c.SA.xc_locs c.SA.xc_query
      with _ -> c.SA.xc_query
    in
    let emit d = add (map_pos d) in
    (try ignore (Typecheck.infer_query ~locs:c.SA.xc_locs ~emit q)
     with _ -> ());
    try Pathcheck.check ?schema ~locs:c.SA.xc_locs ~emit q with _ -> ()
  in
  (* the Query 14 static error: XMLCAST over a possibly-many sequence *)
  let check_cast (e : SA.xq_embed) (ty : Storage.Sql_value.sqltype) =
    let q = resolve_embed e in
    let vars = List.map (fun (v, sx) -> (v, passing_ty sx)) e.SA.xq_passing in
    let t =
      try Typecheck.type_of_query ~vars ~locs:e.SA.xq_locs q
      with _ -> STItems (ITItem, OccOne)
    in
    if Typecheck.possibly_many t then
      add
        (Diag.make
           ~pos:(Xdm.Srcloc.of_offset src e.SA.xq_offset)
           ~code:"XPTY0004" ~severity:Diag.Error
           "XMLCAST to %s over an XMLQUERY result that may contain more \
            than one item ('%s' has static type item()*): the cast raises \
            a type error as soon as a document carries several matching \
            nodes (Section 3.3, Query 14). Test with XMLEXISTS and a \
            value comparison instead (Query 13)"
           (Storage.Sql_value.type_name ty)
           e.SA.xq_src)
  in
  iter_embeds stmt ~embed:deep_embed ~col:deep_col ~cast_of_query:check_cast;
  let lint = try Lint.sql_lint ?catalog ~src stmt with _ -> [] in
  List.rev !diags @ lint

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Analyze a statement source: SQL/XML if it parses as SQL, else
    stand-alone XQuery. Raises on syntax errors (see
    {!analyze_string}). *)
let analyze ?catalog ?schema (src : string) : Diag.t list =
  match Sqlxml.Sql_parser.parse src with
  | stmt -> analyze_sql ?catalog ?schema ~src stmt
  | exception Sqlxml.Sql_lexer.Sql_syntax_error _ ->
      let q, locs = Xquery.Parser.parse_query_loc src in
      analyze_query ?catalog ?schema ~locs q

(** Like {!analyze} but total: syntax errors (and any analyzer failure)
    are returned as diagnostics instead of raised. *)
let analyze_string ?catalog ?schema (src : string) : Diag.t list =
  try analyze ?catalog ?schema src with
  | Xdm.Xerror.Error { code; msg } ->
      [ Diag.make ~code ~severity:Diag.Error "%s" msg ]
  | Sqlxml.Sql_lexer.Sql_syntax_error msg ->
      [ Diag.make ~code:"XPST0003" ~severity:Diag.Error "%s" msg ]
  | e ->
      [
        Diag.make ~code:"XQLINT000" ~severity:Diag.Hint
          "analyzer failure: %s" (Printexc.to_string e);
      ]

let errors (ds : Diag.t list) = List.filter Diag.is_error ds

(** Strict-mode gate: raise the first Error-severity diagnostic of a
    parsed SQL statement as an engine error. Installed by [Engine] as
    [Sql_exec]'s static check when strict typing is on. *)
let check_sql ?catalog ?schema ~(src : string) (stmt : SA.stmt) : unit =
  match errors (analyze_sql ?catalog ?schema ~src stmt) with
  | [] -> ()
  | d :: _ ->
      raise
        (Xdm.Xerror.Error
           {
             code = d.Diag.code;
             msg = Printf.sprintf "static check rejected the statement: %s" d.Diag.message;
           })

(** Strict-mode gate for stand-alone XQuery. *)
let check_xquery ?catalog ?schema ~(locs : Locs.t) (q : query) : unit =
  match errors (analyze_query ?catalog ?schema ~locs q) with
  | [] -> ()
  | d :: _ ->
      raise
        (Xdm.Xerror.Error
           {
             code = d.Diag.code;
             msg = Printf.sprintf "static check rejected the statement: %s" d.Diag.message;
           })
