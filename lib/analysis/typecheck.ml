(** Lite static type and cardinality inference over the XQuery subset.

    Infers, for every expression, a {!Xquery.Ast.seqtype}: an item type
    (atomic type, node kind, or [item()]) together with an occurrence
    indicator. The inference is deliberately conservative — it only
    reports a diagnostic when the judgment is *definite* — but it is
    precise enough to catch the paper's static pitfalls:

    - Section 3.3 / Query 14: [XMLCAST] (and XQuery [cast as]) applied to
      a sequence whose static cardinality is [*] or [+] — the cast raises
      [XPTY0004] as soon as a document carries two matching nodes;
    - comparisons between incomparable *definite* atomic types
      ([XPTY0004]);
    - arithmetic over definite strings or booleans ([XPTY0004]);
    - path steps over atomic values ([XPTY0019]);
    - casts of literals that can never succeed ([FORG0001]);
    - unknown functions and wrong arities ([XPST0017]);
    - steps below attribute or text() nodes (lint rule [XQLINT023]).

    The checker never raises: every judgment it cannot make is widened to
    [item()*] and analysis continues. *)

open Xquery.Ast
module A = Xdm.Atomic
module P = Eligibility.Predicate
module SMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Occurrence algebra                                                  *)
(* ------------------------------------------------------------------ *)

(** Encode an occurrence as (at-least-one, possibly-many). *)
let occ_lo = function OccOne | OccPlus -> true | OccOpt | OccStar -> false
let occ_hi = function OccStar | OccPlus -> true | OccOne | OccOpt -> false

let occ_make ~lo ~hi =
  match (lo, hi) with
  | true, false -> OccOne
  | false, false -> OccOpt
  | false, true -> OccStar
  | true, true -> OccPlus

let possibly_many = function
  | STItems (_, (OccStar | OccPlus)) -> true
  | _ -> false

let item_of = function STEmpty -> None | STItems (it, _) -> Some it

(** Least upper bound of two item types. *)
let lub_item a b =
  if a = b then a
  else
    let is_node = function
      | ITAnyNode | ITElement | ITAttribute | ITText | ITDocument -> true
      | ITAtomic _ | ITItem -> false
    in
    if is_node a && is_node b then ITAnyNode else ITItem

(** Type of [if]-style alternatives. *)
let alt_ty a b =
  match (a, b) with
  | STEmpty, STEmpty -> STEmpty
  | STEmpty, STItems (it, o) | STItems (it, o), STEmpty ->
      STItems (it, occ_make ~lo:false ~hi:(occ_hi o))
  | STItems (i1, o1), STItems (i2, o2) ->
      STItems
        ( lub_item i1 i2,
          occ_make ~lo:(occ_lo o1 && occ_lo o2) ~hi:(occ_hi o1 || occ_hi o2) )

(** Type of a sequence concatenation. *)
let concat_ty (ts : seqtype list) : seqtype =
  let parts = List.filter (fun t -> t <> STEmpty) ts in
  match parts with
  | [] -> STEmpty
  | _ ->
      let item =
        List.fold_left
          (fun acc t ->
            match (acc, item_of t) with
            | None, it -> it
            | Some a, Some b -> Some (lub_item a b)
            | some, None -> some)
          None parts
      in
      let lo = List.exists (function STItems (_, o) -> occ_lo o | _ -> false) parts in
      let hi =
        List.length parts > 1
        || List.exists (function STItems (_, o) -> occ_hi o | _ -> false) parts
      in
      STItems (Option.value item ~default:ITItem, occ_make ~lo ~hi)

let any = STItems (ITItem, OccStar)
let bool_one = STItems (ITAtomic A.TBoolean, OccOne)
let string_one = STItems (ITAtomic A.TString, OccOne)
let int_one = STItems (ITAtomic A.TInteger, OccOne)

(* ------------------------------------------------------------------ *)
(* Built-in function signatures                                        *)
(* ------------------------------------------------------------------ *)

type arity = Exact of int list | AtLeast of int

(** Mirrors the dispatch in [Xquery.Functions.call]. *)
let fn_arities : (string * arity) list =
  [
    ("position", Exact [ 0 ]);
    ("last", Exact [ 0 ]);
    ("count", Exact [ 1 ]);
    ("exists", Exact [ 1 ]);
    ("empty", Exact [ 1 ]);
    ("not", Exact [ 1 ]);
    ("boolean", Exact [ 1 ]);
    ("zero-or-one", Exact [ 1 ]);
    ("exactly-one", Exact [ 1 ]);
    ("one-or-more", Exact [ 1 ]);
    ("data", Exact [ 0; 1 ]);
    ("string", Exact [ 0; 1 ]);
    ("string-length", Exact [ 0; 1 ]);
    ("normalize-space", Exact [ 1 ]);
    ("concat", AtLeast 2);
    ("string-join", Exact [ 2 ]);
    ("contains", Exact [ 2 ]);
    ("starts-with", Exact [ 2 ]);
    ("ends-with", Exact [ 2 ]);
    ("substring", Exact [ 2; 3 ]);
    ("translate", Exact [ 3 ]);
    ("deep-equal", Exact [ 2 ]);
    ("round-half-to-even", Exact [ 1 ]);
    ("upper-case", Exact [ 1 ]);
    ("lower-case", Exact [ 1 ]);
    ("number", Exact [ 0; 1 ]);
    ("sum", Exact [ 1 ]);
    ("avg", Exact [ 1 ]);
    ("min", Exact [ 1 ]);
    ("max", Exact [ 1 ]);
    ("abs", Exact [ 1 ]);
    ("floor", Exact [ 1 ]);
    ("ceiling", Exact [ 1 ]);
    ("round", Exact [ 1 ]);
    ("distinct-values", Exact [ 1 ]);
    ("reverse", Exact [ 1 ]);
    ("subsequence", Exact [ 2 ]);
    ("root", Exact [ 0; 1 ]);
    ("name", Exact [ 0; 1 ]);
    ("local-name", Exact [ 0; 1 ]);
    ("namespace-uri", Exact [ 0; 1 ]);
    ("true", Exact [ 0 ]);
    ("false", Exact [ 0 ]);
    ("collection", Exact [ 1 ]);
  ]

let arity_ok (a : arity) (n : int) =
  match a with Exact ns -> List.mem n ns | AtLeast k -> n >= k

let arity_to_string = function
  | Exact [ n ] -> string_of_int n
  | Exact ns -> String.concat " or " (List.map string_of_int ns)
  | AtLeast k -> Printf.sprintf "at least %d" k

let fn_result (local : string) (arg_tys : seqtype list) : seqtype =
  let arg0 = match arg_tys with t :: _ -> Some t | [] -> None in
  match local with
  | "position" | "last" | "count" | "string-length" -> int_one
  | "exists" | "empty" | "not" | "boolean" | "contains" | "starts-with"
  | "ends-with" | "true" | "false" | "deep-equal" ->
      bool_one
  | "string" | "normalize-space" | "concat" | "string-join" | "substring"
  | "translate" | "upper-case" | "lower-case" | "name" | "local-name"
  | "namespace-uri" ->
      string_one
  | "number" -> STItems (ITAtomic A.TDouble, OccOne)
  | "sum" -> STItems (ITAtomic A.TDouble, OccOne)
  | "avg" | "abs" | "floor" | "ceiling" | "round" | "round-half-to-even" ->
      STItems (ITAtomic A.TDouble, OccOpt)
  | "min" | "max" -> STItems (ITItem, OccOpt)
  | "data" -> (
      match arg0 with
      | Some (STItems (_, o)) -> STItems (ITAtomic A.TUntyped, o)
      | Some STEmpty -> STEmpty
      | None -> STItems (ITAtomic A.TUntyped, OccStar))
  | "distinct-values" -> STItems (ITAtomic A.TUntyped, OccStar)
  | "reverse" -> ( match arg0 with Some t -> t | None -> any)
  | "subsequence" -> (
      match arg0 with
      | Some (STItems (it, o)) -> STItems (it, occ_make ~lo:false ~hi:(occ_hi o))
      | _ -> any)
  | "zero-or-one" -> (
      match arg0 with
      | Some (STItems (it, _)) -> STItems (it, OccOpt)
      | _ -> STItems (ITItem, OccOpt))
  | "exactly-one" -> (
      match arg0 with
      | Some (STItems (it, _)) -> STItems (it, OccOne)
      | _ -> STItems (ITItem, OccOne))
  | "one-or-more" -> (
      match arg0 with
      | Some (STItems (it, o)) -> STItems (it, occ_make ~lo:true ~hi:(occ_hi o))
      | _ -> STItems (ITItem, OccPlus))
  | "root" -> STItems (ITDocument, OccOne)
  | "collection" -> STItems (ITDocument, OccStar)
  | _ -> any

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)
(* ------------------------------------------------------------------ *)

type state = {
  locs : Locs.t option;
  emit : Diag.t -> unit;
}

and env = { vars : seqtype SMap.t; ctx : seqtype option }

(** Best-known position for [e]: its own recorded position, else the
    nearest located ancestor's. *)
let loc_of (st : state) (ploc : Xdm.Srcloc.pos option) (e : expr) :
    Xdm.Srcloc.pos option =
  match Option.bind st.locs (fun l -> Locs.find l e) with
  | Some p -> Some p
  | None -> ploc

(** Definite comparison class of a sequence type: known only for definite
    non-untyped atomic item types. *)
let cmp_class_of = function
  | STItems (ITAtomic t, _) when t <> A.TUntyped -> (
      match P.class_of_atomic_type t with
      | P.CUnknown -> None
      | c -> Some (c, t))
  | _ -> None

let is_definitely_atomic = function
  | STItems (ITAtomic _, _) -> true
  | _ -> false

let rec infer (st : state) (env : env) (ploc : Xdm.Srcloc.pos option)
    (e : expr) : seqtype =
  let ploc = loc_of st ploc e in
  let emit ~code ~severity fmt =
    Format.kasprintf
      (fun message ->
        st.emit { Diag.code; severity; pos = ploc; message; tip = None })
      fmt
  in
  match e with
  | ELit a -> STItems (ITAtomic (A.type_of a), OccOne)
  | EVar v -> (
      match SMap.find_opt v env.vars with
      | Some t -> t
      | None -> any)
  | EContext -> Option.value env.ctx ~default:(STItems (ITItem, OccOne))
  | ESeq es -> concat_ty (List.map (infer st env ploc) es)
  | EPath (start, steps) ->
      let init =
        match start with
        | Absolute | AbsDesc -> STItems (ITDocument, OccOne)
        | Relative ->
            Option.value env.ctx ~default:(STItems (ITItem, OccOne))
      in
      List.fold_left (fun cur s -> infer_step st env ploc cur s) init steps
  | EFlwor (clauses, ret) ->
      let env, looped, filtered =
        List.fold_left
          (fun (env, looped, filtered) c ->
            match c with
            | CFor binds ->
                let env =
                  List.fold_left
                    (fun env (v, src) ->
                      let t = infer st env ploc src in
                      let vt =
                        match t with
                        | STItems (it, _) -> STItems (it, OccOne)
                        | STEmpty -> STItems (ITItem, OccOne)
                      in
                      { env with vars = SMap.add v vt env.vars })
                    env binds
                in
                (env, true, filtered)
            | CLet binds ->
                let env =
                  List.fold_left
                    (fun env (v, src) ->
                      let t = infer st env ploc src in
                      { env with vars = SMap.add v t env.vars })
                    env binds
                in
                (env, looped, filtered)
            | CWhere cond ->
                ignore (infer st env ploc cond);
                (env, looped, true)
            | COrder keys ->
                List.iter (fun (k, _) -> ignore (infer st env ploc k)) keys;
                (env, looped, filtered))
          (env, false, false) clauses
      in
      let t = infer st env ploc ret in
      if looped then
        match t with
        | STEmpty -> STEmpty
        | STItems (it, _) -> STItems (it, OccStar)
      else if filtered then
        match t with
        | STEmpty -> STEmpty
        | STItems (it, o) -> STItems (it, occ_make ~lo:false ~hi:(occ_hi o))
      else t
  | EQuant (_, binds, sat) ->
      let env =
        List.fold_left
          (fun env (v, src) ->
            let t = infer st env ploc src in
            let vt =
              match t with
              | STItems (it, _) -> STItems (it, OccOne)
              | STEmpty -> STItems (ITItem, OccOne)
            in
            { env with vars = SMap.add v vt env.vars })
          env binds
      in
      ignore (infer st env ploc sat);
      bool_one
  | EIf (c, a, b) ->
      ignore (infer st env ploc c);
      alt_ty (infer st env ploc a) (infer st env ploc b)
  | EAnd (a, b) | EOr (a, b) ->
      ignore (infer st env ploc a);
      ignore (infer st env ploc b);
      bool_one
  | EGCmp (op, a, b) ->
      check_comparison st env ploc (gcmp_to_string op) a b;
      bool_one
  | EVCmp (op, a, b) ->
      check_comparison st env ploc (vcmp_to_string op) a b;
      (* a value comparison over empty operands is empty *)
      STItems (ITAtomic A.TBoolean, OccOpt)
  | ENCmp (_, a, b) ->
      ignore (infer st env ploc a);
      ignore (infer st env ploc b);
      bool_one
  | EArith (_, a, b) ->
      let ta = infer st env ploc a and tb = infer st env ploc b in
      List.iter
        (fun t ->
          match cmp_class_of t with
          | Some (cls, aty) when cls <> P.CNumeric ->
              emit ~code:"XPTY0004" ~severity:Diag.Error
                "arithmetic on %s operand in '%s'" (A.type_name aty)
                (expr_to_string e)
          | _ -> ())
        [ ta; tb ];
      let definite_numeric t =
        match cmp_class_of t with Some (P.CNumeric, _) -> true | _ -> false
      in
      if definite_numeric ta && definite_numeric tb then
        STItems (ITAtomic A.TDouble, OccOne)
      else STItems (ITItem, OccOpt)
  | ENeg a ->
      (match cmp_class_of (infer st env ploc a) with
      | Some (cls, aty) when cls <> P.CNumeric ->
          emit ~code:"XPTY0004" ~severity:Diag.Error
            "unary minus on %s operand" (A.type_name aty)
      | _ -> ());
      STItems (ITAtomic A.TDouble, OccOne)
  | ERange (a, b) ->
      List.iter
        (fun x ->
          match cmp_class_of (infer st env ploc x) with
          | Some (cls, aty) when cls <> P.CNumeric ->
              emit ~code:"XPTY0004" ~severity:Diag.Error
                "'to' requires integer operands, got %s" (A.type_name aty)
          | _ -> ())
        [ a; b ];
      STItems (ITAtomic A.TInteger, OccStar)
  | EUnion (a, b) | EIntersect (a, b) | EExcept (a, b) ->
      let ta = infer st env ploc a and tb = infer st env ploc b in
      List.iter
        (fun t ->
          if is_definitely_atomic t then
            emit ~code:"XPTY0004" ~severity:Diag.Error
              "operands of a set operation must be nodes, not atomic \
               values")
        [ ta; tb ];
      let it =
        match (item_of ta, item_of tb) with
        | Some a, Some b when a = b -> a
        | _ -> ITAnyNode
      in
      STItems (it, OccStar)
  | ECast (a, target) ->
      let ta = infer st env ploc a in
      if possibly_many ta then
        emit ~code:"XPTY0004" ~severity:Diag.Warning
          "'cast as %s' applies to a sequence that may contain more than \
           one item; the cast raises XPTY0004 at runtime on multi-valued \
           input (Section 3.3)"
          (A.type_name target);
      (match a with
      | ELit lit -> (
          match A.cast lit target with
          | _ -> ()
          | exception _ ->
              emit ~code:"FORG0001" ~severity:Diag.Error
                "cast of %s to %s always fails"
                (expr_to_string a) (A.type_name target))
      | _ -> ());
      let lo =
        match ta with STItems (_, o) -> occ_lo o | STEmpty -> false
      in
      STItems (ITAtomic target, occ_make ~lo ~hi:false)
  | ECastable (a, _) ->
      ignore (infer st env ploc a);
      bool_one
  | EInstanceOf (a, _) ->
      ignore (infer st env ploc a);
      bool_one
  | ECall { prefix; local; args } ->
      let arg_tys = List.map (infer st env ploc) args in
      let n = List.length args in
      (match prefix with
      | "" | "fn" -> (
          match List.assoc_opt local fn_arities with
          | Some a when arity_ok a n -> ()
          | Some a ->
              emit ~code:"XPST0017" ~severity:Diag.Error
                "fn:%s expects %s argument%s, got %d" local
                (arity_to_string a)
                (match a with Exact [ 1 ] -> "" | _ -> "s")
                n
          | None ->
              emit ~code:"XPST0017" ~severity:Diag.Error
                "unknown function fn:%s" local)
      | "db2-fn" ->
          if local <> "xmlcolumn" || n <> 1 then
            emit ~code:"XPST0017" ~severity:Diag.Error
              "unknown function db2-fn:%s/%d" local n
      | "xqdb" ->
          if local <> "between" || n <> 3 then
            emit ~code:"XPST0017" ~severity:Diag.Error
              "unknown function xqdb:%s/%d" local n
      | _ ->
          emit ~code:"XPST0017" ~severity:Diag.Error
            "unknown function %s:%s" prefix local);
      (match (prefix, local) with
      | ("" | "fn"), _ -> fn_result local arg_tys
      | "db2-fn", "xmlcolumn" -> STItems (ITDocument, OccStar)
      | "xqdb", "between" -> bool_one
      | _ -> any)
  | EElem c ->
      iter_ctor_exprs st env ploc c;
      STItems (ITElement, OccOne)
  | EElemComp { cn_expr; cbody; _ } ->
      Option.iter (fun e -> ignore (infer st env ploc e)) cn_expr;
      ignore (infer st env ploc cbody);
      STItems (ITElement, OccOne)
  | EAttrComp { an_expr; abody; _ } ->
      Option.iter (fun e -> ignore (infer st env ploc e)) an_expr;
      ignore (infer st env ploc abody);
      STItems (ITAttribute, OccOne)
  | ETextComp e ->
      ignore (infer st env ploc e);
      STItems (ITText, OccOne)

and iter_ctor_exprs st env ploc (c : ctor) =
  List.iter
    (fun (_, pieces) ->
      List.iter
        (function
          | APExpr e -> ignore (infer st env ploc e) | APText _ -> ())
        pieces)
    c.cattrs;
  List.iter
    (function CPExpr e -> ignore (infer st env ploc e) | CPText _ -> ())
    c.ccontent

(** Both sides of a (general or value) comparison: flag definitely
    incomparable static types. Occurrence is deliberately NOT checked
    here: [id eq $x] inside a predicate is the paper's *recommended*
    Query 13 formulation even though [id] is statically [*]. *)
and check_comparison st env ploc opname a b =
  let ta = infer st env ploc a and tb = infer st env ploc b in
  match (cmp_class_of ta, cmp_class_of tb) with
  | Some (ca, tya), Some (cb, tyb) when ca <> cb ->
      st.emit
        (Diag.make ?pos:ploc ~code:"XPTY0004" ~severity:Diag.Error
           "cannot compare %s to %s with '%s'" (A.type_name tya)
           (A.type_name tyb) opname)
  | _ -> ()

and combine_step (cur : seqtype) (t : seqtype) : seqtype =
  match (cur, t) with
  | STEmpty, _ | _, STEmpty -> STEmpty
  | STItems (_, o1), STItems (it, o2) ->
      STItems
        (it, occ_make ~lo:(occ_lo o1 && occ_lo o2) ~hi:(occ_hi o1 || occ_hi o2))

and infer_step st env ploc (cur : seqtype) (s : step) : seqtype =
  match s with
  | SExpr { expr; preds } ->
      let per_item =
        match cur with
        | STEmpty -> STItems (ITItem, OccOne)
        | STItems (it, _) -> STItems (it, OccOne)
      in
      let env' = { env with ctx = Some per_item } in
      let t = infer st env' ploc expr in
      let t = apply_preds st env' ploc t preds in
      combine_step cur t
  | SAxis { axis; test; preds } ->
      (* stepping below atomic values is a type error *)
      (match cur with
      | STItems (ITAtomic aty, _) ->
          st.emit
            (Diag.make ?pos:ploc ~code:"XPTY0019" ~severity:Diag.Error
               "a path step (%s::%s) cannot be applied to atomic values \
                (%s)"
               (axis_name axis) (nodetest_to_string test) (A.type_name aty))
      | _ -> ());
      (* attributes and text nodes have nothing below them *)
      (match (cur, axis) with
      | STItems ((ITAttribute | ITText) as it, _), (Child | Descendant | Attr)
        ->
          st.emit
            (Diag.make ?pos:ploc ~code:"XQLINT023" ~severity:Diag.Warning
               "the step %s::%s after a%s step never selects anything: \
                attribute and text nodes have no children or attributes \
                (Section 3.9)"
               (axis_name axis) (nodetest_to_string test)
               (match it with
               | ITAttribute -> "n attribute"
               | _ -> " text()"))
      | _ -> ());
      let in_item =
        match cur with STItems (it, _) -> it | STEmpty -> ITItem
      in
      let item =
        match (axis, test) with
        | Attr, _ -> ITAttribute
        | _, Kind KText -> ITText
        | _, Kind (KComment | KPi _) -> ITAnyNode
        | _, Kind KDocument -> ITDocument
        | Self, Kind KAnyNode -> in_item
        | Self, Name _ -> (
            match in_item with ITAtomic _ | ITItem -> ITElement | it -> it)
        | (Parent | Ancestor | AncestorOrSelf), Kind KAnyNode -> ITAnyNode
        | ( ( Child | Descendant | DescOrSelf | Parent | Ancestor
            | AncestorOrSelf | FollowingSibling | PrecedingSibling ),
            Name _ ) ->
            ITElement
        | (Child | Descendant | DescOrSelf | FollowingSibling | PrecedingSibling),
          Kind KAnyNode ->
            ITAnyNode
      in
      let at_most_one_per_item =
        match (axis, test) with
        | Attr, Name (TName _) -> true
        | (Parent | Self), _ -> true
        | _ -> false
      in
      let occ_in =
        match cur with STItems (_, o) -> o | STEmpty -> OccOne
      in
      let occ =
        if at_most_one_per_item then occ_make ~lo:false ~hi:(occ_hi occ_in)
        else OccStar
      in
      let t = STItems (item, occ) in
      let env' = { env with ctx = Some (STItems (item, OccOne)) } in
      apply_preds st env' ploc t preds

and apply_preds st env ploc (t : seqtype) (preds : expr list) : seqtype =
  List.iter (fun p -> ignore (infer st env ploc p)) preds;
  match (preds, t) with
  | [], _ | _, STEmpty -> t
  | _, STItems (it, o) -> STItems (it, occ_make ~lo:false ~hi:(occ_hi o))

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Infer the type of a whole query body, emitting diagnostics through
    [emit]. [vars] pre-binds external variables (e.g. PASSING clause
    entries of an embedded query). *)
let infer_query ?(vars : (string * seqtype) list = []) ?locs
    ~(emit : Diag.t -> unit) (q : query) : seqtype =
  let st = { locs; emit } in
  let env =
    {
      vars = List.fold_left (fun m (v, t) -> SMap.add v t m) SMap.empty vars;
      ctx = None;
    }
  in
  infer st env None q.body

(** Convenience: just the inferred type, diagnostics discarded. *)
let type_of_query ?vars ?locs (q : query) : seqtype =
  infer_query ?vars ?locs ~emit:(fun _ -> ()) q
