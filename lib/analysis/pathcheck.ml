(** Unreachable- and contradictory-path detection.

    Structural checks over path expressions that do not need the full
    type system:

    - [XQLINT015]: positional predicates ([\[1\]], [\[position() = 2\]]) —
      they never eliminate documents, so no index can serve them
      (paper Section 2.2);
    - [XQLINT020]: contradictory equality predicates over a provably
      singleton operand ([@x = 1][@x = 2], [.[. = "a" and . = "b"]]);
    - [XQLINT021]: predicates that constant-fold to always-true or
      always-false ([\[1 = 2\]], [\["abc"\]]);
    - [XQLINT022]: with a registered schema, steps whose element or
      attribute name cannot occur in any schema rule.

    (Steps below attribute/text nodes — [XQLINT023] — are reported by
    {!Typecheck}, which tracks node kinds.) *)

open Xquery.Ast
module A = Xdm.Atomic
module Pat = Xmlindex.Pattern

(* ------------------------------------------------------------------ *)
(* Constant folding over literal-only expressions                      *)
(* ------------------------------------------------------------------ *)

(** Evaluate an expression built purely from literals (and true()/false())
    to its atomic-sequence value. [None] = not constant, or evaluation
    would raise. *)
let rec const_atoms (e : expr) : A.t list option =
  let both a b = Option.bind (const_atoms a) (fun xa ->
      Option.map (fun xb -> (xa, xb)) (const_atoms b))
  in
  match e with
  | ELit a -> Some [ a ]
  | ESeq es ->
      List.fold_left
        (fun acc e ->
          match (acc, const_atoms e) with
          | Some xs, Some ys -> Some (xs @ ys)
          | _ -> None)
        (Some []) es
  | ECall { prefix = "" | "fn"; local = "true"; args = [] } ->
      Some [ A.Boolean true ]
  | ECall { prefix = "" | "fn"; local = "false"; args = [] } ->
      Some [ A.Boolean false ]
  | EGCmp (op, a, b) -> (
      match both a b with
      | Some (xa, xb) -> (
          try Some [ A.Boolean (Xquery.Compare.general (Xquery.Compare.op_of_gcmp op) xa xb) ]
          with _ -> None)
      | None -> None)
  | EVCmp (op, a, b) -> (
      match both a b with
      | Some (xa, xb) -> (
          try
            match Xquery.Compare.value (Xquery.Compare.op_of_vcmp op) xa xb with
            | Some r -> Some [ A.Boolean r ]
            | None -> Some []
          with _ -> None)
      | None -> None)
  | EAnd (a, b) -> (
      match both a b with
      | Some (xa, xb) -> (
          try Some [ A.Boolean (const_ebv xa && const_ebv xb) ]
          with _ -> None)
      | None -> None)
  | EOr (a, b) -> (
      match both a b with
      | Some (xa, xb) -> (
          try Some [ A.Boolean (const_ebv xa || const_ebv xb) ]
          with _ -> None)
      | None -> None)
  | _ -> None

and const_ebv (atoms : A.t list) : bool =
  Xdm.Item.ebv (List.map (fun a -> Xdm.Item.A a) atoms)

(* ------------------------------------------------------------------ *)
(* Contradiction detection                                             *)
(* ------------------------------------------------------------------ *)

(** An expression that denotes at most one value per context node, usable
    as a contradiction key: the context itself or a named attribute. *)
let singleton_key = function
  | EContext -> Some "."
  | EPath (Relative, [ SAxis { axis = Attr; test = Name (TName q); preds = [] } ])
    ->
      Some ("@" ^ Xdm.Qname.to_string q)
  | _ -> None

(** Equality constraints [key = literal] pulled from one predicate
    (flattening top-level 'and'). *)
let rec eq_constraints (p : expr) : (string * A.t) list =
  match p with
  | EAnd (a, b) -> eq_constraints a @ eq_constraints b
  | EGCmp (GEq, a, b) | EVCmp (VEq, a, b) -> (
      match ((singleton_key a, b), (singleton_key b, a)) with
      | (Some k, ELit c), _ | _, (Some k, ELit c) -> [ (k, c) ]
      | _ -> [])
  | _ -> []

(** Can both constraints hold of one value? [false] = contradiction. *)
let compatible (a : A.t) (b : A.t) : bool =
  try Xquery.Compare.general Xquery.Compare.Eq [ a ] [ b ]
  with _ -> true (* incomparable literals: stay silent *)

(* ------------------------------------------------------------------ *)
(* The pass                                                            *)
(* ------------------------------------------------------------------ *)

let check ?(schema : Xschema.t option) ?(locs : Locs.t option)
    ~(emit : Diag.t -> unit) (q : query) : unit =
  let loc e = Option.bind locs (fun l -> Locs.find l e) in
  (* names that can occur according to the schema; None = no schema or the
     schema has wildcard rules, so the check is off *)
  let schema_names =
    match schema with
    | None -> None
    | Some s ->
        let names = Hashtbl.create 16 in
        let wildcard = ref false in
        List.iter
          (fun (r : Xschema.rule) ->
            List.iter
              (fun (ps : Pat.pstep) ->
                List.iter
                  (function
                    | Pat.TestName qn ->
                        Hashtbl.replace names qn.Xdm.Qname.local ()
                    | Pat.TestLocalStar l -> Hashtbl.replace names l ()
                    | Pat.TestNsStar _ | Pat.TestStar | Pat.TestKindAny
                    | Pat.TestKindText | Pat.TestKindComment
                    | Pat.TestKindPi _ ->
                        wildcard := true)
                  ps.Pat.tests)
              r.Xschema.rpattern.Pat.steps)
          s.Xschema.rules;
        if !wildcard then None else Some names
  in
  let check_step path_pos (s : step) =
    let preds =
      match s with SAxis { preds; _ } | SExpr { preds; _ } -> preds
    in
    let pred_pos p = match loc p with Some _ as l -> l | None -> path_pos in
    (* XQLINT015: positional predicates *)
    List.iter
      (fun p ->
        if Eligibility.Extract.is_positional p then
          emit
            (Diag.make ?pos:(pred_pos p) ~code:"XQLINT015"
               ~severity:Diag.Warning
               "positional predicate [%s] selects by position, not by \
                value: it can never eliminate documents and no index can \
                serve it (Section 2.2)"
               (expr_to_string p)))
      preds;
    (* XQLINT021: constant predicates *)
    List.iter
      (fun p ->
        if not (Eligibility.Extract.is_positional p) then
          match const_atoms p with
          | Some atoms -> (
              match const_ebv atoms with
              | v ->
                  emit
                    (Diag.make ?pos:(pred_pos p) ~code:"XQLINT021"
                       ~severity:Diag.Warning
                       "predicate [%s] is constant: it is always %s%s"
                       (expr_to_string p)
                       (if v then "true" else "false")
                       (if v then " and filters nothing"
                        else ", so this step never selects anything"))
              | exception _ -> ())
          | None -> ())
      preds;
    (* XQLINT020: contradictory singleton constraints across this step's
       predicates *)
    let constraints =
      List.concat_map (fun p -> List.map (fun c -> (p, c)) (eq_constraints p)) preds
    in
    let rec pairs = function
      | [] -> ()
      | (p1, (k1, c1)) :: rest ->
          List.iter
            (fun (_, (k2, c2)) ->
              if k1 = k2 && not (compatible c1 c2) then
                emit
                  (Diag.make ?pos:(pred_pos p1) ~code:"XQLINT020"
                     ~severity:Diag.Warning
                     "contradictory predicates: %s cannot equal both %s \
                      and %s — this step always selects nothing"
                     k1
                     (A.string_value c1) (A.string_value c2)))
            rest;
          pairs rest
    in
    pairs constraints;
    (* XQLINT022: schema-impossible step names *)
    (match (schema_names, s) with
    | ( Some names,
        SAxis { axis = Child | Descendant | DescOrSelf | Attr; test = Name (TName qn); _ } )
      ->
        if not (Hashtbl.mem names qn.Xdm.Qname.local) then
          emit
            (Diag.make ?pos:path_pos ~code:"XQLINT022" ~severity:Diag.Warning
               "the name '%s' does not occur in the registered schema: \
                this step can never match validated documents"
               qn.Xdm.Qname.local)
    | _ -> ())
  in
  Xquery.Walk.iter_expr
    (function
      | EPath (_, steps) as p -> List.iter (check_step (loc p)) steps
      | _ -> ())
    q.body
