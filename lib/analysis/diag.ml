(** Structured diagnostics produced by the static analyzer.

    A diagnostic carries a stable code (either a W3C error code such as
    [XPTY0004] / [FORG0001] / [XPST0017], or an [XQLINT0xx] lint-rule
    code from {!Rules}), a severity, an optional source position and a
    human message. Lint diagnostics that reproduce one of the paper's
    Tips 1–12 (or the Section 3.10 "between" guidance) also carry the tip
    number, which is how the advisor renders them. *)

type severity = Error | Warning | Hint

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

type t = {
  code : string;  (** [XPTY0004], [XQLINT007], ... *)
  severity : severity;
  pos : Xdm.Srcloc.pos option;  (** position in the analyzed statement *)
  message : string;
  tip : int option;  (** paper tip number (1–13) for lint rules *)
}

let make ?pos ?tip ~code ~severity fmt =
  Format.kasprintf
    (fun message -> { code; severity; pos; message; tip })
    fmt

let is_error d = d.severity = Error

(** Sort for presentation: by position (unlocated diagnostics last), then
    by severity (errors first), then by code. *)
let compare (a : t) (b : t) =
  let pos_key = function
    | Some (p : Xdm.Srcloc.pos) -> p.Xdm.Srcloc.offset
    | None -> max_int
  in
  let sev_key = function Error -> 0 | Warning -> 1 | Hint -> 2 in
  match Int.compare (pos_key a.pos) (pos_key b.pos) with
  | 0 -> (
      match Int.compare (sev_key a.severity) (sev_key b.severity) with
      | 0 -> String.compare a.code b.code
      | c -> c)
  | c -> c

(** One-line rendering: [error[XPTY0004] line 3, column 10: message].
    With [~src], a caret snippet pointing into the source follows. *)
let to_string ?src (d : t) : string =
  let loc =
    match d.pos with
    | Some p -> " " ^ Xdm.Srcloc.to_string p
    | None -> ""
  in
  let head =
    Printf.sprintf "%s[%s]%s: %s"
      (severity_to_string d.severity)
      d.code loc d.message
  in
  match (src, d.pos) with
  | Some src, Some p -> head ^ "\n" ^ Xdm.Srcloc.caret_snippet src p
  | _ -> head

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (d : t) : string =
  let fields =
    [
      Printf.sprintf "\"code\":\"%s\"" (json_escape d.code);
      Printf.sprintf "\"severity\":\"%s\"" (severity_to_string d.severity);
    ]
    @ (match d.pos with
      | Some p ->
          [
            Printf.sprintf "\"line\":%d" p.Xdm.Srcloc.line;
            Printf.sprintf "\"column\":%d" p.Xdm.Srcloc.col;
          ]
      | None -> [])
    @ [ Printf.sprintf "\"message\":\"%s\"" (json_escape d.message) ]
    @ (match d.tip with
      | Some n -> [ Printf.sprintf "\"tip\":%d" n ]
      | None -> [])
  in
  "{" ^ String.concat "," fields ^ "}"

let list_to_json (ds : t list) : string =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
