(** Pitfall lint rules: the paper's Tips 1–12 and the Section 3.10
    "between" guidance as located diagnostics, plus rules derived from the
    same semantics ([XQLINT014] absolute paths in embedded queries,
    [XQLINT016] string-vs-number comparisons against a numeric index).

    This is the rule engine behind both [Engine.advise] (which renders
    the tip-numbered subset) and [Engine.analyze] / [\lint] (which report
    everything). The detail strings are the advisor's original wording. *)

open Xquery.Ast
module P = Eligibility.Predicate
module M = Eligibility.Match_index
module X = Xmlindex.Xindex
module Walk = Xquery.Walk

let mk ?pos (tip : int) fmt =
  Format.kasprintf
    (fun message ->
      {
        Diag.code = Rules.code_of_tip tip;
        severity = Rules.severity_of (Rules.code_of_tip tip);
        pos;
        message;
        tip = Some tip;
      })
    fmt

let has_nonpositional_pred steps =
  List.exists
    (function
      | SAxis { preds; _ } | SExpr { preds; _ } ->
          List.exists
            (fun p -> not (Eligibility.Extract.is_positional p))
            preds)
    steps

let is_boolean_valued = function
  | EGCmp _ | EVCmp _ | EAnd _ | EOr _ | EQuant _ | ECastable _ -> true
  | ECall { prefix = "" | "fn"; local; _ } ->
      List.mem local
        [ "exists"; "empty"; "not"; "boolean"; "contains"; "starts-with"; "ends-with"; "true"; "false" ]
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Locating catalog-derived findings                                   *)
(* ------------------------------------------------------------------ *)

(** The eligibility extractor identifies comparisons by their printed
    [source] string ("lhs <op> rhs"). To give catalog-based findings a
    position, render every comparison in the query the same way and map
    the strings back to recorded positions. *)
let comparison_loc_table (locs : Locs.t option) (q : query) :
    (string * Xdm.Srcloc.pos) list =
  match locs with
  | None -> []
  | Some locs ->
      let out = ref [] in
      let ops = [ "="; "!="; "<"; "<="; ">"; ">=" ] in
      Walk.iter_expr
        (fun e ->
          match e with
          | EGCmp (_, a, b) | EVCmp (_, a, b) -> (
              match Locs.find locs e with
              | Some pos ->
                  let sa = expr_to_string a and sb = expr_to_string b in
                  List.iter
                    (fun op ->
                      out :=
                        (sa ^ " " ^ op ^ " " ^ sb, pos)
                        :: (sb ^ " " ^ op ^ " " ^ sa, pos)
                        :: !out)
                    ops
              | None -> ())
          | _ -> ())
        q.body;
      !out

(* ------------------------------------------------------------------ *)
(* XQuery-level rules                                                  *)
(* ------------------------------------------------------------------ *)

(** Tips checked directly on an XQuery AST + its predicate tree, plus
    [XQLINT016]. [locs] provides positions when available. *)
let xquery_lint ?(catalog : Planner.catalog option)
    ?(xml_params : (string * string) list = [])
    ?(scalar_params : (string * Xdm.Atomic.atomic_type option) list = [])
    ?(locs : Locs.t option) (q : query) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc e = Option.bind locs (fun l -> Locs.find l e) in
  let cmp_locs = comparison_loc_table locs q in
  let source_loc (src : string) = List.assoc_opt src cmp_locs in
  let tree = Eligibility.Extract.analyze ~xml_params ~scalar_params q in
  let leaves = P.leaves tree in
  (* ---- Tip 1: cast-less joins ---- *)
  List.iter
    (fun (l : P.leaf) ->
      match l.P.operand with
      | P.OJoin { jcast = None; _ } ->
          add
            (mk ?pos:(source_loc l.P.source) 1
               "the comparison '%s' has no provable data type; no index \
                can serve it. Wrap both sides in casts like \
                $x/path/xs:double(.)"
               l.P.source)
      | _ -> ())
    leaves;
  (* ---- Tip 7: predicates under constructors in return clauses ---- *)
  Walk.iter_expr
    (function
      | EFlwor (_, EElem c) ->
          List.iter
            (function
              | CPExpr (EPath (_, steps) as pe) when has_nonpositional_pred steps ->
                  add
                    (mk ?pos:(loc pe) 7
                       "a predicate inside the constructor <%s> cannot \
                        eliminate documents: an empty element is returned \
                        for non-qualifying nodes, so no index applies \
                        (Query 19 vs Query 22)"
                       (Xdm.Qname.to_string c.cname))
              | _ -> ())
            c.ccontent
      | _ -> ())
    q.body;
  (* ---- Tips 8/9: constructed contexts ---- *)
  let ctor_vars = Hashtbl.create 4 in
  let rec returns_ctor = function
    | EElem _ | EElemComp _ -> true
    | EVar v -> Hashtbl.mem ctor_vars v
    | EFlwor (_, ret) -> returns_ctor ret
    | EIf (_, a, b) -> returns_ctor a || returns_ctor b
    | ESeq es -> List.exists returns_ctor es
    | EPath (Relative, [ SExpr { expr; _ } ]) -> returns_ctor expr
    | _ -> false
  in
  Walk.iter_expr
    (function
      | EFlwor (clauses, _) ->
          List.iter
            (function
              | CFor binds | CLet binds ->
                  List.iter
                    (fun (v, e) ->
                      if returns_ctor e then Hashtbl.replace ctor_vars v ())
                    binds
              | _ -> ())
            clauses
      | _ -> ())
    q.body;
  Walk.iter_expr
    (fun outer ->
      match outer with
      | EPath (Relative, SExpr { expr = EVar v; preds } :: rest)
        when Hashtbl.mem ctor_vars v ->
          let uses_absolute = ref false in
          List.iter
            (Walk.iter_expr (function
              | EPath ((Absolute | AbsDesc), _) -> uses_absolute := true
              | _ -> ()))
            preds;
          List.iter
            (Walk.iter_step (fun e ->
                 match e with
                 | EPath ((Absolute | AbsDesc), _) -> uses_absolute := true
                 | _ -> ()))
            rest;
          if !uses_absolute then
            add
              (mk ?pos:(loc outer) 8
                 "$%s is bound to a constructed element; an absolute path \
                  (leading '/') over it raises a type error at runtime \
                  (Query 25)"
                 v)
          else if
            has_nonpositional_pred rest
            || List.exists
                 (fun p -> not (Eligibility.Extract.is_positional p))
                 preds
          then
            add
              (mk ?pos:(loc outer) 9
                 "predicates over $%s apply to *constructed* nodes \
                  (fresh identities, untyped values); they cannot be \
                  pushed to the base collection, so no index applies \
                  (Query 26 vs Query 27)"
                 v)
      | EGCmp (_, a, b) | EVCmp (_, a, b) ->
          (* a comparison over a path rooted at a constructed value *)
          let ctor_path = function
            | EPath (Relative, SExpr { expr = EVar v; _ } :: _)
            | EVar v ->
                if Hashtbl.mem ctor_vars v then Some v else None
            | _ -> None
          in
          (match (ctor_path a, ctor_path b) with
          | Some v, _ | _, Some v ->
              add
                (mk ?pos:(loc outer) 9
                   "the comparison tests *constructed* nodes bound to $%s \
                    (untypedAtomic values, concatenated multi-values, \
                    fresh identities); rewrite the predicate against the \
                    base collection before construction (Query 26 vs \
                    Query 27)"
                   v)
          | None, None -> ())
      | _ -> ())
    q.body;
  (* ---- Tips 10/11/12 + XQLINT016 need the index catalog ---- *)
  (match catalog with
  | None -> ()
  | Some cat ->
      let indexes = cat.Planner.indexes in
      let module Pat = Xmlindex.Pattern in
      (* erase namespace constraints from a pattern *)
      let strip_ns_pattern (p : Pat.t) =
        Pat.of_steps
          (List.map
             (fun (st : Pat.pstep) ->
               {
                 st with
                 Pat.tests =
                   List.map
                     (function
                       | Pat.TestName q ->
                           Pat.TestName { q with Xdm.Qname.uri = "" }
                       | Pat.TestNsStar _ -> Pat.TestStar
                       | t -> t)
                     st.Pat.tests;
               })
             p.Pat.steps)
      in
      let has_ns (p : Pat.t) =
        List.exists
          (fun (st : Pat.pstep) ->
            List.exists
              (function
                | Pat.TestName q -> q.Xdm.Qname.uri <> ""
                | Pat.TestNsStar _ -> true
                | _ -> false)
              st.Pat.tests)
          p.Pat.steps
      in
      (* drop a trailing text() step *)
      let strip_text_pattern (p : Pat.t) =
        match List.rev p.Pat.steps with
        | last :: rest when last.Pat.tests = [ Pat.TestKindText ] ->
            Some (Pat.of_steps (List.rev rest))
        | _ -> None
      in
      List.iter
        (fun (l : P.leaf) ->
          let pos = source_loc l.P.source in
          (* XQLINT016: string literal against a numeric index *)
          (match l.P.operand with
          | P.OConst c when Xdm.Atomic.type_of c = Xdm.Atomic.TString ->
              List.iter
                (fun (idx : X.t) ->
                  if
                    idx.X.def.X.vtype = X.VDouble
                    && Xmlindex.Containment.contains idx.X.def.X.pattern
                         l.P.path
                  then
                    add
                      {
                        Diag.code = "XQLINT016";
                        severity = Rules.severity_of "XQLINT016";
                        pos;
                        message =
                          Printf.sprintf
                            "'%s' compares the indexed path against a \
                             *string* literal: untyped data compares as \
                             string, so the DOUBLE index %s cannot serve \
                             the predicate (Section 3.1). Use a numeric \
                             literal"
                            l.P.source idx.X.def.X.iname;
                        tip = None;
                      })
                indexes
          | _ -> ());
          List.iter
            (fun (idx : X.t) ->
              match M.check_leaf idx.X.def l with
              | Error M.RNotContained ->
                  let qp = Xmlindex.Pattern.canonical_string l.P.path in
                  let ip =
                    Xmlindex.Pattern.canonical_string idx.X.def.X.pattern
                  in
                  (* Tip 10: the mismatch disappears when namespaces are
                     erased from both sides *)
                  if
                    (has_ns l.P.path || has_ns idx.X.def.X.pattern)
                    && Xmlindex.Containment.contains
                         (strip_ns_pattern idx.X.def.X.pattern)
                         (strip_ns_pattern l.P.path)
                  then
                    add
                      (mk ?pos 10
                         "index %s differs from the query path only in \
                          namespaces (index: %s, query: %s); declare the \
                          same namespaces or use *:name wildcards in the \
                          index"
                         idx.X.def.X.iname ip qp);
                  (* Tip 11: the mismatch is a trailing /text() step *)
                  (let q_stripped = strip_text_pattern l.P.path in
                   let i_stripped =
                     strip_text_pattern idx.X.def.X.pattern
                   in
                   let realigned =
                     match (q_stripped, i_stripped) with
                     | Some q', None ->
                         Xmlindex.Containment.contains idx.X.def.X.pattern q'
                     | None, Some i' ->
                         Xmlindex.Containment.contains i' l.P.path
                     | _ -> false
                   in
                   if realigned then
                     add
                       (mk ?pos 11
                          "index %s and the query disagree on a trailing \
                           /text() step (index: %s, query: %s); they index \
                           different nodes (Query 29)"
                          idx.X.def.X.iname ip qp));
                  (* attribute reachability: query wants attributes, index
                     pattern ends in a child-axis step *)
                  let q_last_attr =
                    match List.rev l.P.path.Xmlindex.Pattern.steps with
                    | s :: _ -> s.Xmlindex.Pattern.attr
                    | [] -> false
                  in
                  let i_last_attr =
                    match List.rev idx.X.def.X.pattern.Xmlindex.Pattern.steps with
                    | s :: _ -> s.Xmlindex.Pattern.attr
                    | [] -> false
                  in
                  if q_last_attr && not i_last_attr then
                    add
                      (mk ?pos 12
                         "index %s (%s) can never contain attribute nodes: \
                          child-axis steps (including //* and //node()) do \
                          not reach attributes; use //@* (Section 3.9)"
                         idx.X.def.X.iname ip)
              | _ -> ())
            indexes)
        leaves);
  (* ---- Section 3.10: unmergeable between pairs ---- *)
  let rec scan_between = function
    | P.PAnd children ->
        let consts =
          List.filter_map
            (function
              | P.PLeaf l when (match l.P.operand with P.OConst _ -> true | _ -> false)
                -> Some l
              | _ -> None)
            children
        in
        List.iter
          (fun (l : P.leaf) ->
            if l.P.op = P.CGt || l.P.op = P.CGe then
              List.iter
                (fun (u : P.leaf) ->
                  if
                    (u.P.op = P.CLt || u.P.op = P.CLe)
                    && Xmlindex.Pattern.canonical_string u.P.path
                       = Xmlindex.Pattern.canonical_string l.P.path
                    && not
                         ((l.P.value_cmp && u.P.value_cmp)
                         || (l.P.anchor = u.P.anchor && l.P.singleton_path
                            && u.P.singleton_path))
                  then
                    add
                      (mk ?pos:(source_loc l.P.source) 13
                         "'%s' and '%s' look like a between, but the \
                          compared item is not provably a singleton: a \
                          multi-valued node could satisfy each bound with \
                          a different value, so two index scans must be \
                          ANDed. Use value comparisons (gt/lt), the self \
                          axis (price/data()[. > X and . < Y]) or an \
                          attribute"
                         l.P.source u.P.source))
                consts)
          consts;
        List.iter scan_between children
    | P.POr children -> List.iter scan_between children
    | _ -> ()
  in
  scan_between tree;
  (* ---- XQLINT024: reverse/sibling axes over an uncovered collection
     would be tree-walked; a structural index would serve them ---- *)
  (match (catalog, Eligibility.Extract.reverse_axes q) with
  | Some cat, (_ :: _ as axes) ->
      let module S = Xmlindex.Structindex in
      let lc = String.lowercase_ascii in
      let covered coll =
        List.exists
          (fun (s : S.t) -> lc (S.collection_of_def s.S.def) = lc coll)
          cat.Planner.sindexes
      in
      List.iter
        (fun coll ->
          if not (covered coll) then
            add
              (Diag.make ~tip:14 ~code:"XQLINT024" ~severity:Diag.Hint
                 "this query walks the %s ax%s over collection %s by \
                  navigation; CREATE STRUCTURAL INDEX ... ON %s would \
                  make %s a structural join"
                 (String.concat ", "
                    (List.map Xquery.Ast.axis_name axes))
                 (match axes with [ _ ] -> "is" | _ -> "es")
                 coll
                 (match String.index_opt coll '.' with
                 | Some i ->
                     Printf.sprintf "%s(%s)" (String.sub coll 0 i)
                       (String.sub coll (i + 1)
                          (String.length coll - i - 1))
                 | None -> coll)
                 (match axes with [ _ ] -> "it" | _ -> "them")))
        (Eligibility.Extract.collections q)
  | _ -> ());
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* SQL-level rules                                                     *)
(* ------------------------------------------------------------------ *)

(** Map a position inside an embedded query literal to the enclosing SQL
    statement ([+1] skips the opening quote; exact as long as the literal
    contains no doubled-quote escapes before the position). *)
let map_embed_pos ~(src : string) ~(offset : int) (p : Xdm.Srcloc.pos) :
    Xdm.Srcloc.pos =
  Xdm.Srcloc.of_offset src (offset + 1 + p.Xdm.Srcloc.offset)

(** Checks that need SQL structure (Tips 2–6 and [XQLINT014]), followed
    by the XQuery-level rules on every embedded query, with positions
    mapped into the SQL statement. *)
let sql_lint ?(catalog : Planner.catalog option) ~(src : string)
    (stmt : Sqlxml.Sql_ast.stmt) : Diag.t list =
  let module A = Sqlxml.Sql_ast in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let embed_pos (e : A.xq_embed) =
    Some (Xdm.Srcloc.of_offset src e.A.xq_offset)
  in
  let embedded_queries = ref [] in
  (* XQLINT014: embedded queries evaluate without a context item *)
  let lint_absolute (e : A.xq_embed) =
    Walk.iter_expr
      (fun ae ->
        match ae with
        | EPath ((Absolute | AbsDesc), _) ->
            let pos =
              match Locs.find e.A.xq_locs ae with
              | Some p -> Some (map_embed_pos ~src ~offset:e.A.xq_offset p)
              | None -> embed_pos e
            in
            add
              (Diag.make ?pos ~code:"XQLINT014" ~severity:Diag.Warning
                 "absolute path inside an embedded XQuery: XMLEXISTS / \
                  XMLQUERY / XMLTABLE evaluate without a context item, so \
                  a leading '/' raises XPDY0002 at runtime; root the path \
                  at a PASSING variable")
        | _ -> ())
      e.A.xq_query.body
  in
  let check_embed (e : A.xq_embed) =
    embedded_queries := e :: !embedded_queries;
    lint_absolute e
  in
  (match stmt with
  | A.Select s ->
      (* collect embedded queries everywhere *)
      let rec walk_sexpr = function
        | A.SXmlQuery e -> check_embed e
        | A.SXmlCast (e, _) -> walk_sexpr e
        | A.SXmlElement (_, args) -> List.iter walk_sexpr args
        | _ -> ()
      in
      let rec walk_cond = function
        | A.CAnd (a, b) | A.COr (a, b) -> walk_cond a; walk_cond b
        | A.CNot a -> walk_cond a
        | A.CCmp (_, a, b) -> walk_sexpr a; walk_sexpr b
        | A.CXmlExists e -> check_embed e
        | A.CIsNull (e, _) -> walk_sexpr e
      in
      List.iter
        (function A.SelExpr (e, _) -> walk_sexpr e | A.SelStar -> ())
        s.A.sel_list;
      Option.iter walk_cond s.A.where;
      (* row producers get the context-item check only: the advisor's
         XQuery-level tips never ran on them, and [Engine.advise] output
         must stay stable *)
      List.iter
        (function
          | A.TRXmlTable xt -> lint_absolute xt.A.xt_embed
          | A.TRTable _ -> ())
        s.A.from;
      (* ---- Tip 2: XMLQuery-with-predicates in the select list ---- *)
      let has_exists_filter =
        match s.A.where with
        | Some w ->
            List.exists
              (function A.CXmlExists _ -> true | _ -> false)
              (A.conjuncts w)
        | None -> false
      in
      List.iter
        (function
          | A.SelExpr (A.SXmlQuery e, _) ->
              let has_preds = ref false in
              Walk.iter_expr
                (function
                  | EPath (_, steps) when has_nonpositional_pred steps ->
                      has_preds := true
                  | _ -> ())
                e.A.xq_query.body;
              if !has_preds && not has_exists_filter then
                add
                  (mk ?pos:(embed_pos e) 2
                     "XMLQuery in the select list returns a (possibly \
                      empty) value for *every* row — its predicates \
                      eliminate nothing and no index applies (Query 5). \
                      Add an XMLEXISTS to the WHERE clause, or use the \
                      stand-alone XQuery interface (Query 7)")
          | _ -> ())
        s.A.sel_list;
      (* ---- Tip 3: boolean result inside XMLEXISTS ---- *)
      (match s.A.where with
      | Some w ->
          List.iter
            (function
              | A.CXmlExists e when is_boolean_valued e.A.xq_query.body ->
                  add
                    (mk ?pos:(embed_pos e) 3
                       "the XQuery inside XMLEXISTS ('%s') returns a \
                        boolean: XMLEXISTS tests for *non-emptiness*, and \
                        a false value is still one item, so every row \
                        qualifies (Query 9). Move the condition into a \
                        predicate: [...]"
                       e.A.xq_src)
              | _ -> ())
            (A.conjuncts w)
      | None -> ());
      (* ---- Tip 4: predicates in XMLTABLE COLUMNS ---- *)
      List.iter
        (function
          | A.TRXmlTable xt ->
              List.iter
                (fun (c : A.xt_col) ->
                  let has_preds = ref false in
                  Walk.iter_expr
                    (function
                      | EPath (_, steps) when has_nonpositional_pred steps ->
                          has_preds := true
                      | _ -> ())
                    c.A.xc_query.body;
                  if !has_preds then
                    add
                      (mk
                         ~pos:(Xdm.Srcloc.of_offset src c.A.xc_offset)
                         4
                         "the predicate in COLUMNS %s PATH '%s' only NULLs \
                          the cell — it never drops rows and is not index \
                          eligible (Query 12). Move it to the row-producer \
                          expression"
                         c.A.xc_name c.A.xc_path_src))
                xt.A.xt_cols
          | A.TRTable _ -> ())
        s.A.from;
      (* ---- Tips 5/6: joins expressed on the SQL side ---- *)
      (match s.A.where with
      | Some w ->
          List.iter
            (function
              | A.CCmp (_, a, b) -> (
                  let is_xmlcast_q = function
                    | A.SXmlCast (A.SXmlQuery _, _) -> true
                    | _ -> false
                  in
                  let cast_pos =
                    match (a, b) with
                    | A.SXmlCast (A.SXmlQuery e, _), _
                    | _, A.SXmlCast (A.SXmlQuery e, _) ->
                        embed_pos e
                    | _ -> None
                  in
                  match (is_xmlcast_q a, is_xmlcast_q b) with
                  | true, true ->
                      add
                        (mk ?pos:cast_pos 6
                           "this join compares two XMLCAST(XMLQUERY(...)) \
                            values with SQL semantics: no XML index (and \
                            no relational index) is eligible, and XMLCAST \
                            raises errors on multi-valued or over-long \
                            items (Query 15). Pass both XML values into \
                            one XMLEXISTS and join in XQuery with \
                            explicit casts (Query 16)")
                  | true, false | false, true ->
                      add
                        (mk ?pos:cast_pos 5
                           "this join condition mixes SQL and XML values \
                            via XMLCAST: only a relational index on the \
                            SQL side is eligible, and XMLCAST enforces \
                            singleton/length rules the XQuery comparison \
                            does not (Query 14 vs Query 13). Put the \
                            condition on the side that has the index")
                  | false, false -> ())
              | _ -> ())
            (A.conjuncts w)
      | None -> ());
      ()
  | _ -> ());
  (* run the XQuery-level rules on each embedded query, mapping positions
     into the SQL statement *)
  let xq_diags =
    List.concat_map
      (fun (e : Sqlxml.Sql_ast.xq_embed) ->
        let q =
          try
            Xquery.Static.resolve
              ~external_vars:(List.map fst e.xq_passing)
              ~locs:e.xq_locs e.xq_query
          with _ -> e.xq_query
        in
        let ds =
          try xquery_lint ?catalog ~locs:e.xq_locs q with _ -> []
        in
        List.map
          (fun (d : Diag.t) ->
            {
              d with
              Diag.pos =
                Option.map
                  (fun p -> map_embed_pos ~src ~offset:e.xq_offset p)
                  d.Diag.pos;
            })
          ds)
      !embedded_queries
  in
  List.rev !diags @ xq_diags
