(** Access-path selection: predicate tree → index probes → row-id sets.

    The plan model follows the paper's Section 2.2: indexes *pre-filter
    documents* (rows); the full query then runs over the filtered
    collection, so by construction [Q(I(P, D))] is what executes, and
    eligibility guarantees it equals [Q(D)]. *)

(** What the planner plans against: the stored tables plus the installed
    XML indexes. *)
type catalog = {
  db : Storage.Database.t;
  indexes : Xmlindex.Xindex.t list;
  sindexes : Xmlindex.Structindex.t list;
      (** structural (pre/post) node-encoding indexes *)
}

(** A plan: per-collection row restrictions plus its EXPLAIN trace. *)
type t = {
  restrictions : (string * Xdm.Int_set.t) list;
      (** per collection ("TABLE.COLUMN"): row ids that may qualify *)
  notes : string list;  (** EXPLAIN output *)
  indexes_used : string list;
}

(** Plan a predicate tree: per collection, attempt a row-set restriction.
    [params] are runtime values of externally bound scalar variables;
    [xml_bindings] of XML variables (enables index nested-loop probes).
    [prof] is charged ([xpar_gated]) when a parallel AND/OR solve is
    gated off because index profiling is armed. *)
val plan :
  ?params:(string * Xdm.Atomic.t) list ->
  ?xml_bindings:(string * Xdm.Item.seq) list ->
  ?parallelism:int ->
  ?prof:Xprof.t ->
  catalog ->
  Eligibility.Predicate.t ->
  t

(** Restrict a single collection under runtime bindings; [None] = no
    usable index (full scan). Returns [(restriction, notes, indexes
    used)]. Used by the SQL executor's lateral (per-outer-row)
    restriction. *)
val restrict_collection :
  ?params:(string * Xdm.Atomic.t) list ->
  ?xml_bindings:(string * Xdm.Item.seq) list ->
  ?parallelism:int ->
  ?prof:Xprof.t ->
  catalog ->
  Eligibility.Predicate.t ->
  string ->
  Xdm.Int_set.t option * string list * string list

(** {1 Compiled statements (the prepared-statement front half)} *)

(** The data-independent front half of a stand-alone XQuery: parsed,
    statically resolved, eligibility predicate tree extracted. Index
    probing is data-dependent, so it happens per execution. *)
type compiled

val compiled_src : compiled -> string

(** Free variables of the compiled query, in first-use order — the named
    parameter slots bound at execute time. *)
val compiled_params : compiled -> string list

(** Parse, statically resolve and analyze once. Free variables become
    parameter slots (analyzed as untyped scalar parameters, so indexes
    stay eligible for [\@price > $p]-style predicates). Raises
    [Xdm.Xerror.Error] on syntax or static errors. *)
val compile : string -> compiled

(** Plan and run a compiled query under runtime parameter bindings —
    {!run_xquery} minus the parse/resolve/analyze front half.
    [use_indexes] defaults to [true]; [vars] binds parameter slots. *)
val execute_compiled :
  ?limits:Xdm.Limits.t ->
  ?prof:Xprof.t ->
  ?use_indexes:bool ->
  ?vars:(string * Xdm.Item.seq) list ->
  ?parallelism:int ->
  ?chunk_size:int ->
  catalog ->
  compiled ->
  Xdm.Item.seq * t

(** Streaming execution of a compiled query: planning (index probes)
    happens eagerly at the call, items are produced as the consumer
    pulls. The returned meter is the statement's governor — charged
    during pulls, so an early-closed cursor stops consuming budget. *)
val execute_compiled_seq :
  ?limits:Xdm.Limits.t ->
  ?prof:Xprof.t ->
  ?use_indexes:bool ->
  ?vars:(string * Xdm.Item.seq) list ->
  catalog ->
  compiled ->
  Xdm.Item.t Seq.t * t * Xdm.Limits.meter

(** {1 One-shot execution} *)

(** Parse, analyze, plan and execute a stand-alone XQuery against the
    database, using eligible indexes to pre-filter collections
    (Definition 1's [Q(I(P, D))]). *)
val run_xquery :
  ?limits:Xdm.Limits.t ->
  ?prof:Xprof.t ->
  catalog ->
  string ->
  Xdm.Item.seq * t

(** Execute without any index use (the baseline collection scan). *)
val run_xquery_noindex :
  ?limits:Xdm.Limits.t ->
  ?prof:Xprof.t ->
  catalog ->
  string ->
  Xdm.Item.seq
