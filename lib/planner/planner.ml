(** Access-path selection: predicate tree → index probes → row-id sets.

    The plan model follows the paper's Section 2.2: indexes *pre-filter
    documents* (rows); the full query then runs over the filtered
    collection, so by construction [Q(I(P, D))] is what executes, and
    eligibility guarantees it equals [Q(D)].

    Section 3.10 lives here too: a [>]/[<] pair over the same path merges
    into a single range scan only when the compared value is provably a
    singleton (value comparison, self axis, or attribute); otherwise each
    comparison probes separately and the row sets are intersected ("index
    ANDing"), which scans far more entries. *)

module P = Eligibility.Predicate
module M = Eligibility.Match_index
module X = Xmlindex.Xindex
module S = Xmlindex.Structindex

type catalog = {
  db : Storage.Database.t;
  indexes : X.t list;
  sindexes : S.t list;  (** structural (pre/post) node-encoding indexes *)
}

type t = {
  restrictions : (string * Xdm.Int_set.t) list;
      (** per collection ("TABLE.COLUMN"): row ids that may qualify *)
  notes : string list;  (** EXPLAIN output *)
  indexes_used : string list;
}

let norm = String.lowercase_ascii

let path_table_of (cat : catalog) (collection : string) :
    Storage.Path_table.t option =
  match Storage.Database.split_colref collection with
  | None -> None
  | Some (t, c) -> (
      match Storage.Database.find_table cat.db t with
      | None -> None
      | Some tbl -> Storage.Table.path_table tbl c)

type solver = {
  cat : catalog;
  params : (string * Xdm.Atomic.t) list;
      (** runtime values of externally bound scalar variables (SQL rows) *)
  xml_bindings : (string * Xdm.Item.seq) list;
      (** runtime values of externally bound XML variables — enables
          index nested-loop join probes *)
  mutable notes : string list;
  mutable used : string list;
  par : int;  (** parallelism for AND/OR child solving (1 = sequential) *)
  prof : Xprof.t;
      (** statement profile, charged when parallel solving is gated off *)
}

(** Evaluate the other side of a join comparison under the current
    runtime bindings; [None] when some variable is unbound (not a lateral
    probe opportunity) or evaluation fails. *)
let eval_join_values (s : solver) (jexpr : Xquery.Ast.expr) :
    Xdm.Atomic.t list option =
  try
    let resolver = Storage.Database.resolver s.cat.db in
    let ctx = Xquery.Ctx.init ~resolver () in
    let ctx =
      Xquery.Ctx.bind_all ctx
        (s.xml_bindings
        @ List.map (fun (v, a) -> (v, [ Xdm.Item.A a ])) s.params)
    in
    Some (Xdm.Item.atomize (Xquery.Eval.eval ctx jexpr))
  with _ -> None

let note s fmt = Format.kasprintf (fun m -> s.notes <- m :: s.notes) fmt

(** Probe one index for a leaf with a concrete range. *)
let probe_leaf (s : solver) (idx : X.t) (leaf : P.leaf) (r : X.range) :
    Xdm.Int_set.t option =
  match path_table_of s.cat leaf.P.collection with
  | None -> None
  | Some pt ->
      let paths = X.matching_paths pt leaf.P.path in
      let rows = X.probe_range idx ~paths r in
      s.used <- idx.X.def.X.iname :: s.used;
      note s "  XISCAN %s: %s → %d rows" idx.X.def.X.iname leaf.P.source
        (Xdm.Int_set.cardinal rows);
      Some rows

(** Candidate order: smaller indexes first — a light-weight stand-in for
    DB2's cost-based index choice [Balmin et al., IBM Systems J. 2006]:
    with equal eligibility, the narrower pattern (fewer entries) scans
    less. *)
let by_cost (indexes : X.t list) : X.t list =
  List.stable_sort
    (fun a b -> compare (X.entry_count a) (X.entry_count b))
    indexes

(** Try all indexes for a leaf; log why each ineligible index was
    rejected (the paper's whole point is making this visible). *)
let solve_leaf (s : solver) (leaf : P.leaf) : Xdm.Int_set.t option =
  let rec try_indexes = function
    | [] -> None
    | idx :: rest -> (
        match M.check_leaf idx.X.def leaf with
        | Ok (M.SpecRange r) -> probe_leaf s idx leaf r
        | Ok (M.SpecParam (v, op)) -> (
            match List.assoc_opt v s.params with
            | Some value -> (
                match M.range_of op value idx.X.def.X.vtype with
                | Ok r -> probe_leaf s idx leaf r
                | Error _ -> try_indexes rest)
            | None ->
                note s "  index %s eligible for %s (join/parameter probe)"
                  idx.X.def.X.iname leaf.P.source;
                try_indexes rest)
        | Ok (M.SpecJoin op) -> (
            let jexpr =
              match leaf.P.operand with
              | P.OJoin { jexpr; _ } -> Some jexpr
              | _ -> None
            in
            match Option.bind jexpr (eval_join_values s) with
            | Some values -> (
                (* index nested-loop: probe once per join value, union *)
                match path_table_of s.cat leaf.P.collection with
                | None -> try_indexes rest
                | Some pt ->
                    let paths = X.matching_paths pt leaf.P.path in
                    let rows =
                      List.fold_left
                        (fun acc v ->
                          match M.range_of op v idx.X.def.X.vtype with
                          | Ok r ->
                              Xdm.Int_set.union acc (X.probe_range idx ~paths r)
                          | Error _ -> acc)
                        Xdm.Int_set.empty values
                    in
                    s.used <- idx.X.def.X.iname :: s.used;
                    note s "  XISCAN %s: join probe %s (%d values) → %d rows"
                      idx.X.def.X.iname leaf.P.source (List.length values)
                      (Xdm.Int_set.cardinal rows);
                    Some rows)
            | None ->
                note s "  index %s eligible for %s (join probe)"
                  idx.X.def.X.iname leaf.P.source;
                try_indexes rest)
        | Ok M.SpecStructural -> try_indexes rest
        | Error reason ->
            if norm (M.column_of_def idx.X.def) = norm leaf.P.collection then
              note s "  index %s NOT eligible for %s: %s" idx.X.def.X.iname
                leaf.P.source
                (M.reject_to_string reason);
            try_indexes rest)
  in
  try_indexes (by_cost s.cat.indexes)

let solve_structural (s : solver) (sl : P.struct_leaf) : Xdm.Int_set.t option
    =
  let rec try_indexes = function
    | [] -> None
    | idx :: rest -> (
        match M.check_structural idx.X.def sl with
        | Ok M.SpecStructural -> (
            match path_table_of s.cat sl.P.s_collection with
            | None -> None
            | Some pt ->
                let paths = X.matching_paths pt sl.P.s_path in
                let rows = X.probe_structural idx ~paths in
                s.used <- idx.X.def.X.iname :: s.used;
                note s "  XISCAN %s (structural): %s → %d rows"
                  idx.X.def.X.iname sl.P.s_source
                  (Xdm.Int_set.cardinal rows);
                Some rows)
        | _ -> try_indexes rest)
  in
  try_indexes (by_cost s.cat.indexes)

(* ------------------------------------------------------------------ *)
(* Between detection (Section 3.10)                                    *)
(* ------------------------------------------------------------------ *)

let singleton_ok (l : P.leaf) = l.P.value_cmp || l.P.singleton_path

(** Merging a [>]/[<] pair into one range scan is sound only when both
    comparisons provably apply to the *same* singleton item: either both
    are value comparisons (which enforce singletons at runtime — and
    XQuery permits rewrites that avoid raising such errors), or both hang
    off the same anchor node with a singleton step (self axis or a single
    attribute). Two separate general-comparison paths like
    [lineitem/@price > 100 and lineitem/@price < 200] may be satisfied by
    *different* lineitems and must not be merged (Section 3.10). *)
let mergeable (l : P.leaf) (u : P.leaf) =
  (l.P.value_cmp && u.P.value_cmp)
  || (l.P.anchor = u.P.anchor && l.P.singleton_path && u.P.singleton_path)

let leaf_key (l : P.leaf) =
  (norm l.P.collection, Xmlindex.Pattern.canonical_string l.P.path)

let const_of (l : P.leaf) =
  match l.P.operand with P.OConst c -> Some c | _ -> None

let is_lower (l : P.leaf) = l.P.op = P.CGt || l.P.op = P.CGe
let is_upper (l : P.leaf) = l.P.op = P.CLt || l.P.op = P.CLe

(** Merge a lower-bound and upper-bound pair of leaves over the same path
    into a single BETWEEN range probe, when singleton-safe. Returns the
    merged pairs plus unconsumed children. *)
let try_between (_s : solver) (children : P.t list) :
    (P.leaf * P.leaf) list * P.t list =
  let leaves, others =
    List.partition_map
      (function
        | P.PLeaf l when const_of l <> None && singleton_ok l ->
            Either.Left l
        | t -> Either.Right t)
      children
  in
  let arr = Array.of_list leaves in
  let n = Array.length arr in
  let consumed = Array.make n false in
  let pairs = ref [] in
  Array.iteri
    (fun i l ->
      if (not consumed.(i)) && is_lower l then
        let rec find j =
          if j >= n then ()
          else if
            (not consumed.(j))
            && j <> i
            && is_upper arr.(j)
            && leaf_key arr.(j) = leaf_key l
            && mergeable l arr.(j)
          then begin
            consumed.(i) <- true;
            consumed.(j) <- true;
            pairs := (l, arr.(j)) :: !pairs
          end
          else find (j + 1)
        in
        find 0)
    arr;
  let rest = ref [] in
  Array.iteri
    (fun i l -> if not consumed.(i) then rest := P.PLeaf l :: !rest)
    arr;
  (!pairs, others @ List.rev !rest)

let probe_between (s : solver) (lo : P.leaf) (hi : P.leaf) :
    Xdm.Int_set.t option =
  let rec try_indexes = function
    | [] -> None
    | idx :: rest -> (
        match (M.check_leaf idx.X.def lo, M.check_leaf idx.X.def hi) with
        | Ok (M.SpecRange rlo), Ok (M.SpecRange rhi) -> (
            let r = { X.lo = rlo.X.lo; hi = rhi.X.hi } in
            match path_table_of s.cat lo.P.collection with
            | None -> None
            | Some pt ->
                let paths = X.matching_paths pt lo.P.path in
                let rows = X.probe_range idx ~paths r in
                s.used <- idx.X.def.X.iname :: s.used;
                note s
                  "  XISCAN %s: BETWEEN merged (%s AND %s) — single range \
                   scan → %d rows"
                  idx.X.def.X.iname lo.P.source hi.P.source
                  (Xdm.Int_set.cardinal rows);
                Some rows)
        | _ -> try_indexes rest)
  in
  try_indexes (by_cost s.cat.indexes)

(* ------------------------------------------------------------------ *)
(* Tree solving                                                        *)
(* ------------------------------------------------------------------ *)

(* Parallel index probing is only safe while nothing profiles: a probe
   opens an XISCAN span on the index's shared profile, and the span
   stack is not thread-safe. With profiling off, spans are no-ops and
   probes only touch per-index stat counters (benign int races). *)
let can_solve_parallel (s : solver) =
  s.par > 1 && Xpar.available
  && List.for_all (fun (i : X.t) -> not i.X.prof.Xprof.on) s.cat.indexes

(** Run independent child-solving tasks, each against a private
    notes/used accumulator, then merge both back in task order — so the
    plan's EXPLAIN trace is byte-identical to a sequential solve. *)
let solve_children (s : solver) (tasks : (solver -> Xdm.Int_set.t option) list)
    : Xdm.Int_set.t option list =
  if List.length tasks < 2 || not (can_solve_parallel s) then begin
    (* The gate above is silent by default: parallelism was requested
       and available, but armed index profiling forces a sequential
       solve. Make it observable — a profile counter (mirrored as
       [xpar_gated_total] in the registry) and a plan note. *)
    if List.length tasks >= 2 && s.par > 1 && Xpar.available then begin
      Xprof.gated s.prof;
      note s
        "  parallel AND/OR solve gated off (index profiling armed): %d \
         tasks run sequentially"
        (List.length tasks)
    end;
    List.map (fun task -> task s) tasks
  end
  else begin
    let results =
      Xpar.map_list ~parallelism:s.par ~chunk_size:1
        (fun task ->
          let sub = { s with notes = []; used = [] } in
          let r = task sub in
          (r, sub.notes, sub.used))
        tasks
    in
    List.map
      (fun (r, notes, used) ->
        s.notes <- notes @ s.notes;
        s.used <- used @ s.used;
        r)
      results
  end

let rec solve (s : solver) (tree : P.t) : Xdm.Int_set.t option =
  match tree with
  | P.PTrue -> None
  | P.PLeaf l -> solve_leaf s l
  | P.PStructural sl -> solve_structural s sl
  | P.PAnd children ->
      let pairs, rest = try_between s children in
      let results =
        solve_children s
          (List.map (fun (lo, hi) s -> probe_between s lo hi) pairs
          @ List.map (fun child s -> solve s child) rest)
      in
      let somes = List.filter_map Fun.id results in
      (match somes with
      | [] -> None
      | first :: more ->
          if more <> [] then
            note s "  IXAND: intersecting %d row sets" (List.length somes);
          Some (List.fold_left Xdm.Int_set.inter first more))
  | P.POr children ->
      let results =
        solve_children s (List.map (fun child s -> solve s child) children)
      in
      if List.exists Option.is_none results then None
      else begin
        if List.length results > 1 then
          note s "  IXOR: union of %d row sets" (List.length results);
        Some
          (List.fold_left Xdm.Int_set.union Xdm.Int_set.empty
             (List.filter_map Fun.id results))
      end

(** Plan a predicate tree: per collection, attempt a row-set restriction. *)
let plan ?(params : (string * Xdm.Atomic.t) list = [])
    ?(xml_bindings : (string * Xdm.Item.seq) list = []) ?(parallelism = 1)
    ?(prof = Xprof.disabled) (cat : catalog) (tree : P.t) : t =
  let tree = P.simplify tree in
  let collections = List.sort_uniq compare (P.collections tree) in
  let s =
    {
      cat;
      params;
      xml_bindings;
      notes = [];
      used = [];
      par = parallelism;
      prof;
    }
  in
  note s "predicate tree: %s" (P.to_string tree);
  let restrictions =
    List.filter_map
      (fun coll ->
        let sub = P.simplify (P.for_collection coll tree) in
        match solve s sub with
        | Some rows ->
            note s "collection %s restricted to %d rows" coll
              (Xdm.Int_set.cardinal rows);
            Some (coll, rows)
        | None ->
            note s "collection %s: full scan (no usable index)" coll;
            None)
      collections
  in
  {
    restrictions;
    notes = List.rev s.notes;
    indexes_used = List.sort_uniq compare s.used;
  }

(* ------------------------------------------------------------------ *)
(* End-to-end execution of stand-alone XQuery                          *)
(* ------------------------------------------------------------------ *)

(** Restrict a single collection under runtime bindings; [None] = no
    usable index (full scan). Used by the SQL executor's lateral
    (per-outer-row) restriction. *)
let restrict_collection ?(params = []) ?(xml_bindings = [])
    ?(parallelism = 1) ?(prof = Xprof.disabled) (cat : catalog) (tree : P.t)
    (collection : string) :
    Xdm.Int_set.t option * string list * string list =
  let s =
    {
      cat;
      params;
      xml_bindings;
      notes = [];
      used = [];
      par = parallelism;
      prof;
    }
  in
  let sub = P.simplify (P.for_collection collection tree) in
  let r = solve s sub in
  (r, List.rev s.notes, List.sort_uniq compare s.used)

(** Parse, analyze, plan and execute a stand-alone XQuery against the
    database, using eligible indexes to pre-filter collections
    (Definition 1's [Q(I(P, D))]). *)
let run_xquery ?(limits = Xdm.Limits.unlimited) ?(prof = Xprof.disabled)
    (cat : catalog) (src : string) : Xdm.Item.seq * t =
  let q = Xquery.Parser.parse_query src in
  let q = Xquery.Static.resolve q in
  let tree = Eligibility.Extract.analyze q in
  (* planning itself probes indexes; span it so index probe time shows up
     under PLAN rather than inside the XQUERY operator *)
  let plan = Xprof.spanned prof "PLAN" (fun () -> plan ~prof cat tree) in
  let resolver =
    Storage.Database.resolver ~prof ~restrict_to:plan.restrictions cat.db
  in
  let meter = Xdm.Limits.meter ~limits () in
  let ctx =
    Xquery.Ctx.init ~resolver
      ~construction_preserve:q.Xquery.Ast.prolog.Xquery.Ast.construction_preserve
      ~meter ~prof ()
  in
  let result =
    Xprof.spanned ~rows:List.length prof "XQUERY" (fun () ->
        Xquery.Eval.eval ctx q.Xquery.Ast.body)
  in
  Xprof.set_governor prof (Xdm.Limits.usage meter);
  (result, plan)

(* ------------------------------------------------------------------ *)
(* Compiled statements (the prepared-statement front half)             *)
(* ------------------------------------------------------------------ *)

(** The data-independent front half of a stand-alone XQuery: parsed,
    statically resolved, eligibility predicate tree extracted. Index
    probing is data-dependent (the planner reads index contents), so it
    happens per execution, not at compile time. *)
type compiled = {
  c_src : string;
  c_query : Xquery.Ast.query;
  c_tree : P.t;
  c_params : string list;
      (** free variables of the query = named parameter slots *)
}

let compiled_src (c : compiled) = c.c_src
let compiled_params (c : compiled) = c.c_params

(** Parse, statically resolve and analyze once. Free variables become
    parameter slots: they resolve as external variables and analyze as
    untyped scalar parameters, so indexes stay eligible for
    [\@price > $p]-style predicates and are probed with the bound value at
    execute time. *)
let compile (src : string) : compiled =
  let q = Xquery.Parser.parse_query src in
  let params = Xquery.Static.free_vars q in
  let q = Xquery.Static.resolve ~external_vars:params q in
  let tree =
    Eligibility.Extract.analyze
      ~scalar_params:(List.map (fun v -> (v, None)) params)
      q
  in
  { c_src = src; c_query = q; c_tree = tree; c_params = params }

(** Split runtime bindings into scalar parameters (singleton atomics, fed
    to [SpecParam] probes) and XML bindings (fed to join probes). *)
let split_bindings (vars : (string * Xdm.Item.seq) list) :
    (string * Xdm.Atomic.t) list * (string * Xdm.Item.seq) list =
  List.fold_left
    (fun (ps, xs) (v, seq) ->
      match seq with
      | [ Xdm.Item.A a ] -> ((v, a) :: ps, xs)
      | _ -> (ps, (v, seq) :: xs))
    ([], []) vars

let no_index_plan : t =
  { restrictions = []; notes = [ "index use disabled" ]; indexes_used = [] }

let compiled_setup ?(prof = Xprof.disabled) ?(use_indexes = true)
    ?(vars : (string * Xdm.Item.seq) list = []) ?(parallelism = 1) ~limits
    (cat : catalog) (c : compiled) : Xquery.Ctx.t * t * Xdm.Limits.meter =
  let plan_t =
    if use_indexes then begin
      let params, xml_bindings = split_bindings vars in
      Xprof.spanned prof "PLAN" (fun () ->
          plan ~params ~xml_bindings ~parallelism ~prof cat c.c_tree)
    end
    else no_index_plan
  in
  let resolver =
    Storage.Database.resolver ~prof ~restrict_to:plan_t.restrictions cat.db
  in
  let meter = Xdm.Limits.meter ~limits () in
  let ctx =
    Xquery.Ctx.init ~resolver
      ~construction_preserve:
        c.c_query.Xquery.Ast.prolog.Xquery.Ast.construction_preserve
      ~meter ~prof ()
  in
  (Xquery.Ctx.bind_all ctx vars, plan_t, meter)

(* ------------------------------------------------------------------ *)
(* Structural-join execution                                           *)
(* ------------------------------------------------------------------ *)

(** Is the query body a predicate-free axis pipeline over one stored
    collection — [db2-fn:xmlcolumn('T.C')/step/step/...] with every step
    a bare axis? That is the [PStructJoin] shape: each step becomes one
    structural (interval/staircase) join over the collection's node
    encoding. Returns the collection, the first (collection-producing)
    step and the axis descriptors. *)
let struct_shape (body : Xquery.Ast.expr) :
    (string * Xquery.Ast.step * (Xquery.Ast.axis * Xquery.Ast.nodetest) list)
    option =
  match body with
  | Xquery.Ast.EPath
      ( Xquery.Ast.Relative,
        (Xquery.Ast.SExpr
           {
             expr =
               Xquery.Ast.ECall
                 {
                   prefix = "db2-fn" | "";
                   local = "xmlcolumn" | "collection";
                   args = [ Xquery.Ast.ELit (Xdm.Atomic.Str coll) ];
                 };
             preds = [];
           } as first)
        :: (_ :: _ as rest) ) ->
      let rec axes acc = function
        | [] -> Some (List.rev acc)
        | Xquery.Ast.SAxis { axis; test; preds = [] } :: tl ->
            axes ((axis, test) :: acc) tl
        | _ -> None
      in
      Option.map (fun steps -> (coll, first, steps)) (axes [] rest)
  | _ -> None

let sindex_for (cat : catalog) (coll : string) : S.t option =
  List.find_opt
    (fun (s : S.t) -> norm (S.collection_of_def s.S.def) = norm coll)
    cat.sindexes

(** Execute a compiled query through the structural index when its body
    has the [PStructJoin] shape and the collection is covered. Each
    document's steps run as array joins over its (pre, post, parent,
    level) encoding; a document without an encoding (e.g. replaced after
    an MVCC snapshot was taken) falls back to tree-walk evaluation, so
    the result is always exactly the navigational one. Documents are
    independent, so parallelism chunks them like {!Xquery.Eval.eval_par}
    — the order-preserving merge keeps output byte-identical. Returns
    [None] when the shape or the index is missing. *)
let try_structural ~(prof : Xprof.t) ~parallelism ?chunk_size (cat : catalog)
    (ctx : Xquery.Ctx.t) (c : compiled) (plan_t : t) :
    (Xdm.Item.seq * t) option =
  match struct_shape c.c_query.Xquery.Ast.body with
  | None -> None
  | Some (coll, first, steps) -> (
      match sindex_for cat coll with
      | None -> None
      | Some sidx ->
          let iname = sidx.S.def.S.iname in
          let nav_steps =
            List.map
              (fun (axis, test) -> Xquery.Ast.SAxis { axis; test; preds = [] })
              steps
          in
          let per_doc (cctx : Xquery.Ctx.t) (it : Xdm.Item.t) : Xdm.Item.seq =
            match it with
            | Xdm.Item.N root -> (
                match
                  S.query ~prof:cctx.Xquery.Ctx.prof sidx root steps
                with
                | Some nodes ->
                    List.map Xdm.Item.of_node (Xdm.Item.doc_order_dedup nodes)
                | None -> Xquery.Eval.eval_steps cctx [ it ] nav_steps)
            | Xdm.Item.A _ ->
                (* not a node: let the tree-walk evaluator raise its
                   usual mixed-path type error *)
                Xquery.Eval.eval_steps cctx [ it ] nav_steps
          in
          let result =
            Xprof.spanned ~rows:List.length prof "XQUERY" (fun () ->
                let docs =
                  Xquery.Eval.eval ctx
                    (Xquery.Ast.EPath (Xquery.Ast.Relative, [ first ]))
                in
                Xprof.spanned ~rows:List.length prof
                  ("PSTRUCTJOIN " ^ iname)
                  (fun () ->
                    match docs with
                    | ([] | [ _ ]) when parallelism > 1 ->
                        List.concat_map (per_doc ctx) docs
                    | _ when parallelism <= 1 ->
                        List.concat_map (per_doc ctx) docs
                    | _ ->
                        let profiled = ctx.Xquery.Ctx.prof.Xprof.on in
                        let slots =
                          Xpar.map_chunks ~parallelism ?chunk_size
                            (fun _ chunk ->
                              let cprof =
                                if profiled then begin
                                  let p = Xprof.create () in
                                  Xprof.enable p true;
                                  p
                                end
                                else Xprof.disabled
                              in
                              let cctx =
                                {
                                  ctx with
                                  Xquery.Ctx.meter =
                                    Xdm.Limits.fork ctx.Xquery.Ctx.meter;
                                  prof = cprof;
                                }
                              in
                              let out =
                                List.concat_map (per_doc cctx)
                                  (Array.to_list chunk)
                              in
                              (cprof, out))
                            (Array.of_list docs)
                        in
                        Xprof.par ctx.Xquery.Ctx.prof
                          ~chunks:(Array.length slots);
                        let err = ref None in
                        let outs =
                          Array.fold_left
                            (fun acc slot ->
                              match slot with
                              | Ok (cprof, out) ->
                                  if profiled then
                                    Xprof.absorb ~into:ctx.Xquery.Ctx.prof
                                      cprof;
                                  out :: acc
                              | Error e ->
                                  if Option.is_none !err then err := Some e;
                                  acc)
                            [] slots
                        in
                        (match !err with Some e -> raise e | None -> ());
                        List.concat (List.rev outs)))
          in
          let step_notes =
            List.map
              (fun (axis, test) ->
                Printf.sprintf "  PSTRUCTJOIN %s::%s via %s"
                  (Xquery.Ast.axis_name axis)
                  (Xquery.Ast.nodetest_to_string test)
                  iname)
              steps
          in
          let notes =
            Printf.sprintf
              "collection %s: structural join over %s (%d axis steps, %d \
               encoded docs)"
              coll iname (List.length steps) (S.doc_count sidx)
            :: step_notes
          in
          Some
            ( result,
              {
                plan_t with
                notes = plan_t.notes @ notes;
                indexes_used =
                  List.sort_uniq compare (iname :: plan_t.indexes_used);
              } ))

(** Make the structural-vs-navigation choice visible: when a query walks
    a reverse or sibling axis without a structural join, say so in the
    plan notes (one [nav-axis] line per distinct axis). *)
let nav_axis_notes (c : compiled) (plan_t : t) : t =
  match Eligibility.Extract.reverse_axes c.c_query with
  | [] -> plan_t
  | axes ->
      let notes =
        List.map
          (fun a ->
            Printf.sprintf "nav-axis: %s (tree-walk)" (Xquery.Ast.axis_name a))
          axes
      in
      { plan_t with notes = plan_t.notes @ notes }

(** Plan and run a compiled query under runtime parameter bindings —
    [run_xquery] minus the parse/resolve/analyze front half. *)
let execute_compiled ?(limits = Xdm.Limits.unlimited) ?(prof = Xprof.disabled)
    ?use_indexes ?vars ?(parallelism = 1) ?chunk_size (cat : catalog)
    (c : compiled) : Xdm.Item.seq * t =
  let ctx, plan_t, meter =
    compiled_setup ~prof ?use_indexes ?vars ~parallelism ~limits cat c
  in
  let structural =
    if Option.value use_indexes ~default:true then
      try_structural ~prof ~parallelism ?chunk_size cat ctx c plan_t
    else None
  in
  let result, plan_t =
    match structural with
    | Some (items, plan') -> (items, plan')
    | None ->
        let r =
          Xprof.spanned ~rows:List.length prof "XQUERY" (fun () ->
              if parallelism > 1 then
                Xquery.Eval.eval_par ~parallelism ?chunk_size ctx
                  c.c_query.Xquery.Ast.body
              else Xquery.Eval.eval ctx c.c_query.Xquery.Ast.body)
        in
        (r, nav_axis_notes c plan_t)
  in
  Xprof.set_governor prof (Xdm.Limits.usage meter);
  (result, plan_t)

(** Streaming execution of a compiled query: planning (index probes)
    happens eagerly, items are produced as the consumer pulls. The
    returned meter is the statement's governor — charged during pulls, so
    an early-closed cursor stops consuming budget; read
    [Xdm.Limits.usage] on it when the cursor closes. *)
let execute_compiled_seq ?(limits = Xdm.Limits.unlimited)
    ?(prof = Xprof.disabled) ?use_indexes ?vars (cat : catalog)
    (c : compiled) : Xdm.Item.t Seq.t * t * Xdm.Limits.meter =
  let ctx, plan_t, meter =
    compiled_setup ~prof ?use_indexes ?vars ~limits cat c
  in
  let structural =
    if Option.value use_indexes ~default:true then
      try_structural ~prof ~parallelism:1 cat ctx c plan_t
    else None
  in
  match structural with
  | Some (items, plan') -> (List.to_seq items, plan', meter)
  | None ->
      ( Xquery.Eval.eval_seq ctx c.c_query.Xquery.Ast.body,
        nav_axis_notes c plan_t,
        meter )

(** Execute without any index use (the baseline collection scan). *)
let run_xquery_noindex ?(limits = Xdm.Limits.unlimited)
    ?(prof = Xprof.disabled) (cat : catalog) (src : string) : Xdm.Item.seq =
  let q = Xquery.Parser.parse_query src in
  let q = Xquery.Static.resolve q in
  let resolver = Storage.Database.resolver ~prof cat.db in
  let meter = Xdm.Limits.meter ~limits () in
  let ctx =
    Xquery.Ctx.init ~resolver
      ~construction_preserve:q.Xquery.Ast.prolog.Xquery.Ast.construction_preserve
      ~meter ~prof ()
  in
  let result =
    Xprof.spanned ~rows:List.length prof "XQUERY" (fun () ->
        Xquery.Eval.eval ctx q.Xquery.Ast.body)
  in
  Xprof.set_governor prof (Xdm.Limits.usage meter);
  result
