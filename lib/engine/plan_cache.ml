(** A bounded LRU cache for compiled statements.

    Entries are keyed by the statement's source text and validated
    against the catalog generation and a settings fingerprint captured
    at compile time: a lookup whose stored generation or fingerprint no
    longer matches is treated as a miss and the stale entry is dropped,
    so DDL (CREATE/DROP INDEX, CREATE TABLE) and bulk loads invalidate
    every cached plan simply by bumping the generation counter.

    Thread-safety: every public operation runs under one named
    [Xpar.Lock] — the cache is shared across sessions (and will be
    hammered by the concurrent server), and both [find] and [add] mutate
    the table, the clock and the stat counters. The lock shows up in the
    lock-order tracker as ["engine.plan_cache"]. *)

type 'a entry = {
  value : 'a;
  gen : int;  (** catalog generation the entry was compiled under *)
  fp : string;  (** settings fingerprint the entry was compiled under *)
  mutable stamp : int;  (** logical clock of last use, for LRU eviction *)
}

type 'a t = {
  capacity : int;
  lock : Xpar.Lock.t;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  invalidations : int;
  evictions : int;
}

let create ?(capacity = 128) () =
  let capacity = max 1 capacity in
  {
    capacity;
    lock = Xpar.Lock.create ~name:"engine.plan_cache" ();
    tbl = Hashtbl.create 32;
    clock = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let length t = Xpar.Lock.with_lock t.lock (fun () -> Hashtbl.length t.tbl)

let stats t =
  Xpar.Lock.with_lock t.lock (fun () ->
      {
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        invalidations = t.invalidations;
        evictions = t.evictions;
      })

(** Look up [key]. A present entry whose generation or fingerprint
    differs from the current [gen]/[fp] is stale: it is evicted and the
    lookup counts as a miss (and an invalidation). *)
let find t ~gen ~fp (key : string) : 'a option =
  Xpar.Lock.with_lock t.lock (fun () ->
      t.clock <- t.clock + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.gen = gen && e.fp = fp ->
          e.stamp <- t.clock;
          t.hits <- t.hits + 1;
          Some e.value
      | Some _ ->
          Hashtbl.remove t.tbl key;
          t.invalidations <- t.invalidations + 1;
          t.misses <- t.misses + 1;
          None
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Linear scan for the least-recently-used entry. The cache is small
   (default 128) and eviction only happens once the cache is full, so
   O(capacity) is fine here. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, s) when s <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1;
      true
  | None -> false

(** Insert [key]; replaces any previous entry under the same key.
    Returns [true] if a (different) entry was evicted to make room. *)
let add t ~gen ~fp (key : string) (value : 'a) : bool =
  Xpar.Lock.with_lock t.lock (fun () ->
      t.clock <- t.clock + 1;
      let had = Hashtbl.mem t.tbl key in
      if had then Hashtbl.remove t.tbl key;
      let evicted =
        (not had) && Hashtbl.length t.tbl >= t.capacity && evict_lru t
      in
      Hashtbl.replace t.tbl key { value; gen; fp; stamp = t.clock };
      evicted)

let clear t = Xpar.Lock.with_lock t.lock (fun () -> Hashtbl.reset t.tbl)
