(** The durable data directory: manifest, generation-numbered snapshots
    and write-ahead logs, checkpointing and crash recovery.

    Layout of a data directory (conventionally [name.xqdb/]):

    {v
      MANIFEST              "xqdb-format 1\ngeneration N\n"
      snapshot.N.pages      page-file snapshot (absent for generation 0)
      wal.N.log             the live write-ahead log
    v}

    The MANIFEST names the live generation; everything else is garbage
    from a crashed checkpoint and is removed on open. A checkpoint writes
    [snapshot.N+1.pages] (a full catalog image through the pager), then
    atomically publishes it by rewriting the MANIFEST via
    tmp-file-and-rename, then starts a fresh [wal.N+1.log]. A crash at
    any point leaves either the old generation fully live or the new one
    fully live — never a mix.

    Recovery on {!open_db}: load the live snapshot (empty database if
    none), then {!Wal.replay} the live log — committed statement groups
    are re-applied (row redo records through [Table.apply_jop], DDL by
    re-executing the statement text), the torn/uncommitted tail is
    truncated — and the log is reopened for appending at the committed
    end.

    The fault points ["checkpoint.begin"] and ["checkpoint.end"] bracket
    the checkpoint's danger zone (before any new-generation file exists /
    after the snapshot is complete but before the MANIFEST rename). *)

let format_version = 1

let format_error fmt =
  Format.kasprintf
    (fun m -> Xdm.Xerror.raise_err "XQDB0005" "%s" m)
    fmt

type t = {
  data_dir : string;
  sync : bool;  (** fsync the WAL at every commit *)
  count : string -> unit;  (** Xprof counter hook *)
  mutable gen : int;  (** live generation (MANIFEST) *)
  mutable wal : Wal.t;
  mutable seq : int;  (** statement sequence for WAL groups *)
  mutable active : bool;  (** inside a WAL group: journal records flow *)
  mutable closed : bool;
}

let no_count (_ : string) = ()
let data_dir t = t.data_dir
let generation t = t.gen

(* ------------------------------------------------------------------ *)
(* Paths & manifest                                                     *)
(* ------------------------------------------------------------------ *)

let manifest_path dir = Filename.concat dir "MANIFEST"
let snapshot_path dir gen = Filename.concat dir (Printf.sprintf "snapshot.%d.pages" gen)
let wal_path dir gen = Filename.concat dir (Printf.sprintf "wal.%d.log" gen)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let read_manifest dir : int =
  let path = manifest_path dir in
  let text =
    match open_in_bin path with
    | exception Sys_error _ -> format_error "%s: cannot read MANIFEST" dir
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
  in
  match String.split_on_char '\n' text with
  | fmt :: gen :: _ -> (
      (match String.split_on_char ' ' (String.trim fmt) with
      | [ "xqdb-format"; v ] ->
          let v = try int_of_string v with Failure _ -> -1 in
          if v <> format_version then
            format_error
              "%s: data directory format version %d, this build reads %d" dir
              v format_version
      | _ -> format_error "%s: not an xqdb data directory (bad MANIFEST)" dir);
      match String.split_on_char ' ' (String.trim gen) with
      | [ "generation"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> n
          | _ -> format_error "%s: bad generation in MANIFEST" dir)
      | _ -> format_error "%s: bad generation in MANIFEST" dir)
  | _ -> format_error "%s: not an xqdb data directory (bad MANIFEST)" dir

(** Publish [gen] atomically: write a tmp file, rename over MANIFEST,
    fsync the directory. *)
let write_manifest dir gen =
  let tmp = Filename.concat dir "MANIFEST.tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "xqdb-format %d\ngeneration %d\n" format_version gen;
      flush oc);
  Sys.rename tmp (manifest_path dir);
  fsync_dir dir

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(** Resolve the live generation of [data_dir], initializing a fresh
    directory (generation 0) when it is missing or empty. A non-empty
    directory without a MANIFEST is refused — it is not ours. *)
let init_dir data_dir : int =
  if not (Sys.file_exists data_dir) then mkdir_p data_dir
  else if not (Sys.is_directory data_dir) then
    format_error "%s: not a directory" data_dir;
  if Sys.file_exists (manifest_path data_dir) then read_manifest data_dir
  else if Sys.readdir data_dir = [||] then begin
    write_manifest data_dir 0;
    0
  end
  else format_error "%s: not an xqdb data directory (no MANIFEST)" data_dir

(** Remove snapshot/WAL files of any generation other than [gen] —
    leftovers of a checkpoint that crashed before (or after) publishing. *)
let cleanup_orphans data_dir gen =
  Array.iter
    (fun name ->
      let stale prefix suffix =
        if String.starts_with ~prefix name then
          match
            Filename.chop_suffix_opt ~suffix
              (String.sub name (String.length prefix)
                 (String.length name - String.length prefix))
          with
          | Some n -> (
              match int_of_string_opt n with Some g -> g <> gen | None -> false)
          | None -> false
        else false
      in
      if
        stale "snapshot." ".pages" || stale "wal." ".log"
        || name = "MANIFEST.tmp"
      then try Sys.remove (Filename.concat data_dir name) with Sys_error _ -> ())
    (try Sys.readdir data_dir with Sys_error _ -> [||])

(* ------------------------------------------------------------------ *)
(* Open & recover                                                       *)
(* ------------------------------------------------------------------ *)

let open_db ?(sync = true) ?(count = no_count) ~data_dir ~mk ~apply () =
  try
    let gen = init_dir data_dir in
    cleanup_orphans data_dir gen;
    let snap = snapshot_path data_dir gen in
    let db, xindexes, rindexes, sdefs =
      if Sys.file_exists snap then Wal.Snapshot.load ~count ~path:snap ()
      else (Storage.Database.create (), [], [], [])
    in
    let ctx = mk db xindexes rindexes sdefs in
    let wpath = wal_path data_dir gen in
    let res = Wal.replay ~apply:(apply ctx) wpath in
    let wal = Wal.open_log ~sync ~count ~keep:res.Wal.committed_end wpath in
    let t =
      {
        data_dir;
        sync;
        count;
        gen;
        wal;
        seq = res.Wal.statements;
        active = false;
        closed = false;
      }
    in
    (t, ctx, res.Wal.redo_records)
  with Unix.Unix_error (e, fn, arg) ->
    format_error "%s: %s(%s): %s" data_dir fn arg (Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Statement groups & journaling                                        *)
(* ------------------------------------------------------------------ *)

let statement t ?ddl (f : unit -> 'a) : 'a =
  t.seq <- t.seq + 1;
  let seq = t.seq in
  Wal.append t.wal (Wal.Begin seq);
  t.active <- true;
  match f () with
  | v ->
      t.active <- false;
      (match ddl with
      | Some text -> Wal.append t.wal (Wal.Ddl text)
      | None -> ());
      Wal.commit t.wal seq;
      v
  | exception ex ->
      (* the group is left uncommitted: replay skips it, mirroring the
         in-memory per-statement undo rollback that [f] already ran *)
      t.active <- false;
      raise ex

(* -- explicit transactions: one WAL group spanning many statements -- *)

(** Open a transaction-wide WAL group. Every DML statement the engine
    runs until {!txn_commit}/{!txn_abort} journals its redo records
    into this single group, so recovery applies the transaction all or
    nothing — the same abandoned-group semantics Wal.replay already
    gives a crashed single statement. Caller holds the engine's writer
    slot, so no other group can interleave. *)
let txn_begin t =
  t.seq <- t.seq + 1;
  Wal.append t.wal (Wal.Begin t.seq);
  t.active <- true

(** Commit point of the transaction: append the Commit record and (in
    sync mode) fsync. A crash strictly before this call recovers to the
    transaction never having happened; after it, to the transaction
    fully applied. *)
let txn_commit t =
  t.active <- false;
  Wal.commit t.wal t.seq

(** Abort: stop journaling and leave the group uncommitted — replay
    abandons it when the next group begins (or at the log's end). The
    in-memory undo rollback is the engine's job. *)
let txn_abort t = t.active <- false

(** Wire [tbl]'s row journal into the WAL. Records flow only inside a
    statement group (recovery replay and undo rollback stay silent). *)
let journal_table t (tbl : Storage.Table.t) =
  Storage.Table.set_journal tbl
    (Some
       (fun op ->
         if t.active && not t.closed then
           Wal.append t.wal (Wal.Row (tbl.Storage.Table.name, op))))

(* ------------------------------------------------------------------ *)
(* Checkpoint & shutdown                                                *)
(* ------------------------------------------------------------------ *)

let checkpoint t ~db ~xindexes ~rindexes ~sindexes =
  Faultinject.hit "checkpoint.begin";
  let next = t.gen + 1 in
  Wal.Snapshot.save ~count:t.count ~path:(snapshot_path t.data_dir next) db
    xindexes rindexes sindexes;
  Faultinject.hit "checkpoint.end";
  (* the rename is the commit point of the checkpoint *)
  write_manifest t.data_dir next;
  let nw = Wal.open_log ~sync:t.sync ~count:t.count (wal_path t.data_dir next) in
  Wal.close t.wal;
  let old = t.gen in
  t.wal <- nw;
  t.gen <- next;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ snapshot_path t.data_dir old; wal_path t.data_dir old ]

let close t =
  if not t.closed then begin
    t.closed <- true;
    Wal.sync_log t.wal;
    Wal.close t.wal
  end

(** Abandon the handle the way a crash would: drop the file descriptors
    without syncing anything. In-memory state is left untouched for the
    torture tests to compare against. *)
let simulate_crash t =
  if not t.closed then begin
    t.closed <- true;
    Wal.close t.wal
  end
