(** A bounded LRU cache for compiled statements, keyed by source text
    and validated against a catalog generation + settings fingerprint.
    Stale entries (generation or fingerprint mismatch) are dropped on
    lookup, so DDL and bulk loads invalidate cached plans by bumping the
    generation counter.

    Every operation is thread-safe: the cache is shared across sessions
    and guarded internally by a named [Xpar.Lock]
    (["engine.plan_cache"] in the lock-order tracker). *)

type 'a t

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  invalidations : int;  (** lookups that hit a stale entry *)
  evictions : int;  (** entries dropped to make room (LRU) *)
}

(** [capacity] defaults to 128 entries (clamped to at least 1). *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val stats : 'a t -> stats

(** Look up [key]; a stored entry compiled under a different generation
    or fingerprint is evicted and reported as a miss. *)
val find : 'a t -> gen:int -> fp:string -> string -> 'a option

(** Insert [key] (replacing any previous entry under the same key);
    [true] if an unrelated entry was evicted to make room. *)
val add : 'a t -> gen:int -> fp:string -> string -> 'a -> bool

val clear : 'a t -> unit
