(** The codified advisor: the paper's Tips 1–12 (plus the Section 3.10
    "between" guidance) rendered from the static analyzer's rule engine.

    The checks themselves live in [Analysis.Lint] (shared with
    [Engine.analyze] and the [\lint] / [--lint] surfaces, which add
    source positions and the non-tip [XQLINT0xx] rules on top); this
    module keeps the original advisor interface — a list of
    [{tip; title; detail}] records for the tip-numbered findings. *)

type advice = {
  tip : int;
      (** 1–12 = the paper's Tips; 13 = Section 3.10 (between); 14 =
          structural-index advice (reverse/sibling axes) *)
  title : string;
  detail : string;
}

let tip_title = Analysis.Rules.tip_title

let of_diags (diags : Analysis.Diag.t list) : advice list =
  List.filter_map
    (fun (d : Analysis.Diag.t) ->
      Option.map
        (fun tip -> { tip; title = tip_title tip; detail = d.Analysis.Diag.message })
        d.Analysis.Diag.tip)
    diags

(** Advise on a statement: SQL/XML if it parses as SQL, else stand-alone
    XQuery. *)
let advise ?(catalog : Planner.catalog option) (src : string) : advice list
    =
  of_diags
    (match Sqlxml.Sql_parser.parse src with
    | stmt -> Analysis.Lint.sql_lint ?catalog ~src stmt
    | exception Sqlxml.Sql_lexer.Sql_syntax_error _ ->
        let q, locs = Xquery.Parser.parse_query_loc src in
        let q = try Xquery.Static.resolve ~locs q with _ -> q in
        Analysis.Lint.xquery_lint ?catalog ~locs q)

let to_string (a : advice) = Printf.sprintf "[%s] %s" a.title a.detail
