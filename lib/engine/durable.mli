(** The durable data directory behind {!Engine.open_db}: MANIFEST,
    generation-numbered snapshots and write-ahead logs, checkpointing and
    crash recovery. See docs/DURABILITY.md for the on-disk format and the
    recovery algorithm. *)

(** A live data directory: the open WAL plus the generation it belongs
    to. One handle per directory; the engine facade owns it. *)
type t

(** The data-directory format this build reads/writes ([1]). Mismatches
    are refused with the coded error [XQDB0005]. *)
val format_version : int

val data_dir : t -> string
val generation : t -> int

(** [open_db ~data_dir ~mk ~apply ()] opens (or initializes) a data
    directory and runs crash recovery:

    - resolve the live generation from the MANIFEST (creating the
      directory at generation 0 when missing/empty; refusing a foreign
      directory or an incompatible format version with [XQDB0005]);
    - remove orphan files from a crashed checkpoint;
    - load the live snapshot, when one exists;
    - [mk db xindexes rindexes sdefs] builds the caller's execution
      context around the recovered catalog (attaching the loaded indexes
      and re-installing structural indexes from their definitions);
    - replay the live WAL's committed statement groups through
      [apply ctx], in log order;
    - reopen the WAL for appending, truncating the torn/uncommitted tail.

    Returns the handle, the context built by [mk], and the number of redo
    records applied (the [recovery_redo_records] counter).

    [sync] selects fsync-on-commit (default [true]); [count] receives the
    durability counters ([wal_appends], [wal_fsyncs], [page_reads],
    [page_writes], [pool_evictions]). *)
val open_db :
  ?sync:bool ->
  ?count:(string -> unit) ->
  data_dir:string ->
  mk:
    (Storage.Database.t ->
    Xmlindex.Xindex.t list ->
    Xmlindex.Rel_index.t list ->
    Xmlindex.Structindex.def list ->
    'ctx) ->
  apply:('ctx -> Wal.record -> unit) ->
  unit ->
  t * 'ctx * int

(** Run one mutating statement as a WAL group: append [Begin], run [f]
    (row journal records flow to the log while it runs), then — on
    success — append the optional [ddl] statement-text record and the
    [Commit], fsyncing in [sync] mode. If [f] raises, the group is left
    uncommitted and replay will skip it. *)
val statement : t -> ?ddl:string -> (unit -> 'a) -> 'a

(** Wire a table's row journal into the WAL. Records are appended only
    inside a {!statement} group, so recovery replay and undo rollback
    stay silent. *)
val journal_table : t -> Storage.Table.t -> unit

(** Explicit transactions: one WAL group spanning many statements.
    {!txn_begin} opens the group (caller holds the engine's writer
    slot, so no other group can interleave); every DML statement until
    the close journals into it. {!txn_commit} appends the Commit record
    (the transaction's durability point — a crash before it recovers to
    the transaction never having happened, never to a partial one).
    {!txn_abort} leaves the group uncommitted, which replay abandons. *)
val txn_begin : t -> unit

val txn_commit : t -> unit
val txn_abort : t -> unit

(** Write a new-generation snapshot of the catalog, atomically publish it
    via the MANIFEST, start a fresh WAL and remove the old generation's
    files. Fault points ["checkpoint.begin"] / ["checkpoint.end"] bracket
    the danger zone. *)
val checkpoint :
  t ->
  db:Storage.Database.t ->
  xindexes:Xmlindex.Xindex.t list ->
  rindexes:Xmlindex.Rel_index.t list ->
  sindexes:Xmlindex.Structindex.t list ->
  unit

(** Flush and close the WAL. Idempotent. *)
val close : t -> unit

(** Abandon the handle the way a crash would: drop the file descriptors
    without syncing. Test-only. *)
val simulate_crash : t -> unit
