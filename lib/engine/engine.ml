(** The database facade: one handle for DDL, SQL/XML, stand-alone XQuery,
    EXPLAIN and the advisor.

    {[
      let db = Engine.create () in
      Engine.sql db "CREATE TABLE orders (ordid integer, orddoc XML)" |> ignore;
      Engine.sql db "CREATE INDEX li_price ON orders(orddoc) \
                     USING XMLPATTERN '//lineitem/@price' AS DOUBLE" |> ignore;
      let items, plan =
        Engine.xquery db
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]"
      in
      ...
    ]} *)

(** Re-export: the Tips 1–12 advisor. *)
module Advisor = Advisor

type t = {
  sqlctx : Sqlxml.Sql_exec.ctx;
  registry : Xprof.Registry.t;
      (** process-lifetime metrics (statement counts, latency histogram,
          cumulative counters), fed after each statement while profiling
          is on *)
}

let database t = t.sqlctx.Sqlxml.Sql_exec.db

let catalog t : Planner.catalog =
  { Planner.db = database t; indexes = t.sqlctx.Sqlxml.Sql_exec.xindexes }

let create () =
  let t =
    {
      sqlctx = Sqlxml.Sql_exec.create (Storage.Database.create ());
      registry = Xprof.Registry.create ();
    }
  in
  (* the strict-mode gate: Sql_exec cannot depend on the analyzer, so the
     facade installs it (off until [set_strict_types true]) *)
  t.sqlctx.Sqlxml.Sql_exec.static_check <-
    Some
      (fun ~src stmt ->
        Analysis.Analyze.check_sql ~catalog:(catalog t) ~src stmt);
  t

(** Strict static typing: when on, statements with Error-severity
    diagnostics (e.g. the Query 14 XMLCAST-of-many) are rejected before
    execution. *)
let set_strict_types t b = t.sqlctx.Sqlxml.Sql_exec.strict_static <- b
let strict_types t = t.sqlctx.Sqlxml.Sql_exec.strict_static

let xml_indexes t = t.sqlctx.Sqlxml.Sql_exec.xindexes
let rel_indexes t = t.sqlctx.Sqlxml.Sql_exec.rindexes

(** Enable/disable index usage (for baselines and A/B benchmarks). *)
let set_use_indexes t b = t.sqlctx.Sqlxml.Sql_exec.use_indexes <- b
let use_indexes t = t.sqlctx.Sqlxml.Sql_exec.use_indexes

(** Resource budgets applied to every subsequent statement (SQL and
    stand-alone XQuery). Default: {!Xdm.Limits.unlimited}. *)
let set_limits t l = t.sqlctx.Sqlxml.Sql_exec.limits <- l
let limits t = t.sqlctx.Sqlxml.Sql_exec.limits

(* ------------------------------------------------------------------ *)
(* Profiling                                                           *)
(* ------------------------------------------------------------------ *)

(** The per-statement execution profile. While profiling is on, it is
    reset at every statement start; read it right after the statement
    whose profile you want ([Xprof.report]/[Xprof.to_json]). Disabled by
    default — the off path costs one branch per charge site. *)
let profile t : Xprof.t = t.sqlctx.Sqlxml.Sql_exec.prof

let set_profiling t b = Xprof.enable (profile t) b
let profiling t = (profile t).Xprof.on

(** Process-lifetime metrics, accumulated while profiling is on. *)
let registry t : Xprof.Registry.t = t.registry

(** Fold the just-finished statement's profile into the registry. *)
let record_statement t =
  if profiling t then begin
    let p = profile t in
    let r = t.registry in
    Xprof.Registry.incr r "statements_total";
    Xprof.Registry.observe r "statement_ms" (Xprof.total_ms p);
    List.iter
      (fun (name, v) -> Xprof.Registry.incr ~by:v r (name ^ "_total"))
      (Xprof.counters p);
    Xprof.Registry.set_gauge r "xml_indexes"
      (float_of_int (List.length t.sqlctx.Sqlxml.Sql_exec.xindexes));
    Xprof.Registry.set_gauge r "rel_indexes"
      (float_of_int (List.length t.sqlctx.Sqlxml.Sql_exec.rindexes))
  end

(* ------------------------------------------------------------------ *)
(* SQL/XML                                                             *)
(* ------------------------------------------------------------------ *)

(** Execute a SQL/XML statement. *)
let sql t (src : string) : Sqlxml.Sql_exec.result =
  match Sqlxml.Sql_exec.exec_string t.sqlctx src with
  | r ->
      record_statement t;
      r
  | exception ex ->
      record_statement t;
      raise ex

(** EXPLAIN trace of the last SQL statement. *)
let last_notes t = List.rev t.sqlctx.Sqlxml.Sql_exec.notes

(** Indexes used by the last SQL statement. *)
let last_indexes_used t = t.sqlctx.Sqlxml.Sql_exec.used

(* ------------------------------------------------------------------ *)
(* Stand-alone XQuery                                                  *)
(* ------------------------------------------------------------------ *)

(** Run a stand-alone XQuery, using eligible indexes to pre-filter
    collections. Returns the result and the plan (with EXPLAIN notes). *)
let xquery t (src : string) : Xdm.Item.seq * Planner.t =
  if strict_types t then begin
    let q, locs = Xquery.Parser.parse_query_loc src in
    Analysis.Analyze.check_xquery ~catalog:(catalog t) ~locs q
  end;
  let prof = profile t in
  Xprof.start_statement prof;
  match
    if use_indexes t then
      Planner.run_xquery ~limits:(limits t) ~prof (catalog t) src
    else
      ( Planner.run_xquery_noindex ~limits:(limits t) ~prof (catalog t) src,
        { Planner.restrictions = []; notes = [ "index use disabled" ];
          indexes_used = [] } )
  with
  | r ->
      Xprof.finish_statement prof;
      record_statement t;
      r
  | exception ex ->
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Run a stand-alone XQuery with a full collection scan (baseline). *)
let xquery_noindex t (src : string) : Xdm.Item.seq =
  let prof = profile t in
  Xprof.start_statement prof;
  match Planner.run_xquery_noindex ~limits:(limits t) ~prof (catalog t) src with
  | r ->
      Xprof.finish_statement prof;
      record_statement t;
      r
  | exception ex ->
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Serialize a result sequence the way a query shell would. *)
let to_xml (seq : Xdm.Item.seq) : string = Xmlparse.Xml_writer.seq_to_string seq

(* ------------------------------------------------------------------ *)
(* Bulk loading                                                        *)
(* ------------------------------------------------------------------ *)

(** Insert pre-rendered XML documents into [table]; non-XML columns get
    the row number / NULLs. Faster than going through INSERT parsing.
    The whole load is one atomic statement: a failure on the Nth document
    (parse error, injected fault) rolls back every row and index entry
    added so far. *)
let load_documents t ~table ~column (docs : string list) : unit =
  let tbl = Storage.Database.table_exn (database t) table in
  let coli = Storage.Table.col_index_exn tbl column in
  let prof = profile t in
  Xprof.start_statement prof;
  let log = Storage.Undo.create ~prof () in
  match
    Xprof.spanned prof "LOAD" (fun () ->
        List.iteri
          (fun i doc ->
            Xprof.row prof;
            let values =
              List.mapi
                (fun j (c : Storage.Table.col_def) ->
                  if j = coli then Storage.Sql_value.Varchar doc
                  else
                    match c.Storage.Table.col_type with
                    | Storage.Sql_value.TInt ->
                        Storage.Sql_value.Int (Int64.of_int (i + 1))
                    | _ -> Storage.Sql_value.Null)
                tbl.Storage.Table.cols
            in
            ignore (Storage.Table.insert ~log tbl values))
          docs)
  with
  | () ->
      Storage.Undo.commit log;
      Xprof.finish_statement prof;
      record_statement t
  | exception ex ->
      Storage.Undo.rollback log;
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Re-derive every XML index's expected entries from its table's current
    documents and diff them against the B+Tree. Returns one
    [(index name, discrepancies)] pair per XML index; all-empty lists mean
    the indexes are exactly consistent with the stored data. *)
let check_consistency t : (string * string list) list =
  List.map
    (fun (idx : Xmlindex.Xindex.t) ->
      let d = idx.Xmlindex.Xindex.def in
      let tbl = Storage.Database.table_exn (database t) d.Xmlindex.Xindex.table in
      let pt = Storage.Table.path_table_exn tbl d.Xmlindex.Xindex.column in
      let docs = Storage.Table.xml_docs tbl d.Xmlindex.Xindex.column in
      ( d.Xmlindex.Xindex.iname,
        Xmlindex.Xindex.check_consistency idx pt docs ))
    (xml_indexes t)

(** Validate every document of an XML column against [schema] in place
    (per-document typing, Section 2.1 of the paper). Returns the number of
    annotated nodes. *)
let validate_column t ~table ~column (schema : Xschema.t) : int =
  let tbl = Storage.Database.table_exn (database t) table in
  List.fold_left
    (fun acc (_, doc) -> acc + Xschema.validate schema doc)
    0
    (Storage.Table.xml_docs tbl column)

(* ------------------------------------------------------------------ *)
(* Advice                                                              *)
(* ------------------------------------------------------------------ *)

(** Run the codified Tips 1–12 advisor on a statement (auto-detects SQL vs
    stand-alone XQuery by attempting the SQL parser first). *)
let advise t (src : string) : Advisor.advice list =
  Advisor.advise ~catalog:(catalog t) src

(* ------------------------------------------------------------------ *)
(* Static analysis                                                     *)
(* ------------------------------------------------------------------ *)

(** Run the full static analyzer (type & cardinality checks, path
    checks, and every lint rule) on a statement. Never raises: syntax
    errors come back as diagnostics. *)
let analyze t (src : string) : Analysis.Diag.t list =
  Analysis.Analyze.analyze_string ~catalog:(catalog t) src
