(** The database facade: one handle for DDL, SQL/XML, stand-alone XQuery,
    prepared statements, streaming cursors, EXPLAIN and the advisor.

    {[
      let db = Engine.create () in
      ignore (Engine.exec db "CREATE TABLE orders (ordid integer, orddoc XML)");
      ignore (Engine.exec db
        "CREATE INDEX li_price ON orders(orddoc) \
         USING XMLPATTERN '//lineitem/@price' AS DOUBLE");
      let st =
        Engine.prepare db
          "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > $p]"
      in
      let out = Engine.execute st ~vars:[ ("p", [ Xdm.Item.A (Xdm.Atomic.Double 100.) ]) ] in
      ...
    ]}

    Every statement — prepared or not — goes through a keyed plan cache:
    the compiled front half (parse, static resolution, eligibility
    analysis) is cached under the statement text and validated against
    the catalog generation and a settings fingerprint, so repeated
    {!exec} of the same text amortizes compilation exactly like an
    explicit {!prepare}. DDL and bulk loads invalidate cached plans. *)

(** Re-export: the Tips 1–12 advisor. *)
module Advisor = Advisor

(** Re-export: the LRU plan cache (for its [stats] record). *)
module Plan_cache = Plan_cache

module E = Sqlxml.Sql_exec
module SV = Storage.Sql_value

(** The cached, data-independent front half of a statement. Index
    probing is data-dependent (the planner consults index contents), so
    it happens per execution; what is cached is everything up to it. *)
type compiled_stmt =
  | CSql of Sqlxml.Sql_ast.stmt * int
      (** parsed statement + number of [?] parameter slots *)
  | CXquery of Planner.compiled

(** One published MVCC state: a copy-on-write catalog image plus
    guard-wrapped views of the live indexes, stamped with the commit
    sequence number it reflects. Read transactions pin a snapshot and
    evaluate against it for their whole lifetime; the single writer
    publishes a fresh one at every commit (unchanged tables reuse their
    cached copies — see {!Storage.Table.snapshot}). *)
type snapshot = {
  snap_csn : int;
  snap_db : Storage.Database.t;
  snap_x : Xmlindex.Xindex.t list;  (** snapshot views, ctx (newest-first) order *)
  snap_r : Xmlindex.Rel_index.t list;
  snap_s : Xmlindex.Structindex.t list;
      (** structural indexes, shared with the live engine: encodings are
          immutable arrays keyed by root node id, and snapshot tables
          share document trees by reference — a doc replaced after the
          snapshot just loses its entry and falls back to tree-walk *)
}

type t = {
  sqlctx : E.ctx;
  registry : Xprof.Registry.t;
      (** process-lifetime metrics (statement counts, latency histogram,
          cumulative counters), fed after each statement while profiling
          is on; plan-cache and cursor counters accumulate always *)
  cache : compiled_stmt Plan_cache.t;
  mutable dur : Durable.t option;
      (** the data directory behind {!open_db}; [None] = in-memory *)
  (* -- MVCC transaction state -- *)
  mutable committed : snapshot option;
      (** the last published snapshot; guarded by [snap_mu] *)
  mutable csn : int;  (** commit sequence number: bumped per write commit *)
  mutable concurrent : bool;
      (** snapshot-publication mode: off until the first {!Txn.begin_}
          (or the server enables it), so purely sequential embedders pay
          nothing for MVCC *)
  mutable writer_txn : bool;
      (** an explicit read-write transaction holds the writer slot;
          guarded by [snap_mu] *)
  writer_mu : Mutex.t;
      (** the single-writer slot: autocommit writes hold it per
          statement, explicit read-write transactions across their whole
          lifetime *)
  snap_mu : Mutex.t;  (** leaf lock: [committed]/[writer_txn] pointer flips *)
  compile_mu : Mutex.t;
      (** serializes plan-cache lookup + compilation (compilation reads
          the live catalog, and the cache's own lock is a no-op on the
          sequential Xpar backend) *)
  snap_memo_lock : Xpar.Lock.t;
      (** one shared embedded-query memo lock for every snapshot context
          this engine builds, so per-statement contexts don't register
          fresh Lockorder names *)
}

(* Lock-order identities are module-level: every engine's writer slot is
   the same lock from the tracker's point of view, keeping its tables
   small across the many short-lived engines the test suites create.
   Documented order: engine.writer > engine.compile > engine.snapshot
   (a later lock is never taken while holding an earlier one... the
   writer may take compile (DDL) and snapshot (publish); compile and
   snapshot never nest the other way). *)
let writer_lock_id = Xpar.Lockorder.register "engine.writer"
let snap_lock_id = Xpar.Lockorder.register "engine.snapshot"
let compile_lock_id = Xpar.Lockorder.register "engine.compile"

let with_mu id mu f =
  Xpar.Lockorder.acquiring id;
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      Xpar.Lockorder.released id;
      v
  | exception e ->
      Mutex.unlock mu;
      Xpar.Lockorder.released id;
      raise e

(** Transaction-discipline errors: write-write conflicts, writes in a
    read-only transaction, DDL/checkpoint inside an explicit
    transaction, statements on a finished handle. *)
let txn_error fmt = Xdm.Xerror.raise_err "XQDB0007" fmt

let database t = E.database t.sqlctx

let catalog t : Planner.catalog =
  {
    Planner.db = database t;
    indexes = E.xml_indexes t.sqlctx;
    sindexes = E.struct_indexes t.sqlctx;
  }

let mk_engine ?(registry = Xprof.Registry.create ()) db =
  let t =
    {
      sqlctx = E.create db;
      registry;
      cache = Plan_cache.create ();
      dur = None;
      committed = None;
      csn = 0;
      concurrent = false;
      writer_txn = false;
      writer_mu = Mutex.create ();
      snap_mu = Mutex.create ();
      compile_mu = Mutex.create ();
      snap_memo_lock = Xpar.Lock.create ~name:"sqlexec.memo.snapshot" ();
    }
  in
  (* the strict-mode gate: Sql_exec cannot depend on the analyzer, so the
     facade installs it (off until [set_strict_types true]) *)
  E.set_static_check t.sqlctx
    (Some
       (fun ~src stmt ->
         Analysis.Analyze.check_sql ~catalog:(catalog t) ~src stmt));
  t

let create () = mk_engine (Storage.Database.create ())

(** Strict static typing: when on, statements with Error-severity
    diagnostics (e.g. the Query 14 XMLCAST-of-many) are rejected before
    execution. Toggling it changes the settings fingerprint, so cached
    plans compiled under the other mode are recompiled. *)
let set_strict_types t b = E.set_strict_static t.sqlctx b

let strict_types t = E.strict_static t.sqlctx
let xml_indexes t = E.xml_indexes t.sqlctx
let rel_indexes t = E.rel_indexes t.sqlctx
let struct_indexes t = E.struct_indexes t.sqlctx

(** Enable/disable index usage (for baselines and A/B benchmarks). *)
let set_use_indexes t b = E.set_use_indexes t.sqlctx b

let use_indexes t = E.use_indexes t.sqlctx

(** Resource budgets applied to every subsequent statement (SQL and
    stand-alone XQuery). Default: {!Xdm.Limits.unlimited}. *)
let set_limits t l = E.set_limits t.sqlctx l

let limits t = E.limits t.sqlctx

(** Parallelism for scan-shaped work (full-collection scans, AND/OR
    candidate-set intersection, bulk load + index build) in subsequent
    statements. Clamped to [1 .. Xpar.max_parallelism]; sizes the
    process-wide domain pool (n - 1 workers — the pool is shared, so the
    last [set_parallelism] on any handle wins). On OCaml 4.x builds the
    sequential Xpar fallback keeps execution single-threaded with
    identical results. *)
let set_parallelism t n =
  let n = max 1 (min n Xpar.max_parallelism) in
  E.set_parallelism t.sqlctx n;
  Xpar.set_parallelism n;
  Xprof.Registry.set_gauge t.registry "parallelism" (float_of_int n)

let parallelism t = E.parallelism t.sqlctx

(* ------------------------------------------------------------------ *)
(* Profiling                                                           *)
(* ------------------------------------------------------------------ *)

(** The per-statement execution profile. While profiling is on, it is
    reset at every statement start; read it right after the statement
    whose profile you want ([Xprof.report]/[Xprof.to_json]). Disabled by
    default — the off path costs one branch per charge site. *)
let profile t : Xprof.t = E.profile t.sqlctx

let set_profiling t b = Xprof.enable (profile t) b
let profiling t = (profile t).Xprof.on

(** Process-lifetime metrics. Statement counters accumulate while
    profiling is on; plan-cache and cursor counters accumulate always
    (they cost one hashtable update per statement, not per row). *)
let registry t : Xprof.Registry.t = t.registry

(** Fold the just-finished statement's profile into the registry. *)
let record_statement t =
  if profiling t then begin
    let p = profile t in
    let r = t.registry in
    Xprof.Registry.incr r "statements_total";
    Xprof.Registry.observe r "statement_ms" (Xprof.total_ms p);
    List.iter
      (fun (name, v) -> Xprof.Registry.incr ~by:v r (name ^ "_total"))
      (Xprof.counters p);
    Xprof.Registry.set_gauge r "xml_indexes"
      (float_of_int (List.length (xml_indexes t)));
    Xprof.Registry.set_gauge r "rel_indexes"
      (float_of_int (List.length (rel_indexes t)))
  end

(** Mirror the lock-order tracker's aggregates into the registry
    ([lock_acquisitions], [lock_order_edges], [lock_order_cycles]), so
    a cycle slipping into production is one scrape away from an alert.
    Called by the shell before printing [\metrics]. *)
let refresh_lock_metrics t =
  let s = Xpar.Lockorder.stats () in
  let r = t.registry in
  Xprof.Registry.set_gauge r "lock_acquisitions"
    (float_of_int s.Xpar.Lockorder.acquisitions);
  Xprof.Registry.set_gauge r "lock_order_edges"
    (float_of_int s.Xpar.Lockorder.edges);
  Xprof.Registry.set_gauge r "lock_order_cycles"
    (float_of_int s.Xpar.Lockorder.cycles)

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

(** Open (or create) a durable database in [data_dir], running crash
    recovery first: load the live snapshot, replay the committed WAL
    tail, truncate torn/uncommitted records. [sync:false] still writes
    the WAL at every commit but skips the fsync (faster loads, durable
    against process crashes but not power loss). Refuses directories with
    an unrecognized or incompatible on-disk format with [XQDB0005]. *)
let open_db ?(sync = true) ~data_dir () : t =
  let registry = Xprof.Registry.create () in
  let count name = Xprof.Registry.incr registry name in
  let dur, t, redo =
    Durable.open_db ~sync ~count ~data_dir
      ~mk:(fun db xindexes rindexes sdefs ->
        let t = mk_engine ~registry db in
        (* ctx index lists are built by consing, newest first; the
           snapshot preserved that order, so attach in reverse *)
        List.iter (E.attach_xml_index t.sqlctx) (List.rev xindexes);
        List.iter (E.attach_rel_index t.sqlctx) (List.rev rindexes);
        (* structural indexes persist as definitions; re-encode the
           freshly parsed documents (WAL replay then keeps the
           encodings fresh through the maintenance hooks) *)
        List.iter (E.attach_struct_index t.sqlctx) (List.rev sdefs);
        t)
      ~apply:(fun t rec_ ->
        match rec_ with
        | Wal.Row (tname, op) ->
            Storage.Table.apply_jop
              (Storage.Database.table_exn (database t) tname)
              op
        | Wal.Ddl text -> ignore (E.exec_string t.sqlctx text)
        | Wal.Begin _ | Wal.Commit _ -> ())
      ()
  in
  Xprof.Registry.incr ~by:redo registry "recovery_redo_records";
  t.dur <- Some dur;
  (* journal every table — current and future (CREATE TABLE) — into the
     WAL; records flow only inside a statement group *)
  Storage.Database.set_table_hook (database t) (Durable.journal_table dur);
  t

(** The data directory behind this handle; [None] for in-memory. *)
let data_dir t = Option.map Durable.data_dir t.dur

(** Run one mutating statement as a WAL group (no-op in-memory and for
    reads). DDL is logged by statement text, DML by the row journal
    records its execution emits. *)
let with_wal t (cls : [ `Read | `Dml | `Ddl ]) ~(src : string option)
    (f : unit -> 'a) : 'a =
  match (t.dur, cls) with
  | None, _ | _, `Read -> f ()
  | Some dur, `Dml -> Durable.statement dur f
  | Some dur, `Ddl -> Durable.statement dur ?ddl:src f

(* ------------------------------------------------------------------ *)
(* MVCC snapshots & the single-writer slot                             *)
(* ------------------------------------------------------------------ *)

(** Build (but do not publish) a snapshot of the current committed
    state. Caller holds the writer slot, so nothing mutates underneath:
    tables are copy-on-write ({!Storage.Table.snapshot} reuses cached
    copies for tables untouched since the last publish), indexes become
    guard-wrapped views sharing the live trees. The guard is the
    process-wide shrink epoch: as long as no index entry has been
    *removed* since this snapshot was taken, a probe against the live
    tree is a sound Definition-1 pre-filter for the snapshot (extra row
    ids from newer inserts are harmless, and only removals could lose
    one). A failed guard degrades the probe to the snapshot table's full
    row-id set — still a superset, never a wrong answer. *)
let build_snapshot t : snapshot =
  let snap_db = Storage.Database.snapshot (database t) in
  let epoch = Storage.Table.shrink_epoch () in
  let guard () = Storage.Table.shrink_epoch () = epoch in
  let all_rows tname () =
    match Storage.Database.find_table snap_db tname with
    | None -> Xdm.Int_set.empty
    | Some tbl ->
        List.fold_left
          (fun acc (r : Storage.Table.row) ->
            Xdm.Int_set.add r.Storage.Table.row_id acc)
          Xdm.Int_set.empty (Storage.Table.rows tbl)
  in
  let snap_x =
    List.map
      (fun (i : Xmlindex.Xindex.t) ->
        Xmlindex.Xindex.snapshot_view i ~guard
          ~fallback:(all_rows i.Xmlindex.Xindex.def.Xmlindex.Xindex.table))
      (xml_indexes t)
  in
  let snap_r =
    List.map
      (fun (i : Xmlindex.Rel_index.t) ->
        Xmlindex.Rel_index.snapshot_view i ~guard
          ~fallback:(all_rows i.Xmlindex.Rel_index.table))
      (rel_indexes t)
  in
  { snap_csn = 0; snap_db; snap_x; snap_r; snap_s = struct_indexes t }

(** Publish the current state as the newest committed snapshot. Caller
    holds the writer slot. The csn bump and the pointer flip happen
    together under [snap_mu], so readers always observe a snapshot whose
    stamp matches the engine's csn — in steady concurrent state a reader
    never finds the published snapshot stale. *)
let publish_locked t =
  if t.concurrent then begin
    let s = build_snapshot t in
    with_mu snap_lock_id t.snap_mu (fun () ->
        t.csn <- t.csn + 1;
        t.committed <- Some { s with snap_csn = t.csn });
    Xprof.Registry.incr t.registry "snapshots_published_total"
  end

(** Run [f] holding the autocommit writer slot. Refused (XQDB0007) while
    an explicit read-write transaction owns the slot — queueing behind a
    potentially long transaction would be a silent lock, and the caller
    asked for autocommit. Publishes the resulting state on both success
    and failure: a failed statement's undo rollback also changed table
    versions, so the cached snapshot must be refreshed either way. *)
let autocommit_write t (f : unit -> 'a) : 'a =
  with_mu snap_lock_id t.snap_mu (fun () ->
      if t.writer_txn then
        txn_error
          "write-write conflict: an explicit read-write transaction holds \
           the writer slot");
  with_mu writer_lock_id t.writer_mu (fun () ->
      match f () with
      | v ->
          publish_locked t;
          v
      | exception e ->
          publish_locked t;
          raise e)

(** Switch the engine into snapshot-publication mode (idempotent). Off
    by default so purely sequential embedders never pay for snapshot
    copies; the first {!Txn.begin_} — or the network server at startup —
    turns it on, after which every write commit publishes. *)
let enable_concurrent t =
  if not t.concurrent then begin
    t.concurrent <- true;
    (* publish the initial snapshot under the writer slot *)
    autocommit_write t (fun () -> ())
  end

let concurrent_mode t = t.concurrent

(** Pin the newest committed snapshot. In steady concurrent state this
    is one mutex-protected pointer read; the slow path (no snapshot yet,
    or writes happened before [concurrent] was switched on) takes the
    writer slot once to publish. *)
let rec pin t : snapshot =
  let fresh =
    with_mu snap_lock_id t.snap_mu (fun () ->
        match t.committed with
        | Some s when s.snap_csn = t.csn -> Some s
        | _ -> None)
  in
  match fresh with
  | Some s -> s
  | None ->
      autocommit_write t (fun () -> ());
      pin t

(* ------------------------------------------------------------------ *)
(* Execution environments                                              *)
(* ------------------------------------------------------------------ *)

(** Where a statement runs: an execution context plus the planner
    catalog it should consult. The live environment is the engine's own
    context; snapshot environments are private per-statement (or
    per-cursor) contexts over a pinned snapshot, so concurrent readers
    share nothing mutable with the writer or each other. *)
type exec_env = { ectx : E.ctx; ecat : Planner.catalog }

let live_env t : exec_env = { ectx = t.sqlctx; ecat = catalog t }

(** A private execution context over a pinned snapshot: fresh [E.ctx]
    around the snapshot catalog with the snapshot index views attached,
    inheriting the engine's execution settings (index use, parallelism,
    limits — overridable per call for per-session budgets). Cheap to
    build: the expensive copy-on-write happened at publish time. *)
let read_env ?limits t (snap : snapshot) : exec_env =
  let c = E.create ~memo_lock:t.snap_memo_lock snap.snap_db in
  (* ctx index lists are built by consing, newest first *)
  List.iter (E.attach_xml_index c) (List.rev snap.snap_x);
  List.iter (E.attach_rel_index c) (List.rev snap.snap_r);
  List.iter (E.adopt_struct_index c) (List.rev snap.snap_s);
  E.set_use_indexes c (use_indexes t);
  E.set_parallelism c (parallelism t);
  E.set_limits c (match limits with Some l -> l | None -> E.limits t.sqlctx);
  {
    ectx = c;
    ecat =
      {
        Planner.db = snap.snap_db;
        indexes = snap.snap_x;
        sindexes = snap.snap_s;
      };
  }

(** Apply a per-call limits override to a (live) context for the
    duration of [f]. Snapshot contexts are private, so they set limits
    directly; this save/restore is for the engine's own context. *)
let with_limits_override ctx (limits : Xdm.Limits.t option) f =
  match limits with
  | None -> f ()
  | Some l ->
      let saved = E.limits ctx in
      E.set_limits ctx l;
      Fun.protect ~finally:(fun () -> E.set_limits ctx saved) f

(** Write a new-generation snapshot, publish it atomically and truncate
    the WAL. No-op on an in-memory handle. Takes the writer slot (and is
    refused inside an explicit transaction): a checkpoint must capture a
    committed state, not a half-applied one. *)
let checkpoint t =
  (* refused while an explicit transaction holds the writer slot — even
     on an in-memory engine, where it is otherwise a no-op — so the
     discipline does not depend on how the engine was opened *)
  with_mu snap_lock_id t.snap_mu (fun () ->
      if t.writer_txn then
        txn_error "checkpoint is not allowed inside an explicit transaction");
  match t.dur with
  | None -> ()
  | Some dur ->
      autocommit_write t (fun () ->
          Durable.checkpoint dur ~db:(database t)
            ~xindexes:(E.xml_indexes t.sqlctx)
            ~rindexes:(E.rel_indexes t.sqlctx)
            ~sindexes:(E.struct_indexes t.sqlctx));
      Xprof.Registry.incr t.registry "checkpoints_total"

(** Flush and close the data directory. The handle keeps working as an
    in-memory database afterwards. Idempotent; no-op in-memory. *)
let close t =
  match t.dur with
  | None -> ()
  | Some dur ->
      Durable.close dur;
      t.dur <- None

(** Abandon the durable handle the way a crash would — drop the file
    descriptors without syncing, leaving the in-memory state untouched
    for comparison. Test-only (the recovery torture suite). *)
let simulate_crash t =
  match t.dur with
  | None -> ()
  | Some dur ->
      Durable.simulate_crash dur;
      t.dur <- None

(* ------------------------------------------------------------------ *)
(* Error discipline                                                    *)
(* ------------------------------------------------------------------ *)

(** Every sealed entry point funnels through this wrapper so that only
    [Xdm.Xerror.Error] escapes: layer-private exceptions are re-raised
    under a stable error code. [Faultinject.Injected] is deliberately
    left alone — it is a testing hook, not a query error. *)
let coerce_errors (f : unit -> 'a) : 'a =
  try f () with
  | Sqlxml.Sql_lexer.Sql_syntax_error msg ->
      Xdm.Xerror.syntax_error "%s" msg
  | E.Sql_runtime_error msg -> Xdm.Xerror.dml_error "%s" msg
  | Xmlparse.Xml_parser.Xml_error { pos; msg } ->
      Xdm.Xerror.raise_err "FODC0002"
        "malformed XML document (offset %d): %s" pos msg
  | Failure msg -> Xdm.Xerror.raise_err "XQDB0004" "internal error: %s" msg

(* ------------------------------------------------------------------ *)
(* The plan cache                                                      *)
(* ------------------------------------------------------------------ *)

(* Settings that change what compilation itself produces. Index use and
   limits only affect execution, so they are deliberately absent. *)
let fingerprint t = if strict_types t then "strict" else "lax"

(* Both take the compile lock: the cache's counters and table are
   otherwise mutated concurrently by lookup_compiled. *)
let plan_cache_stats t : Plan_cache.stats =
  with_mu compile_lock_id t.compile_mu (fun () -> Plan_cache.stats t.cache)

(** Drop every cached plan (used by benchmarks to time cold compiles). *)
let reset_plan_cache t =
  with_mu compile_lock_id t.compile_mu (fun () -> Plan_cache.clear t.cache)

(* SQL keywords that can start a statement: when a source fails both
   parsers, report it with the front end it was evidently written for. *)
let looks_like_sql (src : string) : bool =
  let src = String.trim src in
  let n = String.length src in
  let is_word c = ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') in
  let rec stop i = if i < n && is_word src.[i] then stop (i + 1) else i in
  let w = String.uppercase_ascii (String.sub src 0 (stop 0)) in
  List.mem w
    [ "SELECT"; "VALUES"; "INSERT"; "UPDATE"; "DELETE"; "CREATE"; "DROP";
      "EXPLAIN" ]

(** Compile a statement source: SQL/XML if it parses as SQL, else
    stand-alone XQuery whose free variables become named parameter
    slots. Strict mode runs the static analyzer here — at compile time —
    so cached re-executions don't pay for it again. *)
let compile_stmt t (src : string) : compiled_stmt =
  match Sqlxml.Sql_parser.parse_params src with
  | stmt, nslots ->
      (if strict_types t then
         match E.static_check t.sqlctx with
         | Some check -> check ~src stmt
         | None -> ());
      CSql (stmt, nslots)
  | exception Sqlxml.Sql_lexer.Sql_syntax_error sql_msg -> (
      match Planner.compile src with
      | c ->
          (* parameterized queries are checked per-binding at execute
             time; a closed query gets the full strict gate here *)
          if strict_types t && Planner.compiled_params c = [] then begin
            let q, locs = Xquery.Parser.parse_query_loc src in
            Analysis.Analyze.check_xquery ~catalog:(catalog t) ~locs q
          end;
          CXquery c
      | exception Xdm.Xerror.Error _ when looks_like_sql src ->
          Xdm.Xerror.syntax_error "%s" sql_msg)

(** Fetch the compiled form of [src] from the plan cache, compiling on a
    miss. Returns the compiled statement plus a cache-event diagnostic
    line. *)
let lookup_compiled t (src : string) : compiled_stmt * string =
  (* one statement compiles at a time: compilation reads the live
     catalog, and the cache's own lock is a no-op on the sequential Xpar
     backend. DDL executes under this same lock (inside the writer
     slot), so a concurrent compile never sees a half-applied schema.
     Cache hits stay cheap — the lock outlines only lookup + compile. *)
  with_mu compile_lock_id t.compile_mu @@ fun () ->
  let gen = E.catalog_gen t.sqlctx in
  let fp = fingerprint t in
  let before = Plan_cache.stats t.cache in
  match Plan_cache.find t.cache ~gen ~fp src with
  | Some cs ->
      Xprof.Registry.incr t.registry "plan_cache_hits_total";
      (cs, "plan cache: hit")
  | None ->
      Xprof.Registry.incr t.registry "plan_cache_misses_total";
      let invalidated =
        (Plan_cache.stats t.cache).Plan_cache.invalidations
        > before.Plan_cache.invalidations
      in
      if invalidated then
        Xprof.Registry.incr t.registry "plan_cache_invalidations_total";
      let cs = compile_stmt t src in
      if Plan_cache.add t.cache ~gen ~fp src cs then
        Xprof.Registry.incr t.registry "plan_cache_evictions_total";
      Xprof.Registry.set_gauge t.registry "plan_cache_size"
        (float_of_int (Plan_cache.length t.cache));
      ( cs,
        if invalidated then
          "plan cache: invalidated (catalog or settings changed), recompiled"
        else "plan cache: miss, compiled" )

(* ------------------------------------------------------------------ *)
(* Parameter binding                                                   *)
(* ------------------------------------------------------------------ *)

let plural n = if n = 1 then "" else "s"

let check_sql_arity (nslots : int) (params : SV.t list) vars =
  if vars <> [] then
    Xdm.Xerror.type_error
      "SQL statements take positional (?) parameters; named variable \
       bindings apply to XQuery statements";
  let supplied = List.length params in
  if supplied <> nslots then
    Xdm.Xerror.raise_err "XPDY0002"
      "statement has %d parameter slot%s but %d value%s supplied" nslots
      (plural nslots) supplied (plural supplied)

let check_xquery_bindings (c : Planner.compiled)
    (vars : (string * Xdm.Item.seq) list) (params : SV.t list) =
  if params <> [] then
    Xdm.Xerror.type_error
      "XQuery statements take named ($var) parameters; positional (?) \
       values apply to SQL statements";
  let slots = Planner.compiled_params c in
  List.iter
    (fun (v, _) ->
      if not (List.mem v slots) then
        Xdm.Xerror.undefined
          "unknown parameter $%s (statement declares: %s)" v
          (if slots = [] then "none"
           else String.concat ", " (List.map (fun s -> "$" ^ s) slots)))
    vars;
  List.iter
    (fun s ->
      if not (List.mem_assoc s vars) then
        Xdm.Xerror.raise_err "XPDY0002" "parameter $%s is not bound" s)
    slots

(** Parse a parameter literal the way the shell's [\exec] does: single
    quotes force a string, otherwise integers and doubles are recognized
    numerically. With [~ty], the value is cast (raising the standard
    [FORG0001] on failure). *)
let atomic_of_string ?(ty : Xdm.Atomic.atomic_type option) (s : string) :
    Xdm.Atomic.t =
  let v =
    let n = String.length s in
    if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then
      Xdm.Atomic.Str (String.sub s 1 (n - 2))
    else
      match Int64.of_string_opt s with
      | Some i -> Xdm.Atomic.Integer i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Xdm.Atomic.Double f
          | None -> Xdm.Atomic.Str s)
  in
  match ty with None -> v | Some ty -> Xdm.Atomic.cast v ty

let sql_value_of_string (s : string) : SV.t =
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then
    SV.Varchar (String.sub s 1 (n - 2))
  else
    match Int64.of_string_opt s with
    | Some i -> SV.Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> SV.Double f
        | None -> SV.Varchar s)

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

type payload =
  | Rows of { cols : string list; rows : SV.t list list }
  | Items of Xdm.Item.seq

type outcome = {
  payload : payload;
  notes : string list;  (** the planner's EXPLAIN trace *)
  indexes_used : string list;
  diagnostics : string list;
      (** engine-level events: plan-cache hit/miss/invalidation, … *)
  profile : Xprof.Json.t option;
      (** snapshot of the statement profile, when profiling is on *)
}

let outcome_rows (o : outcome) : SV.t list list =
  match o.payload with
  | Rows { rows; _ } -> rows
  | Items _ -> Xdm.Xerror.type_error "outcome holds items, not rows"

let outcome_items (o : outcome) : Xdm.Item.seq =
  match o.payload with
  | Items items -> items
  | Rows _ -> Xdm.Xerror.type_error "outcome holds rows, not items"

let profile_snapshot t =
  if profiling t then Some (Xprof.to_json (profile t)) else None

(* ------------------------------------------------------------------ *)
(* Execution of compiled statements                                    *)
(* ------------------------------------------------------------------ *)

(** Statement class for transaction dispatch: XQuery never writes. *)
let class_of (cs : compiled_stmt) : [ `Read | `Dml | `Ddl ] =
  match cs with
  | CSql (stmt, _) -> E.stmt_class stmt
  | CXquery _ -> `Read

(** Run a compiled statement against an environment. [wrap] brackets the
    SQL execution proper — identity for reads and transaction-scoped
    statements, the WAL statement group (plus compile lock for DDL) for
    autocommit writes. *)
let run_env t (env : exec_env) (cs : compiled_stmt)
    ~(wrap : [ `Read | `Dml | `Ddl ] -> (unit -> E.result) -> E.result)
    ~(diag : string) ~(params : SV.t list)
    ~(vars : (string * Xdm.Item.seq) list) : outcome =
  match cs with
  | CSql (stmt, nslots) -> (
      check_sql_arity nslots params vars;
      E.set_params env.ectx (Array.of_list params);
      let fin () = E.set_params env.ectx [||] in
      match wrap (E.stmt_class stmt) (fun () -> E.exec env.ectx stmt) with
      | r ->
          fin ();
          record_statement t;
          {
            payload = Rows { cols = r.E.rcols; rows = r.E.rrows };
            notes = E.last_notes env.ectx;
            indexes_used = E.last_used env.ectx;
            diagnostics = [ diag ];
            profile = profile_snapshot t;
          }
      | exception ex ->
          fin ();
          record_statement t;
          raise ex)
  | CXquery c -> (
      check_xquery_bindings c vars params;
      let prof = E.profile env.ectx in
      Xprof.start_statement prof;
      match
        Planner.execute_compiled ~limits:(E.limits env.ectx) ~prof
          ~use_indexes:(E.use_indexes env.ectx) ~vars
          ~parallelism:(E.parallelism env.ectx) env.ecat c
      with
      | items, plan ->
          Xprof.finish_statement prof;
          record_statement t;
          {
            payload = Items items;
            notes = plan.Planner.notes;
            indexes_used = plan.Planner.indexes_used;
            diagnostics = [ diag ];
            profile = profile_snapshot t;
          }
      | exception ex ->
          Xprof.finish_statement prof;
          record_statement t;
          raise ex)

(** The WAL-group [wrap] for autocommit writes; caller holds the writer
    slot. DDL additionally takes the compile lock so no statement
    compiles against a half-applied schema. *)
let autocommit_wrap t ~(src : string) (cls : [ `Read | `Dml | `Ddl ])
    (f : unit -> 'a) : 'a =
  match cls with
  | `Ddl ->
      with_mu compile_lock_id t.compile_mu (fun () ->
          with_wal t cls ~src:(Some src) f)
  | `Read | `Dml -> with_wal t cls ~src:(Some src) f

(** Implicit-transaction (autocommit) execution: reads run against the
    newest committed snapshot once the engine is in concurrent mode
    (never blocking behind the writer slot), writes take the writer slot
    for the duration of one statement. *)
let run_implicit t (cs : compiled_stmt) ~(src : string) ~(diag : string)
    ~params ~vars ~(limits : Xdm.Limits.t option) : outcome =
  match class_of cs with
  | `Read ->
      if t.concurrent then
        run_env t (read_env ?limits t (pin t)) cs
          ~wrap:(fun _ f -> f ())
          ~diag ~params ~vars
      else
        with_limits_override t.sqlctx limits (fun () ->
            run_env t (live_env t) cs
              ~wrap:(fun _ f -> f ())
              ~diag ~params ~vars)
  | `Dml | `Ddl ->
      autocommit_write t (fun () ->
          with_limits_override t.sqlctx limits (fun () ->
              run_env t (live_env t) cs ~wrap:(autocommit_wrap t ~src) ~diag
                ~params ~vars))

(* ------------------------------------------------------------------ *)
(* Explicit transactions                                               *)
(* ------------------------------------------------------------------ *)

(** Explicit transaction handles (snapshot isolation, single writer).

    A [Read_only] transaction pins the newest committed snapshot at
    begin and evaluates every statement against it — concurrent commits,
    bulk loads and rollbacks are invisible until the next transaction.
    A [Read_write] transaction owns the engine's single writer slot from
    begin to commit/rollback: its statements run on the live state
    (read-your-writes), journal into one WAL group whose Commit record
    is the durability point, and accumulate one transaction-wide undo
    log so rollback restores rows *and* index entries. A second
    concurrent writer — explicit or autocommit — is refused immediately
    with [XQDB0007] (write-write conflict), not queued. *)
module Txn = struct
  type mode = Read_only | Read_write

  type txn = {
    tx_engine : t;
    tx_mode : mode;
    tx_snap : snapshot option;  (** the pinned snapshot ([Read_only]) *)
    tx_undo : Storage.Undo.t option;
        (** the transaction-wide undo log ([Read_write]) *)
    mutable tx_state : [ `Active | `Committed | `Rolled_back ];
  }

  let mode tx = tx.tx_mode
  let active tx = tx.tx_state = `Active

  let begin_ ?(mode = Read_write) t : txn =
    coerce_errors @@ fun () ->
    enable_concurrent t;
    Xprof.Registry.incr t.registry "txn_begins_total";
    match mode with
    | Read_only ->
        {
          tx_engine = t;
          tx_mode = mode;
          tx_snap = Some (pin t);
          tx_undo = None;
          tx_state = `Active;
        }
    | Read_write ->
        with_mu snap_lock_id t.snap_mu (fun () ->
            if t.writer_txn then
              txn_error
                "write-write conflict: another read-write transaction is \
                 active";
            t.writer_txn <- true);
        (match
           Xpar.Lockorder.acquiring writer_lock_id;
           Mutex.lock t.writer_mu
         with
        | () -> ()
        | exception e ->
            with_mu snap_lock_id t.snap_mu (fun () -> t.writer_txn <- false);
            raise e);
        (* from here the writer slot is ours; anything that raises
           before the handle exists (e.g. an injected WAL fault in
           [Durable.txn_begin]) must give the slot back, or the engine
           is wedged and the lock tracker's held stack leaks *)
        (match
           (match t.dur with Some d -> Durable.txn_begin d | None -> ());
           let undo = Storage.Undo.create () in
           E.set_txn_undo t.sqlctx (Some undo);
           undo
         with
        | undo ->
            {
              tx_engine = t;
              tx_mode = mode;
              tx_snap = None;
              tx_undo = Some undo;
              tx_state = `Active;
            }
        | exception e ->
            E.set_txn_undo t.sqlctx None;
            Mutex.unlock t.writer_mu;
            Xpar.Lockorder.released writer_lock_id;
            with_mu snap_lock_id t.snap_mu (fun () -> t.writer_txn <- false);
            raise e)

  (** Close the transaction. For writers: apply (or roll back) the
      transaction-wide undo log, close the WAL group, publish the
      resulting committed state and release the writer slot — the
      release happens even when the durability step raises (e.g. an
      injected fsync fault), so the engine is never left wedged. *)
  let finish (tx : txn) ~(commit : bool) : unit =
    (match tx.tx_state with
    | `Active -> ()
    | `Committed | `Rolled_back ->
        txn_error "transaction handle is no longer active");
    tx.tx_state <- (if commit then `Committed else `Rolled_back);
    let t = tx.tx_engine in
    match tx.tx_undo with
    | None -> () (* read-only: just unpin the snapshot *)
    | Some undo ->
        Fun.protect
          ~finally:(fun () ->
            publish_locked t;
            Mutex.unlock t.writer_mu;
            Xpar.Lockorder.released writer_lock_id;
            with_mu snap_lock_id t.snap_mu (fun () -> t.writer_txn <- false))
          (fun () ->
            E.set_txn_undo t.sqlctx None;
            if commit then begin
              Storage.Undo.commit undo;
              match t.dur with
              | Some d -> Durable.txn_commit d
              | None -> ()
            end
            else begin
              Storage.Undo.rollback undo;
              match t.dur with
              | Some d -> Durable.txn_abort d
              | None -> ()
            end)

  let commit tx =
    coerce_errors (fun () -> finish tx ~commit:true);
    Xprof.Registry.incr tx.tx_engine.registry "txn_commits_total"

  let rollback tx =
    coerce_errors (fun () -> finish tx ~commit:false);
    Xprof.Registry.incr tx.tx_engine.registry "txn_rollbacks_total"
end

(** Dispatch a statement into an explicit transaction. *)
let run_in_txn t (tx : Txn.txn) (cs : compiled_stmt) ~(diag : string) ~params
    ~vars ~(limits : Xdm.Limits.t option) : outcome =
  if tx.Txn.tx_engine != t then
    txn_error "transaction belongs to a different engine";
  if tx.Txn.tx_state <> `Active then
    txn_error "transaction handle is no longer active";
  match (tx.Txn.tx_mode, class_of cs) with
  | Txn.Read_only, `Read ->
      let snap = Option.get tx.Txn.tx_snap in
      run_env t (read_env ?limits t snap) cs
        ~wrap:(fun _ f -> f ())
        ~diag ~params ~vars
  | Txn.Read_only, (`Dml | `Ddl) ->
      txn_error "read-only transaction cannot execute a write statement"
  | Txn.Read_write, `Ddl ->
      txn_error
        "DDL is not allowed inside an explicit transaction; run it in \
         autocommit"
  | Txn.Read_write, (`Read | `Dml) ->
      (* read-your-writes on the live state; DML journals into the
         transaction's open WAL group, its undo actions are absorbed
         into the transaction-wide log by the executor *)
      with_limits_override t.sqlctx limits (fun () ->
          run_env t (live_env t) cs
            ~wrap:(fun _ f -> f ())
            ~diag ~params ~vars)

(** Execute a statement through the plan cache: compile (or reuse the
    cached compiled form), plan, run. This is the one-shot face of the
    prepared-statement machinery — calling it twice with the same text
    compiles once. Without [?txn] the statement autocommits (reads off
    the newest committed snapshot in concurrent mode, writes under the
    writer slot); with [?txn] it runs inside that transaction. [?limits]
    overrides the engine-level resource budgets for this call only (the
    server uses it for per-session governors). *)
let exec ?(params : SV.t list = []) ?(vars : (string * Xdm.Item.seq) list = [])
    ?(txn : Txn.txn option) ?(limits : Xdm.Limits.t option) t (src : string) :
    outcome =
  coerce_errors (fun () ->
      let cs, diag = lookup_compiled t src in
      match txn with
      | Some tx -> run_in_txn t tx cs ~diag ~params ~vars ~limits
      | None -> run_implicit t cs ~src ~diag ~params ~vars ~limits)

(* ------------------------------------------------------------------ *)
(* Prepared statements                                                 *)
(* ------------------------------------------------------------------ *)

(** A prepared statement is a handle into the plan cache: preparing
    compiles (and caches) the front half now, executing validates the
    cached entry against the current catalog generation — so a statement
    prepared before a [CREATE INDEX] transparently recompiles and picks
    the new index up on its next execution. *)
type stmt = { st_engine : t; st_src : string; st_params : string list }

let prepare t (src : string) : stmt =
  coerce_errors (fun () ->
      let cs, _ = lookup_compiled t src in
      let st_params =
        match cs with
        | CSql (_, n) -> List.init n (fun i -> Printf.sprintf "?%d" (i + 1))
        | CXquery c -> Planner.compiled_params c
      in
      { st_engine = t; st_src = src; st_params })

let stmt_src (s : stmt) = s.st_src

(** Parameter slots, in binding order: ["?1"; "?2"; …] for SQL, variable
    names for XQuery. *)
let stmt_params (s : stmt) = s.st_params

let execute ?(params = []) ?(vars = []) ?txn ?limits (s : stmt) : outcome =
  exec ~params ~vars ?txn ?limits s.st_engine s.st_src

(* ------------------------------------------------------------------ *)
(* Cursors                                                             *)
(* ------------------------------------------------------------------ *)

module Cursor = struct
  (** One result element: a relational row (SQL front end) or an XDM
      item (XQuery front end). *)
  type elem = Row of SV.t list | Item of Xdm.Item.t

  type t = {
    mutable seq : elem Seq.t;
    mutable state : [ `Open | `Drained | `Closed ];
    cols : string list;  (** column names; [[]] for XQuery cursors *)
    registry : Xprof.Registry.t;
    mutable produced : int;
  }

  let columns c = c.cols

  (** Rows/items pulled so far. *)
  let row_count c = c.produced

  (** Release the cursor. Production is lazy, so whatever was not pulled
      is never computed — an early close also stops charging the
      statement's governor budget. Idempotent. *)
  let close c =
    match c.state with
    | `Closed -> ()
    | `Open | `Drained ->
        c.state <- `Closed;
        c.seq <- Seq.empty;
        Xprof.Registry.incr c.registry "cursors_closed_total"

  (** Pull the next element; [None] once drained or closed. Errors that
      surface lazily (resource budget, cast errors deep in a document)
      are raised here, under the same error-code discipline as
      {!Engine.exec}. *)
  let next c : elem option =
    match c.state with
    | `Closed | `Drained -> None
    | `Open -> (
        match coerce_errors (fun () -> c.seq ()) with
        | Seq.Nil ->
            c.state <- `Drained;
            c.seq <- Seq.empty;
            Xprof.Registry.incr c.registry "cursors_closed_total";
            None
        | Seq.Cons (x, rest) ->
            c.seq <- rest;
            c.produced <- c.produced + 1;
            Xprof.Registry.incr c.registry "cursor_rows_total";
            Some x)

  let fold (f : 'a -> elem -> 'a) (acc : 'a) c : 'a =
    let rec go acc = match next c with None -> acc | Some x -> go (f acc x) in
    go acc
end

(** Open a cursor against an environment. [wrap] as in {!run_env}. On a
    snapshot environment the context is private to this cursor, so its
    parameters stay pinned for the cursor's whole lifetime without
    blocking anything else on the engine. *)
let cursor_in_env t (env : exec_env) (cs : compiled_stmt)
    ~(wrap :
       [ `Read | `Dml | `Ddl ] ->
       (unit -> string list * SV.t list Seq.t) ->
       string list * SV.t list Seq.t) ~params ~vars : Cursor.t =
  match cs with
  | CSql (stmt, nslots) ->
      check_sql_arity nslots params vars;
      E.set_params env.ectx (Array.of_list params);
      (* reads stream lazily ([wrap] passes them through); DML and DDL
         materialize inside exec_seq, so any WAL group closes before the
         cursor is handed back *)
      let cols, rows = wrap (E.stmt_class stmt) (fun () -> E.exec_seq env.ectx stmt) in
      {
        Cursor.seq = Seq.map (fun r -> Cursor.Row r) rows;
        state = `Open;
        cols;
        registry = t.registry;
        produced = 0;
      }
  | CXquery c ->
      check_xquery_bindings c vars params;
      let items, _plan, _meter =
        Planner.execute_compiled_seq ~limits:(E.limits env.ectx)
          ~prof:(E.profile env.ectx) ~use_indexes:(E.use_indexes env.ectx)
          ~vars env.ecat c
      in
      {
        Cursor.seq = Seq.map (fun i -> Cursor.Item i) items;
        state = `Open;
        cols = [];
        registry = t.registry;
        produced = 0;
      }

(** Open a streaming cursor over a statement. Rows/items are produced as
    the consumer pulls: SELECTs without aggregation/ORDER BY stream
    straight off the table scan, path-shaped and FLWOR-shaped XQueries
    stream per document/binding (others fall back to materializing, then
    streaming the result).

    In concurrent mode (or inside a read-only [?txn]) a read cursor gets
    its own private context over a pinned snapshot: it streams lazily
    off immutable state, its parameters are pinned privately, and it
    stays valid — and consistent — however long the client fetches,
    regardless of concurrent commits. On a sequential (non-concurrent)
    engine the historical behavior is kept: the statement's parameters
    stay bound to the engine for the cursor's lifetime, so interleaving
    other parameterized statements while such a cursor is open is
    unsupported. *)
let open_cursor ?(params : SV.t list = [])
    ?(vars : (string * Xdm.Item.seq) list = []) ?(txn : Txn.txn option)
    ?(limits : Xdm.Limits.t option) t (src : string) : Cursor.t =
  coerce_errors (fun () ->
      let cs, _ = lookup_compiled t src in
      let live_wrap _cls f = f () in
      let cur =
        match txn with
        | Some tx -> (
            if tx.Txn.tx_engine != t then
              txn_error "transaction belongs to a different engine";
            if tx.Txn.tx_state <> `Active then
              txn_error "transaction handle is no longer active";
            match (tx.Txn.tx_mode, class_of cs) with
            | Txn.Read_only, `Read ->
                cursor_in_env t
                  (read_env ?limits t (Option.get tx.Txn.tx_snap))
                  cs ~wrap:live_wrap ~params ~vars
            | Txn.Read_only, (`Dml | `Ddl) ->
                txn_error
                  "read-only transaction cannot execute a write statement"
            | Txn.Read_write, `Ddl ->
                txn_error
                  "DDL is not allowed inside an explicit transaction; run \
                   it in autocommit"
            | Txn.Read_write, (`Read | `Dml) ->
                (* read-your-writes off the live state; DML materializes
                   inside exec_seq, journaling into the transaction's
                   open WAL group *)
                cursor_in_env t (live_env t) cs ~wrap:live_wrap ~params ~vars)
        | None -> (
            match class_of cs with
            | `Read when t.concurrent ->
                cursor_in_env t (read_env ?limits t (pin t)) cs
                  ~wrap:live_wrap ~params ~vars
            | `Read ->
                with_limits_override t.sqlctx limits (fun () ->
                    cursor_in_env t (live_env t) cs ~wrap:live_wrap ~params
                      ~vars)
            | `Dml | `Ddl ->
                autocommit_write t (fun () ->
                    with_limits_override t.sqlctx limits (fun () ->
                        cursor_in_env t (live_env t) cs
                          ~wrap:(autocommit_wrap t ~src) ~params ~vars)))
      in
      Xprof.Registry.incr t.registry "cursors_opened_total";
      cur)

let execute_cursor ?(params = []) ?(vars = []) ?txn ?limits (s : stmt) :
    Cursor.t =
  open_cursor ~params ~vars ?txn ?limits s.st_engine s.st_src

(* ------------------------------------------------------------------ *)
(* SQL/XML (deprecated one-shot wrappers)                              *)
(* ------------------------------------------------------------------ *)

(** Execute a SQL/XML statement. Deprecated: use {!exec}, which returns
    a structured {!outcome} and goes through the plan cache. Kept for
    callers that rely on the original [Sql_exec.result] shape and
    layer-private exceptions. *)
let sql t (src : string) : E.result =
  (* inlines E.exec_string so the statement can be classified and run as
     a WAL group on a durable handle; exception behavior is unchanged.
     Routed through the same implicit-autocommit writer discipline as
     {!exec}: writes take the writer slot (and are refused while an
     explicit transaction holds it), so legacy callers stay safe on a
     concurrent engine. *)
  let go () =
    let stmt = Sqlxml.Sql_parser.parse src in
    (match (E.strict_static t.sqlctx, E.static_check t.sqlctx) with
    | true, Some check -> check ~src stmt
    | _ -> ());
    match E.stmt_class stmt with
    | `Read -> E.exec t.sqlctx stmt
    | (`Dml | `Ddl) as cls ->
        autocommit_write t (fun () ->
            autocommit_wrap t ~src cls (fun () -> E.exec t.sqlctx stmt))
  in
  match go () with
  | r ->
      record_statement t;
      r
  | exception ex ->
      record_statement t;
      raise ex

(** EXPLAIN trace of the last SQL statement. Deprecated: read
    [outcome.notes] from {!exec} instead. *)
let last_notes t = E.last_notes t.sqlctx

(** Indexes used by the last SQL statement. Deprecated: read
    [outcome.indexes_used] from {!exec} instead. *)
let last_indexes_used t = E.last_used t.sqlctx

(* ------------------------------------------------------------------ *)
(* Stand-alone XQuery (deprecated one-shot wrappers)                   *)
(* ------------------------------------------------------------------ *)

(** Run a stand-alone XQuery, using eligible indexes to pre-filter
    collections. Returns the result and the plan (with EXPLAIN notes).
    Deprecated: use {!exec}/{!prepare}, which cache compilation and
    support parameters. *)
let xquery t (src : string) : Xdm.Item.seq * Planner.t =
  if strict_types t then begin
    let q, locs = Xquery.Parser.parse_query_loc src in
    Analysis.Analyze.check_xquery ~catalog:(catalog t) ~locs q
  end;
  let prof = profile t in
  Xprof.start_statement prof;
  match
    if use_indexes t then
      Planner.run_xquery ~limits:(limits t) ~prof (catalog t) src
    else
      ( Planner.run_xquery_noindex ~limits:(limits t) ~prof (catalog t) src,
        { Planner.restrictions = []; notes = [ "index use disabled" ];
          indexes_used = [] } )
  with
  | r ->
      Xprof.finish_statement prof;
      record_statement t;
      r
  | exception ex ->
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Run a stand-alone XQuery with a full collection scan (baseline). *)
let xquery_noindex t (src : string) : Xdm.Item.seq =
  let prof = profile t in
  Xprof.start_statement prof;
  match Planner.run_xquery_noindex ~limits:(limits t) ~prof (catalog t) src with
  | r ->
      Xprof.finish_statement prof;
      record_statement t;
      r
  | exception ex ->
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Serialize a result sequence the way a query shell would. *)
let to_xml (seq : Xdm.Item.seq) : string = Xmlparse.Xml_writer.seq_to_string seq

(* ------------------------------------------------------------------ *)
(* Bulk loading                                                        *)
(* ------------------------------------------------------------------ *)

(** Insert pre-rendered XML documents into [table]; non-XML columns get
    the row number / NULLs. Faster than going through INSERT parsing.
    The whole load is one atomic statement: a failure on the Nth document
    (parse error, injected fault) rolls back every row and index entry
    added so far. A successful load bumps the catalog generation, so
    cached plans (whose index probes reflect the old data) recompile. *)
(* The apply half shared by the load entry points: insert pre-parsed
   documents in row order, single-threaded (undo-log atomicity), ranking
   each root so collection order follows row order even when the trees
   were parsed in parallel and their node ids interleave. *)
let insert_parsed_docs t tbl coli ~log (docs : Xdm.Node.t list) =
  let prof = profile t in
  List.iteri
    (fun i doc ->
      Xprof.row prof;
      Xdm.Node.set_tree_order doc (Xdm.Node.fresh_rank ());
      let values =
        List.mapi
          (fun j (c : Storage.Table.col_def) ->
            if j = coli then SV.Xml [ Xdm.Item.N doc ]
            else
              match c.Storage.Table.col_type with
              | SV.TInt -> SV.Int (Int64.of_int (i + 1))
              | _ -> SV.Null)
          tbl.Storage.Table.cols
      in
      ignore (Storage.Table.insert ~log tbl values))
    docs

let load_documents t ~table ~column (docs : string list) : unit =
  autocommit_write t @@ fun () ->
  with_wal t `Dml ~src:None @@ fun () ->
  let tbl = Storage.Database.table_exn (database t) table in
  let coli = Storage.Table.col_index_exn tbl column in
  let prof = profile t in
  let par = parallelism t in
  let many = match docs with _ :: _ :: _ -> true | _ -> false in
  Xprof.start_statement prof;
  let log = Storage.Undo.create ~prof () in
  match
    Xprof.spanned prof "LOAD" (fun () ->
        if par > 1 && many then begin
          (* chunked parse — the expensive, pure half; the first parse
             error in chunk order is the first bad document in row
             order, and it surfaces before any row is inserted *)
          let slots =
            Xpar.map_chunks ~parallelism:par
              (fun _ chunk ->
                Array.map Xmlparse.Xml_parser.parse_document chunk)
              (Array.of_list docs)
          in
          Xprof.par prof ~chunks:(Array.length slots);
          let parsed =
            List.concat_map Array.to_list (Array.to_list (Xpar.join slots))
          in
          insert_parsed_docs t tbl coli ~log parsed
        end
        else
          List.iteri
            (fun i doc ->
              Xprof.row prof;
              let values =
                List.mapi
                  (fun j (c : Storage.Table.col_def) ->
                    if j = coli then SV.Varchar doc
                    else
                      match c.Storage.Table.col_type with
                      | SV.TInt -> SV.Int (Int64.of_int (i + 1))
                      | _ -> SV.Null)
                  tbl.Storage.Table.cols
              in
              ignore (Storage.Table.insert ~log tbl values))
            docs)
  with
  | () ->
      Storage.Undo.commit log;
      E.bump_catalog_gen t.sqlctx;
      Xprof.finish_statement prof;
      record_statement t
  | exception ex ->
      Storage.Undo.rollback log;
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Load already-parsed documents: the same atomic apply half as
    {!load_documents} with parsing entirely out of the picture — what a
    benchmark's timed region should call when it wants to measure insert
    + index maintenance rather than parsing. *)
let load_parsed_documents t ~table ~column (docs : Xdm.Node.t list) : unit =
  autocommit_write t @@ fun () ->
  with_wal t `Dml ~src:None @@ fun () ->
  let tbl = Storage.Database.table_exn (database t) table in
  let coli = Storage.Table.col_index_exn tbl column in
  let prof = profile t in
  Xprof.start_statement prof;
  let log = Storage.Undo.create ~prof () in
  match
    Xprof.spanned prof "LOAD" (fun () ->
        insert_parsed_docs t tbl coli ~log docs)
  with
  | () ->
      Storage.Undo.commit log;
      E.bump_catalog_gen t.sqlctx;
      Xprof.finish_statement prof;
      record_statement t
  | exception ex ->
      Storage.Undo.rollback log;
      Xprof.finish_statement prof;
      record_statement t;
      raise ex

(** Parse documents (in parallel when parallelism is set), without
    touching any table — pairs with {!load_parsed_documents}. *)
let parse_documents t (docs : string list) : Xdm.Node.t list =
  let par = parallelism t in
  match docs with
  | [] | [ _ ] -> List.map Xmlparse.Xml_parser.parse_document docs
  | _ ->
      Xpar.map_list ~parallelism:par Xmlparse.Xml_parser.parse_document docs

(** Re-derive every XML index's expected entries from its table's current
    documents and diff them against the B+Tree. Returns one
    [(index name, discrepancies)] pair per XML index; all-empty lists mean
    the indexes are exactly consistent with the stored data. *)
let check_consistency t : (string * string list) list =
  List.map
    (fun (idx : Xmlindex.Xindex.t) ->
      let d = idx.Xmlindex.Xindex.def in
      let tbl = Storage.Database.table_exn (database t) d.Xmlindex.Xindex.table in
      let pt = Storage.Table.path_table_exn tbl d.Xmlindex.Xindex.column in
      let docs = Storage.Table.xml_docs tbl d.Xmlindex.Xindex.column in
      ( d.Xmlindex.Xindex.iname,
        Xmlindex.Xindex.check_consistency idx pt docs ))
    (xml_indexes t)
  @ List.map
      (fun (idx : Xmlindex.Structindex.t) ->
        let d = idx.Xmlindex.Structindex.def in
        let tbl =
          Storage.Database.table_exn (database t) d.Xmlindex.Structindex.table
        in
        let docs =
          List.map snd
            (Storage.Table.xml_docs tbl d.Xmlindex.Structindex.column)
        in
        ( d.Xmlindex.Structindex.iname,
          Xmlindex.Structindex.check_consistency idx docs ))
      (struct_indexes t)

(** Validate every document of an XML column against [schema] in place
    (per-document typing, Section 2.1 of the paper). Returns the number of
    annotated nodes. *)
let validate_column t ~table ~column (schema : Xschema.t) : int =
  (* annotates document nodes in place — writer-side work *)
  autocommit_write t @@ fun () ->
  let tbl = Storage.Database.table_exn (database t) table in
  List.fold_left
    (fun acc (_, doc) -> acc + Xschema.validate schema doc)
    0
    (Storage.Table.xml_docs tbl column)

(* ------------------------------------------------------------------ *)
(* Advice                                                              *)
(* ------------------------------------------------------------------ *)

(** Run the codified Tips 1–12 advisor on a statement (auto-detects SQL vs
    stand-alone XQuery by attempting the SQL parser first). *)
let advise t (src : string) : Advisor.advice list =
  Advisor.advise ~catalog:(catalog t) src

(* ------------------------------------------------------------------ *)
(* Static analysis                                                     *)
(* ------------------------------------------------------------------ *)

(** Run the full static analyzer (type & cardinality checks, path
    checks, and every lint rule) on a statement. Never raises: syntax
    errors come back as diagnostics. *)
let analyze t (src : string) : Analysis.Diag.t list =
  Analysis.Analyze.analyze_string ~catalog:(catalog t) src
