(** The codified advisor: the paper's Tips 1–12 (plus the Section 3.10
    "between" guidance) rendered from the static analyzer's rule
    engine. *)

type advice = {
  tip : int;
      (** 1–12 = the paper's Tips; 13 = Section 3.10 (between); 14 =
          structural-index advice (reverse/sibling axes) *)
  title : string;
  detail : string;
}

(** Canonical short title of a tip number. *)
val tip_title : int -> string

(** Keep only the tip-numbered findings of an analyzer run. *)
val of_diags : Analysis.Diag.t list -> advice list

(** Advise on a statement: SQL/XML if it parses as SQL, else stand-alone
    XQuery. *)
val advise : ?catalog:Planner.catalog -> string -> advice list

val to_string : advice -> string
