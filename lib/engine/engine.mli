(** The sealed database API: one handle for DDL, SQL/XML, stand-alone
    XQuery, prepared statements, streaming cursors, EXPLAIN and the
    advisor.

    This interface is the engine's whole public surface; the handle and
    statement types are abstract, so every interaction — including
    settings — goes through the functions below. Statement compilation
    (parse, static resolution, eligibility analysis) is cached in a keyed
    plan cache validated against the catalog generation, so repeated
    {!exec} of the same text amortizes exactly like an explicit
    {!prepare}; DDL and bulk loads invalidate cached plans.

    Error discipline: the sealed entry points ({!prepare}, {!exec},
    {!execute}, {!open_cursor}, {!Cursor.next}) raise only
    [Xdm.Xerror.Error] with a stable code — [XPST0003] syntax,
    [XPST0008] unknown names, [XPDY0002] missing parameter bindings,
    [FORG0001] bad casts, [XQDB0001] resource budget, [XQDB0003]
    runtime/value errors, [FODC0002] malformed documents, [XQDB0004]
    internal faults, [XQDB0007] transaction discipline (write-write
    conflicts, writes in a read-only transaction, DDL or checkpoint
    inside an explicit transaction). (The deprecated {!sql}/{!xquery}
    wrappers keep their historical layer-private exceptions.) *)

(** Re-export: the Tips 1–12 advisor. *)
module Advisor = Advisor

(** Re-export: the LRU plan cache (for its [stats] record). *)
module Plan_cache = Plan_cache

(** A database handle: storage, indexes, settings, plan cache and
    metrics. *)
type t

val create : unit -> t

(** {1 Durability}

    {!create} gives an in-memory database — the default, and what every
    benchmark and test uses unless it opts in. {!open_db} binds the
    handle to a data directory with a page-file snapshot and a write-ahead
    log: every mutating statement (DML, DDL, bulk loads) is logged as one
    WAL group and committed records survive a crash — reopening the
    directory replays the committed tail and truncates torn garbage. See
    docs/DURABILITY.md for the on-disk format and recovery algorithm. *)

(** Open (or create) a durable database in [data_dir], running crash
    recovery first. [sync] (default [true]) fsyncs the WAL at every
    commit; [sync:false] still writes each commit to the file (durable
    against process crashes) but skips the fsync. Raises [XQDB0005] on an
    unrecognized or incompatible on-disk format. *)
val open_db : ?sync:bool -> data_dir:string -> unit -> t

(** The data directory behind this handle; [None] for in-memory. *)
val data_dir : t -> string option

(** Write a new-generation snapshot of the whole catalog, publish it
    atomically (tmp-file + rename of the MANIFEST) and start a fresh WAL.
    Bounds recovery time; the shell exposes it as [\checkpoint]. No-op on
    an in-memory handle. Takes the writer slot; refused with [XQDB0007]
    while an explicit read-write transaction is active. *)
val checkpoint : t -> unit

(** Flush and close the data directory; the handle keeps working as an
    in-memory database afterwards. Idempotent; no-op in-memory. *)
val close : t -> unit

(** Abandon the durable handle the way a crash would: drop the file
    descriptors without syncing, leaving in-memory state untouched for
    comparison. Test-only — the recovery torture suite's crash lever. *)
val simulate_crash : t -> unit

(** {1 Settings} *)

(** Strict static typing: when on, statements with Error-severity
    diagnostics (e.g. the Query 14 XMLCAST-of-many) are rejected at
    compile time. Toggling it changes the plan-cache fingerprint, so
    plans compiled under the other mode recompile. *)
val set_strict_types : t -> bool -> unit

val strict_types : t -> bool

(** Enable/disable index usage (for baselines and A/B benchmarks). *)
val set_use_indexes : t -> bool -> unit

val use_indexes : t -> bool

(** Resource budgets applied to every subsequent statement. Default:
    {!Xdm.Limits.unlimited}. *)
val set_limits : t -> Xdm.Limits.t -> unit

val limits : t -> Xdm.Limits.t

(** Parallelism for scan-shaped work in subsequent statements:
    partitioned full-collection scans, multi-index AND/OR candidate-set
    intersection, and bulk load + index builds. Clamped to
    [1 .. Xpar.max_parallelism]; sizes the process-wide worker-domain
    pool (shared across handles — the last setting wins). Results are
    deterministic: chunked execution merges in chunk order, so output,
    diagnostics and [indexes_used] are identical at any parallelism
    level (the t_par_diff harness proves this). Cursors always stream
    sequentially; governor budgets are charged atomically across
    domains, so [XQDB0001] still fires. On OCaml 4.x builds the
    sequential Xpar fallback keeps execution single-threaded. *)
val set_parallelism : t -> int -> unit

val parallelism : t -> int

(** {1 Introspection} *)

val database : t -> Storage.Database.t
val catalog : t -> Planner.catalog
val xml_indexes : t -> Xmlindex.Xindex.t list
val rel_indexes : t -> Xmlindex.Rel_index.t list
val struct_indexes : t -> Xmlindex.Structindex.t list

(** {1 Profiling & metrics} *)

(** The per-statement execution profile (reset at each statement start
    while profiling is on). *)
val profile : t -> Xprof.t

val set_profiling : t -> bool -> unit
val profiling : t -> bool

(** Process-lifetime metrics. Statement counters accumulate while
    profiling is on; plan-cache ([plan_cache_hits_total], …) and cursor
    counters accumulate always. *)
val registry : t -> Xprof.Registry.t

(** Mirror the lock-order tracker's process-wide aggregates into the
    registry as gauges: [lock_acquisitions], [lock_order_edges] and
    [lock_order_cycles] (a non-zero cycle count is a potential deadlock
    — see docs/CONCURRENCY.md and the shell's [\xsan] report). *)
val refresh_lock_metrics : t -> unit

(** {1 Outcomes} *)

(** One statement result: relational rows (SQL front end) or an XDM item
    sequence (XQuery front end). *)
type payload =
  | Rows of { cols : string list; rows : Storage.Sql_value.t list list }
  | Items of Xdm.Item.seq

(** The structured result every sealed entry point returns. *)
type outcome = {
  payload : payload;
  notes : string list;  (** the planner's EXPLAIN trace *)
  indexes_used : string list;
  diagnostics : string list;
      (** engine-level events: plan-cache hit/miss/invalidation, … *)
  profile : Xprof.Json.t option;
      (** snapshot of the statement profile, when profiling is on *)
}

(** Convenience projections; raise [XPTY0004] on the wrong payload. *)
val outcome_rows : outcome -> Storage.Sql_value.t list list

val outcome_items : outcome -> Xdm.Item.seq

(** {1 Transactions}

    The engine is a single-writer, multi-reader MVCC system with
    snapshot isolation (see docs/TRANSACTIONS.md):

    - A [Read_only] transaction pins the newest committed snapshot at
      {!Txn.begin_} and evaluates every statement against it. It never
      blocks — not behind autocommit writes, not behind a concurrent
      bulk load in a read-write transaction — and never sees a
      half-applied write.
    - A [Read_write] transaction (the default mode) owns the engine's
      single writer slot from begin to commit/rollback. Its statements
      see their own writes; on a durable handle they journal into one
      WAL group whose Commit record is the durability point (a crash
      mid-transaction recovers to the transaction never having
      happened). {!Txn.rollback} restores rows and index entries from
      the transaction-wide undo log.
    - A second concurrent writer — explicit or autocommit — is refused
      immediately with [XQDB0007] (write-write conflict), not queued.
      DDL and {!checkpoint} inside an explicit transaction are refused
      with the same code.

    Statements without a [?txn] argument autocommit, exactly as before
    this API existed — existing callers compile and behave unchanged. *)

module Txn : sig
  (** [Read_only] pins a snapshot; [Read_write] (default) takes the
      writer slot. *)
  type mode = Read_only | Read_write

  (** A transaction handle. Not thread-safe itself: one session drives
      one handle. *)
  type txn

  (** Start a transaction. Raises [XQDB0007] if [Read_write] and another
      read-write transaction is active on this engine. The first
      [begin_] on an engine switches it into concurrent (snapshot
      publication) mode. *)
  val begin_ : ?mode:mode -> t -> txn

  (** Commit: for writers, make the transaction's effects the newest
      committed state (durable once the WAL Commit record is synced) and
      release the writer slot. Raises [XQDB0007] on a finished handle. *)
  val commit : txn -> unit

  (** Roll back: undo every row and index change the transaction made
      (writers), release the writer slot. The WAL group is left
      uncommitted, which recovery abandons. *)
  val rollback : txn -> unit

  val mode : txn -> mode
  val active : txn -> bool
end

(** Switch the engine into concurrent (snapshot publication) mode now,
    without starting a transaction: after this, implicit (autocommit)
    reads run against the newest committed snapshot instead of the live
    state, so they never block behind the writer slot. Idempotent; the
    network server calls it at startup. *)
val enable_concurrent : t -> unit

val concurrent_mode : t -> bool

(** {1 Execution} *)

(** Execute a statement (SQL/XML if it parses as SQL, else stand-alone
    XQuery) through the plan cache. [params] binds SQL [?] slots in
    order; [vars] binds XQuery [$var] parameter slots. [txn] runs the
    statement inside an explicit transaction (autocommit otherwise);
    [limits] overrides the engine-level resource budgets for this call
    only (per-session governors). *)
val exec :
  ?params:Storage.Sql_value.t list ->
  ?vars:(string * Xdm.Item.seq) list ->
  ?txn:Txn.txn ->
  ?limits:Xdm.Limits.t ->
  t ->
  string ->
  outcome

(** {1 Prepared statements} *)

(** A prepared statement: a handle into the plan cache. The compiled
    front half survives across executions; if DDL or a load invalidates
    it, the next execution transparently recompiles (and re-plans
    against the new catalog). *)
type stmt

(** Compile (and cache) a statement now. In an XQuery, every free
    variable becomes a named parameter slot; in SQL, each [?] becomes a
    positional slot. *)
val prepare : t -> string -> stmt

val stmt_src : stmt -> string

(** Parameter slots in binding order: ["?1"; "?2"; …] for SQL, variable
    names (without [$]) for XQuery. *)
val stmt_params : stmt -> string list

(** Execute a prepared statement under parameter bindings. All slots
    must be bound ([XPDY0002] otherwise); unknown names are rejected
    ([XPST0008]). *)
val execute :
  ?params:Storage.Sql_value.t list ->
  ?vars:(string * Xdm.Item.seq) list ->
  ?txn:Txn.txn ->
  ?limits:Xdm.Limits.t ->
  stmt ->
  outcome

(** {1 Cursors} *)

module Cursor : sig
  (** One result element: a relational row or an XDM item. *)
  type elem = Row of Storage.Sql_value.t list | Item of Xdm.Item.t

  type t

  (** Column names ([[]] for XQuery cursors). *)
  val columns : t -> string list

  (** Rows/items pulled so far. *)
  val row_count : t -> int

  (** Pull the next element; [None] once drained or closed. Lazily
      surfacing errors (resource budget, cast errors deep in a
      document) are raised here, coded like {!Engine.exec}'s. *)
  val next : t -> elem option

  val fold : ('a -> elem -> 'a) -> 'a -> t -> 'a

  (** Release the cursor. Production is lazy, so unpulled results are
      never computed — an early close also stops charging the
      statement's governor budget. Idempotent. *)
  val close : t -> unit
end

(** Open a streaming cursor: results are produced as the consumer pulls.
    SELECTs without aggregation/ORDER BY stream off the table scan;
    path- and FLWOR-shaped XQueries stream per document/binding; other
    statements fall back to materializing, then streaming the result.

    In concurrent mode — or inside a read-only [?txn] — a read cursor
    gets a private context over a pinned snapshot: it streams lazily off
    immutable state, its parameter bindings are private, and it stays
    consistent however long the client fetches, regardless of concurrent
    commits. On a sequential engine the historical caveat stands: a
    parameterized SQL cursor keeps its bindings installed on the engine,
    so don't interleave other statements while it is open. *)
val open_cursor :
  ?params:Storage.Sql_value.t list ->
  ?vars:(string * Xdm.Item.seq) list ->
  ?txn:Txn.txn ->
  ?limits:Xdm.Limits.t ->
  t ->
  string ->
  Cursor.t

val execute_cursor :
  ?params:Storage.Sql_value.t list ->
  ?vars:(string * Xdm.Item.seq) list ->
  ?txn:Txn.txn ->
  ?limits:Xdm.Limits.t ->
  stmt ->
  Cursor.t

(** {1 Plan cache} *)

val plan_cache_stats : t -> Plan_cache.stats

(** Drop every cached plan (used by benchmarks to time cold compiles). *)
val reset_plan_cache : t -> unit

(** {1 Parameter literals} *)

(** Parse a parameter literal: single quotes force a string; otherwise
    integers, then doubles, are recognized numerically. With [~ty] the
    value is cast, raising the standard [FORG0001] on failure. *)
val atomic_of_string :
  ?ty:Xdm.Atomic.atomic_type -> string -> Xdm.Atomic.t

val sql_value_of_string : string -> Storage.Sql_value.t

(** {1 Bulk loading & maintenance} *)

(** Insert pre-rendered XML documents into [table]; non-XML columns get
    the row number / NULLs. Atomic: a failure on the Nth document rolls
    back every row and index entry added so far. A successful load bumps
    the catalog generation, invalidating cached plans. *)
val load_documents : t -> table:string -> column:string -> string list -> unit

(** Like {!load_documents}, but for documents parsed up front (e.g. with
    {!parse_documents}): the timed half of a load benchmark, measuring
    insert + index maintenance without parsing. The apply phase is
    single-threaded in row order regardless of parallelism, keeping
    undo-log atomicity and collection order identical to a sequential
    load. *)
val load_parsed_documents :
  t -> table:string -> column:string -> Xdm.Node.t list -> unit

(** Parse documents — in parallel chunks when {!set_parallelism} > 1 —
    without touching any table. Raises on the first malformed document
    in list order. *)
val parse_documents : t -> string list -> Xdm.Node.t list

(** Re-derive every XML index's expected entries and diff them against
    the B+Tree, and validate every structural index's pre/post encodings
    (interval containment, parent/level laws, exact match against a
    fresh re-encode of the live trees); all-empty lists mean the indexes
    are consistent. *)
val check_consistency : t -> (string * string list) list

(** Validate every document of an XML column against [schema] in place;
    returns the number of annotated nodes. *)
val validate_column : t -> table:string -> column:string -> Xschema.t -> int

(** {1 Advice & analysis} *)

(** Run the codified Tips 1–12 advisor on a statement. *)
val advise : t -> string -> Advisor.advice list

(** Run the full static analyzer on a statement; never raises. *)
val analyze : t -> string -> Analysis.Diag.t list

(** Serialize a result sequence the way a query shell would. *)
val to_xml : Xdm.Item.seq -> string

(** {1 Deprecated one-shot wrappers}

    Kept for existing callers; they bypass the plan cache and keep their
    historical exception behavior (writes are still routed through the
    implicit-autocommit writer slot, so they stay safe on a concurrent
    engine). New code should use {!exec}, {!prepare} and
    {!open_cursor}. *)

(** Deprecated: use {!exec}. *)
val sql : t -> string -> Sqlxml.Sql_exec.result
[@@deprecated "use Engine.exec (structured outcome, plan cache, ?txn)"]

(** Deprecated: read [outcome.notes]. *)
val last_notes : t -> string list
[@@deprecated "read outcome.notes from Engine.exec"]

(** Deprecated: read [outcome.indexes_used]. *)
val last_indexes_used : t -> string list
[@@deprecated "read outcome.indexes_used from Engine.exec"]

(** Deprecated: use {!exec}/{!prepare} (cached compilation, parameters). *)
val xquery : t -> string -> Xdm.Item.seq * Planner.t
[@@deprecated "use Engine.exec (plan cache, parameters, ?txn)"]

(** Deprecated: use {!set_use_indexes} [false] + {!exec}. *)
val xquery_noindex : t -> string -> Xdm.Item.seq
[@@deprecated "use Engine.set_use_indexes false + Engine.exec"]
