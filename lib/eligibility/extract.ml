(** Predicate extraction: from a (statically resolved) XQuery AST to the
    filtering-predicate normal form of [Predicate].

    This pass encodes the heart of the paper's Section 3:

    - [for]-clause bindings iterate, so empty bindings kill tuples →
      predicates embedded in a for-binding path are filtering (Query 17);
    - [let]-clause bindings preserve empty sequences → their embedded
      predicates are *pending* and only become filtering when the bound
      variable is later consumed in a filtering position, e.g. a [where]
      clause (Queries 18/21, Section 3.4);
    - element constructors always produce a node → nothing below a
      constructor can eliminate documents (Query 19 vs Query 22);
    - a bare path in a result or where position is an existence
      (structural) predicate;
    - general vs value comparisons and the operand's *type* are recorded so
      the eligibility matcher can implement Section 3.1;
    - comparisons against externally passed variables keep the SQL-side
      type (Query 13's [$pid]). *)

open Xquery.Ast
module P = Predicate
module Pat = Xmlindex.Pattern
module SMap = Map.Make (String)

(** A derived path: absolute navigation from the documents of a
    collection, plus predicates collected along the way. *)
type dpath = {
  collection : string;
  steps : Pat.pstep list;
  gap : bool;  (** a pending [//] separator not yet consumed by a step *)
  pending : P.t;  (** predicates embedded in the navigation *)
  cast : Xdm.Atomic.atomic_type option;  (** trailing cast step *)
  last_attr : bool;
  self_singleton : bool;
      (** the value compared is the context node itself ([.]) — provably
          singleton (Section 3.10) *)
  origin : expr;
      (** an expression that re-derives this path's root (the external
          variable or collection call); used to synthesize an evaluable
          join operand for index nested-loop probes *)
  anchor : int;  (** id of the navigation anchor (binding / focus) *)
  anchor_depth : int;  (** [List.length steps] at the anchor point *)
  anchor_single : bool;
      (** the anchor denotes a single node per evaluation (a for-variable,
          a quantifier variable or a predicate focus — not a let-bound
          sequence, not a whole collection) *)
}

let anchor_counter = ref 0

let fresh_anchor () =
  incr anchor_counter;
  !anchor_counter

(** Re-anchor a path at its current end: used when a variable is bound to
    each item of the path ([for]/quantifier), or when a step predicate
    focuses on the step's node. *)
let reanchor ~single dp =
  {
    dp with
    anchor = fresh_anchor ();
    anchor_depth = List.length dp.steps;
    anchor_single = single;
  }

type binding = BDoc of dpath | BOpaque

type env = {
  vars : binding SMap.t;
  context : dpath option;  (** focus inside step predicates *)
  scalar_params : (string * Xdm.Atomic.atomic_type option) list;
      (** externally bound non-XML parameters and their SQL-derived types *)
  emptiness : bool;
      (** XMLExists mode: only the *emptiness* of the result matters, so a
          boolean-valued top-level expression (never empty!) cannot filter
          — the paper's Query 9 trap *)
}

let root_dpath ?origin collection =
  {
    collection;
    steps = [];
    gap = false;
    pending = P.PTrue;
    cast = None;
    last_attr = false;
    self_singleton = false;
    origin =
      (match origin with
      | Some e -> e
      | None ->
          ECall
            {
              prefix = "db2-fn";
              local = "xmlcolumn";
              args = [ ELit (Xdm.Atomic.Str collection) ];
            });
    anchor = fresh_anchor ();
    anchor_depth = 0;
    anchor_single = false;
  }

let conjoin a b = P.simplify (P.mk_and [ a; b ])

(** Does an expression reference the focus position? *)
let rec mentions_position = function
  | ECall { prefix = "" | "fn"; local = "position" | "last"; args } ->
      args = []
  | EArith (_, a, b) | EGCmp (_, a, b) | EVCmp (_, a, b) ->
      mentions_position a || mentions_position b
  | ENeg a -> mentions_position a
  | _ -> false

(** Is a predicate expression positional — one whose value is a number
    compared against the context position, or a position()-based test?
    Positional predicates never eliminate documents (every document that
    has a first match keeps it). *)
let is_positional = function
  | ELit (Xdm.Atomic.Integer _ | Xdm.Atomic.Double _ | Xdm.Atomic.Decimal _)
    ->
      true
  | EArith _ | ENeg _ -> true  (* numeric-valued: positional *)
  | e -> mentions_position e

(* ------------------------------------------------------------------ *)
(* Deriving paths                                                      *)
(* ------------------------------------------------------------------ *)

let rec extend_with_steps env (dp : dpath) (steps : step list) : dpath option
    =
  match steps with
  | [] -> Some dp
  | SAxis { axis = DescOrSelf; test = Kind KAnyNode; preds = [] } :: rest ->
      extend_with_steps env { dp with gap = true } rest
  | SAxis { axis; test; preds } :: rest -> (
      let mk ~attr ~extra_gap =
        let t = try Some (Pat.test_of_nodetest test) with _ -> None in
        match t with
        | None -> None
        | Some t ->
            let step =
              { Pat.gap = dp.gap || extra_gap; attr; tests = [ t ] }
            in
            let dp' =
              {
                dp with
                steps = dp.steps @ [ step ];
                gap = false;
                last_attr = attr;
                self_singleton = false;
                cast = None;
              }
            in
            (* analyze the step predicates with the step's node as focus;
               the focus is a fresh single-node anchor *)
            let focus = reanchor ~single:true { dp' with pending = P.PTrue } in
            let pending =
              List.fold_left
                (fun acc pred ->
                  if is_positional pred then acc
                  else
                    conjoin acc
                      (analyze_filtering { env with context = Some focus } pred))
                dp'.pending preds
            in
            Some { dp' with pending }
      in
      match axis with
      | Child -> Option.bind (mk ~attr:false ~extra_gap:false) (fun dp -> extend_with_steps env dp rest)
      | Attr -> Option.bind (mk ~attr:true ~extra_gap:false) (fun dp -> extend_with_steps env dp rest)
      | Descendant ->
          Option.bind (mk ~attr:false ~extra_gap:true) (fun dp ->
              extend_with_steps env dp rest)
      | Self | DescOrSelf | Parent | Ancestor | AncestorOrSelf
      | FollowingSibling | PrecedingSibling ->
          (* self/desc-or-self-with-test and reverse/sibling navigation:
             give up on this path (conservative — the structural index,
             not the path-value index, owns those axes) *)
          None)
  | SExpr { expr; preds } :: rest -> (
      (* transparent value steps: casts and data() *)
      let transparent =
        match expr with
        | ECast (EContext, t) -> Some (Some t)
        | ECall { prefix = "" | "fn"; local = "data"; args = [] | [ EContext ] }
          ->
            Some dp.cast
        | _ -> None
      in
      match transparent with
      | None -> None
      | Some cast ->
          let dp' = { dp with cast; self_singleton = true } in
          let pending =
            List.fold_left
              (fun acc pred ->
                if is_positional pred then acc
                else
                  conjoin acc
                    (analyze_filtering { env with context = Some dp' } pred))
              dp'.pending preds
          in
          if rest = [] then Some { dp' with pending } else None)

(** Interpret an expression as a derived collection path, if possible. *)
and as_dpath env (e : expr) : dpath option =
  match e with
  | EVar v -> (
      match SMap.find_opt v env.vars with
      | Some (BDoc dp) -> Some dp
      | _ -> None)
  | EContext -> env.context
  | ECall
      {
        prefix = "db2-fn";
        local = "xmlcolumn";
        args = [ ELit (Xdm.Atomic.Str name) ];
      }
  | ECall
      {
        prefix = "" | "fn";
        local = "collection";
        args = [ ELit (Xdm.Atomic.Str name) ];
      } ->
      Some (root_dpath name)
  | EPath (Relative, SExpr { expr = first; preds } :: rest) -> (
      match as_dpath env first with
      | None -> None
      | Some dp ->
          let pending =
            List.fold_left
              (fun acc pred ->
                if is_positional pred then acc
                else
                  conjoin acc
                    (analyze_filtering { env with context = Some dp } pred))
              dp.pending preds
          in
          extend_with_steps env { dp with pending } rest)
  | EPath (Relative, steps) -> (
      (* starts with an axis step: navigate from the focus *)
      match env.context with
      | None -> None
      | Some dp -> extend_with_steps env dp steps)
  | EPath ((Absolute | AbsDesc), _) ->
      (* leading '/': requires a document-rooted focus; only derivable when
         the focus is a collection document root. *)
      None
  | ECast (inner, t) -> (
      match as_dpath env inner with
      | Some dp -> Some { dp with cast = Some t; self_singleton = true }
      | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)
(* ------------------------------------------------------------------ *)

and classify_side env (e : expr) :
    [ `Path of dpath
    | `Const of Xdm.Atomic.t
    | `Param of string * Xdm.Atomic.atomic_type option
    | `Typed of Xdm.Atomic.atomic_type
    | `Unknown ] =
  match e with
  | ELit a -> `Const a
  | ENeg (ELit a) -> (
      match a with
      | Xdm.Atomic.Integer i -> `Const (Xdm.Atomic.Integer (Int64.neg i))
      | Xdm.Atomic.Double f -> `Const (Xdm.Atomic.Double (-.f))
      | Xdm.Atomic.Decimal f -> `Const (Xdm.Atomic.Decimal (-.f))
      | _ -> `Unknown)
  | EVar v when SMap.mem v env.vars -> (
      match as_dpath env e with Some dp -> `Path dp | None -> `Unknown)
  | EVar v -> (
      match List.assoc_opt v env.scalar_params with
      | Some t -> `Param (v, t)
      | None -> `Unknown)
  | ECast ((ELit _ as lit), t) -> (
      match classify_side env lit with
      | `Const a -> (
          match Xdm.Atomic.cast_opt a t with
          | Some v -> `Const v
          | None -> `Typed t)
      | _ -> `Typed t)
  | ECast (EVar v, t) when not (SMap.mem v env.vars) -> `Param (v, Some t)
  | EContext -> ( match env.context with
      | Some dp -> `Path { dp with self_singleton = true }
      | None -> `Unknown)
  | _ -> (
      match as_dpath env e with
      | Some dp -> `Path dp
      | None -> (
          match e with
          | ECast (_, t) -> `Typed t
          | _ -> `Unknown))

(** Rebuild an evaluable absolute expression from a derived path:
    [origin / steps / cast]. [None] when a step cannot be expressed (e.g.
    merged self tests). *)
and expr_of_dpath (dp : dpath) : expr option =
  let nodetest_of_test : Pat.test -> nodetest option = function
    | Pat.TestName q -> Some (Name (TName q))
    | Pat.TestStar -> Some (Name TStar)
    | Pat.TestNsStar uri -> Some (Name (TNsStar { prefix = "ns"; uri }))
    | Pat.TestLocalStar l -> Some (Name (TLocalStar l))
    | Pat.TestKindAny -> Some (Kind KAnyNode)
    | Pat.TestKindText -> Some (Kind KText)
    | Pat.TestKindComment -> Some (Kind KComment)
    | Pat.TestKindPi t -> Some (Kind (KPi t))
  in
  let rec steps_of = function
    | [] -> Some []
    | (ps : Pat.pstep) :: rest -> (
        match ps.Pat.tests with
        | [ t ] -> (
            match (nodetest_of_test t, steps_of rest) with
            | Some test, Some more ->
                let axis = if ps.Pat.attr then Attr else Child in
                let gap_steps =
                  if ps.Pat.gap then
                    [ SAxis { axis = DescOrSelf; test = Kind KAnyNode; preds = [] } ]
                  else []
                in
                Some (gap_steps @ (SAxis { axis; test; preds = [] } :: more))
            | _ -> None)
        | _ -> None)
  in
  match steps_of dp.steps with
  | None -> None
  | Some steps ->
      let steps =
        match dp.cast with
        | Some t -> steps @ [ SExpr { expr = ECast (EContext, t); preds = [] } ]
        | None -> steps
      in
      Some (EPath (Relative, SExpr { expr = dp.origin; preds = [] } :: steps))

and leaf_of env ~value_cmp (dp : dpath) (op : P.cmp_op) (operand : P.operand)
    ~source : P.t =
  ignore env;
  if dp.steps = [] then P.PTrue
  else
    let beyond = List.length dp.steps - dp.anchor_depth in
    let singleton =
      dp.anchor_single
      && ((beyond = 0 && dp.self_singleton) || (beyond = 1 && dp.last_attr))
    in
    conjoin dp.pending
      (P.PLeaf
         {
           collection = dp.collection;
           path = Pat.of_steps dp.steps;
           op;
           operand;
           path_cast = dp.cast;
           value_cmp;
           anchor = dp.anchor;
           singleton_path = singleton;
           source;
         })

and analyze_comparison env ~value_cmp op (a : expr) (b : expr) : P.t =
  let source =
    Printf.sprintf "%s %s %s" (expr_to_string a) (P.cmp_op_to_string op)
      (expr_to_string b)
  in
  let sa = classify_side env a and sb = classify_side env b in
  match (sa, sb) with
  | `Path dp, `Const c -> leaf_of env ~value_cmp dp op (P.OConst c) ~source
  | `Const c, `Path dp ->
      leaf_of env ~value_cmp dp (P.flip op) (P.OConst c) ~source
  | `Path dp, `Param (v, t) ->
      leaf_of env ~value_cmp dp op (P.OParam (v, t)) ~source
  | `Param (v, t), `Path dp ->
      leaf_of env ~value_cmp dp (P.flip op) (P.OParam (v, t)) ~source
  | `Path dp, `Typed t ->
      leaf_of env ~value_cmp dp op (P.OJoin { jexpr = b; jcast = Some t }) ~source
  | `Typed t, `Path dp ->
      leaf_of env ~value_cmp dp (P.flip op)
        (P.OJoin { jexpr = a; jcast = Some t })
        ~source
  | `Path dp1, `Path dp2 ->
      (* a join between two collections: each side is a necessary
         condition; the comparison type is whatever a cast proves (Tip 1).
         The join operand is re-rooted at its origin so the planner can
         evaluate it for index nested-loop probing. *)
      let jexpr_of dp fallback =
        Option.value (expr_of_dpath dp) ~default:fallback
      in
      conjoin
        (leaf_of env ~value_cmp dp1 op
           (P.OJoin { jexpr = jexpr_of dp2 b; jcast = dp2.cast })
           ~source)
        (leaf_of env ~value_cmp dp2 (P.flip op)
           (P.OJoin { jexpr = jexpr_of dp1 a; jcast = dp1.cast })
           ~source)
  | `Path dp, `Unknown ->
      leaf_of env ~value_cmp dp op (P.OJoin { jexpr = b; jcast = None }) ~source
  | `Unknown, `Path dp ->
      leaf_of env ~value_cmp dp (P.flip op)
        (P.OJoin { jexpr = a; jcast = None })
        ~source
  | _ -> P.PTrue

(* ------------------------------------------------------------------ *)
(* Filtering positions                                                 *)
(* ------------------------------------------------------------------ *)

(** Analyze an expression whose *emptiness / falsity* eliminates the
    current document (where clauses, predicates, XMLExists). *)
and analyze_filtering env (e : expr) : P.t =
  match e with
  | EAnd (a, b) ->
      P.simplify (P.mk_and [ analyze_filtering env a; analyze_filtering env b ])
  | EOr (a, b) ->
      P.simplify (P.mk_or [ analyze_filtering env a; analyze_filtering env b ])
  | EGCmp (op, a, b) ->
      let op' =
        match op with
        | GEq -> P.CEq
        | GNe -> P.CNe
        | GLt -> P.CLt
        | GLe -> P.CLe
        | GGt -> P.CGt
        | GGe -> P.CGe
      in
      analyze_comparison env ~value_cmp:false op' a b
  | EVCmp (op, a, b) ->
      let op' =
        match op with
        | VEq -> P.CEq
        | VNe -> P.CNe
        | VLt -> P.CLt
        | VLe -> P.CLe
        | VGt -> P.CGt
        | VGe -> P.CGe
      in
      analyze_comparison env ~value_cmp:true op' a b
  | EQuant (QSome, binds, sat) ->
      let env', contribs =
        List.fold_left
          (fun (env, acc) (v, be) ->
            match as_dpath env be with
            | Some dp ->
                ( {
                    env with
                    vars =
                      SMap.add v
                        (BDoc (reanchor ~single:true { dp with pending = P.PTrue }))
                        env.vars;
                  },
                  dp.pending :: acc )
            | None ->
                ( { env with vars = SMap.add v BOpaque env.vars },
                  analyze_result env be :: acc ))
          (env, []) binds
      in
      P.simplify (P.mk_and (analyze_filtering env' sat :: contribs))
  | EQuant (QEvery, _, _) -> P.PTrue
  | EPath _ | EVar _ -> (
      match as_dpath env e with
      | Some dp when dp.steps <> [] ->
          conjoin dp.pending
            (P.PStructural
               {
                 s_collection = dp.collection;
                 s_path = Pat.of_steps dp.steps;
                 s_source = expr_to_string e;
               })
      | Some dp -> dp.pending
      | None -> analyze_result env e)
  | ECall { prefix = "" | "fn"; local = "exists" | "boolean"; args = [ a ] }
    ->
      analyze_filtering env a
  | ECall { prefix = "xqdb"; local = "between"; args = [ vs; lo; hi ] } -> (
      (* the explicit between of the paper's Section 4: existential over a
         closed range — always answerable by ONE merged range scan *)
      match
        (as_dpath env vs, classify_side env lo, classify_side env hi)
      with
      | Some dp, `Const clo, `Const chi when dp.steps <> [] ->
          let dp = reanchor ~single:true dp in
          let dp = { dp with self_singleton = true } in
          let source = Printf.sprintf "xqdb:between(%s)" (expr_to_string vs) in
          P.simplify
            (P.mk_and
               [
                 leaf_of env ~value_cmp:false dp P.CGe (P.OConst clo) ~source;
                 leaf_of env ~value_cmp:false dp P.CLe (P.OConst chi) ~source;
               ])
      | _ -> P.PTrue)
  | ECall { prefix = "" | "fn"; local = "zero-or-one" | "one-or-more" | "exactly-one"; args = [ a ] }
    ->
      analyze_filtering env a
  | EFlwor _ -> analyze_result env e
  | ESeq es -> P.simplify (P.mk_or (List.map (analyze_filtering env) es))
  | EIf (_, t, f) ->
      P.simplify (P.mk_or [ analyze_filtering env t; analyze_filtering env f ])
  | _ -> P.PTrue

(* ------------------------------------------------------------------ *)
(* Result positions                                                    *)
(* ------------------------------------------------------------------ *)

(** Analyze an expression whose *result* is delivered (query body, return
    clause, for-binding): documents for which it evaluates to the empty
    sequence contribute nothing, so emptiness-preserving sub-expressions
    filter. *)
and analyze_result env (e : expr) : P.t =
  match e with
  | EPath _ | EVar _ | EContext -> (
      match as_dpath env e with
      | Some dp when dp.steps <> [] ->
          conjoin dp.pending
            (P.PStructural
               {
                 s_collection = dp.collection;
                 s_path = Pat.of_steps dp.steps;
                 s_source = expr_to_string e;
               })
      | Some dp -> dp.pending
      | None -> P.PTrue)
  | ESeq es -> P.simplify (P.mk_or (List.map (analyze_result env) es))
  | EElem _ -> P.PTrue
  | EFlwor (clauses, ret) ->
      let env, contribs =
        List.fold_left
          (fun (env, acc) clause ->
            match clause with
            | CFor binds ->
                List.fold_left
                  (fun (env, acc) (v, be) ->
                    match as_dpath env be with
                    | Some dp ->
                        let contrib =
                          if dp.steps = [] then dp.pending
                          else
                            conjoin dp.pending
                              (P.PStructural
                                 {
                                   s_collection = dp.collection;
                                   s_path = Pat.of_steps dp.steps;
                                   s_source = expr_to_string be;
                                 })
                        in
                        ( {
                            env with
                            vars =
                              SMap.add v
                                (BDoc
                                   (reanchor ~single:true
                                      { dp with pending = P.PTrue }))
                                env.vars;
                          },
                          contrib :: acc )
                    | None ->
                        ( { env with vars = SMap.add v BOpaque env.vars },
                          analyze_result env be :: acc ))
                  (env, acc) binds
            | CLet binds ->
                (* let preserves empty sequences: extend the environment,
                   contribute nothing (Section 3.4); the bound value is a
                   sequence, so it is never a singleton anchor *)
                List.fold_left
                  (fun (env, acc) (v, be) ->
                    match as_dpath env be with
                    | Some dp ->
                        ( {
                            env with
                            vars =
                              SMap.add v
                                (BDoc { dp with anchor_single = false })
                                env.vars;
                          },
                          acc )
                    | None ->
                        ( { env with vars = SMap.add v BOpaque env.vars },
                          acc ))
                  (env, acc) binds
            | CWhere e -> (env, analyze_filtering env e :: acc)
            | COrder _ -> (env, acc))
          (env, []) clauses
      in
      P.simplify (P.mk_and (analyze_result env ret :: List.rev contribs))
  | EQuant _ | EGCmp _ | EVCmp _ | EAnd _ | EOr _ | ECall _ ->
      analyze_filtering_or_true env e
  | EIf (_, t, f) ->
      P.simplify (P.mk_or [ analyze_result env t; analyze_result env f ])
  | _ -> P.PTrue

(** Comparisons and calls in result position deliver their boolean result.
    In value mode, restricting the collection must not flip an existential
    from true to false — general comparisons are existential, so filtering
    is sound; aggregates (count/sum/...) are not. In emptiness mode
    (XMLExists), a boolean result is never the empty sequence, so nothing
    boolean-valued can filter (Query 9). *)
and analyze_filtering_or_true env (e : expr) : P.t =
  if env.emptiness then P.PTrue
  else
    match e with
    | ECall { prefix = "" | "fn"; local = "exists" | "boolean"; _ }
    | EGCmp _ | EVCmp _ | EAnd _ | EOr _ | EQuant _ ->
        analyze_filtering env e
    | _ -> P.PTrue

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Analyze a statically resolved query.

    [xml_params]: external variables bound to XML column documents
    (SQL/XML [PASSING col AS "v"]) — (variable, "TABLE.COLUMN").
    [scalar_params]: external non-XML variables with their SQL-derived XML
    schema types. *)
let analyze ?(xml_params : (string * string) list = [])
    ?(scalar_params : (string * Xdm.Atomic.atomic_type option) list = [])
    ?(mode : [ `Value | `Exists ] = `Value) (q : query) : P.t =
  let env =
    {
      vars =
        List.fold_left
          (fun m (v, coll) ->
            SMap.add v (BDoc (root_dpath ~origin:(EVar v) coll)) m)
          SMap.empty xml_params;
      context = None;
      scalar_params;
      emptiness = mode = `Exists;
    }
  in
  P.simplify (analyze_result env q.body)

(* ------------------------------------------------------------------ *)
(* Structural-axis survey                                              *)
(* ------------------------------------------------------------------ *)

(** Visit every expression and step of a query (pre-order, source
    order); the shared chassis of the structural surveys below. *)
let survey ~(on_expr : expr -> unit) ~(on_step : step -> unit) (q : query) :
    unit =
  let rec go (e : expr) =
    on_expr e;
    match e with
    | ELit _ | EVar _ | EContext -> ()
    | ESeq es -> List.iter go es
    | EPath (_, steps) -> List.iter go_step steps
    | EFlwor (clauses, ret) ->
        List.iter
          (function
            | CFor binds | CLet binds -> List.iter (fun (_, e) -> go e) binds
            | CWhere e -> go e
            | COrder keys -> List.iter (fun (e, _) -> go e) keys)
          clauses;
        go ret
    | EQuant (_, binds, sat) ->
        List.iter (fun (_, e) -> go e) binds;
        go sat
    | EIf (c, t, f) ->
        go c;
        go t;
        go f
    | EAnd (a, b)
    | EOr (a, b)
    | EGCmp (_, a, b)
    | EVCmp (_, a, b)
    | ENCmp (_, a, b)
    | EArith (_, a, b)
    | ERange (a, b)
    | EUnion (a, b)
    | EIntersect (a, b)
    | EExcept (a, b) ->
        go a;
        go b
    | ENeg a | ECast (a, _) | ECastable (a, _) | EInstanceOf (a, _) -> go a
    | ECall { args; _ } -> List.iter go args
    | EElem c ->
        List.iter
          (fun (_, pieces) ->
            List.iter (function APExpr e -> go e | APText _ -> ()) pieces)
          c.cattrs;
        List.iter (function CPExpr e -> go e | CPText _ -> ()) c.ccontent
    | EElemComp { cn_expr; cbody; _ } ->
        Option.iter go cn_expr;
        go cbody
    | EAttrComp { an_expr; abody; _ } ->
        Option.iter go an_expr;
        go abody
    | ETextComp e -> go e
  and go_step s =
    on_step s;
    match s with
    | SAxis { preds; _ } -> List.iter go preds
    | SExpr { expr; preds } ->
        go expr;
        List.iter go preds
  in
  go q.body

(** The reverse and sibling axes used anywhere in a query, in first-use
    order — the steps only a structural index can index-accelerate
    (tree-walked otherwise). Feeds the planner's [nav-axis] EXPLAIN
    notes and the advisor's structural-index tip. *)
let reverse_axes (q : query) : Xquery.Ast.axis list =
  let seen = ref [] in
  let add a = if not (List.mem a !seen) then seen := a :: !seen in
  survey q
    ~on_expr:(fun _ -> ())
    ~on_step:(function
      | SAxis { axis; _ } ->
          if Xquery.Ast.is_reverse_or_sibling axis then add axis
      | SExpr _ -> ());
  List.rev !seen

(** The stored collections ("TABLE.COLUMN") a query reads through
    [db2-fn:xmlcolumn]/[fn:collection] literals, in first-use order. *)
let collections (q : query) : string list =
  let seen = ref [] in
  let add c = if not (List.mem c !seen) then seen := c :: !seen in
  survey q
    ~on_step:(fun _ -> ())
    ~on_expr:(function
      | ECall
          {
            prefix = "db2-fn" | "" | "fn";
            local = "xmlcolumn" | "collection";
            args = [ ELit (Xdm.Atomic.Str c) ];
          } ->
          add c
      | _ -> ());
  List.rev !seen
