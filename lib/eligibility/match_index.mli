(** Index eligibility decisions (the paper's Section 2.2 and 3.1): can a
    given XML index answer a given predicate leaf, and if so, how should
    it be probed? *)

(** Why an index cannot serve a leaf (rendered into EXPLAIN notes). *)
type reject =
  | RWrongColumn
  | RNotContained
      (** the index pattern is more restrictive than the query path
          (Section 2.2, Query 2; namespaces, Section 3.7; text() steps,
          Section 3.8; attributes, Section 3.9) *)
  | RTypeMismatch of Predicate.cmp_class * Xmlindex.Xindex.vtype
      (** comparison type vs index type (Section 3.1) *)
  | RUnknownType
      (** comparison type unprovable — e.g. a cast-less join (Tip 1) *)
  | ROpNotIndexable  (** [!=] cannot be answered by a range scan *)
  | RStructuralNeedsVarchar
      (** only a VARCHAR index contains *all* matching nodes
          (Section 2.2) *)

val reject_to_string : reject -> string

(** How to probe an eligible index. *)
type probe_spec =
  | SpecRange of Xmlindex.Xindex.range  (** constant operand *)
  | SpecParam of string * Predicate.cmp_op
      (** externally bound parameter: value known per evaluation *)
  | SpecJoin of Predicate.cmp_op  (** per-outer-row join probe *)
  | SpecStructural

val class_compatible : Predicate.cmp_class -> Xmlindex.Xindex.vtype -> bool

(** Normalized "table.column" of an index definition. *)
val column_of_def : Xmlindex.Xindex.def -> string

(** Constant-operand range for an index of type [vt]. *)
val range_of :
  Predicate.cmp_op ->
  Xdm.Atomic.t ->
  Xmlindex.Xindex.vtype ->
  (Xmlindex.Xindex.range, reject) result

(** Decide eligibility of [def] for a value-predicate leaf. *)
val check_leaf :
  Xmlindex.Xindex.def -> Predicate.leaf -> (probe_spec, reject) result

(** Decide eligibility for a structural (existence) leaf: only VARCHAR
    indexes, which by definition contain every matching node. *)
val check_structural :
  Xmlindex.Xindex.def -> Predicate.struct_leaf -> (probe_spec, reject) result
