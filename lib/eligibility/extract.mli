(** Predicate extraction (the paper's Section 3): walk a statically
    resolved query and derive the {!Predicate.t} tree of conditions a
    document must satisfy to contribute to the result.

    The extractor is conservative by construction: any expression it
    cannot prove filtering collapses to [Predicate.PTrue], never to a
    stronger condition — so index pre-filtering through the result stays
    sound (Definition 1). *)

(** Is a predicate expression positional — a numeric value compared
    against the context position, or a position()/last()-based test?
    Positional predicates never eliminate documents (every document that
    has a first match keeps it). *)
val is_positional : Xquery.Ast.expr -> bool

(** Analyze a statically resolved query.

    [xml_params]: external variables bound to XML column documents
    (SQL/XML [PASSING col AS "v"]) — (variable, "TABLE.COLUMN").
    [scalar_params]: external non-XML variables with their SQL-derived
    XML schema types ([None] = unknown, e.g. an untyped prepared
    parameter). [mode]: [`Exists] analyzes under XMLEXISTS semantics,
    where only result emptiness matters (the paper's Query 9 trap). *)
val analyze :
  ?xml_params:(string * string) list ->
  ?scalar_params:(string * Xdm.Atomic.atomic_type option) list ->
  ?mode:[ `Value | `Exists ] ->
  Xquery.Ast.query ->
  Predicate.t

(** The reverse and sibling axes used anywhere in a query, in first-use
    order — the steps only a structural index can index-accelerate
    (tree-walked otherwise). Feeds the planner's [nav-axis] EXPLAIN
    notes and the advisor's structural-index tip. *)
val reverse_axes : Xquery.Ast.query -> Xquery.Ast.axis list

(** The stored collections ("TABLE.COLUMN") a query reads through
    [db2-fn:xmlcolumn]/[fn:collection] literals, in first-use order. *)
val collections : Xquery.Ast.query -> string list
