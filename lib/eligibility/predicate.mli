(** Normal form for *filtering predicates* extracted from queries.

    A predicate tree describes, for each document of a collection, a
    condition that is **necessary** for the document to contribute to the
    query result. Definition 1 of the paper: an index [I] is eligible for
    predicate [P] of query [Q] iff [Q(D) = Q(I(P, D))] — so every leaf is
    implied by "this document affects the result"; when in doubt the
    extractor emits [PTrue]. *)

type cmp_op = CEq | CNe | CLt | CLe | CGt | CGe

val cmp_op_to_string : cmp_op -> string

(** Mirror an operator across the comparison ([a < b] ⇔ [b > a]). *)
val flip : cmp_op -> cmp_op

(** The non-path side of a comparison. *)
type operand =
  | OConst of Xdm.Atomic.t
      (** literal or constant-folded value; its dynamic type decides the
          comparison type (paper Section 3.1) *)
  | OParam of string * Xdm.Atomic.atomic_type option
      (** an externally bound variable (SQL/XML [PASSING], prepared
          parameter); the type, when known, is inherited from the SQL
          side — the paper's Query 13 *)
  | OJoin of {
      jexpr : Xquery.Ast.expr;
          (** the other side of the comparison — evaluable at probe time
              when its free variables are bound (index nested-loop join) *)
      jcast : Xdm.Atomic.atomic_type option;
          (** type proven by a cast; without one the comparison type is
              unknown and no index is eligible (Tip 1) *)
    }

val operand_to_string : operand -> string

(** Comparison type classes, deciding which index data types can serve
    the predicate (paper Section 3.1). *)
type cmp_class = CNumeric | CString | CDate | CDateTime | CUnknown

val cmp_class_to_string : cmp_class -> string
val class_of_atomic_type : Xdm.Atomic.atomic_type -> cmp_class

type leaf = {
  collection : string;  (** "TABLE.COLUMN" *)
  path : Xmlindex.Pattern.t;  (** derived absolute path of the compared node *)
  op : cmp_op;
  operand : operand;
  path_cast : Xdm.Atomic.atomic_type option;
      (** cast applied on the path side, e.g. [custid/xs:double(.)] *)
  value_cmp : bool;  (** value comparison ([eq], [gt], ...) *)
  anchor : int;
      (** identity of the navigation anchor (variable binding or predicate
          focus) this comparison hangs from; two comparisons with the same
          anchor test the same context node *)
  singleton_path : bool;
      (** the compared value is provably at most one per anchor node —
          Section 3.10's "between" preconditions *)
  source : string;  (** printable origin, for EXPLAIN *)
}

(** A structural (existence) predicate: the document must contain at
    least one node on this path. Answerable by a full-range scan of a
    VARCHAR index (paper Section 2.2). *)
type struct_leaf = {
  s_collection : string;
  s_path : Xmlindex.Pattern.t;
  s_source : string;
}

type t =
  | PAnd of t list
  | POr of t list
  | PLeaf of leaf
  | PStructural of struct_leaf
  | PTrue  (** no document can be eliminated through this branch *)

(** Effective comparison class of a leaf: a cast on the path side wins;
    otherwise the operand's type decides. *)
val leaf_class : leaf -> cmp_class

val mk_and : t list -> t
val mk_or : t list -> t

(** Drop [PTrue] children of conjunctions (and duplicate conjuncts); a
    [PTrue] branch poisons a disjunction entirely. *)
val simplify : t -> t

(** Restrict a tree to the leaves of one collection; leaves of other
    collections become [PTrue]. *)
val for_collection : string -> t -> t

val collections : t -> string list
val leaves : t -> leaf list
val to_string : t -> string
