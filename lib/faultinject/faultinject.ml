(** Fault-injection harness.

    Tests (and the bench) arm named trigger points sprinkled through the
    storage, index, B+Tree, evaluator and durability layers; the Nth
    operation that passes an armed point raises [Injected]. The
    statement-atomicity machinery must then roll the catalog back to its
    pre-statement state — that is what the robustness tests assert — and
    the durable engine must recover the on-disk state on reopen — that is
    what the crash-recovery torture suite asserts.

    A trigger is one-shot: it disarms itself when it fires, so rollback
    code running in the wake of an injected fault cannot re-trigger it.
    The [hit] fast path is a single atomic read when nothing is armed, so
    leaving the calls compiled in costs effectively nothing.

    Thread-safety: countdowns are [int Atomic.t] decremented with
    [fetch_and_add], so parallel domains racing through the same armed
    point (Xpar worker pools) fire it exactly once; the table itself is
    guarded by a named [Xpar.Lock] (so the acquisition shows up in the
    lock-order tracker) on the (rare) arm/disarm path. *)

exception Injected of { point : string; msg : string }

(** Every trigger point wired into the engine. Keep in sync with the
    [Faultinject.hit] call sites; [t_robustness.ml] sweeps this list so a
    new point can never be silently untested. *)
let points () =
  [
    "storage.insert";     (* entry of Storage.Table.insert (per row) *)
    "storage.update";     (* entry of Storage.Table.update (per row) *)
    "index.insert_doc";   (* entry of Xmlindex.Xindex.insert_doc (per doc) *)
    "index.delete_doc";   (* entry of Xmlindex.Xindex.delete_doc (per doc) *)
    "structindex.insert_doc"; (* Structindex.insert_doc (per doc encode) *)
    "structindex.remove_doc"; (* Structindex.remove_doc (per doc) *)
    "btree.split";        (* a B+Tree leaf is about to split *)
    "eval.step";          (* every Xquery.Eval.eval step *)
    "wal.append";         (* a WAL record is about to be appended *)
    "wal.fsync";          (* the WAL is about to be fsynced (commit) *)
    "page.write";         (* a dirty page is about to be written back *)
    "page.evict";         (* the buffer pool is about to evict a frame *)
    "checkpoint.begin";   (* a checkpoint is starting *)
    "checkpoint.end";     (* a checkpoint is about to publish its manifest *)
  ]

let enabled = Atomic.make false
let lock = Xpar.Lock.create ~name:"faultinject.registry" ()
let armed : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8
let with_lock f = Xpar.Lock.with_lock lock f

(** Arm [point] to fail its [n]th hit from now (1-based). *)
let arm ~point ~n =
  if n < 1 then invalid_arg "Faultinject.arm: n must be >= 1";
  with_lock (fun () ->
      Hashtbl.replace armed point (Atomic.make n);
      Atomic.set enabled true)

let disarm point =
  with_lock (fun () ->
      Hashtbl.remove armed point;
      if Hashtbl.length armed = 0 then Atomic.set enabled false)

(** Disarm everything (call between tests). *)
let reset () =
  with_lock (fun () ->
      Hashtbl.reset armed;
      Atomic.set enabled false)

(** Currently armed points with their remaining countdown. *)
let armed_points () =
  with_lock (fun () ->
      Hashtbl.fold (fun p c acc -> (p, Atomic.get c) :: acc) armed [])
  |> List.sort compare

let fire point =
  disarm point;
  raise (Injected { point; msg = Printf.sprintf "injected fault at %s" point })

(** Trigger point: decrements the countdown of [point] if armed and raises
    [Injected] when it reaches zero. Exactly one domain observes the
    transition to zero, so a racing pool fires the fault once. *)
let hit point =
  if Atomic.get enabled then
    let c = with_lock (fun () -> Hashtbl.find_opt armed point) in
    match c with
    | None -> ()
    | Some c -> if Atomic.fetch_and_add c (-1) = 1 then fire point

(** Run [f] with [point] armed at countdown [n]; the point is disarmed on
    the way out even when [f] raises (including [Injected] itself). *)
let with_fault ~point ~n f =
  arm ~point ~n;
  Fun.protect ~finally:(fun () -> disarm point) f

(** Arm each registered point in turn (countdown [n], default 1) and call
    [f point]; any exception other than [Injected] aborts the sweep. Used
    by the robustness and crash-recovery suites so every point gets
    exercised. *)
let sweep ?(n = 1) f =
  List.iter
    (fun point ->
      with_fault ~point ~n (fun () ->
          try f point with Injected _ -> ()))
    (points ())
