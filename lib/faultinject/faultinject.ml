(** Fault-injection harness.

    Tests (and the bench) arm named trigger points sprinkled through the
    storage, index, B+Tree and evaluator layers; the Nth operation that
    passes an armed point raises [Injected]. The statement-atomicity
    machinery must then roll the catalog back to its pre-statement state —
    that is what the robustness tests assert.

    Trigger points currently wired in:
    - ["storage.insert"]   — entry of {!Storage.Table.insert} (per row)
    - ["storage.update"]   — entry of {!Storage.Table.update} (per row)
    - ["index.insert_doc"] — entry of {!Xmlindex.Xindex.insert_doc} (per doc)
    - ["index.delete_doc"] — entry of {!Xmlindex.Xindex.delete_doc} (per doc)
    - ["btree.split"]      — a B+Tree leaf is about to split
    - ["eval.step"]        — every {!Xquery.Eval.eval} step

    A trigger is one-shot: it disarms itself when it fires, so rollback
    code running in the wake of an injected fault cannot re-trigger it.
    The [hit] fast path is a single ref read when nothing is armed, so
    leaving the calls compiled in costs effectively nothing. *)

exception Injected of { point : string; msg : string }

let enabled = ref false
let armed : (string, int ref) Hashtbl.t = Hashtbl.create 8

(** Arm [point] to fail its [n]th hit from now (1-based). *)
let arm ~point ~n =
  if n < 1 then invalid_arg "Faultinject.arm: n must be >= 1";
  Hashtbl.replace armed point (ref n);
  enabled := true

let disarm point =
  Hashtbl.remove armed point;
  if Hashtbl.length armed = 0 then enabled := false

(** Disarm everything (call between tests). *)
let reset () =
  Hashtbl.reset armed;
  enabled := false

(** Currently armed points with their remaining countdown. *)
let armed_points () =
  Hashtbl.fold (fun p c acc -> (p, !c) :: acc) armed []
  |> List.sort compare

let fire point =
  disarm point;
  raise (Injected { point; msg = Printf.sprintf "injected fault at %s" point })

(** Trigger point: decrements the countdown of [point] if armed and raises
    [Injected] when it reaches zero. *)
let hit point =
  if !enabled then
    match Hashtbl.find_opt armed point with
    | None -> ()
    | Some c ->
        decr c;
        if !c <= 0 then fire point
