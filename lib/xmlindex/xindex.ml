(** XML path-value indexes (paper Section 2.1).

    [CREATE INDEX i ON t(xmlcol) USING XMLPATTERN 'p' AS type].

    An index entry is created for each node matching the pattern whose
    value is convertible to the index type; nodes that fail the cast are
    *silently skipped* (the paper's "tolerant" behaviour, which makes
    broad indexes like [//@* AS double] possible and keeps schema
    evolution from blocking inserts).

    Entries are composite B+Tree keys [(value, path id, row id, node id)]:
    value-major so that an equality or range predicate is one contiguous
    leaf scan, with the path id available to restrict the scan to the
    paths a query actually asks for (DB2's path-table design). A probe
    returns the set of *row ids* that may satisfy the predicate —
    Definition 1's [I(P, D)]. *)

open Xdm

type vtype = VDouble | VVarchar | VDate | VTimestamp

let vtype_to_atomic = function
  | VDouble -> Atomic.TDouble
  | VVarchar -> Atomic.TString
  | VDate -> Atomic.TDate
  | VTimestamp -> Atomic.TDateTime

let vtype_to_string = function
  | VDouble -> "DOUBLE"
  | VVarchar -> "VARCHAR"
  | VDate -> "DATE"
  | VTimestamp -> "TIMESTAMP"

type def = {
  iname : string;
  table : string;
  column : string;
  pattern : Pattern.t;
  vtype : vtype;
}

module Key = struct
  type t = { v : Atomic.t; path : int; row : int; node : int }

  let compare a b =
    match Atomic.compare_values a.v b.v with
    | Atomic.Lt -> -1
    | Atomic.Gt -> 1
    | Atomic.Eq ->
        Stdlib.compare (a.path, a.row, a.node) (b.path, b.row, b.node)
    | Atomic.Uncomparable ->
        invalid_arg "Xindex.Key.compare: heterogeneous index keys"
end

module BT = Btree.Make (Key)

type stats = {
  mutable entries_scanned : int;  (** index entries touched by probes *)
  mutable probes : int;  (** number of range/equality scans *)
  mutable inserts : int;
  mutable deletes : int;
}

(** An MVCC snapshot view over a live index (see {!snapshot_view}):
    probes run against the shared tree, then [guard] decides whether
    the result is trustworthy for the pinned snapshot. If entries may
    have been removed since the snapshot was taken ([guard] = false),
    the probe answers with [fallback] — the full row-id set of the
    snapshot's table — instead. Probes are Definition-1 pre-filters, so
    a superset is always sound; only *missing* row ids would be wrong. *)
type view = { guard : unit -> bool; fallback : unit -> Int_set.t }

type t = {
  def : def;
  tree : unit BT.t;
  latch : Mutex.t;
      (** guards every tree mutation and probe; shared between the live
          index and all of its snapshot views *)
  view : view option;  (** [Some _] on snapshot views only *)
  stats : stats;
  prof : Xprof.t;  (** probes charge [index_probes]/[index_entries_scanned]
                       and B+Tree page reads against this profile *)
}

let fresh_stats () =
  { entries_scanned = 0; probes = 0; inserts = 0; deletes = 0 }

let create ?(prof = Xprof.disabled) def =
  {
    def;
    tree = BT.create ~order:64 ~prof ();
    latch = Mutex.create ();
    view = None;
    stats = fresh_stats ();
    prof;
  }

(** A read-only view of this index for one MVCC snapshot: shares the
    tree (and its latch) but answers probes through the
    [guard]/[fallback] discipline above, and keeps its own stats so
    concurrent readers do not fight the writer over counters. *)
let snapshot_view (idx : t) ~(guard : unit -> bool)
    ~(fallback : unit -> Int_set.t) : t =
  { idx with view = Some { guard; fallback }; stats = fresh_stats ();
    prof = Xprof.disabled }

let entry_count idx = Latch.with_latch idx.latch (fun () -> BT.size idx.tree)

(** All index entries in key order (snapshot dump). *)
let entries idx : Key.t list =
  Latch.with_latch idx.latch (fun () -> List.map fst (BT.to_list idx.tree))

(** Rebuild an index from snapshot entries: re-sorts (node ids are remapped
    during restore, which can perturb key order) and bulk-loads. *)
let of_entries ?(prof = Xprof.disabled) def (entries : Key.t list) : t =
  let arr =
    List.sort Key.compare entries
    |> List.map (fun k -> (k, ()))
    |> Array.of_list
  in
  {
    def;
    tree = BT.of_sorted ~order:64 ~prof arr;
    latch = Mutex.create ();
    view = None;
    stats = { entries_scanned = 0; probes = 0; inserts = Array.length arr; deletes = 0 };
    prof;
  }

let reset_stats idx =
  idx.stats.entries_scanned <- 0;
  idx.stats.probes <- 0

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)
(* ------------------------------------------------------------------ *)

(** Cast a node's value to the index type; [None] = not indexed
    (tolerant). NaN doubles are excluded so the key order stays total. *)
let index_value (idx : t) (n : Node.t) : Atomic.t option =
  let target = vtype_to_atomic idx.def.vtype in
  let source =
    (* "the cast of the node to the indexed type, taking into
       consideration the node's type annotation" *)
    match Node.typed_value n with
    | [ v ] -> v
    | _ -> Atomic.Untyped (Node.string_value n)
    | exception Xerror.Error _ -> Atomic.Untyped (Node.string_value n)
  in
  match Atomic.cast_opt source target with
  | Some (Atomic.Double f) when Float.is_nan f -> None
  | v -> v

(** All indexable nodes of a document: every element, attribute, text
    node, comment and PI (the document node itself has no rooted path). *)
let candidate_nodes (doc : Node.t) : Node.t list =
  Node.descendants_or_self doc
  |> List.concat_map (fun (n : Node.t) ->
         match n.Node.kind with
         | Node.Document -> []
         | Node.Element -> (n :: n.Node.attrs)
         | _ -> [ n ])

(** The pure compute half of {!insert_doc}: the document's matching
    nodes and their cast index values, with no B+Tree or path-table
    mutation. Safe to run in parallel chunks during bulk index builds —
    the mutating half ({!insert_entries}) then applies results
    single-threaded in row order, keeping undo-log atomicity intact. *)
let doc_entries (idx : t) (doc : Node.t) : (Node.t * Atomic.t) list =
  candidate_nodes doc
  |> List.filter_map (fun (n : Node.t) ->
         if Pattern.matches_node idx.def.pattern n then
           match index_value idx n with
           | Some v -> Some (n, v)
           | None -> None
         else None)

(** The mutating half of {!insert_doc}: intern paths and insert B+Tree
    entries for one document's precomputed [entries]. Fires the same
    [index.insert_doc] fault point as {!insert_doc}. *)
let insert_entries (idx : t) (pt : Storage.Path_table.t) ~(row : int)
    (entries : (Node.t * Atomic.t) list) : unit =
  Faultinject.hit "index.insert_doc";
  List.iter
    (fun ((n : Node.t), v) ->
      let path = Storage.Path_table.intern pt n in
      Latch.with_latch idx.latch (fun () ->
          BT.insert idx.tree { Key.v; path; row; node = n.Node.id } ());
      idx.stats.inserts <- idx.stats.inserts + 1)
    entries

let insert_doc (idx : t) (pt : Storage.Path_table.t) ~(row : int)
    (doc : Node.t) : unit =
  insert_entries idx pt ~row (doc_entries idx doc)

let delete_doc (idx : t) (pt : Storage.Path_table.t) ~(row : int)
    (doc : Node.t) : unit =
  Faultinject.hit "index.delete_doc";
  candidate_nodes doc
  |> List.iter (fun (n : Node.t) ->
         if Pattern.matches_node idx.def.pattern n then
           match index_value idx n with
           | Some v ->
               let path =
                 match Storage.Path_table.find pt n with
                 | Some p -> p
                 | None -> -1
               in
               if
                 Latch.with_latch idx.latch (fun () ->
                     BT.delete idx.tree { Key.v; path; row; node = n.Node.id })
               then idx.stats.deletes <- idx.stats.deletes + 1
           | None -> ())

(* ------------------------------------------------------------------ *)
(* Consistency checking                                                *)
(* ------------------------------------------------------------------ *)

let describe_key (k : Key.t) =
  Printf.sprintf "(%s, path=%d, row=%d, node=%d)"
    (Atomic.string_value k.Key.v)
    k.Key.path k.Key.row k.Key.node

(** Re-derive the expected index entries from the documents and path
    table, diff against the B+Tree, and return a human-readable list of
    discrepancies (empty = consistent). Used by the fault-injection tests
    to prove that a rolled-back statement left no stale or missing
    entries. *)
let check_consistency (idx : t) (pt : Storage.Path_table.t)
    (docs : (int * Node.t) list) : string list =
  let expected : (Key.t, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (row, doc) ->
      candidate_nodes doc
      |> List.iter (fun (n : Node.t) ->
             if Pattern.matches_node idx.def.pattern n then
               match index_value idx n with
               | Some v ->
                   let path =
                     match Storage.Path_table.find pt n with
                     | Some p -> p
                     | None -> -1
                   in
                   Hashtbl.replace expected
                     { Key.v; path; row; node = n.Node.id }
                     ()
               | None -> ()))
    docs;
  let diffs = ref [] in
  Latch.with_latch idx.latch (fun () ->
  BT.iter idx.tree (fun k () ->
      if Hashtbl.mem expected k then Hashtbl.remove expected k
      else
        diffs :=
          Printf.sprintf "%s: stale entry %s" idx.def.iname (describe_key k)
          :: !diffs));
  Hashtbl.iter
    (fun k () ->
      diffs :=
        Printf.sprintf "%s: missing entry %s" idx.def.iname (describe_key k)
        :: !diffs)
    expected;
  List.sort compare !diffs

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

(** A probe returns the row ids whose document contains at least one
    index entry satisfying the predicate on one of [paths]. *)

let lo_key v = { Key.v; path = min_int; row = min_int; node = min_int }
let hi_key v = { Key.v; path = max_int; row = max_int; node = max_int }

type range = {
  lo : (Atomic.t * bool) option;  (** value, inclusive *)
  hi : (Atomic.t * bool) option;
}

let full_range = { lo = None; hi = None }
let eq_range v = { lo = Some (v, true); hi = Some (v, true) }

(** Scan one contiguous range, filtering by path id; returns row ids. *)
let probe_range (idx : t) ~(paths : Int_set.t) (r : range) : Int_set.t =
  let lo =
    match r.lo with
    | None -> BT.Unbounded
    | Some (v, true) -> BT.Incl (lo_key v)
    | Some (v, false) -> BT.Excl (hi_key v)
  in
  let hi =
    match r.hi with
    | None -> BT.Unbounded
    | Some (v, true) -> BT.Incl (hi_key v)
    | Some (v, false) -> BT.Excl (lo_key v)
  in
  idx.stats.probes <- idx.stats.probes + 1;
  Xprof.probe idx.prof;
  let rows =
    Xprof.spanned idx.prof ("XISCAN " ^ idx.def.iname) (fun () ->
        Latch.with_latch idx.latch (fun () ->
            BT.fold_range idx.tree ~lo ~hi
              (fun acc (k : Key.t) () ->
                idx.stats.entries_scanned <- idx.stats.entries_scanned + 1;
                Xprof.entry idx.prof;
                if Int_set.mem k.Key.path paths then Int_set.add k.Key.row acc
                else acc)
              Int_set.empty))
  in
  match idx.view with
  | Some v when not (v.guard ()) -> v.fallback ()
  | _ -> rows

(** The set of path ids in [pt] that satisfy the *query* path pattern
    [qpat] (the index is a superset of the query path by eligibility, so
    restricting to query-matching paths is exact). *)
let matching_paths (pt : Storage.Path_table.t) (qpat : Pattern.t) : Int_set.t
    =
  Storage.Path_table.fold pt
    (fun acc id steps ->
      if Pattern.matches qpat steps then Int_set.add id acc else acc)
    Int_set.empty

(** Structural probe: any value, path must match — a full-range scan, only
    meaningful on a VARCHAR index (which by definition contains *all*
    matching nodes; paper Section 2.2). *)
let probe_structural (idx : t) ~(paths : Int_set.t) : Int_set.t =
  probe_range idx ~paths full_range
