(** Index tree latches.

    MVCC snapshot readers share the live B+Trees with the single writer
    (copying a tree per snapshot would defeat bulk-load throughput), so
    every tree mutation and every probe runs under the owning index's
    latch — a real mutex even on the sequential Xpar backend, because
    server sessions are preemptive systhreads on OCaml 4.14 too. The
    latch is held per document insert / per probe, never across a whole
    statement: a reader waits behind one index operation, not behind
    the bulk load that issued it.

    All latches share one Lockorder id ("xmlindex.tree"): they are
    leaf locks, taken one at a time (a probe never nests inside another
    index's operation), so a single id keeps the tracker's tables small
    while still catching any future attempt to nest something under a
    tree latch. *)

let id = Xpar.Lockorder.register "xmlindex.tree"

let with_latch (mu : Mutex.t) f =
  Xpar.Lockorder.acquiring id;
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      Xpar.Lockorder.released id;
      v
  | exception e ->
      Mutex.unlock mu;
      Xpar.Lockorder.released id;
      raise e
