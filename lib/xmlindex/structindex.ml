(** Structural node-encoding index: (pre, post, parent-pre, level) per
    node, the classic interval encoding of the structural-join family.

    Each stored document gets one {!enc}: arrays indexed by the node's
    *preorder rank* within its tree, walked in {!Xdm.Node.renumber}
    order (node, attributes, children) so preorder rank order is
    document order. The derived laws the consistency checker validates:

    - [descendant(x)] ⇔ [pre x < pre y ≤ end x] — a subtree is a
      contiguous preorder interval, closed by [endp] (its last preorder
      rank);
    - [post parent > post child] and [level child = level parent + 1];
    - ancestor queries follow [parent] pointers; sibling queries hop
      subtrees with [endp + 1].

    Axis steps evaluate as merges over these sorted arrays: a context
    set (bit array in preorder) goes in, the axis result set comes out,
    with staircase pruning on the descendant axes (covered context nodes
    contribute nothing). That answers the reverse and sibling axes —
    which the path-value {!Xindex} cannot express — in one pass per
    document, without materializing intermediate node lists.

    Encodings are keyed by the *root node's id*. Node trees are shared
    by reference across MVCC table snapshots (only row records are
    copied), so a reader snapshot keeps resolving its documents'
    encodings while a writer loads more; a missing encoding (e.g. the
    document was replaced after the snapshot) falls back to tree-walk
    evaluation per document, never to a wrong answer. The table of
    encodings is guarded by [latch]; the arrays themselves are immutable
    once built. *)

open Xquery.Ast
module Node = Xdm.Node
module Qname = Xdm.Qname

type def = { iname : string; table : string; column : string }

(** "TABLE.COLUMN", the collection a def serves. *)
let collection_of_def (d : def) = d.table ^ "." ^ d.column

(* preorder-indexed; all arrays share length = node count of the tree *)
type enc = {
  nodes : Node.t array;  (** preorder rank → node *)
  post : int array;  (** postorder rank *)
  parent : int array;  (** preorder rank of parent; -1 at the root *)
  level : int array;  (** depth; 0 at the root *)
  kind : int array;  (** {!kind_code} of the node kind *)
  endp : int array;  (** last preorder rank of the subtree *)
}

type stats = { mutable probes : int; mutable entries : int }

type t = {
  def : def;
  latch : Xpar.Lock.t;
      (** guards [encs] (arrays are immutable once in); named so it
          participates in lock-order/deadlock tracking *)
  encs : (int, enc) Hashtbl.t;  (** root node id → encoding *)
  stats : stats;
  prof : Xprof.t;  (** shared statement profile, set by the engine *)
}

let fresh_stats () = { probes = 0; entries = 0 }

let create ?(prof = Xprof.disabled) (def : def) : t =
  {
    def;
    latch = Xpar.Lock.create ~name:"structindex.encs" ();
    encs = Hashtbl.create 64;
    stats = fresh_stats ();
    prof;
  }

let locked t f = Xpar.Lock.with_lock t.latch f

let doc_count t = locked t (fun () -> Hashtbl.length t.encs)
let stats t = (t.stats.probes, t.stats.entries)

(** Total encoded nodes across every document in the table. *)
let node_count t =
  locked t (fun () ->
      Hashtbl.fold (fun _ e acc -> acc + Array.length e.nodes) t.encs 0)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let k_document = 0
let k_element = 1
let k_attribute = 2
let k_text = 3
let k_comment = 4
let k_pi = 5

let kind_code = function
  | Node.Document -> k_document
  | Node.Element -> k_element
  | Node.Attribute -> k_attribute
  | Node.Text -> k_text
  | Node.Comment -> k_comment
  | Node.Pi -> k_pi

let rec tree_size (n : Node.t) =
  List.fold_left
    (fun acc c -> acc + tree_size c)
    (1 + List.length n.Node.attrs)
    n.Node.children

(** Encode one document. Pure — safe to run in parallel backfill chunks;
    installing the result into the index is the caller's (single-
    threaded) job. *)
let encode_doc (root : Node.t) : enc =
  let n = tree_size root in
  let e =
    {
      nodes = Array.make n root;
      post = Array.make n 0;
      parent = Array.make n (-1);
      level = Array.make n 0;
      kind = Array.make n 0;
      endp = Array.make n 0;
    }
  in
  let pre = ref 0 and post = ref 0 in
  let rec go depth parent_pre (node : Node.t) =
    let p = !pre in
    incr pre;
    e.nodes.(p) <- node;
    e.parent.(p) <- parent_pre;
    e.level.(p) <- depth;
    e.kind.(p) <- kind_code node.Node.kind;
    List.iter (go (depth + 1) p) node.Node.attrs;
    List.iter (go (depth + 1) p) node.Node.children;
    e.endp.(p) <- !pre - 1;
    e.post.(p) <- !post;
    incr post
  in
  go 0 (-1) root;
  e

(** Install a precomputed encoding (parallel backfill's apply phase). *)
let install t (root : Node.t) (e : enc) =
  locked t (fun () -> Hashtbl.replace t.encs root.Node.id e)

(** Encode and install one document (hook path). *)
let insert_doc t (root : Node.t) =
  Faultinject.hit "structindex.insert_doc";
  install t root (encode_doc root)

let remove_doc t (root : Node.t) =
  Faultinject.hit "structindex.remove_doc";
  locked t (fun () -> Hashtbl.remove t.encs root.Node.id)

let find t (root : Node.t) : enc option =
  locked t (fun () -> Hashtbl.find_opt t.encs root.Node.id)

(* ------------------------------------------------------------------ *)
(* Axis-step joins                                                     *)
(* ------------------------------------------------------------------ *)

(** One axis step as a merge over the preorder arrays: context marks in,
    candidate marks out (node tests are applied by the caller). Returns
    the marks and the number of candidates touched. *)
let axis_candidates (e : enc) (axis : axis) (ctx : bool array) :
    bool array * int =
  let n = Array.length e.nodes in
  let out = Array.make n false in
  let touched = ref 0 in
  let mark j =
    if not out.(j) then begin
      out.(j) <- true;
      incr touched
    end
  in
  (match axis with
  | Self ->
      for j = 0 to n - 1 do
        if ctx.(j) then mark j
      done
  | Child ->
      (* structural join on the parent pointer: both sides sorted by pre *)
      for j = 0 to n - 1 do
        let p = e.parent.(j) in
        if p >= 0 && ctx.(p) && e.kind.(j) <> k_attribute then mark j
      done
  | Attr ->
      for j = 0 to n - 1 do
        let p = e.parent.(j) in
        if p >= 0 && ctx.(p) && e.kind.(j) = k_attribute then mark j
      done
  | Descendant | DescOrSelf ->
      (* staircase join: contexts arrive in preorder; a context inside
         an already-emitted interval is covered and skipped *)
      let i = ref 0 in
      while !i < n do
        if ctx.(!i) then begin
          if axis = DescOrSelf then mark !i;
          for j = !i + 1 to e.endp.(!i) do
            if e.kind.(j) <> k_attribute then mark j
          done;
          (* DescOrSelf must still self-mark covered contexts; only the
             pure descendant scan may skip the whole interval *)
          if axis = Descendant then i := e.endp.(!i) + 1 else incr i
        end
        else incr i
      done
  | Parent ->
      for j = 0 to n - 1 do
        if ctx.(j) && e.parent.(j) >= 0 then mark e.parent.(j)
      done
  | Ancestor | AncestorOrSelf ->
      for j = 0 to n - 1 do
        if ctx.(j) then begin
          if axis = AncestorOrSelf then mark j;
          let p = ref e.parent.(j) in
          (* stop at the first already-marked ancestor: its own chain is
             done (amortizes the walk to O(n) over all contexts) *)
          while !p >= 0 && not out.(!p) do
            mark !p;
            p := e.parent.(!p)
          done
        end
      done
  | FollowingSibling ->
      for j = 0 to n - 1 do
        if ctx.(j) && e.kind.(j) <> k_attribute && e.parent.(j) >= 0 then begin
          let k = ref (e.endp.(j) + 1) in
          let continue = ref true in
          while !continue && !k < n && e.parent.(!k) = e.parent.(j) do
            (* an earlier context sibling already marked the rest *)
            if out.(!k) then continue := false
            else begin
              mark !k;
              k := e.endp.(!k) + 1
            end
          done
        end
      done
  | PrecedingSibling ->
      for j = 0 to n - 1 do
        if ctx.(j) && e.kind.(j) <> k_attribute && e.parent.(j) >= 0 then begin
          (* first sibling: just past the parent's attributes *)
          let k = ref (e.parent.(j) + 1) in
          while !k < n && e.kind.(!k) = k_attribute do
            k := !k + 1
          done;
          while !k < j do
            mark !k;
            k := e.endp.(!k) + 1
          done
        end
      done);
  (out, !touched)

(** Replicates {!Xquery.Eval.node_test_matches}: name tests select the
    principal node kind of the axis. *)
let test_matches (e : enc) (axis : axis) (test : nodetest) (j : int) : bool =
  match test with
  | Kind KAnyNode -> true
  | Kind KText -> e.kind.(j) = k_text
  | Kind KComment -> e.kind.(j) = k_comment
  | Kind KDocument -> e.kind.(j) = k_document
  | Kind (KPi None) -> e.kind.(j) = k_pi
  | Kind (KPi (Some target)) ->
      e.kind.(j) = k_pi
      && (match e.nodes.(j).Node.name with
         | Some q -> q.Qname.local = target
         | None -> false)
  | Name nt -> (
      let principal_ok =
        match axis with
        | Attr -> e.kind.(j) = k_attribute
        | _ -> e.kind.(j) = k_element
      in
      principal_ok
      &&
      match (nt, e.nodes.(j).Node.name) with
      | TStar, _ -> true
      | TName q, Some nq -> Qname.equal q nq
      | TNsStar { uri; _ }, Some nq -> String.equal nq.Qname.uri uri
      | TLocalStar l, Some nq -> String.equal nq.Qname.local l
      | _, None -> false)

(** Evaluate a chain of predicate-free axis steps over one document,
    starting from its root. Returns the result nodes in preorder
    (= document order within the tree), or [None] when the document has
    no encoding (caller falls back to tree-walk evaluation). *)
let query ?(prof = Xprof.disabled) t (root : Node.t)
    (steps : (axis * nodetest) list) : Node.t list option =
  match find t root with
  | None -> None
  | Some e ->
      let n = Array.length e.nodes in
      let ctx = Array.make n false in
      ctx.(0) <- true;
      let scanned = ref 0 in
      let marks =
        List.fold_left
          (fun ctx (axis, test) ->
            let out, touched = axis_candidates e axis ctx in
            for j = 0 to n - 1 do
              if out.(j) && not (test_matches e axis test j) then
                out.(j) <- false
            done;
            scanned := !scanned + touched;
            t.stats.probes <- t.stats.probes + 1;
            Xprof.struct_probe prof;
            out)
          ctx steps
      in
      t.stats.entries <- t.stats.entries + !scanned;
      Xprof.struct_entries prof !scanned;
      let acc = ref [] in
      for j = n - 1 downto 0 do
        if marks.(j) then acc := e.nodes.(j) :: !acc
      done;
      Some !acc

(* ------------------------------------------------------------------ *)
(* Consistency checking                                                *)
(* ------------------------------------------------------------------ *)

(** Validate the index against the live documents of its column: every
    document encoded, no stale encodings, and each encoding both matches
    a fresh walk of the tree and satisfies the interval laws. Returns
    human-readable problems (empty = consistent). *)
let check_consistency t (docs : Node.t list) : string list =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  let live = Hashtbl.create 64 in
  List.iter (fun (d : Node.t) -> Hashtbl.replace live d.Node.id ()) docs;
  locked t (fun () ->
      Hashtbl.iter
        (fun id _ ->
          if not (Hashtbl.mem live id) then
            add "stale encoding for dropped document (root id %d)" id)
        t.encs);
  List.iter
    (fun (root : Node.t) ->
      match find t root with
      | None -> add "missing encoding for document (root id %d)" root.Node.id
      | Some e ->
          let fresh = encode_doc root in
          let n = Array.length e.nodes in
          if n <> Array.length fresh.nodes then
            add "doc %d: encoding has %d nodes, tree has %d" root.Node.id n
              (Array.length fresh.nodes)
          else
            for j = 0 to n - 1 do
              if e.nodes.(j).Node.id <> fresh.nodes.(j).Node.id then
                add "doc %d: pre %d encodes node %d, tree walk finds %d"
                  root.Node.id j e.nodes.(j).Node.id fresh.nodes.(j).Node.id;
              if
                e.post.(j) <> fresh.post.(j)
                || e.parent.(j) <> fresh.parent.(j)
                || e.level.(j) <> fresh.level.(j)
                || e.kind.(j) <> fresh.kind.(j)
                || e.endp.(j) <> fresh.endp.(j)
              then add "doc %d: pre %d encoding differs from tree" root.Node.id j;
              (* interval laws *)
              let p = e.parent.(j) in
              if j = 0 then begin
                if p <> -1 || e.level.(j) <> 0 then
                  add "doc %d: root must have parent -1, level 0" root.Node.id
              end
              else if p < 0 || p >= j then
                add "doc %d: pre %d has non-ancestor parent %d" root.Node.id j p
              else begin
                if not (j > p && j <= e.endp.(p)) then
                  add "doc %d: pre %d outside parent %d's interval (%d,%d]"
                    root.Node.id j p p e.endp.(p);
                if e.level.(j) <> e.level.(p) + 1 then
                  add "doc %d: pre %d level %d, parent level %d" root.Node.id j
                    e.level.(j) e.level.(p);
                if e.post.(j) >= e.post.(p) then
                  add "doc %d: pre %d post %d not before parent post %d"
                    root.Node.id j e.post.(j) e.post.(p)
              end
            done)
    docs;
  List.rev !problems
