(** XMLPATTERN index patterns (paper Section 2.1).

    Grammar (from the paper's CREATE INDEX DDL):
    {v
    pattern   ::= namespace-decls? (( / | // ) axis? (name-test | kind-test))+
    axis      ::= @ | child:: | attribute:: | self:: | descendant:: |
                  descendant-or-self::
    name-test ::= qname | * | ncname:* | *:ncname
    kind-test ::= node() | text() | comment() | processing-instruction(nc?)
    v}

    The pattern may contain descendant axes and wildcards but no
    predicates. We reuse the XQuery front end to parse it, then validate
    and convert into a canonical step list that both the index maintainer
    (matching nodes on insert) and the eligibility analyzer (containment)
    consume.

    A canonical pattern is a list of consuming steps, each optionally
    preceded by a descendant gap ([//]); [self::] steps are conjoined
    into their neighbour as extra tests. *)

open Xquery.Ast

(** One node-label test in canonical form. *)
type test =
  | TestName of Xdm.Qname.t  (** uri + local, exact *)
  | TestNsStar of string  (** fixed uri, any local *)
  | TestLocalStar of string  (** any uri, fixed local *)
  | TestStar  (** any element/attribute name *)
  | TestKindAny  (** node() *)
  | TestKindText
  | TestKindComment
  | TestKindPi of string option

(** A consuming step: [gap] is true when preceded by [//]. [PAttr] steps
    consume an attribute path component, [PChild] everything else. *)
type pstep = { gap : bool; attr : bool; tests : test list }

type t = {
  steps : pstep list;
  source : string;  (** original pattern text *)
  default_ns : string;  (** default element namespace of the pattern *)
}

let to_string p = p.source

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Invalid of string

let invalid fmt = Format.kasprintf (fun m -> raise (Invalid m)) fmt

let test_of_nodetest (nt : nodetest) : test =
  match nt with
  | Name (TName q) -> TestName q
  | Name TStar -> TestStar
  | Name (TNsStar { uri; _ }) -> TestNsStar uri
  | Name (TLocalStar l) -> TestLocalStar l
  | Kind KAnyNode -> TestKindAny
  | Kind KText -> TestKindText
  | Kind KComment -> TestKindComment
  | Kind (KPi t) -> TestKindPi t
  | Kind KDocument -> invalid "document-node() not allowed in XMLPATTERN"

(** Parse and canonicalize an XMLPATTERN. *)
let of_string (src : string) : t =
  let q =
    try Xquery.Parser.parse_query src
    with Xdm.Xerror.Error { msg; _ } -> invalid "bad XMLPATTERN: %s" msg
  in
  let q = Xquery.Static.resolve q in
  let steps =
    match q.body with
    | EPath (Absolute, steps) -> steps
    | _ -> invalid "XMLPATTERN must be an absolute path (start with / or //)"
  in
  (* Convert, folding descendant-or-self::node() separators into gaps and
     self:: steps into test conjunctions. *)
  let rec go ~gap acc = function
    | [] ->
        if gap then invalid "XMLPATTERN cannot end with //";
        List.rev acc
    | SAxis { axis = DescOrSelf; test = Kind KAnyNode; preds = [] } :: rest ->
        go ~gap:true acc rest
    | SAxis { axis; test; preds } :: rest -> (
        if preds <> [] then invalid "XMLPATTERN cannot contain predicates";
        let t = test_of_nodetest test in
        match axis with
        | Child -> go ~gap:false ({ gap; attr = false; tests = [ t ] } :: acc) rest
        | Attr -> go ~gap:false ({ gap; attr = true; tests = [ t ] } :: acc) rest
        | Self -> (
            (* conjoin into the previous consuming step *)
            match acc with
            | prev :: acc' ->
                go ~gap:false ({ prev with tests = t :: prev.tests } :: acc') rest
            | [] -> invalid "XMLPATTERN cannot start with self::")
        | Descendant ->
            go ~gap:false ({ gap = true; attr = false; tests = [ t ] } :: acc) rest
        | DescOrSelf ->
            (* descendant-or-self with a non-trivial test: approximate as
               descendant (the or-self case is only observable for the
               root element); keep indexes slightly narrower, which is the
               safe direction for maintenance + we refuse containment. *)
            invalid
              "descendant-or-self:: with a test is not supported in \
               XMLPATTERN; use // or descendant::"
        | Parent -> invalid "parent axis not allowed in XMLPATTERN"
        | Ancestor | AncestorOrSelf | FollowingSibling | PrecedingSibling ->
            invalid "%s axis not allowed in XMLPATTERN (reverse and \
                     sibling axes are served by structural indexes)"
              (axis_name axis))
    | SExpr _ :: _ -> invalid "XMLPATTERN cannot contain general expressions"
  in
  let steps = go ~gap:false [] steps in
  if steps = [] then invalid "empty XMLPATTERN";
  {
    steps;
    source = src;
    default_ns = Option.value q.prolog.default_elem_ns ~default:"";
  }

(** Build a pattern from canonical steps directly (used by the
    eligibility analyzer for paths *derived* from query navigation). *)
let of_steps ?(source = "<derived>") steps =
  { steps; source; default_ns = "" }

(* ------------------------------------------------------------------ *)
(* Matching against rooted paths                                       *)
(* ------------------------------------------------------------------ *)

(** Does [test] accept the path component [s]? [attr_step] tells whether
    the component is consumed via the attribute axis (name tests apply to
    attribute names there) or a child-ish axis (name tests apply to
    element names). *)
let test_matches ~attr_step (test : test) (s : Xdm.Node.path_step) : bool =
  match (test, s, attr_step) with
  | TestKindAny, _, false -> (
      (* child axis: node() matches elements, text, comments, PIs — but
         never attributes (paper Section 3.9) *)
      match s with `Attr _ -> false | _ -> true)
  | TestKindAny, `Attr _, true -> true
  | TestKindAny, _, true -> false
  | TestKindText, `Text, false -> true
  | TestKindText, _, _ -> false
  | TestKindComment, `Comment, false -> true
  | TestKindComment, _, _ -> false
  | TestKindPi None, `Pi _, false -> true
  | TestKindPi (Some t), `Pi target, false -> String.equal t target
  | TestKindPi _, _, _ -> false
  | TestName q, `Elem eq, false -> Xdm.Qname.equal q eq
  | TestName q, `Attr aq, true -> Xdm.Qname.equal q aq
  | TestName _, _, _ -> false
  | TestNsStar uri, `Elem eq, false -> String.equal uri eq.Xdm.Qname.uri
  | TestNsStar uri, `Attr aq, true -> String.equal uri aq.Xdm.Qname.uri
  | TestNsStar _, _, _ -> false
  | TestLocalStar l, `Elem eq, false -> String.equal l eq.Xdm.Qname.local
  | TestLocalStar l, `Attr aq, true -> String.equal l aq.Xdm.Qname.local
  | TestLocalStar _, _, _ -> false
  | TestStar, `Elem _, false -> true
  | TestStar, `Attr _, true -> true
  | TestStar, _, _ -> false

let step_matches (p : pstep) (s : Xdm.Node.path_step) : bool =
  List.for_all (fun t -> test_matches ~attr_step:p.attr t s) p.tests

(** Does the pattern match a node with the given rooted path
    (root-first)? *)
let matches (p : t) (path : Xdm.Node.path_step list) : bool =
  let arr = Array.of_list path in
  let n = Array.length arr in
  let is_elem i = match arr.(i) with `Elem _ -> true | _ -> false in
  (* steps.(k) must consume arr.(i); gaps allow skipping element
     components. *)
  let steps = Array.of_list p.steps in
  let m = Array.length steps in
  let rec go k i =
    if k = m then i = n
    else
      let st = steps.(k) in
      let direct = i < n && step_matches st arr.(i) && go (k + 1) (i + 1) in
      if direct then true
      else if st.gap then
        (* consume one more element component under the gap *)
        i < n && is_elem i && go k (i + 1)
      else false
  in
  go 0 0

(** Convenience: does the pattern match this node? *)
let matches_node (p : t) (node : Xdm.Node.t) : bool =
  matches p (Xdm.Node.rooted_path node)

(* ------------------------------------------------------------------ *)
(* Display                                                             *)
(* ------------------------------------------------------------------ *)

let test_to_string = function
  | TestName q -> Xdm.Qname.to_clark q
  | TestNsStar uri -> "{" ^ uri ^ "}*"
  | TestLocalStar l -> "*:" ^ l
  | TestStar -> "*"
  | TestKindAny -> "node()"
  | TestKindText -> "text()"
  | TestKindComment -> "comment()"
  | TestKindPi None -> "processing-instruction()"
  | TestKindPi (Some t) -> "processing-instruction(" ^ t ^ ")"

let step_to_string (s : pstep) =
  (if s.gap then "//" else "/")
  ^ (if s.attr then "@" else "")
  ^ String.concat "[self]" (List.map test_to_string s.tests)

let canonical_string (p : t) =
  String.concat "" (List.map step_to_string p.steps)
