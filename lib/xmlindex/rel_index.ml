(** Relational (single-column) B+Tree indexes — the baseline the paper
    contrasts XML indexes with, and the index used when a join condition
    is expressed "on the SQL side" (Section 3.3, Query 14). *)

open Storage

module Key = struct
  type t = { v : Sql_value.t; row : int }

  (* NULLs are not indexed; comparisons below never see them. *)
  let compare a b =
    match Sql_value.compare_sql a.v b.v with
    | Some 0 -> Stdlib.compare a.row b.row
    | Some c -> c
    | None -> invalid_arg "Rel_index: NULL key"
end

module BT = Btree.Make (Key)

(** Snapshot-view probe discipline; see {!Xindex.view}. *)
type view = { guard : unit -> bool; fallback : unit -> Xdm.Int_set.t }

type t = {
  iname : string;
  table : string;
  column : string;
  tree : unit BT.t;
  latch : Mutex.t;  (** guards tree mutations and probes (see Latch) *)
  view : view option;  (** [Some _] on snapshot views only *)
  mutable entries_scanned : int;
  prof : Xprof.t;
}

let create ?(prof = Xprof.disabled) ~iname ~table ~column () =
  { iname; table; column; tree = BT.create ~order:64 ~prof ();
    latch = Mutex.create (); view = None; entries_scanned = 0; prof }

(** A read-only MVCC view sharing the tree and latch; probes answer
    with [fallback] (all snapshot row ids) whenever [guard] reports
    that entries may have been removed since the snapshot was taken. *)
let snapshot_view (idx : t) ~(guard : unit -> bool)
    ~(fallback : unit -> Xdm.Int_set.t) : t =
  { idx with view = Some { guard; fallback }; entries_scanned = 0;
    prof = Xprof.disabled }

let insert idx ~row (v : Sql_value.t) =
  match v with
  | Sql_value.Null | Sql_value.Xml _ -> ()
  | v ->
      Latch.with_latch idx.latch (fun () ->
          BT.insert idx.tree { Key.v; row } ())

let delete idx ~row (v : Sql_value.t) =
  match v with
  | Sql_value.Null | Sql_value.Xml _ -> false
  | v ->
      Latch.with_latch idx.latch (fun () -> BT.delete idx.tree { Key.v; row })

let entry_count idx = Latch.with_latch idx.latch (fun () -> BT.size idx.tree)

(** All entries in key order (snapshot dump). *)
let entries idx : Key.t list =
  Latch.with_latch idx.latch (fun () -> List.map fst (BT.to_list idx.tree))

(** Rebuild from snapshot entries; relational keys are stable across a
    reload (no node ids), so the dumped order is already the key order. *)
let of_entries ?(prof = Xprof.disabled) ~iname ~table ~column
    (entries : Key.t list) : t =
  let arr = List.map (fun k -> (k, ())) entries |> Array.of_list in
  {
    iname;
    table;
    column;
    tree = BT.of_sorted ~order:64 ~prof arr;
    latch = Mutex.create ();
    view = None;
    entries_scanned = 0;
    prof;
  }

let lo_key v = { Key.v; row = min_int }
let hi_key v = { Key.v; row = max_int }

(** Range probe; bounds are (value, inclusive?). *)
let probe idx ~(lo : (Sql_value.t * bool) option)
    ~(hi : (Sql_value.t * bool) option) : Xdm.Int_set.t =
  let lo =
    match lo with
    | None -> BT.Unbounded
    | Some (v, true) -> BT.Incl (lo_key v)
    | Some (v, false) -> BT.Excl (hi_key v)
  in
  let hi =
    match hi with
    | None -> BT.Unbounded
    | Some (v, true) -> BT.Incl (hi_key v)
    | Some (v, false) -> BT.Excl (lo_key v)
  in
  Xprof.probe idx.prof;
  let rows =
    Xprof.spanned idx.prof ("IXSCAN " ^ idx.iname) (fun () ->
        Latch.with_latch idx.latch (fun () ->
            BT.fold_range idx.tree ~lo ~hi
              (fun acc (k : Key.t) () ->
                idx.entries_scanned <- idx.entries_scanned + 1;
                Xprof.entry idx.prof;
                Xdm.Int_set.add k.Key.row acc)
              Xdm.Int_set.empty))
  in
  match idx.view with
  | Some v when not (v.guard ()) -> v.fallback ()
  | _ -> rows

let probe_eq idx v = probe idx ~lo:(Some (v, true)) ~hi:(Some (v, true))
