(** Xprof — execution profiling and metrics.

    Two layers (docs/OBSERVABILITY.md is the full metric catalogue):

    - a {b metrics registry} of named monotonic counters, gauges and
      histograms (p50/p95/p99), for process-lifetime aggregates such as
      per-statement latency distributions — the substrate under
      [bench --suite micro]'s [BENCH_micro.json];
    - a {b per-statement execution profile} ({!t}): counter set (XQuery
      eval steps, nodes materialized, index probes, index entries
      scanned, documents scanned, B+Tree page reads/splits, SQL rows
      scanned, undo-log entries), a governor-headroom snapshot, and an
      EXPLAIN-ANALYZE-style operator tree with per-operator wall time.

    Cost discipline mirrors {!Xdm.Limits}: every charge function begins
    with a single [if p.on] branch, so a disabled profile (the default —
    and the shared {!disabled} instance) costs one branch per charge
    site. Wall clocks are only read while profiling is on.

    Operator-tree shape: operators with the same name under the same
    parent share one node; [op_count] is how many times it ran and
    [op_time] its cumulative {e inclusive} wall time (children are not
    subtracted, as in EXPLAIN ANALYZE "actual time"). Recursive
    operators therefore appear as a short aggregated chain rather than
    one node per invocation. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter (no external dependency)                       *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape (s : string) : string =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec to_buffer buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* NaN / infinities are not valid JSON numbers *)
        if Float.is_nan f || f = infinity || f = neg_infinity then
          Buffer.add_string buf "null"
        else Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i it ->
            if i > 0 then Buffer.add_char buf ',';
            to_buffer buf it)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            to_buffer buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    to_buffer buf j;
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  (** Exact histogram: stores every observation in a growable array and
      answers percentile queries by nearest-rank over a sorted copy.
      Fine for the per-statement / per-benchmark-run cardinalities this
      repo produces (thousands, not billions). *)
  type t = { mutable data : float array; mutable n : int }

  let create () = { data = [||]; n = 0 }

  let clear h =
    h.data <- [||];
    h.n <- 0

  let add h v =
    if h.n = Array.length h.data then begin
      let grown = Array.make (max 64 (2 * h.n)) 0. in
      Array.blit h.data 0 grown 0 h.n;
      h.data <- grown
    end;
    h.data.(h.n) <- v;
    h.n <- h.n + 1

  let count h = h.n

  let sorted h =
    let a = Array.sub h.data 0 h.n in
    Array.sort Float.compare a;
    a

  (** Nearest-rank percentile; [nan] on an empty histogram. *)
  let percentile h (p : float) =
    if h.n = 0 then Float.nan
    else begin
      let a = sorted h in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int h.n)) in
      a.(max 0 (min (h.n - 1) (rank - 1)))
    end

  let p50 h = percentile h 50.
  let p95 h = percentile h 95.
  let p99 h = percentile h 99.

  let mean h =
    if h.n = 0 then Float.nan
    else begin
      let s = ref 0. in
      for i = 0 to h.n - 1 do
        s := !s +. h.data.(i)
      done;
      !s /. float_of_int h.n
    end

  let max_value h =
    if h.n = 0 then Float.nan
    else Array.fold_left Float.max neg_infinity (Array.sub h.data 0 h.n)

  let summary_json h : Json.t =
    Json.Obj
      [
        ("n", Json.Int h.n);
        ("mean", Json.Float (mean h));
        ("p50", Json.Float (p50 h));
        ("p95", Json.Float (p95 h));
        ("p99", Json.Float (p99 h));
        ("max", Json.Float (max_value h));
      ]

  let summary_string h =
    Printf.sprintf "n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f" h.n
      (mean h) (p50 h) (p95 h) (p99 h) (max_value h)
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type metric = MCounter of int ref | MGauge of float ref | MHist of Hist.t

  type t = {
    tbl : (string, metric) Hashtbl.t;
    mutable names : string list;  (** reverse insertion order *)
    mu : Mutex.t;
        (** a registry is shared by every server session, so the table,
            the name list and counter read-modify-writes are guarded by
            this internal leaf mutex (real even on the sequential Xpar
            backend); it is never held while calling out *)
  }

  let create () = { tbl = Hashtbl.create 16; names = []; mu = Mutex.create () }

  let locked r f =
    Mutex.lock r.mu;
    match f () with
    | v ->
        Mutex.unlock r.mu;
        v
    | exception e ->
        Mutex.unlock r.mu;
        raise e

  let find_or_add r name mk =
    locked r (fun () ->
        match Hashtbl.find_opt r.tbl name with
        | Some m -> m
        | None ->
            let m = mk () in
            Hashtbl.add r.tbl name m;
            r.names <- name :: r.names;
            m)

  let kind_err name want =
    invalid_arg
      (Printf.sprintf "Xprof.Registry: metric %S already exists with a \
                       different kind (wanted %s)"
         name want)

  let counter r name =
    match find_or_add r name (fun () -> MCounter (ref 0)) with
    | MCounter c -> c
    | _ -> kind_err name "counter"

  (** Monotonic: [by] must be non-negative. *)
  let incr ?(by = 1) r name =
    if by < 0 then invalid_arg "Xprof.Registry.incr: negative increment";
    let c = counter r name in
    locked r (fun () -> c := !c + by)

  let gauge r name =
    match find_or_add r name (fun () -> MGauge (ref 0.)) with
    | MGauge g -> g
    | _ -> kind_err name "gauge"

  let set_gauge r name v = gauge r name := v

  let hist r name =
    match find_or_add r name (fun () -> MHist (Hist.create ())) with
    | MHist h -> h
    | _ -> kind_err name "histogram"

  let observe r name v =
    let h = hist r name in
    locked r (fun () -> Hist.add h v)

  let metrics r : (string * metric) list =
    locked r (fun () ->
        List.rev_map (fun n -> (n, Hashtbl.find r.tbl n)) r.names)

  let to_json r : Json.t =
    Json.Obj
      (List.map
         (fun (name, m) ->
           ( name,
             match m with
             | MCounter c -> Json.Int !c
             | MGauge g -> Json.Float !g
             | MHist h -> Hist.summary_json h ))
         (metrics r))

  let to_string r =
    let buf = Buffer.create 256 in
    List.iter
      (fun (name, m) ->
        match m with
        | MCounter c -> Buffer.add_string buf (Printf.sprintf "%-32s %d\n" name !c)
        | MGauge g -> Buffer.add_string buf (Printf.sprintf "%-32s %g\n" name !g)
        | MHist h ->
            Buffer.add_string buf
              (Printf.sprintf "%-32s %s\n" name (Hist.summary_string h)))
      (metrics r);
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* Per-statement execution profile                                     *)
(* ------------------------------------------------------------------ *)

type op = {
  op_name : string;
  mutable op_count : int;
  mutable op_time : float;  (** cumulative inclusive seconds *)
  mutable op_rows : int;  (** items/rows produced, where the operator knows *)
  mutable op_children : op list;  (** reverse order of first entry *)
}

type t = {
  mutable on : bool;
  mutable eval_steps : int;
  mutable nodes_materialized : int;
  mutable rows_scanned : int;
  mutable docs_scanned : int;
  mutable index_probes : int;
  mutable index_entries_scanned : int;
  mutable struct_probes : int;  (** structural-join axis steps executed *)
  mutable struct_entries : int;
      (** encoding-table slots touched by structural joins *)
  mutable btree_page_reads : int;
  mutable btree_splits : int;
  mutable undo_entries : int;
  mutable xpar_tasks : int;  (** parallel regions executed *)
  mutable xpar_chunks : int;  (** chunks dispatched across all regions *)
  mutable xpar_gated : int;
      (** parallel AND/OR solves gated off (profiling armed) — work that
          *would* have gone parallel but ran sequentially *)
  mutable governor : (string * int * int) list;
      (** (resource, used, cap) — empty when the statement ran with the
          meter unarmed (no limits set) *)
  mutable root : op;
  mutable stack : op list;  (** head = innermost open operator *)
  mutable started : float;
  mutable total : float;  (** statement wall seconds, set by
                              {!finish_statement} *)
}

let fresh_root () =
  { op_name = "statement"; op_count = 1; op_time = 0.; op_rows = 0; op_children = [] }

let create () =
  {
    on = false;
    eval_steps = 0;
    nodes_materialized = 0;
    rows_scanned = 0;
    docs_scanned = 0;
    index_probes = 0;
    index_entries_scanned = 0;
    struct_probes = 0;
    struct_entries = 0;
    btree_page_reads = 0;
    btree_splits = 0;
    undo_entries = 0;
    xpar_tasks = 0;
    xpar_chunks = 0;
    xpar_gated = 0;
    governor = [];
    root = fresh_root ();
    stack = [];
    started = 0.;
    total = 0.;
  }

(** The shared always-off profile: the default for every context that is
    not explicitly profiled. Never enable it. *)
let disabled = create ()

let enable p b =
  if b && p == disabled then
    invalid_arg "Xprof.enable: cannot enable the shared disabled profile";
  p.on <- b

(** Zero all per-statement state (counters, operator tree, governor
    snapshot); the [on] switch and registry are untouched. *)
let reset p =
  p.eval_steps <- 0;
  p.nodes_materialized <- 0;
  p.rows_scanned <- 0;
  p.docs_scanned <- 0;
  p.index_probes <- 0;
  p.index_entries_scanned <- 0;
  p.struct_probes <- 0;
  p.struct_entries <- 0;
  p.btree_page_reads <- 0;
  p.btree_splits <- 0;
  p.undo_entries <- 0;
  p.xpar_tasks <- 0;
  p.xpar_chunks <- 0;
  p.xpar_gated <- 0;
  p.governor <- [];
  p.root <- fresh_root ();
  p.stack <- [];
  p.started <- 0.;
  p.total <- 0.

let start_statement p =
  if p.on then begin
    reset p;
    p.started <- Unix.gettimeofday ()
  end

let finish_statement p =
  if p.on then p.total <- Unix.gettimeofday () -. p.started

let total_ms p = p.total *. 1000.

let set_governor p entries = if p.on then p.governor <- entries

(* --- charge points (all one branch when off) ----------------------- *)

let step p = if p.on then p.eval_steps <- p.eval_steps + 1
let add_nodes p n = if p.on then p.nodes_materialized <- p.nodes_materialized + n
let row p = if p.on then p.rows_scanned <- p.rows_scanned + 1
let doc p = if p.on then p.docs_scanned <- p.docs_scanned + 1
let docs p n = if p.on then p.docs_scanned <- p.docs_scanned + n
let probe p = if p.on then p.index_probes <- p.index_probes + 1

let entry p =
  if p.on then p.index_entries_scanned <- p.index_entries_scanned + 1

(** Charge one structural-join axis step. *)
let struct_probe p = if p.on then p.struct_probes <- p.struct_probes + 1

(** Charge [n] encoding-table slots touched by structural joins. *)
let struct_entries p n =
  if p.on then p.struct_entries <- p.struct_entries + n

let page_read p = if p.on then p.btree_page_reads <- p.btree_page_reads + 1
let split p = if p.on then p.btree_splits <- p.btree_splits + 1
let undo p = if p.on then p.undo_entries <- p.undo_entries + 1

(** Charge one parallel region that dispatched [chunks] chunks. *)
let par p ~chunks =
  if p.on then begin
    p.xpar_tasks <- p.xpar_tasks + 1;
    p.xpar_chunks <- p.xpar_chunks + chunks
  end

(** Charge one parallel region that was *gated off* — eligible for
    parallel solving but forced sequential (index profiling armed). The
    registry mirror ([xpar_gated_total]) makes silently lost parallelism
    visible in [\metrics]. *)
let gated p = if p.on then p.xpar_gated <- p.xpar_gated + 1

(* --- operator spans ------------------------------------------------ *)

(** Open an operator span named [name] under the current operator.
    Returns the span start time; 0. (and no side effect) when off. *)
let enter p name : float =
  if not p.on then 0.
  else begin
    let parent = match p.stack with o :: _ -> o | [] -> p.root in
    let child =
      match List.find_opt (fun o -> o.op_name = name) parent.op_children with
      | Some o ->
          o.op_count <- o.op_count + 1;
          o
      | None ->
          let o =
            { op_name = name; op_count = 1; op_time = 0.; op_rows = 0;
              op_children = [] }
          in
          parent.op_children <- o :: parent.op_children;
          o
    in
    p.stack <- child :: p.stack;
    Unix.gettimeofday ()
  end

(** Close the innermost span opened at [t0], crediting [rows] produced. *)
let leave ?(rows = 0) p (t0 : float) =
  if p.on then
    match p.stack with
    | o :: rest ->
        o.op_time <- o.op_time +. (Unix.gettimeofday () -. t0);
        o.op_rows <- o.op_rows + rows;
        p.stack <- rest
    | [] -> ()

(** Run [f] inside a span; exception-safe. [rows] maps the result to a
    produced-row count for the span. *)
let spanned ?rows p name (f : unit -> 'a) : 'a =
  if not p.on then f ()
  else begin
    let t0 = enter p name in
    match f () with
    | r ->
        leave ?rows:(Option.map (fun g -> g r) rows) p t0;
        r
    | exception ex ->
        leave p t0;
        raise ex
  end

(** Merge a per-chunk child profile into [into]: counters are summed and
    the child's operator tree is grafted under [into]'s innermost open
    span. The parallel executor gives each chunk a private profile (the
    span stack is not thread-safe) and absorbs them in chunk order after
    the join, so profiled parallel runs report deterministic totals. *)
let absorb ~into:(p : t) (child : t) =
  if p.on then begin
    p.eval_steps <- p.eval_steps + child.eval_steps;
    p.nodes_materialized <- p.nodes_materialized + child.nodes_materialized;
    p.rows_scanned <- p.rows_scanned + child.rows_scanned;
    p.docs_scanned <- p.docs_scanned + child.docs_scanned;
    p.index_probes <- p.index_probes + child.index_probes;
    p.index_entries_scanned <-
      p.index_entries_scanned + child.index_entries_scanned;
    p.struct_probes <- p.struct_probes + child.struct_probes;
    p.struct_entries <- p.struct_entries + child.struct_entries;
    p.btree_page_reads <- p.btree_page_reads + child.btree_page_reads;
    p.btree_splits <- p.btree_splits + child.btree_splits;
    p.undo_entries <- p.undo_entries + child.undo_entries;
    p.xpar_tasks <- p.xpar_tasks + child.xpar_tasks;
    p.xpar_chunks <- p.xpar_chunks + child.xpar_chunks;
    p.xpar_gated <- p.xpar_gated + child.xpar_gated;
    let parent = match p.stack with o :: _ -> o | [] -> p.root in
    let rec graft parent ops =
      (* ops arrive oldest-first; find-or-create keeps [op_children]'s
         reverse-of-first-entry invariant *)
      List.iter
        (fun c ->
          match
            List.find_opt (fun o -> o.op_name = c.op_name) parent.op_children
          with
          | Some o ->
              o.op_count <- o.op_count + c.op_count;
              o.op_time <- o.op_time +. c.op_time;
              o.op_rows <- o.op_rows + c.op_rows;
              graft o (List.rev c.op_children)
          | None -> parent.op_children <- c :: parent.op_children)
        ops
    in
    graft parent (List.rev child.root.op_children)
  end

(* --- reporting ----------------------------------------------------- *)

let counters p : (string * int) list =
  [
    ("eval_steps", p.eval_steps);
    ("nodes_materialized", p.nodes_materialized);
    ("rows_scanned", p.rows_scanned);
    ("docs_scanned", p.docs_scanned);
    ("index_probes", p.index_probes);
    ("index_entries_scanned", p.index_entries_scanned);
    ("struct_probes", p.struct_probes);
    ("struct_entries", p.struct_entries);
    ("btree_page_reads", p.btree_page_reads);
    ("btree_splits", p.btree_splits);
    ("undo_entries", p.undo_entries);
    ("xpar_tasks", p.xpar_tasks);
    ("xpar_chunks", p.xpar_chunks);
    ("xpar_gated", p.xpar_gated);
  ]

let counters_json p : Json.t =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters p))

let rec op_json (o : op) : Json.t =
  Json.Obj
    [
      ("op", Json.Str o.op_name);
      ("count", Json.Int o.op_count);
      ("ms", Json.Float (o.op_time *. 1000.));
      ("rows", Json.Int o.op_rows);
      ("children", Json.Arr (List.rev_map op_json o.op_children));
    ]

let governor_json p : Json.t =
  Json.Arr
    (List.map
       (fun (res, used, cap) ->
         Json.Obj
           [
             ("resource", Json.Str res);
             ("used", Json.Int used);
             ("cap", Json.Int cap);
           ])
       p.governor)

let to_json ?statement p : Json.t =
  Json.Obj
    ((match statement with
     | Some s -> [ ("statement", Json.Str s) ]
     | None -> [])
    @ [
        ("total_ms", Json.Float (total_ms p));
        ("counters", counters_json p);
        ("operators", Json.Arr (List.rev_map op_json p.root.op_children));
        ("governor", governor_json p);
      ])

(** EXPLAIN-ANALYZE-style text rendering of the last statement's
    profile: operator tree, counters, governor headroom. *)
let report p : string =
  if not p.on then "-- profiling is off (\\profile on)\n"
  else begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Printf.sprintf "-- profile: %.3f ms\n" (total_ms p));
    let rec pr indent (o : op) =
      Buffer.add_string buf
        (Printf.sprintf "--   %s%-*s %6dx %10.3f ms%s\n" indent
           (max 1 (34 - String.length indent))
           o.op_name o.op_count (o.op_time *. 1000.)
           (if o.op_rows > 0 then Printf.sprintf "  (%d rows)" o.op_rows else ""));
      List.iter (pr (indent ^ "  ")) (List.rev o.op_children)
    in
    (match List.rev p.root.op_children with
    | [] -> Buffer.add_string buf "--   (no operators recorded)\n"
    | ops -> List.iter (pr "") ops);
    Buffer.add_string buf "-- counters:";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k v))
      (counters p);
    Buffer.add_char buf '\n';
    (match p.governor with
    | [] -> Buffer.add_string buf "-- governor: unlimited (meter unarmed)\n"
    | gov ->
        Buffer.add_string buf "-- governor:";
        List.iter
          (fun (res, used, cap) ->
            Buffer.add_string buf
              (Printf.sprintf " %s %d/%d (%.1f%% used)" res used cap
                 (if cap = 0 then 0.
                  else float_of_int used /. float_of_int cap *. 100.)))
          gov;
        Buffer.add_char buf '\n');
    Buffer.contents buf
  end
