(** Generic expression traversal over the XQuery AST (shared by the
    advisor, the lint rules and the static type checker). *)

open Ast

let rec iter_expr (f : expr -> unit) (e : expr) : unit =
  f e;
  let r = iter_expr f in
  match e with
  | ELit _ | EVar _ | EContext -> ()
  | ESeq es -> List.iter r es
  | EPath (_, steps) -> List.iter (iter_step f) steps
  | EFlwor (clauses, ret) ->
      List.iter
        (function
          | CFor binds | CLet binds -> List.iter (fun (_, e) -> r e) binds
          | CWhere e -> r e
          | COrder keys -> List.iter (fun (e, _) -> r e) keys)
        clauses;
      r ret
  | EQuant (_, binds, sat) ->
      List.iter (fun (_, e) -> r e) binds;
      r sat
  | EIf (a, b, c) -> r a; r b; r c
  | EAnd (a, b) | EOr (a, b) | EGCmp (_, a, b) | EVCmp (_, a, b)
  | ENCmp (_, a, b) | EArith (_, a, b) | ERange (a, b) | EUnion (a, b)
  | EIntersect (a, b) | EExcept (a, b) ->
      r a; r b
  | ENeg a | ECast (a, _) | ECastable (a, _) | EInstanceOf (a, _) -> r a
  | ECall { args; _ } -> List.iter r args
  | EElem c -> iter_ctor f c
  | EElemComp { cn_expr; cbody; _ } ->
      Option.iter r cn_expr;
      r cbody
  | EAttrComp { an_expr; abody; _ } ->
      Option.iter r an_expr;
      r abody
  | ETextComp e -> r e

and iter_step f = function
  | SAxis { preds; _ } -> List.iter (iter_expr f) preds
  | SExpr { expr; preds } ->
      iter_expr f expr;
      List.iter (iter_expr f) preds

and iter_ctor f (c : ctor) =
  List.iter
    (fun (_, pieces) ->
      List.iter (function APExpr e -> iter_expr f e | APText _ -> ()) pieces)
    c.cattrs;
  List.iter
    (function CPExpr e -> iter_expr f e | CPText _ -> ())
    c.ccontent
