(** Abstract syntax of the XQuery subset.

    The subset covers every construct used by the paper's Queries 1–30:
    FLWOR expressions, quantified expressions, path expressions over the
    child / descendant / self / descendant-or-self / attribute / parent
    axes with name tests (including namespace wildcards [*], [p:*],
    [*:local]) and kind tests, predicates, general and value comparisons,
    node comparisons, arithmetic, set operations, direct element
    constructors with enclosed expressions, cast/castable, and a prolog
    with namespace declarations.

    Name tests are parsed with their lexical prefix; the [Static] pass
    resolves prefixes to URIs (filling the [Qname.uri] field) before
    evaluation or eligibility analysis. *)

type atomic_type = Xdm.Atomic.atomic_type

type axis =
  | Child
  | Descendant
  | Self
  | DescOrSelf
  | Attr
  | Parent
  | Ancestor
  | AncestorOrSelf
  | FollowingSibling
  | PrecedingSibling

type nametest =
  | TName of Xdm.Qname.t  (** [uri] filled by [Static.resolve] *)
  | TStar  (** [*] *)
  | TNsStar of { prefix : string; uri : string }  (** [p:*] *)
  | TLocalStar of string  (** [*:local] *)

type kindtest =
  | KAnyNode  (** [node()] *)
  | KText
  | KComment
  | KPi of string option  (** [processing-instruction(target?)] *)
  | KDocument  (** [document-node()] *)

type nodetest = Name of nametest | Kind of kindtest

type gcmp = GEq | GNe | GLt | GLe | GGt | GGe
type vcmp = VEq | VNe | VLt | VLe | VGt | VGe
type ncmp = NIs | NPrecedes | NFollows
type arith = Add | Sub | Mul | Div | IDiv | Mod
type quant = QSome | QEvery

(** How a path expression starts. *)
type path_start =
  | Absolute  (** leading [/]: [fn:root(.) treat as document-node()] — the
                  Section 3.5 type-error source *)
  | AbsDesc  (** leading [//] *)
  | Relative  (** starts with its first step *)

type expr =
  | ELit of Xdm.Atomic.t
  | EVar of string
  | EContext  (** [.] *)
  | ESeq of expr list  (** comma operator; [()] is [ESeq []] *)
  | EPath of path_start * step list
  | EFlwor of clause list * expr
  | EQuant of quant * (string * expr) list * expr
  | EIf of expr * expr * expr
  | EAnd of expr * expr
  | EOr of expr * expr
  | EGCmp of gcmp * expr * expr
  | EVCmp of vcmp * expr * expr
  | ENCmp of ncmp * expr * expr
  | EArith of arith * expr * expr
  | ENeg of expr
  | ERange of expr * expr  (** [to] *)
  | EUnion of expr * expr
  | EIntersect of expr * expr
  | EExcept of expr * expr
  | ECall of { prefix : string; local : string; args : expr list }
  | ECast of expr * atomic_type
  | ECastable of expr * atomic_type
  | EInstanceOf of expr * seqtype
  | EElem of ctor  (** direct element constructor *)
  | EElemComp of { cn_static : Xdm.Qname.t option; cn_expr : expr option; cbody : expr }
      (** computed element constructor: [element n { e }] /
          [element { ne } { e }] *)
  | EAttrComp of { an_static : Xdm.Qname.t option; an_expr : expr option; abody : expr }
      (** computed attribute constructor *)
  | ETextComp of expr  (** computed text constructor: [text { e }] *)

and step =
  | SAxis of { axis : axis; test : nodetest; preds : expr list }
  | SExpr of { expr : expr; preds : expr list }
      (** a primary expression used as a step, e.g. [$i/xs:double(.)] *)

and clause =
  | CFor of (string * expr) list
  | CLet of (string * expr) list
  | CWhere of expr
  | COrder of (expr * [ `Asc | `Desc ]) list

and ctor = {
  cname : Xdm.Qname.t;  (** resolved by [Static] *)
  cattrs : (Xdm.Qname.t * attr_piece list) list;
  ccontent : content_piece list;
  cns : (string * string) list;
      (** xmlns declarations written on the constructor itself
          (prefix → uri; prefix [""] = default) *)
}

and attr_piece = APText of string | APExpr of expr
and content_piece = CPText of string | CPExpr of expr

(** Sequence types for [instance of] (a pragmatic subset). *)
and item_type =
  | ITAtomic of atomic_type
  | ITAnyNode
  | ITElement
  | ITAttribute
  | ITText
  | ITDocument
  | ITItem

and occurrence = OccOne | OccOpt | OccStar | OccPlus

and seqtype = STEmpty | STItems of item_type * occurrence

(** A full query: prolog + body. *)
type prolog = {
  namespaces : (string * string) list;  (** declare namespace p = "uri" *)
  default_elem_ns : string option;
      (** declare default element namespace "uri" *)
  construction_preserve : bool;
      (** [declare construction preserve]: copied nodes keep their type
          annotations — the knob the paper's Section 4 says could
          alleviate the Section 3.6 rewrite obstacles (default: strip) *)
}

type query = { prolog : prolog; body : expr }

let empty_prolog =
  { namespaces = []; default_elem_ns = None; construction_preserve = false }

(* ------------------------------------------------------------------ *)
(* Source locations                                                    *)
(* ------------------------------------------------------------------ *)

(** Side table mapping expression nodes to source positions, keyed by
    physical identity (the parser allocates each node exactly once, so
    [==] identifies "this occurrence in the source"). Keeping locations
    out of the AST keeps every consumer (evaluator, extractor, planner)
    untouched; [Static.resolve] copies entries onto the nodes it
    rebuilds.

    [EContext] is the one constant constructor of [expr] — all its
    occurrences are physically equal — so it is never recorded; consumers
    fall back to the location of the nearest enclosing expression. *)
module Locs = struct
  type t = { mutable entries : (expr * Xdm.Srcloc.pos) list }

  let create () = { entries = [] }

  let locatable = function EContext -> false | _ -> true

  (** First record wins: the innermost production that saw the node. *)
  let record t (e : expr) (pos : Xdm.Srcloc.pos) =
    if locatable e && not (List.exists (fun (e', _) -> e' == e) t.entries)
    then t.entries <- (e, pos) :: t.entries

  let find t (e : expr) : Xdm.Srcloc.pos option =
    if locatable e then
      Option.map snd (List.find_opt (fun (e', _) -> e' == e) t.entries)
    else None

  (** Give [dst] (a rebuilt node) the position recorded for [src]. *)
  let copy t ~(src : expr) ~(dst : expr) =
    match find t src with Some p -> record t dst p | None -> ()
end

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for EXPLAIN and advisor output)                    *)
(* ------------------------------------------------------------------ *)

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Self -> "self"
  | DescOrSelf -> "descendant-or-self"
  | Attr -> "attribute"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | AncestorOrSelf -> "ancestor-or-self"
  | FollowingSibling -> "following-sibling"
  | PrecedingSibling -> "preceding-sibling"

(** Reverse axes (and the sibling axes, which likewise escape the
    downward XMLPATTERN fragment): the steps a structural index can
    answer but a path-value index cannot. *)
let is_reverse_or_sibling = function
  | Parent | Ancestor | AncestorOrSelf | FollowingSibling | PrecedingSibling
    ->
      true
  | Child | Descendant | Self | DescOrSelf | Attr -> false

let nametest_to_string = function
  | TName q -> Xdm.Qname.to_string q
  | TStar -> "*"
  | TNsStar { prefix; _ } -> prefix ^ ":*"
  | TLocalStar l -> "*:" ^ l

let kindtest_to_string = function
  | KAnyNode -> "node()"
  | KText -> "text()"
  | KComment -> "comment()"
  | KPi None -> "processing-instruction()"
  | KPi (Some t) -> "processing-instruction(" ^ t ^ ")"
  | KDocument -> "document-node()"

let nodetest_to_string = function
  | Name n -> nametest_to_string n
  | Kind k -> kindtest_to_string k

let gcmp_to_string = function
  | GEq -> "="
  | GNe -> "!="
  | GLt -> "<"
  | GLe -> "<="
  | GGt -> ">"
  | GGe -> ">="

let vcmp_to_string = function
  | VEq -> "eq"
  | VNe -> "ne"
  | VLt -> "lt"
  | VLe -> "le"
  | VGt -> "gt"
  | VGe -> "ge"

let rec expr_to_string e =
  match e with
  | ELit a -> (
      match a with
      | Xdm.Atomic.Str s -> "\"" ^ s ^ "\""
      | a -> Xdm.Atomic.string_value a)
  | EVar v -> "$" ^ v
  | EContext -> "."
  | ESeq es -> "(" ^ String.concat ", " (List.map expr_to_string es) ^ ")"
  | EPath (start, steps) ->
      let s0 =
        match start with Absolute -> "/" | AbsDesc -> "//" | Relative -> ""
      in
      s0 ^ String.concat "/" (List.map step_to_string steps)
  | EFlwor (clauses, ret) ->
      String.concat " " (List.map clause_to_string clauses)
      ^ " return " ^ expr_to_string ret
  | EQuant (q, binds, sat) ->
      (match q with QSome -> "some " | QEvery -> "every ")
      ^ String.concat ", "
          (List.map (fun (v, e) -> "$" ^ v ^ " in " ^ expr_to_string e) binds)
      ^ " satisfies " ^ expr_to_string sat
  | EIf (c, t, e) ->
      "if (" ^ expr_to_string c ^ ") then " ^ expr_to_string t ^ " else "
      ^ expr_to_string e
  | EAnd (a, b) -> expr_to_string a ^ " and " ^ expr_to_string b
  | EOr (a, b) -> expr_to_string a ^ " or " ^ expr_to_string b
  | EGCmp (op, a, b) ->
      expr_to_string a ^ " " ^ gcmp_to_string op ^ " " ^ expr_to_string b
  | EVCmp (op, a, b) ->
      expr_to_string a ^ " " ^ vcmp_to_string op ^ " " ^ expr_to_string b
  | ENCmp (op, a, b) ->
      let s = match op with NIs -> "is" | NPrecedes -> "<<" | NFollows -> ">>" in
      expr_to_string a ^ " " ^ s ^ " " ^ expr_to_string b
  | EArith (op, a, b) ->
      let s =
        match op with
        | Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "div"
        | IDiv -> "idiv"
        | Mod -> "mod"
      in
      expr_to_string a ^ " " ^ s ^ " " ^ expr_to_string b
  | ENeg e -> "-" ^ expr_to_string e
  | ERange (a, b) -> expr_to_string a ^ " to " ^ expr_to_string b
  | EUnion (a, b) -> expr_to_string a ^ " | " ^ expr_to_string b
  | EIntersect (a, b) -> expr_to_string a ^ " intersect " ^ expr_to_string b
  | EExcept (a, b) -> expr_to_string a ^ " except " ^ expr_to_string b
  | ECall { prefix; local; args } ->
      (if prefix = "" then local else prefix ^ ":" ^ local)
      ^ "(" ^ String.concat ", " (List.map expr_to_string args) ^ ")"
  | ECast (e, t) ->
      expr_to_string e ^ " cast as " ^ Xdm.Atomic.type_name t
  | ECastable (e, t) ->
      expr_to_string e ^ " castable as " ^ Xdm.Atomic.type_name t
  | EInstanceOf (e, st) ->
      expr_to_string e ^ " instance of "
      ^ (match st with
        | STEmpty -> "empty-sequence()"
        | STItems (it, occ) ->
            (match it with
            | ITAtomic t -> Xdm.Atomic.type_name t
            | ITAnyNode -> "node()"
            | ITElement -> "element()"
            | ITAttribute -> "attribute()"
            | ITText -> "text()"
            | ITDocument -> "document-node()"
            | ITItem -> "item()")
            ^
            match occ with
            | OccOne -> ""
            | OccOpt -> "?"
            | OccStar -> "*"
            | OccPlus -> "+")
  | EElem c ->
      "<" ^ Xdm.Qname.to_string c.cname ^ ">"
      ^ String.concat ""
          (List.map
             (function
               | CPText s -> s
               | CPExpr e -> "{" ^ expr_to_string e ^ "}")
             c.ccontent)
      ^ "</" ^ Xdm.Qname.to_string c.cname ^ ">"
  | EElemComp { cn_static; cn_expr; cbody } ->
      "element "
      ^ (match (cn_static, cn_expr) with
        | Some q, _ -> Xdm.Qname.to_string q
        | None, Some e -> "{" ^ expr_to_string e ^ "}"
        | None, None -> "?")
      ^ " {" ^ expr_to_string cbody ^ "}"
  | EAttrComp { an_static; an_expr; abody } ->
      "attribute "
      ^ (match (an_static, an_expr) with
        | Some q, _ -> Xdm.Qname.to_string q
        | None, Some e -> "{" ^ expr_to_string e ^ "}"
        | None, None -> "?")
      ^ " {" ^ expr_to_string abody ^ "}"
  | ETextComp e -> "text {" ^ expr_to_string e ^ "}"

and step_to_string = function
  | SAxis { axis; test; preds } ->
      let base =
        match (axis, test) with
        | Child, t -> nodetest_to_string t
        | Attr, Name n -> "@" ^ nametest_to_string n
        | a, t -> axis_name a ^ "::" ^ nodetest_to_string t
      in
      base ^ String.concat "" (List.map (fun p -> "[" ^ expr_to_string p ^ "]") preds)
  | SExpr { expr; preds } ->
      expr_to_string expr
      ^ String.concat "" (List.map (fun p -> "[" ^ expr_to_string p ^ "]") preds)

and clause_to_string = function
  | CFor binds ->
      "for "
      ^ String.concat ", "
          (List.map (fun (v, e) -> "$" ^ v ^ " in " ^ expr_to_string e) binds)
  | CLet binds ->
      "let "
      ^ String.concat ", "
          (List.map (fun (v, e) -> "$" ^ v ^ " := " ^ expr_to_string e) binds)
  | CWhere e -> "where " ^ expr_to_string e
  | COrder keys ->
      "order by "
      ^ String.concat ", "
          (List.map
             (fun (e, d) ->
               expr_to_string e ^ match d with `Asc -> "" | `Desc -> " descending")
             keys)
