(** Static analysis: namespace resolution and variable-scope checking.

    Turns a parsed query into one where every name test, constructor name
    and wildcard carries its expanded namespace URI. This is where the
    paper's Section 3.7 semantics live:

    - the *default element namespace* applies to unprefixed element name
      tests and unprefixed constructed element names,
    - it does **not** apply to attributes (so index [//@price] with no
      namespace declarations matches price attributes regardless of the
      element namespaces around them),
    - an undeclared prefix is a static error [XPST0081]. *)

open Ast
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type env = {
  ns : string SMap.t;  (** prefix → uri *)
  default_elem : string;
  vars : SSet.t;
  locs : Ast.Locs.t option;
      (** when present, rebuilt nodes inherit the source positions their
          originals were parsed with *)
}

let predeclared =
  SMap.of_seq
    (List.to_seq
       [
         ("xml", "http://www.w3.org/XML/1998/namespace");
         ("xs", "http://www.w3.org/2001/XMLSchema");
         ("xsi", "http://www.w3.org/2001/XMLSchema-instance");
         ("xdt", "http://www.w3.org/2005/xpath-datatypes");
         ("fn", "http://www.w3.org/2005/xpath-functions");
         ("local", "http://www.w3.org/2005/xquery-local-functions");
         ("db2-fn", "http://www.ibm.com/xmlns/prod/db2/functions");
         ("xqdb", "https://github.com/xqdb/extensions");
       ])

let env_of_prolog ?(external_vars = []) ?locs (pr : prolog) =
  let ns =
    List.fold_left
      (fun m (p, u) -> SMap.add p u m)
      predeclared pr.namespaces
  in
  {
    ns;
    default_elem = Option.value pr.default_elem_ns ~default:"";
    vars = SSet.of_list external_vars;
    locs;
  }

let resolve_prefix env prefix =
  match SMap.find_opt prefix env.ns with
  | Some uri -> uri
  | None -> Xdm.Xerror.bad_prefix "undeclared namespace prefix %S" prefix

(** Resolve a name test. [is_element] decides whether the default element
    namespace applies to an unprefixed name. *)
let resolve_nametest env ~is_element = function
  | TName q when q.Xdm.Qname.prefix = "" ->
      let uri = if is_element then env.default_elem else "" in
      TName { q with Xdm.Qname.uri }
  | TName q -> TName { q with Xdm.Qname.uri = resolve_prefix env q.Xdm.Qname.prefix }
  | TStar -> TStar
  | TNsStar { prefix; _ } -> TNsStar { prefix; uri = resolve_prefix env prefix }
  | TLocalStar l -> TLocalStar l

let resolve_nodetest env ~is_element = function
  | Name n -> Name (resolve_nametest env ~is_element n)
  | Kind k -> Kind k

let rec resolve_expr env (e : expr) : expr =
  let e' = resolve_expr_desc env e in
  (match env.locs with
  | Some t -> Ast.Locs.copy t ~src:e ~dst:e'
  | None -> ());
  e'

and resolve_expr_desc env (e : expr) : expr =
  match e with
  | ELit _ | EContext -> e
  | EVar v ->
      if SSet.mem v env.vars then e
      else Xdm.Xerror.undefined "undefined variable $%s" v
  | ESeq es -> ESeq (List.map (resolve_expr env) es)
  | EPath (start, steps) -> EPath (start, List.map (resolve_step env) steps)
  | EFlwor (clauses, ret) ->
      let env', clauses' = resolve_clauses env clauses in
      EFlwor (clauses', resolve_expr env' ret)
  | EQuant (q, binds, sat) ->
      let env', binds' =
        List.fold_left
          (fun (env, acc) (v, e) ->
            let e' = resolve_expr env e in
            ({ env with vars = SSet.add v env.vars }, (v, e') :: acc))
          (env, []) binds
      in
      EQuant (q, List.rev binds', resolve_expr env' sat)
  | EIf (c, t, f) ->
      EIf (resolve_expr env c, resolve_expr env t, resolve_expr env f)
  | EAnd (a, b) -> EAnd (resolve_expr env a, resolve_expr env b)
  | EOr (a, b) -> EOr (resolve_expr env a, resolve_expr env b)
  | EGCmp (op, a, b) -> EGCmp (op, resolve_expr env a, resolve_expr env b)
  | EVCmp (op, a, b) -> EVCmp (op, resolve_expr env a, resolve_expr env b)
  | ENCmp (op, a, b) -> ENCmp (op, resolve_expr env a, resolve_expr env b)
  | EArith (op, a, b) -> EArith (op, resolve_expr env a, resolve_expr env b)
  | ENeg a -> ENeg (resolve_expr env a)
  | ERange (a, b) -> ERange (resolve_expr env a, resolve_expr env b)
  | EUnion (a, b) -> EUnion (resolve_expr env a, resolve_expr env b)
  | EIntersect (a, b) -> EIntersect (resolve_expr env a, resolve_expr env b)
  | EExcept (a, b) -> EExcept (resolve_expr env a, resolve_expr env b)
  | ECall { prefix; local; args } ->
      ECall { prefix; local; args = List.map (resolve_expr env) args }
  | ECast (a, t) -> ECast (resolve_expr env a, t)
  | ECastable (a, t) -> ECastable (resolve_expr env a, t)
  | EInstanceOf (a, st) -> EInstanceOf (resolve_expr env a, st)
  | EElem c -> EElem (resolve_ctor env c)
  | EElemComp { cn_static; cn_expr; cbody } ->
      let cn_static =
        Option.map
          (fun (q : Xdm.Qname.t) ->
            if q.Xdm.Qname.prefix = "" then
              { q with Xdm.Qname.uri = env.default_elem }
            else { q with Xdm.Qname.uri = resolve_prefix env q.Xdm.Qname.prefix })
          cn_static
      in
      EElemComp
        {
          cn_static;
          cn_expr = Option.map (resolve_expr env) cn_expr;
          cbody = resolve_expr env cbody;
        }
  | EAttrComp { an_static; an_expr; abody } ->
      let an_static =
        Option.map
          (fun (q : Xdm.Qname.t) ->
            if q.Xdm.Qname.prefix = "" then q
            else { q with Xdm.Qname.uri = resolve_prefix env q.Xdm.Qname.prefix })
          an_static
      in
      EAttrComp
        {
          an_static;
          an_expr = Option.map (resolve_expr env) an_expr;
          abody = resolve_expr env abody;
        }
  | ETextComp e -> ETextComp (resolve_expr env e)

and resolve_step env = function
  | SAxis { axis; test; preds } ->
      let is_element = axis <> Attr in
      SAxis
        {
          axis;
          test = resolve_nodetest env ~is_element test;
          preds = List.map (resolve_expr env) preds;
        }
  | SExpr { expr; preds } ->
      SExpr { expr = resolve_expr env expr; preds = List.map (resolve_expr env) preds }

and resolve_clauses env clauses =
  let env, rev =
    List.fold_left
      (fun (env, acc) clause ->
        match clause with
        | CFor binds ->
            let env', binds' =
              List.fold_left
                (fun (env, acc) (v, e) ->
                  let e' = resolve_expr env e in
                  ({ env with vars = SSet.add v env.vars }, (v, e') :: acc))
                (env, []) binds
            in
            (env', CFor (List.rev binds') :: acc)
        | CLet binds ->
            let env', binds' =
              List.fold_left
                (fun (env, acc) (v, e) ->
                  let e' = resolve_expr env e in
                  ({ env with vars = SSet.add v env.vars }, (v, e') :: acc))
                (env, []) binds
            in
            (env', CLet (List.rev binds') :: acc)
        | CWhere e -> (env, CWhere (resolve_expr env e) :: acc)
        | COrder keys ->
            ( env,
              COrder (List.map (fun (e, d) -> (resolve_expr env e, d)) keys)
              :: acc ))
      (env, []) clauses
  in
  (env, List.rev rev)

and resolve_ctor env (c : ctor) : ctor =
  (* xmlns attributes written on the constructor extend the namespace
     environment for the constructor and its content. *)
  let env =
    List.fold_left
      (fun env (prefix, uri) ->
        if prefix = "" then { env with default_elem = uri }
        else { env with ns = SMap.add prefix uri env.ns })
      env c.cns
  in
  let resolve_name ~is_element q =
    if q.Xdm.Qname.prefix = "" then
      { q with Xdm.Qname.uri = (if is_element then env.default_elem else "") }
    else { q with Xdm.Qname.uri = resolve_prefix env q.Xdm.Qname.prefix }
  in
  {
    cname = resolve_name ~is_element:true c.cname;
    cattrs =
      List.map
        (fun (q, pieces) ->
          ( resolve_name ~is_element:false q,
            List.map
              (function
                | APText _ as t -> t
                | APExpr e -> APExpr (resolve_expr env e))
              pieces ))
        c.cattrs;
    ccontent =
      List.map
        (function
          | CPText _ as t -> t
          | CPExpr e -> CPExpr (resolve_expr env e))
        c.ccontent;
    cns = c.cns;
  }

(** Resolve a full query. [external_vars] are variables bound by the host
    (SQL/XML [PASSING] clauses). Pass [locs] (from
    {!Parser.parse_query_loc}) to keep source positions attached to the
    rebuilt nodes. *)
let resolve ?(external_vars = []) ?locs (q : query) : query =
  let env = env_of_prolog ~external_vars ?locs q.prolog in
  { q with body = resolve_expr env q.body }

(** Free variables of a query: [$x] references not bound by an enclosing
    FLWOR or quantifier clause, in first-use order. The prepared-statement
    layer treats each one as a named parameter slot. *)
let free_vars (q : query) : string list =
  let found = ref [] in
  let add v = if not (List.mem v !found) then found := v :: !found in
  let rec go (bound : SSet.t) (e : expr) : unit =
    match e with
    | ELit _ | EContext -> ()
    | EVar v -> if not (SSet.mem v bound) then add v
    | ESeq es -> List.iter (go bound) es
    | EPath (_, steps) -> List.iter (go_step bound) steps
    | EFlwor (clauses, ret) ->
        let bound =
          List.fold_left
            (fun bound clause ->
              match clause with
              | CFor binds | CLet binds ->
                  List.fold_left
                    (fun bound (v, e) ->
                      go bound e;
                      SSet.add v bound)
                    bound binds
              | CWhere e ->
                  go bound e;
                  bound
              | COrder keys ->
                  List.iter (fun (e, _) -> go bound e) keys;
                  bound)
            bound clauses
        in
        go bound ret
    | EQuant (_, binds, sat) ->
        let bound =
          List.fold_left
            (fun bound (v, e) ->
              go bound e;
              SSet.add v bound)
            bound binds
        in
        go bound sat
    | EIf (a, b, c) ->
        go bound a;
        go bound b;
        go bound c
    | EAnd (a, b)
    | EOr (a, b)
    | EGCmp (_, a, b)
    | EVCmp (_, a, b)
    | ENCmp (_, a, b)
    | EArith (_, a, b)
    | ERange (a, b)
    | EUnion (a, b)
    | EIntersect (a, b)
    | EExcept (a, b) ->
        go bound a;
        go bound b
    | ENeg a | ECast (a, _) | ECastable (a, _) | EInstanceOf (a, _) ->
        go bound a
    | ECall { args; _ } -> List.iter (go bound) args
    | EElem c -> go_ctor bound c
    | EElemComp { cn_expr; cbody; _ } ->
        Option.iter (go bound) cn_expr;
        go bound cbody
    | EAttrComp { an_expr; abody; _ } ->
        Option.iter (go bound) an_expr;
        go bound abody
    | ETextComp e -> go bound e
  and go_step bound = function
    | SAxis { preds; _ } -> List.iter (go bound) preds
    | SExpr { expr; preds } ->
        go bound expr;
        List.iter (go bound) preds
  and go_ctor bound (c : ctor) =
    List.iter
      (fun (_, pieces) ->
        List.iter
          (function APText _ -> () | APExpr e -> go bound e)
          pieces)
      c.cattrs;
    List.iter
      (function CPText _ -> () | CPExpr e -> go bound e)
      c.ccontent
  in
  go SSet.empty q.body;
  List.rev !found
