(** The XQuery dynamic evaluator.

    Semantics choices that matter to the paper:

    - every path step sorts its node results into document order and
      removes duplicate *identities*;
    - a leading [/] is [fn:root(.) treat as document-node()]: a type error
      when the context tree is rooted at a constructed element (Query 25);
    - a path step from an element node navigates its *children* — there is
      no extra document-node level (Query 24 returns empty);
    - FLWOR [let] binds whole sequences (outer-join shape, Section 3.4),
      [for] iterates and therefore discards empty sequences;
    - general comparisons are existential; value comparisons demand
      singletons. *)

open Xdm
open Ast

(* Operator labels for the profiler's EXPLAIN-ANALYZE tree. Only the
   plan-shaped expressions get a span of their own; everything else is
   still counted in [eval_steps] but does not clutter the tree. *)
let op_label : expr -> string option = function
  | EPath _ -> Some "PATH"
  | EFlwor _ -> Some "FLWOR"
  | EQuant _ -> Some "QUANT"
  | ECall { prefix; local; _ } ->
      Some (if prefix = "" then "FN " ^ local else "FN " ^ prefix ^ ":" ^ local)
  | EElem _ | EElemComp _ | EAttrComp _ | ETextComp _ -> Some "CONSTRUCT"
  | _ -> None

(* [eval] is the governed/profiled wrapper around the real dispatch
   [eval_inner]: it charges the resource meter one step (and one recursion
   level) per expression evaluated, and mirrors the step into the
   execution profile (plus an operator span for plan-shaped expressions).
   With no limits set and profiling off, the whole wrapper is one branch,
   so ordinary queries pay nothing measurable. The depth counter must
   survive expressions that catch exceptions part-way, hence the
   exception-safe [leave]. *)
let rec eval (ctx : Ctx.t) (e : expr) : Item.seq =
  Faultinject.hit "eval.step";
  let m = ctx.Ctx.meter in
  let p = ctx.Ctx.prof in
  if not (m.Limits.armed || p.Xprof.on) then eval_inner ctx e
  else begin
    if m.Limits.armed then begin
      Limits.step m;
      Limits.enter m
    end;
    Xprof.step p;
    let dispatch () =
      match if p.Xprof.on then op_label e else None with
      | None -> eval_inner ctx e
      | Some name ->
          Xprof.spanned ~rows:List.length p name (fun () -> eval_inner ctx e)
    in
    match dispatch () with
    | r ->
        if m.Limits.armed then Limits.leave m;
        r
    | exception ex ->
        if m.Limits.armed then Limits.leave m;
        raise ex
  end

and eval_inner (ctx : Ctx.t) (e : expr) : Item.seq =
  match e with
  | ELit a -> [ Item.A a ]
  | EVar v -> Ctx.lookup ctx v
  | EContext -> [ Ctx.context_item ctx ]
  | ESeq es -> List.concat_map (eval ctx) es
  | EPath (start, steps) -> eval_path ctx start steps
  | EFlwor (clauses, ret) -> eval_flwor ctx clauses ret
  | EQuant (q, binds, sat) -> eval_quant ctx q binds sat
  | EIf (c, t, f) -> if Item.ebv (eval ctx c) then eval ctx t else eval ctx f
  | EAnd (a, b) ->
      [
        Item.A
          (Atomic.Boolean (Item.ebv (eval ctx a) && Item.ebv (eval ctx b)));
      ]
  | EOr (a, b) ->
      [
        Item.A
          (Atomic.Boolean (Item.ebv (eval ctx a) || Item.ebv (eval ctx b)));
      ]
  | EGCmp (op, a, b) ->
      let xs = Item.atomize (eval ctx a) and ys = Item.atomize (eval ctx b) in
      [ Item.A (Atomic.Boolean (Compare.general (Compare.op_of_gcmp op) xs ys)) ]
  | EVCmp (op, a, b) -> (
      let xs = Item.atomize (eval ctx a) and ys = Item.atomize (eval ctx b) in
      match Compare.value (Compare.op_of_vcmp op) xs ys with
      | None -> []
      | Some r -> [ Item.A (Atomic.Boolean r) ])
  | ENCmp (op, a, b) -> (
      let node side s =
        match s with
        | [] -> None
        | [ Item.N n ] -> Some n
        | _ ->
            Xerror.type_error "node comparison requires a single node (%s)"
              side
      in
      match (node "left" (eval ctx a), node "right" (eval ctx b)) with
      | None, _ | _, None -> []
      | Some x, Some y ->
          let r =
            match op with
            | NIs -> Node.identical x y
            | NPrecedes -> Node.doc_compare x y < 0
            | NFollows -> Node.doc_compare x y > 0
          in
          [ Item.A (Atomic.Boolean r) ])
  | EArith (op, a, b) -> (
      let single s =
        match Item.atomize (eval ctx s) with
        | [] -> None
        | [ v ] -> Some v
        | _ -> Xerror.type_error "arithmetic on a non-singleton sequence"
      in
      match (single a, single b) with
      | None, _ | _, None -> []
      | Some x, Some y -> [ Item.A (Compare.arith op x y) ])
  | ENeg a -> (
      match Item.atomize (eval ctx a) with
      | [] -> []
      | [ v ] -> [ Item.A (Compare.negate v) ]
      | _ -> Xerror.type_error "unary minus on a non-singleton sequence")
  | ERange (a, b) -> (
      let int_of s =
        match Item.atomize (eval ctx s) with
        | [] -> None
        | [ v ] -> (
            match Atomic.cast_opt v Atomic.TInteger with
            | Some (Atomic.Integer i) -> Some i
            | _ -> Xerror.type_error "range bounds must be integers")
        | _ -> Xerror.type_error "range bounds must be singletons"
      in
      match (int_of a, int_of b) with
      | Some lo, Some hi when lo <= hi ->
          let rec build i acc =
            if i < lo then acc
            else build (Int64.sub i 1L) (Item.A (Atomic.Integer i) :: acc)
          in
          build hi []
      | _ -> [])
  | EUnion (a, b) ->
      let xs = node_seq "union" (eval ctx a)
      and ys = node_seq "union" (eval ctx b) in
      List.map Item.of_node (Item.doc_order_dedup (xs @ ys))
  | EIntersect (a, b) ->
      let xs = node_seq "intersect" (eval ctx a)
      and ys = node_seq "intersect" (eval ctx b) in
      let ids = List.map (fun (n : Node.t) -> n.Node.id) ys in
      List.map Item.of_node
        (Item.doc_order_dedup
           (List.filter (fun (n : Node.t) -> List.mem n.Node.id ids) xs))
  | EExcept (a, b) ->
      let xs = node_seq "except" (eval ctx a)
      and ys = node_seq "except" (eval ctx b) in
      let ids = List.map (fun (n : Node.t) -> n.Node.id) ys in
      List.map Item.of_node
        (Item.doc_order_dedup
           (List.filter (fun (n : Node.t) -> not (List.mem n.Node.id ids)) xs))
  | ECall { prefix; local; args } ->
      let args = List.map (eval ctx) args in
      Functions.call ctx ~prefix ~local args
  | ECast (a, t) -> (
      match Item.atomize (eval ctx a) with
      | [] -> []
      | [ v ] -> [ Item.A (Atomic.cast v t) ]
      | _ -> Xerror.type_error "cast of a sequence of more than one item")
  | ECastable (a, t) -> (
      match Item.atomize (eval ctx a) with
      | [] -> [ Item.A (Atomic.Boolean true) ]
      | [ v ] -> [ Item.A (Atomic.Boolean (Option.is_some (Atomic.cast_opt v t))) ]
      | _ -> [ Item.A (Atomic.Boolean false) ])
  | EInstanceOf (a, st) ->
      let seq = eval ctx a in
      let matches_item (it : Item.t) (ty : item_type) =
        match (it, ty) with
        | _, ITItem -> true
        | Item.A a, ITAtomic t -> Atomic.type_of a = t
        | Item.N _, ITAtomic _ | Item.A _, _ -> false
        | Item.N n, ITAnyNode -> ignore n; true
        | Item.N n, ITElement -> n.Node.kind = Node.Element
        | Item.N n, ITAttribute -> n.Node.kind = Node.Attribute
        | Item.N n, ITText -> n.Node.kind = Node.Text
        | Item.N n, ITDocument -> n.Node.kind = Node.Document
      in
      let ok =
        match st with
        | STEmpty -> seq = []
        | STItems (ty, occ) -> (
            List.for_all (fun it -> matches_item it ty) seq
            &&
            match occ with
            | OccOne -> List.length seq = 1
            | OccOpt -> List.length seq <= 1
            | OccStar -> true
            | OccPlus -> seq <> [])
      in
      [ Item.A (Atomic.Boolean ok) ]
  | EElem c -> [ Item.N (eval_ctor ctx c) ]
  | EElemComp { cn_static; cn_expr; cbody } ->
      let name = computed_name ctx "element" cn_static cn_expr in
      let content = [ Construct.PSeq (eval ctx cbody) ] in
      let n =
        Construct.element ~preserve:ctx.Ctx.construction_preserve name
          ~attrs:[] ~content
      in
      charge_construction ctx n;
      [ Item.N n ]
  | EAttrComp { an_static; an_expr; abody } ->
      let name = computed_name ctx "attribute" an_static an_expr in
      let value =
        String.concat " "
          (List.map Atomic.string_value (Item.atomize (eval ctx abody)))
      in
      let n = Node.attribute name value in
      charge_construction ctx n;
      [ Item.N n ]
  | ETextComp e ->
      let s =
        String.concat " "
          (List.map Atomic.string_value (Item.atomize (eval ctx e)))
      in
      let n = Node.text s in
      charge_construction ctx n;
      [ Item.N n ]

and computed_name ctx what static_name name_expr : Qname.t =
  match (static_name, name_expr) with
  | Some q, _ -> q
  | None, Some e -> (
      match Item.atomize (eval ctx e) with
      | [ a ] -> Qname.make (Atomic.string_value a)
      | _ ->
          Xerror.type_error "computed %s name must be a single atomic value"
            what)
  | None, None -> assert false

and node_seq what (s : Item.seq) : Node.t list =
  match Item.nodes_of_seq s with
  | Some nodes -> nodes
  | None -> Xerror.type_error "operand of %s is not a sequence of nodes" what

(* ---------------------------- paths ------------------------------ *)

and eval_path ctx start steps : Item.seq =
  let initial : Item.seq =
    match start with
    | Absolute | AbsDesc ->
        (* fn:root(.) treat as document-node() *)
        let n = Ctx.context_node ctx in
        let r = Node.root n in
        if r.Node.kind <> Node.Document then
          Xerror.type_error
            "leading '/' requires a tree rooted at a document node (root is \
             a %s node)"
            (Node.kind_to_string r.Node.kind)
        else [ Item.N r ]
    | Relative -> (
        (* the first step provides the start; give it the outer focus *)
        match ctx.Ctx.item with
        | Some it -> [ it ]
        | None -> (
            (* Allow paths that start with a primary not using the focus
               (e.g. db2-fn:xmlcolumn(...)/order) in a focus-free context. *)
            match steps with
            | SExpr _ :: _ -> [ Item.A (Atomic.Boolean true) ]
              (* dummy focus; SExpr ignores it unless it uses '.' *)
            | _ -> Xerror.no_context "path step with no context item"))
  in
  eval_steps ctx initial steps

(** Evaluate the remaining steps of a path from an already-computed
    current sequence. Exposed (via [eval_seq]) so streaming execution can
    run the tail of a path per document. *)
and eval_steps ctx (current : Item.seq) (steps : step list) : Item.seq =
  match steps with
  | [] -> current
  | step :: rest ->
      let out = eval_step ctx current step in
      let out =
        if rest = [] then
          (* last step: nodes get sorted/deduped; atomics pass through *)
          match Item.nodes_of_seq out with
          | Some nodes -> List.map Item.of_node (Item.doc_order_dedup nodes)
          | None ->
              if List.exists Item.is_node out then
                Xerror.mixed_path
                  "path step mixes nodes and atomic values"
              else out
        else
          match Item.nodes_of_seq out with
          | Some nodes -> List.map Item.of_node (Item.doc_order_dedup nodes)
          | None ->
              Xerror.mixed_path
                "intermediate path step produced non-node items"
      in
      eval_steps ctx out rest

and eval_step ctx (current : Item.seq) (step : step) : Item.seq =
  let size = List.length current in
  match step with
  | SAxis { axis; test; preds } ->
      List.concat
        (List.mapi
           (fun i it ->
             let n =
               match it with
               | Item.N n -> n
               | Item.A _ ->
                   Xerror.type_error
                     "axis step applied to an atomic value"
             in
             ignore i;
             ignore size;
             let candidates = axis_nodes axis n in
             let matched = List.filter (node_test_matches axis test) candidates in
             apply_predicates ctx (List.map Item.of_node matched) preds)
           current)
  | SExpr { expr; preds } ->
      List.concat
        (List.mapi
           (fun i it ->
             let inner = Ctx.with_focus ctx it (i + 1) size in
             let out = eval inner expr in
             apply_predicates ctx out preds)
           current)

and axis_nodes axis (n : Node.t) : Node.t list =
  match axis with
  | Child -> n.Node.children
  | Attr -> n.Node.attrs
  | Self -> [ n ]
  | Parent -> ( match n.Node.parent with Some p -> [ p ] | None -> [])
  | Descendant -> Node.descendants n
  | DescOrSelf -> Node.descendants_or_self n
  (* reverse axes present candidates nearest-first (reverse document
     order), the spec's ordering for positional predicates; the final
     per-step sort restores document order either way *)
  | Ancestor -> List.rev (Node.ancestors n)
  | AncestorOrSelf -> n :: List.rev (Node.ancestors n)
  | FollowingSibling -> snd (sibling_split n)
  | PrecedingSibling -> List.rev (fst (sibling_split n))

(** The context node's siblings, split into (before, after) in document
    order. Attributes are not children of their element, so they have no
    siblings — and never appear as siblings of child nodes. *)
and sibling_split (n : Node.t) : Node.t list * Node.t list =
  if n.Node.kind = Node.Attribute then ([], [])
  else
    match n.Node.parent with
    | None -> ([], [])
    | Some p ->
        let rec split before = function
          | [] -> (List.rev before, [])
          | c :: rest ->
              if c == n then (List.rev before, rest)
              else split (c :: before) rest
        in
        split [] p.Node.children

and node_test_matches axis test (n : Node.t) : bool =
  match test with
  | Kind KAnyNode -> true
  | Kind KText -> n.Node.kind = Node.Text
  | Kind KComment -> n.Node.kind = Node.Comment
  | Kind KDocument -> n.Node.kind = Node.Document
  | Kind (KPi None) -> n.Node.kind = Node.Pi
  | Kind (KPi (Some t)) ->
      n.Node.kind = Node.Pi
      && (match n.Node.name with Some q -> q.Qname.local = t | None -> false)
  | Name nt -> (
      (* name tests select the principal node kind of the axis *)
      let principal_ok =
        match axis with
        | Attr -> n.Node.kind = Node.Attribute
        | _ -> n.Node.kind = Node.Element
      in
      principal_ok
      &&
      match (nt, n.Node.name) with
      | TStar, _ -> true
      | TName q, Some nq -> Qname.equal q nq
      | TNsStar { uri; _ }, Some nq -> String.equal nq.Qname.uri uri
      | TLocalStar l, Some nq -> String.equal nq.Qname.local l
      | _, None -> false)

and apply_predicates ctx (items : Item.seq) (preds : expr list) : Item.seq =
  List.fold_left
    (fun items pred ->
      let size = List.length items in
      List.filteri
        (fun i it ->
          let inner = Ctx.with_focus ctx it (i + 1) size in
          let r = eval inner pred in
          match r with
          | [ Item.A (Atomic.Integer k) ] -> Int64.to_int k = i + 1
          | [ Item.A (Atomic.Double f) ] -> f = float_of_int (i + 1)
          | [ Item.A (Atomic.Decimal f) ] -> f = float_of_int (i + 1)
          | r -> Item.ebv r)
        items)
    items preds

(* ---------------------------- FLWOR ------------------------------ *)

and eval_flwor ctx clauses ret : Item.seq =
  (* a tuple is a variable environment *)
  let tuples = ref [ ctx ] in
  List.iter
    (fun clause ->
      match clause with
      | CFor binds ->
          List.iter
            (fun (v, e) ->
              tuples :=
                List.concat_map
                  (fun tctx ->
                    List.map
                      (fun item -> Ctx.bind tctx v [ item ])
                      (eval tctx e))
                  !tuples)
            binds
      | CLet binds ->
          List.iter
            (fun (v, e) ->
              tuples := List.map (fun tctx -> Ctx.bind tctx v (eval tctx e)) !tuples)
            binds
      | CWhere e ->
          tuples := List.filter (fun tctx -> Item.ebv (eval tctx e)) !tuples
      | COrder keys ->
          let keyed =
            List.map
              (fun tctx ->
                let ks =
                  List.map
                    (fun (e, dir) ->
                      let k =
                        match Item.atomize (eval tctx e) with
                        | [] -> None
                        | [ v ] -> Some v
                        | _ ->
                            Xerror.type_error
                              "order by key is not a singleton"
                      in
                      (k, dir))
                    keys
                in
                (ks, tctx))
              !tuples
          in
          let cmp (ka, _) (kb, _) =
            let rec go = function
              | [] -> 0
              | ((a, dir), (b, _)) :: rest -> (
                  let c = Compare.order_key_compare a b in
                  let c = match dir with `Asc -> c | `Desc -> -c in
                  match c with 0 -> go rest | c -> c)
            in
            go (List.combine ka kb)
          in
          tuples := List.map snd (List.stable_sort cmp keyed))
    clauses;
  List.concat_map (fun tctx -> eval tctx ret) !tuples

and eval_quant ctx q binds sat : Item.seq =
  let rec go ctx = function
    | [] -> Item.ebv (eval ctx sat)
    | (v, e) :: rest ->
        let items = eval ctx e in
        let test item = go (Ctx.bind ctx v [ item ]) rest in
        if q = QSome then List.exists test items else List.for_all test items
  in
  [ Item.A (Atomic.Boolean (go ctx binds)) ]

(* ------------------------- constructors -------------------------- *)

and eval_ctor ctx (c : ctor) : Node.t =
  let attrs =
    List.map
      (fun (q, pieces) ->
        let buf = Buffer.create 16 in
        List.iter
          (function
            | APText s -> Buffer.add_string buf s
            | APExpr e ->
                let atoms = Item.atomize (eval ctx e) in
                Buffer.add_string buf
                  (String.concat " " (List.map Atomic.string_value atoms)))
          pieces;
        (q, Buffer.contents buf))
      c.cattrs
  in
  let content =
    List.map
      (function
        | CPText s -> Construct.PText s
        | CPExpr e -> Construct.PSeq (eval ctx e))
      c.ccontent
  in
  let n =
    Construct.element ~preserve:ctx.Ctx.construction_preserve c.cname ~attrs
      ~content
  in
  charge_construction ctx n;
  n

(** Charge a freshly constructed tree against the governor's node budget
    and the profile's [nodes_materialized]. One branch when both off. *)
and charge_construction ctx (n : Node.t) =
  let m = ctx.Ctx.meter and p = ctx.Ctx.prof in
  if m.Limits.armed || p.Xprof.on then begin
    let count =
      match n.Node.kind with
      | Node.Element | Node.Document -> List.length (Node.descendants_or_self n)
      | _ -> 1
    in
    if m.Limits.armed then Limits.add_nodes m count;
    Xprof.add_nodes p count
  end

(* ------------------------- entry points -------------------------- *)

(** Evaluate a parsed query: resolve statics, then evaluate with the given
    collection resolver, external variable bindings and resource limits. *)
let run ?(resolver : (string -> Item.seq) option)
    ?(vars : (string * Item.seq) list = []) ?(limits = Limits.unlimited)
    ?prof (q : query) : Item.seq =
  let q = Static.resolve ~external_vars:(List.map fst vars) q in
  let ctx =
    Ctx.init ?resolver
      ~construction_preserve:q.prolog.construction_preserve
      ~meter:(Limits.meter ~limits ()) ?prof ()
  in
  let ctx = Ctx.bind_all ctx vars in
  eval ctx q.body

(** Parse and evaluate a query string. *)
let run_string ?resolver ?vars ?limits ?prof (src : string) : Item.seq =
  run ?resolver ?vars ?limits ?prof (Parser.parse_query src)

(* ------------------------- streaming ------------------------------ *)

(* Streaming is sound only where producing results incrementally cannot
   change their order or multiplicity:

   - a relative path whose first step is a primary expression (the
     [db2-fn:xmlcolumn(...)/...] shape): the first step's output is
     sorted/deduped strictly, and since document order across trees
     follows root creation order, evaluating the remaining steps one
     document at a time emits exactly the strict result (each tree's
     results are contiguous and internally sorted);
   - a FLWOR whose clauses contain no [order by]: tuple production is
     depth-first per binding item, which matches the strict clause-wise
     expansion order.

   Everything else falls back to strict evaluation, delayed until the
   first pull so an unconsumed cursor costs nothing. *)

let has_order (clauses : clause list) =
  List.exists (function COrder _ -> true | _ -> false) clauses

(** Evaluate to a lazily-produced sequence. Resource-meter and profile
    charges happen as the consumer pulls, so closing a cursor early stops
    the spend (the governor test relies on this). *)
let rec eval_seq (ctx : Ctx.t) (e : expr) : Item.t Seq.t =
  match e with
  | EPath (Relative, (SExpr _ as first) :: (_ :: _ as rest))
    when ctx.Ctx.item = None ->
      fun () ->
        let docs = eval ctx (EPath (Relative, [ first ])) in
        Seq.concat_map
          (fun doc -> List.to_seq (eval_steps ctx [ doc ] rest))
          (List.to_seq docs)
          ()
  | EFlwor ((CFor ((v, src) :: more) :: restc as clauses), ret)
    when not (has_order clauses) ->
      let restc = if more = [] then restc else CFor more :: restc in
      fun () ->
        let items = eval ctx src in
        Seq.concat_map
          (fun item ->
            let inner = Ctx.bind ctx v [ item ] in
            match restc with
            | [] -> eval_seq inner ret
            | _ -> eval_seq inner (EFlwor (restc, ret)))
          (List.to_seq items)
          ()
  | _ -> fun () -> List.to_seq (eval ctx e) ()

(* ------------------------------------------------------------------ *)
(* Parallel evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Chunked parallel evaluation over the same two decompositions as
   [eval_seq] — and sound for the same reasons: per-document step
   evaluation and per-binding tuple expansion are independent, and the
   order-preserving chunk merge re-assembles exactly the strict result.
   The chunk source (first-step output / the [for] source) is evaluated
   in the parent domain, so any tree sorting or renumbering it triggers
   happens before chunks run. Each chunk gets a forked meter view
   (shared atomic step/node budget — XQDB0001 still fires process-wide)
   and a private profile, absorbed in chunk order after the join so a
   profiled parallel run reports deterministic totals. Everything else
   falls back to strict evaluation. *)

let eval_par ~parallelism ?chunk_size (ctx : Ctx.t) (e : expr) : Item.seq =
  let chunked (items : Item.seq) (per_item : Ctx.t -> Item.t -> Item.seq) :
      Item.seq =
    match items with
    | [] | [ _ ] -> List.concat_map (per_item ctx) items
    | _ ->
        let profiled = ctx.Ctx.prof.Xprof.on in
        let slots =
          Xpar.map_chunks ~parallelism ?chunk_size
            (fun _ chunk ->
              let prof =
                if profiled then begin
                  let p = Xprof.create () in
                  Xprof.enable p true;
                  p
                end
                else Xprof.disabled
              in
              let cctx =
                { ctx with Ctx.meter = Limits.fork ctx.Ctx.meter; prof }
              in
              let out =
                List.concat_map (per_item cctx) (Array.to_list chunk)
              in
              (prof, out))
            (Array.of_list items)
        in
        Xprof.par ctx.Ctx.prof ~chunks:(Array.length slots);
        let err = ref None in
        let outs =
          Array.fold_left
            (fun acc slot ->
              match slot with
              | Ok (prof, out) ->
                  if profiled then Xprof.absorb ~into:ctx.Ctx.prof prof;
                  out :: acc
              | Error e ->
                  if Option.is_none !err then err := Some e;
                  acc)
            [] slots
        in
        (match !err with Some e -> raise e | None -> ());
        List.concat (List.rev outs)
  in
  if parallelism <= 1 then eval ctx e
  else
    match e with
    | EPath (Relative, (SExpr _ as first) :: (_ :: _ as rest))
      when ctx.Ctx.item = None ->
        let docs = eval ctx (EPath (Relative, [ first ])) in
        chunked docs (fun cctx doc -> eval_steps cctx [ doc ] rest)
    | EFlwor ((CFor ((v, src) :: more) :: restc as clauses), ret)
      when not (has_order clauses) ->
        let restc = if more = [] then restc else CFor more :: restc in
        let items = eval ctx src in
        chunked items (fun cctx item ->
            let inner = Ctx.bind cctx v [ item ] in
            match restc with
            | [] -> eval inner ret
            | _ -> eval inner (EFlwor (restc, ret)))
    | _ -> eval ctx e
