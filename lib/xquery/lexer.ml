(** Pull lexer for the XQuery subset.

    XQuery is not lexable context-free (keywords are not reserved, [<] may
    open a comparison or a direct constructor, [div] may be an operator or
    a name). The lexer therefore produces *raw* tokens and the parser
    interprets them by position; for direct element constructors the parser
    rewinds to the current token's start offset and consumes characters
    directly ([rewind_to_token_start] / char-level helpers). *)

type token =
  | TInteger of int64
  | TDecimal of float
  | TDouble of float
  | TString of string
  | TQName of string option * string  (** (prefix, local); keywords too *)
  | TNsStar of string  (** [prefix:*] *)
  | TStarLocal of string  (** [*:local] *)
  | TStar
  | TDollar
  | TLpar
  | TRpar
  | TLbrack
  | TRbrack
  | TLbrace
  | TRbrace
  | TSlash
  | TSlashSlash
  | TDot
  | TDotDot
  | TAt
  | TComma
  | TSemi
  | TAxisSep  (** [::] *)
  | TAssign  (** [:=] *)
  | TEq
  | TNe
  | TLt
  | TLe
  | TGt
  | TGe
  | TPrecedes  (** [<<] *)
  | TFollows  (** [>>] *)
  | TPlus
  | TMinus
  | TBar
  | TQuestion
  | TEof

type t = {
  src : string;
  mutable pos : int;  (** read position (after current token) *)
  mutable tok : token;  (** current token *)
  mutable tok_start : int;  (** source offset where [tok] begins *)
}

(** Position of the current token as a line/column pair. *)
let token_pos (l : t) : Xdm.Srcloc.pos = Xdm.Srcloc.of_offset l.src l.tok_start

let syntax_error (l : t) fmt =
  Format.kasprintf
    (fun msg ->
      let pos = token_pos l in
      Xdm.Xerror.syntax_error "%s at %s\n%s" msg (Xdm.Srcloc.to_string pos)
        (Xdm.Srcloc.caret_snippet l.src pos))
    fmt

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let peek_char l = if l.pos < String.length l.src then Some l.src.[l.pos] else None

let peek_char_at l k =
  if l.pos + k < String.length l.src then Some l.src.[l.pos + k] else None

(** Skip whitespace and (nested) XQuery comments [(: ... :)]. *)
let rec skip_trivia l =
  (match peek_char l with
  | Some c when is_space c ->
      l.pos <- l.pos + 1;
      skip_trivia l
  | Some '(' when peek_char_at l 1 = Some ':' ->
      l.pos <- l.pos + 2;
      let depth = ref 1 in
      while !depth > 0 do
        match peek_char l with
        | None ->
            Xdm.Xerror.syntax_error "unterminated comment at %s"
              (Xdm.Srcloc.to_string (Xdm.Srcloc.of_offset l.src l.pos))
        | Some '(' when peek_char_at l 1 = Some ':' ->
            incr depth;
            l.pos <- l.pos + 2
        | Some ':' when peek_char_at l 1 = Some ')' ->
            decr depth;
            l.pos <- l.pos + 2
        | Some _ -> l.pos <- l.pos + 1
      done;
      skip_trivia l
  | _ -> ())

let lex_ncname l =
  let start = l.pos in
  while
    match peek_char l with Some c -> is_name_char c | None -> false
  do
    l.pos <- l.pos + 1
  done;
  String.sub l.src start (l.pos - start)

let lex_string l quote =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char l with
    | None ->
        Xdm.Xerror.syntax_error "unterminated string literal at %s"
          (Xdm.Srcloc.to_string (Xdm.Srcloc.of_offset l.src l.pos))
    | Some c when c = quote ->
        l.pos <- l.pos + 1;
        if peek_char l = Some quote then begin
          (* doubled quote = escaped quote *)
          Buffer.add_char buf quote;
          l.pos <- l.pos + 1;
          go ()
        end
    | Some c ->
        Buffer.add_char buf c;
        l.pos <- l.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_number l =
  let start = l.pos in
  while match peek_char l with Some c -> is_digit c | None -> false do
    l.pos <- l.pos + 1
  done;
  let has_dot =
    match peek_char l with
    | Some '.' when (match peek_char_at l 1 with Some c -> is_digit c | None -> false) ->
        l.pos <- l.pos + 1;
        while match peek_char l with Some c -> is_digit c | None -> false do
          l.pos <- l.pos + 1
        done;
        true
    | _ -> false
  in
  let has_exp =
    match peek_char l with
    | Some ('e' | 'E') ->
        let save = l.pos in
        l.pos <- l.pos + 1;
        (match peek_char l with
        | Some ('+' | '-') -> l.pos <- l.pos + 1
        | _ -> ());
        if match peek_char l with Some c -> is_digit c | None -> false then begin
          while match peek_char l with Some c -> is_digit c | None -> false do
            l.pos <- l.pos + 1
          done;
          true
        end
        else begin
          l.pos <- save;
          false
        end
    | _ -> false
  in
  let text = String.sub l.src start (l.pos - start) in
  if has_exp then TDouble (float_of_string text)
  else if has_dot then TDecimal (float_of_string text)
  else TInteger (Int64.of_string text)

(** Lex the next token into [l.tok]. *)
let next l =
  skip_trivia l;
  l.tok_start <- l.pos;
  let adv n = l.pos <- l.pos + n in
  let tok =
    match peek_char l with
    | None -> TEof
    | Some c -> (
        match c with
        | '$' -> adv 1; TDollar
        | '(' -> adv 1; TLpar
        | ')' -> adv 1; TRpar
        | '[' -> adv 1; TLbrack
        | ']' -> adv 1; TRbrack
        | '{' -> adv 1; TLbrace
        | '}' -> adv 1; TRbrace
        | ',' -> adv 1; TComma
        | ';' -> adv 1; TSemi
        | '@' -> adv 1; TAt
        | '+' -> adv 1; TPlus
        | '-' -> adv 1; TMinus
        | '|' -> adv 1; TBar
        | '?' -> adv 1; TQuestion
        | '=' -> adv 1; TEq
        | '!' ->
            if peek_char_at l 1 = Some '=' then begin adv 2; TNe end
            else syntax_error l "unexpected '!'"
        | '<' ->
            if peek_char_at l 1 = Some '=' then begin adv 2; TLe end
            else if peek_char_at l 1 = Some '<' then begin adv 2; TPrecedes end
            else begin adv 1; TLt end
        | '>' ->
            if peek_char_at l 1 = Some '=' then begin adv 2; TGe end
            else if peek_char_at l 1 = Some '>' then begin adv 2; TFollows end
            else begin adv 1; TGt end
        | '/' ->
            if peek_char_at l 1 = Some '/' then begin adv 2; TSlashSlash end
            else begin adv 1; TSlash end
        | '.' ->
            if peek_char_at l 1 = Some '.' then begin adv 2; TDotDot end
            else if (match peek_char_at l 1 with Some c -> is_digit c | None -> false)
            then lex_number l
            else begin adv 1; TDot end
        | ':' ->
            if peek_char_at l 1 = Some ':' then begin adv 2; TAxisSep end
            else if peek_char_at l 1 = Some '=' then begin adv 2; TAssign end
            else syntax_error l "unexpected ':'"
        | '*' ->
            (* [*] or [*:local] *)
            if peek_char_at l 1 = Some ':'
               && (match peek_char_at l 2 with
                  | Some c -> is_name_start c
                  | None -> false)
            then begin
              adv 2;
              TStarLocal (lex_ncname l)
            end
            else begin adv 1; TStar end
        | '"' | '\'' ->
            adv 1;
            TString (lex_string l c)
        | c when is_digit c -> lex_number l
        | c when is_name_start c -> (
            let first = lex_ncname l in
            (* A ':' directly followed by a name char or '*' extends the
               QName; ':=' and '::' must not be consumed. *)
            match (peek_char l, peek_char_at l 1) with
            | Some ':', Some '*' ->
                adv 2;
                TNsStar first
            | Some ':', Some c2 when is_name_start c2 ->
                adv 1;
                let second = lex_ncname l in
                TQName (Some first, second)
            | _ -> TQName (None, first))
        | c -> syntax_error l "unexpected character %C" c)
  in
  l.tok <- tok

let init src =
  let l = { src; pos = 0; tok = TEof; tok_start = 0 } in
  next l;
  l

(** Rewind the read position to the start of the current token; used by
    the parser to switch to character-level parsing (direct constructors). *)
let rewind_to_token_start l = l.pos <- l.tok_start

(** One-token lookahead: the token after the current one, without
    consuming anything. *)
let peek_next l =
  let save_pos = l.pos and save_tok = l.tok and save_start = l.tok_start in
  next l;
  let t = l.tok in
  l.pos <- save_pos;
  l.tok <- save_tok;
  l.tok_start <- save_start;
  t

(** Re-prime the token stream after character-level parsing. *)
let resume = next

let token_to_string = function
  | TInteger i -> Int64.to_string i
  | TDecimal f | TDouble f -> string_of_float f
  | TString s -> Printf.sprintf "%S" s
  | TQName (None, l) -> l
  | TQName (Some p, l) -> p ^ ":" ^ l
  | TNsStar p -> p ^ ":*"
  | TStarLocal l -> "*:" ^ l
  | TStar -> "*"
  | TDollar -> "$"
  | TLpar -> "("
  | TRpar -> ")"
  | TLbrack -> "["
  | TRbrack -> "]"
  | TLbrace -> "{"
  | TRbrace -> "}"
  | TSlash -> "/"
  | TSlashSlash -> "//"
  | TDot -> "."
  | TDotDot -> ".."
  | TAt -> "@"
  | TComma -> ","
  | TSemi -> ";"
  | TAxisSep -> "::"
  | TAssign -> ":="
  | TEq -> "="
  | TNe -> "!="
  | TLt -> "<"
  | TLe -> "<="
  | TGt -> ">"
  | TGe -> ">="
  | TPrecedes -> "<<"
  | TFollows -> ">>"
  | TPlus -> "+"
  | TMinus -> "-"
  | TBar -> "|"
  | TQuestion -> "?"
  | TEof -> "<eof>"
