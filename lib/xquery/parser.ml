(** Recursive-descent parser for the XQuery subset.

    Operator precedence follows the XQuery 1.0 grammar. Names are kept
    with their lexical prefixes; [Static.resolve] turns them into expanded
    QNames afterwards. *)

open Ast
module L = Lexer

type p = { lx : L.t; locs : Ast.Locs.t }

let cur p = p.lx.L.tok
let advance p = L.next p.lx
let peek2 p = L.peek_next p.lx

(** Run [f] and record the resulting expression as starting at the token
    that was current when [f] began. Recording is first-wins, so nested
    productions that return the same node agree on its start. *)
let locate p (f : unit -> Ast.expr) : Ast.expr =
  let start = p.lx.L.tok_start in
  let e = f () in
  Ast.Locs.record p.locs e (Xdm.Srcloc.of_offset p.lx.L.src start);
  e

let error p fmt = L.syntax_error p.lx fmt

let expect p tok =
  if cur p = tok then advance p
  else error p "expected %s, found %s" (L.token_to_string tok)
      (L.token_to_string (cur p))

(** Is the current token the bare keyword [kw]? (Keywords are not
    reserved in XQuery; context decides.) *)
let at_kw p kw = cur p = L.TQName (None, kw)

let eat_kw p kw =
  if at_kw p kw then advance p
  else error p "expected keyword %S, found %s" kw (L.token_to_string (cur p))

let var_name p =
  expect p L.TDollar;
  match cur p with
  | L.TQName (None, n) ->
      advance p;
      n
  | L.TQName (Some pr, n) ->
      advance p;
      pr ^ ":" ^ n
  | t -> error p "expected variable name after '$', found %s" (L.token_to_string t)

(** Parse an atomic type name like [xs:double] (with optional trailing
    [?] occurrence indicator). *)
let atomic_type_name p : atomic_type =
  let ty =
    match cur p with
    | L.TQName (Some "xs", "string") -> Xdm.Atomic.TString
    | L.TQName (Some "xs", "boolean") -> Xdm.Atomic.TBoolean
    | L.TQName (Some "xs", ("integer" | "long" | "int")) -> Xdm.Atomic.TInteger
    | L.TQName (Some "xs", "decimal") -> Xdm.Atomic.TDecimal
    | L.TQName (Some "xs", ("double" | "float")) -> Xdm.Atomic.TDouble
    | L.TQName (Some "xs", "date") -> Xdm.Atomic.TDate
    | L.TQName (Some "xs", "dateTime") -> Xdm.Atomic.TDateTime
    | L.TQName (Some ("xdt" | "xs"), "untypedAtomic") -> Xdm.Atomic.TUntyped
    | t -> error p "expected an atomic type name, found %s" (L.token_to_string t)
  in
  advance p;
  if cur p = L.TQuestion then advance p;
  ty

let is_cast_function prefix local =
  match (prefix, local) with
  | "xs", ("string" | "boolean" | "integer" | "long" | "int" | "decimal"
          | "double" | "float" | "date" | "dateTime" | "untypedAtomic")
  | "xdt", "untypedAtomic" ->
      true
  | _ -> false

let cast_target prefix local : atomic_type =
  match (prefix, local) with
  | "xs", "string" -> Xdm.Atomic.TString
  | "xs", "boolean" -> Xdm.Atomic.TBoolean
  | "xs", ("integer" | "long" | "int") -> Xdm.Atomic.TInteger
  | "xs", "decimal" -> Xdm.Atomic.TDecimal
  | "xs", ("double" | "float") -> Xdm.Atomic.TDouble
  | "xs", "date" -> Xdm.Atomic.TDate
  | "xs", "dateTime" -> Xdm.Atomic.TDateTime
  | _, "untypedAtomic" -> Xdm.Atomic.TUntyped
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Character-level helpers for direct constructors                     *)
(* ------------------------------------------------------------------ *)

let cpeek p = L.(if p.lx.pos < String.length p.lx.src then Some p.lx.src.[p.lx.pos] else None)

let cpeek_at p k =
  L.(
    if p.lx.pos + k < String.length p.lx.src then Some p.lx.src.[p.lx.pos + k]
    else None)

let cadv p n = p.lx.L.pos <- p.lx.L.pos + n

let clooking_at p s =
  let open L in
  let n = String.length s in
  p.lx.pos + n <= String.length p.lx.src && String.sub p.lx.src p.lx.pos n = s

let cexpect p s =
  if clooking_at p s then cadv p (String.length s)
  else error p "constructor: expected %S" s

let cskip_space p =
  while match cpeek p with Some c -> L.is_space c | None -> false do
    cadv p 1
  done

let cname_raw p =
  (match cpeek p with
  | Some c when L.is_name_start c -> ()
  | _ -> error p "constructor: expected a name");
  let start = p.lx.L.pos in
  while
    match cpeek p with
    | Some c -> L.is_name_char c || c = ':'
    | None -> false
  do
    cadv p 1
  done;
  String.sub p.lx.L.src start (p.lx.L.pos - start)

let split_prefix name =
  match String.index_opt name ':' with
  | None -> ("", name)
  | Some i ->
      (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))

let creference p buf =
  (* after '&' *)
  cadv p 1;
  if clooking_at p "#" then begin
    cadv p 1;
    let hex = clooking_at p "x" in
    if hex then cadv p 1;
    let start = p.lx.L.pos in
    while
      match cpeek p with
      | Some c ->
          (c >= '0' && c <= '9')
          || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
      | None -> false
    do
      cadv p 1
    done;
    let digits = String.sub p.lx.L.src start (p.lx.L.pos - start) in
    cexpect p ";";
    let code = int_of_string ((if hex then "0x" else "") ^ digits) in
    if code < 128 then Buffer.add_char buf (Char.chr code)
    else Buffer.add_string buf (Printf.sprintf "&#%d;" code)
  end
  else begin
    let name = cname_raw p in
    cexpect p ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "apos" -> Buffer.add_char buf '\''
    | "quot" -> Buffer.add_char buf '"'
    | e -> error p "constructor: unknown entity &%s;" e
  end

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_seq p : expr = locate p @@ fun () ->
  let first = expr_single p in
  if cur p = L.TComma then begin
    let items = ref [ first ] in
    while cur p = L.TComma do
      advance p;
      items := expr_single p :: !items
    done;
    ESeq (List.rev !items)
  end
  else first

and expr_single p : expr = locate p @@ fun () ->
  if (at_kw p "for" || at_kw p "let") && peek2 p = L.TDollar then flwor p
  else if (at_kw p "some" || at_kw p "every") && peek2 p = L.TDollar then
    quantified p
  else if at_kw p "if" && peek2 p = L.TLpar then if_expr p
  else or_expr p

and flwor p : expr =
  let clauses = ref [] in
  let rec clause_loop () =
    if at_kw p "for" && peek2 p = L.TDollar then begin
      advance p;
      let binds = ref [ for_binding p ] in
      while cur p = L.TComma do
        advance p;
        binds := for_binding p :: !binds
      done;
      clauses := CFor (List.rev !binds) :: !clauses;
      clause_loop ()
    end
    else if at_kw p "let" && peek2 p = L.TDollar then begin
      advance p;
      let binds = ref [ let_binding p ] in
      while cur p = L.TComma do
        advance p;
        binds := let_binding p :: !binds
      done;
      clauses := CLet (List.rev !binds) :: !clauses;
      clause_loop ()
    end
  in
  clause_loop ();
  if at_kw p "where" then begin
    advance p;
    clauses := CWhere (expr_single p) :: !clauses;
    (* further for/let after where are not in XQuery 1.0; ignore *)
  end;
  if at_kw p "order" then begin
    advance p;
    eat_kw p "by";
    let key () =
      let e = expr_single p in
      let dir =
        if at_kw p "descending" then begin
          advance p;
          `Desc
        end
        else begin
          if at_kw p "ascending" then advance p;
          `Asc
        end
      in
      (e, dir)
    in
    let keys = ref [ key () ] in
    while cur p = L.TComma do
      advance p;
      keys := key () :: !keys
    done;
    clauses := COrder (List.rev !keys) :: !clauses
  end;
  eat_kw p "return";
  let ret = expr_single p in
  EFlwor (List.rev !clauses, ret)

and for_binding p =
  let v = var_name p in
  eat_kw p "in";
  (v, expr_single p)

and let_binding p =
  let v = var_name p in
  expect p L.TAssign;
  (v, expr_single p)

and quantified p : expr =
  let q = if at_kw p "some" then QSome else QEvery in
  advance p;
  let binds = ref [ for_binding p ] in
  while cur p = L.TComma do
    advance p;
    binds := for_binding p :: !binds
  done;
  eat_kw p "satisfies";
  EQuant (q, List.rev !binds, expr_single p)

and if_expr p : expr =
  advance p;
  expect p L.TLpar;
  let c = expr_seq p in
  expect p L.TRpar;
  eat_kw p "then";
  let t = expr_single p in
  eat_kw p "else";
  EIf (c, t, expr_single p)

and or_expr p : expr = locate p @@ fun () ->
  let a = ref (and_expr p) in
  while at_kw p "or" do
    advance p;
    a := EOr (!a, and_expr p)
  done;
  !a

and and_expr p : expr = locate p @@ fun () ->
  let a = ref (comparison_expr p) in
  while at_kw p "and" do
    advance p;
    a := EAnd (!a, comparison_expr p)
  done;
  !a

and comparison_expr p : expr = locate p @@ fun () ->
  let a = range_expr p in
  let mk_g op =
    advance p;
    EGCmp (op, a, range_expr p)
  in
  let mk_v op =
    advance p;
    EVCmp (op, a, range_expr p)
  in
  match cur p with
  | L.TEq -> mk_g GEq
  | L.TNe -> mk_g GNe
  | L.TLt -> mk_g GLt
  | L.TLe -> mk_g GLe
  | L.TGt -> mk_g GGt
  | L.TGe -> mk_g GGe
  | L.TQName (None, "eq") -> mk_v VEq
  | L.TQName (None, "ne") -> mk_v VNe
  | L.TQName (None, "lt") -> mk_v VLt
  | L.TQName (None, "le") -> mk_v VLe
  | L.TQName (None, "gt") -> mk_v VGt
  | L.TQName (None, "ge") -> mk_v VGe
  | L.TQName (None, "is") ->
      advance p;
      ENCmp (NIs, a, range_expr p)
  | L.TPrecedes ->
      advance p;
      ENCmp (NPrecedes, a, range_expr p)
  | L.TFollows ->
      advance p;
      ENCmp (NFollows, a, range_expr p)
  | _ -> a

and range_expr p : expr = locate p @@ fun () ->
  let a = additive_expr p in
  if at_kw p "to" then begin
    advance p;
    ERange (a, additive_expr p)
  end
  else a

and additive_expr p : expr = locate p @@ fun () ->
  let a = ref (multiplicative_expr p) in
  let rec loop () =
    match cur p with
    | L.TPlus ->
        advance p;
        a := EArith (Add, !a, multiplicative_expr p);
        loop ()
    | L.TMinus ->
        advance p;
        a := EArith (Sub, !a, multiplicative_expr p);
        loop ()
    | _ -> ()
  in
  loop ();
  !a

and multiplicative_expr p : expr = locate p @@ fun () ->
  let a = ref (union_expr p) in
  let rec loop () =
    match cur p with
    | L.TStar ->
        advance p;
        a := EArith (Mul, !a, union_expr p);
        loop ()
    | L.TQName (None, "div") ->
        advance p;
        a := EArith (Div, !a, union_expr p);
        loop ()
    | L.TQName (None, "idiv") ->
        advance p;
        a := EArith (IDiv, !a, union_expr p);
        loop ()
    | L.TQName (None, "mod") ->
        advance p;
        a := EArith (Mod, !a, union_expr p);
        loop ()
    | _ -> ()
  in
  loop ();
  !a

and union_expr p : expr = locate p @@ fun () ->
  let a = ref (intersect_expr p) in
  while cur p = L.TBar || at_kw p "union" do
    advance p;
    a := EUnion (!a, intersect_expr p)
  done;
  !a

and intersect_expr p : expr = locate p @@ fun () ->
  let a = ref (cast_expr p) in
  let rec loop () =
    if at_kw p "intersect" then begin
      advance p;
      a := EIntersect (!a, cast_expr p);
      loop ()
    end
    else if at_kw p "except" then begin
      advance p;
      a := EExcept (!a, cast_expr p);
      loop ()
    end
  in
  loop ();
  !a

and seqtype p : seqtype =
  let base =
    match cur p with
    | L.TQName (None, "empty-sequence") ->
        advance p;
        expect p L.TLpar;
        expect p L.TRpar;
        None
    | L.TQName (None, kt) when peek2 p = L.TLpar -> (
        advance p;
        expect p L.TLpar;
        expect p L.TRpar;
        match kt with
        | "node" -> Some ITAnyNode
        | "element" -> Some ITElement
        | "attribute" -> Some ITAttribute
        | "text" -> Some ITText
        | "document-node" -> Some ITDocument
        | "item" -> Some ITItem
        | k -> error p "unsupported item type %s()" k)
    | _ -> Some (ITAtomic (atomic_type_name_no_occ p))
  in
  match base with
  | None -> STEmpty
  | Some it ->
      let occ =
        match cur p with
        | L.TQuestion ->
            advance p;
            OccOpt
        | L.TStar ->
            advance p;
            OccStar
        | L.TPlus ->
            advance p;
            OccPlus
        | _ -> OccOne
      in
      STItems (it, occ)

(* like [atomic_type_name] but without consuming '?', which is the
   occurrence indicator handled by [seqtype] *)
and atomic_type_name_no_occ p : atomic_type =
  let ty =
    match cur p with
    | L.TQName (Some "xs", "string") -> Xdm.Atomic.TString
    | L.TQName (Some "xs", "boolean") -> Xdm.Atomic.TBoolean
    | L.TQName (Some "xs", ("integer" | "long" | "int")) -> Xdm.Atomic.TInteger
    | L.TQName (Some "xs", "decimal") -> Xdm.Atomic.TDecimal
    | L.TQName (Some "xs", ("double" | "float")) -> Xdm.Atomic.TDouble
    | L.TQName (Some "xs", "date") -> Xdm.Atomic.TDate
    | L.TQName (Some "xs", "dateTime") -> Xdm.Atomic.TDateTime
    | L.TQName (Some ("xdt" | "xs"), "untypedAtomic") -> Xdm.Atomic.TUntyped
    | t -> error p "expected an item type, found %s" (L.token_to_string t)
  in
  advance p;
  ty

and cast_expr p : expr = locate p @@ fun () ->
  let a = unary_expr p in
  if at_kw p "instance" && peek2 p = L.TQName (None, "of") then begin
    advance p;
    advance p;
    EInstanceOf (a, seqtype p)
  end
  else if at_kw p "cast" && peek2 p = L.TQName (None, "as") then begin
    advance p;
    advance p;
    ECast (a, atomic_type_name p)
  end
  else if at_kw p "castable" && peek2 p = L.TQName (None, "as") then begin
    advance p;
    advance p;
    ECastable (a, atomic_type_name p)
  end
  else a

and unary_expr p : expr = locate p @@ fun () ->
  match cur p with
  | L.TMinus ->
      advance p;
      ENeg (unary_expr p)
  | L.TPlus ->
      advance p;
      unary_expr p
  | _ -> path_expr p

(* ---------------------------- paths ---------------------------- *)

and path_expr p : expr = locate p @@ fun () ->
  let desc_step = SAxis { axis = DescOrSelf; test = Kind KAnyNode; preds = [] } in
  match cur p with
  | L.TSlash ->
      advance p;
      if starts_step p then EPath (Absolute, rel_steps p)
      else EPath (Absolute, [])
  | L.TSlashSlash ->
      advance p;
      EPath (Absolute, desc_step :: rel_steps p)
  | _ ->
      let steps = rel_steps p in
      (* Unwrap a bare primary so that e.g. a literal is not an EPath. *)
      (match steps with
      | [ SExpr { expr; preds = [] } ] -> expr
      | steps -> EPath (Relative, steps))

and starts_step p =
  match cur p with
  | L.TQName _ | L.TStar | L.TNsStar _ | L.TStarLocal _ | L.TAt | L.TDot
  | L.TDotDot | L.TDollar | L.TLpar | L.TString _ | L.TInteger _
  | L.TDecimal _ | L.TDouble _ | L.TLt ->
      true
  | _ -> false

and rel_steps p : step list =
  let desc_step = SAxis { axis = DescOrSelf; test = Kind KAnyNode; preds = [] } in
  let steps = ref [ step_expr p ] in
  let rec loop () =
    match cur p with
    | L.TSlash ->
        advance p;
        steps := step_expr p :: !steps;
        loop ()
    | L.TSlashSlash ->
        advance p;
        steps := step_expr p :: desc_step :: !steps;
        loop ()
    | _ -> ()
  in
  loop ();
  List.rev !steps

and predicates p : expr list =
  let preds = ref [] in
  while cur p = L.TLbrack do
    advance p;
    preds := expr_seq p :: !preds;
    expect p L.TRbrack
  done;
  List.rev !preds

and is_computed_ctor p =
  (* "element name {", "element {", "attribute name {", "text {" *)
  (at_kw p "element" || at_kw p "attribute")
  && (match peek2 p with
     | L.TQName _ | L.TLbrace -> true
     | _ -> false)
  || (at_kw p "text" && peek2 p = L.TLbrace)

and computed_ctor p : expr = locate p @@ fun () ->
  let kind = match cur p with L.TQName (None, k) -> k | _ -> assert false in
  advance p;
  let static_name, name_expr =
    match cur p with
    | L.TQName (pr, local) when kind <> "text" ->
        advance p;
        ( Some (Xdm.Qname.make ~prefix:(Option.value pr ~default:"") ~uri:"" local),
          None )
    | L.TLbrace when kind <> "text" ->
        advance p;
        let e = expr_seq p in
        expect p L.TRbrace;
        (None, Some e)
    | _ -> (None, None)
  in
  expect p L.TLbrace;
  let body = if cur p = L.TRbrace then ESeq [] else expr_seq p in
  expect p L.TRbrace;
  match kind with
  | "element" -> EElemComp { cn_static = static_name; cn_expr = name_expr; cbody = body }
  | "attribute" -> EAttrComp { an_static = static_name; an_expr = name_expr; abody = body }
  | _ -> ETextComp body

and step_expr p : step =
  if is_computed_ctor p then
    SExpr { expr = computed_ctor p; preds = predicates p }
  else
  match cur p with
  | L.TDotDot ->
      advance p;
      SAxis { axis = Parent; test = Kind KAnyNode; preds = predicates p }
  | L.TAt ->
      advance p;
      let test = node_test p ~dflt_attr:true in
      SAxis { axis = Attr; test; preds = predicates p }
  | L.TQName (None, axname) when peek2 p = L.TAxisSep -> (
      let axis =
        match axname with
        | "child" -> Child
        | "descendant" -> Descendant
        | "self" -> Self
        | "descendant-or-self" -> DescOrSelf
        | "attribute" -> Attr
        | "parent" -> Parent
        | "ancestor" -> Ancestor
        | "ancestor-or-self" -> AncestorOrSelf
        | "following-sibling" -> FollowingSibling
        | "preceding-sibling" -> PrecedingSibling
        | a -> error p "unsupported axis %S" a
      in
      advance p;
      advance p;
      let test = node_test p ~dflt_attr:(axis = Attr) in
      SAxis { axis; test; preds = predicates p })
  | L.TQName (None, kt) when peek2 p = L.TLpar && is_kind_test_name kt ->
      let test = kind_test p in
      SAxis { axis = Child; test; preds = predicates p }
  | L.TQName (_, _) when peek2 p = L.TLpar ->
      (* function call used as a step *)
      let e = primary p in
      SExpr { expr = e; preds = predicates p }
  | L.TQName _ | L.TStar | L.TNsStar _ | L.TStarLocal _ ->
      let test = node_test p ~dflt_attr:false in
      SAxis { axis = Child; test; preds = predicates p }
  | _ ->
      let e = primary p in
      SExpr { expr = e; preds = predicates p }

and is_kind_test_name = function
  | "node" | "text" | "comment" | "processing-instruction" | "document-node"
    ->
      true
  | _ -> false

and kind_test p : nodetest =
  match cur p with
  | L.TQName (None, "node") ->
      advance p;
      expect p L.TLpar;
      expect p L.TRpar;
      Kind KAnyNode
  | L.TQName (None, "text") ->
      advance p;
      expect p L.TLpar;
      expect p L.TRpar;
      Kind KText
  | L.TQName (None, "comment") ->
      advance p;
      expect p L.TLpar;
      expect p L.TRpar;
      Kind KComment
  | L.TQName (None, "document-node") ->
      advance p;
      expect p L.TLpar;
      expect p L.TRpar;
      Kind KDocument
  | L.TQName (None, "processing-instruction") -> (
      advance p;
      expect p L.TLpar;
      match cur p with
      | L.TRpar ->
          advance p;
          Kind (KPi None)
      | L.TQName (None, t) ->
          advance p;
          expect p L.TRpar;
          Kind (KPi (Some t))
      | L.TString t ->
          advance p;
          expect p L.TRpar;
          Kind (KPi (Some t))
      | t -> error p "bad processing-instruction test: %s" (L.token_to_string t))
  | t -> error p "expected kind test, found %s" (L.token_to_string t)

and node_test p ~dflt_attr : nodetest =
  ignore dflt_attr;
  match cur p with
  | L.TQName (None, kt) when peek2 p = L.TLpar && is_kind_test_name kt ->
      kind_test p
  | L.TQName (pr, local) ->
      advance p;
      Name
        (TName
           (Xdm.Qname.make
              ~prefix:(Option.value pr ~default:"")
              ~uri:"" local))
  | L.TStar ->
      advance p;
      Name TStar
  | L.TNsStar prefix ->
      advance p;
      Name (TNsStar { prefix; uri = "" })
  | L.TStarLocal local ->
      advance p;
      Name (TLocalStar local)
  | t -> error p "expected node test, found %s" (L.token_to_string t)

(* --------------------------- primaries -------------------------- *)

and primary p : expr = locate p @@ fun () ->
  match cur p with
  | L.TInteger i ->
      advance p;
      ELit (Xdm.Atomic.Integer i)
  | L.TDecimal f ->
      advance p;
      ELit (Xdm.Atomic.Decimal f)
  | L.TDouble f ->
      advance p;
      ELit (Xdm.Atomic.Double f)
  | L.TString s ->
      advance p;
      ELit (Xdm.Atomic.Str s)
  | L.TDollar -> EVar (var_name p)
  | L.TDot ->
      advance p;
      EContext
  | L.TLpar ->
      advance p;
      if cur p = L.TRpar then begin
        advance p;
        ESeq []
      end
      else begin
        let e = expr_seq p in
        expect p L.TRpar;
        e
      end
  | L.TLt -> direct_constructor p
  | L.TQName (pr, local) when peek2 p = L.TLpar ->
      let prefix = Option.value pr ~default:"" in
      advance p;
      expect p L.TLpar;
      let args = ref [] in
      if cur p <> L.TRpar then begin
        args := [ expr_single p ];
        while cur p = L.TComma do
          advance p;
          args := expr_single p :: !args
        done
      end;
      expect p L.TRpar;
      let args = List.rev !args in
      if is_cast_function prefix local then begin
        match args with
        | [ a ] -> ECast (a, cast_target prefix local)
        | _ -> error p "type constructor %s:%s expects one argument" prefix local
      end
      else ECall { prefix; local; args }
  | t -> error p "unexpected token %s" (L.token_to_string t)

(* ------------------------ direct constructors ------------------- *)

and direct_constructor p : expr =
  (* The current token is TLt; re-read it at character level. *)
  L.rewind_to_token_start p.lx;
  let e = ctor_char_level p in
  L.resume p.lx;
  match predicates p with [] -> e | preds -> EPath (Relative, [ SExpr { expr = e; preds } ])

and ctor_char_level p : expr = locate p @@ fun () ->
  cexpect p "<";
  let raw = cname_raw p in
  let prefix, local = split_prefix raw in
  let attrs = ref [] in
  let ns_decls = ref [] in
  let rec attr_loop () =
    cskip_space p;
    match cpeek p with
    | Some '/' | Some '>' -> ()
    | Some c when L.is_name_start c ->
        let aname = cname_raw p in
        cskip_space p;
        cexpect p "=";
        cskip_space p;
        let pieces = attr_value p in
        (match split_prefix aname with
        | "", "xmlns" ->
            let uri =
              match pieces with
              | [ APText u ] -> u
              | [] -> ""
              | _ -> error p "xmlns value must be a literal"
            in
            ns_decls := ("", uri) :: !ns_decls
        | "xmlns", pfx ->
            let uri =
              match pieces with
              | [ APText u ] -> u
              | _ -> error p "xmlns value must be a literal"
            in
            ns_decls := (pfx, uri) :: !ns_decls
        | apfx, alocal ->
            attrs :=
              (Xdm.Qname.make ~prefix:apfx ~uri:"" alocal, pieces) :: !attrs);
        attr_loop ()
    | _ -> error p "constructor: malformed start tag"
  in
  attr_loop ();
  let content =
    if clooking_at p "/>" then begin
      cadv p 2;
      []
    end
    else begin
      cexpect p ">";
      let content = ctor_content p in
      cexpect p "</";
      let close = cname_raw p in
      if close <> raw then
        error p "constructor: mismatched </%s> for <%s>" close raw;
      cskip_space p;
      cexpect p ">";
      content
    end
  in
  EElem
    {
      cname = Xdm.Qname.make ~prefix ~uri:"" local;
      cattrs = List.rev !attrs;
      ccontent = content;
      cns = List.rev !ns_decls;
    }

and attr_value p : attr_piece list =
  let quote =
    match cpeek p with
    | Some (('"' | '\'') as q) ->
        cadv p 1;
        q
    | _ -> error p "constructor: expected quoted attribute value"
  in
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := APText (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    match cpeek p with
    | None -> error p "constructor: unterminated attribute value"
    | Some c when c = quote ->
        if cpeek_at p 1 = Some quote then begin
          Buffer.add_char buf quote;
          cadv p 2;
          go ()
        end
        else cadv p 1
    | Some '{' ->
        if cpeek_at p 1 = Some '{' then begin
          Buffer.add_char buf '{';
          cadv p 2;
          go ()
        end
        else begin
          flush ();
          pieces := APExpr (enclosed_expr p) :: !pieces;
          go ()
        end
    | Some '}' ->
        if cpeek_at p 1 = Some '}' then begin
          Buffer.add_char buf '}';
          cadv p 2;
          go ()
        end
        else error p "constructor: '}' in attribute value"
    | Some '&' ->
        creference p buf;
        go ()
    | Some c ->
        Buffer.add_char buf (if L.is_space c then ' ' else c);
        cadv p 1;
        go ()
  in
  go ();
  flush ();
  List.rev !pieces

(** Parse [{ exprSeq }] starting at the '{' character: prime the token
    stream, parse, then return to character level just after '}'. *)
and enclosed_expr p : expr =
  (* current char is '{' *)
  L.resume p.lx;
  (* now the current token is TLbrace *)
  if cur p <> L.TLbrace then error p "expected '{'";
  advance p;
  let e = expr_seq p in
  if cur p <> L.TRbrace then
    error p "expected '}' to close enclosed expression, found %s"
      (L.token_to_string (cur p));
  (* After seeing TRbrace, [p.lx.pos] is the character just after '}':
     character-level parsing resumes there. *)
  e

and ctor_content p : content_piece list =
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      (* boundary-space strip: drop whitespace-only text *)
      let s = Buffer.contents buf in
      if not (String.for_all L.is_space s) then
        pieces := CPText s :: !pieces;
      Buffer.clear buf
    end
  in
  let rec go () =
    match cpeek p with
    | None -> error p "constructor: unterminated content"
    | Some '<' ->
        if clooking_at p "</" then flush ()
        else if clooking_at p "<!--" then begin
          (* keep comments as text-free: skip them *)
          cadv p 4;
          while not (clooking_at p "-->") do
            if cpeek p = None then error p "unterminated comment";
            cadv p 1
          done;
          cadv p 3;
          go ()
        end
        else begin
          flush ();
          pieces := CPExpr (ctor_char_level p) :: !pieces;
          go ()
        end
    | Some '{' ->
        if cpeek_at p 1 = Some '{' then begin
          Buffer.add_char buf '{';
          cadv p 2;
          go ()
        end
        else begin
          flush ();
          pieces := CPExpr (enclosed_expr p) :: !pieces;
          go ()
        end
    | Some '}' ->
        if cpeek_at p 1 = Some '}' then begin
          Buffer.add_char buf '}';
          cadv p 2;
          go ()
        end
        else error p "constructor: unescaped '}' in content"
    | Some '&' ->
        creference p buf;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        cadv p 1;
        go ()
  in
  go ();
  List.rev !pieces

(* ------------------------------------------------------------------ *)
(* Prolog and entry points                                             *)
(* ------------------------------------------------------------------ *)

let prolog p : prolog =
  let namespaces = ref [] in
  let default_elem_ns = ref None in
  let construction_preserve = ref false in
  let rec loop () =
    if at_kw p "declare" then begin
      match peek2 p with
      | L.TQName (None, "construction") ->
          advance p;
          advance p;
          (if at_kw p "preserve" then begin
             advance p;
             construction_preserve := true
           end
           else if at_kw p "strip" then advance p
           else error p "expected 'preserve' or 'strip'");
          expect p L.TSemi;
          loop ()
      | L.TQName (None, "namespace") ->
          advance p;
          advance p;
          let prefix =
            match cur p with
            | L.TQName (None, n) ->
                advance p;
                n
            | t -> error p "expected namespace prefix, found %s" (L.token_to_string t)
          in
          expect p L.TEq;
          let uri =
            match cur p with
            | L.TString s ->
                advance p;
                s
            | t -> error p "expected namespace URI string, found %s" (L.token_to_string t)
          in
          expect p L.TSemi;
          namespaces := (prefix, uri) :: !namespaces;
          loop ()
      | L.TQName (None, "default") ->
          advance p;
          advance p;
          eat_kw p "element";
          eat_kw p "namespace";
          let uri =
            match cur p with
            | L.TString s ->
                advance p;
                s
            | t -> error p "expected namespace URI string, found %s" (L.token_to_string t)
          in
          expect p L.TSemi;
          default_elem_ns := Some uri;
          loop ()
      | _ -> ()
    end
  in
  loop ();
  {
    namespaces = List.rev !namespaces;
    default_elem_ns = !default_elem_ns;
    construction_preserve = !construction_preserve;
  }

(** Parse a complete query (prolog + body), also returning the source
    positions recorded for its expression nodes. Raises
    [Xdm.Xerror.Error] with code [XPST0003] on syntax errors. *)
let parse_query_loc (src : string) : query * Ast.Locs.t =
  let p = { lx = L.init src; locs = Ast.Locs.create () } in
  let prolog = prolog p in
  let body = expr_seq p in
  if cur p <> L.TEof then
    error p "unexpected trailing token %s" (L.token_to_string (cur p));
  ({ prolog; body }, p.locs)

(** Parse a complete query (prolog + body). *)
let parse_query (src : string) : query = fst (parse_query_loc src)

(** Parse a bare expression with no prolog. *)
let parse_expr (src : string) : expr = (parse_query src).body
