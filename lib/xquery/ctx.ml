(** Dynamic evaluation context. *)

module SMap = Map.Make (String)

type t = {
  item : Xdm.Item.t option;  (** context item (focus) *)
  pos : int;  (** fn:position() *)
  size : int;  (** fn:last() *)
  vars : Xdm.Item.seq SMap.t;
  resolver : string -> Xdm.Item.seq;
      (** resolves [db2-fn:xmlcolumn('T.C')] to a sequence of document
          nodes; injected by the storage layer so this library stays
          storage-agnostic *)
  construction_preserve : bool;
      (** [declare construction preserve] in effect *)
  meter : Xdm.Limits.meter;
      (** resource-governor counters charged during evaluation; an
          unarmed meter (the default) costs one branch per eval step *)
  prof : Xprof.t;
      (** execution profile charged during evaluation (eval steps, nodes
          materialized, operator spans); {!Xprof.disabled} by default, so
          unprofiled evaluation pays one branch per step *)
}

let no_resolver name =
  Xdm.Xerror.raise_err "FODC0002" "no collection resolver for %S" name

let init ?(resolver = no_resolver) ?(construction_preserve = false)
    ?(meter = Xdm.Limits.meter ()) ?(prof = Xprof.disabled) () =
  {
    item = None;
    pos = 0;
    size = 0;
    vars = SMap.empty;
    resolver;
    construction_preserve;
    meter;
    prof;
  }

let with_focus ctx item pos size = { ctx with item = Some item; pos; size }

let bind ctx name seq = { ctx with vars = SMap.add name seq ctx.vars }

let bind_all ctx bindings =
  List.fold_left (fun c (n, s) -> bind c n s) ctx bindings

let lookup ctx name =
  match SMap.find_opt name ctx.vars with
  | Some v -> v
  | None -> Xdm.Xerror.undefined "unbound variable $%s" name

let context_item ctx =
  match ctx.item with
  | Some i -> i
  | None -> Xdm.Xerror.no_context "context item is undefined"

let context_node ctx =
  match context_item ctx with
  | Xdm.Item.N n -> n
  | Xdm.Item.A _ ->
      Xdm.Xerror.type_error "context item is not a node"
