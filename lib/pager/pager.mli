(** Fixed-size page file with a pinning buffer pool.

    The durable layer stores snapshots as page files: a flat file of
    [page_size]-byte slots addressed by page id. Reads and writes go
    through a small buffer pool with pin/unpin and LRU eviction, so a
    snapshot larger than the pool streams through bounded memory, and
    the eviction/write-back paths are genuinely exercised (and
    fault-injectable via the ["page.write"] / ["page.evict"] points).

    The pager knows nothing about page contents; {!Blob} layers
    variable-length byte strings over page chains, and the snapshot
    format (lib/wal) layers the catalog over blobs.

    Concurrency: a pager instance is single-owner — it is only driven
    from the engine's statement path (coordinator domain), never from
    Xpar chunk closures. *)

(** Re-export: the binary codec also frames WAL records (lib/wal). *)
module Codec = Codec

val default_page_size : int
val default_pool_pages : int

type t

(** Open (or create) the page file at [path]. [truncate] discards any
    existing contents. [page_size] below 64 is rejected; [pool_pages]
    (max resident frames before eviction) is clamped to at least 4.
    [count] is the Xprof counter hook ([page_reads], [page_writes],
    [pool_evictions]). *)
val openfile :
  ?page_size:int ->
  ?pool_pages:int ->
  ?count:(string -> unit) ->
  truncate:bool ->
  string ->
  t

val page_size : t -> int

(** Number of allocated pages (the next fresh id). *)
val page_count : t -> int

val path : t -> string

(** Allocate a fresh (zeroed, dirty) page and return its id. *)
val alloc : t -> int

(** Pin page [id] into the pool and return its live frame bytes; the
    page cannot be evicted until {!unpin}. Mutations require
    {!mark_dirty} to reach disk. *)
val pin : t -> int -> bytes

val unpin : t -> int -> unit

(** Run [f] over the pinned bytes of page [id]; unpins on the way out. *)
val with_page : t -> int -> (bytes -> 'a) -> 'a

(** Mark a resident page dirty so it is written back on eviction,
    {!flush} or {!close}. *)
val mark_dirty : t -> int -> unit

(** Copy-out read of a whole page. *)
val read_page : t -> int -> string

(** Overwrite page [id] with [s] (shorter strings are zero-padded;
    longer ones are rejected). *)
val write_page : t -> int -> string -> unit

(** Write every dirty frame back (in page order) and fsync. *)
val flush : t -> unit

(** Close the file, flushing dirty frames first unless [flush:false]
    (crash simulation). I/O errors during close are swallowed. *)
val close : ?flush:bool -> t -> unit

(** Variable-length byte strings stored as chains of pages. *)
module Blob : sig
  (** Per-page header bytes: next-page id (int64 LE, -1 ends the chain)
      and chunk length (u32 LE). *)
  val header : int

  val chunk_capacity : t -> int

  (** Store [s] as a chain of freshly allocated pages; returns the head
      page id. *)
  val write : t -> string -> int

  (** Read back the chain starting at [id]; raises [Codec.Corrupt] on a
      cyclic or malformed chain. *)
  val read : t -> int -> string
end
