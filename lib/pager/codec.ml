(** Minimal binary codec used by the snapshot and WAL formats.

    Everything on disk is little-endian; integers that are usually small
    (counts, lengths, ids) use LEB128 varints, full-width values use fixed
    64-bit encodings. Strings are length-prefixed byte blobs. The decoder
    works over a [string * position ref] pair and raises [Corrupt] on any
    short read or malformed varint, which recovery code maps to "stop
    replay here". *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* Encoding (into a Buffer)                                            *)
(* ------------------------------------------------------------------ *)

let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let u32 buf v =
  for i = 0 to 3 do
    u8 buf ((v lsr (8 * i)) land 0xff)
  done

(** Unsigned LEB128. *)
let uvarint buf v =
  if v < 0 then invalid_arg "Codec.uvarint: negative";
  let rec go v =
    if v < 0x80 then u8 buf v
    else begin
      u8 buf (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

(** Signed integers zig-zag through {!uvarint}. *)
let varint buf v =
  uvarint buf ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

let i64 buf (v : int64) =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let f64 buf (v : float) = i64 buf (Int64.bits_of_float v)

let str buf s =
  uvarint buf (String.length s);
  Buffer.add_string buf s

let opt enc buf = function
  | None -> u8 buf 0
  | Some v ->
      u8 buf 1;
      enc buf v

let list enc buf xs =
  uvarint buf (List.length xs);
  List.iter (enc buf) xs

(* ------------------------------------------------------------------ *)
(* Decoding (from a string at a mutable position)                      *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let at_end r = r.pos >= String.length r.src

let need r n =
  if r.pos + n > String.length r.src then
    corrupt "short read: need %d bytes at %d/%d" n r.pos (String.length r.src)

let g_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let g_u32 r =
  let b0 = g_u8 r in
  let b1 = g_u8 r in
  let b2 = g_u8 r in
  let b3 = g_u8 r in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let g_uvarint r =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint overflow at %d" r.pos;
    let b = g_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let g_varint r =
  let v = g_uvarint r in
  (v lsr 1) lxor (-(v land 1))

let g_i64 r =
  need r 8;
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let g_f64 r = Int64.float_of_bits (g_i64 r)

let g_str r =
  let n = g_uvarint r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let g_opt dec r = match g_u8 r with 0 -> None | _ -> Some (dec r)

(* Explicit recursion: the decoder is effectful, so the evaluation order
   of List.init/Array.init must not be relied on. *)
let g_list dec r =
  let n = g_uvarint r in
  let rec go i acc = if i = n then List.rev acc else go (i + 1) (dec r :: acc) in
  go 0 []

(* ------------------------------------------------------------------ *)
(* CRC-32 (ISO 3309 / zlib polynomial), for WAL record framing          *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) s =
  let tbl = Lazy.force crc_table in
  let c = ref (init lxor 0xffffffff) in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff land 0xffffffff
