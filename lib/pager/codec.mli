(** Minimal binary codec used by the snapshot and WAL formats.

    Everything on disk is little-endian; integers that are usually small
    (counts, lengths, ids) use LEB128 varints, full-width values use
    fixed 64-bit encodings. Strings are length-prefixed byte blobs. The
    decoder raises {!Corrupt} on any short read or malformed varint,
    which recovery code maps to "stop replay here". *)

exception Corrupt of string

(** Raise {!Corrupt} with a formatted message. *)
val corrupt : ('a, unit, string, 'b) format4 -> 'a

(** {1 Encoding (into a [Buffer])} *)

val u8 : Buffer.t -> int -> unit
val u32 : Buffer.t -> int -> unit

(** Unsigned LEB128. *)
val uvarint : Buffer.t -> int -> unit

(** Signed integers zig-zag through {!uvarint}. *)
val varint : Buffer.t -> int -> unit

val i64 : Buffer.t -> int64 -> unit
val f64 : Buffer.t -> float -> unit

(** Length-prefixed byte blob. *)
val str : Buffer.t -> string -> unit

val opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit
val list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

(** {1 Decoding (from a string at a mutable position)} *)

(** Concrete on purpose: format code (e.g. the snapshot loader) seeks by
    assigning [pos] directly. *)
type reader = { src : string; mutable pos : int }

val reader : string -> reader
val at_end : reader -> bool

(** Raise {!Corrupt} unless [n] more bytes are available. *)
val need : reader -> int -> unit

val g_u8 : reader -> int
val g_u32 : reader -> int
val g_uvarint : reader -> int
val g_varint : reader -> int
val g_i64 : reader -> int64
val g_f64 : reader -> float
val g_str : reader -> string
val g_opt : (reader -> 'a) -> reader -> 'a option
val g_list : (reader -> 'a) -> reader -> 'a list

(** {1 CRC-32} (ISO 3309 / zlib polynomial), for WAL record framing.
    [init] chains partial checksums. *)
val crc32 : ?init:int -> string -> int
