(** Fixed-size page file with a pinning buffer pool.

    The durable layer stores snapshots as page files: a flat file of
    [page_size]-byte slots addressed by page id. Reads and writes go
    through a small buffer pool with pin/unpin and LRU eviction, so a
    snapshot larger than the pool streams through bounded memory and the
    eviction/write-back paths are genuinely exercised (and fault-injectable
    via the ["page.write"] and ["page.evict"] points).

    The pager is deliberately dumb: it knows nothing about what the pages
    contain. {!Blob} layers variable-length byte strings over page chains;
    the snapshot format (lib/wal) layers the catalog over blobs. *)

(** Re-export: the binary codec also frames WAL records (lib/wal). *)
module Codec = Codec

let default_page_size = 4096
let default_pool_pages = 64

type frame = {
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable tick : int;  (** last-touched stamp for LRU *)
}

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  pool_pages : int;  (** max resident frames before eviction *)
  pool : (int, frame) Hashtbl.t;
  mutable next_page : int;  (** number of allocated pages *)
  mutable clock : int;
  count : string -> unit;  (** Xprof counter hook *)
}

let no_count (_ : string) = ()

let openfile ?(page_size = default_page_size)
    ?(pool_pages = default_pool_pages) ?(count = no_count) ~truncate path =
  if page_size < 64 then invalid_arg "Pager.openfile: page_size too small";
  let flags =
    if truncate then Unix.[ O_RDWR; O_CREAT; O_TRUNC ]
    else Unix.[ O_RDWR; O_CREAT ]
  in
  let fd = Unix.openfile path flags 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  {
    fd;
    path;
    page_size;
    pool_pages = max 4 pool_pages;
    pool = Hashtbl.create 64;
    next_page = (size + page_size - 1) / page_size;
    clock = 0;
    count;
  }

let page_size t = t.page_size
let page_count t = t.next_page
let path t = t.path

let touch t f =
  t.clock <- t.clock + 1;
  f.tick <- t.clock

(* ------------------------------------------------------------------ *)
(* Physical I/O                                                        *)
(* ------------------------------------------------------------------ *)

let write_exactly fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let physical_write t id (f : frame) =
  Faultinject.hit "page.write";
  ignore (Unix.lseek t.fd (id * t.page_size) Unix.SEEK_SET);
  write_exactly t.fd f.data;
  t.count "page_writes";
  f.dirty <- false

let physical_read t id (buf : bytes) =
  ignore (Unix.lseek t.fd (id * t.page_size) Unix.SEEK_SET);
  let rec go off =
    if off < t.page_size then
      match Unix.read t.fd buf off (t.page_size - off) with
      | 0 -> ()  (* short file: rest of the page stays zero *)
      | n -> go (off + n)
  in
  go 0;
  t.count "page_reads"

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                         *)
(* ------------------------------------------------------------------ *)

(** Evict the least-recently-used unpinned frame, writing it back first if
    dirty. A pool full of pinned frames simply grows past [pool_pages]. *)
let maybe_evict t =
  if Hashtbl.length t.pool >= t.pool_pages then begin
    let victim = ref None in
    Hashtbl.iter
      (fun id (f : frame) ->
        if f.pins = 0 then
          match !victim with
          | Some (_, (v : frame)) when v.tick <= f.tick -> ()
          | _ -> victim := Some (id, f))
      t.pool;
    match !victim with
    | None -> ()
    | Some (id, f) ->
        Faultinject.hit "page.evict";
        if f.dirty then physical_write t id f;
        Hashtbl.remove t.pool id;
        t.count "pool_evictions"
  end

(** Fetch page [id] into the pool (reading from disk if absent) and return
    its frame. *)
let frame_of t id =
  if id < 0 || id >= t.next_page then
    invalid_arg (Printf.sprintf "Pager: page %d out of range [0,%d)" id t.next_page);
  match Hashtbl.find_opt t.pool id with
  | Some f ->
      touch t f;
      f
  | None ->
      maybe_evict t;
      let f = { data = Bytes.make t.page_size '\000'; dirty = false; pins = 0; tick = 0 } in
      physical_read t id f.data;
      Hashtbl.replace t.pool id f;
      touch t f;
      f

(** Allocate a fresh (zeroed, dirty) page and return its id. *)
let alloc t =
  let id = t.next_page in
  t.next_page <- id + 1;
  maybe_evict t;
  let f = { data = Bytes.make t.page_size '\000'; dirty = true; pins = 0; tick = 0 } in
  Hashtbl.replace t.pool id f;
  touch t f;
  id

let pin t id =
  let f = frame_of t id in
  f.pins <- f.pins + 1;
  f.data

let unpin t id =
  match Hashtbl.find_opt t.pool id with
  | Some f when f.pins > 0 -> f.pins <- f.pins - 1
  | _ -> ()

(** Run [f] over the pinned bytes of page [id]; unpins on the way out.
    Mutating the bytes requires calling {!mark_dirty}. *)
let with_page t id f =
  let data = pin t id in
  Fun.protect ~finally:(fun () -> unpin t id) (fun () -> f data)

let mark_dirty t id =
  match Hashtbl.find_opt t.pool id with
  | Some f -> f.dirty <- true
  | None -> invalid_arg "Pager.mark_dirty: page not resident"

(** Copy-out read of a whole page. *)
let read_page t id = with_page t id (fun data -> Bytes.to_string data)

(** Overwrite page [id] with [s] (shorter strings are zero-padded). *)
let write_page t id s =
  if String.length s > t.page_size then
    invalid_arg "Pager.write_page: string exceeds page size";
  with_page t id (fun data ->
      Bytes.fill data 0 t.page_size '\000';
      Bytes.blit_string s 0 data 0 (String.length s));
  mark_dirty t id

(** Write every dirty frame back and fsync the file. *)
let flush t =
  Hashtbl.fold (fun id f acc -> if f.dirty then (id, f) :: acc else acc) t.pool []
  |> List.sort compare
  |> List.iter (fun (id, f) -> physical_write t id f);
  Unix.fsync t.fd

let close ?(flush = true) t =
  if flush then
    (try
       Hashtbl.fold
         (fun id f acc -> if f.dirty then (id, f) :: acc else acc)
         t.pool []
       |> List.sort compare
       |> List.iter (fun (id, f) -> physical_write t id f);
       Unix.fsync t.fd
     with Unix.Unix_error _ -> ());
  (try Unix.close t.fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Blobs: variable-length byte strings over page chains                *)
(* ------------------------------------------------------------------ *)

module Blob = struct
  (** Page layout: [8 bytes next-page id (int64 LE, -1 = end of chain)]
      [4 bytes chunk length (u32 LE)] [chunk bytes]. *)

  let header = 12

  let chunk_capacity t = page_size t - header

  (** Store [s] as a chain of pages; returns the head page id. *)
  let write t s =
    let cap = chunk_capacity t in
    let len = String.length s in
    let n_pages = max 1 ((len + cap - 1) / cap) in
    let ids = List.init n_pages (fun _ -> alloc t) in
    let rec go off = function
      | [] -> ()
      | id :: rest ->
          let chunk_len = min cap (len - off) in
          let next = match rest with [] -> -1 | id' :: _ -> id' in
          let buf = Buffer.create (header + chunk_len) in
          Codec.i64 buf (Int64.of_int next);
          Codec.u32 buf chunk_len;
          Buffer.add_substring buf s off chunk_len;
          write_page t id (Buffer.contents buf);
          go (off + chunk_len) rest
    in
    go 0 ids;
    List.hd ids

  (** Read back the chain starting at [id]. *)
  let read t id =
    let buf = Buffer.create 4096 in
    let rec go id seen =
      if id <> -1 then begin
        if seen > page_count t then Codec.corrupt "blob chain cycle at page %d" id;
        let page = read_page t id in
        let r = Codec.reader page in
        let next = Int64.to_int (Codec.g_i64 r) in
        let chunk_len = Codec.g_u32 r in
        if chunk_len > String.length page - header then
          Codec.corrupt "blob page %d: bad chunk length %d" id chunk_len;
        Buffer.add_substring buf page header chunk_len;
        go next (seen + 1)
      end
    in
    go id 0;
    Buffer.contents buf
end
