(** Domain-safety source lint: the static half of Xsan.

    Parses each [lib/**/*.ml] with the host compiler's own frontend
    (compiler-libs) and flags module-initialization-time creation of
    shared mutable state — the stuff that becomes a data race the moment
    an Xpar chunk closure touches it from a worker domain:

    - XSAN001: a top-level [ref] cell
    - XSAN002: a top-level mutable container ([Hashtbl]/[Queue]/[Stack]/
      [Buffer] [.create]) — none of these are domain-safe
    - XSAN003: a top-level [lazy] value (concurrent [Lazy.force] from
      two domains raises or races)
    - XSAN004: use of the global [Random] state anywhere in the module
      (domain-local since OCaml 5, so not a race, but a nondeterminism
      hazard under Xpar's varying schedules; use [Random.State]) —
      Warning severity
    - XSAN005: a raw [Mutex.create] — use the named, lock-order-tracked
      [Xpar.Lock] instead
    - XSAN008: a stale registry entry (names a module that no longer
      exists under the scanned roots)
    - XSAN009: unparseable source / malformed registry

    "Top-level" means evaluated at module initialization: the scan
    descends through [let]s, tuples, records, applications, sequences
    and submodule structures, but *not* into function bodies — state
    created per call is not shared (the one heuristic gap is a closure
    over a creation inside a top-level binding's body, documented in
    docs/CONCURRENCY.md).

    Findings are suppressed — but still counted — for modules the
    {!Registry} annotates ([domain_safe] / [guarded_by:<lock>]);
    [seq_only] modules are skipped entirely. The build alias
    [@racecheck] fails on any unsuppressed Error, so new shared state
    needs either a lock or an explicit, reviewed annotation to land. *)

module D = Analysis.Diag

let pos_of (loc : Location.t) : Xdm.Srcloc.pos =
  let p = loc.Location.loc_start in
  {
    Xdm.Srcloc.line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1;
    offset = p.Lexing.pos_cnum;
  }

let diag ~code ~severity ~loc fmt =
  D.make ~pos:(pos_of loc) ~code ~severity fmt

(* The containers whose [create] is flagged. [Array.make]/[Bytes.create]
   are deliberately out: shared arrays are almost always index-disjoint
   chunk outputs (Xpar's own slots), and flagging them would bury the
   signal. *)
let mutable_containers = [ "Hashtbl"; "Queue"; "Stack"; "Buffer" ]

let creation_finding ~loc (lid : Longident.t) : D.t option =
  match Longident.flatten lid with
  | [ "ref" ] ->
      Some
        (diag ~code:"XSAN001" ~severity:D.Error ~loc
           "top-level ref cell: shared across domains once any Xpar chunk \
            closure reaches this module; use Atomic.t, or annotate the \
            module in xsan.toml")
  | [ m; "create" ] when List.mem m mutable_containers ->
      Some
        (diag ~code:"XSAN002" ~severity:D.Error ~loc
           "top-level %s.create: %s is not domain-safe; guard it with an \
            Xpar.Lock (and annotate guarded_by:<lock>) or keep it per-call"
           m m)
  | [ "Mutex"; "create" ] ->
      Some
        (diag ~code:"XSAN005" ~severity:D.Error ~loc
           "raw Mutex.create: use Xpar.Lock.create ~name so the lock \
            participates in lock-order/deadlock tracking")
  | _ -> None

(* --- pass 1: module-initialization-time creations ------------------- *)

(* Walks only expressions evaluated when the module initializes. The
   match whitelists the constructors we descend through; everything else
   — including function constructs, whose parsetree shape changed across
   compiler versions — falls to the catch-all and is not entered. *)
let rec scan_init ~(add : D.t -> unit) (e : Parsetree.expression) =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      (match creation_finding ~loc:e.pexp_loc txt with
      | Some d -> add d
      | None -> ());
      List.iter (fun (_, a) -> scan_init ~add a) args
  | Pexp_apply (f, args) ->
      scan_init ~add f;
      List.iter (fun (_, a) -> scan_init ~add a) args
  | Pexp_lazy _ ->
      add
        (diag ~code:"XSAN003" ~severity:D.Error ~loc:e.pexp_loc
           "top-level lazy value: concurrent Lazy.force from two domains \
            races (RacyLazy); force it eagerly at startup or guard it")
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> scan_init ~add vb.pvb_expr) vbs;
      scan_init ~add body
  | Pexp_sequence (a, b) ->
      scan_init ~add a;
      scan_init ~add b
  | Pexp_tuple es -> List.iter (scan_init ~add) es
  | Pexp_array es -> List.iter (scan_init ~add) es
  | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> scan_init ~add v) fields;
      Option.iter (scan_init ~add) base
  | Pexp_field (e, _) -> scan_init ~add e
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> scan_init ~add e
  | Pexp_ifthenelse (c, t, f) ->
      scan_init ~add c;
      scan_init ~add t;
      Option.iter (scan_init ~add) f
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> scan_init ~add e
  | Pexp_open (_, e) -> scan_init ~add e
  | Pexp_match (e, _) | Pexp_try (e, _) ->
      (* case bodies run at init too, but creations there are value-
         dependent; the scrutinee is the common case *)
      scan_init ~add e
  | _ -> ()

let rec scan_structure ~add (str : Parsetree.structure) =
  List.iter (scan_item ~add) str

and scan_item ~add (it : Parsetree.structure_item) =
  let open Parsetree in
  match it.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.iter (fun vb -> scan_init ~add vb.pvb_expr) vbs
  | Pstr_eval (e, _) -> scan_init ~add e
  | Pstr_module mb -> scan_module_expr ~add mb.pmb_expr
  | Pstr_recmodule mbs ->
      List.iter (fun mb -> scan_module_expr ~add mb.pmb_expr) mbs
  | Pstr_include i -> scan_module_expr ~add i.pincl_mod
  | _ -> ()

and scan_module_expr ~add (me : Parsetree.module_expr) =
  let open Parsetree in
  match me.pmod_desc with
  | Pmod_structure str -> scan_structure ~add str
  | Pmod_constraint (me, _) -> scan_module_expr ~add me
  | _ -> () (* functors evaluate at application; idents create nothing *)

(* --- pass 2: global Random state, anywhere -------------------------- *)

let random_pass ~add (str : Parsetree.structure) =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } -> (
              match Longident.flatten txt with
              | "Random" :: f :: _ when f <> "State" ->
                  add
                    (diag ~code:"XSAN004" ~severity:D.Warning ~loc
                       "global Random state (Random.%s): domain-local but \
                        schedule-dependent under Xpar — seed an explicit \
                        Random.State instead"
                       f)
              | _ -> ())
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  it.structure it str

(* --- file-level API -------------------------------------------------- *)

(** All raw findings for one compilation unit (no registry applied). *)
let check_source ~filename (src : string) : D.t list =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  match Parse.implementation lexbuf with
  | exception e ->
      [
        D.make
          ~pos:{ Xdm.Srcloc.line = 1; col = 1; offset = 0 }
          ~code:"XSAN009" ~severity:D.Error "cannot parse %s: %s" filename
          (Printexc.to_string e);
      ]
  | str ->
      let acc = ref [] in
      let add d = acc := d :: !acc in
      scan_structure ~add str;
      random_pass ~add str;
      List.sort D.compare !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file (path : string) : D.t list =
  match read_file path with
  | exception Sys_error m ->
      [
        D.make ~code:"XSAN009" ~severity:D.Error "cannot read %s: %s" path m;
      ]
  | src -> check_source ~filename:path src

(* --- directory scan under a registry --------------------------------- *)

type file_report = {
  path : string;
  modkey : string;  (** registry key this file resolves to *)
  policy : Registry.policy option;
  diags : D.t list;  (** findings that survive the registry *)
  suppressed : int;  (** findings silenced by a domain_safe/guarded_by *)
}

type result = {
  reports : file_report list;  (** one per scanned file, path order *)
  registry_diags : D.t list;  (** XSAN008 stale entries, XSAN009 parse *)
  files : int;
  findings : int;  (** unsuppressed findings across all files *)
  errors : int;  (** unsuppressed Error-severity count (the exit code) *)
}

(* "lib/xprof/xprof.ml" -> "xprof/xprof"; keys are root-relative so the
   registry is stable however the scanner is invoked. *)
let modkey_of_path path =
  let p =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  let p =
    if String.length p > 4 && String.sub p 0 4 = "lib/" then
      String.sub p 4 (String.length p - 4)
    else p
  in
  Filename.remove_extension p

let rec ml_files_under ~exclude path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun f ->
           ml_files_under ~exclude (Filename.concat path f))
  else if
    Filename.check_suffix path ".ml"
    && not (List.mem (Filename.basename path) exclude)
  then [ path ]
  else []

(** Lint every [.ml] under [roots] (files are taken as-is), applying
    [registry] policies per module key. [exclude] lists basenames to
    skip — dune-generated copies whose sources are scanned separately
    (the scan may run inside [_build], where generated files exist). *)
let scan ?(registry = Registry.empty ()) ?(registry_diags = [])
    ?(exclude = []) (roots : string list) : result =
  let files = List.concat_map (ml_files_under ~exclude) roots in
  let seen = Hashtbl.create 32 in
  let reports =
    List.map
      (fun path ->
        let modkey = modkey_of_path path in
        Hashtbl.replace seen modkey ();
        let entry = Registry.find registry modkey in
        let policy = Option.map (fun e -> e.Registry.policy) entry in
        match policy with
        | Some Registry.Seq_only ->
            { path; modkey; policy; diags = []; suppressed = 0 }
        | Some (Registry.Domain_safe | Registry.Guarded_by _) ->
            let found = check_file path in
            { path; modkey; policy; diags = []; suppressed = List.length found }
        | None ->
            { path; modkey; policy; diags = check_file path; suppressed = 0 })
      files
  in
  let stale =
    List.filter_map
      (fun (e : Registry.entry) ->
        if Hashtbl.mem seen e.Registry.key then None
        else
          Some
            (D.make
               ~pos:{ Xdm.Srcloc.line = e.Registry.line; col = 1; offset = 0 }
               ~code:"XSAN008" ~severity:D.Error
               "stale registry entry: no module %S under the scanned roots"
               e.Registry.key))
      (Registry.entries registry)
  in
  let registry_diags = registry_diags @ stale in
  let kept = List.concat_map (fun r -> r.diags) reports @ registry_diags in
  {
    reports;
    registry_diags;
    files = List.length files;
    findings = List.length kept;
    errors = List.length (List.filter D.is_error kept);
  }
