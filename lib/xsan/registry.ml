(** The Xsan annotation registry (the [xsan.toml] file at the repo
    root): per-module concurrency policy declarations that drive the
    {!Srccheck} lint. The registry is how the build fails on *new*
    unguarded shared state while grandfathering what already exists —
    every suppression is an explicit, reviewed line with a reason, not a
    silent skip.

    Format (a deliberately small TOML subset, parsed here so the lint
    needs no external dependency):

    {v
    # comment
    [module "faultinject/faultinject"]
    policy = "guarded_by:faultinject.registry"
    reason = "armed table only touched under the registry lock"
    v}

    Module keys are paths relative to the scan root with the [.ml]
    extension dropped (["xprof/xprof"], ["engine/plan_cache"]).
    Policies:

    - [domain_safe]: the module's top-level state is safe to touch from
      any domain (atomics, immutable data, or internal locking).
    - [guarded_by:<lock>]: shared state is only accessed under the named
      {!Xpar.Lock} — the name should match the lock-order tracker's.
    - [seq_only]: the module is never reachable from Xpar chunk
      closures; the lint skips it entirely. *)

type policy =
  | Domain_safe
  | Seq_only
  | Guarded_by of string  (** lock name, as registered with Xpar.Lock *)

let policy_to_string = function
  | Domain_safe -> "domain_safe"
  | Seq_only -> "seq_only"
  | Guarded_by l -> "guarded_by:" ^ l

let policy_of_string s =
  match s with
  | "domain_safe" -> Some Domain_safe
  | "seq_only" -> Some Seq_only
  | _ ->
      let prefix = "guarded_by:" in
      let pl = String.length prefix in
      if String.length s > pl && String.sub s 0 pl = prefix then
        Some (Guarded_by (String.sub s pl (String.length s - pl)))
      else None

type entry = {
  key : string;  (** module key, e.g. ["engine/plan_cache"] *)
  policy : policy;
  reason : string option;
  line : int;  (** line of the [\[module ...\]] header, for diagnostics *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : entry list;  (** reverse declaration order *)
}

let empty () = { tbl = Hashtbl.create 8; order = [] }
let find t key = Hashtbl.find_opt t.tbl key
let entries t = List.rev t.order

(* --- parsing ------------------------------------------------------- *)

let err ~line fmt =
  Analysis.Diag.make
    ~pos:{ Xdm.Srcloc.line; col = 1; offset = 0 }
    ~code:"XSAN009" ~severity:Analysis.Diag.Error fmt

(* ["value"] with nothing else on the line. *)
let quoted (s : string) : string option =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    Some (String.sub s 1 (n - 2))
  else None

let strip_comment line =
  (* none of our values contain '#', so a simple split is enough *)
  match String.index_opt line '#' with
  | Some i when not (String.contains (String.sub line 0 i) '"') ->
      String.sub line 0 i
  | _ -> line

(** Parse registry source text; [path] only labels diagnostics. Returns
    the registry plus any XSAN009 parse diagnostics (parsing continues
    past errors so one typo doesn't hide the rest of the file). *)
let parse ~path (src : string) : t * Analysis.Diag.t list =
  ignore path;
  let t = empty () in
  let diags = ref [] in
  (* pending section: the entry plus whether a [policy =] line arrived *)
  let current : (entry * bool) option ref = ref None in
  let commit () =
    match !current with
    | None -> ()
    | Some (e, policy_seen) ->
        if not policy_seen then
          diags :=
            err ~line:e.line "[module %S] has no policy line" e.key :: !diags
        else if Hashtbl.mem t.tbl e.key then
          diags :=
            err ~line:e.line "duplicate [module %S] entry" e.key :: !diags
        else begin
          Hashtbl.replace t.tbl e.key e;
          t.order <- e :: t.order
        end;
        current := None
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim (strip_comment raw) in
      if s = "" then ()
      else if String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']'
      then begin
        commit ();
        let inner = String.trim (String.sub s 1 (String.length s - 2)) in
        let mod_prefix = "module " in
        let pl = String.length mod_prefix in
        if String.length inner > pl && String.sub inner 0 pl = mod_prefix then
          match quoted (String.sub inner pl (String.length inner - pl)) with
          | Some key ->
              current :=
                Some ({ key; policy = Seq_only; line; reason = None }, false)
          | None -> diags := err ~line "malformed module header: %s" s :: !diags
        else diags := err ~line "unknown section: %s" s :: !diags
      end
      else
        match String.index_opt s '=' with
        | None -> diags := err ~line "expected 'key = \"value\"': %s" s :: !diags
        | Some eq -> (
            let k = String.trim (String.sub s 0 eq) in
            let v = String.sub s (eq + 1) (String.length s - eq - 1) in
            match (!current, quoted v) with
            | None, _ ->
                diags :=
                  err ~line "%S outside a [module ...] section" k :: !diags
            | _, None ->
                diags := err ~line "expected a quoted value for %S" k :: !diags
            | Some (e, seen), Some v -> (
                match k with
                | "policy" -> (
                    match policy_of_string v with
                    | Some p -> current := Some ({ e with policy = p }, true)
                    | None ->
                        diags :=
                          err ~line
                            "unknown policy %S (want domain_safe, seq_only \
                             or guarded_by:<lock>)"
                            v
                          :: !diags)
                | "reason" -> current := Some ({ e with reason = Some v }, seen)
                | _ -> diags := err ~line "unknown key %S" k :: !diags)))
    (String.split_on_char '\n' src);
  commit ();
  (t, List.rev !diags)

(** Load and parse a registry file; a missing file is an empty registry
    (nothing grandfathered), an unreadable one is a parse error. *)
let load (path : string) : t * Analysis.Diag.t list =
  match open_in_bin path with
  | exception Sys_error _ -> (empty (), [])
  | ic ->
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse ~path src
