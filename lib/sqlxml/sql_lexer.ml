(** Lexer for the SQL/XML subset. Keywords are case-insensitive bare
    words; ["..."]-quoted identifiers preserve case (the paper's XMLTable
    COLUMNS use them); ['...']-quoted strings carry embedded XQuery. *)

type token =
  | Word of string  (** bare identifier / keyword, as written *)
  | QIdent of string  (** "quoted" identifier *)
  | Str of string  (** '...' string literal *)
  | Int of int64
  | Num of float
  | LPar
  | RPar
  | Comma
  | Dot
  | Semi
  | Star
  | Qmark  (** [?] — positional parameter marker *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

exception Sql_syntax_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Sql_syntax_error m)) fmt

type t = {
  src : string;
  mutable pos : int;
  mutable tok : token;
  mutable tok_start : int;  (** source offset where [tok] begins *)
}

(** Position of the current token as a line/column pair. *)
let token_pos (l : t) : Xdm.Srcloc.pos = Xdm.Srcloc.of_offset l.src l.tok_start

(** Raise a located syntax error with a caret snippet pointing at the
    given source offset. *)
let fail_at (l : t) (offset : int) fmt =
  Format.kasprintf
    (fun m ->
      let pos = Xdm.Srcloc.of_offset l.src offset in
      raise
        (Sql_syntax_error
           (Printf.sprintf "%s at %s\n%s" m (Xdm.Srcloc.to_string pos)
              (Xdm.Srcloc.caret_snippet l.src pos))))
    fmt

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'

let is_word_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_word_char c = is_word_start c || is_digit c || c = '-'

let peek l = if l.pos < String.length l.src then Some l.src.[l.pos] else None

let peek_at l k =
  if l.pos + k < String.length l.src then Some l.src.[l.pos + k] else None

let rec skip_trivia l =
  match peek l with
  | Some c when is_space c ->
      l.pos <- l.pos + 1;
      skip_trivia l
  | Some '-' when peek_at l 1 = Some '-' ->
      while peek l <> None && peek l <> Some '\n' do
        l.pos <- l.pos + 1
      done;
      skip_trivia l
  | _ -> ()

let next l =
  skip_trivia l;
  l.tok_start <- l.pos;
  let adv n = l.pos <- l.pos + n in
  let tok =
    match peek l with
    | None -> Eof
    | Some '(' -> adv 1; LPar
    | Some ')' -> adv 1; RPar
    | Some ',' -> adv 1; Comma
    | Some '.' -> adv 1; Dot
    | Some ';' -> adv 1; Semi
    | Some '*' -> adv 1; Star
    | Some '?' -> adv 1; Qmark
    | Some '=' -> adv 1; Eq
    | Some '<' ->
        if peek_at l 1 = Some '>' then begin adv 2; Ne end
        else if peek_at l 1 = Some '=' then begin adv 2; Le end
        else begin adv 1; Lt end
    | Some '>' ->
        if peek_at l 1 = Some '=' then begin adv 2; Ge end
        else begin adv 1; Gt end
    | Some '!' when peek_at l 1 = Some '=' -> adv 2; Ne
    | Some '\'' ->
        adv 1;
        let buf = Buffer.create 32 in
        let rec go () =
          match peek l with
          | None -> fail_at l l.tok_start "unterminated string literal"
          | Some '\'' when peek_at l 1 = Some '\'' ->
              Buffer.add_char buf '\'';
              adv 2;
              go ()
          | Some '\'' -> adv 1
          | Some c ->
              Buffer.add_char buf c;
              adv 1;
              go ()
        in
        go ();
        Str (Buffer.contents buf)
    | Some '"' ->
        adv 1;
        let start = l.pos in
        while peek l <> Some '"' && peek l <> None do
          adv 1
        done;
        if peek l = None then fail_at l l.tok_start "unterminated quoted identifier";
        let s = String.sub l.src start (l.pos - start) in
        adv 1;
        QIdent s
    | Some c when is_digit c ->
        let start = l.pos in
        while (match peek l with Some c -> is_digit c | None -> false) do
          adv 1
        done;
        let isfloat =
          match (peek l, peek_at l 1) with
          | Some '.', Some d when is_digit d ->
              adv 1;
              while (match peek l with Some c -> is_digit c | None -> false) do
                adv 1
              done;
              true
          | _ -> false
        in
        let isfloat =
          match peek l with
          | Some ('e' | 'E') ->
              adv 1;
              (match peek l with
              | Some ('+' | '-') -> adv 1
              | _ -> ());
              while (match peek l with Some c -> is_digit c | None -> false) do
                adv 1
              done;
              true
          | _ -> isfloat
        in
        let text = String.sub l.src start (l.pos - start) in
        if isfloat then Num (float_of_string text)
        else Int (Int64.of_string text)
    | Some c when is_word_start c ->
        let start = l.pos in
        while (match peek l with Some c -> is_word_char c | None -> false) do
          adv 1
        done;
        Word (String.sub l.src start (l.pos - start))
    | Some c -> fail_at l l.pos "unexpected character %C in SQL" c
  in
  l.tok <- tok

let init src =
  let l = { src; pos = 0; tok = Eof; tok_start = 0 } in
  next l;
  l

let token_to_string = function
  | Word w -> w
  | QIdent s -> "\"" ^ s ^ "\""
  | Str s -> "'" ^ s ^ "'"
  | Int i -> Int64.to_string i
  | Num f -> string_of_float f
  | LPar -> "("
  | RPar -> ")"
  | Comma -> ","
  | Dot -> "."
  | Semi -> ";"
  | Star -> "*"
  | Qmark -> "?"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eof -> "<eof>"
