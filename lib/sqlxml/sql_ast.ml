(** Abstract syntax for the SQL/XML subset.

    Covers everything the paper's Queries 5–16 and 23–30 use: SELECT /
    FROM / WHERE with joins, [XMLQuery], [XMLExists], [XMLTable] (PASSING,
    COLUMNS ... PATH, BY REF/VALUE), [XMLCast], [XMLElement] publishing,
    VALUES, and the DDL: CREATE TABLE, CREATE INDEX (relational and
    [USING XMLPATTERN ... AS type]), INSERT. *)

type sqltype = Storage.Sql_value.sqltype

(** An XQuery expression embedded in SQL, with its PASSING clause. The
    query text is parsed once at statement-parse time. *)
type xq_embed = {
  xq_src : string;
  xq_query : Xquery.Ast.query;
  xq_passing : (string * sexpr) list;  (** XQuery variable ← SQL expression *)
  xq_offset : int;
      (** offset of the embedded query's string literal in the SQL text
          (at the opening quote); positions inside [xq_src] map to the
          outer statement by adding [xq_offset + 1] *)
  xq_locs : Xquery.Ast.Locs.t;  (** positions of [xq_query]'s nodes *)
}

and sexpr =
  | SNull
  | SLitInt of int64
  | SLitDouble of float
  | SLitString of string
  | SCol of string option * string  (** qualifier (table/alias), column *)
  | SParam of int  (** [?] positional parameter, 0-based slot index *)
  | SXmlQuery of xq_embed
  | SXmlCast of sexpr * sqltype
  | SXmlElement of string * sexpr list
      (** XMLELEMENT(NAME n, content...) — simplified publishing *)
  | SAgg of agg * sexpr option
      (** aggregate; [None] argument means count-star *)

and agg = ACount | ASum | AAvg | AMin | AMax | AXmlAgg

type cmp = SEq | SNe | SLt | SLe | SGt | SGe

type cond =
  | CAnd of cond * cond
  | COr of cond * cond
  | CNot of cond
  | CCmp of cmp * sexpr * sexpr
  | CXmlExists of xq_embed
  | CIsNull of sexpr * bool  (** [IS NULL] (true) / [IS NOT NULL] (false) *)

type xt_col = {
  xc_name : string;
  xc_type : sqltype;
  xc_by_ref : bool;
  xc_path_src : string;
  xc_query : Xquery.Ast.query;
  xc_offset : int;  (** offset of the PATH literal in the SQL text *)
  xc_locs : Xquery.Ast.Locs.t;
}

type xmltable = {
  xt_embed : xq_embed;  (** the "row producer" *)
  xt_cols : xt_col list;
  xt_alias : string;
  xt_colnames : string list;  (** from [AS t(c1, ...)]; may rename *)
}

type table_ref =
  | TRTable of { name : string; alias : string }
  | TRXmlTable of xmltable

type sel_item = SelExpr of sexpr * string option | SelStar

type select = {
  sel_list : sel_item list;
  from : table_ref list;
  where : cond option;
  group_by : sexpr list;
  order_by : (sexpr * bool) list;  (** (key, ascending) *)
  limit : int option;  (** FETCH FIRST n ROWS ONLY *)
}

(** Does a select list contain aggregates? *)
let rec sexpr_has_agg = function
  | SAgg _ -> true
  | SXmlCast (e, _) -> sexpr_has_agg e
  | SXmlElement (_, args) -> List.exists sexpr_has_agg args
  | _ -> false

let has_aggregates (s : select) =
  s.group_by <> []
  || List.exists
       (function SelExpr (e, _) -> sexpr_has_agg e | SelStar -> false)
       s.sel_list

type stmt =
  | Select of select
  | Values of sexpr list
  | CreateTable of string * (string * sqltype) list
  | CreateXmlIndex of {
      ci_name : string;
      ci_table : string;
      ci_column : string;
      ci_pattern : string;
      ci_vtype : Xmlindex.Xindex.vtype;
    }
  | CreateRelIndex of { cr_name : string; cr_table : string; cr_column : string }
  | CreateStructIndex of {
      cs_name : string;
      cs_table : string;
      cs_column : string;
    }  (** CREATE STRUCTURAL INDEX: pre/post node-encoding table *)
  | Insert of string * sexpr list list
  | Update of {
      upd_table : string;
      upd_set : (string * sexpr) list;
      upd_where : cond option;
    }
  | Delete of { del_table : string; del_where : cond option }
  | Explain of stmt  (** EXPLAIN <select>: plan notes as rows *)
  | DropIndex of string

(** Flatten a WHERE condition into top-level conjuncts. *)
let rec conjuncts = function
  | CAnd (a, b) -> conjuncts a @ conjuncts b
  | c -> [ c ]
