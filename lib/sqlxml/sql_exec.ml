(** SQL/XML executor.

    Semantics deliberately faithful to the paper:

    - [XMLQuery] in a select list never eliminates rows (Query 5): empty
      results surface as empty sequences;
    - [XMLExists] tests *non-emptiness* — an embedded boolean expression
      makes it constantly true (Query 9);
    - [XMLTable]'s row producer drives the output cardinality (its
      predicates are index-eligible), while COLUMNS PATH expressions yield
      NULL on empty (Query 12) and never filter;
    - [XMLCast] demands a singleton and enforces VARCHAR lengths
      (Query 14/15 failure modes);
    - SQL comparisons use SQL typing (trailing-blank-insensitive strings),
      XQuery comparisons use XML Schema typing (Section 3.3).

    Index use: before iterating a base table the executor consults the
    eligibility analyzer for every XMLExists conjunct and XMLTable row
    producer that passes one of the table's XML columns, plus relational
    predicates — constants give a global restriction, bound outer rows
    give index nested-loop probes. *)

open Sql_ast
module SV = Storage.Sql_value
module P = Eligibility.Predicate

exception Sql_runtime_error of string

let rt_fail fmt = Format.kasprintf (fun m -> raise (Sql_runtime_error m)) fmt

type ctx = {
  db : Storage.Database.t;
  mutable xindexes : Xmlindex.Xindex.t list;
  mutable rindexes : Xmlindex.Rel_index.t list;
  mutable sindexes : Xmlindex.Structindex.t list;
  mutable use_indexes : bool;
  mutable notes : string list;  (** EXPLAIN trace of the last statement *)
  mutable used : string list;  (** indexes used by the last statement *)
  resolved : (string, Xquery.Ast.query) Hashtbl.t;
      (** memo: embedded query source → statically resolved query *)
  embed_plans : (string, (string * Xdm.Int_set.t) list) Hashtbl.t;
      (** per-statement memo: embed source → constant-plan restrictions *)
  mutable limits : Xdm.Limits.t;  (** resource budgets per statement *)
  mutable meter : Xdm.Limits.meter;
      (** the running statement's meter; fresh per [exec] so every
          embedded XQuery draws from one shared per-statement budget *)
  mutable params : SV.t array;
      (** positional [?] parameter values for the running statement,
          installed by the prepared-statement layer before [exec] *)
  mutable catalog_gen : int;
      (** generation counter bumped by every DDL / index / bulk-load
          change; compiled-plan caches embed it in their keys so catalog
          changes invalidate cached compilations *)
  mutable strict_static : bool;
      (** reject statically ill-typed statements before execution *)
  mutable static_check : (src:string -> Sql_ast.stmt -> unit) option;
      (** the checker run when [strict_static] is on; installed by the
          engine facade (the analyzer lives above this library) *)
  prof : Xprof.t;
      (** execution profile for the running statement; disabled unless
          the engine turns profiling on, in which case [exec] resets it
          at every statement start (same lifecycle as the meter) *)
  mutable parallelism : int;
      (** chunked-scan parallelism (1 = sequential); set through the
          engine facade together with the Xpar pool size *)
  memo_lock : Xpar.Lock.t;
      (** guards [resolved]/[embed_plans] when parallel scan chunks race
          to memoize an embedded query (no-op lock on the sequential
          backend) *)
  mutable txn_undo : Storage.Undo.t option;
      (** transaction-level undo sink: when set (engine read-write
          transactions), [exec] absorbs each committed statement's undo
          log here instead of discarding it, so the whole transaction
          can roll back in LIFO order *)
}

let create ?memo_lock db =
  let memo_lock =
    match memo_lock with
    | Some l -> l
    | None -> Xpar.Lock.create ~name:"sqlexec.memo" ()
  in
  {
    db;
    xindexes = [];
    rindexes = [];
    sindexes = [];
    use_indexes = true;
    notes = [];
    used = [];
    resolved = Hashtbl.create 32;
    embed_plans = Hashtbl.create 32;
    limits = Xdm.Limits.unlimited;
    meter = Xdm.Limits.meter ();
    params = [||];
    catalog_gen = 0;
    strict_static = false;
    static_check = None;
    prof = Xprof.create ();
    parallelism = 1;
    memo_lock;
    txn_undo = None;
  }

let note ctx fmt =
  Format.kasprintf (fun m -> ctx.notes <- m :: ctx.notes) fmt

let catalog ctx : Planner.catalog =
  { Planner.db = ctx.db; indexes = ctx.xindexes; sindexes = ctx.sindexes }

(* ------------------------------------------------------------------ *)
(* Accessors — the supported surface for callers (engine facade,       *)
(* shell); nothing outside this library should reach into [ctx]'s      *)
(* mutable fields directly.                                            *)
(* ------------------------------------------------------------------ *)

let database ctx = ctx.db
let xml_indexes ctx = ctx.xindexes
let rel_indexes ctx = ctx.rindexes
let struct_indexes ctx = ctx.sindexes
let use_indexes ctx = ctx.use_indexes
let set_use_indexes ctx b = ctx.use_indexes <- b
let limits ctx = ctx.limits
let set_limits ctx l = ctx.limits <- l

(** EXPLAIN trace of the last statement, oldest note first. *)
let last_notes ctx = List.rev ctx.notes

(** Indexes used by the last statement. *)
let last_used ctx = ctx.used

let profile ctx = ctx.prof
let strict_static ctx = ctx.strict_static
let set_strict_static ctx b = ctx.strict_static <- b
let set_static_check ctx f = ctx.static_check <- f
let static_check ctx = ctx.static_check
let catalog_gen ctx = ctx.catalog_gen
let parallelism ctx = ctx.parallelism

(** Set the chunked-scan parallelism (clamped to at least 1). The engine
    facade keeps this in sync with [Xpar.set_parallelism]. *)
let set_parallelism ctx n = ctx.parallelism <- max 1 n

(** Record a catalog change (DDL, index create/drop, bulk load) so cached
    compiled plans keyed on the old generation go stale. *)
let bump_catalog_gen ctx = ctx.catalog_gen <- ctx.catalog_gen + 1

(** Install the positional [?] parameter values for the next statement. *)
let set_params ctx ps = ctx.params <- ps

(** Install (or clear) the transaction-level undo sink; see [txn_undo]. *)
let set_txn_undo ctx u = ctx.txn_undo <- u

(** The memo lock, so the engine can share one lock across the ephemeral
    contexts it builds over MVCC snapshots (creating a named lock per
    context would grow the Lockorder tables without bound). *)
let memo_lock ctx = ctx.memo_lock

type result = { rcols : string list; rrows : SV.t list list }

(* ------------------------------------------------------------------ *)
(* Row environment                                                     *)
(* ------------------------------------------------------------------ *)

type frame = {
  f_alias : string;
  f_cols : string list;
  f_vals : SV.t array;
  f_row_id : int option;  (** base-table frames only *)
  f_table : string option;
}

exception Unbound of string

let env_lookup (env : frame list) (qual : string option) (col : string) : SV.t
    =
  let lc = String.lowercase_ascii in
  let matches f =
    match qual with
    | Some q -> lc f.f_alias = lc q
    | None -> true
  in
  let rec go = function
    | [] ->
        raise
          (Unbound
             (match qual with
             | Some q -> q ^ "." ^ col
             | None -> col))
    | f :: rest ->
        if matches f then
          (* hand-rolled find_index: List.find_index is OCaml >= 5.1 and
             CI also builds on 4.14 *)
          let rec idx i = function
            | [] -> None
            | c :: cs -> if lc c = lc col then Some i else idx (i + 1) cs
          in
          match idx 0 f.f_cols with
          | Some i -> f.f_vals.(i)
          | None -> go rest
        else go rest
  in
  go env

(* ------------------------------------------------------------------ *)
(* Embedded XQuery evaluation                                          *)
(* ------------------------------------------------------------------ *)

let resolved_query ctx (e : xq_embed) : Xquery.Ast.query =
  match Hashtbl.find_opt ctx.resolved e.xq_src with
  | Some q -> q
  | None ->
      let q =
        Xquery.Static.resolve
          ~external_vars:(List.map fst e.xq_passing)
          e.xq_query
      in
      Hashtbl.add ctx.resolved e.xq_src q;
      q

(** Analysis of an embedded query for eligibility purposes: which passing
    variables are XML columns of base tables, which are scalars. *)
let embed_analysis ?(mode = `Value) ctx
    (env_aliases : (string * string) list) (e : xq_embed) :
    P.t * (string * string) list =
  (* env_aliases: alias → table name, for resolving column references *)
  let xml_params = ref [] and scalar_params = ref [] in
  let var_alias = ref [] in
  List.iter
    (fun (var, se) ->
      match se with
      | SCol (qual, col) -> (
          let alias_table =
            match qual with
            | Some q ->
                List.find_opt
                  (fun (a, _) -> String.lowercase_ascii a = String.lowercase_ascii q)
                  env_aliases
            | None ->
                List.find_opt
                  (fun (_, t) ->
                    match Storage.Database.find_table ctx.db t with
                    | Some tbl -> Storage.Table.col_index tbl col <> None
                    | None -> false)
                  env_aliases
          in
          match alias_table with
          | None -> ()
          | Some (alias, tname) -> (
              match Storage.Database.find_table ctx.db tname with
              | None -> ()
              | Some tbl -> (
                  match Storage.Table.col_index tbl col with
                  | None -> ()
                  | Some i ->
                      let def = List.nth tbl.Storage.Table.cols i in
                      var_alias := (var, alias) :: !var_alias;
                      if def.Storage.Table.col_type = SV.TXml then
                        xml_params :=
                          (var, tname ^ "." ^ def.Storage.Table.col_name)
                          :: !xml_params
                      else
                        let aty =
                          match def.Storage.Table.col_type with
                          | SV.TInt -> Some Xdm.Atomic.TInteger
                          | SV.TDouble -> Some Xdm.Atomic.TDouble
                          | SV.TDecimal _ -> Some Xdm.Atomic.TDecimal
                          | SV.TVarchar _ -> Some Xdm.Atomic.TString
                          | SV.TDate -> Some Xdm.Atomic.TDate
                          | SV.TTimestamp -> Some Xdm.Atomic.TDateTime
                          | SV.TXml -> None
                        in
                        scalar_params := (var, aty) :: !scalar_params)))
      | _ -> ())
    e.xq_passing;
  let q = resolved_query ctx e in
  let tree =
    Eligibility.Extract.analyze ~xml_params:!xml_params
      ~scalar_params:!scalar_params ~mode q
  in
  (tree, !var_alias)

let atomic_of_sql (v : SV.t) : Xdm.Atomic.t option =
  match v with
  | SV.Null | SV.Xml _ -> None
  | SV.Int i -> Some (Xdm.Atomic.Integer i)
  | SV.Double f -> Some (Xdm.Atomic.Double f)
  | SV.Varchar s -> Some (Xdm.Atomic.Str s)
  | SV.Date d -> Some (Xdm.Atomic.Date d)
  | SV.Timestamp t -> Some (Xdm.Atomic.DateTime t)

(** Evaluate an embedded XQuery with PASSING values from the current row.
    The collection resolver is restricted by the embed's own
    constant-predicate plan (Definition 1 applied to the embed itself —
    this is what makes Query 6/7-style whole-column XQuery indexable). *)
let rec eval_embed ctx (env : frame list) (e : xq_embed) : Xdm.Item.seq =
  (* the resolve memo is shared across parallel scan chunks — serialize
     the find-or-add (the lock is a no-op on the sequential backend) *)
  let q = Xpar.Lock.with_lock ctx.memo_lock (fun () -> resolved_query ctx e) in
  let vars =
    List.map (fun (v, se) -> (v, SV.to_xdm (eval_sexpr ctx env se))) e.xq_passing
  in
  (* A per-row XML value passed into the embed is a document the engine
     must walk — charge it as a scan, so the SQL-side join formulations
     (Query 15-style XMLEXISTS over every row's document) profile as
     document scans even though they never touch the collection
     resolver. *)
  if ctx.prof.Xprof.on then
    List.iter
      (fun (_, seq) ->
        List.iter
          (function Xdm.Item.N _ -> Xprof.doc ctx.prof | Xdm.Item.A _ -> ())
          seq)
      vars;
  let resolver =
    if ctx.use_indexes then begin
      (* like [resolved], the embed-plan memo is shared across parallel
         scan chunks; the lock also serializes the planner's index
         probes (XISCAN spans on the indexes' shared profile) on the
         memo-miss path, so profiled parallel scans stay span-safe *)
      let restrictions =
        Xpar.Lock.with_lock ctx.memo_lock (fun () ->
            match Hashtbl.find_opt ctx.embed_plans e.xq_src with
            | Some r -> r
            | None ->
                let tree, _ = embed_analysis ctx [] e in
                let plan =
                  Xprof.spanned ctx.prof "PLAN" (fun () ->
                      Planner.plan ~prof:ctx.prof (catalog ctx) tree)
                in
                if plan.Planner.restrictions <> [] then begin
                  ctx.used <-
                    List.sort_uniq compare
                      (plan.Planner.indexes_used @ ctx.used);
                  List.iter (fun n -> note ctx "%s" n) plan.Planner.notes
                end;
                Hashtbl.add ctx.embed_plans e.xq_src plan.Planner.restrictions;
                plan.Planner.restrictions)
      in
      Storage.Database.resolver ~prof:ctx.prof ~restrict_to:restrictions ctx.db
    end
    else Storage.Database.resolver ~prof:ctx.prof ctx.db
  in
  let xctx =
    Xquery.Ctx.init ~resolver
      ~construction_preserve:
        q.Xquery.Ast.prolog.Xquery.Ast.construction_preserve
      ~meter:ctx.meter ~prof:ctx.prof ()
  in
  let xctx = Xquery.Ctx.bind_all xctx vars in
  Xprof.spanned ~rows:List.length ctx.prof "XMLQUERY" (fun () ->
      Xquery.Eval.eval xctx q.Xquery.Ast.body)

(* ------------------------------------------------------------------ *)
(* Scalar expression evaluation                                        *)
(* ------------------------------------------------------------------ *)

and eval_sexpr ctx (env : frame list) (e : sexpr) : SV.t =
  match e with
  | SNull -> SV.Null
  | SLitInt i -> SV.Int i
  | SLitDouble f -> SV.Double f
  | SLitString s -> SV.Varchar s
  | SCol (q, c) -> env_lookup env q c
  | SParam i ->
      if i < Array.length ctx.params then ctx.params.(i)
      else
        rt_fail "parameter ?%d is not bound (%d value%s supplied)" (i + 1)
          (Array.length ctx.params)
          (if Array.length ctx.params = 1 then "" else "s")
  | SAgg _ ->
      rt_fail "aggregate function used outside a grouped projection"
  | SXmlQuery embed -> SV.Xml (eval_embed ctx env embed)
  | SXmlCast (inner, ty) -> xmlcast ctx env inner ty
  | SXmlElement (name, args) ->
      let el = Xdm.Node.element (Xdm.Qname.make name) in
      List.iter
        (fun a ->
          match eval_sexpr ctx env a with
          | SV.Null -> ()
          | SV.Xml seq ->
              List.iter
                (function
                  | Xdm.Item.N n ->
                      Xdm.Node.append_child el (Xdm.Node.copy n)
                  | Xdm.Item.A at ->
                      Xdm.Node.append_child el
                        (Xdm.Node.text (Xdm.Atomic.string_value at)))
                seq
          | v -> Xdm.Node.append_child el (Xdm.Node.text (SV.to_display v)))
        args;
      SV.Xml [ Xdm.Item.N el ]

(** XMLCast: XML → SQL. Singleton-enforcing and length-checking — the
    paper's Query 14/15 failure modes are real runtime errors here. *)
and xmlcast ctx env (inner : sexpr) (ty : sqltype) : SV.t =
  let v = eval_sexpr ctx env inner in
  match v with
  | SV.Xml seq -> (
      match Xdm.Item.atomize seq with
      | [] -> SV.Null
      | [ a ] -> (
          let fail_cast () =
            rt_fail "XMLCAST: cannot cast %S to %s"
              (Xdm.Atomic.string_value a) (SV.type_name ty)
          in
          match ty with
          | SV.TInt -> (
              match Xdm.Atomic.cast_opt a Xdm.Atomic.TInteger with
              | Some (Xdm.Atomic.Integer i) -> SV.Int i
              | _ -> fail_cast ())
          | SV.TDouble | SV.TDecimal _ -> (
              match Xdm.Atomic.cast_opt a Xdm.Atomic.TDouble with
              | Some (Xdm.Atomic.Double f) -> SV.Double f
              | _ -> fail_cast ())
          | SV.TVarchar n ->
              let s = Xdm.Atomic.string_value a in
              if String.length s > n then
                rt_fail
                  "XMLCAST: value %S too long for VARCHAR(%d)" s n
              else SV.Varchar s
          | SV.TDate -> (
              match Xdm.Atomic.cast_opt a Xdm.Atomic.TDate with
              | Some (Xdm.Atomic.Date d) -> SV.Date d
              | _ -> fail_cast ())
          | SV.TTimestamp -> (
              match Xdm.Atomic.cast_opt a Xdm.Atomic.TDateTime with
              | Some (Xdm.Atomic.DateTime t) -> SV.Timestamp t
              | _ -> fail_cast ())
          | SV.TXml -> v)
      | _ ->
          rt_fail
            "XMLCAST: sequence of more than one item (XPTY0004-style type \
             error)")
  | v -> SV.coerce ty v

(* ------------------------------------------------------------------ *)
(* Conditions (three-valued logic)                                     *)
(* ------------------------------------------------------------------ *)

and eval_cond ctx env (c : cond) : bool option =
  match c with
  | CAnd (a, b) -> (
      match (eval_cond ctx env a, eval_cond ctx env b) with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | COr (a, b) -> (
      match (eval_cond ctx env a, eval_cond ctx env b) with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)
  | CNot a -> Option.map not (eval_cond ctx env a)
  | CCmp (op, a, b) -> (
      let va = eval_sexpr ctx env a and vb = eval_sexpr ctx env b in
      match SV.compare_sql va vb with
      | None -> None
      | Some c ->
          Some
            (match op with
            | SEq -> c = 0
            | SNe -> c <> 0
            | SLt -> c < 0
            | SLe -> c <= 0
            | SGt -> c > 0
            | SGe -> c >= 0))
  | CXmlExists embed ->
      (* non-emptiness — a boolean result is still one item (Query 9) *)
      Some (eval_embed ctx env embed <> [])
  | CIsNull (e, want_null) ->
      let v = eval_sexpr ctx env e in
      Some (if want_null then v = SV.Null else v <> SV.Null)

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

(** One prepared restriction source: an embedded query whose predicate
    tree can restrict the rows of base-table aliases. *)
type restriction_src = {
  rs_tree : P.t;
  rs_var_alias : (string * string) list;  (** XQuery var → SQL alias *)
  rs_embed : xq_embed;
  rs_origin : string;
}

let prepare_restrictions ctx (s : select) : restriction_src list =
  let env_aliases =
    List.filter_map
      (function
        | TRTable { name; alias } -> Some (alias, name)
        | TRXmlTable _ -> None)
      s.from
  in
  let srcs = ref [] in
  let add_embed ?mode origin e =
    let tree, var_alias = embed_analysis ?mode ctx env_aliases e in
    if tree <> P.PTrue then
      srcs :=
        { rs_tree = tree; rs_var_alias = var_alias; rs_embed = e; rs_origin = origin }
        :: !srcs
  in
  (match s.where with
  | Some w ->
      List.iter
        (function
          | CXmlExists e -> add_embed ~mode:`Exists "XMLEXISTS" e
          | _ -> ())
        (conjuncts w)
  | None -> ());
  List.iter
    (function
      | TRXmlTable xt -> add_embed ~mode:`Exists "XMLTABLE row-producer" xt.xt_embed
      | TRTable _ -> ())
    s.from;
  List.rev !srcs

let flip_cmp = function
  | SEq -> SEq
  | SNe -> SNe
  | SLt -> SGt
  | SLe -> SGe
  | SGt -> SLt
  | SGe -> SLe

(** Restriction of base table [alias] (table [t]) given the current outer
    bindings: intersect restrictions from every applicable source. *)
let table_restriction ctx (srcs : restriction_src list)
    (rel_conjuncts : cond list) (env : frame list) ~(alias : string)
    (t : Storage.Table.t) : Xdm.Int_set.t option =
  if not ctx.use_indexes then None
  else begin
    let lc = String.lowercase_ascii in
    let acc = ref None in
    let add r =
      acc :=
        Some
          (match !acc with None -> r | Some prev -> Xdm.Int_set.inter prev r)
    in
    (* XML restrictions from embedded queries *)
    List.iter
      (fun src ->
        (* does this source constrain a collection of [t] passed from
           [alias]? *)
        let collections =
          List.sort_uniq compare (P.collections src.rs_tree)
        in
        List.iter
          (fun coll ->
            match Storage.Database.split_colref coll with
            | Some (tn, _) when lc tn = lc t.Storage.Table.name ->
                (* the variable that passes this collection must come from
                   our alias *)
                let from_our_alias =
                  List.exists
                    (fun (var, a) ->
                      lc a = lc alias
                      &&
                      match
                        List.assoc_opt var src.rs_embed.xq_passing
                      with
                      | Some _ -> true
                      | None -> false)
                    src.rs_var_alias
                in
                if from_our_alias then begin
                  (* bind scalar/xml parameters available from outer rows *)
                  let params, xml_bindings =
                    List.fold_left
                      (fun (ps, xs) (var, a) ->
                        if lc a = lc alias then (ps, xs)
                        else
                          match
                            List.assoc_opt var src.rs_embed.xq_passing
                          with
                          | Some se -> (
                              match eval_sexpr ctx env se with
                              | exception Unbound _ -> (ps, xs)
                              | SV.Xml seq -> (ps, (var, seq) :: xs)
                              | v -> (
                                  match atomic_of_sql v with
                                  | Some a -> ((var, a) :: ps, xs)
                                  | None -> (ps, xs)))
                          | None -> (ps, xs))
                      ([], []) src.rs_var_alias
                  in
                  let r, notes, used =
                    Planner.restrict_collection ~params ~xml_bindings
                      ~prof:ctx.prof (catalog ctx) src.rs_tree coll
                  in
                  List.iter (fun n -> note ctx "%s" n) notes;
                  ctx.used <- List.sort_uniq compare (used @ ctx.used);
                  match r with
                  | Some rows ->
                      note ctx "%s restricts %s (%s) to %d rows"
                        src.rs_origin alias coll (Xdm.Int_set.cardinal rows);
                      add rows
                  | None -> ()
                end
            | _ -> ())
          collections)
      srcs;
    (* relational restrictions *)
    List.iter
      (fun c ->
        match c with
        | CCmp (op, a, b) ->
            let try_side col_side other flip_op =
              match col_side with
              | SCol (qual, col)
                when (match qual with
                     | Some q -> lc q = lc alias
                     | None -> Storage.Table.col_index t col <> None) -> (
                  match
                    List.find_opt
                      (fun (ri : Xmlindex.Rel_index.t) ->
                        lc ri.Xmlindex.Rel_index.table
                        = lc t.Storage.Table.name
                        && lc ri.Xmlindex.Rel_index.column = lc col)
                      ctx.rindexes
                  with
                  | None -> ()
                  | Some ri -> (
                      match eval_sexpr ctx env other with
                      | exception Unbound _ -> ()
                      | exception Sql_runtime_error _ -> ()
                      | SV.Null -> add Xdm.Int_set.empty
                      | v -> (
                          let op = if flip_op then flip_cmp op else op in
                          let probe lo hi =
                            Xmlindex.Rel_index.probe ri ~lo ~hi
                          in
                          let rows =
                            match op with
                            | SEq -> Some (Xmlindex.Rel_index.probe_eq ri v)
                            | SLt -> Some (probe None (Some (v, false)))
                            | SLe -> Some (probe None (Some (v, true)))
                            | SGt -> Some (probe (Some (v, false)) None)
                            | SGe -> Some (probe (Some (v, true)) None)
                            | SNe -> None
                          in
                          match rows with
                          | Some rows ->
                              ctx.used <-
                                List.sort_uniq compare
                                  (ri.Xmlindex.Rel_index.iname :: ctx.used);
                              note ctx
                                "  RELSCAN %s on %s.%s → %d rows"
                                ri.Xmlindex.Rel_index.iname alias col
                                (Xdm.Int_set.cardinal rows);
                              add rows
                          | None -> ())))
              | _ -> ()
            in
            try_side a b false;
            try_side b a true
        | _ -> ())
      rel_conjuncts;
    !acc
  end

(** Convert an XMLTable column value. XML columns keep node references
    ([BY REF]) or copies ([BY VALUE]); others cast with empty → NULL
    (Query 12: a failed column predicate NULLs the cell, never drops the
    row). *)
let xmltable_column ctx (item : Xdm.Item.t) (col : xt_col) : SV.t =
  let q =
    match Hashtbl.find_opt ctx.resolved ("xtcol:" ^ col.xc_path_src) with
    | Some q -> q
    | None ->
        let q = Xquery.Static.resolve col.xc_query in
        Hashtbl.add ctx.resolved ("xtcol:" ^ col.xc_path_src) q;
        q
  in
  let resolver = Storage.Database.resolver ~prof:ctx.prof ctx.db in
  let xctx =
    Xquery.Ctx.init ~resolver ~meter:ctx.meter ~prof:ctx.prof ()
  in
  let xctx = Xquery.Ctx.with_focus xctx item 1 1 in
  let seq = Xquery.Eval.eval xctx q.Xquery.Ast.body in
  match col.xc_type with
  | SV.TXml ->
      if seq = [] then SV.Null
      else if col.xc_by_ref then SV.Xml seq
      else
        SV.Xml
          (List.map
             (function
               | Xdm.Item.N n -> Xdm.Item.N (Xdm.Node.copy n)
               | a -> a)
             seq)
  | ty -> (
      match Xdm.Item.atomize seq with
      | [] -> SV.Null
      | [ a ] -> (
          let cast_to t k =
            match Xdm.Atomic.cast_opt a t with
            | Some v -> k v
            | None ->
                rt_fail "XMLTABLE column %s: cannot cast %S" col.xc_name
                  (Xdm.Atomic.string_value a)
          in
          match ty with
          | SV.TInt ->
              cast_to Xdm.Atomic.TInteger (function
                | Xdm.Atomic.Integer i -> SV.Int i
                | _ -> assert false)
          | SV.TDouble | SV.TDecimal _ ->
              cast_to Xdm.Atomic.TDouble (function
                | Xdm.Atomic.Double f -> SV.Double f
                | _ -> assert false)
          | SV.TVarchar n ->
              let s = Xdm.Atomic.string_value a in
              if String.length s > n then
                rt_fail "XMLTABLE column %s: value too long for VARCHAR(%d)"
                  col.xc_name n
              else SV.Varchar s
          | SV.TDate ->
              cast_to Xdm.Atomic.TDate (function
                | Xdm.Atomic.Date d -> SV.Date d
                | _ -> assert false)
          | SV.TTimestamp ->
              cast_to Xdm.Atomic.TDateTime (function
                | Xdm.Atomic.DateTime t -> SV.Timestamp t
                | _ -> assert false)
          | SV.TXml -> assert false)
      | _ -> rt_fail "XMLTABLE column %s: more than one item" col.xc_name)

(** Static column check: every column reference in the statement must
    resolve against the FROM list (so "SELECT nosuch FROM t" fails even on
    an empty table). *)
let check_columns ctx (s : select) : unit =
  let lc = String.lowercase_ascii in
  let frames =
    List.map
      (function
        | TRTable { name; alias } ->
            let t = Storage.Database.table_exn ctx.db name in
            ( alias,
              List.map (fun (c : Storage.Table.col_def) -> c.Storage.Table.col_name)
                t.Storage.Table.cols )
        | TRXmlTable xt ->
            ( xt.xt_alias,
              if xt.xt_colnames <> [] then xt.xt_colnames
              else List.map (fun c -> c.xc_name) xt.xt_cols ))
      s.from
  in
  let resolves qual col =
    List.exists
      (fun (alias, cols) ->
        (match qual with Some q -> lc q = lc alias | None -> true)
        && List.exists (fun c -> lc c = lc col) cols)
      frames
  in
  let rec walk_sexpr = function
    | SCol (q, c) ->
        if not (resolves q c) then
          rt_fail "unknown column %s"
            (match q with Some q -> q ^ "." ^ c | None -> c)
    | SXmlQuery e -> List.iter (fun (_, se) -> walk_sexpr se) e.xq_passing
    | SXmlCast (e, _) -> walk_sexpr e
    | SXmlElement (_, args) -> List.iter walk_sexpr args
    | SAgg (_, arg) -> Option.iter walk_sexpr arg
    | SNull | SLitInt _ | SLitDouble _ | SLitString _ | SParam _ -> ()
  in
  let rec walk_cond = function
    | CAnd (a, b) | COr (a, b) ->
        walk_cond a;
        walk_cond b
    | CNot a -> walk_cond a
    | CCmp (_, a, b) ->
        walk_sexpr a;
        walk_sexpr b
    | CXmlExists e -> List.iter (fun (_, se) -> walk_sexpr se) e.xq_passing
    | CIsNull (e, _) -> walk_sexpr e
  in
  List.iter
    (function SelExpr (e, _) -> walk_sexpr e | SelStar -> ())
    s.sel_list;
  List.iter
    (function
      | TRXmlTable xt ->
          List.iter (fun (_, se) -> walk_sexpr se) xt.xt_embed.xq_passing
      | TRTable _ -> ())
    s.from;
  Option.iter walk_cond s.where

type grow = GRow of SV.t list | GEnv of frame list

(** Output column names of a SELECT ([*] expanded against the catalog). *)
let select_columns ctx (s : select) : string list =
  List.concat_map
    (function
      | SelStar ->
          List.concat_map
            (function
              | TRTable { name; alias = _ } ->
                  let t = Storage.Database.table_exn ctx.db name in
                  List.map
                    (fun (c : Storage.Table.col_def) -> c.Storage.Table.col_name)
                    t.Storage.Table.cols
              | TRXmlTable xt ->
                  if xt.xt_colnames <> [] then xt.xt_colnames
                  else List.map (fun c -> c.xc_name) xt.xt_cols)
            s.from
      | SelExpr (e, alias) ->
          [
            (match (alias, e) with
            | Some a, _ -> a
            | None, SCol (_, c) -> c
            | None, _ -> "?column?");
          ])
    s.sel_list

let rec exec_select ctx (s : select) : result =
  ctx.notes <- [];
  ctx.used <- [];
  check_columns ctx s;
  let grouped = has_aggregates s in
  let srcs = prepare_restrictions ctx s in
  let rel_conjuncts =
    match s.where with Some w -> conjuncts w | None -> []
  in
  let out = ref [] in
  (* [emit] finishes one joined row environment; it takes the context
     and accumulator explicitly so parallel scan chunks can run it
     against a forked meter / private profile / private note lists. *)
  let emit ectx eout (env : frame list) =
    let keep =
      match s.where with
      | None -> true
      | Some w -> eval_cond ectx env w = Some true
    in
    if keep then
      if grouped then eout := ([], [ GEnv env ]) :: !eout
      else
        let keys =
          List.map (fun (e, asc) -> (eval_sexpr ectx env e, asc)) s.order_by
        in
        eout := (keys, [ GRow (project ectx env s.sel_list) ]) :: !eout
  in
  (* Partitioned scan: contiguous row chunks, per-chunk predicate and
     projection evaluation, order-preserving merge — so the produced
     rows, notes and index-use sets are identical to a sequential scan
     (chunk = contiguous row range; see docs/PARALLELISM.md). Only the
     innermost position of a single-table FROM is partitioned, so
     chunks never recurse into [loop]. *)
  let parallel_scan ~alias ~name (t : Storage.Table.t) rows =
    let cols =
      List.map (fun c -> c.Storage.Table.col_name) t.Storage.Table.cols
    in
    let profiled = ctx.prof.Xprof.on in
    let slots =
      Xpar.map_chunks ~parallelism:ctx.parallelism
        (fun _ chunk ->
          let prof =
            if profiled then begin
              let p = Xprof.create () in
              Xprof.enable p true;
              p
            end
            else Xprof.disabled
          in
          let cctx =
            {
              ctx with
              meter = Xdm.Limits.fork ctx.meter;
              prof;
              notes = [];
              used = [];
            }
          in
          let cout = ref [] in
          Array.iter
            (fun (r : Storage.Table.row) ->
              Xdm.Limits.tick cctx.meter;
              Xprof.row cctx.prof;
              let frame =
                {
                  f_alias = alias;
                  f_cols = cols;
                  f_vals = r.Storage.Table.values;
                  f_row_id = Some r.Storage.Table.row_id;
                  f_table = Some name;
                }
              in
              emit cctx cout [ frame ])
            chunk;
          (cctx, List.rev !cout))
        (Array.of_list rows)
    in
    Xprof.par ctx.prof ~chunks:(Array.length slots);
    let err = ref None in
    let merged =
      Array.fold_left
        (fun acc slot ->
          match slot with
          | Ok (cctx, fwd) ->
              if profiled then Xprof.absorb ~into:ctx.prof cctx.prof;
              ctx.notes <- cctx.notes @ ctx.notes;
              if cctx.used <> [] then
                ctx.used <- List.sort_uniq compare (cctx.used @ ctx.used);
              fwd :: acc
          | Error e ->
              if Option.is_none !err then err := Some e;
              acc)
        [] slots
    in
    (match !err with Some e -> raise e | None -> ());
    out := List.rev_append (List.concat (List.rev merged)) !out
  in
  let rec loop (env : frame list) = function
    | [] -> emit ctx out env
    | TRTable { name; alias } :: rest ->
        let t = Storage.Database.table_exn ctx.db name in
        let restriction =
          table_restriction ctx srcs rel_conjuncts env ~alias t
        in
        let rows = Storage.Table.rows t in
        let rows =
          match restriction with
          | None -> rows
          | Some keep ->
              List.filter
                (fun (r : Storage.Table.row) ->
                  Xdm.Int_set.mem r.Storage.Table.row_id keep)
                rows
        in
        let many = match rows with _ :: _ :: _ -> true | _ -> false in
        if rest = [] && env = [] && ctx.parallelism > 1 && many then
          Xprof.spanned ctx.prof ("SCAN " ^ alias) (fun () ->
              parallel_scan ~alias ~name t rows)
        else
          Xprof.spanned ctx.prof ("SCAN " ^ alias) (fun () ->
              List.iter
                (fun (r : Storage.Table.row) ->
                  Xdm.Limits.tick ctx.meter;
                  Xprof.row ctx.prof;
                  let frame =
                    {
                      f_alias = alias;
                      f_cols =
                        List.map
                          (fun c -> c.Storage.Table.col_name)
                          t.Storage.Table.cols;
                      f_vals = r.Storage.Table.values;
                      f_row_id = Some r.Storage.Table.row_id;
                      f_table = Some name;
                    }
                  in
                  loop (frame :: env) rest)
                rows)
    | TRXmlTable xt :: rest ->
        let items = eval_embed ctx env xt.xt_embed in
        let colnames =
          if xt.xt_colnames <> [] then xt.xt_colnames
          else List.map (fun c -> c.xc_name) xt.xt_cols
        in
        Xprof.spanned ctx.prof ("XMLTABLE " ^ xt.xt_alias) (fun () ->
            List.iter
              (fun item ->
                Xdm.Limits.tick ctx.meter;
                Xprof.row ctx.prof;
                let vals =
                  Array.of_list
                    (List.map (fun c -> xmltable_column ctx item c) xt.xt_cols)
                in
                let frame =
                  {
                    f_alias = xt.xt_alias;
                    f_cols = colnames;
                    f_vals = vals;
                    f_row_id = None;
                    f_table = None;
                  }
                in
                loop (frame :: env) rest)
              items)
  in
  loop [] s.from;
  let cols = select_columns ctx s in
  let rows = List.rev !out in
  (* Grouped projection: partition captured environments by GROUP BY key
     values, then evaluate the select list once per group (aggregates over
     the group's environments, other expressions on a representative). *)
  let rows =
    if not grouped then
      List.map
        (fun (k, g) ->
          match g with [ GRow r ] -> (k, r) | _ -> assert false)
        rows
    else begin
      let envs =
        List.map
          (fun (_, g) -> match g with [ GEnv e ] -> e | _ -> assert false)
          rows
      in
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun env ->
          let key = List.map (fun e -> eval_sexpr ctx env e) s.group_by in
          let kstr = String.concat "\x00" (List.map SV.to_display key) in
          (match Hashtbl.find_opt groups kstr with
          | Some l -> l := env :: !l
          | None ->
              Hashtbl.add groups kstr (ref [ env ]);
              order := kstr :: !order))
        envs;
      List.rev_map
        (fun kstr ->
          let genvs = List.rev !(Hashtbl.find groups kstr) in
          let rep = List.hd genvs in
          let row = project_grouped ctx genvs rep s.sel_list in
          let okeys =
            List.map
              (fun (e, asc) ->
                ((if sexpr_has_agg e then eval_agg ctx genvs rep e
                  else eval_sexpr ctx rep e),
                  asc))
              s.order_by
          in
          (okeys, row))
        !order
    end
  in
  let rows =
    if s.order_by = [] then rows
    else
      Xprof.spanned
        ~rows:(fun r -> List.length r)
        ctx.prof "SORT"
        (fun () ->
          List.stable_sort
            (fun (ka, _) (kb, _) ->
              let rec go = function
                | [] -> 0
                | ((va, asc), (vb, _)) :: rest -> (
                    (* SQL: NULLs sort last ascending *)
                    let c =
                      match (va, vb) with
                      | SV.Null, SV.Null -> 0
                      | SV.Null, _ -> 1
                      | _, SV.Null -> -1
                      | _ -> (
                          match SV.compare_sql va vb with
                          | Some c -> c
                          | None -> 0)
                    in
                    let c = if asc then c else -c in
                    if c <> 0 then c else go rest)
              in
              go (List.combine ka kb))
            rows)
  in
  let rows =
    match s.limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { rcols = cols; rrows = List.map snd rows }

and eval_agg ctx (genvs : frame list list) (rep : frame list) (e : sexpr) :
    SV.t =
  match e with
  | SAgg (agg, arg) -> (
      let vals =
        match arg with
        | None -> List.map (fun _ -> SV.Int 1L) genvs
        | Some a ->
            List.filter_map
              (fun env ->
                match eval_sexpr ctx env a with
                | SV.Null -> None
                | v -> Some v)
              genvs
      in
      match agg with
      | ACount -> SV.Int (Int64.of_int (List.length vals))
      | ASum | AAvg -> (
          let total =
            List.fold_left
              (fun acc v ->
                match (acc, v) with
                | SV.Null, v -> v
                | acc, SV.Int i -> (
                    match acc with
                    | SV.Int a -> SV.Int (Int64.add a i)
                    | SV.Double a -> SV.Double (a +. Int64.to_float i)
                    | _ -> rt_fail "SUM over non-numeric values")
                | acc, SV.Double f -> (
                    match acc with
                    | SV.Int a -> SV.Double (Int64.to_float a +. f)
                    | SV.Double a -> SV.Double (a +. f)
                    | _ -> rt_fail "SUM over non-numeric values")
                | _ -> rt_fail "SUM over non-numeric values")
              SV.Null vals
          in
          match (agg, total) with
          | ASum, t -> t
          | AAvg, SV.Null -> SV.Null
          | AAvg, SV.Int a ->
              SV.Double (Int64.to_float a /. float_of_int (List.length vals))
          | AAvg, SV.Double a ->
              SV.Double (a /. float_of_int (List.length vals))
          | _ -> assert false)
      | AXmlAgg ->
          (* XMLAGG: concatenate the group's XML values into one sequence *)
          SV.Xml
            (List.concat_map
               (function SV.Xml seq -> seq | _ -> [])
               vals)
      | AMin | AMax ->
          List.fold_left
            (fun acc v ->
              match acc with
              | SV.Null -> v
              | acc -> (
                  match SV.compare_sql v acc with
                  | Some c ->
                      if (agg = AMin && c < 0) || (agg = AMax && c > 0) then v
                      else acc
                  | None -> acc))
            SV.Null vals)
  | SXmlCast (inner, ty) -> (
      match eval_agg ctx genvs rep inner with
      | SV.Null -> SV.Null
      | v -> SV.coerce ty v)
  | e -> eval_sexpr ctx rep e

and project_grouped ctx (genvs : frame list list) (rep : frame list)
    (items : sel_item list) : SV.t list =
  List.concat_map
    (function
      | SelStar -> List.concat_map (fun f -> Array.to_list f.f_vals) (List.rev rep)
      | SelExpr (e, _) -> [ eval_agg ctx genvs rep e ])
    items

and project ctx (env : frame list) (items : sel_item list) : SV.t list =
  List.concat_map
    (function
      | SelStar ->
          List.concat_map (fun f -> Array.to_list f.f_vals) (List.rev env)
      | SelExpr (e, _) -> [ eval_sexpr ctx env e ])
    items

(* ------------------------------------------------------------------ *)
(* Streaming SELECT                                                    *)
(* ------------------------------------------------------------------ *)

(** Lazy row production for a streamable SELECT (no grouping, no ORDER
    BY). Rows surface as the consumer pulls them, so the resource meter is
    charged incrementally — a cursor closed after the first row never pays
    for the rest of the scan. Column checking and restriction planning
    still happen eagerly, so catalog errors raise at open time. *)
let select_seq ctx (s : select) : SV.t list Seq.t =
  ctx.notes <- [];
  ctx.used <- [];
  check_columns ctx s;
  let srcs = prepare_restrictions ctx s in
  let rel_conjuncts =
    match s.where with Some w -> conjuncts w | None -> []
  in
  let rec envs (env : frame list) (from : table_ref list) : frame list Seq.t =
    match from with
    | [] ->
        let keep =
          match s.where with
          | None -> true
          | Some w -> eval_cond ctx env w = Some true
        in
        if keep then Seq.return env else Seq.empty
    | TRTable { name; alias } :: rest ->
        fun () ->
          let t = Storage.Database.table_exn ctx.db name in
          let restriction =
            table_restriction ctx srcs rel_conjuncts env ~alias t
          in
          let rows = Storage.Table.rows t in
          let rows =
            match restriction with
            | None -> rows
            | Some keep ->
                List.filter
                  (fun (r : Storage.Table.row) ->
                    Xdm.Int_set.mem r.Storage.Table.row_id keep)
                  rows
          in
          let cols =
            List.map
              (fun (c : Storage.Table.col_def) -> c.Storage.Table.col_name)
              t.Storage.Table.cols
          in
          Seq.concat_map
            (fun (r : Storage.Table.row) () ->
              Xdm.Limits.tick ctx.meter;
              Xprof.row ctx.prof;
              let frame =
                {
                  f_alias = alias;
                  f_cols = cols;
                  f_vals = r.Storage.Table.values;
                  f_row_id = Some r.Storage.Table.row_id;
                  f_table = Some name;
                }
              in
              envs (frame :: env) rest ())
            (List.to_seq rows) ()
    | TRXmlTable xt :: rest ->
        fun () ->
          let items = eval_embed ctx env xt.xt_embed in
          let colnames =
            if xt.xt_colnames <> [] then xt.xt_colnames
            else List.map (fun c -> c.xc_name) xt.xt_cols
          in
          Seq.concat_map
            (fun item () ->
              Xdm.Limits.tick ctx.meter;
              Xprof.row ctx.prof;
              let vals =
                Array.of_list
                  (List.map (fun c -> xmltable_column ctx item c) xt.xt_cols)
              in
              let frame =
                {
                  f_alias = xt.xt_alias;
                  f_cols = colnames;
                  f_vals = vals;
                  f_row_id = None;
                  f_table = None;
                }
              in
              envs (frame :: env) rest ())
            (List.to_seq items) ()
  in
  let rows = Seq.map (fun env -> project ctx env s.sel_list) (envs [] s.from) in
  match s.limit with None -> rows | Some n -> Seq.take n rows

(* ------------------------------------------------------------------ *)
(* DDL / DML / entry point                                             *)
(* ------------------------------------------------------------------ *)

(** Wire the maintenance hooks of an XML index into its table; shared by
    CREATE INDEX (which follows with a backfill) and snapshot recovery
    (where the tree was bulk-loaded already). Returns the table, its
    path table and the column's document extractor for the backfill. *)
let wire_xml_index_hooks ctx (idx : Xmlindex.Xindex.t) =
  let d = idx.Xmlindex.Xindex.def in
  let t = Storage.Database.table_exn ctx.db d.Xmlindex.Xindex.table in
  let coli = Storage.Table.col_index_exn t d.Xmlindex.Xindex.column in
  let pt = Storage.Table.path_table_exn t d.Xmlindex.Xindex.column in
  let docs_of (r : Storage.Table.row) =
    match r.Storage.Table.values.(coli) with
    | SV.Xml seq ->
        List.filter_map
          (function Xdm.Item.N n -> Some n | Xdm.Item.A _ -> None)
          seq
    | _ -> []
  in
  Storage.Table.add_hook t
    {
      on_insert =
        (fun r ->
          List.iter
            (Xmlindex.Xindex.insert_doc idx pt ~row:r.Storage.Table.row_id)
            (docs_of r));
      on_delete =
        (fun r ->
          List.iter
            (Xmlindex.Xindex.delete_doc idx pt ~row:r.Storage.Table.row_id)
            (docs_of r));
    };
  (t, pt, docs_of)

(** Attach an already-populated XML index (snapshot recovery): wire hooks
    and register it in the catalog, with no backfill. *)
let attach_xml_index ctx (idx : Xmlindex.Xindex.t) : unit =
  ignore (wire_xml_index_hooks ctx idx);
  ctx.xindexes <- idx :: ctx.xindexes;
  bump_catalog_gen ctx

(** Wire index maintenance hooks for a new XML index and backfill it from
    existing rows. *)
let install_xml_index ctx (d : Xmlindex.Xindex.def) : Xmlindex.Xindex.t =
  let idx = Xmlindex.Xindex.create ~prof:ctx.prof d in
  let t, pt, docs_of = wire_xml_index_hooks ctx idx in
  (* Bulk backfill. With parallelism the pure compute half (pattern
     matching + typed-value casts) runs in contiguous row chunks; the
     mutating half (path-table interning, B+Tree inserts) is applied
     single-threaded in row order, so the resulting tree — and undo-log
     atomicity for the enclosing statement — are identical to a
     sequential build. *)
  let backfill = Storage.Table.rows t in
  let many = match backfill with _ :: _ :: _ -> true | _ -> false in
  if ctx.parallelism > 1 && many then begin
    let computed =
      Xpar.map_chunks ~parallelism:ctx.parallelism
        (fun _ chunk ->
          Array.map
            (fun (r : Storage.Table.row) ->
              ( r.Storage.Table.row_id,
                List.map (Xmlindex.Xindex.doc_entries idx) (docs_of r) ))
            chunk)
        (Array.of_list backfill)
    in
    Xprof.par ctx.prof ~chunks:(Array.length computed);
    Array.iter
      (fun chunk ->
        Array.iter
          (fun (row, per_doc) ->
            List.iter (Xmlindex.Xindex.insert_entries idx pt ~row) per_doc)
          chunk)
      (Xpar.join computed)
  end
  else
    List.iter
      (fun (r : Storage.Table.row) ->
        List.iter
          (Xmlindex.Xindex.insert_doc idx pt ~row:r.Storage.Table.row_id)
          (docs_of r))
      backfill;
  ctx.xindexes <- idx :: ctx.xindexes;
  idx

let wire_rel_index_hooks ctx (ri : Xmlindex.Rel_index.t) =
  let t = Storage.Database.table_exn ctx.db ri.Xmlindex.Rel_index.table in
  let coli = Storage.Table.col_index_exn t ri.Xmlindex.Rel_index.column in
  Storage.Table.add_hook t
    {
      on_insert =
        (fun r ->
          Xmlindex.Rel_index.insert ri ~row:r.Storage.Table.row_id
            r.Storage.Table.values.(coli));
      on_delete =
        (fun r ->
          ignore
            (Xmlindex.Rel_index.delete ri ~row:r.Storage.Table.row_id
               r.Storage.Table.values.(coli)));
    };
  (t, coli)

(** Attach an already-populated relational index (snapshot recovery). *)
let attach_rel_index ctx (ri : Xmlindex.Rel_index.t) : unit =
  ignore (wire_rel_index_hooks ctx ri);
  ctx.rindexes <- ri :: ctx.rindexes;
  bump_catalog_gen ctx

let install_rel_index ctx ~iname ~table ~column : Xmlindex.Rel_index.t =
  let ri = Xmlindex.Rel_index.create ~prof:ctx.prof ~iname ~table ~column () in
  let t, coli = wire_rel_index_hooks ctx ri in
  List.iter
    (fun (r : Storage.Table.row) ->
      Xmlindex.Rel_index.insert ri ~row:r.Storage.Table.row_id
        r.Storage.Table.values.(coli))
    (Storage.Table.rows t);
  ctx.rindexes <- ri :: ctx.rindexes;
  ri

(** Wire the maintenance hooks of a structural (pre/post encoding) index
    into its table. Hooks fire on every insert/delete — including undo
    rollback and WAL replay — so encodings track the live document set. *)
let wire_struct_index_hooks ctx (idx : Xmlindex.Structindex.t) =
  let d = idx.Xmlindex.Structindex.def in
  let t = Storage.Database.table_exn ctx.db d.Xmlindex.Structindex.table in
  let coli = Storage.Table.col_index_exn t d.Xmlindex.Structindex.column in
  let docs_of (r : Storage.Table.row) =
    match r.Storage.Table.values.(coli) with
    | SV.Xml seq ->
        List.filter_map
          (function Xdm.Item.N n -> Some n | Xdm.Item.A _ -> None)
          seq
    | _ -> []
  in
  Storage.Table.add_hook t
    {
      on_insert =
        (fun r -> List.iter (Xmlindex.Structindex.insert_doc idx) (docs_of r));
      on_delete =
        (fun r -> List.iter (Xmlindex.Structindex.remove_doc idx) (docs_of r));
    };
  (t, docs_of)

(** Attach a structural index from its recovered definition (snapshot
    recovery): wire hooks, re-encode the restored documents, register. *)
let attach_struct_index ctx (d : Xmlindex.Structindex.def) : unit =
  let idx = Xmlindex.Structindex.create ~prof:ctx.prof d in
  let t, docs_of = wire_struct_index_hooks ctx idx in
  List.iter
    (fun (r : Storage.Table.row) ->
      List.iter (Xmlindex.Structindex.insert_doc idx) (docs_of r))
    (Storage.Table.rows t);
  ctx.sindexes <- idx :: ctx.sindexes;
  bump_catalog_gen ctx

(** Register an existing structural index object without wiring hooks —
    for read-only snapshot contexts, which share the publisher's index
    (encodings are immutable per-doc arrays; a missing entry falls back
    to tree-walk) and never mutate tables. *)
let adopt_struct_index ctx (idx : Xmlindex.Structindex.t) : unit =
  ctx.sindexes <- idx :: ctx.sindexes

(** Wire hooks for a new structural index and backfill it from existing
    rows. The pure encoding pass (preorder walk → pre/post/parent/level
    arrays) runs in parallel chunks; installs are applied single-threaded
    in row order, identical to a sequential build. *)
let install_struct_index ctx (d : Xmlindex.Structindex.def) :
    Xmlindex.Structindex.t =
  let idx = Xmlindex.Structindex.create ~prof:ctx.prof d in
  let t, docs_of = wire_struct_index_hooks ctx idx in
  let backfill = Storage.Table.rows t in
  let many = match backfill with _ :: _ :: _ -> true | _ -> false in
  if ctx.parallelism > 1 && many then begin
    let computed =
      Xpar.map_chunks ~parallelism:ctx.parallelism
        (fun _ chunk ->
          Array.map
            (fun (r : Storage.Table.row) ->
              List.map
                (fun doc -> (doc, Xmlindex.Structindex.encode_doc doc))
                (docs_of r))
            chunk)
        (Array.of_list backfill)
    in
    Xprof.par ctx.prof ~chunks:(Array.length computed);
    Array.iter
      (fun chunk ->
        Array.iter
          (fun per_doc ->
            List.iter
              (fun (doc, enc) -> Xmlindex.Structindex.install idx doc enc)
              per_doc)
          chunk)
      (Xpar.join computed)
  end
  else
    List.iter
      (fun (r : Storage.Table.row) ->
        List.iter (Xmlindex.Structindex.insert_doc idx) (docs_of r))
      backfill;
  ctx.sindexes <- idx :: ctx.sindexes;
  idx

let table_frame ~alias (t : Storage.Table.t) (r : Storage.Table.row) : frame =
  {
    f_alias = alias;
    f_cols =
      List.map
        (fun (c : Storage.Table.col_def) -> c.Storage.Table.col_name)
        t.Storage.Table.cols;
    f_vals = r.Storage.Table.values;
    f_row_id = Some r.Storage.Table.row_id;
    f_table = Some t.Storage.Table.name;
  }

(** Execute one SQL/XML statement with statement-level atomicity: every
    table/index mutation records its compensation in a per-statement undo
    log, and ANY failure — cast error, XML parse error, resource budget,
    injected fault — rolls the catalog back to the pre-statement state
    before re-raising. A fresh resource meter is armed from [ctx.limits]
    so all embedded XQuery evaluation draws from one shared budget. *)
let rec exec ctx (stmt : stmt) : result =
  Hashtbl.reset ctx.embed_plans;
  ctx.meter <- Xdm.Limits.meter ~limits:ctx.limits ();
  Xprof.start_statement ctx.prof;
  let log = Storage.Undo.create ~prof:ctx.prof () in
  (* snapshot governor headroom and stamp the total even on failure, so a
     rolled-back statement still leaves an inspectable profile *)
  let finish () =
    Xprof.set_governor ctx.prof (Xdm.Limits.usage ctx.meter);
    Xprof.finish_statement ctx.prof
  in
  match exec_inner ctx log stmt with
  | r ->
      (match ctx.txn_undo with
      | None -> Storage.Undo.commit log
      | Some txn -> Storage.Undo.absorb ~into:txn log);
      finish ();
      r
  | exception Unbound c ->
      Storage.Undo.rollback log;
      finish ();
      rt_fail "unknown column %S" c
  | exception ex ->
      Storage.Undo.rollback log;
      finish ();
      raise ex

and exec_inner ctx log (stmt : stmt) : result =
  match stmt with
  | Select s ->
      Xprof.spanned
        ~rows:(fun r -> List.length r.rrows)
        ctx.prof "SELECT"
        (fun () -> exec_select ctx s)
  | Values exprs ->
      ctx.notes <- [];
      ctx.used <- [];
      {
        rcols = List.mapi (fun i _ -> Printf.sprintf "c%d" (i + 1)) exprs;
        rrows = [ List.map (fun e -> eval_sexpr ctx [] e) exprs ];
      }
  | CreateTable (name, cols) ->
      ignore
        (Storage.Database.create_table ctx.db name
           (List.map
              (fun (c, ty) -> { Storage.Table.col_name = c; col_type = ty })
              cols));
      bump_catalog_gen ctx;
      { rcols = []; rrows = [] }
  | CreateXmlIndex { ci_name; ci_table; ci_column; ci_pattern; ci_vtype } ->
      let pattern =
        try Xmlindex.Pattern.of_string ci_pattern
        with Xmlindex.Pattern.Invalid m -> rt_fail "CREATE INDEX: %s" m
      in
      ignore
        (install_xml_index ctx
           {
             Xmlindex.Xindex.iname = ci_name;
             table = ci_table;
             column = ci_column;
             pattern;
             vtype = ci_vtype;
           });
      bump_catalog_gen ctx;
      { rcols = []; rrows = [] }
  | CreateRelIndex { cr_name; cr_table; cr_column } ->
      ignore
        (install_rel_index ctx ~iname:cr_name ~table:cr_table
           ~column:cr_column);
      bump_catalog_gen ctx;
      { rcols = []; rrows = [] }
  | CreateStructIndex { cs_name; cs_table; cs_column } ->
      ignore
        (install_struct_index ctx
           {
             Xmlindex.Structindex.iname = cs_name;
             table = cs_table;
             column = cs_column;
           });
      bump_catalog_gen ctx;
      { rcols = []; rrows = [] }
  | Insert (name, rows) ->
      let t = Storage.Database.table_exn ctx.db name in
      Xprof.spanned ctx.prof "INSERT" (fun () ->
          List.iter
            (fun vals ->
              Xprof.row ctx.prof;
              ignore
                (Storage.Table.insert ~log t
                   (List.map (eval_sexpr ctx []) vals)))
            rows);
      { rcols = []; rrows = [] }
  | Explain inner ->
      let _ = exec_inner ctx log inner in
      { rcols = [ "plan" ]; rrows = List.rev_map (fun n -> [ SV.Varchar n ]) ctx.notes }
  | Delete { del_table; del_where } ->
      let t = Storage.Database.table_exn ctx.db del_table in
      Xprof.spanned ctx.prof "DELETE" (fun () ->
      let victims =
        List.filter
          (fun (r : Storage.Table.row) ->
            Xdm.Limits.tick ctx.meter;
            Xprof.row ctx.prof;
            match del_where with
            | None -> true
            | Some w ->
                eval_cond ctx [ table_frame ~alias:del_table t r ] w
                = Some true)
          (Storage.Table.rows t)
      in
      List.iter
        (fun (r : Storage.Table.row) ->
          ignore (Storage.Table.delete ~log t r.Storage.Table.row_id))
        victims;
      {
        rcols = [ "deleted" ];
        rrows = [ [ SV.Int (Int64.of_int (List.length victims)) ] ];
      })
  | Update { upd_table; upd_set; upd_where } ->
      let t = Storage.Database.table_exn ctx.db upd_table in
      (* validate SET column names up front (catalog error if unknown) *)
      List.iter
        (fun (col, _) -> ignore (Storage.Table.col_index_exn t col))
        upd_set;
      let lc = String.lowercase_ascii in
      Xprof.spanned ctx.prof "UPDATE" (fun () ->
      let victims =
        List.filter
          (fun (r : Storage.Table.row) ->
            Xdm.Limits.tick ctx.meter;
            Xprof.row ctx.prof;
            match upd_where with
            | None -> true
            | Some w ->
                eval_cond ctx [ table_frame ~alias:upd_table t r ] w
                = Some true)
          (Storage.Table.rows t)
      in
      List.iter
        (fun (r : Storage.Table.row) ->
          let env = [ table_frame ~alias:upd_table t r ] in
          let new_vals =
            List.mapi
              (fun i (c : Storage.Table.col_def) ->
                match
                  List.find_opt
                    (fun (col, _) -> lc col = lc c.Storage.Table.col_name)
                    upd_set
                with
                | Some (_, se) -> eval_sexpr ctx env se
                | None -> r.Storage.Table.values.(i))
              t.Storage.Table.cols
          in
          ignore (Storage.Table.update ~log t r.Storage.Table.row_id new_vals))
        victims;
      {
        rcols = [ "updated" ];
        rrows = [ [ SV.Int (Int64.of_int (List.length victims)) ] ];
      })
  | DropIndex name ->
      let lc = String.lowercase_ascii in
      ctx.xindexes <-
        List.filter
          (fun (i : Xmlindex.Xindex.t) ->
            lc i.Xmlindex.Xindex.def.Xmlindex.Xindex.iname <> lc name)
          ctx.xindexes;
      ctx.rindexes <-
        List.filter
          (fun (i : Xmlindex.Rel_index.t) ->
            lc i.Xmlindex.Rel_index.iname <> lc name)
          ctx.rindexes;
      ctx.sindexes <-
        List.filter
          (fun (i : Xmlindex.Structindex.t) ->
            lc i.Xmlindex.Structindex.def.Xmlindex.Structindex.iname
            <> lc name)
          ctx.sindexes;
      bump_catalog_gen ctx;
      { rcols = []; rrows = [] }

(** Durability classification of a statement (WAL grouping): [`Read]
    statements touch no catalog state and bypass the log; [`Dml] effects
    are captured as row-level journal records; [`Ddl] is logged as
    statement text and re-executed on replay. EXPLAIN executes its inner
    statement, so it classifies as its inner statement does. *)
let rec stmt_class (stmt : stmt) : [ `Read | `Dml | `Ddl ] =
  match stmt with
  | Select _ | Values _ -> `Read
  | Insert _ | Delete _ | Update _ -> `Dml
  | CreateTable _ | CreateXmlIndex _ | CreateRelIndex _ | CreateStructIndex _
  | DropIndex _ ->
      `Ddl
  | Explain inner -> stmt_class inner

(** Parse and execute. *)
let exec_string ctx (src : string) : result =
  let stmt = Sql_parser.parse src in
  (match (ctx.strict_static, ctx.static_check) with
  | true, Some check -> check ~src stmt
  | _ -> ());
  exec ctx stmt

(* ------------------------------------------------------------------ *)
(* Streaming entry point                                               *)
(* ------------------------------------------------------------------ *)

(** Re-raise lazily-surfacing [Unbound] as the runtime error [exec] would
    have produced for the strict path. *)
let translate_unbound (seq : 'a Seq.t) : 'a Seq.t =
  let rec go s () =
    match s () with
    | exception Unbound c -> rt_fail "unknown column %S" c
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) -> Seq.Cons (x, go rest)
  in
  go seq

(** Execute a statement for cursor consumption: streamable SELECTs (no
    grouping, no ORDER BY) produce rows lazily under a fresh resource
    meter; everything else runs through the strict, atomic [exec] and
    replays its materialized rows. *)
let exec_seq ctx (stmt : stmt) : string list * SV.t list Seq.t =
  match stmt with
  | Select s when (not (has_aggregates s)) && s.order_by = [] ->
      Hashtbl.reset ctx.embed_plans;
      ctx.meter <- Xdm.Limits.meter ~limits:ctx.limits ();
      let cols = select_columns ctx s in
      (cols, translate_unbound (select_seq ctx s))
  | _ ->
      let r = exec ctx stmt in
      (r.rcols, List.to_seq r.rrows)
