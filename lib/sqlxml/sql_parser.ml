(** Recursive-descent parser for the SQL/XML subset. *)

open Sql_ast
module L = Sql_lexer

type p = {
  lx : L.t;
  mutable nparams : int;  (** number of [?] parameter markers seen so far *)
}

let cur p = p.lx.L.tok
let advance p = L.next p.lx

let fail p fmt =
  Format.kasprintf
    (fun m ->
      L.fail_at p.lx p.lx.L.tok_start "%s (at %s)" m
        (L.token_to_string (cur p)))
    fmt

let is_kw p kw =
  match cur p with
  | L.Word w -> String.uppercase_ascii w = kw
  | _ -> false

let eat_kw p kw =
  if is_kw p kw then advance p else fail p "expected keyword %s" kw

let accept_kw p kw =
  if is_kw p kw then begin
    advance p;
    true
  end
  else false

let expect p tok =
  if cur p = tok then advance p
  else fail p "expected %s" (L.token_to_string tok)

let ident p =
  match cur p with
  | L.Word w ->
      advance p;
      w
  | L.QIdent s ->
      advance p;
      s
  | _ -> fail p "expected an identifier"

let string_lit p =
  match cur p with
  | L.Str s ->
      advance p;
      s
  | _ -> fail p "expected a string literal"

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let sqltype p : sqltype =
  match cur p with
  | L.Word w -> (
      advance p;
      match String.uppercase_ascii w with
      | "INTEGER" | "INT" | "BIGINT" -> Storage.Sql_value.TInt
      | "DOUBLE" ->
          ignore (accept_kw p "PRECISION");
          Storage.Sql_value.TDouble
      | "FLOAT" -> Storage.Sql_value.TDouble
      | "DECIMAL" | "NUMERIC" ->
          if cur p = L.LPar then begin
            advance p;
            let prec =
              match cur p with
              | L.Int i ->
                  advance p;
                  Int64.to_int i
              | _ -> fail p "expected precision"
            in
            let scale =
              if cur p = L.Comma then begin
                advance p;
                match cur p with
                | L.Int i ->
                    advance p;
                    Int64.to_int i
                | _ -> fail p "expected scale"
              end
              else 0
            in
            expect p L.RPar;
            Storage.Sql_value.TDecimal (prec, scale)
          end
          else Storage.Sql_value.TDecimal (31, 6)
      | "VARCHAR" | "CHAR" ->
          if cur p = L.LPar then begin
            advance p;
            let n =
              match cur p with
              | L.Int i ->
                  advance p;
                  Int64.to_int i
              | _ -> fail p "expected length"
            in
            expect p L.RPar;
            Storage.Sql_value.TVarchar n
          end
          else Storage.Sql_value.TVarchar 254
      | "DATE" -> Storage.Sql_value.TDate
      | "TIMESTAMP" -> Storage.Sql_value.TTimestamp
      | "XML" -> Storage.Sql_value.TXml
      | other -> fail p "unknown SQL type %S" other)
  | _ -> fail p "expected a type name"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let parse_embedded_query p (src : string) : Xquery.Ast.query * Xquery.Ast.Locs.t =
  try Xquery.Parser.parse_query_loc src
  with Xdm.Xerror.Error { code; msg } ->
    fail p "embedded XQuery error [%s]: %s" code msg

let rec passing_clause p : (string * sexpr) list =
  if accept_kw p "PASSING" then begin
    let one () =
      let e = sexpr p in
      eat_kw p "AS";
      let name = ident p in
      (name, e)
    in
    let items = ref [ one () ] in
    while cur p = L.Comma do
      advance p;
      items := one () :: !items
    done;
    List.rev !items
  end
  else []

and xq_embed_body p : xq_embed =
  (* after the opening '(' of XMLQuery/XMLExists/XMLTable *)
  let offset = p.lx.L.tok_start in
  let src = string_lit p in
  let q, locs = parse_embedded_query p src in
  let passing = passing_clause p in
  { xq_src = src; xq_query = q; xq_passing = passing; xq_offset = offset;
    xq_locs = locs }

and sexpr p : sexpr =
  match cur p with
  | L.Str s ->
      advance p;
      SLitString s
  | L.Int i ->
      advance p;
      SLitInt i
  | L.Num f ->
      advance p;
      SLitDouble f
  | L.Word w when String.uppercase_ascii w = "NULL" ->
      advance p;
      SNull
  | L.Word w
    when List.mem
           (String.uppercase_ascii w)
           [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "XMLAGG" ] ->
      let agg =
        match String.uppercase_ascii w with
        | "COUNT" -> ACount
        | "SUM" -> ASum
        | "AVG" -> AAvg
        | "MIN" -> AMin
        | "XMLAGG" -> AXmlAgg
        | _ -> AMax
      in
      advance p;
      expect p L.LPar;
      let arg =
        if cur p = L.Star then begin
          advance p;
          None
        end
        else Some (sexpr p)
      in
      expect p L.RPar;
      SAgg (agg, arg)
  | L.Word w when String.uppercase_ascii w = "XMLQUERY" ->
      advance p;
      expect p L.LPar;
      let e = xq_embed_body p in
      (* optional RETURNING SEQUENCE etc. ignored *)
      expect p L.RPar;
      SXmlQuery e
  | L.Word w when String.uppercase_ascii w = "XMLCAST" ->
      advance p;
      expect p L.LPar;
      let e = sexpr p in
      eat_kw p "AS";
      let ty = sqltype p in
      expect p L.RPar;
      SXmlCast (e, ty)
  | L.Word w when String.uppercase_ascii w = "XMLELEMENT" ->
      advance p;
      expect p L.LPar;
      ignore (accept_kw p "NAME");
      let name = ident p in
      let args = ref [] in
      while cur p = L.Comma do
        advance p;
        args := sexpr p :: !args
      done;
      expect p L.RPar;
      SXmlElement (name, List.rev !args)
  | L.Qmark ->
      advance p;
      let i = p.nparams in
      p.nparams <- i + 1;
      SParam i
  | L.Word _ | L.QIdent _ -> (
      let first = ident p in
      if cur p = L.Dot then begin
        advance p;
        let col = ident p in
        SCol (Some first, col)
      end
      else SCol (None, first))
  | _ -> fail p "expected an expression"

(* ------------------------------------------------------------------ *)
(* Conditions                                                          *)
(* ------------------------------------------------------------------ *)

let cmp_of_token = function
  | L.Eq -> Some SEq
  | L.Ne -> Some SNe
  | L.Lt -> Some SLt
  | L.Le -> Some SLe
  | L.Gt -> Some SGt
  | L.Ge -> Some SGe
  | _ -> None

let rec cond p : cond =
  let a = ref (and_cond p) in
  while is_kw p "OR" do
    advance p;
    a := COr (!a, and_cond p)
  done;
  !a

and and_cond p : cond =
  let a = ref (not_cond p) in
  while is_kw p "AND" do
    advance p;
    a := CAnd (!a, not_cond p)
  done;
  !a

and not_cond p : cond =
  if is_kw p "NOT" then begin
    advance p;
    CNot (not_cond p)
  end
  else primary_cond p

and primary_cond p : cond =
  if cur p = L.LPar then begin
    advance p;
    let c = cond p in
    expect p L.RPar;
    c
  end
  else if is_kw p "XMLEXISTS" then begin
    advance p;
    expect p L.LPar;
    let e = xq_embed_body p in
    expect p L.RPar;
    CXmlExists e
  end
  else begin
    let a = sexpr p in
    match cmp_of_token (cur p) with
    | Some op ->
        advance p;
        CCmp (op, a, sexpr p)
    | None ->
        if is_kw p "IS" then begin
          advance p;
          let neg = accept_kw p "NOT" in
          eat_kw p "NULL";
          CIsNull (a, not neg)
        end
        else fail p "expected a comparison operator"
  end

(* ------------------------------------------------------------------ *)
(* Table references                                                    *)
(* ------------------------------------------------------------------ *)

let xmltable p : xmltable =
  (* after the XMLTABLE keyword *)
  expect p L.LPar;
  let embed = xq_embed_body p in
  let cols = ref [] in
  if accept_kw p "COLUMNS" then begin
    let one () =
      let name = ident p in
      let ty = sqltype p in
      let by_ref =
        if accept_kw p "BY" then
          if accept_kw p "REF" then true
          else begin
            eat_kw p "VALUE";
            false
          end
        else true
      in
      eat_kw p "PATH";
      let offset = p.lx.L.tok_start in
      let path = string_lit p in
      let q, locs = parse_embedded_query p path in
      { xc_name = name; xc_type = ty; xc_by_ref = by_ref; xc_path_src = path;
        xc_query = q; xc_offset = offset; xc_locs = locs }
    in
    cols := [ one () ];
    while cur p = L.Comma do
      advance p;
      cols := one () :: !cols
    done
  end;
  expect p L.RPar;
  ignore (accept_kw p "AS");
  let alias = ident p in
  let colnames =
    if cur p = L.LPar then begin
      advance p;
      let names = ref [ ident p ] in
      while cur p = L.Comma do
        advance p;
        names := ident p :: !names
      done;
      expect p L.RPar;
      List.rev !names
    end
    else []
  in
  {
    xt_embed = embed;
    xt_cols = List.rev !cols;
    xt_alias = alias;
    xt_colnames = colnames;
  }

let table_ref p : table_ref =
  if is_kw p "XMLTABLE" then begin
    advance p;
    TRXmlTable (xmltable p)
  end
  else begin
    let name = ident p in
    let alias =
      if accept_kw p "AS" then ident p
      else
        match cur p with
        | L.Word w
          when not
                 (List.mem
                    (String.uppercase_ascii w)
                    [ "WHERE"; "ORDER"; "GROUP"; "ON"; "XMLTABLE"; "LIMIT";
                      "FETCH" ]) ->
            advance p;
            w
        | L.QIdent s ->
            advance p;
            s
        | _ -> name
    in
    TRTable { name; alias }
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let select_stmt p : select =
  (* after SELECT *)
  let sel_item () =
    if cur p = L.Star then begin
      advance p;
      SelStar
    end
    else begin
      let e = sexpr p in
      let alias = if accept_kw p "AS" then Some (ident p) else None in
      SelExpr (e, alias)
    end
  in
  let items = ref [ sel_item () ] in
  while cur p = L.Comma do
    advance p;
    items := sel_item () :: !items
  done;
  eat_kw p "FROM";
  let from = ref [ table_ref p ] in
  while cur p = L.Comma do
    advance p;
    from := table_ref p :: !from
  done;
  let where = if accept_kw p "WHERE" then Some (cond p) else None in
  let group_by =
    if accept_kw p "GROUP" then begin
      eat_kw p "BY";
      let keys = ref [ sexpr p ] in
      while cur p = L.Comma do
        advance p;
        keys := sexpr p :: !keys
      done;
      List.rev !keys
    end
    else []
  in
  let order_by =
    if accept_kw p "ORDER" then begin
      eat_kw p "BY";
      let key () =
        let e = sexpr p in
        let asc =
          if accept_kw p "DESC" then false
          else begin
            ignore (accept_kw p "ASC");
            true
          end
        in
        (e, asc)
      in
      let keys = ref [ key () ] in
      while cur p = L.Comma do
        advance p;
        keys := key () :: !keys
      done;
      List.rev !keys
    end
    else []
  in
  let limit =
    if accept_kw p "FETCH" then begin
      eat_kw p "FIRST";
      let n =
        match cur p with
        | L.Int i ->
            advance p;
            Int64.to_int i
        | _ -> fail p "expected a row count"
      in
      ignore (accept_kw p "ROWS");
      ignore (accept_kw p "ROW");
      eat_kw p "ONLY";
      Some n
    end
    else if accept_kw p "LIMIT" then begin
      match cur p with
      | L.Int i ->
          advance p;
          Some (Int64.to_int i)
      | _ -> fail p "expected a row count"
    end
    else None
  in
  {
    sel_list = List.rev !items;
    from = List.rev !from;
    where;
    group_by;
    order_by;
    limit;
  }

let create_stmt p : stmt =
  (* after CREATE *)
  if accept_kw p "TABLE" then begin
    let name = ident p in
    expect p L.LPar;
    let coldef () =
      let c = ident p in
      let ty = sqltype p in
      (c, ty)
    in
    let cols = ref [ coldef () ] in
    while cur p = L.Comma do
      advance p;
      cols := coldef () :: !cols
    done;
    expect p L.RPar;
    CreateTable (name, List.rev !cols)
  end
  else if accept_kw p "STRUCTURAL" then begin
    eat_kw p "INDEX";
    let iname = ident p in
    eat_kw p "ON";
    let table = ident p in
    expect p L.LPar;
    let column = ident p in
    expect p L.RPar;
    CreateStructIndex { cs_name = iname; cs_table = table; cs_column = column }
  end
  else begin
    ignore (accept_kw p "UNIQUE");
    eat_kw p "INDEX";
    let iname = ident p in
    eat_kw p "ON";
    let table = ident p in
    expect p L.LPar;
    let column = ident p in
    expect p L.RPar;
    if accept_kw p "USING" then begin
      eat_kw p "XMLPATTERN";
      let pattern = string_lit p in
      eat_kw p "AS";
      ignore (accept_kw p "SQL");
      let vtype =
        match cur p with
        | L.Word w -> (
            advance p;
            match String.uppercase_ascii w with
            | "VARCHAR" ->
                (* optional length *)
                if cur p = L.LPar then begin
                  advance p;
                  (match cur p with
                  | L.Int _ -> advance p
                  | _ -> fail p "expected length");
                  expect p L.RPar
                end;
                Xmlindex.Xindex.VVarchar
            | "DOUBLE" -> Xmlindex.Xindex.VDouble
            | "DATE" -> Xmlindex.Xindex.VDate
            | "TIMESTAMP" -> Xmlindex.Xindex.VTimestamp
            | t -> fail p "unknown XML index type %S" t)
        | _ -> fail p "expected an index type"
      in
      CreateXmlIndex
        { ci_name = iname; ci_table = table; ci_column = column;
          ci_pattern = pattern; ci_vtype = vtype }
    end
    else CreateRelIndex { cr_name = iname; cr_table = table; cr_column = column }
  end

let insert_stmt p : stmt =
  (* after INSERT *)
  eat_kw p "INTO";
  let name = ident p in
  eat_kw p "VALUES";
  let row () =
    expect p L.LPar;
    let vals = ref [ sexpr p ] in
    while cur p = L.Comma do
      advance p;
      vals := sexpr p :: !vals
    done;
    expect p L.RPar;
    List.rev !vals
  in
  let rows = ref [ row () ] in
  while cur p = L.Comma do
    advance p;
    rows := row () :: !rows
  done;
  Insert (name, List.rev !rows)

let update_stmt p : stmt =
  (* after UPDATE: UPDATE <table> SET col = expr [, ...] [WHERE cond] *)
  let name = ident p in
  eat_kw p "SET";
  let assignment () =
    let col = ident p in
    expect p L.Eq;
    (col, sexpr p)
  in
  let sets = ref [ assignment () ] in
  while cur p = L.Comma do
    advance p;
    sets := assignment () :: !sets
  done;
  let upd_where = if accept_kw p "WHERE" then Some (cond p) else None in
  Update { upd_table = name; upd_set = List.rev !sets; upd_where }

(** Parse one SQL/XML statement, also returning the number of [?]
    positional parameter markers it contains. *)
let parse_params (src : string) : stmt * int =
  let p = { lx = L.init src; nparams = 0 } in
  let stmt =
    if accept_kw p "EXPLAIN" then begin
      eat_kw p "SELECT";
      Explain (Select (select_stmt p))
    end
    else if accept_kw p "SELECT" then Select (select_stmt p)
    else if accept_kw p "VALUES" then begin
      expect p L.LPar;
      let vals = ref [ sexpr p ] in
      while cur p = L.Comma do
        advance p;
        vals := sexpr p :: !vals
      done;
      expect p L.RPar;
      Values (List.rev !vals)
    end
    else if accept_kw p "CREATE" then create_stmt p
    else if accept_kw p "INSERT" then insert_stmt p
    else if accept_kw p "UPDATE" then update_stmt p
    else if accept_kw p "DELETE" then begin
      eat_kw p "FROM";
      let name = ident p in
      let del_where = if accept_kw p "WHERE" then Some (cond p) else None in
      Delete { del_table = name; del_where }
    end
    else if accept_kw p "DROP" then begin
      eat_kw p "INDEX";
      DropIndex (ident p)
    end
    else
      fail p
        "expected SELECT / VALUES / CREATE / INSERT / UPDATE / DELETE / DROP"
  in
  if cur p = L.Semi then advance p;
  if cur p <> L.Eof then fail p "trailing tokens after statement";
  (stmt, p.nparams)

(** Parse one SQL/XML statement. *)
let parse (src : string) : stmt = fst (parse_params src)
