(** Checkpoint snapshots: the full catalog (tables, rows, path tables,
    XML and relational indexes) serialized through the {!Pager}.

    Layout: page 0 is a fixed header [magic, format version, page size,
    catalog blob head]; the catalog itself is one [Pager.Blob] page
    chain. Recovery = load the snapshot, then replay the WAL tail on
    top.

    Node identity does not survive serialization: XML values are stored
    as document text and re-parsed on load, so index entries go to disk
    keyed by the node's document-order ordinal within its row and are
    remapped to fresh node ids by the loader. *)

val magic : string
val format_version : int

(** Write a full snapshot of [db] (plus indexes) to [path], truncating
    any previous file. [count] is the Xprof counter hook threaded to the
    pager. Structural indexes persist as definitions only — their
    encodings are node-id-keyed derived data, rebuilt on load. *)
val save :
  ?page_size:int ->
  ?pool_pages:int ->
  ?count:(string -> unit) ->
  path:string ->
  Storage.Database.t ->
  Xmlindex.Xindex.t list ->
  Xmlindex.Rel_index.t list ->
  Xmlindex.Structindex.t list ->
  unit

(** Load a snapshot; raises a coded [XQDB0005] error on an unrecognized
    or incompatible format and on structural corruption. The caller
    re-installs structural indexes from the returned definitions
    (re-encoding the freshly parsed documents). *)
val load :
  ?pool_pages:int ->
  ?count:(string -> unit) ->
  path:string ->
  unit ->
  Storage.Database.t
  * Xmlindex.Xindex.t list
  * Xmlindex.Rel_index.t list
  * Xmlindex.Structindex.def list
