(** Binary codecs for catalog values: SQL values, XDM atomics, qualified
    names and path steps. Shared by the WAL record format ({!Wal}) and the
    snapshot format ({!Snapshot}).

    XML values are stored as serialized document text and re-parsed on
    load; node identities are therefore *not* stable across a save/load
    cycle, which is why index entries carry document-order ordinals on
    disk (see {!Snapshot}). *)

open Xdm
module C = Pager.Codec

(* ------------------------------------------------------------------ *)
(* Qualified names and path steps                                      *)
(* ------------------------------------------------------------------ *)

let qname buf (q : Qname.t) =
  C.str buf q.Qname.uri;
  C.str buf q.Qname.local;
  C.str buf q.Qname.prefix

let g_qname r =
  let uri = C.g_str r in
  let local = C.g_str r in
  let prefix = C.g_str r in
  Qname.make ~prefix ~uri local

let step buf (s : Node.path_step) =
  match s with
  | `Elem q ->
      C.u8 buf 0;
      qname buf q
  | `Attr q ->
      C.u8 buf 1;
      qname buf q
  | `Text -> C.u8 buf 2
  | `Comment -> C.u8 buf 3
  | `Pi t ->
      C.u8 buf 4;
      C.str buf t

let g_step r : Node.path_step =
  match C.g_u8 r with
  | 0 -> `Elem (g_qname r)
  | 1 -> `Attr (g_qname r)
  | 2 -> `Text
  | 3 -> `Comment
  | 4 -> `Pi (C.g_str r)
  | n -> C.corrupt "bad path step tag %d" n

(* ------------------------------------------------------------------ *)
(* XDM atomics (index key values)                                      *)
(* ------------------------------------------------------------------ *)

let atomic buf (a : Atomic.t) =
  match a with
  | Atomic.Untyped s ->
      C.u8 buf 0;
      C.str buf s
  | Atomic.Str s ->
      C.u8 buf 1;
      C.str buf s
  | Atomic.Boolean b ->
      C.u8 buf 2;
      C.u8 buf (if b then 1 else 0)
  | Atomic.Integer i ->
      C.u8 buf 3;
      C.i64 buf i
  | Atomic.Decimal f ->
      C.u8 buf 4;
      C.f64 buf f
  | Atomic.Double f ->
      C.u8 buf 5;
      C.f64 buf f
  | Atomic.Date d ->
      C.u8 buf 6;
      C.str buf (Xdate.date_to_string d)
  | Atomic.DateTime d ->
      C.u8 buf 7;
      C.str buf (Xdate.datetime_to_string d)

let g_atomic r : Atomic.t =
  match C.g_u8 r with
  | 0 -> Atomic.Untyped (C.g_str r)
  | 1 -> Atomic.Str (C.g_str r)
  | 2 -> Atomic.Boolean (C.g_u8 r <> 0)
  | 3 -> Atomic.Integer (C.g_i64 r)
  | 4 -> Atomic.Decimal (C.g_f64 r)
  | 5 -> Atomic.Double (C.g_f64 r)
  | 6 -> (
      let s = C.g_str r in
      match Xdate.date_of_string_opt s with
      | Some d -> Atomic.Date d
      | None -> C.corrupt "bad date %S" s)
  | 7 -> (
      let s = C.g_str r in
      match Xdate.datetime_of_string_opt s with
      | Some d -> Atomic.DateTime d
      | None -> C.corrupt "bad dateTime %S" s)
  | n -> C.corrupt "bad atomic tag %d" n

(* ------------------------------------------------------------------ *)
(* SQL column types                                                    *)
(* ------------------------------------------------------------------ *)

open Storage

let sqltype buf (t : Sql_value.sqltype) =
  match t with
  | Sql_value.TInt -> C.u8 buf 0
  | Sql_value.TDouble -> C.u8 buf 1
  | Sql_value.TDecimal (p, s) ->
      C.u8 buf 2;
      C.uvarint buf p;
      C.uvarint buf s
  | Sql_value.TVarchar n ->
      C.u8 buf 3;
      C.uvarint buf n
  | Sql_value.TDate -> C.u8 buf 4
  | Sql_value.TTimestamp -> C.u8 buf 5
  | Sql_value.TXml -> C.u8 buf 6

let g_sqltype r : Sql_value.sqltype =
  match C.g_u8 r with
  | 0 -> Sql_value.TInt
  | 1 -> Sql_value.TDouble
  | 2 ->
      let p = C.g_uvarint r in
      let s = C.g_uvarint r in
      Sql_value.TDecimal (p, s)
  | 3 -> Sql_value.TVarchar (C.g_uvarint r)
  | 4 -> Sql_value.TDate
  | 5 -> Sql_value.TTimestamp
  | 6 -> Sql_value.TXml
  | n -> C.corrupt "bad sqltype tag %d" n

(* ------------------------------------------------------------------ *)
(* SQL values                                                          *)
(* ------------------------------------------------------------------ *)

(** One item of an XML value. Document and element nodes round-trip
    through serialized XML text (node identity is not preserved); other
    node kinds cannot appear as stored column values. *)
let item buf (it : Item.t) =
  match it with
  | Item.N n -> (
      match n.Node.kind with
      | Node.Document ->
          C.u8 buf 0;
          C.str buf (Xmlparse.Xml_writer.seq_to_string [ it ])
      | Node.Element ->
          C.u8 buf 1;
          C.str buf (Xmlparse.Xml_writer.seq_to_string [ it ])
      | _ ->
          invalid_arg
            "Vcodec: only document/element nodes are storable XML values")
  | Item.A a ->
      C.u8 buf 2;
      atomic buf a

let g_item r : Item.t =
  match C.g_u8 r with
  | 0 -> Item.N (Xmlparse.Xml_parser.parse_document (C.g_str r))
  | 1 -> (
      let doc = Xmlparse.Xml_parser.parse_document (C.g_str r) in
      match doc.Node.children with
      | [ el ] -> Item.N el
      | _ -> C.corrupt "element value did not reparse to one element")
  | 2 -> Item.A (g_atomic r)
  | n -> C.corrupt "bad item tag %d" n

let sql_value buf (v : Sql_value.t) =
  match v with
  | Sql_value.Null -> C.u8 buf 0
  | Sql_value.Int i ->
      C.u8 buf 1;
      C.i64 buf i
  | Sql_value.Double f ->
      C.u8 buf 2;
      C.f64 buf f
  | Sql_value.Varchar s ->
      C.u8 buf 3;
      C.str buf s
  | Sql_value.Date d ->
      C.u8 buf 4;
      C.str buf (Xdate.date_to_string d)
  | Sql_value.Timestamp t ->
      C.u8 buf 5;
      C.str buf (Xdate.datetime_to_string t)
  | Sql_value.Xml seq ->
      C.u8 buf 6;
      C.list item buf seq

let g_sql_value r : Sql_value.t =
  match C.g_u8 r with
  | 0 -> Sql_value.Null
  | 1 -> Sql_value.Int (C.g_i64 r)
  | 2 -> Sql_value.Double (C.g_f64 r)
  | 3 -> Sql_value.Varchar (C.g_str r)
  | 4 -> (
      let s = C.g_str r in
      match Xdate.date_of_string_opt s with
      | Some d -> Sql_value.Date d
      | None -> C.corrupt "bad DATE %S" s)
  | 5 -> (
      let s = C.g_str r in
      match Xdate.datetime_of_string_opt s with
      | Some d -> Sql_value.Timestamp d
      | None -> C.corrupt "bad TIMESTAMP %S" s)
  | 6 -> Sql_value.Xml (C.g_list g_item r)
  | n -> C.corrupt "bad sql value tag %d" n

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)
(* ------------------------------------------------------------------ *)

let row buf (r : Table.row) =
  C.varint buf r.Table.row_id;
  C.uvarint buf (Array.length r.Table.values);
  Array.iter (sql_value buf) r.Table.values

let g_row r : Table.row =
  let row_id = C.g_varint r in
  let n = C.g_uvarint r in
  let values = Array.make n Sql_value.Null in
  for i = 0 to n - 1 do
    values.(i) <- g_sql_value r
  done;
  { Table.row_id; values }
