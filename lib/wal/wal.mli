(** Write-ahead log.

    Every mutating statement appends one *group* of records:

    {v Begin(seq) · [Row | Ddl]* · Commit(seq) v}

    and only the Commit makes the group durable: replay applies a group
    iff its Commit record survived intact, so a crash anywhere inside a
    statement recovers to the pre-statement state — the WAL-level mirror
    of the in-memory per-statement undo log.

    Framing is [u32 length][u32 crc][payload], little-endian, with the
    CRC covering the length bytes *and* the payload, so a torn or
    bit-flipped tail — even one corrupting the length field itself — is
    detected and replay stops at the last intact record. *)

(** Re-exports, so library users see [Wal.Snapshot] / [Wal.Vcodec]. *)
module Snapshot = Snapshot

module Vcodec = Vcodec

type record =
  | Begin of int  (** statement sequence number *)
  | Commit of int
  | Ddl of string  (** statement text, re-executed on replay *)
  | Row of string * Storage.Table.jop  (** table name, row redo record *)

val encode_record : record -> string
val decode_record : string -> record

(** Wrap a payload in the [length · crc · payload] on-disk frame. *)
val frame : string -> string

(** {1 The log writer} *)

type t

(** Open [path] for appending, truncated to [keep] bytes first (the end
    of the last committed record found by {!replay}); pass [keep = 0]
    for a fresh log. [sync:false] skips the per-commit fsync (still
    durable against same-process crashes). [count] is the Xprof counter
    hook ([wal_appends], [wal_fsyncs]). *)
val open_log : ?sync:bool -> ?count:(string -> unit) -> ?keep:int -> string -> t

(** Append one record (no durability guarantee until {!commit}). *)
val append : t -> record -> unit

(** Append [Commit seq] and (in [sync] mode) fsync — the commit point of
    the enclosing statement. *)
val commit : t -> int -> unit

(** Flush to stable storage regardless of the [sync] mode (clean
    shutdown). *)
val sync_log : t -> unit

val close : t -> unit

(** {1 Replay} *)

type replay_result = {
  committed_end : int;
      (** byte offset just after the last committed record; the tail
          beyond it is garbage (torn writes, uncommitted groups) and is
          truncated by the next {!open_log} *)
  redo_records : int;  (** row/DDL records applied *)
  statements : int;  (** committed groups applied *)
}

(** Scan the log at [path], applying every record of every *committed*
    group, in log order, via [apply]. Corrupt or torn records end the
    scan; an uncommitted trailing group is skipped entirely. *)
val replay : ?apply:(record -> unit) -> string -> replay_result
