(** Write-ahead log.

    Every mutating statement appends one *group* of records:

    {v Begin(seq) · [Row | Ddl]* · Commit(seq) v}

    and only the Commit makes the group durable: replay applies a group
    iff its Commit record survived intact, so a crash anywhere inside a
    statement (including mid-append) recovers to the pre-statement
    state — the WAL-level mirror of the in-memory per-statement undo log.

    Framing is [u32 length][u32 crc][payload], little-endian, with the
    CRC covering the length bytes *and* the payload, so a torn or
    bit-flipped tail — even one that corrupts the length field itself —
    is detected and replay stops at the last intact record. On reopen the
    tail after the last committed record is truncated away.

    Redo records are logical: row operations carry full row images
    (values serialized through {!Vcodec}), DDL is replayed by re-executing
    the statement text. Both are idempotent against the snapshot they
    apply to because replay starts from the checkpointed image and applies
    groups in log order. *)

module C = Pager.Codec

(** Re-exports, so library users see [Wal.Snapshot] / [Wal.Vcodec]. *)
module Snapshot = Snapshot

module Vcodec = Vcodec

type record =
  | Begin of int  (** statement sequence number *)
  | Commit of int
  | Ddl of string  (** statement text, re-executed on replay *)
  | Row of string * Storage.Table.jop  (** table name, row redo record *)

(* ------------------------------------------------------------------ *)
(* Record payloads                                                     *)
(* ------------------------------------------------------------------ *)

let encode_record (rec_ : record) : string =
  let buf = Buffer.create 64 in
  (match rec_ with
  | Begin seq ->
      C.u8 buf (Char.code 'B');
      C.uvarint buf seq
  | Commit seq ->
      C.u8 buf (Char.code 'C');
      C.uvarint buf seq
  | Ddl text ->
      C.u8 buf (Char.code 'D');
      C.str buf text
  | Row (table, op) -> (
      C.u8 buf (Char.code 'R');
      C.str buf table;
      match op with
      | Storage.Table.Jinsert row ->
          C.u8 buf 0;
          Vcodec.row buf row
      | Storage.Table.Jdelete row ->
          C.u8 buf 1;
          Vcodec.row buf row
      | Storage.Table.Jupdate (old_row, new_row) ->
          C.u8 buf 2;
          Vcodec.row buf old_row;
          Vcodec.row buf new_row));
  Buffer.contents buf

let decode_record (payload : string) : record =
  let r = C.reader payload in
  let rec_ =
    match Char.chr (C.g_u8 r) with
    | 'B' -> Begin (C.g_uvarint r)
    | 'C' -> Commit (C.g_uvarint r)
    | 'D' -> Ddl (C.g_str r)
    | 'R' -> (
        let table = C.g_str r in
        match C.g_u8 r with
        | 0 -> Row (table, Storage.Table.Jinsert (Vcodec.g_row r))
        | 1 -> Row (table, Storage.Table.Jdelete (Vcodec.g_row r))
        | 2 ->
            let old_row = Vcodec.g_row r in
            let new_row = Vcodec.g_row r in
            Row (table, Storage.Table.Jupdate (old_row, new_row))
        | n -> C.corrupt "bad row op tag %d" n)
    | c -> C.corrupt "bad record tag %C" c
  in
  if not (C.at_end r) then C.corrupt "trailing bytes in record";
  rec_

let frame (payload : string) : string =
  let buf = Buffer.create (String.length payload + 8) in
  C.u32 buf (String.length payload);
  let len_bytes = Buffer.contents buf in
  C.u32 buf (C.crc32 (len_bytes ^ payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The log writer                                                      *)
(* ------------------------------------------------------------------ *)

type t = {
  fd : Unix.file_descr;
  path : string;
  sync : bool;  (** fsync on commit (durable+fsync mode) *)
  count : string -> unit;
}

let no_count (_ : string) = ()

(** Open [path] for appending, truncated to [keep] bytes first (the end
    of the last committed record found by {!replay}); pass [keep = 0] for
    a fresh log. *)
let open_log ?(sync = true) ?(count = no_count) ?(keep = 0) path =
  let fd = Unix.openfile path Unix.[ O_RDWR; O_CREAT ] 0o644 in
  Unix.ftruncate fd keep;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  { fd; path; sync; count }

let write_exactly fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(** Append one record (no durability guarantee until {!commit}). *)
let append t (rec_ : record) =
  Faultinject.hit "wal.append";
  write_exactly t.fd (frame (encode_record rec_));
  t.count "wal_appends"

(** Make everything appended so far durable (the commit point of the
    enclosing statement). In [sync:false] mode the data still reaches the
    file (same-process crashes lose nothing) but no fsync is issued. *)
let commit t seq =
  append t (Commit seq);
  Faultinject.hit "wal.fsync";
  if t.sync then begin
    Unix.fsync t.fd;
    t.count "wal_fsyncs"
  end

(** Flush the log to stable storage regardless of the [sync] mode (clean
    shutdown). *)
let sync_log t = try Unix.fsync t.fd with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

type replay_result = {
  committed_end : int;
      (** byte offset just after the last committed record; the tail
          beyond it is garbage (torn writes, uncommitted groups) and is
          truncated by the next {!open_log} *)
  redo_records : int;  (** row/DDL records applied *)
  statements : int;  (** committed groups applied *)
}

(** Scan the log at [path], applying every record of every *committed*
    group, in log order, via [apply]. Corrupt or torn records end the
    scan (everything after them is unreachable garbage); an uncommitted
    trailing group is skipped entirely. *)
let replay ?(apply = fun (_ : record) -> ()) path : replay_result =
  let data = read_file path in
  let len = String.length data in
  let pos = ref 0 in
  let committed_end = ref 0 in
  let redo = ref 0 in
  let stmts = ref 0 in
  let pending = ref None in  (* Some (seq, rev records) while in a group *)
  let stop = ref false in
  while not !stop do
    if !pos + 8 > len then stop := true
    else begin
      let r = C.reader (String.sub data !pos 8) in
      let plen = C.g_u32 r in
      let crc = C.g_u32 r in
      if plen < 0 || !pos + 8 + plen > len then stop := true
      else
        let payload = String.sub data (!pos + 8) plen in
        if C.crc32 (String.sub data !pos 4 ^ payload) <> crc then stop := true
        else
          match decode_record payload with
          | exception C.Corrupt _ -> stop := true
          | rec_ ->
              pos := !pos + 8 + plen;
              (match rec_ with
              | Begin seq ->
                  (* an unfinished predecessor group is abandoned *)
                  pending := Some (seq, [])
              | Commit seq -> (
                  match !pending with
                  | Some (s, revs) when s = seq ->
                      List.iter
                        (fun r ->
                          apply r;
                          incr redo)
                        (List.rev revs);
                      incr stmts;
                      pending := None;
                      committed_end := !pos
                  | _ -> pending := None)
              | (Ddl _ | Row _) as r -> (
                  match !pending with
                  | Some (s, revs) -> pending := Some (s, r :: revs)
                  | None -> () (* record outside a group: ignore *)))
    end
  done;
  { committed_end = !committed_end; redo_records = !redo; statements = !stmts }
