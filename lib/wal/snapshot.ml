(** Checkpoint snapshots: the full catalog (tables, rows, path tables,
    XML and relational indexes) serialized through the {!Pager}.

    Layout: page 0 is a fixed header [magic, format version, page size,
    catalog blob head]; the catalog itself is one {!Pager.Blob} page
    chain. Recovery = load the snapshot, then replay the WAL tail on top.

    Node identity is the one thing that does not survive serialization:
    XML values are stored as document text and re-parsed on load, so every
    node gets a fresh id. Index entries therefore go to disk with the
    node's *document-order ordinal* within its row (the walk order of
    {!Xdm.Node.renumber}: node, attributes, children) instead of its node
    id, and the loader remaps ordinals to the freshly parsed nodes'
    ids, re-sorts, and bulk-loads the B+Tree. Relational index keys
    contain no node ids and round-trip unchanged. *)

open Storage
module C = Pager.Codec

let magic = "XQDBSNAP"

(* v2 appends the structural-index definition list (the encodings
   themselves are derived data, rebuilt from the reloaded documents). *)
let format_version = 2

let format_error fmt =
  Xdm.Xerror.raise_err "XQDB0005" fmt

(* ------------------------------------------------------------------ *)
(* Document-order ordinals                                             *)
(* ------------------------------------------------------------------ *)

(** Walk a node tree in {!Xdm.Node.renumber} order. *)
let rec walk f (n : Xdm.Node.t) =
  f n;
  List.iter (walk f) n.Xdm.Node.attrs;
  List.iter (walk f) n.Xdm.Node.children

(** [(row, node id) -> ordinal] for every node of an XML column; ordinals
    are per-row and continue across multiple documents in one value. *)
let ordinals_of_column (t : Table.t) (column : string) :
    (int * int, int) Hashtbl.t =
  let map = Hashtbl.create 1024 in
  let per_row = Hashtbl.create 64 in
  List.iter
    (fun (row, doc) ->
      let next = try Hashtbl.find per_row row with Not_found -> 0 in
      let counter = ref next in
      walk
        (fun n ->
          Hashtbl.replace map (row, n.Xdm.Node.id) !counter;
          incr counter)
        doc;
      Hashtbl.replace per_row row !counter)
    (Table.xml_docs t column);
  map

(** The inverse map after reload: [(row, ordinal) -> node id]. *)
let nodes_of_column (t : Table.t) (column : string) :
    (int * int, int) Hashtbl.t =
  let map = Hashtbl.create 1024 in
  let per_row = Hashtbl.create 64 in
  List.iter
    (fun (row, doc) ->
      let next = try Hashtbl.find per_row row with Not_found -> 0 in
      let counter = ref next in
      walk
        (fun n ->
          Hashtbl.replace map (row, !counter) n.Xdm.Node.id;
          incr counter)
        doc;
      Hashtbl.replace per_row row !counter)
    (Table.xml_docs t column);
  map

(* ------------------------------------------------------------------ *)
(* Catalog encoding                                                    *)
(* ------------------------------------------------------------------ *)

let enc_col buf (c : Table.col_def) =
  C.str buf c.Table.col_name;
  Vcodec.sqltype buf c.Table.col_type

let g_col r : Table.col_def =
  let col_name = C.g_str r in
  let col_type = Vcodec.g_sqltype r in
  { Table.col_name; col_type }

let enc_path_table buf (col_name, (pt : Path_table.t)) =
  C.str buf col_name;
  C.uvarint buf (Path_table.next pt);
  let entries =
    Path_table.fold pt (fun acc id steps -> (id, steps) :: acc) []
    |> List.sort compare
  in
  C.list
    (fun buf (id, steps) ->
      C.uvarint buf id;
      C.list Vcodec.step buf steps)
    buf entries

let enc_table buf (t : Table.t) =
  C.str buf t.Table.name;
  C.list enc_col buf t.Table.cols;
  C.uvarint buf t.Table.next_row_id;
  C.list Vcodec.row buf (Table.rows t);
  let pts = Hashtbl.fold (fun c pt acc -> (c, pt) :: acc) t.Table.path_tables [] in
  C.list enc_path_table buf (List.sort compare pts)

let g_table r : Table.t =
  let name = C.g_str r in
  let cols = C.g_list g_col r in
  let next_row_id = C.g_uvarint r in
  let rows = C.g_list Vcodec.g_row r in
  let t = Table.create name cols in
  t.Table.next_row_id <- next_row_id;
  List.iter (fun (row : Table.row) -> Hashtbl.replace t.Table.rows row.Table.row_id row) rows;
  let n_pts = C.g_uvarint r in
  for _ = 1 to n_pts do
    let col_name = C.g_str r in
    let next = C.g_uvarint r in
    let pt =
      match Hashtbl.find_opt t.Table.path_tables col_name with
      | Some pt -> pt
      | None -> format_error "snapshot path table for unknown column %S" col_name
    in
    let entries = C.g_list (fun r ->
        let id = C.g_uvarint r in
        let steps = C.g_list Vcodec.g_step r in
        (id, steps)) r
    in
    List.iter (fun (id, steps) -> Path_table.define pt ~id steps) entries;
    Path_table.set_next pt next
  done;
  t

let vtype_to_u8 = function
  | Xmlindex.Xindex.VDouble -> 0
  | Xmlindex.Xindex.VVarchar -> 1
  | Xmlindex.Xindex.VDate -> 2
  | Xmlindex.Xindex.VTimestamp -> 3

let vtype_of_u8 = function
  | 0 -> Xmlindex.Xindex.VDouble
  | 1 -> Xmlindex.Xindex.VVarchar
  | 2 -> Xmlindex.Xindex.VDate
  | 3 -> Xmlindex.Xindex.VTimestamp
  | n -> C.corrupt "bad vtype %d" n

let enc_xindex db buf (idx : Xmlindex.Xindex.t) =
  let def = idx.Xmlindex.Xindex.def in
  C.str buf def.Xmlindex.Xindex.iname;
  C.str buf def.Xmlindex.Xindex.table;
  C.str buf def.Xmlindex.Xindex.column;
  C.str buf (Xmlindex.Pattern.to_string def.Xmlindex.Xindex.pattern);
  C.u8 buf (vtype_to_u8 def.Xmlindex.Xindex.vtype);
  let t = Database.table_exn db def.Xmlindex.Xindex.table in
  let ords = ordinals_of_column t def.Xmlindex.Xindex.column in
  C.list
    (fun buf (k : Xmlindex.Xindex.Key.t) ->
      let ord =
        match Hashtbl.find_opt ords (k.Xmlindex.Xindex.Key.row, k.Xmlindex.Xindex.Key.node) with
        | Some o -> o
        | None ->
            format_error "index %S references unknown node (row %d)"
              def.Xmlindex.Xindex.iname k.Xmlindex.Xindex.Key.row
      in
      Vcodec.atomic buf k.Xmlindex.Xindex.Key.v;
      C.uvarint buf k.Xmlindex.Xindex.Key.path;
      C.uvarint buf k.Xmlindex.Xindex.Key.row;
      C.uvarint buf ord)
    buf
    (Xmlindex.Xindex.entries idx)

let g_xindex db r : Xmlindex.Xindex.t =
  let iname = C.g_str r in
  let table = C.g_str r in
  let column = C.g_str r in
  let pattern =
    let src = C.g_str r in
    try Xmlindex.Pattern.of_string src
    with _ -> C.corrupt "bad index pattern %S" src
  in
  let vtype = vtype_of_u8 (C.g_u8 r) in
  let def = { Xmlindex.Xindex.iname; table; column; pattern; vtype } in
  let t =
    match Database.find_table db table with
    | Some t -> t
    | None -> format_error "snapshot index %S on unknown table %S" iname table
  in
  let nodes = nodes_of_column t column in
  let entries =
    C.g_list
      (fun r ->
        let v = Vcodec.g_atomic r in
        let path = C.g_uvarint r in
        let row = C.g_uvarint r in
        let ord = C.g_uvarint r in
        let node =
          match Hashtbl.find_opt nodes (row, ord) with
          | Some id -> id
          | None -> C.corrupt "index %S: ordinal %d missing in row %d" iname ord row
        in
        { Xmlindex.Xindex.Key.v; path; row; node })
      r
  in
  Xmlindex.Xindex.of_entries def entries

let enc_rindex buf (idx : Xmlindex.Rel_index.t) =
  C.str buf idx.Xmlindex.Rel_index.iname;
  C.str buf idx.Xmlindex.Rel_index.table;
  C.str buf idx.Xmlindex.Rel_index.column;
  C.list
    (fun buf (k : Xmlindex.Rel_index.Key.t) ->
      Vcodec.sql_value buf k.Xmlindex.Rel_index.Key.v;
      C.uvarint buf k.Xmlindex.Rel_index.Key.row)
    buf
    (Xmlindex.Rel_index.entries idx)

let g_rindex r : Xmlindex.Rel_index.t =
  let iname = C.g_str r in
  let table = C.g_str r in
  let column = C.g_str r in
  let entries =
    C.g_list
      (fun r ->
        let v = Vcodec.g_sql_value r in
        let row = C.g_uvarint r in
        { Xmlindex.Rel_index.Key.v; row })
      r
  in
  Xmlindex.Rel_index.of_entries ~iname ~table ~column entries

(* Structural indexes persist as bare definitions: the pre/post encoding
   tables are keyed by node ids, which do not survive serialization, so
   the loader's caller re-encodes the freshly parsed documents instead
   (a linear walk — cheaper than remapping every array entry). *)
let enc_sindex buf (idx : Xmlindex.Structindex.t) =
  let d = idx.Xmlindex.Structindex.def in
  C.str buf d.Xmlindex.Structindex.iname;
  C.str buf d.Xmlindex.Structindex.table;
  C.str buf d.Xmlindex.Structindex.column

let g_sindex r : Xmlindex.Structindex.def =
  let iname = C.g_str r in
  let table = C.g_str r in
  let column = C.g_str r in
  { Xmlindex.Structindex.iname; table; column }

let encode_catalog buf db (xindexes : Xmlindex.Xindex.t list)
    (rindexes : Xmlindex.Rel_index.t list)
    (sindexes : Xmlindex.Structindex.t list) =
  C.list enc_table buf (Database.tables db);
  C.list (enc_xindex db) buf xindexes;
  C.list enc_rindex buf rindexes;
  C.list enc_sindex buf sindexes

let decode_catalog data :
    Database.t
    * Xmlindex.Xindex.t list
    * Xmlindex.Rel_index.t list
    * Xmlindex.Structindex.def list =
  let r = C.reader data in
  let tables = C.g_list g_table r in
  let db = Database.create () in
  List.iter
    (fun (t : Table.t) ->
      Hashtbl.add db.Database.tables (String.lowercase_ascii t.Table.name) t)
    tables;
  let xindexes = C.g_list (g_xindex db) r in
  let rindexes = C.g_list g_rindex r in
  let sdefs = C.g_list g_sindex r in
  (db, xindexes, rindexes, sdefs)

(* ------------------------------------------------------------------ *)
(* Page-file header                                                    *)
(* ------------------------------------------------------------------ *)

let header_len = String.length magic + 4 + 4 + 8

let no_count (_ : string) = ()

(** Write a full snapshot of [db] (plus indexes) to [path]. *)
let save ?(page_size = Pager.default_page_size) ?(pool_pages = Pager.default_pool_pages)
    ?(count = no_count) ~path db xindexes rindexes sindexes =
  let p = Pager.openfile ~page_size ~pool_pages ~count ~truncate:true path in
  Fun.protect
    ~finally:(fun () -> Pager.close p)
    (fun () ->
      let hdr = Pager.alloc p in
      assert (hdr = 0);
      let buf = Buffer.create 65536 in
      encode_catalog buf db xindexes rindexes sindexes;
      let head = Pager.Blob.write p (Buffer.contents buf) in
      let hb = Buffer.create header_len in
      Buffer.add_string hb magic;
      C.u32 hb format_version;
      C.u32 hb page_size;
      C.i64 hb (Int64.of_int head);
      Pager.write_page p 0 (Buffer.contents hb);
      Pager.flush p)

(** Load a snapshot; raises a coded [XQDB0005] error on an unrecognized
    or incompatible format and on structural corruption. *)
let load ?(pool_pages = Pager.default_pool_pages) ?(count = no_count) ~path () :
    Database.t
    * Xmlindex.Xindex.t list
    * Xmlindex.Rel_index.t list
    * Xmlindex.Structindex.def list =
  (* The header fixes the page size, so read it with plain file I/O
     before opening the pager. *)
  let hdr =
    match open_in_bin path with
    | exception Sys_error _ -> format_error "cannot read snapshot %s" path
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try really_input_string ic header_len
            with End_of_file ->
              format_error "snapshot %s: truncated header" path)
  in
  if String.sub hdr 0 (String.length magic) <> magic then
    format_error "%s is not an xqdb snapshot" path;
  let r = C.reader hdr in
  r.C.pos <- String.length magic;
  let version = C.g_u32 r in
  if version <> format_version then
    format_error "snapshot %s: format version %d, this build reads %d" path
      version format_version;
  let page_size = C.g_u32 r in
  let head = Int64.to_int (C.g_i64 r) in
  if page_size < 64 then format_error "snapshot %s: bad page size %d" path page_size;
  let p = Pager.openfile ~page_size ~pool_pages ~count ~truncate:false path in
  Fun.protect
    ~finally:(fun () -> Pager.close ~flush:false p)
    (fun () ->
      match decode_catalog (Pager.Blob.read p head) with
      | result -> result
      | exception C.Corrupt m -> format_error "snapshot %s: %s" path m
      | exception Invalid_argument m -> format_error "snapshot %s: %s" path m)
