(** Binary codecs for catalog values: SQL values, XDM atomics, qualified
    names and path steps. Shared by the WAL record format ({!Wal}) and
    the snapshot format ({!Snapshot}).

    XML values are stored as serialized document text and re-parsed on
    load; node identities are therefore *not* stable across a save/load
    cycle, which is why index entries carry document-order ordinals on
    disk (see {!Snapshot}).

    Encoders write into a [Buffer]; [g_]-prefixed decoders read from a
    {!Pager.Codec.reader} and raise [Pager.Codec.Corrupt] on malformed
    input. *)

val qname : Buffer.t -> Xdm.Qname.t -> unit
val g_qname : Pager.Codec.reader -> Xdm.Qname.t
val step : Buffer.t -> Xdm.Node.path_step -> unit
val g_step : Pager.Codec.reader -> Xdm.Node.path_step
val atomic : Buffer.t -> Xdm.Atomic.t -> unit
val g_atomic : Pager.Codec.reader -> Xdm.Atomic.t
val sqltype : Buffer.t -> Storage.Sql_value.sqltype -> unit
val g_sqltype : Pager.Codec.reader -> Storage.Sql_value.sqltype
val item : Buffer.t -> Xdm.Item.t -> unit
val g_item : Pager.Codec.reader -> Xdm.Item.t
val sql_value : Buffer.t -> Storage.Sql_value.t -> unit
val g_sql_value : Pager.Codec.reader -> Storage.Sql_value.t
val row : Buffer.t -> Storage.Table.row -> unit
val g_row : Pager.Codec.reader -> Storage.Table.row
