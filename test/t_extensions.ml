(** Extension features: construction modes (paper §4's "small but
    fundamental changes ... can alleviate 3.6"), added functions, SQL
    ORDER BY / FETCH FIRST. *)

open Helpers

let eval_str ?collections src expected =
  check Alcotest.string src expected (xq_str ?collections src)

let construction_mode_tests =
  [
    tc "strip mode (default): copied typed node loses its annotation"
      (fun () ->
        (* typed source: validated price; copy compares as untyped/string *)
        let doc = parse_doc "<a><price>10</price></a>" in
        let s = Xschema.make "s" [ ("//price", Xdm.Atomic.TDouble) ] in
        ignore (Xschema.validate s doc);
        let resolver _ = [ Xdm.Item.N doc ] in
        let r =
          Xquery.Eval.run_string ~resolver
            "<w>{db2-fn:xmlcolumn('X.Y')//price}</w>/price = \"10\""
        in
        (* untypedAtomic "10" vs string "10": equal as strings *)
        check Alcotest.string "strip: string equal" "true"
          (Xmlparse.Xml_writer.seq_to_string r));
    tc "preserve mode keeps the double annotation through copy" (fun () ->
        let doc = parse_doc "<a><price>10</price></a>" in
        let s = Xschema.make "s" [ ("//price", Xdm.Atomic.TDouble) ] in
        ignore (Xschema.validate s doc);
        let resolver _ = [ Xdm.Item.N doc ] in
        (* under preserve, the copied price is xs:double: a string
           comparison is a type error — the §3.6(1) divergence vanishes
           because view and base now behave the SAME *)
        expect_error "XPTY0004" (fun () ->
            Xquery.Eval.run_string ~resolver
              "declare construction preserve; \
               <w>{db2-fn:xmlcolumn('X.Y')//price}</w>/price = \"10\"");
        let r =
          Xquery.Eval.run_string ~resolver
            "declare construction preserve; \
             <w>{db2-fn:xmlcolumn('X.Y')//price}</w>/price = 10"
        in
        check Alcotest.string "numeric equal" "true"
          (Xmlparse.Xml_writer.seq_to_string r));
    tc "declare construction strip parses too" (fun () ->
        eval_str "declare construction strip; <a>{1}</a>" "<a>1</a>");
  ]

let function_tests =
  [
    tc "substring/3" (fun () ->
        eval_str "substring('motor car', 6, 3)" " ca";
        eval_str "substring('abcd', 2, 100)" "bcd");
    tc "translate" (fun () ->
        eval_str "translate('bar', 'abc', 'ABC')" "BAr";
        eval_str "translate('--aaa--', '-', '')" "aaa");
    tc "deep-equal on equal structure, different identity" (fun () ->
        eval_str "deep-equal(<a x=\"1\"><b>t</b></a>, <a x=\"1\"><b>t</b></a>)"
          "true");
    tc "deep-equal detects differences" (fun () ->
        eval_str "deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)" "false";
        eval_str "deep-equal((1, 2), (1, 3))" "false";
        eval_str "deep-equal((1, 2), (1, 2, 3))" "false");
    tc "deep-equal mixes numeric promotion" (fun () ->
        eval_str "deep-equal((1, 2.0), (1.0, 2))" "true");
    tc "round-half-to-even" (fun () ->
        eval_str "round-half-to-even(2.5)" "2";
        eval_str "round-half-to-even(3.5)" "4";
        eval_str "round-half-to-even(2.4)" "2");
  ]

let sql_order_tests =
  [
    tc "ORDER BY ascending and descending" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, s varchar(10))");
        ignore
          (sql db
             "INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b')");
        let col r = List.map List.hd r.Sqlxml.Sql_exec.rrows in
        check Alcotest.bool "asc" true
          (col (sql db "SELECT a FROM t ORDER BY a")
          = [ Storage.Sql_value.Int 1L; Storage.Sql_value.Int 2L;
              Storage.Sql_value.Int 3L ]);
        check Alcotest.bool "desc" true
          (col (sql db "SELECT a FROM t ORDER BY a DESC")
          = [ Storage.Sql_value.Int 3L; Storage.Sql_value.Int 2L;
              Storage.Sql_value.Int 1L ]));
    tc "ORDER BY puts NULLs last ascending" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        ignore (sql db "INSERT INTO t VALUES (2), (NULL), (1)");
        let r = sql db "SELECT a FROM t ORDER BY a" in
        check Alcotest.bool "nulls last" true
          (List.map List.hd r.Sqlxml.Sql_exec.rrows
          = [ Storage.Sql_value.Int 1L; Storage.Sql_value.Int 2L;
              Storage.Sql_value.Null ]));
    tc "FETCH FIRST n ROWS ONLY" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        for i = 1 to 20 do
          ignore (sql db (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
        done;
        check Alcotest.int "limited" 5
          (sql_count db "SELECT a FROM t ORDER BY a DESC FETCH FIRST 5 ROWS ONLY");
        check Alcotest.int "limit synonym" 3
          (sql_count db "SELECT a FROM t LIMIT 3"));
    tc "ORDER BY an XMLCast key" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, d XML)");
        ignore
          (sql db
             "INSERT INTO t VALUES (1, '<v>30</v>'), (2, '<v>7</v>')");
        let r =
          sql db
            "SELECT a FROM t ORDER BY XMLCast(XMLQuery('$d/v' passing d as \
             \"d\") as DOUBLE)"
        in
        check Alcotest.bool "order by xml value" true
          (List.map List.hd r.Sqlxml.Sql_exec.rrows
          = [ Storage.Sql_value.Int 2L; Storage.Sql_value.Int 1L ]));
  ]

let cost_tests =
  [
    tc "planner prefers the narrower (smaller) eligible index" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 100 (fun i ->
               Printf.sprintf
                 "<a><b p=\"%d\"/><c q=\"%d\" r=\"%d\" s=\"%d\"/></a>" i i i i));
        (* broad index holds 4x the entries of the narrow one *)
        ignore
          (sql db
             "CREATE INDEX broad ON t(d) USING XMLPATTERN '//@*' AS DOUBLE");
        ignore
          (sql db
             "CREATE INDEX narrow ON t(d) USING XMLPATTERN '//b/@p' AS DOUBLE");
        let plan = assert_def1 db "db2-fn:xmlcolumn('T.D')//a[b/@p = 5]" in
        check Alcotest.(list string) "narrow chosen" [ "narrow" ]
          plan.Planner.indexes_used);
  ]

let computed_ctor_tests =
  [
    tc "computed element with static name" (fun () ->
        eval_str "element out { 1 + 1 }" "<out>2</out>");
    tc "computed element with dynamic name" (fun () ->
        eval_str "element { concat('a', 'b') } { 'x' }" "<ab>x</ab>");
    tc "computed attribute attaches in content" (fun () ->
        eval_str "element o { attribute n { 1+1 }, 'body' }"
          "<o n=\"2\">body</o>");
    tc "computed text node" (fun () ->
        eval_str "element o { text { (1, 2) } }" "<o>1 2</o>");
    tc "standalone computed attribute has fresh identity" (fun () ->
        eval_str "attribute p { 5 } is attribute p { 5 }" "false");
    tc "computed constructors also block indexing (Tip 7 family)" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (id integer, d XML)");
        Engine.load_documents db ~table:"t" ~column:"d"
          (List.init 30 (fun i -> Printf.sprintf "<a><b>%d</b></a>" i));
        ignore
          (sql db
             "CREATE INDEX ib ON t(d) USING XMLPATTERN '//b' AS DOUBLE");
        let plan =
          assert_def1 db
            "for $x in db2-fn:xmlcolumn('T.D')/a return element r {              $x/b[. > 20] }"
        in
        check Alcotest.(list string) "no index" [] plan.Planner.indexes_used);
  ]

let delete_tests =
  [
    tc "DELETE removes rows and maintains indexes" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, d XML)");
        ignore
          (sql db
             "CREATE INDEX ip ON t(d) USING XMLPATTERN '//@p' AS DOUBLE");
        for i = 1 to 20 do
          ignore
            (sql db
               (Printf.sprintf "INSERT INTO t VALUES (%d, '<x p=\"%d\"/>')" i i))
        done;
        let r = sql db "DELETE FROM t WHERE a > 10" in
        check Alcotest.bool "10 deleted" true
          (List.hd (List.hd r.Sqlxml.Sql_exec.rrows) = Storage.Sql_value.Int 10L);
        check Alcotest.int "10 remain" 10 (sql_count db "SELECT a FROM t");
        (* the index must have dropped the deleted entries too *)
        let idx = List.hd (Engine.xml_indexes db) in
        check Alcotest.int "index entries" 10 (Xmlindex.Xindex.entry_count idx);
        (* and an indexed query over the survivors is still Definition-1 *)
        let plan =
          assert_def1 db "db2-fn:xmlcolumn('T.D')//x[@p > 5]"
        in
        check Alcotest.bool "ip used" true
          (List.mem "ip" plan.Planner.indexes_used));
    tc "DELETE with XMLExists condition" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, d XML)");
        for i = 1 to 10 do
          ignore
            (sql db
               (Printf.sprintf "INSERT INTO t VALUES (%d, '<x p=\"%d\"/>')" i i))
        done;
        ignore
          (sql db
             "DELETE FROM t WHERE XMLExists('$d/x[@p > 7]' passing d as \"d\")");
        check Alcotest.int "7 remain" 7 (sql_count db "SELECT a FROM t"));
    tc "DELETE without WHERE empties the table" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer)");
        ignore (sql db "INSERT INTO t VALUES (1), (2)");
        ignore (sql db "DELETE FROM t");
        check Alcotest.int "empty" 0 (sql_count db "SELECT a FROM t"));
  ]

let aggregate_tests =
  let mk () =
    let db = Engine.create () in
    ignore (sql db "CREATE TABLE s (dept varchar(10), pay integer)");
    ignore
      (sql db
         "INSERT INTO s VALUES ('eng', 100), ('eng', 200), ('ops', 50),           ('ops', NULL)");
    db
  in
  let open Storage.Sql_value in
  [
    tc "COUNT(*) counts rows, COUNT(col) skips NULLs" (fun () ->
        let db = mk () in
        let row q = List.hd (sql db q).Sqlxml.Sql_exec.rrows in
        check Alcotest.bool "count-star" true
          (row "SELECT COUNT(*) FROM s" = [ Int 4L ]);
        check Alcotest.bool "count col" true
          (row "SELECT COUNT(pay) FROM s" = [ Int 3L ]));
    tc "GROUP BY with SUM/AVG/MIN/MAX" (fun () ->
        let db = mk () in
        let r =
          sql db
            "SELECT dept, SUM(pay), AVG(pay), MIN(pay), MAX(pay) FROM s              GROUP BY dept ORDER BY dept"
        in
        check Alcotest.bool "rows" true
          (r.Sqlxml.Sql_exec.rrows
          = [
              [ Varchar "eng"; Int 300L; Double 150.; Int 100L; Int 200L ];
              [ Varchar "ops"; Int 50L; Double 50.; Int 50L; Int 50L ];
            ]));
    tc "SUM over all NULLs is NULL" (fun () ->
        let db = mk () in
        ignore (sql db "DELETE FROM s WHERE pay IS NOT NULL");
        let r = sql db "SELECT SUM(pay) FROM s" in
        check Alcotest.bool "null" true
          (r.Sqlxml.Sql_exec.rrows = [ [ Null ] ]));
    tc "aggregate over XMLCast values" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, d XML)");
        ignore
          (sql db
             "INSERT INTO t VALUES (1, '<v>10</v>'), (2, '<v>32</v>')");
        let r =
          sql db
            "SELECT SUM(XMLCast(XMLQuery('$d/v' passing d as \"d\") as              DOUBLE)) FROM t"
        in
        check Alcotest.bool "42" true
          (r.Sqlxml.Sql_exec.rrows = [ [ Double 42. ] ]));
    tc "aggregate outside grouping context errors" (fun () ->
        let db = mk () in
        match sql db "SELECT dept FROM s WHERE SUM(pay) > 10" with
        | _ -> Alcotest.fail "should fail"
        | exception Xdm.Xerror.Error e ->
            check Alcotest.string "coded" "XQDB0003" e.code);
    tc "EXPLAIN SELECT returns plan rows" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (a integer, d XML)");
        ignore (sql db "INSERT INTO t VALUES (1, '<v>5</v>')");
        ignore
          (sql db
             "CREATE INDEX iv ON t(d) USING XMLPATTERN '//v' AS DOUBLE");
        let r =
          sql db
            "EXPLAIN SELECT a FROM t WHERE XMLExists('$d/v[. > 1]' passing              d as \"d\")"
        in
        check Alcotest.bool "has XISCAN row" true
          (List.exists
             (function
               | [ Varchar n ] -> Helpers.contains_sub ~affix:"XISCAN" n
               | _ -> false)
             r.Sqlxml.Sql_exec.rrows));
    tc "XMLAGG concatenates group XML values" (fun () ->
        let db = Engine.create () in
        ignore (sql db "CREATE TABLE t (g integer, d XML)");
        ignore
          (sql db
             "INSERT INTO t VALUES (1, '<v>a</v>'), (1, '<v>b</v>'), (2,               '<v>c</v>')");
        let r =
          sql db
            "SELECT g, XMLAGG(XMLQuery('$d/v' passing d as \"d\")) FROM t              GROUP BY g ORDER BY g"
        in
        match r.Sqlxml.Sql_exec.rrows with
        | [ [ Int 1L; Xml seq1 ]; [ Int 2L; Xml seq2 ] ] ->
            check Alcotest.int "group 1" 2 (List.length seq1);
            check Alcotest.int "group 2" 1 (List.length seq2)
        | _ -> Alcotest.fail "unexpected shape");
    tc "GROUP BY ORDER BY aggregate key" (fun () ->
        let db = mk () in
        let r =
          sql db
            "SELECT dept, SUM(pay) FROM s GROUP BY dept ORDER BY SUM(pay)              DESC"
        in
        check Alcotest.bool "eng first" true
          (List.hd (List.hd r.Sqlxml.Sql_exec.rrows) = Varchar "eng"));
  ]

let instance_of_tests =
  [
    tc "atomic instance of" (fun () ->
        eval_str "5 instance of xs:integer" "true";
        eval_str "5 instance of xs:double" "false";
        eval_str "xs:double('5') instance of xs:double" "true";
        eval_str "'x' instance of xs:string" "true");
    tc "occurrence indicators" (fun () ->
        eval_str "(1, 2) instance of xs:integer*" "true";
        eval_str "(1, 2) instance of xs:integer" "false";
        eval_str "() instance of xs:integer?" "true";
        eval_str "() instance of xs:integer+" "false");
    tc "node kinds" (fun () ->
        eval_str "<a/> instance of element()" "true";
        eval_str "<a/> instance of attribute()" "false";
        eval_str "attribute p { 1 } instance of attribute()" "true";
        eval_str "text { 'x' } instance of text()" "true");
    tc "empty-sequence()" (fun () ->
        eval_str "() instance of empty-sequence()" "true";
        eval_str "1 instance of empty-sequence()" "false");
    tc "item()* accepts anything" (fun () ->
        eval_str "(1, <a/>, 'x') instance of item()*" "true");
    tc "untyped element content is untypedAtomic" (fun () ->
        eval_str "data(<a>5</a>) instance of xs:untypedAtomic" "true";
        eval_str "data(<a>5</a>) instance of xs:integer" "false");
  ]

let suite =
  [
    ("ext:construction_mode", construction_mode_tests);
    ("ext:instance_of", instance_of_tests);
    ("ext:aggregates", aggregate_tests);
    ("ext:computed_ctors", computed_ctor_tests);
    ("ext:delete", delete_tests);
    ("ext:functions", function_tests);
    ("ext:sql_order", sql_order_tests);
    ("ext:cost", cost_tests);
  ]
